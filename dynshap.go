// Package dynshap is a library for data valuation with Shapley values on
// dynamic datasets, reproducing "Dynamic Shapley Value Computation"
// (Zhang, Xia, Sun, Liu, Xiong, Pei, Ren — ICDE 2023).
//
// The Shapley value of a training point is its average marginal
// contribution to a model's test utility over all orderings of the training
// set — the unique attribution satisfying balance, symmetry, additivity and
// the zero element. Exact computation is #P-hard; this library provides the
// standard Monte Carlo estimators and, crucially, the paper's *dynamic*
// algorithms that update the values when points are added or deleted at a
// fraction of the cost of recomputation:
//
//   - Pivot-based addition (Algorithms 2–4): reuse the half of every
//     sampled permutation that precedes the new point.
//   - Delta-based addition/deletion (Algorithms 5, 8): estimate the
//     *change* of each value from differential marginal contributions,
//     which converge with far fewer samples (Theorems 2–4).
//   - YN-NN / YNN-NNN deletion (Algorithms 6–7, Lemma 4): recover exact
//     post-deletion values from utility arrays filled for free during the
//     original computation — no new model trainings at all.
//   - KNN / KNN+ heuristics (Algorithms 9–10): feature-similarity-based
//     instant estimates.
//
// # Quick start
//
//	train, test := dynshap.IrisLike(150, 1).Split(0.7)
//	s := dynshap.NewSession(train, test, dynshap.SVM{},
//	    dynshap.WithSamples(2000), dynshap.WithSeed(42),
//	    dynshap.WithTrackDeletions())
//	if err := s.Init(); err != nil { ... }
//	values := s.Values()                                  // one per point
//	values, _ = s.Add(newPoints, dynshap.AlgoDelta)       // incremental
//	values, _ = s.Delete([]int{3}, dynshap.AlgoYNNN)      // exact, instant
//
// The Session works over any classifier implementing Trainer; SVM (Pegasos),
// KNNClassifier and LogReg ship with the library. Lower-level estimators
// operating on arbitrary cooperative games are exposed as functions
// (ExactShapley, MonteCarloShapley, …) for uses beyond machine learning.
package dynshap

import (
	"fmt"
	"io"

	"dynshap/internal/bitset"
	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/journal"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
	"dynshap/internal/semivalue"
	"dynshap/internal/stat"
)

// Re-exported substrate types. They alias the internal implementations so
// downstream code can name them without importing internal packages.
type (
	// Dataset is an ordered collection of labelled feature vectors.
	Dataset = dataset.Dataset
	// Point is one labelled observation.
	Point = dataset.Point
	// Trainer fits a classifier to a training set; implement it to value
	// data under your own model.
	Trainer = ml.Trainer
	// Classifier predicts a label for a feature vector.
	Classifier = ml.Classifier
	// SVM is a linear support-vector machine trained with Pegasos SGD.
	SVM = ml.SVM
	// KNNClassifier is the k-nearest-neighbours classifier.
	KNNClassifier = ml.KNN
	// SoftKNNClassifier is the k-NN trainer scored with Jia et al.'s SOFT
	// utility — mean over test points of (#same-label among the k nearest)/k
	// — the one utility whose Shapley values admit an exact closed form.
	// Sessions built with it maintain EXACT values through Init, Add and
	// Delete (AlgoExactKNN, routed automatically by AlgoAuto) with zero
	// model trainings at any n.
	SoftKNNClassifier = ml.SoftKNN
	// LogReg is logistic regression trained with SGD.
	LogReg = ml.LogReg
	// NaiveBayes is the Gaussian naive Bayes classifier.
	NaiveBayes = ml.NaiveBayes
	// Game is a cooperative game: a player count and a coalition utility.
	Game = game.Game
	// GameFunc adapts a plain function to the Game interface.
	GameFunc = game.Func
	// Coalition is a set of players, represented as a bitset. Custom Game
	// implementations receive coalitions in this form.
	Coalition = bitset.Set
	// KNNPlusConfig parameterises the KNN+ heuristic.
	KNNPlusConfig = core.KNNPlusConfig
	// CurveModel holds KNN+'s fitted similarity→ΔSV curves.
	CurveModel = core.CurveModel
	// StoreBackend selects the storage implementation behind the YN-NN /
	// YNN-NNN deletion arrays (see WithStoreBackend / WithStoreSpill).
	StoreBackend = core.BackendKind
)

// Deletion-store backends, for WithStoreBackend.
const (
	// StoreDense64 is the historic dense float64 layout: exact and the
	// default.
	StoreDense64 = core.BackendDense64
	// StoreTiled32 stores float32 entries in row-aligned tiles: half the
	// memory, bounded rounding drift (DESIGN.md §15).
	StoreTiled32 = core.BackendTiled32
	// StoreSpill32 is the tiled float32 layout in mmap-backed scratch
	// files — deletion stores larger than RAM (see WithStoreSpill).
	StoreSpill32 = core.BackendSpill32
)

// NewDataset builds a Dataset from points, inferring the label count.
func NewDataset(points []Point) *Dataset { return dataset.New(points) }

// NewCoalition returns an empty coalition with capacity for n players.
func NewCoalition(n int) Coalition { return bitset.New(n) }

// CoalitionOf returns a coalition of capacity n containing the given players.
func CoalitionOf(n int, players ...int) Coalition { return bitset.FromIndices(n, players...) }

// FullCoalition returns the grand coalition of all n players.
func FullCoalition(n int) Coalition { return bitset.Full(n) }

// LoadCSV reads a headerless CSV of feature…,label rows.
func LoadCSV(path string) (*Dataset, error) { return dataset.LoadCSV(path) }

// IrisLike generates a synthetic dataset with the class structure and
// feature statistics of UCI Iris (3 balanced classes, 4 features).
func IrisLike(total int, seed uint64) *Dataset {
	return dataset.IrisLike(rng.New(seed), total)
}

// AdultLike generates a synthetic dataset with the shape of the paper's
// UCI Adult sample (binary label, 3 numeric features, ~24% positive).
func AdultLike(total int, seed uint64) *Dataset {
	return dataset.AdultLike(rng.New(seed), total)
}

// Algorithm selects how a Session computes or updates Shapley values.
type Algorithm int

const (
	// AlgoMonteCarlo recomputes from scratch by permutation sampling
	// (Algorithm 1) — the paper's baseline.
	AlgoMonteCarlo Algorithm = iota
	// AlgoTruncatedMC recomputes with Ghorbani–Zou truncation.
	AlgoTruncatedMC
	// AlgoBase keeps original values and assigns added points the average
	// original value — the paper's "Base" baseline (additions only).
	AlgoBase
	// AlgoPivotSame is the pivot-based algorithm reusing the stored
	// permutations (Algorithm 3; additions only, requires
	// WithKeepPermutations).
	AlgoPivotSame
	// AlgoPivotDifferent is the pivot-based algorithm with fresh
	// permutations (Algorithm 4; additions only).
	AlgoPivotDifferent
	// AlgoDelta estimates value changes from differential marginal
	// contributions (Algorithm 5 for additions, 8 for deletions).
	AlgoDelta
	// AlgoDeltaBatch is the batched delta walk: one permutation pass
	// walks a shared chain once and evaluates every pending point's
	// differential contributions against it, with per-point accumulators
	// striped across workers. For additions the shared chain is the
	// no-pivot walk and each appended point is valued against the
	// pre-batch base; for deletions it is the common-survivors walk and
	// each departing point is priced against the fixed pre-batch set.
	AlgoDeltaBatch
	// AlgoPivotSameBatch is the batched Pivot-s (requires
	// WithKeepPermutations). For additions the stored permutations are
	// threaded through all pending pivot insertions in one pass,
	// bit-identical to applying AlgoPivotSame per point in sequence. For
	// deletions the permutations EVOLVE through the removals (subsequences
	// of uniform random orders stay uniform) and are walked once in the
	// post-delete game — the only deletion that keeps the pivot artifact
	// alive for later additions.
	AlgoPivotSameBatch
	// AlgoYNNN recovers exact post-deletion values from the YN-NN /
	// YNN-NNN arrays (Algorithms 6–7; deletions only, requires
	// WithTrackDeletions or WithMultiDelete).
	AlgoYNNN
	// AlgoKNN is the feature-similarity heuristic (Algorithm 9).
	AlgoKNN
	// AlgoKNNPlus additionally shifts original values along fitted
	// similarity→change curves (Algorithm 10).
	AlgoKNNPlus
	// AlgoExactKNN computes and maintains EXACT Shapley values through the
	// closed-form sorted-neighbour recurrence of Jia et al. (VLDB 2019) —
	// no permutations, no model trainings, no estimation error. Available
	// for sessions built with SoftKNNClassifier and the distance kernel
	// enabled: Init sorts each test point's distance column once
	// (O(m·n log n)), Add binary-inserts into the maintained orders and
	// recomputes only the affected rank suffix (O(m·(log n + suffix))),
	// Delete tombstones through the kernel's column masking. The dynamic
	// path is exactly equal — bit for bit — to recomputing from scratch
	// after every update.
	AlgoExactKNN
	// AlgoAuto lets the session's planner pick the cheapest valid algorithm
	// for each update from the artifacts it actually holds: the exact
	// closed-form k-NN estimator whenever the session maintains one
	// (SoftKNNClassifier + kernel — nothing sampled can beat exact at zero
	// trainings), exact YN-NN / YNN-NNN merges when the arrays are fresh
	// and cover the request, pivot replay when permutations were retained,
	// delta otherwise, with a Monte Carlo fallback for bulk updates. The
	// decision and its rationale are recorded in the session journal (see
	// Session.History).
	AlgoAuto
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoMonteCarlo:
		return "MC"
	case AlgoTruncatedMC:
		return "TMC"
	case AlgoBase:
		return "Base"
	case AlgoPivotSame:
		return "Pivot-s"
	case AlgoPivotDifferent:
		return "Pivot-d"
	case AlgoDelta:
		return "Delta"
	case AlgoDeltaBatch:
		return "Delta-batch"
	case AlgoPivotSameBatch:
		return "Pivot-s-batch"
	case AlgoYNNN:
		return "YN-NN"
	case AlgoKNN:
		return "KNN"
	case AlgoKNNPlus:
		return "KNN+"
	case AlgoExactKNN:
		return "Exact-KNN"
	case AlgoAuto:
		return "Auto"
	default:
		return "unknown"
	}
}

// ParseAlgorithm is the inverse of Algorithm.String: it resolves a paper
// name ("MC", "Delta", "YN-NN", …) to the Algorithm constant. The journal
// records algorithms by name, so replay and the CLI round-trip through
// this.
func ParseAlgorithm(name string) (Algorithm, error) {
	for a := AlgoMonteCarlo; a <= AlgoAuto; a++ {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("dynshap: unknown algorithm %q", name)
}

// ExactShapley returns exact Shapley values by complete enumeration
// (≤ 24 players).
func ExactShapley(g Game) []float64 { return core.Exact(g) }

// MonteCarloShapley approximates Shapley values with tau sampled
// permutations (Algorithm 1).
func MonteCarloShapley(g Game, tau int, seed uint64) []float64 {
	return core.MonteCarlo(g, tau, rng.New(seed))
}

// MonteCarloShapleyParallel spreads the permutations over the given number
// of workers (≤0 selects GOMAXPROCS).
func MonteCarloShapleyParallel(g Game, tau, workers int, seed uint64) []float64 {
	return core.MonteCarloParallel(g, tau, workers, rng.New(seed))
}

// TruncatedMonteCarloShapley approximates Shapley values with truncation
// tolerance tol (Ghorbani–Zou TMC).
func TruncatedMonteCarloShapley(g Game, tau int, tol float64, seed uint64) []float64 {
	return core.TruncatedMonteCarlo(g, tau, tol, rng.New(seed))
}

// Game-level dynamic algorithms. The paper's methods apply to any
// cooperative game with a characteristic utility function, not only to
// machine-learning data valuation (§I); these wrappers expose them over the
// Game interface directly.
type (
	// PivotState carries the pivot algorithms' maintained state (SV + LSV,
	// optionally the sampled permutations).
	PivotState = core.PivotState
	// DeletionArrays is the YN-NN structure enabling exact post-deletion
	// values without new utility evaluations.
	DeletionArrays = core.DeletionStore
	// MultiDeletionArrays is the YNN-NNN structure for deleting d points.
	MultiDeletionArrays = core.MultiDeletionStore
)

// NewPivotState runs Algorithm 2 over g: Monte Carlo Shapley estimation
// that simultaneously accumulates the LSV needed by the pivot-based
// addition algorithms. keepPerms enables AddSame (Pivot-s).
func NewPivotState(g Game, tau int, keepPerms bool, seed uint64) *PivotState {
	return core.PivotInit(g, tau, keepPerms, rng.New(seed))
}

// PreprocessDeletion runs Algorithm 6 over g: Monte Carlo Shapley
// estimation that simultaneously fills the YN-NN arrays, from which
// Merge(p) later recovers post-deletion values with zero additional
// utility evaluations.
func PreprocessDeletion(g Game, tau int, seed uint64) *DeletionArrays {
	return core.PreprocessDeletion(g, tau, rng.New(seed))
}

// PreprocessMultiDeletion fills the YNN-NNN arrays for deleting exactly d
// of the candidate players at once (Lemma 4).
func PreprocessMultiDeletion(g Game, d int, candidates []int, tau int, seed uint64) (*MultiDeletionArrays, error) {
	return core.PreprocessMultiDeletion(g, d, candidates, tau, rng.New(seed))
}

// EngineStats describes a permutation-engine pass: permutations issued
// versus budgeted, adaptive early-stop status and certified bound, worker
// count, and array-fill throughput.
type EngineStats = core.EngineStats

// UpdateRecord is one journaled session mutation: the operation, its
// inputs, the algorithm that ran (and the planner's trace when AlgoAuto
// chose it), and what the update cost. Session.History returns these.
type UpdateRecord = journal.Update

// JournalState is the serialisable form of a session's journal, embedded
// in snapshot format 2.
type JournalState = journal.State

// PreprocessDeletionParallel is PreprocessDeletion with the YN-NN array
// fill striped over the given number of accumulator workers (≤0 selects
// GOMAXPROCS). One producer samples permutations and computes prefix
// utilities; each worker owns a contiguous block of the arrays' player
// rows, so the result is bit-identical to the serial fill for the same
// seed at every worker count.
func PreprocessDeletionParallel(g Game, tau, workers int, seed uint64) *DeletionArrays {
	e := core.NewEngine(core.WithWorkers(workers))
	return e.PreprocessDeletion(g, tau, rng.New(seed))
}

// PreprocessMultiDeletionParallel is PreprocessMultiDeletion with the
// YNN-NNN fill striped over workers accumulators; bit-identical to the
// serial fill for the same seed.
func PreprocessMultiDeletionParallel(g Game, d int, candidates []int, tau, workers int, seed uint64) (*MultiDeletionArrays, error) {
	e := core.NewEngine(core.WithWorkers(workers))
	return e.PreprocessMultiDeletion(g, d, candidates, tau, rng.New(seed))
}

// MonteCarloShapleyAdaptive is Monte Carlo estimation with adaptive early
// termination: sampling stops as soon as an empirical-Bernstein bound
// certifies every player's estimate within eps at confidence 1−delta, or
// when the tau budget is exhausted. The returned stats report the τ
// actually spent.
func MonteCarloShapleyAdaptive(g Game, tau int, eps, delta float64, seed uint64) ([]float64, EngineStats) {
	e := core.NewEngine(core.WithTargetError(eps, delta))
	sv := e.MonteCarlo(g, tau, rng.New(seed))
	return sv, e.Stats()
}

// DeltaAddShapley runs Algorithm 5 over a general game: gPlus is the
// (n+1)-player game whose last player is new, oldSV the n precomputed
// values. It returns n+1 updated values.
func DeltaAddShapley(gPlus Game, oldSV []float64, tau int, seed uint64) ([]float64, error) {
	return core.DeltaAdd(gPlus, oldSV, tau, rng.New(seed))
}

// DeltaAddShapleyParallel is DeltaAddShapley with the permutations spread
// over workers goroutines (≤0 selects GOMAXPROCS) — the parallel execution
// model of the paper's large-dataset experiments (§VII-G).
func DeltaAddShapleyParallel(gPlus Game, oldSV []float64, tau, workers int, seed uint64) ([]float64, error) {
	return core.DeltaAddParallel(gPlus, oldSV, tau, workers, rng.New(seed))
}

// DeltaDeleteShapley runs Algorithm 8 over a general game: player p leaves
// g. The result keeps the original indexing with 0 at p.
func DeltaDeleteShapley(g Game, oldSV []float64, p, tau int, seed uint64) ([]float64, error) {
	return core.DeltaDelete(g, oldSV, p, tau, rng.New(seed))
}

// RestrictGame returns the sub-game of g without the given players,
// renumbered to 0..n−len(removed)−1 preserving order.
func RestrictGame(g Game, removed ...int) Game {
	return game.NewRestrict(g, removed...)
}

// LeaveOneOut returns each player's leave-one-out score U(N) − U(N∖{i}) —
// the cheap baseline the paper's introduction contrasts with Shapley value.
func LeaveOneOut(g Game) []float64 { return core.LeaveOneOut(g) }

// StratifiedMonteCarloShapley approximates Shapley values by stratified
// coalition sampling (Maleki et al.) with the given per-stratum sample
// count.
func StratifiedMonteCarloShapley(g Game, samplesPerStratum int, seed uint64) []float64 {
	return core.StratifiedMonteCarlo(g, samplesPerStratum, rng.New(seed))
}

// MonteCarloShapleyAntithetic samples τ antithetic permutation PAIRS (each
// permutation scanned with its reverse) — a classical variance-reduction
// trick that typically beats plain sampling at equal evaluation budgets on
// learning-curve-shaped utilities.
func MonteCarloShapleyAntithetic(g Game, tauPairs int, seed uint64) []float64 {
	return core.MonteCarloAntithetic(g, tauPairs, rng.New(seed))
}

// ComplementaryMonteCarloShapley approximates Shapley values from
// complementary contributions CC(S) = U(S) − U(N∖S) (Zhang et al., SIGMOD
// 2023, the stratification highlighted in the paper's related work). One
// evaluation pair informs every member of S, which often beats plain
// permutation sampling at equal τ on games with strong complementarities.
func ComplementaryMonteCarloShapley(g Game, tau int, seed uint64) []float64 {
	return core.ComplementaryMonteCarlo(g, tau, rng.New(seed))
}

// KNNShapley returns the EXACT Shapley values of every training point under
// the soft k-NN utility (fraction of correct labels among the k nearest
// neighbours, averaged over the test set) in O(n log n) per test point —
// the closed form of Jia et al. (VLDB 2019) for lazy classifiers.
func KNNShapley(train, test *Dataset, k int) ([]float64, error) {
	return core.KNNShapley(train, test, k)
}

// SoftKNNGame is the cooperative game KNNShapley values exactly; use it to
// cross-check any estimator against a non-trivial exact answer at any n.
func SoftKNNGame(train, test *Dataset, k int) Game {
	return core.NewSoftKNNUtility(train, test, k)
}

// Semivalue selects a probabilistic weighting over coalition sizes — the
// family of attribution rules (Shapley, Banzhaf, Beta(α,β), Absolute
// Shapley) the engine's permutation passes can price simultaneously. Pass
// them to WithSemivalues and read the results with Session.ValuesFor; the
// game-level estimators below accept them directly.
type Semivalue = semivalue.Weighting

// Shapley is the Shapley weighting — the session's native head and the
// paper's compensation rule (every position weighted equally).
func Shapley() Semivalue { return semivalue.Shapley() }

// Banzhaf is the Banzhaf weighting: every coalition equally likely, the
// classical alternative that forgoes the balance (efficiency) axiom.
func Banzhaf() Semivalue { return semivalue.Banzhaf() }

// Beta is the Beta(α,β) semivalue family (Kwon & Zou's Beta Shapley):
// coalition sizes weighted by a Beta prior. Beta(1,1) is exactly Shapley;
// larger β emphasises small coalitions, larger α large ones.
func Beta(alpha, beta float64) Semivalue { return semivalue.Beta(alpha, beta) }

// AbsoluteShapley is Absolute Shapley (arXiv 2003.10076): Shapley's
// position weights over |marginal| — credits magnitude of influence,
// ignoring sign. It is not linear in the utility, so the YN-NN deletion
// arrays cannot re-price it.
func AbsoluteShapley() Semivalue { return semivalue.AbsoluteShapley() }

// ParseSemivalue resolves a semivalue's wire name ("shapley", "banzhaf",
// "beta(4,1)", "abs-shapley") — the inverse of Semivalue.String, used by
// the CLI's -semivalue flag and the snapshot config.
func ParseSemivalue(name string) (Semivalue, error) { return semivalue.Parse(name) }

// ExactSemivalue returns exact values under any semivalue weighting by
// complete enumeration (≤ 24 players). ExactShapley and ExactBanzhaf are
// this with the corresponding weighting.
func ExactSemivalue(g Game, sv Semivalue) []float64 { return core.ExactSemivalue(g, sv) }

// MonteCarloSemivalues prices every given weighting with ONE permutation
// pass of tau walks: each head folds the same sampled marginals with its
// own position weights, so the incremental cost per extra head is
// bookkeeping, not utility evaluations. The Shapley head (if present) is
// bit-identical to MonteCarloShapley at the same seed.
func MonteCarloSemivalues(g Game, svs []Semivalue, tau int, seed uint64) [][]float64 {
	return core.MonteCarloSemivalues(g, svs, tau, rng.NewStream(seed, 0))
}

// ExactBanzhaf returns exact Banzhaf values by complete enumeration
// (≤ 24 players) — the other classical semivalue, offered for comparison;
// it forgoes the balance axiom, so Shapley remains the compensation rule.
func ExactBanzhaf(g Game) []float64 { return core.ExactBanzhaf(g) }

// MonteCarloBanzhaf approximates Banzhaf values from tau sampled
// permutations — one multi-head pass with only the Banzhaf head, so the
// same walks could price Shapley for free. Sampling draws from
// rng.NewStream(seed, 0), the same (seed, version)-keyed stream discipline
// every session estimator uses, so results are reproducible under journal
// replay.
func MonteCarloBanzhaf(g Game, tau int, seed uint64) []float64 {
	return core.MonteCarloBanzhaf(g, tau, rng.NewStream(seed, 0))
}

// ShapleyShubik returns the exact power indices of a weighted voting game
// with integer weights in pseudo-polynomial time (no 2^n enumeration).
func ShapleyShubik(weights []int, quota int) ([]float64, error) {
	return game.ShapleyShubik(weights, quota)
}

// Tracker is an online Monte Carlo estimator with per-player convergence
// diagnostics — sample until a target precision instead of fixing τ.
type Tracker = core.Tracker

// NewShapleyTracker creates a Tracker over g.
func NewShapleyTracker(g Game, seed uint64) *Tracker {
	return core.NewTracker(g, rng.New(seed))
}

// ReadPivotState deserialises a pivot state written by (*PivotState).Encode,
// restoring the Pivot-s/Pivot-d capability across process restarts.
func ReadPivotState(r io.Reader) (*PivotState, error) { return core.ReadPivotState(r) }

// ReadDeletionArrays deserialises YN-NN arrays written by
// (*DeletionArrays).Encode.
func ReadDeletionArrays(r io.Reader) (*DeletionArrays, error) {
	return core.ReadDeletionStore(r)
}

// ReadMultiDeletionArrays deserialises YNN-NNN arrays written by
// (*MultiDeletionArrays).Encode.
func ReadMultiDeletionArrays(r io.Reader) (*MultiDeletionArrays, error) {
	return core.ReadMultiDeletionStore(r)
}

// MSE returns the mean squared error between two value vectors — the
// paper's effectiveness metric.
func MSE(estimate, truth []float64) float64 { return stat.MSE(estimate, truth) }

// RankCorrelation returns the Spearman rank correlation between two value
// vectors. Compensation ordering and data selection depend only on ranks,
// so this complements MSE as a valuation-quality metric.
func RankCorrelation(estimate, truth []float64) float64 {
	return stat.Spearman(estimate, truth)
}

// PivotSampleSize returns Theorem 1's permutation count for an
// (ϵ, δ)-approximation of the pivot algorithms' RSV, given marginal
// contributions ranging over [−r, r].
func PivotSampleSize(r, eps, delta float64) int { return stat.PivotSamples(r, eps, delta) }

// DeltaAddSampleSize returns Theorem 2's permutation count for an
// (ϵ, δ)-approximation of the delta-based addition estimate, given
// differential marginal contributions bounded by d in absolute value.
func DeltaAddSampleSize(n int, d, eps, delta float64) int {
	return stat.DeltaAddSamples(n, d, eps, delta)
}

// DeltaDeleteSampleSize returns Theorem 4's permutation count for the
// delta-based deletion estimate.
func DeltaDeleteSampleSize(n int, d, eps, delta float64) int {
	return stat.DeltaDeleteSamples(n, d, eps, delta)
}
