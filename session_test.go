package dynshap

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

// fixture returns a small Iris-like train/test pair with a cheap utility
// model (KNN) so session tests run fast.
func fixture(t *testing.T, n int) (*Dataset, *Dataset) {
	t.Helper()
	d := IrisLike(n+30, 7)
	d.Standardize()
	train := d.Subset(seq(0, n))
	test := d.Subset(seq(n, n+30))
	return train, test
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func newTestSession(t *testing.T, n int, opts ...Option) *Session {
	t.Helper()
	train, test := fixture(t, n)
	base := []Option{WithSamples(30 * n), WithSeed(3), WithHeuristicK(3)}
	return NewSession(train, test, KNNClassifier{K: 3}, append(base, opts...)...)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestSessionInitValues(t *testing.T) {
	s := newTestSession(t, 12)
	if s.Values() != nil {
		t.Fatal("values before Init should be nil")
	}
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	sv := s.Values()
	if len(sv) != 12 {
		t.Fatalf("len(Values) = %d", len(sv))
	}
	// Balance: ΣSV = U(N) − U(∅) ∈ [−1, 1]; for an accuracy utility with a
	// sensible model the total should be positive.
	if total := sum(sv); total <= 0 || total > 1 {
		t.Fatalf("ΣSV = %v, expected in (0, 1]", total)
	}
	if s.N() != 12 {
		t.Fatalf("N = %d", s.N())
	}
	// The k-NN utility supports incremental prefix evaluation, so the walk
	// trains no models at all — the work shows up as prefix adds instead.
	if s.ModelTrainings()+s.PrefixAdds() == 0 {
		t.Fatal("no utility work recorded")
	}
	if s.PrefixAdds() == 0 {
		t.Fatal("k-NN session did not use the incremental prefix path")
	}
}

func TestSessionUpdateBeforeInitFails(t *testing.T) {
	s := newTestSession(t, 8)
	if _, err := s.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoDelta); err != ErrNotInitialized {
		t.Fatalf("Add err = %v, want ErrNotInitialized", err)
	}
	if _, err := s.Delete([]int{0}, AlgoDelta); err != ErrNotInitialized {
		t.Fatalf("Delete err = %v, want ErrNotInitialized", err)
	}
}

func TestSessionAddAlgorithmsAgree(t *testing.T) {
	// All sampling-based addition algorithms must land near the from-scratch
	// MC estimate on the extended set.
	algos := []Algorithm{AlgoPivotSame, AlgoPivotDifferent, AlgoDelta, AlgoMonteCarlo}
	p := Point{X: []float64{0.1, -0.2, 0.3, 0}, Y: 1}
	results := map[Algorithm][]float64{}
	for _, algo := range algos {
		s := newTestSession(t, 10, WithKeepPermutations())
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		got, err := s.Add([]Point{p}, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(got) != 11 {
			t.Fatalf("%v: len = %d", algo, len(got))
		}
		if s.N() != 11 {
			t.Fatalf("%v: N = %d", algo, s.N())
		}
		results[algo] = got
	}
	ref := results[AlgoMonteCarlo]
	for _, algo := range algos[:3] {
		if m := MSE(results[algo], ref); m > 5e-3 {
			t.Errorf("%v MSE vs MC = %v", algo, m)
		}
	}
}

func TestSessionAddHeuristics(t *testing.T) {
	s := newTestSession(t, 10)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	before := s.Values()
	trainings := s.ModelTrainings()
	p := Point{X: []float64{0, 0, 0, 0}, Y: 0}
	got, err := s.Add([]Point{p}, AlgoKNN)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range before {
		if got[i] != before[i] {
			t.Fatal("KNN changed original values")
		}
	}
	if s.ModelTrainings() != trainings {
		t.Fatal("KNN heuristic should not train models")
	}
}

func TestSessionAddKNNPlus(t *testing.T) {
	s := newTestSession(t, 10, WithKNNPlusConfig(KNNPlusConfig{CurveSamples: 4, CurveTau: 50, Degree: 2}))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoKNNPlus)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestSessionAddBase(t *testing.T) {
	s := newTestSession(t, 8)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	before := s.Values()
	got, err := s.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoBase)
	if err != nil {
		t.Fatal(err)
	}
	avg := sum(before) / float64(len(before))
	if math.Abs(got[8]-avg) > 1e-12 {
		t.Fatalf("Base new value = %v, want avg %v", got[8], avg)
	}
}

func TestSessionDeleteYNNNMatchesMC(t *testing.T) {
	s := newTestSession(t, 10, WithTrackDeletions())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	trainingsBefore := s.ModelTrainings()
	got, err := s.Delete([]int{4}, AlgoYNNN)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("len = %d", len(got))
	}
	if s.ModelTrainings() != trainingsBefore {
		t.Fatal("YN-NN deletion trained models")
	}
	if s.N() != 9 {
		t.Fatalf("N = %d", s.N())
	}
	// Compare against a from-scratch MC on the reduced set.
	s2 := newTestSession(t, 10)
	if err := s2.Init(); err != nil {
		t.Fatal(err)
	}
	ref, err := s2.Delete([]int{4}, AlgoMonteCarlo)
	if err != nil {
		t.Fatal(err)
	}
	if m := MSE(got, ref); m > 5e-3 {
		t.Fatalf("YN-NN vs MC MSE = %v", m)
	}
}

func TestSessionDeleteMultiYNNN(t *testing.T) {
	s := newTestSession(t, 9, WithTrackDeletions(), WithMultiDelete(2, []int{1, 3, 5}))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Delete([]int{5, 1}, AlgoYNNN)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("len = %d", len(got))
	}
	// Uncovered pair must fail cleanly.
	s2 := newTestSession(t, 9, WithTrackDeletions(), WithMultiDelete(2, []int{1, 3, 5}))
	if err := s2.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Delete([]int{0, 2}, AlgoYNNN); err == nil {
		t.Fatal("uncovered tuple should fail")
	}
}

func TestSessionDeleteDelta(t *testing.T) {
	s := newTestSession(t, 10)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Delete([]int{2, 7}, AlgoDelta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("len = %d", len(got))
	}
	s2 := newTestSession(t, 10)
	if err := s2.Init(); err != nil {
		t.Fatal(err)
	}
	ref, err := s2.Delete([]int{2, 7}, AlgoMonteCarlo)
	if err != nil {
		t.Fatal(err)
	}
	if m := MSE(got, ref); m > 5e-3 {
		t.Fatalf("Delta vs MC MSE = %v", m)
	}
}

func TestSessionDeleteValidation(t *testing.T) {
	s := newTestSession(t, 6, WithTrackDeletions())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{6}, AlgoYNNN); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if _, err := s.Delete([]int{1, 1}, AlgoYNNN); err == nil {
		t.Fatal("duplicate index should fail")
	}
	if _, err := s.Delete([]int{0, 1}, AlgoYNNN); err == nil {
		t.Fatal("multi delete without multi store should fail")
	}
	if _, err := s.Delete([]int{0}, AlgoBase); err == nil {
		t.Fatal("Base cannot delete")
	}
}

func TestSessionYNNNStaleAfterUpdate(t *testing.T) {
	s := newTestSession(t, 8, WithTrackDeletions())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoKNN); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{0}, AlgoYNNN); err != ErrStaleStores {
		t.Fatalf("err = %v, want ErrStaleStores", err)
	}
	// Refresh rebuilds the arrays for the new player set.
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{0}, AlgoYNNN); err != nil {
		t.Fatalf("after Refresh: %v", err)
	}
}

func TestSessionInterleavedAddDelete(t *testing.T) {
	// §V-C: delta-based updates support interleaved dynamics end to end.
	s := newTestSession(t, 10)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add([]Point{{X: []float64{0.5, 0.5, 0.5, 0.5}, Y: 1}}, AlgoDelta); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{0}, AlgoDelta); err != nil {
		t.Fatal(err)
	}
	got, err := s.Add([]Point{{X: []float64{-0.5, 0, 0, 0}, Y: 2}}, AlgoDelta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 || s.N() != 11 {
		t.Fatalf("size after interleaving: %d/%d", len(got), s.N())
	}
	// Sanity: values stay in a plausible accuracy-shaped range.
	for i, v := range got {
		if math.Abs(v) > 1 {
			t.Fatalf("value %d = %v implausible", i, v)
		}
	}
}

func TestSessionAddEmptyAndDeleteEmpty(t *testing.T) {
	s := newTestSession(t, 6)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	before := s.Values()
	got, err := s.Add(nil, AlgoDelta)
	if err != nil {
		t.Fatal(err)
	}
	if MSE(got, before) != 0 {
		t.Fatal("empty Add changed values")
	}
	got, err = s.Delete(nil, AlgoDelta)
	if err != nil {
		t.Fatal(err)
	}
	if MSE(got, before) != 0 {
		t.Fatal("empty Delete changed values")
	}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() []float64 {
		s := newTestSession(t, 10)
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		got, err := s.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoDelta)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if MSE(a, b) != 0 {
		t.Fatal("same-seed sessions diverge")
	}
}

func TestSessionCacheSavesTrainings(t *testing.T) {
	// Naive Bayes has no incremental prefix path, so every coalition
	// evaluation trains a model unless the cache intercepts it.
	train, test := fixture(t, 10)
	cached := NewSession(train, test, NaiveBayes{}, WithSamples(200), WithSeed(5))
	if err := cached.Init(); err != nil {
		t.Fatal(err)
	}
	uncached := NewSession(train, test, NaiveBayes{}, WithSamples(200), WithSeed(5), WithoutCache())
	if err := uncached.Init(); err != nil {
		t.Fatal(err)
	}
	if cached.ModelTrainings() >= uncached.ModelTrainings() {
		t.Fatalf("cache did not reduce trainings: %d vs %d",
			cached.ModelTrainings(), uncached.ModelTrainings())
	}
	hits, _ := cached.CacheStats()
	if hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestSessionPivotAddReusesCache(t *testing.T) {
	// Uses naive Bayes: with the k-NN trainer the incremental prefix path
	// sidesteps both trainings and the cache, leaving nothing to compare.
	train, test := fixture(t, 10)
	s := NewSession(train, test, NaiveBayes{},
		WithSamples(150), WithSeed(3), WithHeuristicK(3), WithKeepPermutations())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	initTrainings := s.ModelTrainings()
	if _, err := s.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoPivotSame); err != nil {
		t.Fatal(err)
	}
	addTrainings := s.ModelTrainings() - initTrainings
	// Pivot-s re-evaluates only the suffixes: with τ shared, the addition
	// must train well under the init count (≈ half of an MC pass on N⁺).
	if addTrainings >= initTrainings {
		t.Fatalf("Pivot-s trainings %d not below init %d", addTrainings, initTrainings)
	}
}

func TestSessionDataAligned(t *testing.T) {
	s := newTestSession(t, 6)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	p := Point{X: []float64{9, 9, 9, 9}, Y: 2}
	if _, err := s.Add([]Point{p}, AlgoKNN); err != nil {
		t.Fatal(err)
	}
	d := s.Data()
	if d.Len() != 7 || d.Points[6].X[0] != 9 {
		t.Fatal("Data not aligned after Add")
	}
	if _, err := s.Delete([]int{0}, AlgoKNN); err != nil {
		t.Fatal(err)
	}
	if s.Data().Len() != 6 {
		t.Fatal("Data not compacted after Delete")
	}
	if len(s.Values()) != 6 {
		t.Fatal("Values not compacted after Delete")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := newTestSession(t, 8)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	var buf bytes.Buffer
	if _, err := sn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := back.Resume(KNNClassifier{K: 3}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if MSE(resumed.Values(), s.Values()) != 0 {
		t.Fatal("resumed values differ")
	}
	if resumed.N() != 8 {
		t.Fatalf("resumed N = %d", resumed.N())
	}
	// Delta updates work immediately after resume.
	if _, err := resumed.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoDelta); err != nil {
		t.Fatal(err)
	}
	// YNNN requires Refresh.
	if _, err := resumed.Delete([]int{0}, AlgoYNNN); err == nil {
		t.Fatal("YNNN after resume without Refresh should fail")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	s := newTestSession(t, 6)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v.json")
	if err := s.Snapshot().Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Train) != 6 {
		t.Fatalf("loaded %d train points", len(back.Train))
	}
}

func TestSnapshotValidation(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("{")); err == nil {
		t.Fatal("truncated JSON should fail")
	}
	if _, err := ReadSnapshot(bytes.NewBufferString(`{"format":3}`)); err == nil {
		t.Fatal("unknown format should fail")
	}
	if _, err := ReadSnapshot(bytes.NewBufferString(`{"format":1,"train":[],"values":[1]}`)); err == nil {
		t.Fatal("value/train mismatch should fail")
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{
		AlgoMonteCarlo:     "MC",
		AlgoTruncatedMC:    "TMC",
		AlgoBase:           "Base",
		AlgoPivotSame:      "Pivot-s",
		AlgoPivotDifferent: "Pivot-d",
		AlgoDelta:          "Delta",
		AlgoYNNN:           "YN-NN",
		AlgoKNN:            "KNN",
		AlgoKNNPlus:        "KNN+",
		Algorithm(99):      "unknown",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestGameLevelAPI(t *testing.T) {
	g := GameFunc{Players: 3, U: func(s Coalition) float64 {
		if s.Contains(0) && s.Contains(1) {
			return 1
		}
		return 0
	}}
	exact := ExactShapley(g)
	if math.Abs(exact[0]-0.5) > 1e-12 || math.Abs(exact[1]-0.5) > 1e-12 || math.Abs(exact[2]) > 1e-12 {
		t.Fatalf("exact = %v", exact)
	}
	mc := MonteCarloShapley(g, 5000, 1)
	if MSE(mc, exact) > 1e-3 {
		t.Fatalf("MC MSE = %v", MSE(mc, exact))
	}
	par := MonteCarloShapleyParallel(g, 5000, 4, 1)
	if MSE(par, exact) > 1e-3 {
		t.Fatalf("parallel MC MSE = %v", MSE(par, exact))
	}
	tmc := TruncatedMonteCarloShapley(g, 5000, 1e-12, 1)
	if MSE(tmc, exact) > 1e-3 {
		t.Fatalf("TMC MSE = %v", MSE(tmc, exact))
	}
}

func TestSampleSizeHelpers(t *testing.T) {
	if PivotSampleSize(1, 0.1, 0.05) <= 0 {
		t.Fatal("PivotSampleSize not positive")
	}
	// The delta bounds shrink with d — the whole point of §IV-B.
	if DeltaAddSampleSize(100, 0.05, 0.01, 0.05) >= PivotSampleSize(1, 0.01, 0.05) {
		t.Fatal("delta bound should beat pivot bound for small d")
	}
	if DeltaDeleteSampleSize(100, 0.05, 0.01, 0.05) <= 0 {
		t.Fatal("DeltaDeleteSampleSize not positive")
	}
}

func TestCoalitionHelpers(t *testing.T) {
	c := CoalitionOf(5, 1, 3)
	if !c.Contains(1) || !c.Contains(3) || c.Contains(0) {
		t.Fatal("CoalitionOf wrong members")
	}
	if NewCoalition(4).Len() != 0 {
		t.Fatal("NewCoalition not empty")
	}
	if FullCoalition(4).Len() != 4 {
		t.Fatal("FullCoalition not full")
	}
}
