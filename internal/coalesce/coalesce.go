// Package coalesce turns a stream of single-point updates into
// size/time-bounded windows fed to the session's batched walks.
//
// The paper's delta-based algorithms make each update cheap, but a session
// still serialises writers: under concurrent traffic every caller pays a
// full permutation pass for one point, and the batched walks' ~2× win
// (one pass prices k insertions) is unreachable. The coalescer is the
// admission-control primitive that unlocks it: writers submit updates and
// receive a future; a single drainer goroutine closes a window when it
// holds MaxBatch points or MaxDelay has elapsed since the window opened —
// whichever comes first — and executes the whole window as ONE batched
// update. Every future then resolves with its point's per-point
// attribution from that window's journal record.
//
// Determinism: the drainer is the only goroutine that executes updates,
// and it executes them strictly in admitted order (the order submissions
// leave the queue). Window BOUNDARIES depend on timing — how many points
// happened to be queued when a window closed — but the executed sequence
// of (operation, inputs) is recorded in the session journal, so any run is
// bit-identically reproducible by replaying its journal. For the
// stored-permutation path the guarantee is stronger: BatchAddSame is
// bit-identical to per-point AddSame in admitted order, so the final state
// does not depend on where the window boundaries fell at all.
//
// Deletes coalesce too: consecutive delete submissions share a delete
// window executed as ONE batched removal, exactly as consecutive adds
// share an add window. Only the TRANSITION between kinds is a barrier — an
// add arriving at an open delete window (or a delete at an open add
// window) closes it first, so every submission still executes against the
// state all earlier submissions produced. Delete indices are interpreted
// against that submission-time state; inside a delete window each later
// submission's indices are remapped past the slots its window predecessors
// vacated, so the merged removal deletes exactly the points every caller
// named (see SubmitDelete).
package coalesce

import (
	"errors"
	"sort"
	"sync"
	"time"

	"dynshap/internal/dataset"
)

// ErrClosed is returned by submissions admitted after Close.
var ErrClosed = errors.New("coalesce: submit queue closed")

// Batch is an executor's report for one executed window: the state version
// it produced, the algorithm that ran, the player count before the window
// applied, and each admitted point's attributed value in admitted order —
// for adds the appended points' values, for deletes the departing points'
// pre-delete values (index-aligned with the merged indices ExecDelete
// received).
type Batch struct {
	Version int
	Algo    string
	Base    int
	Values  []float64
}

// Executor applies closed windows to the underlying store. ExecAdd
// receives an add window's points in admitted order; ExecDelete receives a
// delete window's merged indices (pre-window numbering) as one batched
// removal. Both run on the drainer goroutine, one at a time.
type Executor interface {
	ExecAdd(points []dataset.Point) (Batch, error)
	ExecDelete(indices []int) (Batch, error)
}

// Result is what a resolved future reports back to its submitter.
type Result struct {
	// Version is the state version the window produced.
	Version int
	// Algo is the algorithm that executed the window.
	Algo string
	// Window is how many submissions shared the executed window.
	Window int
	// Index is the submitted point's index in the post-window numbering
	// (adds; −1 for deletes).
	Index int
	// Value is the submission's attribution from the window's journal
	// record: the added point's value, or the summed pre-delete value of
	// the submission's departing points (0 when the executed path does not
	// attribute removals).
	Value float64
}

// Handle is the future a submission returns. It resolves exactly once,
// when the submission's window has executed (or failed).
type Handle struct {
	done chan struct{}
	res  Result
	err  error
}

func newHandle() *Handle { return &Handle{done: make(chan struct{})} }

// Done returns a channel closed when the handle has resolved.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the submission's window has executed and returns its
// result (or the window's error).
func (h *Handle) Wait() (Result, error) {
	<-h.done
	return h.res, h.err
}

func (h *Handle) resolve(res Result) {
	h.res = res
	close(h.done)
}

func (h *Handle) fail(err error) {
	h.err = err
	close(h.done)
}

// Config bounds a window: it closes at MaxBatch admitted points or
// MaxDelay after the window opened, whichever comes first.
type Config struct {
	// MaxBatch is the window's point capacity k (values < 1 mean 1, which
	// disables coalescing: every add executes alone).
	MaxBatch int
	// MaxDelay is the longest an open window waits for more points before
	// executing anyway (≤ 0: never wait — the window executes as soon as
	// the queue is momentarily empty).
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue; submissions past it block
	// (closed-loop backpressure). Values < 1 select a default of 1024.
	QueueDepth int
}

func (c Config) normalized() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1024
	}
	return c
}

type subKind int

const (
	subAdd subKind = iota
	subDelete
	subFlush
	subStop
)

type submission struct {
	kind    subKind
	point   dataset.Point
	indices []int
	h       *Handle
	flushed chan struct{}
}

// points is how many training points the submission admits into a window —
// the unit MaxBatch bounds.
func (sub submission) points() int {
	if sub.kind == subDelete {
		return len(sub.indices)
	}
	return 1
}

// Coalescer is the admission queue plus its drainer goroutine. Construct
// with New; Close stops the drainer after executing everything admitted.
type Coalescer struct {
	exec Executor
	cfg  Config
	subs chan submission

	mu      sync.RWMutex
	closed  bool
	stopped chan struct{}

	// pts is the drainer's window scratch: the point-slice header handed
	// to ExecAdd, reused across windows. Safe because the drainer executes
	// one window at a time and executors do not retain the slice (the
	// session copies what it keeps); the Point values inside are the
	// per-submission clones, never reused.
	pts []dataset.Point
}

// New starts a coalescer draining into exec under cfg's window bounds.
func New(exec Executor, cfg Config) *Coalescer {
	c := &Coalescer{
		exec:    exec,
		cfg:     cfg.normalized(),
		stopped: make(chan struct{}),
	}
	c.subs = make(chan submission, c.cfg.QueueDepth)
	go c.run()
	return c
}

// SubmitAdd admits one point and returns its future. The point is executed
// inside the window it lands in, in admitted order; the handle resolves
// with the window's version and the point's attributed value.
func (c *Coalescer) SubmitAdd(p dataset.Point) *Handle {
	return c.submit(submission{kind: subAdd, point: p.Clone(), h: newHandle()})
}

// SubmitDelete admits a deletion and returns its future. Indices are
// interpreted against the SUBMISSION-TIME state — the state after every
// previously admitted update has applied — exactly as if the caller had
// run a synchronous Delete at its place in the admitted order.
//
// Consecutive deletions coalesce: an open delete window absorbs the
// submission, and when the window closes (at MaxBatch total indices or
// MaxDelay) every admitted removal executes as ONE batched delete. Because
// earlier submissions in the window shift the numbering later callers
// observed, each submission's indices are remapped past the slots its
// window predecessors vacated before the merged removal runs — the merged
// window deletes exactly the points every caller named. An add submission
// closes an open delete window (and vice versa); only that kind transition
// is a barrier. A window fails as a unit: one submission's out-of-range
// index fails every future sharing its window.
func (c *Coalescer) SubmitDelete(indices []int) *Handle {
	return c.submit(submission{
		kind:    subDelete,
		indices: append([]int(nil), indices...),
		h:       newHandle(),
	})
}

func (c *Coalescer) submit(sub submission) *Handle {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		sub.h.fail(ErrClosed)
		return sub.h
	}
	c.subs <- sub
	return sub.h
}

// Flush blocks until every submission admitted before the call has
// executed. On a closed coalescer it returns immediately (Close already
// drained everything).
func (c *Coalescer) Flush() error {
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil
	}
	flushed := make(chan struct{})
	c.subs <- submission{kind: subFlush, flushed: flushed}
	c.mu.RUnlock()
	<-flushed
	return nil
}

// Close executes everything already admitted, stops the drainer, and fails
// later submissions with ErrClosed. Safe to call more than once.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.stopped
		return nil
	}
	c.closed = true
	// Send the stop token while still holding the write lock: no reader
	// can be mid-send (submit holds the read lock across its send), so the
	// token is guaranteed to be the queue's last element.
	c.subs <- submission{kind: subStop}
	c.mu.Unlock()
	<-c.stopped
	return nil
}

// run is the drainer: the single goroutine that owns window state and
// executes every admitted update in order.
func (c *Coalescer) run() {
	defer close(c.stopped)
	var window []submission
	// winKind is the open window's kind (meaningful while len(window) > 0);
	// winPoints is how many training points it has admitted — the unit
	// MaxBatch bounds (an add is one point, a delete submission carries
	// len(indices) of them).
	var winKind subKind
	var winPoints int
	var timer *time.Timer
	var timerC <-chan time.Time
	disarm := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	closeWindow := func() {
		disarm()
		if len(window) == 0 {
			return
		}
		if winKind == subDelete {
			c.execDeleteWindow(window)
		} else {
			c.execWindow(window)
		}
		window = window[:0]
		winPoints = 0
	}
	// admit appends an add/delete submission to the open window, closing it
	// first when the kinds differ — the add↔delete transition is the only
	// barrier left in the pipeline.
	admit := func(sub submission) {
		if len(window) > 0 && winKind != sub.kind {
			closeWindow()
		}
		winKind = sub.kind
		window = append(window, sub)
		winPoints += sub.points()
	}
	// barrier handles the control submissions. Callers close the open
	// window first. Returns true when the drainer should stop.
	barrier := func(sub submission) bool {
		switch sub.kind {
		case subFlush:
			close(sub.flushed)
		case subStop:
			return true
		}
		return false
	}
	for {
		select {
		case sub := <-c.subs:
			if sub.kind != subAdd && sub.kind != subDelete {
				closeWindow()
				if barrier(sub) {
					return
				}
				continue
			}
			admit(sub)
			// Greedily absorb whatever is already queued, up to capacity:
			// under load the window fills from the backlog without paying
			// the MaxDelay latency. A kind transition mid-backlog closes
			// the open window inside admit and keeps filling the new one.
		greedy:
			for winPoints < c.cfg.MaxBatch {
				select {
				case sub2 := <-c.subs:
					if sub2.kind == subAdd || sub2.kind == subDelete {
						admit(sub2)
						continue
					}
					closeWindow()
					if barrier(sub2) {
						return
					}
				default:
					break greedy
				}
			}
			switch {
			case winPoints >= c.cfg.MaxBatch:
				closeWindow()
			case c.cfg.MaxDelay <= 0:
				// Never wait: the queue is momentarily empty, execute now.
				closeWindow()
			case timerC == nil && len(window) > 0:
				timer = time.NewTimer(c.cfg.MaxDelay)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			closeWindow()
		}
	}
}

// execWindow runs one closed window through the executor and resolves its
// futures with their per-point attribution.
func (c *Coalescer) execWindow(window []submission) {
	pts := c.pts[:0]
	for _, sub := range window {
		pts = append(pts, sub.point)
	}
	c.pts = pts
	b, err := c.exec.ExecAdd(pts)
	if err != nil {
		for _, sub := range window {
			sub.h.fail(err)
		}
		return
	}
	for i, sub := range window {
		res := Result{
			Version: b.Version,
			Algo:    b.Algo,
			Window:  len(window),
			Index:   b.Base + i,
		}
		if i < len(b.Values) {
			res.Value = b.Values[i]
		}
		sub.h.resolve(res)
	}
}

// execDeleteWindow merges one closed delete window into a single batched
// removal. Every submission named its indices against the state it
// observed at submission time — i.e. after each earlier submission in the
// window applied — so later submissions' indices are remapped to the
// window's PRE-delete numbering before the merged ExecDelete runs: a
// sorted set of already-doomed original slots shifts each index past the
// positions its predecessors vacated. The merged removal therefore deletes
// exactly the points every caller named, and executing it as one batch is
// bit-reproducible from the journal like any other recorded update.
func (c *Coalescer) execDeleteWindow(window []submission) {
	var doomed []int // pre-window indices already claimed, ascending
	merged := make([]int, 0, len(window))
	for _, sub := range window {
		// All of one submission's indices were named against the SAME
		// observed state, so they are remapped against the doomed set as it
		// stood when the submission arrived — only then do they join it.
		at := len(merged)
		for _, idx := range sub.indices {
			orig := idx
			for _, d := range doomed {
				if d > orig {
					break
				}
				orig++
			}
			merged = append(merged, orig)
		}
		for _, orig := range merged[at:] {
			pos := sort.SearchInts(doomed, orig)
			doomed = append(doomed, 0)
			copy(doomed[pos+1:], doomed[pos:])
			doomed[pos] = orig
		}
	}
	b, err := c.exec.ExecDelete(merged)
	if err != nil {
		for _, sub := range window {
			sub.h.fail(err)
		}
		return
	}
	at := 0
	for _, sub := range window {
		res := Result{Version: b.Version, Algo: b.Algo, Window: len(window), Index: -1}
		for j := 0; j < len(sub.indices) && at+j < len(b.Values); j++ {
			res.Value += b.Values[at+j]
		}
		at += len(sub.indices)
		sub.h.resolve(res)
	}
}
