// Package coalesce turns a stream of single-point updates into
// size/time-bounded windows fed to the session's batched walks.
//
// The paper's delta-based algorithms make each update cheap, but a session
// still serialises writers: under concurrent traffic every caller pays a
// full permutation pass for one point, and the batched walks' ~2× win
// (one pass prices k insertions) is unreachable. The coalescer is the
// admission-control primitive that unlocks it: writers submit updates and
// receive a future; a single drainer goroutine closes a window when it
// holds MaxBatch points or MaxDelay has elapsed since the window opened —
// whichever comes first — and executes the whole window as ONE batched
// update. Every future then resolves with its point's per-point
// attribution from that window's journal record.
//
// Determinism: the drainer is the only goroutine that executes updates,
// and it executes them strictly in admitted order (the order submissions
// leave the queue). Window BOUNDARIES depend on timing — how many points
// happened to be queued when a window closed — but the executed sequence
// of (operation, inputs) is recorded in the session journal, so any run is
// bit-identically reproducible by replaying its journal. For the
// stored-permutation path the guarantee is stronger: BatchAddSame is
// bit-identical to per-point AddSame in admitted order, so the final state
// does not depend on where the window boundaries fell at all.
//
// Deletes are barriers: a delete submission closes the open window,
// executes the pending adds first, then runs the delete alone. That keeps
// delete indices meaningful (they were named against a state the caller
// observed) and keeps the add windows same-shaped for the batch planner.
package coalesce

import (
	"errors"
	"sync"
	"time"

	"dynshap/internal/dataset"
)

// ErrClosed is returned by submissions admitted after Close.
var ErrClosed = errors.New("coalesce: submit queue closed")

// Batch is an executor's report for one executed window: the state version
// it produced, the algorithm that ran, the player count before the window
// applied, and — for adds — each admitted point's attributed value in
// admitted order.
type Batch struct {
	Version int
	Algo    string
	Base    int
	Values  []float64
}

// Executor applies closed windows to the underlying store. ExecAdd
// receives every open window's points in admitted order; ExecDelete runs a
// delete barrier. Both run on the drainer goroutine, one at a time.
type Executor interface {
	ExecAdd(points []dataset.Point) (Batch, error)
	ExecDelete(indices []int) (Batch, error)
}

// Result is what a resolved future reports back to its submitter.
type Result struct {
	// Version is the state version the window produced.
	Version int
	// Algo is the algorithm that executed the window.
	Algo string
	// Window is how many submissions shared the executed window (1 for
	// delete barriers).
	Window int
	// Index is the submitted point's index in the post-window numbering
	// (adds; −1 for deletes).
	Index int
	// Value is the point's per-point attribution from the window's journal
	// record (adds; 0 for deletes).
	Value float64
}

// Handle is the future a submission returns. It resolves exactly once,
// when the submission's window has executed (or failed).
type Handle struct {
	done chan struct{}
	res  Result
	err  error
}

func newHandle() *Handle { return &Handle{done: make(chan struct{})} }

// Done returns a channel closed when the handle has resolved.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the submission's window has executed and returns its
// result (or the window's error).
func (h *Handle) Wait() (Result, error) {
	<-h.done
	return h.res, h.err
}

func (h *Handle) resolve(res Result) {
	h.res = res
	close(h.done)
}

func (h *Handle) fail(err error) {
	h.err = err
	close(h.done)
}

// Config bounds a window: it closes at MaxBatch admitted points or
// MaxDelay after the window opened, whichever comes first.
type Config struct {
	// MaxBatch is the window's point capacity k (values < 1 mean 1, which
	// disables coalescing: every add executes alone).
	MaxBatch int
	// MaxDelay is the longest an open window waits for more points before
	// executing anyway (≤ 0: never wait — the window executes as soon as
	// the queue is momentarily empty).
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue; submissions past it block
	// (closed-loop backpressure). Values < 1 select a default of 1024.
	QueueDepth int
}

func (c Config) normalized() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1024
	}
	return c
}

type subKind int

const (
	subAdd subKind = iota
	subDelete
	subFlush
	subStop
)

type submission struct {
	kind    subKind
	point   dataset.Point
	indices []int
	h       *Handle
	flushed chan struct{}
}

// Coalescer is the admission queue plus its drainer goroutine. Construct
// with New; Close stops the drainer after executing everything admitted.
type Coalescer struct {
	exec Executor
	cfg  Config
	subs chan submission

	mu      sync.RWMutex
	closed  bool
	stopped chan struct{}

	// pts is the drainer's window scratch: the point-slice header handed
	// to ExecAdd, reused across windows. Safe because the drainer executes
	// one window at a time and executors do not retain the slice (the
	// session copies what it keeps); the Point values inside are the
	// per-submission clones, never reused.
	pts []dataset.Point
}

// New starts a coalescer draining into exec under cfg's window bounds.
func New(exec Executor, cfg Config) *Coalescer {
	c := &Coalescer{
		exec:    exec,
		cfg:     cfg.normalized(),
		stopped: make(chan struct{}),
	}
	c.subs = make(chan submission, c.cfg.QueueDepth)
	go c.run()
	return c
}

// SubmitAdd admits one point and returns its future. The point is executed
// inside the window it lands in, in admitted order; the handle resolves
// with the window's version and the point's attributed value.
func (c *Coalescer) SubmitAdd(p dataset.Point) *Handle {
	return c.submit(submission{kind: subAdd, point: p.Clone(), h: newHandle()})
}

// SubmitDelete admits a delete barrier: the open window executes first,
// then the delete runs alone. Indices are interpreted against the state
// after every previously admitted update has applied.
func (c *Coalescer) SubmitDelete(indices []int) *Handle {
	return c.submit(submission{
		kind:    subDelete,
		indices: append([]int(nil), indices...),
		h:       newHandle(),
	})
}

func (c *Coalescer) submit(sub submission) *Handle {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		sub.h.fail(ErrClosed)
		return sub.h
	}
	c.subs <- sub
	return sub.h
}

// Flush blocks until every submission admitted before the call has
// executed. On a closed coalescer it returns immediately (Close already
// drained everything).
func (c *Coalescer) Flush() error {
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil
	}
	flushed := make(chan struct{})
	c.subs <- submission{kind: subFlush, flushed: flushed}
	c.mu.RUnlock()
	<-flushed
	return nil
}

// Close executes everything already admitted, stops the drainer, and fails
// later submissions with ErrClosed. Safe to call more than once.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.stopped
		return nil
	}
	c.closed = true
	// Send the stop token while still holding the write lock: no reader
	// can be mid-send (submit holds the read lock across its send), so the
	// token is guaranteed to be the queue's last element.
	c.subs <- submission{kind: subStop}
	c.mu.Unlock()
	<-c.stopped
	return nil
}

// run is the drainer: the single goroutine that owns window state and
// executes every admitted update in order.
func (c *Coalescer) run() {
	defer close(c.stopped)
	var window []submission
	var timer *time.Timer
	var timerC <-chan time.Time
	disarm := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	closeWindow := func() {
		disarm()
		if len(window) == 0 {
			return
		}
		c.execWindow(window)
		window = window[:0]
	}
	// barrier handles the non-add submission kinds. Callers close the open
	// window first. Returns true when the drainer should stop.
	barrier := func(sub submission) bool {
		switch sub.kind {
		case subDelete:
			c.execDelete(sub)
		case subFlush:
			close(sub.flushed)
		case subStop:
			return true
		}
		return false
	}
	for {
		select {
		case sub := <-c.subs:
			if sub.kind != subAdd {
				closeWindow()
				if barrier(sub) {
					return
				}
				continue
			}
			window = append(window, sub)
			// Greedily absorb whatever is already queued, up to capacity:
			// under load the window fills from the backlog without paying
			// the MaxDelay latency.
		greedy:
			for len(window) < c.cfg.MaxBatch {
				select {
				case sub2 := <-c.subs:
					if sub2.kind == subAdd {
						window = append(window, sub2)
						continue
					}
					closeWindow()
					if barrier(sub2) {
						return
					}
					continue greedy
				default:
					break greedy
				}
			}
			switch {
			case len(window) >= c.cfg.MaxBatch:
				closeWindow()
			case c.cfg.MaxDelay <= 0:
				// Never wait: the queue is momentarily empty, execute now.
				closeWindow()
			case timerC == nil && len(window) > 0:
				timer = time.NewTimer(c.cfg.MaxDelay)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			closeWindow()
		}
	}
}

// execWindow runs one closed window through the executor and resolves its
// futures with their per-point attribution.
func (c *Coalescer) execWindow(window []submission) {
	pts := c.pts[:0]
	for _, sub := range window {
		pts = append(pts, sub.point)
	}
	c.pts = pts
	b, err := c.exec.ExecAdd(pts)
	if err != nil {
		for _, sub := range window {
			sub.h.fail(err)
		}
		return
	}
	for i, sub := range window {
		res := Result{
			Version: b.Version,
			Algo:    b.Algo,
			Window:  len(window),
			Index:   b.Base + i,
		}
		if i < len(b.Values) {
			res.Value = b.Values[i]
		}
		sub.h.resolve(res)
	}
}

// execDelete runs one delete barrier.
func (c *Coalescer) execDelete(sub submission) {
	b, err := c.exec.ExecDelete(sub.indices)
	if err != nil {
		sub.h.fail(err)
		return
	}
	sub.h.resolve(Result{Version: b.Version, Algo: b.Algo, Window: 1, Index: -1})
}
