package coalesce

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dynshap/internal/dataset"
)

// recordingExec is a deterministic fake store: it records every executed
// window in order and attributes each added point its arrival label.
type recordingExec struct {
	mu      sync.Mutex
	version int
	n       int
	windows [][]dataset.Point
	deletes [][]int
	failAdd error
}

func (e *recordingExec) ExecAdd(points []dataset.Point) (Batch, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.failAdd != nil {
		return Batch{}, e.failAdd
	}
	e.version++
	base := e.n
	e.n += len(points)
	cp := make([]dataset.Point, len(points))
	vals := make([]float64, len(points))
	for i, p := range points {
		cp[i] = p.Clone()
		vals[i] = p.X[0]
	}
	e.windows = append(e.windows, cp)
	return Batch{Version: e.version, Algo: "fake-batch", Base: base, Values: vals}, nil
}

func (e *recordingExec) ExecDelete(indices []int) (Batch, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.version++
	e.n -= len(indices)
	e.deletes = append(e.deletes, append([]int(nil), indices...))
	// Attribute each departing point its merged (pre-window) index, so
	// tests can check the per-submission fold.
	vals := make([]float64, len(indices))
	for i, idx := range indices {
		vals[i] = float64(idx)
	}
	return Batch{Version: e.version, Algo: "fake-delete", Values: vals}, nil
}

func pt(label float64) dataset.Point { return dataset.Point{X: []float64{label}, Y: 0} }

// TestWindowFillsToMaxBatch: k sequential submissions from one goroutine
// coalesce into windows of at most MaxBatch, in admitted order, and every
// future resolves with its own attribution and post-window index.
func TestWindowFillsToMaxBatch(t *testing.T) {
	exec := &recordingExec{}
	c := New(exec, Config{MaxBatch: 4, MaxDelay: time.Hour})
	defer c.Close()

	const total = 10
	handles := make([]*Handle, total)
	for i := range handles {
		handles[i] = c.SubmitAdd(pt(float64(i)))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("handle %d: %v", i, err)
		}
		if res.Value != float64(i) {
			t.Fatalf("handle %d resolved with value %g, want %g", i, res.Value, float64(i))
		}
		if res.Index != i {
			t.Fatalf("handle %d resolved with index %d, want %d", i, res.Index, i)
		}
		if res.Algo != "fake-batch" {
			t.Fatalf("handle %d algo %q", i, res.Algo)
		}
	}
	// Admitted order must survive windowing: concatenating the windows
	// reproduces the submission sequence exactly.
	var labels []float64
	for _, w := range exec.windows {
		if len(w) > 4 {
			t.Fatalf("window of %d points exceeds MaxBatch 4", len(w))
		}
		for _, p := range w {
			labels = append(labels, p.X[0])
		}
	}
	if len(labels) != total {
		t.Fatalf("executed %d points, admitted %d", len(labels), total)
	}
	for i, l := range labels {
		if l != float64(i) {
			t.Fatalf("executed order %v does not match admitted order", labels)
		}
	}
}

// TestTimerClosesWindow: a lone submission executes after MaxDelay even
// though the window never fills.
func TestTimerClosesWindow(t *testing.T) {
	exec := &recordingExec{}
	c := New(exec, Config{MaxBatch: 64, MaxDelay: 5 * time.Millisecond})
	defer c.Close()

	h := c.SubmitAdd(pt(7))
	select {
	case <-h.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("window never closed on the delay timer")
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Window != 1 || res.Value != 7 {
		t.Fatalf("got %+v, want window 1 value 7", res)
	}
}

// TestAddDeleteTransitionIsBarrier: a delete closes the open add window
// (pending adds execute first), and an add closes the open delete window —
// only the kind TRANSITION is a barrier now.
func TestAddDeleteTransitionIsBarrier(t *testing.T) {
	exec := &recordingExec{n: 8}
	c := New(exec, Config{MaxBatch: 64, MaxDelay: time.Hour})
	defer c.Close()

	a := c.SubmitAdd(pt(1))
	b := c.SubmitAdd(pt(2))
	d := c.SubmitDelete([]int{0})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := d.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != -1 || res.Algo != "fake-delete" {
		t.Fatalf("delete resolved with %+v", res)
	}
	// The adds must have executed before the delete.
	for _, h := range []*Handle{a, b} {
		select {
		case <-h.Done():
		default:
			t.Fatal("add future unresolved after the delete resolved")
		}
	}
	exec.mu.Lock()
	defer exec.mu.Unlock()
	if len(exec.windows) != 1 || len(exec.windows[0]) != 2 {
		t.Fatalf("windows %v, want one window of 2", exec.windows)
	}
	if len(exec.deletes) != 1 {
		t.Fatalf("deletes %v, want one", exec.deletes)
	}
	if exec.version != 2 {
		t.Fatalf("executed %d updates, want 2 (one add window, one delete window)", exec.version)
	}
}

// TestDeleteWindowCoalescesAndRemaps: consecutive delete submissions share
// one window executed as a single merged removal, with each later
// submission's indices remapped to the pre-window numbering — including
// multi-index submissions, whose indices were all named against the same
// observed state and must not shift each other.
func TestDeleteWindowCoalescesAndRemaps(t *testing.T) {
	exec := &recordingExec{n: 10}
	c := New(exec, Config{MaxBatch: 64, MaxDelay: time.Hour})
	defer c.Close()

	// Submission-time views over originals 0..9:
	//   delete [2]      -> original 2; survivors 0 1 3 4 5 6 7 8 9
	//   delete [2]      -> original 3; survivors 0 1 4 5 6 7 8 9
	//   delete [0, 3]   -> originals 0 and 5 (same observed state for both)
	h1 := c.SubmitDelete([]int{2})
	h2 := c.SubmitDelete([]int{2})
	h3 := c.SubmitDelete([]int{0, 3})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	exec.mu.Lock()
	deletes := exec.deletes
	exec.mu.Unlock()
	if len(deletes) != 1 {
		t.Fatalf("executed %d delete windows, want 1 merged: %v", len(deletes), deletes)
	}
	want := []int{2, 3, 0, 5}
	if len(deletes[0]) != len(want) {
		t.Fatalf("merged indices %v, want %v", deletes[0], want)
	}
	for i, idx := range deletes[0] {
		if idx != want[i] {
			t.Fatalf("merged indices %v, want %v", deletes[0], want)
		}
	}
	// Each submission's attribution is the summed pre-delete value of ITS
	// departing points (the fake attributes each point its merged index).
	for i, tc := range []struct {
		h    *Handle
		want float64
	}{{h1, 2}, {h2, 3}, {h3, 5}} {
		res, err := tc.h.Wait()
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		if res.Window != 3 {
			t.Fatalf("submission %d window %d, want 3", i, res.Window)
		}
		if res.Index != -1 || res.Value != tc.want {
			t.Fatalf("submission %d resolved %+v, want value %g", i, res, tc.want)
		}
	}
}

// TestDeleteWindowClosesAtMaxBatch: MaxBatch bounds the TOTAL indices a
// delete window admits, not the submission count.
func TestDeleteWindowClosesAtMaxBatch(t *testing.T) {
	exec := &recordingExec{n: 32}
	c := New(exec, Config{MaxBatch: 3, MaxDelay: time.Hour})
	defer c.Close()

	c.SubmitDelete([]int{0, 1})
	c.SubmitDelete([]int{0, 1})
	c.SubmitDelete([]int{0})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	exec.mu.Lock()
	defer exec.mu.Unlock()
	for _, d := range exec.deletes {
		if len(d) > 4 {
			t.Fatalf("delete window of %d indices far exceeds MaxBatch 3: %v", len(d), exec.deletes)
		}
	}
	total := 0
	for _, d := range exec.deletes {
		total += len(d)
	}
	if total != 5 || len(exec.deletes) < 2 {
		t.Fatalf("deletes %v: want 5 indices over at least 2 windows", exec.deletes)
	}
}

// TestExecErrorFailsEveryFuture: an executor error propagates to every
// future in the window, and the coalescer keeps serving afterwards.
func TestExecErrorFailsEveryFuture(t *testing.T) {
	boom := errors.New("boom")
	exec := &recordingExec{failAdd: boom}
	c := New(exec, Config{MaxBatch: 2, MaxDelay: time.Hour})
	defer c.Close()

	a := c.SubmitAdd(pt(1))
	b := c.SubmitAdd(pt(2))
	for _, h := range []*Handle{a, b} {
		if _, err := h.Wait(); !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	exec.mu.Lock()
	exec.failAdd = nil
	exec.mu.Unlock()
	ok := c.SubmitAdd(pt(3))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if res, err := ok.Wait(); err != nil || res.Value != 3 {
		t.Fatalf("post-error submit: %+v, %v", res, err)
	}
}

// TestCloseDrainsAndRejects: Close executes everything admitted, later
// submissions fail with ErrClosed, Flush on a closed coalescer is a no-op.
func TestCloseDrainsAndRejects(t *testing.T) {
	exec := &recordingExec{}
	c := New(exec, Config{MaxBatch: 64, MaxDelay: time.Hour})
	h := c.SubmitAdd(pt(1))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatalf("pre-close submission failed: %v", err)
	}
	if _, err := c.SubmitAdd(pt(2)).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
	if _, err := c.SubmitDelete([]int{0}).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close delete: %v, want ErrClosed", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSubmitters: many goroutines submit concurrently; every
// future resolves with its own label, no point is lost or duplicated, and
// windows respect MaxBatch.
func TestConcurrentSubmitters(t *testing.T) {
	exec := &recordingExec{}
	c := New(exec, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer c.Close()

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				label := float64(w*perWriter + i)
				res, err := c.SubmitAdd(pt(label)).Wait()
				if err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if res.Value != label {
					errs <- fmt.Errorf("writer %d: value %g, want %g", w, res.Value, label)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	exec.mu.Lock()
	defer exec.mu.Unlock()
	seen := make(map[float64]bool)
	for _, w := range exec.windows {
		if len(w) > 8 {
			t.Fatalf("window of %d exceeds MaxBatch 8", len(w))
		}
		for _, p := range w {
			if seen[p.X[0]] {
				t.Fatalf("point %g executed twice", p.X[0])
			}
			seen[p.X[0]] = true
		}
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("executed %d distinct points, admitted %d", len(seen), writers*perWriter)
	}
}

// TestMaxBatchOneDisablesCoalescing: every add executes alone.
func TestMaxBatchOneDisablesCoalescing(t *testing.T) {
	exec := &recordingExec{}
	c := New(exec, Config{MaxBatch: 1, MaxDelay: time.Hour})
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.SubmitAdd(pt(float64(i)))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	exec.mu.Lock()
	defer exec.mu.Unlock()
	if len(exec.windows) != 5 {
		t.Fatalf("got %d windows, want 5 singletons", len(exec.windows))
	}
	for _, w := range exec.windows {
		if len(w) != 1 {
			t.Fatalf("window of %d points with MaxBatch 1", len(w))
		}
	}
}

// TestFlushWaitsForAdmitted: Flush returns only after everything admitted
// before it has executed.
func TestFlushWaitsForAdmitted(t *testing.T) {
	exec := &recordingExec{}
	c := New(exec, Config{MaxBatch: 64, MaxDelay: time.Hour})
	defer c.Close()
	handles := make([]*Handle, 10)
	for i := range handles {
		handles[i] = c.SubmitAdd(pt(float64(i)))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		select {
		case <-h.Done():
		default:
			t.Fatalf("handle %d unresolved after Flush returned", i)
		}
	}
}
