// Package benchfmt defines the benchmark-snapshot JSON schema shared by
// cmd/benchsnap (which records `go test -bench` suites) and cmd/loadgen
// (which records server load-test results): entries of named metric maps
// inside a dated snapshot, plus the diff primitives that compare two
// snapshots metric by metric.
//
// Metrics carry their direction in the unit name: ns/op, B/op,
// allocs/op and any unit ending in "-ns" (the load harness's latency
// percentiles) are lower-is-better; any unit ending in "/s" (cellups/s,
// add-ops/s, read-ops/s) is a rate and higher-is-better. Diff consumers
// must flag rate DROPS, not rises — a throughput improvement is not a
// regression.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result: the iteration count and every reported
// metric keyed by its unit (ns/op, B/op, allocs/op, plus custom units such
// as cellups/s from ReportMetric or add-ops/s from the load harness).
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the file layout of BENCH_<date>.json and loadgen's output.
type Snapshot struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	BenchTime  string `json:"benchtime,omitempty"`
	Procs      []int  `json:"procs,omitempty"`
	// PeakRSSBytes is the suite run's high-water resident set size (the
	// `go test` process tree), the number the large-n store work budgets
	// against. 0 on platforms without rusage.
	PeakRSSBytes int64   `json:"peak_rss_bytes,omitempty"`
	Benchmarks   []Entry `json:"benchmarks"`
}

// Load reads a snapshot from the file at path.
func Load(path string) (Snapshot, error) {
	var s Snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Save writes the snapshot to the file at path as indented JSON.
func (s *Snapshot) Save(path string) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// HigherIsBetter reports the unit's direction: rate units (ending "/s")
// improve upward, everything else — times, latencies, allocation counts —
// improves downward.
func HigherIsBetter(unit string) bool { return strings.HasSuffix(unit, "/s") }

// ParseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   3   123456 ns/op   789 B/op   2 allocs/op   1.5e+07 cellups/s
//
// i.e. the name, the iteration count, then (value, unit) pairs — which is
// exactly how custom testing.B.ReportMetric units are printed too.
func ParseBenchLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{
		Name:       CanonicalName(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return Entry{}, false
	}
	// Derive the benchmark's total allocation volume: B/op is a rate, but
	// a memory regression hunt wants the absolute bytes the measured loop
	// churned through.
	if bop, ok := e.Metrics["B/op"]; ok {
		e.Metrics["total-alloc-bytes"] = bop * float64(e.Iterations)
	}
	return e, true
}

// CanonicalName rewrites go test's -<procs> benchmark-name suffix as
// @p<procs>. Single-proc rows carry no suffix (go test omits it at
// GOMAXPROCS 1) and keep the bare name, so the reproducible -cpu=1 baseline
// diffs cleanly against snapshots taken before multi-proc variants existed
// or on machines with different core counts. An h<N> sub-benchmark (the
// semivalue head count, `Benchmark…/h4`) is folded into the same schema as
// @h<N>, before any @p suffix, so head-count variants pair like with like
// across snapshots.
func CanonicalName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p >= 1 {
			name = name[:i] + "@p" + name[i+1:]
		}
	}
	if i := strings.LastIndex(name, "/h"); i > 0 {
		rest := name[i+2:]
		if j := strings.IndexByte(rest, '@'); j >= 0 {
			rest = rest[:j]
		}
		if h, err := strconv.Atoi(rest); err == nil && h >= 1 && !strings.ContainsRune(rest, '/') {
			name = name[:i] + "@h" + name[i+2:]
		}
	}
	return name
}

// DiffEntry is one benchmark's old/new comparison on a single unit.
type DiffEntry struct {
	Name     string
	Old, New float64
	// Delta is the fractional change (New−Old)/Old. Whether positive is a
	// regression depends on the unit's direction — see Regressed.
	Delta float64
}

// Diff pairs the two snapshots' benchmarks by name on the given unit and
// returns the shared comparisons plus the names present on only one side.
// Shared entries keep the new snapshot's order.
func Diff(oldS, newS Snapshot, unit string) (shared []DiffEntry, onlyOld, onlyNew []string) {
	oldVals := make(map[string]float64, len(oldS.Benchmarks))
	for _, e := range oldS.Benchmarks {
		if v, ok := e.Metrics[unit]; ok {
			oldVals[e.Name] = v
		}
	}
	seen := make(map[string]bool, len(newS.Benchmarks))
	for _, e := range newS.Benchmarks {
		v, ok := e.Metrics[unit]
		if !ok {
			continue
		}
		seen[e.Name] = true
		old, both := oldVals[e.Name]
		if !both {
			onlyNew = append(onlyNew, e.Name)
			continue
		}
		d := DiffEntry{Name: e.Name, Old: old, New: v}
		if old != 0 {
			d.Delta = (v - old) / old
		}
		shared = append(shared, d)
	}
	for _, e := range oldS.Benchmarks {
		if _, ok := e.Metrics[unit]; ok && !seen[e.Name] {
			onlyOld = append(onlyOld, e.Name)
		}
	}
	return shared, onlyOld, onlyNew
}

// Regressed filters the comparisons that got WORSE past the threshold in
// the unit's own direction: for lower-is-better units a rise beyond
// +threshold, for rate units (HigherIsBetter) a drop beyond −threshold.
// Improvements are never regressions, whichever way they point.
func Regressed(shared []DiffEntry, threshold float64, unit string) []DiffEntry {
	var out []DiffEntry
	for _, d := range shared {
		if worsened(d.Delta, threshold, unit) {
			out = append(out, d)
		}
	}
	return out
}

func worsened(delta, threshold float64, unit string) bool {
	if HigherIsBetter(unit) {
		return delta < -threshold
	}
	return delta > threshold
}

// Units returns every metric unit present in either snapshot, sorted for
// deterministic iteration.
func Units(snaps ...Snapshot) []string {
	set := map[string]bool{}
	for _, s := range snaps {
		for _, e := range s.Benchmarks {
			for u := range e.Metrics {
				set[u] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
