package benchfmt

import (
	"path/filepath"
	"reflect"
	"testing"
)

func rateEntry(name string, ops float64) Entry {
	return Entry{Name: name, Iterations: 1, Metrics: map[string]float64{"add-ops/s": ops}}
}

func TestHigherIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": false, "B/op": false, "allocs/op": false,
		"p50-ns": false, "p99-ns": false, "total-alloc-bytes": false,
		"cellups/s": true, "add-ops/s": true, "read-ops/s": true, "ops/s": true,
	} {
		if got := HigherIsBetter(unit); got != want {
			t.Errorf("HigherIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

// TestRateRegressionDirection is the satellite's point: a throughput DROP
// fails, a throughput improvement never does — the opposite polarity of
// ns/op.
func TestRateRegressionDirection(t *testing.T) {
	oldS := Snapshot{Benchmarks: []Entry{
		rateEntry("LoadgenAdd", 1000),
		rateEntry("LoadgenRead", 5000),
	}}
	newS := Snapshot{Benchmarks: []Entry{
		rateEntry("LoadgenAdd", 800),   // −20%: a real regression
		rateEntry("LoadgenRead", 9000), // +80%: an improvement, never flagged
	}}
	shared, _, _ := Diff(oldS, newS, "add-ops/s")
	if bad := Regressed(shared, 0.10, "add-ops/s"); len(bad) != 1 || bad[0].Name != "LoadgenAdd" {
		t.Fatalf("rate drop: regressed = %v, want only LoadgenAdd", bad)
	}
	// The same comparisons judged with lower-is-better polarity would have
	// flagged the improvement instead — guard the asymmetry explicitly.
	shared, _, _ = Diff(oldS, newS, "add-ops/s")
	for _, d := range shared {
		if d.Name == "LoadgenRead" && worsened(d.Delta, 0.10, "add-ops/s") {
			t.Fatal("throughput improvement flagged as regression")
		}
	}
	// Latency percentiles regress by rising, like ns/op.
	lat := []DiffEntry{{Name: "p99", Delta: 0.5}, {Name: "p50", Delta: -0.5}}
	if bad := Regressed(lat, 0.10, "p99-ns"); len(bad) != 1 || bad[0].Name != "p99" {
		t.Fatalf("latency rise: regressed = %v, want only p99", bad)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	s := Snapshot{
		Date:       "2026-08-08",
		GoVersion:  "go1.24.0",
		GOMAXPROCS: 1,
		Benchmarks: []Entry{
			{Name: "LoadgenAddK16N200", Iterations: 412, Metrics: map[string]float64{
				"add-ops/s": 123.4, "p50-ns": 9.1e6, "p99-ns": 4.4e7, "read-ops/s": 88000,
			}},
		},
	}
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, s)
	}
}

func TestUnits(t *testing.T) {
	a := Snapshot{Benchmarks: []Entry{{Metrics: map[string]float64{"ns/op": 1, "B/op": 2}}}}
	b := Snapshot{Benchmarks: []Entry{{Metrics: map[string]float64{"add-ops/s": 3}}}}
	got := Units(a, b)
	want := []string{"B/op", "add-ops/s", "ns/op"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Units = %v, want %v", got, want)
	}
}
