package exact_test

import (
	"math"
	"testing"

	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/exact"
	"dynshap/internal/rng"
)

// labelsOf flattens a dataset's labels for the estimator's constructors.
func labelsOf(d *dataset.Dataset) []int {
	ys := make([]int, d.Len())
	for i, p := range d.Points {
		ys[i] = p.Y
	}
	return ys
}

// build constructs an estimator from scratch over the given sets.
func build(train, test *dataset.Dataset, k, workers int) (*exact.Estimator, *dataset.DistanceKernel) {
	kernel := dataset.NewDistanceKernel(test, train, workers)
	return exact.New(kernel, labelsOf(train), labelsOf(test), k, workers), kernel
}

// TestEstimatorMatchesClosedForm checks the maintained recurrence against
// the independent backward-recurrence implementation (core.KNNShapley) —
// different summation order, so agreement is to tolerance, not bits.
func TestEstimatorMatchesClosedForm(t *testing.T) {
	for _, k := range []int{1, 3, 5, 11} {
		pool := dataset.TwoGaussians(rng.New(42), 160, 6, 3)
		pool.Standardize()
		train, test := pool.Split(120.0 / 160)
		e, _ := build(train, test, k, 0)
		got := e.Values()
		want, err := core.KNNShapley(train, test, k)
		if err != nil {
			t.Fatalf("k=%d: oracle: %v", k, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("k=%d: sv[%d] = %g, oracle %g (diff %g)", k, i, got[i], want[i], got[i]-want[i])
			}
		}
	}
}

// TestDynamicEqualsRebuild drives the estimator through a long random
// add/delete sequence and demands EXACT (bitwise) equality with a
// from-scratch build after every step — the suffix-reuse invariant the
// package documents. The pool contains duplicated points, so distance ties
// are exercised, not just measure-zero-lucky.
func TestDynamicEqualsRebuild(t *testing.T) {
	r := rng.New(7)
	pool := dataset.TwoGaussians(r, 120, 4, 2.5)
	// Duplicate a slice of the pool to force exact distance ties.
	dup := make([]dataset.Point, 0, 30)
	for i := 0; i < 30; i++ {
		dup = append(dup, pool.Points[i].Clone())
	}
	pool = dataset.New(append(pool.Points, dup...))
	pool.Classes = 2
	train, test := pool.Split(90.0 / 150)

	const k = 5
	e, kernel := build(train, test, k, 0)
	cur := train.Clone()
	next := 0 // rotates through test points as an add source

	for step := 0; step < 120; step++ {
		if cur.Len() > 5 && r.Float64() < 0.45 {
			// Delete 1–3 random points.
			cnt := 1 + r.Intn(3)
			if cnt >= cur.Len() {
				cnt = 1
			}
			seen := map[int]bool{}
			idxs := make([]int, 0, cnt)
			for len(idxs) < cnt {
				i := r.Intn(cur.Len())
				if !seen[i] {
					seen[i] = true
					idxs = append(idxs, i)
				}
			}
			phys := make([]int32, len(idxs))
			for t, idx := range idxs {
				phys[t] = kernel.Phys(idx)
			}
			kernel = kernel.Remove(idxs...)
			cur = cur.Remove(idxs...)
			e.Delete(phys, kernel)
		} else {
			// Add 1–2 points, sometimes duplicating an existing one (ties).
			cnt := 1 + r.Intn(2)
			pts := make([]dataset.Point, 0, cnt)
			for t := 0; t < cnt; t++ {
				if cur.Len() > 0 && r.Float64() < 0.3 {
					pts = append(pts, cur.Points[r.Intn(cur.Len())].Clone())
				} else {
					pts = append(pts, test.Points[next%test.Len()].Clone())
					next++
				}
			}
			first := cur.Len()
			kernel = kernel.Append(pts...)
			cur = cur.Append(pts...)
			ys := make([]int, len(pts))
			for t, p := range pts {
				ys[t] = p.Y
			}
			e.Add(kernel, first, ys)
		}

		got := e.Values()
		fresh, _ := build(cur, test, k, 0)
		want := fresh.Values()
		if len(got) != len(want) {
			t.Fatalf("step %d: maintained %d values, rebuild %d", step, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d (n=%d): sv[%d] maintained %v != rebuilt %v — dynamic path diverged",
					step, cur.Len(), i, got[i], want[i])
			}
		}
	}
}

// TestWorkerInvariance checks the bit-identity contract across worker
// counts, for the initial build and after maintenance.
func TestWorkerInvariance(t *testing.T) {
	pool := dataset.TwoGaussians(rng.New(11), 260, 8, 3)
	pool.Standardize()
	train, test := pool.Split(180.0 / 260) // m=80 ≥ the parallel threshold
	adds := make([]dataset.Point, 4)
	for i := range adds {
		adds[i] = test.Points[i].Clone()
	}

	var ref []float64
	for _, workers := range []int{1, 2, 3, 7} {
		e, kernel := build(train, test, 5, workers)
		kernel = kernel.Append(adds...)
		ys := make([]int, len(adds))
		for i, p := range adds {
			ys[i] = p.Y
		}
		e.Add(kernel, train.Len(), ys)
		kernel = kernel.Remove(0, 3)
		e.Delete([]int32{0, 3}, kernel)
		got := e.Values()
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: sv[%d] = %v, workers=1 got %v — parallelism changed bits", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestCloneIsolation verifies a mutated clone never disturbs its origin —
// the property the session's failure-atomicity relies on.
func TestCloneIsolation(t *testing.T) {
	pool := dataset.TwoGaussians(rng.New(3), 80, 4, 3)
	train, test := pool.Split(60.0 / 80)
	e, kernel := build(train, test, 5, 0)
	before := e.Values()

	c := e.Clone()
	k2 := kernel.Append(test.Points[0].Clone())
	c.Add(k2, train.Len(), []int{test.Points[0].Y})
	k3 := k2.Remove(1)
	c.Delete([]int32{kernel.Phys(1)}, k3)

	after := e.Values()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("sv[%d] changed from %v to %v after mutating a clone", i, before[i], after[i])
		}
	}
}

// TestEdgeShapes exercises the degenerate shapes: k larger than n, a
// single point, and an empty test set.
func TestEdgeShapes(t *testing.T) {
	pool := dataset.TwoGaussians(rng.New(5), 40, 3, 3)
	train, test := pool.Split(6.0 / 40)

	// k > n: the closed form still holds.
	e, _ := build(train, test, 50, 0)
	got := e.Values()
	want, err := core.KNNShapley(train, test, 50)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("k>n: sv[%d] = %g, oracle %g", i, got[i], want[i])
		}
	}

	// Single training point: its value is the full soft utility of {it}.
	one := dataset.New([]dataset.Point{train.Points[0].Clone()})
	one.Classes = train.Classes
	e1, _ := build(one, test, 5, 0)
	v := e1.Values()
	if len(v) != 1 {
		t.Fatalf("n=1: got %d values", len(v))
	}

	// Empty test set: all values zero, no panics.
	empty := dataset.New(nil)
	e0, _ := build(train, empty, 5, 0)
	for i, x := range e0.Values() {
		if x != 0 {
			t.Fatalf("m=0: sv[%d] = %v, want 0", i, x)
		}
	}

	// Deleting down to zero and adding back up must not panic.
	small := dataset.New([]dataset.Point{train.Points[0].Clone(), train.Points[1].Clone()})
	small.Classes = train.Classes
	es, ks := build(small, test, 5, 0)
	phys := []int32{ks.Phys(0), ks.Phys(1)}
	ks2 := ks.Remove(0, 1)
	es.Delete(phys, ks2)
	if n := len(es.Values()); n != 0 {
		t.Fatalf("deleted all: %d values", n)
	}
	ks3 := ks2.Append(train.Points[2].Clone())
	es.Add(ks3, 0, []int{train.Points[2].Y})
	if n := len(es.Values()); n != 1 {
		t.Fatalf("re-added one: %d values", n)
	}
}
