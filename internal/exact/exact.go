// Package exact implements the closed-form exact k-NN Shapley estimator of
// Jia et al. ("Efficient task-specific data valuation for nearest neighbor
// algorithms", VLDB 2019) over the session's precomputed distance kernel —
// and makes it *dynamic*: the per-test-point sorted neighbour orders are
// maintained incrementally under insertions and deletions, so an update
// costs O(m·(log n + affected ranks)) order maintenance plus one O(m·n)
// deterministic reduction, instead of any permutation walk.
//
// # The recurrence, in suffix-recomputable form
//
// For one test point t with the training points sorted by distance
// (0-based rank r, 1-based position i = r+1), Jia et al.'s Theorem 1 gives
//
//	s_{α_n} = 1[y_{α_n}=y_t]/max(n,k)
//	s_{α_i} = s_{α_{i+1}} + (1[y_{α_i}=y_t] − 1[y_{α_{i+1}}=y_t])/k · min(k,i)/i
//
// (the base term is usually quoted as 1[·]/n, which assumes n ≥ k; the
// max(n,k) form is the one that matches the soft utility for every n)
//
// The backward recurrence itself cannot be reused incrementally — its base
// term 1[·]/n changes globally whenever n does. The estimator therefore
// stores the telescoped prefix form: the pairwise differences
//
//	d_i = (1[y_{α_i}=y_t] − 1[y_{α_{i+1}}=y_t])/k · min(k,i)/i
//
// depend only on positions i, i+1, and the prefix sums
//
//	t[0] = 0,  t[r] = t[r−1] + d_r          (so t[r] = s_{α_1} − s_{α_{r+1}})
//	s_{α_1} = 1[y_{α_n}=y_t]/max(n,k) + t[n−1]
//	s_{α_{r+1}} = s_{α_1} − t[r]
//
// An insertion or deletion at rank r leaves every d before it — and
// therefore the t prefix up to r — bit-identical, so the estimator
// recomputes t only from r on ("affected ranks") and reads the same
// floating-point results a from-scratch rebuild would produce. That
// invariant is what makes the dynamic path EXACTLY equal — not merely
// close — to recomputation, and it is enforced by tests after every update
// of a long soak sequence.
//
// # Tie order and physical column ids
//
// Orders store the kernel's physical column ids (see DistanceKernel.Phys):
// within any view, ascending physical id is ascending logical index, so a
// stable sort by distance equals a sort by (distance, physical id).
// Binary insertion places a new point after every equal distance — its
// physical id exceeds all existing ones — reproducing the stable sort;
// deletions remove entries without renumbering anything. Labels live in an
// append-only array indexed by physical id, so no maintained state ever
// needs remapping when logical indices shift.
//
// # Determinism and parallelism
//
// Maintenance is parallel over test columns (each column's state is
// independent) and the value reduction is parallel over disjoint index
// ranges with a fixed ascending summation order per point — both
// bit-identical at any worker count, matching the engine contract.
package exact

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"dynshap/internal/dataset"
)

// Estimator maintains exact k-NN Shapley values over a distance kernel.
// It is a cache in the versioned-store sense: every field is reproducible
// from the kernel and the labels, so snapshots never persist it — Resume
// and ReplayTo rebuild it deterministically. Not safe for concurrent
// mutation; the session serialises updates. Clone before mutating a
// shared instance.
type Estimator struct {
	k       int
	m       int // test points
	workers int
	kernel  *dataset.DistanceKernel

	// testLab[j] is test point j's label; physLab[p] the label of the
	// training point backing physical column p (append-only, survives
	// deletions — tombstoned columns keep their label).
	testLab []int32
	physLab []int32

	// orders[j] lists live physical column ids by ascending (distance to
	// test j, physical id) — the stable-sorted neighbour order. tvals[j]
	// holds the prefix sums t above, index-aligned with orders[j]; s1[j]
	// is s_{α_1}, the nearest neighbour's per-test Shapley value.
	orders [][]int32
	tvals  [][]float64
	s1     []float64

	// sv caches the reduced values by logical index; dirty marks it stale
	// after maintenance. contrib is the reduction's scatter buffer,
	// physical-id-major (contrib[p·m+j] = per-test contribution of the
	// point at physical column p for test j).
	sv      []float64
	contrib []float64
	dirty   bool
}

// New builds the estimator from scratch: one stable sort per test column,
// O(m·n log n) total — the only time the full sort runs. trainLabels is
// logical-indexed and must align with kernel's columns; testLabels with
// its rows. k must be ≥ 1.
func New(kernel *dataset.DistanceKernel, trainLabels, testLabels []int, k, workers int) *Estimator {
	n := kernel.Cols()
	m := kernel.Rows()
	e := &Estimator{
		k:       k,
		m:       m,
		workers: workers,
		kernel:  kernel,
		testLab: make([]int32, m),
		physLab: make([]int32, kernel.PhysExtent()),
		orders:  make([][]int32, m),
		tvals:   make([][]float64, m),
		s1:      make([]float64, m),
		dirty:   true,
	}
	for j, y := range testLabels {
		e.testLab[j] = int32(y)
	}
	for i := 0; i < n; i++ {
		e.physLab[kernel.Phys(i)] = int32(trainLabels[i])
	}
	e.parallel(m, func(lo, hi int) {
		sc := newRadixScratch(n)
		for j := lo; j < hi; j++ {
			e.buildColumn(j, sc)
		}
	})
	return e
}

// rankKey pairs one training point's distance to a test point — as the IEEE
// bit pattern of the float64, which orders identically to the numeric value
// for the non-negative distances the kernel produces — with its logical
// index. Sorting by (bits, idx) equals a stable sort by distance: ties keep
// ascending logical order, which is ascending physical id.
type rankKey struct {
	bits uint64
	idx  int32
}

// keyLess orders rankKeys by (bits, idx) — the insertion-sort path for
// short columns.
func keyLess(a, b rankKey) bool {
	return a.bits < b.bits || (a.bits == b.bits && a.idx < b.idx)
}

// radixScratch holds the swap buffer and byte histograms one goroutine
// reuses across the columns it builds.
type radixScratch struct {
	keys []rankKey
	buf  []rankKey
	hist [8][256]int32
}

func newRadixScratch(n int) *radixScratch {
	return &radixScratch{keys: make([]rankKey, n), buf: make([]rankKey, n)}
}

// sortKeys sorts keys by (bits, idx) with an LSD radix sort over the eight
// bytes of bits. Each pass is stable and the input arrives in ascending idx
// order, so equal distances keep ascending idx without idx ever entering a
// key — no comparisons at all, unlike the generic sort whose per-comparison
// indirect call dominated New's profile. Passes whose byte is constant
// across the column (the high exponent bytes, after standardization) are
// skipped. Short columns fall through to insertion sort. Returns the sorted
// slice, which is whichever of sc.keys/sc.buf the final pass landed in.
func sortKeys(sc *radixScratch, n int) []rankKey {
	keys := sc.keys[:n]
	if n <= 32 {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && keyLess(keys[j], keys[j-1]); j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		return keys
	}
	for p := range sc.hist {
		clear(sc.hist[p][:])
	}
	// One counting pass fills all eight histograms; the byte multiset per
	// position is permutation-invariant, so they stay valid for every pass.
	for i := range keys {
		b := keys[i].bits
		for p := 0; p < 8; p++ {
			sc.hist[p][(b>>(8*p))&0xff]++
		}
	}
	probe := keys[0].bits
	src, dst := keys, sc.buf[:n]
	for p := 0; p < 8; p++ {
		h := &sc.hist[p]
		if h[(probe>>(8*p))&0xff] == int32(n) {
			continue // every key shares this byte — nothing to move
		}
		// Exclusive prefix sum: h[c] becomes the first slot for byte c.
		start := int32(0)
		for c := 0; c < 256; c++ {
			cnt := h[c]
			h[c] = start
			start += cnt
		}
		for i := range src {
			c := (src[i].bits >> (8 * p)) & 0xff
			dst[h[c]] = src[i]
			h[c]++
		}
		src, dst = dst, src
	}
	return src
}

// buildColumn sorts test column j from scratch and seeds its recurrence.
func (e *Estimator) buildColumn(j int, sc *radixScratch) {
	n := e.kernel.Cols()
	keys := sc.keys[:n]
	for i := 0; i < n; i++ {
		keys[i] = rankKey{bits: math.Float64bits(e.kernel.At(i, j)), idx: int32(i)}
	}
	sorted := sortKeys(sc, n)
	ord := make([]int32, n, n+n/4+4)
	for r := range sorted {
		ord[r] = e.kernel.Phys(int(sorted[r].idx))
	}
	e.orders[j] = ord
	e.tvals[j] = make([]float64, n, cap(ord))
	e.recompute(j, 0)
}

// recompute refills tvals[j] from index max(from,1) on and refreshes
// s1[j]. Entries before from are untouched — the suffix-reuse invariant.
func (e *Estimator) recompute(j, from int) {
	ord := e.orders[j]
	t := e.tvals[j]
	n := len(ord)
	if n == 0 {
		e.s1[j] = 0
		return
	}
	ty := e.testLab[j]
	if from < 1 {
		t[0] = 0
		from = 1
	}
	kf := float64(e.k)
	for i := from; i < n; i++ {
		// d_i for the 1-based position pair (i, i+1): ranks i−1 and i.
		mi := e.match(ord[i-1], ty)
		mi1 := e.match(ord[i], ty)
		minK := kf
		if fi := float64(i); fi < minK {
			minK = fi
		}
		t[i] = t[i-1] + (mi-mi1)/kf*minK/float64(i)
	}
	// Base term: the farthest point enters the k-window only while the
	// coalition holds fewer than k others, so its value is
	// 1[match]/k · min(k,n)/n — which is 1[match]/max(n,k) in both regimes
	// (the familiar 1[match]/n only once n ≥ k).
	den := float64(n)
	if kf > den {
		den = kf
	}
	e.s1[j] = e.match(ord[n-1], ty)/den + t[n-1]
}

func (e *Estimator) match(p, ty int32) float64 {
	if e.physLab[p] == ty {
		return 1
	}
	return 0
}

// Add registers the points appended to the kernel at logical indices
// first..first+len(labels)−1. kernel must be the post-append view (it
// shares the receiver's physical buffer). Each column binary-inserts the
// new points and recomputes only the affected rank suffix.
func (e *Estimator) Add(kernel *dataset.DistanceKernel, first int, labels []int) {
	e.kernel = kernel
	for len(e.physLab) < kernel.PhysExtent() {
		e.physLab = append(e.physLab, 0)
	}
	phys := make([]int32, len(labels))
	for t, y := range labels {
		p := kernel.Phys(first + t)
		phys[t] = p
		e.physLab[p] = int32(y)
	}
	e.parallel(e.m, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			e.addColumn(j, phys)
		}
	})
	e.dirty = true
}

func (e *Estimator) addColumn(j int, phys []int32) {
	ord := e.orders[j]
	t := e.tvals[j]
	minR := len(ord) + len(phys)
	for _, p := range phys {
		d := e.kernel.AtPhys(p, j)
		// Upper bound: first rank strictly farther than d. The new point's
		// physical id exceeds every existing one, so landing after all
		// equal distances reproduces the stable sort's tie order.
		r := sort.Search(len(ord), func(i int) bool { return e.kernel.AtPhys(ord[i], j) > d })
		ord = append(ord, 0)
		copy(ord[r+1:], ord[r:])
		ord[r] = p
		t = append(t, 0)
		if r < minR {
			minR = r
		}
	}
	e.orders[j] = ord
	e.tvals[j] = t
	e.recompute(j, minR)
}

// Delete unregisters the training points backing the given physical
// columns (obtained via Phys on the PRE-delete view). kernel must be the
// post-delete view. Each column locates the doomed ranks by binary search
// on their (still readable) distances, compacts the order in one pass
// from the first affected rank, and recomputes the suffix.
func (e *Estimator) Delete(removed []int32, kernel *dataset.DistanceKernel) {
	e.kernel = kernel
	e.parallel(e.m, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			e.deleteColumn(j, removed)
		}
	})
	e.dirty = true
}

func (e *Estimator) deleteColumn(j int, removed []int32) {
	ord := e.orders[j]
	minR := len(ord)
	for _, q := range removed {
		d := e.kernel.AtPhys(q, j)
		r := sort.Search(len(ord), func(i int) bool { return e.kernel.AtPhys(ord[i], j) >= d })
		for ord[r] != q {
			r++ // walk the (rare) ties sharing the distance
		}
		copy(ord[r:], ord[r+1:])
		ord = ord[:len(ord)-1]
		if r < minR {
			minR = r
		}
	}
	e.orders[j] = ord
	e.tvals[j] = e.tvals[j][:len(ord)]
	e.recompute(j, minR)
}

// Values returns a copy of the exact Shapley values, logical-indexed to
// match the kernel's current columns, reducing the maintained per-column
// state first if an update left it stale.
func (e *Estimator) Values() []float64 {
	if e.dirty {
		e.reduce()
		e.dirty = false
	}
	return append([]float64(nil), e.sv...)
}

// reduce averages the per-test per-point values into sv in two
// deterministic phases: scatter each column's contributions into the
// physical-id-major buffer (parallel over columns, disjoint writes), then
// gather each logical point's m contributions in ascending test order
// (parallel over disjoint point ranges). The summation order per point is
// fixed, so the result is bit-identical at any worker count — and because
// the reduction always runs in full over maintained state that equals the
// from-scratch state, the published values are exactly the from-scratch
// values.
func (e *Estimator) reduce() {
	n := e.kernel.Cols()
	if cap(e.sv) < n {
		e.sv = make([]float64, n)
	}
	e.sv = e.sv[:n]
	if n == 0 {
		return
	}
	if e.m == 0 {
		for i := range e.sv {
			e.sv[i] = 0
		}
		return
	}
	m := e.m
	need := e.kernel.PhysExtent() * m
	if cap(e.contrib) < need {
		e.contrib = make([]float64, need)
	}
	e.contrib = e.contrib[:need]
	e.parallel(m, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			ord := e.orders[j]
			t := e.tvals[j]
			s1 := e.s1[j]
			for r, p := range ord {
				e.contrib[int(p)*m+j] = s1 - t[r]
			}
		}
	})
	inv := 1 / float64(m)
	e.parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := int(e.kernel.Phys(i)) * m
			acc := 0.0
			for j := 0; j < m; j++ {
				acc += e.contrib[base+j]
			}
			e.sv[i] = acc * inv
		}
	})
}

// Clone returns a deep copy sharing only immutable data (the kernel view
// and test labels), so a session update can mutate the copy while the
// published predecessor keeps serving the original.
func (e *Estimator) Clone() *Estimator {
	c := *e
	c.physLab = append([]int32(nil), e.physLab...)
	c.s1 = append([]float64(nil), e.s1...)
	c.sv = append([]float64(nil), e.sv...)
	c.contrib = nil
	c.orders = make([][]int32, e.m)
	c.tvals = make([][]float64, e.m)
	for j := range e.orders {
		n := len(e.orders[j])
		c.orders[j] = append(make([]int32, 0, n+n/4+4), e.orders[j]...)
		c.tvals[j] = append(make([]float64, 0, cap(c.orders[j])), e.tvals[j]...)
	}
	return &c
}

// N returns the number of training points currently maintained.
func (e *Estimator) N() int { return e.kernel.Cols() }

// K returns the neighbour count the values are exact for.
func (e *Estimator) K() int { return e.k }

// M returns the number of test points.
func (e *Estimator) M() int { return e.m }

// MemoryBytes reports the estimator's own heap footprint (the kernel is
// accounted separately by its owner).
func (e *Estimator) MemoryBytes() int64 {
	var b int64
	for j := range e.orders {
		b += int64(cap(e.orders[j]))*4 + int64(cap(e.tvals[j]))*8
	}
	return b + int64(len(e.physLab))*4 + int64(len(e.testLab))*4 +
		int64(cap(e.s1))*8 + int64(cap(e.sv))*8 + int64(cap(e.contrib))*8
}

// parallel splits [0,n) into contiguous blocks across the estimator's
// workers. Every block writes disjoint state, so scheduling never affects
// results. Small inputs run serially — goroutine startup would dominate.
func (e *Estimator) parallel(n int, f func(lo, hi int)) {
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n < 64 {
		workers = 1
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
