// Package rng provides the deterministic pseudo-random number generation
// used by every sampler in the library.
//
// Reproducibility is a first-class requirement for valuation experiments: a
// broker must be able to re-derive the exact compensation it paid, and the
// benchmark harness must produce identical tables across runs. All samplers
// therefore take an explicit *rng.Source seeded by the caller; none touch
// global state.
//
// The generator is xoshiro256**, seeded through splitmix64 (the construction
// recommended by its authors). Independent parallel streams are derived with
// Split, which uses a splitmix64 jump of the seed so worker streams do not
// overlap in practice.
package rng

import "math"

// Source is a deterministic pseudo-random number generator.
// It is NOT safe for concurrent use; derive one per goroutine with Split.
type Source struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro must not start in the all-zero state; splitmix64 of any seed
	// cannot produce four zero words, but guard for safety.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
	return &s
}

// NewStream returns a Source for the given (seed, stream) pair. Distinct
// streams of one seed are statistically independent — the pair is folded
// through two splitmix64 steps before seeding — and the mapping is pure:
// any party holding the seed can re-derive stream k without replaying
// streams 0..k−1. Versioned session state uses this to give every journal
// version its own reproducible randomness.
func NewStream(seed, stream uint64) *Source {
	x := seed
	s0 := splitmix64(&x)
	x = s0 ^ stream
	return New(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Split returns a new Source whose stream is independent of the receiver's
// subsequent output. It consumes one value from the receiver.
func (r *Source) Split() *Source {
	x := r.Uint64()
	return New(splitmix64(&x))
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless method keeps the fast path branch-free.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm fills p with a uniformly random permutation of {0, …, len(p)−1}
// using the inside-out Fisher–Yates shuffle.
func (r *Source) Perm(p []int) {
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}

// PermN returns a fresh uniformly random permutation of {0, …, n−1}.
func (r *Source) PermN(n int) []int {
	p := make([]int, n)
	r.Perm(p)
	return p
}

// Shuffle randomly permutes the first n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Sample returns k distinct indices drawn uniformly without replacement from
// {0, …, n−1}, in random order. It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	// Partial Fisher–Yates over an index table; O(n) space, O(n+k) time.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
