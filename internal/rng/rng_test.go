package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("split streams identical")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ≈%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const trials = 200000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.PermN(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("PermN(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstPosition(t *testing.T) {
	r := New(17)
	const n, trials = 5, 100000
	counts := make([]int, n)
	p := make([]int, n)
	for i := 0; i < trials; i++ {
		r.Perm(p)
		counts[p[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d first with count %d, want ≈%.0f", i, c, want)
		}
	}
}

func TestSample(t *testing.T) {
	r := New(19)
	got := r.Sample(10, 4)
	if len(got) != 4 {
		t.Fatalf("Sample len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Sample = %v invalid", got)
		}
		seen[v] = true
	}
	if got := r.Sample(3, 3); len(got) != 3 {
		t.Fatalf("Sample(3,3) len = %d", len(got))
	}
	if got := r.Sample(3, 0); len(got) != 0 {
		t.Fatalf("Sample(3,0) len = %d", len(got))
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestShuffle(t *testing.T) {
	r := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Shuffle lost element %d: %v", i, xs)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPerm100(b *testing.B) {
	r := New(1)
	p := make([]int, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Perm(p)
	}
}
