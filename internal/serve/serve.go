// Package serve implements dynshapd's HTTP layer: a registry of named
// valuation sessions, each fronted by its own write-coalescing pipeline,
// with JSON endpoints for creation, async updates, non-blocking reads,
// and durable snapshots.
//
// Updates and reads deliberately take different paths. A POST /add
// submits one point into the session's coalescer and blocks only that
// request's goroutine on the returned future — concurrent adds from many
// clients land in one admission window and are priced by ONE batched
// permutation pass, which is where the batch walks' throughput win
// becomes reachable under traffic the paper's setting implies (many
// independent contributors, one broker). Reads go straight to the
// session's versioned store and never wait behind an open window.
//
// Durability is snapshot-v2 plus a journal tail: every executed update
// appends its journal record as one JSON line to <name>.journal.jsonl;
// a snapshot (explicit endpoint, session close, or server shutdown)
// embeds the full journal and truncates the tail. Restart loads the
// snapshot, then re-executes any tail records past the snapshot version
// with Session.ApplyRecord — bit-identical, because operation randomness
// is keyed by (seed, version).
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynshap"
)

// Config configures a Server.
type Config struct {
	// DataDir is where session snapshots, journal tails, and session
	// metadata live. Empty disables persistence (sessions are
	// memory-only and die with the server).
	DataDir string
}

// Server manages named valuation sessions over HTTP. It implements
// http.Handler; construct with New, and call Close to drain and persist
// every session before exit.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.RWMutex
	sessions map[string]*managed
	closed   bool
}

// managed is one registered session plus its durability state.
type managed struct {
	name string
	meta sessionMeta
	s    *dynshap.Session

	// mu guards the journal tail below. buf and enc are the reused
	// encode buffer: one heap allocation serves every appended record.
	mu         sync.Mutex
	tail       *os.File
	buf        bytes.Buffer
	enc        *json.Encoder
	lastLogged int
}

// sessionMeta is the sidecar record of everything a restart needs that
// the snapshot deliberately does not carry: the trainer selection and
// the runtime-only coalescing bounds.
type sessionMeta struct {
	Model           string `json:"model"`
	KNNK            int    `json:"knn_k,omitempty"`
	CoalesceBatch   int    `json:"coalesce_batch,omitempty"`
	CoalesceDelayUS int64  `json:"coalesce_delay_us,omitempty"`
}

// wirePoint is the JSON shape of one labelled observation.
type wirePoint struct {
	X []float64 `json:"x"`
	Y int       `json:"y"`
}

func toPoints(ws []wirePoint) []dynshap.Point {
	pts := make([]dynshap.Point, len(ws))
	for i, w := range ws {
		pts[i] = dynshap.Point{X: w.X, Y: w.Y}
	}
	return pts
}

// createRequest is the POST /v1/sessions body. Either Synthetic or
// explicit Train/Test points must be given.
type createRequest struct {
	Name      string `json:"name"`
	Synthetic *struct {
		Kind      string  `json:"kind"` // "iris" (default) or "adult"
		Total     int     `json:"total"`
		TrainFrac float64 `json:"train_frac,omitempty"` // default 0.8
		Seed      uint64  `json:"seed,omitempty"`
	} `json:"synthetic,omitempty"`
	Train []wirePoint `json:"train,omitempty"`
	Test  []wirePoint `json:"test,omitempty"`

	Model         string `json:"model,omitempty"` // "knn" (default), "softknn", "svm"
	KNNK          int    `json:"knn_k,omitempty"`
	Samples       int    `json:"samples,omitempty"`
	UpdateSamples int    `json:"update_samples,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	KeepPerms     bool   `json:"keep_permutations,omitempty"`
	Workers       int    `json:"workers,omitempty"`

	CoalesceBatch   int `json:"coalesce_batch,omitempty"`
	CoalesceDelayMS int `json:"coalesce_delay_ms,omitempty"`
}

func trainerFor(meta sessionMeta) (dynshap.Trainer, error) {
	k := meta.KNNK
	if k == 0 {
		k = 5
	}
	switch meta.Model {
	case "", "knn":
		return dynshap.KNNClassifier{K: k}, nil
	case "softknn":
		return dynshap.SoftKNNClassifier{K: k}, nil
	case "svm":
		return dynshap.SVM{}, nil
	default:
		return nil, fmt.Errorf("unknown model %q (want knn, softknn or svm)", meta.Model)
	}
}

// New builds a server and, when cfg.DataDir holds persisted sessions,
// restores each one: snapshot resume plus journal-tail replay.
func New(cfg Config) (*Server, error) {
	sv := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		sessions: make(map[string]*managed),
	}
	sv.routes()
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: data dir: %w", err)
		}
		if err := sv.restoreAll(); err != nil {
			return nil, err
		}
	}
	return sv, nil
}

func (sv *Server) routes() {
	sv.mux.HandleFunc("POST /v1/sessions", sv.handleCreate)
	sv.mux.HandleFunc("GET /v1/sessions", sv.handleList)
	sv.mux.HandleFunc("GET /v1/sessions/{name}", sv.handleInfo)
	sv.mux.HandleFunc("DELETE /v1/sessions/{name}", sv.handleDelete)
	sv.mux.HandleFunc("POST /v1/sessions/{name}/add", sv.handleAdd)
	sv.mux.HandleFunc("POST /v1/sessions/{name}/remove", sv.handleRemove)
	sv.mux.HandleFunc("POST /v1/sessions/{name}/flush", sv.handleFlush)
	sv.mux.HandleFunc("POST /v1/sessions/{name}/snapshot", sv.handleSnapshot)
	sv.mux.HandleFunc("GET /v1/sessions/{name}/values", sv.handleValues)
	sv.mux.HandleFunc("GET /v1/sessions/{name}/topk", sv.handleTopK)
	sv.mux.HandleFunc("GET /v1/sessions/{name}/history", sv.handleHistory)
	sv.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

// ServeHTTP dispatches to the registered routes.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { sv.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// encodeBufs recycles the JSON encode buffers of the hot read endpoints.
// A /values response for a large session is tens of kilobytes; encoding
// into a pooled buffer instead of the ResponseWriter means steady-state
// reads allocate no response-sized garbage and, because the full body is
// in hand before the first byte is written, the response carries an exact
// Content-Length instead of falling back to chunked transfer encoding.
var encodeBufs = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// maxPooledBuf caps what goes back in the pool; a one-off giant response
// should not pin its buffer for the life of the process.
const maxPooledBuf = 1 << 20

// writeJSONPooled encodes v into a pooled buffer, sets Content-Length,
// and writes the body in one shot. Use it on hot read paths; error paths
// and one-shot admin endpoints keep the simpler writeJSON.
func writeJSONPooled(w http.ResponseWriter, status int, v any) {
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		encodeBufs.Put(buf)
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encodeBufs.Put(buf)
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (sv *Server) lookup(name string) (*managed, bool) {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	m, ok := sv.sessions[name]
	return m, ok
}

func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		ok := r == '-' || r == '_' || ('0' <= r && r <= '9') ||
			('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if !validName(req.Name) {
		writeErr(w, http.StatusBadRequest, errors.New("session name must be 1-64 chars of [A-Za-z0-9_-]"))
		return
	}
	var train, test *dynshap.Dataset
	switch {
	case req.Synthetic != nil:
		total := req.Synthetic.Total
		if total <= 0 {
			total = 250
		}
		frac := req.Synthetic.TrainFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.8
		}
		seed := req.Synthetic.Seed
		if seed == 0 {
			seed = 1
		}
		var d *dynshap.Dataset
		switch req.Synthetic.Kind {
		case "", "iris":
			d = dynshap.IrisLike(total, seed)
		case "adult":
			d = dynshap.AdultLike(total, seed)
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown synthetic kind %q", req.Synthetic.Kind))
			return
		}
		train, test = d.Split(frac)
	case len(req.Train) > 0 && len(req.Test) > 0:
		train = dynshap.NewDataset(toPoints(req.Train))
		test = dynshap.NewDataset(toPoints(req.Test))
	default:
		writeErr(w, http.StatusBadRequest, errors.New("provide either synthetic or train+test points"))
		return
	}

	meta := sessionMeta{
		Model:           req.Model,
		KNNK:            req.KNNK,
		CoalesceBatch:   req.CoalesceBatch,
		CoalesceDelayUS: int64(req.CoalesceDelayMS) * 1000,
	}
	trainer, err := trainerFor(meta)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var opts []dynshap.Option
	if req.Samples > 0 {
		opts = append(opts, dynshap.WithSamples(req.Samples))
	}
	if req.UpdateSamples > 0 {
		opts = append(opts, dynshap.WithUpdateSamples(req.UpdateSamples))
	}
	if req.Seed != 0 {
		opts = append(opts, dynshap.WithSeed(req.Seed))
	}
	if req.KeepPerms {
		opts = append(opts, dynshap.WithKeepPermutations())
	}
	if req.Workers != 0 {
		opts = append(opts, dynshap.WithWorkers(req.Workers))
	}
	opts = append(opts, coalesceOption(meta))

	s := dynshap.NewSession(train, test, trainer, opts...)
	if err := s.Init(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	m := &managed{name: req.Name, meta: meta, s: s}
	m.enc = json.NewEncoder(&m.buf)

	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, errors.New("server is shutting down"))
		return
	}
	if _, dup := sv.sessions[req.Name]; dup {
		sv.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("session %q already exists", req.Name))
		return
	}
	sv.sessions[req.Name] = m
	sv.mu.Unlock()

	if err := sv.persistMeta(m); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := sv.persistSnapshot(m); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": req.Name, "version": s.Version(), "n": s.N(),
	})
}

func coalesceOption(meta sessionMeta) dynshap.Option {
	batch, delay := meta.CoalesceBatch, time.Duration(meta.CoalesceDelayUS)*time.Microsecond
	if batch == 0 {
		batch = dynshap.DefaultCoalesceBatch
	}
	if delay == 0 {
		delay = dynshap.DefaultCoalesceDelay
	}
	return dynshap.WithCoalescing(batch, delay)
}

func (sv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sv.mu.RLock()
	names := make([]string, 0, len(sv.sessions))
	for name := range sv.sessions {
		names = append(names, name)
	}
	sv.mu.RUnlock()
	sort.Strings(names)
	out := make([]map[string]any, 0, len(names))
	for _, name := range names {
		if m, ok := sv.lookup(name); ok {
			out = append(out, map[string]any{
				"name": name, "version": m.s.Version(), "n": m.s.N(),
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (sv *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	m, ok := sv.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":      m.name,
		"version":   m.s.Version(),
		"n":         m.s.N(),
		"model":     m.meta.Model,
		"trainings": m.s.ModelTrainings(),
	})
}

// handleAdd submits one point through the session's coalescer and waits
// for its window to execute. Concurrent requests share windows — that is
// the point.
func (sv *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	m, ok := sv.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	var wp wirePoint
	if err := json.NewDecoder(r.Body).Decode(&wp); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding point: %w", err))
		return
	}
	if len(wp.X) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("point needs a non-empty x vector"))
		return
	}
	res, err := m.s.SubmitAdd(dynshap.Point{X: wp.X, Y: wp.Y}).Wait()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if err := sv.logThrough(m, res.Version); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": res.Version,
		"index":   res.Index,
		"value":   res.Value,
		"window":  res.Window,
		"algo":    res.Algo,
	})
}

func (sv *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	m, ok := sv.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	var req struct {
		Indices []int `json:"indices"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding indices: %w", err))
		return
	}
	if len(req.Indices) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("indices must be non-empty"))
		return
	}
	res, err := m.s.SubmitDelete(req.Indices).Wait()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if err := sv.logThrough(m, res.Version); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": res.Version,
		"algo":    res.Algo,
	})
}

func (sv *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	m, ok := sv.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if err := m.s.Flush(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := sv.logThrough(m, m.s.Version()); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": m.s.Version()})
}

// handleValues is a non-blocking read of the latest published estimates.
func (sv *Server) handleValues(w http.ResponseWriter, r *http.Request) {
	m, ok := sv.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	writeJSONPooled(w, http.StatusOK, map[string]any{
		"version": m.s.Version(),
		"values":  m.s.Values(),
	})
}

func (sv *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	m, ok := sv.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeErr(w, http.StatusBadRequest, errors.New("k must be a positive integer"))
			return
		}
		k = v
	}
	writeJSONPooled(w, http.StatusOK, map[string]any{
		"version": m.s.Version(),
		"topk":    m.s.TopK(k),
	})
}

func (sv *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	m, ok := sv.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	hist := m.s.History()
	if q := r.URL.Query().Get("from"); q != "" {
		from, err := strconv.Atoi(q)
		if err != nil {
			writeErr(w, http.StatusBadRequest, errors.New("from must be an integer version"))
			return
		}
		i := 0
		for i < len(hist) && hist[i].Version < from {
			i++
		}
		hist = hist[i:]
	}
	writeJSON(w, http.StatusOK, map[string]any{"history": hist})
}

func (sv *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	m, ok := sv.lookup(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if err := m.s.Flush(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := sv.persistSnapshot(m); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": m.s.Version()})
}

// handleDelete drains and unregisters a session. Persisted files remain
// (a later restart restores it); callers wanting the data gone remove
// the files.
func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sv.mu.Lock()
	m, ok := sv.sessions[name]
	if ok {
		delete(sv.sessions, name)
	}
	sv.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if err := sv.retire(m); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": name})
}

// retire drains a session's pipeline, persists its final state, and
// closes its tail file.
func (sv *Server) retire(m *managed) error {
	if err := m.s.Close(); err != nil {
		return err
	}
	if err := sv.persistSnapshot(m); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tail != nil {
		err := m.tail.Close()
		m.tail = nil
		return err
	}
	return nil
}

// Close drains every session (graceful shutdown): coalescers execute
// everything admitted, snapshots persist, tails close. New sessions are
// refused afterwards.
func (sv *Server) Close() error {
	sv.mu.Lock()
	sv.closed = true
	ms := make([]*managed, 0, len(sv.sessions))
	for _, m := range sv.sessions {
		ms = append(ms, m)
	}
	sv.sessions = make(map[string]*managed)
	sv.mu.Unlock()
	var first error
	for _, m := range ms {
		if err := sv.retire(m); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- durability ---

func (sv *Server) metaPath(name string) string {
	return filepath.Join(sv.cfg.DataDir, name+".meta.json")
}
func (sv *Server) snapPath(name string) string {
	return filepath.Join(sv.cfg.DataDir, name+".snap.json")
}
func (sv *Server) tailPath(name string) string {
	return filepath.Join(sv.cfg.DataDir, name+".journal.jsonl")
}

func (sv *Server) persistMeta(m *managed) error {
	if sv.cfg.DataDir == "" {
		return nil
	}
	b, err := json.Marshal(m.meta)
	if err != nil {
		return err
	}
	return os.WriteFile(sv.metaPath(m.name), b, 0o644)
}

// persistSnapshot writes the session's snapshot-v2 document and resets
// the journal tail: every record at or below the snapshot version is now
// embedded in the snapshot.
func (sv *Server) persistSnapshot(m *managed) error {
	if sv.cfg.DataDir == "" {
		return nil
	}
	sn := m.s.Snapshot()
	if err := sn.Save(sv.snapPath(m.name)); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tail != nil {
		if err := m.tail.Truncate(0); err != nil {
			return err
		}
		if _, err := m.tail.Seek(0, 0); err != nil {
			return err
		}
	} else if err := os.Remove(sv.tailPath(m.name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	m.lastLogged = sn.Version
	return nil
}

// logThrough appends every journal record in (lastLogged, version] to the
// session's tail file — the crash-recovery delta since the last snapshot.
// The encode buffer is reused across appends; steady state allocates
// nothing but the record copy History hands back.
func (sv *Server) logThrough(m *managed, version int) error {
	if sv.cfg.DataDir == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if version <= m.lastLogged {
		return nil
	}
	if m.tail == nil {
		f, err := os.OpenFile(sv.tailPath(m.name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		m.tail = f
	}
	for v := m.lastLogged + 1; v <= version; v++ {
		rec, err := m.s.At(v)
		if err != nil {
			return fmt.Errorf("journal tail: %w", err)
		}
		m.buf.Reset()
		if err := m.enc.Encode(rec); err != nil {
			return err
		}
		if _, err := m.tail.Write(m.buf.Bytes()); err != nil {
			return err
		}
	}
	m.lastLogged = version
	return nil
}

// restoreAll rebuilds every persisted session: snapshot resume, then
// journal-tail replay of records past the snapshot version.
func (sv *Server) restoreAll() error {
	entries, err := os.ReadDir(sv.cfg.DataDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".snap.json")
		if !ok || !validName(name) {
			continue
		}
		if err := sv.restore(name); err != nil {
			return fmt.Errorf("serve: restoring session %q: %w", name, err)
		}
	}
	return nil
}

func (sv *Server) restore(name string) error {
	var meta sessionMeta
	if b, err := os.ReadFile(sv.metaPath(name)); err == nil {
		if err := json.Unmarshal(b, &meta); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	trainer, err := trainerFor(meta)
	if err != nil {
		return err
	}
	sn, err := dynshap.LoadSnapshot(sv.snapPath(name))
	if err != nil {
		return err
	}
	s, err := sn.Resume(trainer, coalesceOption(meta))
	if err != nil {
		return err
	}
	s, replayed, err := replayTail(s, sv.tailPath(name))
	if err != nil {
		return err
	}
	m := &managed{name: name, meta: meta, s: s, lastLogged: s.Version()}
	m.enc = json.NewEncoder(&m.buf)
	sv.sessions[name] = m
	if replayed > 0 {
		// Fold the replayed tail into a fresh snapshot so a crash loop
		// never replays the same records twice into a stale tail.
		return sv.persistSnapshot(m)
	}
	return nil
}

// replayTail re-executes the journal records in path whose version is
// past the session's, returning the (possibly rebuilt) session and how
// many records applied.
//
// A freshly resumed session holds values but not sampling artifacts — the
// snapshot does not persist stored permutations or deletion arrays. A
// tail record whose algorithm needs them (Pivot-s, YN-NN, the batch
// walks) therefore fails with ErrNotInitialized; recovery then rebuilds
// the entire history deterministically with ReplayTo — which re-runs Init
// and every journaled update, recreating the artifacts bit-identically —
// and retries the record against the rebuilt session.
func replayTail(s *dynshap.Session, path string) (*dynshap.Session, int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return s, 0, nil
		}
		return nil, 0, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	replayed := 0
	for dec.More() {
		var rec dynshap.UpdateRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, replayed, fmt.Errorf("journal tail: %w", err)
		}
		if rec.Version <= s.Version() {
			continue
		}
		if err := s.ApplyRecord(rec); err != nil {
			if !errors.Is(err, dynshap.ErrNotInitialized) {
				return nil, replayed, fmt.Errorf("journal tail version %d: %w", rec.Version, err)
			}
			rebuilt, rerr := s.ReplayTo(s.Version())
			if rerr != nil {
				return nil, replayed, fmt.Errorf("journal tail: rebuilding artifacts: %w", rerr)
			}
			s = rebuilt
			if err := s.ApplyRecord(rec); err != nil {
				return nil, replayed, fmt.Errorf("journal tail version %d (after rebuild): %w", rec.Version, err)
			}
		}
		replayed++
	}
	return s, replayed, nil
}
