package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"dynshap"
)

func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	sv, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sv
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out := map[string]any{}
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", method, path, rec.Body.String())
		}
	}
	return rec.Code, out
}

func createBody(name string, extra map[string]any) map[string]any {
	body := map[string]any{
		"name":              name,
		"synthetic":         map[string]any{"kind": "iris", "total": 60, "seed": 7},
		"model":             "knn",
		"knn_k":             3,
		"samples":           60,
		"update_samples":    30,
		"seed":              5,
		"keep_permutations": true,
		"coalesce_batch":    8,
		"coalesce_delay_ms": 1,
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

func TestCreateAddReadLifecycle(t *testing.T) {
	sv := newTestServer(t, t.TempDir())
	defer sv.Close()

	code, resp := doJSON(t, sv, "POST", "/v1/sessions", createBody("iris", nil))
	if code != http.StatusCreated {
		t.Fatalf("create: status %d (%v)", code, resp)
	}
	if resp["version"].(float64) != 1 {
		t.Fatalf("create: version %v, want 1", resp["version"])
	}
	n0 := int(resp["n"].(float64))

	// Duplicate names are refused.
	if code, _ := doJSON(t, sv, "POST", "/v1/sessions", createBody("iris", nil)); code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", code)
	}

	// Concurrent adds share coalescing windows; every response must carry a
	// valid per-point attribution.
	const adds = 12
	var wg sync.WaitGroup
	errs := make(chan string, adds)
	for i := 0; i < adds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pt := map[string]any{"x": []float64{5.1, 3.4, 1.6, 0.3}, "y": i % 3}
			code, resp := doJSON(t, sv, "POST", "/v1/sessions/iris/add", pt)
			if code != http.StatusOK {
				errs <- fmt.Sprintf("add %d: status %d (%v)", i, code, resp)
				return
			}
			if resp["version"].(float64) < 2 || resp["index"].(float64) < float64(n0) {
				errs <- fmt.Sprintf("add %d: bad result %v", i, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	code, resp = doJSON(t, sv, "POST", "/v1/sessions/iris/flush", nil)
	if code != http.StatusOK {
		t.Fatalf("flush: status %d (%v)", code, resp)
	}

	code, resp = doJSON(t, sv, "GET", "/v1/sessions/iris/values", nil)
	if code != http.StatusOK {
		t.Fatalf("values: status %d", code)
	}
	if got := len(resp["values"].([]any)); got != n0+adds {
		t.Fatalf("values: %d entries, want %d", got, n0+adds)
	}

	code, resp = doJSON(t, sv, "POST", "/v1/sessions/iris/remove",
		map[string]any{"indices": []int{n0}})
	if code != http.StatusOK {
		t.Fatalf("remove: status %d (%v)", code, resp)
	}

	code, resp = doJSON(t, sv, "GET", "/v1/sessions/iris/topk?k=3", nil)
	if code != http.StatusOK || len(resp["topk"].([]any)) != 3 {
		t.Fatalf("topk: status %d resp %v", code, resp)
	}

	code, resp = doJSON(t, sv, "GET", "/v1/sessions/iris/history", nil)
	if code != http.StatusOK {
		t.Fatalf("history: status %d", code)
	}
	if got := len(resp["history"].([]any)); got < 3 {
		t.Fatalf("history: %d records, want ≥3 (init + windows + delete)", got)
	}

	code, resp = doJSON(t, sv, "GET", "/v1/sessions", nil)
	if code != http.StatusOK || len(resp["sessions"].([]any)) != 1 {
		t.Fatalf("list: status %d resp %v", code, resp)
	}
}

func TestNotFoundAndValidation(t *testing.T) {
	sv := newTestServer(t, "")
	defer sv.Close()

	if code, _ := doJSON(t, sv, "GET", "/v1/sessions/nope/values", nil); code != http.StatusNotFound {
		t.Fatalf("missing session: status %d, want 404", code)
	}
	if code, _ := doJSON(t, sv, "POST", "/v1/sessions",
		map[string]any{"name": "bad/name"}); code != http.StatusBadRequest {
		t.Fatalf("bad name: status %d, want 400", code)
	}
	if code, _ := doJSON(t, sv, "POST", "/v1/sessions",
		map[string]any{"name": "empty"}); code != http.StatusBadRequest {
		t.Fatalf("no data: status %d, want 400", code)
	}
	if code, _ := doJSON(t, sv, "POST", "/v1/sessions",
		createBody("badmodel", map[string]any{"model": "forest"})); code != http.StatusBadRequest {
		t.Fatalf("bad model: status %d, want 400", code)
	}
}

// TestRestartReplaysJournalTail simulates a crash: updates land in the
// journal tail after the creation snapshot, the server is abandoned
// without Close, and a fresh server on the same data dir must restore the
// session bit-identically from snapshot + tail replay.
func TestRestartReplaysJournalTail(t *testing.T) {
	dir := t.TempDir()
	sv := newTestServer(t, dir)

	if code, resp := doJSON(t, sv, "POST", "/v1/sessions", createBody("s", nil)); code != http.StatusCreated {
		t.Fatalf("create: status %d (%v)", code, resp)
	}
	for i := 0; i < 3; i++ {
		pt := map[string]any{"x": []float64{4.9 + float64(i)/10, 3.0, 1.4, 0.2}, "y": i % 3}
		if code, resp := doJSON(t, sv, "POST", "/v1/sessions/s/add", pt); code != http.StatusOK {
			t.Fatalf("add %d: status %d (%v)", i, code, resp)
		}
	}
	m, _ := sv.lookup("s")
	wantVersion := m.s.Version()
	wantValues := m.s.Values()
	if wantVersion < 2 {
		t.Fatalf("setup: version %d, want ≥2 so the tail is non-empty", wantVersion)
	}
	// Crash: no Close, no snapshot — recovery must come from the tail.

	sv2 := newTestServer(t, dir)
	defer sv2.Close()
	m2, ok := sv2.lookup("s")
	if !ok {
		t.Fatal("restart: session not restored")
	}
	if got := m2.s.Version(); got != wantVersion {
		t.Fatalf("restart: version %d, want %d", got, wantVersion)
	}
	if got := m2.s.Values(); !reflect.DeepEqual(got, wantValues) {
		t.Fatalf("restart: values diverge from pre-crash state\n got %v\nwant %v", got, wantValues)
	}
	// The restored session keeps working.
	pt := map[string]any{"x": []float64{5.0, 3.1, 1.5, 0.2}, "y": 1}
	if code, resp := doJSON(t, sv2, "POST", "/v1/sessions/s/add", pt); code != http.StatusOK {
		t.Fatalf("post-restart add: status %d (%v)", code, resp)
	}
}

// TestCloseDrainsAndSnapshots verifies graceful shutdown: a Close with
// in-flight submissions executes them, persists a snapshot at the final
// version, and a restart resumes from the snapshot with an empty tail.
func TestCloseDrainsAndSnapshots(t *testing.T) {
	dir := t.TempDir()
	sv := newTestServer(t, dir)
	if code, resp := doJSON(t, sv, "POST", "/v1/sessions",
		createBody("s", map[string]any{"coalesce_delay_ms": 50})); code != http.StatusCreated {
		t.Fatalf("create: status %d (%v)", code, resp)
	}
	m, _ := sv.lookup("s")
	// Submit directly (bypassing the HTTP wait) so the window is still
	// open when Close runs.
	h := m.s.SubmitAdd(dynshap.Point{X: []float64{5.0, 3.3, 1.4, 0.2}, Y: 0})
	if err := sv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatalf("handle after Close: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("drained add: version %d, want 2", res.Version)
	}

	sv2 := newTestServer(t, dir)
	defer sv2.Close()
	m2, ok := sv2.lookup("s")
	if !ok {
		t.Fatal("restart after Close: session not restored")
	}
	if got := m2.s.Version(); got != 2 {
		t.Fatalf("restart after Close: version %d, want 2", got)
	}
	if code, _ := doJSON(t, sv, "POST", "/v1/sessions", createBody("late", nil)); code != http.StatusServiceUnavailable {
		t.Fatalf("create after Close: status %d, want 503", code)
	}
}

func TestCoalescingWindowsOverHTTP(t *testing.T) {
	sv := newTestServer(t, "")
	defer sv.Close()
	if code, resp := doJSON(t, sv, "POST", "/v1/sessions",
		createBody("s", map[string]any{"coalesce_batch": 16, "coalesce_delay_ms": 40})); code != http.StatusCreated {
		t.Fatalf("create: status %d (%v)", code, resp)
	}
	const adds = 8
	var wg sync.WaitGroup
	windows := make([]int, adds)
	for i := 0; i < adds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pt := map[string]any{"x": []float64{5.1, 3.4, 1.6, 0.3}, "y": i % 3}
			code, resp := doJSON(t, sv, "POST", "/v1/sessions/s/add", pt)
			if code == http.StatusOK {
				windows[i] = int(resp["window"].(float64))
			}
		}(i)
	}
	wg.Wait()
	max := 0
	for _, w := range windows {
		if w > max {
			max = w
		}
	}
	// With a 40ms window and concurrent submitters at least one window
	// should have coalesced >1 add. Timing-dependent in principle, but the
	// first request opens a window that waits 40ms while the rest queue.
	if max < 2 {
		t.Logf("warning: no window coalesced (max=1) — timing-dependent, not failing")
	}
	if code, _ := doJSON(t, sv, "POST", "/v1/sessions/s/flush", nil); code != http.StatusOK {
		t.Fatalf("flush failed")
	}
	_ = time.Millisecond
}

// TestPooledReadsSetContentLength: the hot read endpoints encode into
// pooled buffers and therefore know the body size before the first write —
// the response must carry an exact Content-Length, and repeated reads must
// return identical, well-formed bodies (a recycled buffer never leaks a
// previous response's bytes).
func TestPooledReadsSetContentLength(t *testing.T) {
	sv := newTestServer(t, "")
	defer sv.Close()
	if code, resp := doJSON(t, sv, "POST", "/v1/sessions", createBody("p", nil)); code != http.StatusCreated {
		t.Fatalf("create: status %d (%v)", code, resp)
	}
	for _, path := range []string{"/v1/sessions/p/values", "/v1/sessions/p/topk?k=5"} {
		var first []byte
		for i := 0; i < 3; i++ {
			req := httptest.NewRequest("GET", path, nil)
			rec := httptest.NewRecorder()
			sv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: status %d", path, rec.Code)
			}
			cl := rec.Header().Get("Content-Length")
			if cl == "" {
				t.Fatalf("%s: no Content-Length header", path)
			}
			if cl != fmt.Sprint(rec.Body.Len()) {
				t.Fatalf("%s: Content-Length %s != body length %d", path, cl, rec.Body.Len())
			}
			var out map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("%s: malformed body: %v", path, err)
			}
			if i == 0 {
				first = append([]byte(nil), rec.Body.Bytes()...)
			} else if !bytes.Equal(rec.Body.Bytes(), first) {
				t.Fatalf("%s: repeated read diverged (pooled buffer leak?)", path)
			}
		}
	}
}
