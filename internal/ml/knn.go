package ml

import "dynshap/internal/dataset"

// KNN is the k-nearest-neighbours classifier. It is "lazy" — Fit only
// captures the training set — which makes it the cheapest realistic utility
// model for large-scale Shapley experiments (cf. Jia et al.'s k-NN Shapley,
// cited by the paper).
type KNN struct {
	// K is the number of neighbours. Zero selects 5.
	K int
}

type knnModel struct {
	train   *dataset.Dataset
	k       int
	scratch dataset.NearestScratch
	counts  []int
}

// Fit implements Trainer.
func (t KNN) Fit(train *dataset.Dataset) Classifier {
	if train.Len() == 0 {
		return Constant{Label: 0}
	}
	return t.fit(train.Clone())
}

// FitOwned is Fit minus the defensive clone: the caller transfers ownership
// of train and must not mutate it afterwards. The utility layer uses it for
// the coalition subsets it builds and immediately discards — cloning a
// dataset the model is its only reader of would double every scratch
// evaluation's allocation for nothing.
func (t KNN) FitOwned(train *dataset.Dataset) Classifier {
	if train.Len() == 0 {
		return Constant{Label: 0}
	}
	return t.fit(train)
}

func (t KNN) fit(train *dataset.Dataset) Classifier {
	k := t.K
	if k == 0 {
		k = 5
	}
	if k > train.Len() {
		k = train.Len()
	}
	return &knnModel{train: train, k: k, counts: make([]int, train.Classes)}
}

// Predict implements Classifier by majority vote among the k nearest
// training points, ties broken toward the smaller label. The model reuses
// an internal candidate window and vote table across calls, so a single
// model must not serve concurrent Predict calls — fit one per goroutine
// (the engine's evaluators already do).
func (m *knnModel) Predict(x []float64) int {
	neighbors := m.train.NearestWith(&m.scratch, x, m.k)
	for c := range m.counts {
		m.counts[c] = 0
	}
	for _, i := range neighbors {
		m.counts[m.train.Points[i].Y]++
	}
	best := 0
	for l, c := range m.counts {
		if c > m.counts[best] {
			best = l
		}
	}
	return best
}
