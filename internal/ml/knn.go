package ml

import "dynshap/internal/dataset"

// KNN is the k-nearest-neighbours classifier. It is "lazy" — Fit only
// captures the training set — which makes it the cheapest realistic utility
// model for large-scale Shapley experiments (cf. Jia et al.'s k-NN Shapley,
// cited by the paper).
type KNN struct {
	// K is the number of neighbours. Zero selects 5.
	K int
}

type knnModel struct {
	train *dataset.Dataset
	k     int
}

// Fit implements Trainer.
func (t KNN) Fit(train *dataset.Dataset) Classifier {
	if train.Len() == 0 {
		return Constant{Label: 0}
	}
	k := t.K
	if k == 0 {
		k = 5
	}
	if k > train.Len() {
		k = train.Len()
	}
	return &knnModel{train: train.Clone(), k: k}
}

// Predict implements Classifier by majority vote among the k nearest
// training points, ties broken toward the smaller label.
func (m *knnModel) Predict(x []float64) int {
	neighbors := m.train.Nearest(x, m.k)
	counts := make([]int, m.train.Classes)
	for _, i := range neighbors {
		counts[m.train.Points[i].Y]++
	}
	best := 0
	for l, c := range counts {
		if c > counts[best] {
			best = l
		}
	}
	return best
}
