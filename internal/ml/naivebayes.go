package ml

import (
	"math"

	"dynshap/internal/dataset"
)

// NaiveBayes is the Gaussian naive Bayes classifier: per class, each
// feature is modelled as an independent normal whose parameters come from
// the training data. Training is a single pass (no iterations, no
// randomness), which makes it the fastest *probabilistic* utility model for
// Shapley experiments — one step up from k-NN in realism at similar cost.
type NaiveBayes struct {
	// VarSmoothing is added to every variance for numerical stability.
	// Zero selects 1e-9 of the largest feature variance.
	VarSmoothing float64
}

type nbModel struct {
	classes   int
	logPrior  []float64
	mean      [][]float64 // [class][feature]
	variance  [][]float64 // transient during Fit; nil afterwards
	invTwoVar [][]float64 // 1/(2σ²) per class and feature
	// logNorm[c] = Σ_j ½·log(2πσ²_cj), hoisted out of Predict so scoring a
	// point costs no logarithms — the utility layer calls Predict millions
	// of times per valuation.
	logNorm []float64
}

// Fit implements Trainer.
func (t NaiveBayes) Fit(train *dataset.Dataset) Classifier {
	if train.Len() == 0 {
		return Constant{Label: 0}
	}
	oneClass := true
	first := train.Points[0].Y
	for _, p := range train.Points {
		if p.Y != first {
			oneClass = false
			break
		}
	}
	if oneClass {
		return Constant{Label: first}
	}
	dim := train.Dim()
	classes := train.Classes
	counts := make([]int, classes)
	m := &nbModel{
		classes:  classes,
		logPrior: make([]float64, classes),
		mean:     make([][]float64, classes),
		variance: make([][]float64, classes),
	}
	for c := range m.mean {
		m.mean[c] = make([]float64, dim)
		m.variance[c] = make([]float64, dim)
	}
	for _, p := range train.Points {
		counts[p.Y]++
		for j, x := range p.X {
			m.mean[p.Y][j] += x
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			m.logPrior[c] = math.Inf(-1)
			continue
		}
		for j := range m.mean[c] {
			m.mean[c][j] /= float64(counts[c])
		}
		m.logPrior[c] = math.Log(float64(counts[c]) / float64(train.Len()))
	}
	for _, p := range train.Points {
		for j, x := range p.X {
			d := x - m.mean[p.Y][j]
			m.variance[p.Y][j] += d * d
		}
	}
	// Smoothing keeps single-sample classes and constant features usable.
	maxVar := 0.0
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range m.variance[c] {
			m.variance[c][j] /= float64(counts[c])
			if m.variance[c][j] > maxVar {
				maxVar = m.variance[c][j]
			}
		}
	}
	smoothing := t.VarSmoothing
	if smoothing == 0 {
		smoothing = 1e-9 * maxVar
		if smoothing == 0 {
			smoothing = 1e-9
		}
	}
	m.invTwoVar = make([][]float64, classes)
	m.logNorm = make([]float64, classes)
	for c := 0; c < classes; c++ {
		m.invTwoVar[c] = make([]float64, dim)
		for j := range m.variance[c] {
			v := m.variance[c][j] + smoothing
			m.invTwoVar[c][j] = 1 / (2 * v)
			m.logNorm[c] += 0.5 * math.Log(2*math.Pi*v)
		}
	}
	m.variance = nil
	return m
}

// Predict implements Classifier by maximum posterior log-likelihood.
func (m *nbModel) Predict(x []float64) int {
	best, bestLL := 0, math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		if math.IsInf(m.logPrior[c], -1) {
			continue
		}
		ll := m.logPrior[c] - m.logNorm[c]
		for j, xj := range x {
			d := xj - m.mean[c][j]
			ll -= d * d * m.invTwoVar[c][j]
		}
		if ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}
