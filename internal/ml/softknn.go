package ml

import "dynshap/internal/dataset"

// SoftKNN is the k-nearest-neighbours trainer scored with the SOFT utility
// of Jia et al. (VLDB 2019): instead of majority-vote accuracy, the
// utility layer scores a coalition S as
//
//	U(S) = (1/m) Σ_t (#same-label points among the min(k,|S|) nearest
//	       neighbours of t in S) / k,
//
// with U(∅) = 0. The classifier itself is the ordinary k-NN model — only
// the scoring rule differs — but the distinction matters enormously for
// valuation: the soft utility is the one whose Shapley values admit the
// exact O(m·n log n) closed form (internal/exact), so sessions built with
// this trainer get exact values and exact dynamic updates with zero model
// trainings, at any n. The majority-vote KNN trainer keeps its sampled
// estimators; the closed form is NOT exact for it.
type SoftKNN struct {
	// K is the number of neighbours. Zero selects 5.
	K int
}

// Resolve returns the effective neighbour count.
func (t SoftKNN) Resolve() int {
	if t.K == 0 {
		return 5
	}
	return t.K
}

// Fit implements Trainer with the standard majority-vote k-NN model, so a
// SoftKNN trainer still produces a usable classifier. The utility layer
// never calls it on the valuation path — coalition scoring special-cases
// the soft rule — but generic consumers of the Trainer interface work.
func (t SoftKNN) Fit(train *dataset.Dataset) Classifier {
	return KNN{K: t.K}.Fit(train)
}
