package ml

import (
	"dynshap/internal/dataset"
	"dynshap/internal/rng"
)

// SVM trains linear support-vector machines with the Pegasos stochastic
// sub-gradient algorithm (Shalev-Shwartz et al., 2007). Multi-class problems
// use one-vs-rest: one binary margin per class, prediction by maximum score.
//
// Pegasos minimises  λ/2‖w‖² + (1/m) Σ max(0, 1 − y⟨w,x⟩)  with step size
// 1/(λt) at iteration t, which converges at Õ(1/(λT)) independent of the
// training-set size — ideal here, where Shapley sampling trains the model on
// hundreds of thousands of small coalitions.
type SVM struct {
	// Lambda is the regularisation strength λ. Zero selects the default 1e-2.
	Lambda float64
	// Epochs is the number of passes over the training set. Zero selects 20.
	Epochs int
	// Seed drives the (deterministic) sampling order.
	Seed uint64
}

type linearModel struct {
	// weights[c] is the weight vector of class c's one-vs-rest margin,
	// with the bias stored in the final element.
	weights [][]float64
}

func (m *linearModel) score(c int, x []float64) float64 {
	w := m.weights[c]
	s := w[len(w)-1] // bias
	for j, xj := range x {
		s += w[j] * xj
	}
	return s
}

// Predict implements Classifier by maximum one-vs-rest score. With a single
// margin (binary problems) the sign decides.
func (m *linearModel) Predict(x []float64) int {
	if len(m.weights) == 1 {
		if m.score(0, x) >= 0 {
			return 1
		}
		return 0
	}
	best, bestScore := 0, m.score(0, x)
	for c := 1; c < len(m.weights); c++ {
		if s := m.score(c, x); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Fit implements Trainer.
func (t SVM) Fit(train *dataset.Dataset) Classifier {
	if train.Len() == 0 {
		return Constant{Label: 0}
	}
	oneClass := true
	first := train.Points[0].Y
	for _, p := range train.Points {
		if p.Y != first {
			oneClass = false
			break
		}
	}
	if oneClass {
		return Constant{Label: first}
	}
	lambda := t.Lambda
	if lambda == 0 {
		lambda = 1e-2
	}
	epochs := t.Epochs
	if epochs == 0 {
		epochs = 20
	}
	dim := train.Dim()
	margins := train.Classes
	if margins == 2 {
		margins = 1 // binary: single margin, class 1 positive
	}
	m := &linearModel{weights: make([][]float64, margins)}
	r := rng.New(t.Seed ^ 0x5f4dcc3b5aa765d6)
	for c := range m.weights {
		m.weights[c] = pegasosBinary(train, c, margins == 1, lambda, epochs, dim, r.Split())
	}
	return m
}

// pegasosBinary trains one binary margin: positive label is `pos` (or label
// 1 when binary is true). Returns dim+1 weights (bias last).
func pegasosBinary(train *dataset.Dataset, pos int, binary bool, lambda float64, epochs, dim int, r *rng.Source) []float64 {
	w := make([]float64, dim+1)
	n := train.Len()
	step := 0
	for e := 0; e < epochs; e++ {
		for k := 0; k < n; k++ {
			step++
			p := train.Points[r.Intn(n)]
			y := -1.0
			if (binary && p.Y == 1) || (!binary && p.Y == pos) {
				y = 1
			}
			eta := 1 / (lambda * float64(step))
			margin := w[dim]
			for j, xj := range p.X {
				margin += w[j] * xj
			}
			// Regularisation shrinkage applies to the weight vector only
			// (the bias is conventionally unregularised).
			decay := 1 - eta*lambda
			for j := 0; j < dim; j++ {
				w[j] *= decay
			}
			if y*margin < 1 {
				for j, xj := range p.X {
					w[j] += eta * y * xj
				}
				w[dim] += eta * y
			}
		}
	}
	return w
}
