package ml

import (
	"math"

	"dynshap/internal/dataset"
	"dynshap/internal/rng"
)

// LogReg trains (multinomial via one-vs-rest) logistic regression with
// mini-batch-free SGD. It offers a smoother utility surface than the hinge
// loss, which some valuation experiments prefer.
type LogReg struct {
	// LearningRate is the SGD step size. Zero selects 0.1.
	LearningRate float64
	// L2 is the ridge penalty. Zero means no regularisation.
	L2 float64
	// Epochs is the number of passes. Zero selects 50.
	Epochs int
	// Seed drives the sampling order.
	Seed uint64
}

// Fit implements Trainer.
func (t LogReg) Fit(train *dataset.Dataset) Classifier {
	if train.Len() == 0 {
		return Constant{Label: 0}
	}
	oneClass := true
	first := train.Points[0].Y
	for _, p := range train.Points {
		if p.Y != first {
			oneClass = false
			break
		}
	}
	if oneClass {
		return Constant{Label: first}
	}
	lr := t.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	epochs := t.Epochs
	if epochs == 0 {
		epochs = 50
	}
	dim := train.Dim()
	margins := train.Classes
	if margins == 2 {
		margins = 1
	}
	m := &linearModel{weights: make([][]float64, margins)}
	r := rng.New(t.Seed ^ 0x243f6a8885a308d3)
	for c := range m.weights {
		m.weights[c] = logregBinary(train, c, margins == 1, lr, t.L2, epochs, dim, r.Split())
	}
	return m
}

func logregBinary(train *dataset.Dataset, pos int, binary bool, lr, l2 float64, epochs, dim int, r *rng.Source) []float64 {
	w := make([]float64, dim+1)
	n := train.Len()
	for e := 0; e < epochs; e++ {
		// 1/√(e+1) decay keeps late epochs from oscillating.
		eta := lr / math.Sqrt(float64(e+1))
		for k := 0; k < n; k++ {
			p := train.Points[r.Intn(n)]
			y := 0.0
			if (binary && p.Y == 1) || (!binary && p.Y == pos) {
				y = 1
			}
			z := w[dim]
			for j, xj := range p.X {
				z += w[j] * xj
			}
			g := sigmoid(z) - y
			for j, xj := range p.X {
				w[j] -= eta * (g*xj + l2*w[j])
			}
			w[dim] -= eta * g
		}
	}
	return w
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
