// Package ml implements the machine-learning substrate for data valuation:
// small, from-scratch classifiers whose test accuracy serves as the
// cooperative-game utility function. The paper uses scikit-learn's SVM; Go
// has no comparable library, so this package provides a linear SVM trained
// with the Pegasos stochastic sub-gradient method, a k-nearest-neighbours
// classifier, logistic regression, and a majority-class baseline — all
// deterministic given an explicit seed, as required for reproducible
// valuation runs.
package ml

import "dynshap/internal/dataset"

// Classifier predicts a class label for a feature vector.
type Classifier interface {
	Predict(x []float64) int
}

// Trainer fits a Classifier to a training set. Implementations must be
// stateless (safe for concurrent Fit calls) and must tolerate empty or
// single-class training sets, since Shapley computation evaluates utilities
// of arbitrarily small coalitions including ∅.
type Trainer interface {
	Fit(train *dataset.Dataset) Classifier
}

// Constant always predicts the same label. It is both the fallback model for
// degenerate training sets and the "empty coalition" model.
type Constant struct{ Label int }

// Predict implements Classifier.
func (c Constant) Predict([]float64) int { return c.Label }

// Accuracy returns the fraction of test points the classifier labels
// correctly. An empty test set yields 0.
func Accuracy(c Classifier, test *dataset.Dataset) float64 {
	if test.Len() == 0 {
		return 0
	}
	correct := 0
	for _, p := range test.Points {
		if c.Predict(p.X) == p.Y {
			correct++
		}
	}
	return float64(correct) / float64(test.Len())
}

// majorityLabel returns the most frequent label in d, breaking ties toward
// the smaller label; 0 for an empty dataset.
func majorityLabel(d *dataset.Dataset) int {
	if d.Len() == 0 {
		return 0
	}
	counts := make([]int, d.Classes)
	for _, p := range d.Points {
		counts[p.Y]++
	}
	best := 0
	for l, c := range counts {
		if c > counts[best] {
			best = l
		}
	}
	return best
}

// Majority is the trivial baseline that predicts the most frequent training
// label.
type Majority struct{}

// Fit implements Trainer.
func (Majority) Fit(train *dataset.Dataset) Classifier {
	return Constant{Label: majorityLabel(train)}
}
