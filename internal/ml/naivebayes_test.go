package ml

import (
	"testing"

	"dynshap/internal/dataset"
	"dynshap/internal/rng"
)

func TestNaiveBayesSeparatesGaussians(t *testing.T) {
	d := dataset.TwoGaussians(rng.New(21), 400, 3, 8)
	train, test := d.Split(0.7)
	m := NaiveBayes{}.Fit(train)
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Errorf("NB accuracy = %.3f, want ≥0.9", acc)
	}
}

func TestNaiveBayesMulticlassIris(t *testing.T) {
	d := dataset.IrisLike(rng.New(23), 150)
	train, test := d.Split(0.7)
	m := NaiveBayes{}.Fit(train)
	if acc := Accuracy(m, test); acc < 0.85 {
		t.Errorf("NB accuracy = %.3f on Iris-like, want ≥0.85 (NB suits Gaussian classes)", acc)
	}
}

func TestNaiveBayesDegenerate(t *testing.T) {
	if got := (NaiveBayes{}).Fit(dataset.New(nil)).Predict([]float64{1}); got != 0 {
		t.Fatalf("NB on empty predicts %d", got)
	}
	single := dataset.New([]dataset.Point{{X: []float64{1, 2}, Y: 2}})
	single.Classes = 3
	if got := (NaiveBayes{}).Fit(single).Predict([]float64{9, 9}); got != 2 {
		t.Fatalf("NB on single-class predicts %d", got)
	}
}

func TestNaiveBayesConstantFeature(t *testing.T) {
	// A zero-variance feature must not produce NaN/±Inf likelihoods.
	train := dataset.New([]dataset.Point{
		{X: []float64{1, 0}, Y: 0},
		{X: []float64{1, 0.1}, Y: 0},
		{X: []float64{1, 5}, Y: 1},
		{X: []float64{1, 5.1}, Y: 1},
	})
	m := NaiveBayes{}.Fit(train)
	if got := m.Predict([]float64{1, 0.05}); got != 0 {
		t.Errorf("predict near cluster 0 = %d", got)
	}
	if got := m.Predict([]float64{1, 5.05}); got != 1 {
		t.Errorf("predict near cluster 1 = %d", got)
	}
}

func TestNaiveBayesMissingClass(t *testing.T) {
	// Class 1 absent from training (Classes = 3 overall): prediction must
	// never return it.
	train := dataset.New([]dataset.Point{
		{X: []float64{0}, Y: 0},
		{X: []float64{0.2}, Y: 0},
		{X: []float64{10}, Y: 2},
		{X: []float64{10.1}, Y: 2},
	})
	train.Classes = 3
	m := NaiveBayes{}.Fit(train)
	for _, x := range []float64{-5, 0, 5, 10, 20} {
		if got := m.Predict([]float64{x}); got == 1 {
			t.Fatalf("predicted absent class at x=%v", x)
		}
	}
}

func TestNaiveBayesDeterministic(t *testing.T) {
	d := dataset.IrisLike(rng.New(29), 60)
	a := NaiveBayes{}.Fit(d)
	b := NaiveBayes{}.Fit(d)
	for _, p := range d.Points {
		if a.Predict(p.X) != b.Predict(p.X) {
			t.Fatal("NB training not deterministic")
		}
	}
}
