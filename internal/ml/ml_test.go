package ml

import (
	"testing"

	"dynshap/internal/dataset"
	"dynshap/internal/rng"
)

func TestConstant(t *testing.T) {
	c := Constant{Label: 2}
	if c.Predict([]float64{1, 2}) != 2 {
		t.Fatal("Constant mispredicts")
	}
}

func TestAccuracy(t *testing.T) {
	test := dataset.New([]dataset.Point{
		{X: []float64{0}, Y: 0},
		{X: []float64{0}, Y: 1},
		{X: []float64{0}, Y: 1},
		{X: []float64{0}, Y: 1},
	})
	if got := Accuracy(Constant{Label: 1}, test); got != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
	if got := Accuracy(Constant{Label: 0}, dataset.New(nil)); got != 0 {
		t.Fatalf("Accuracy on empty test = %v, want 0", got)
	}
}

func TestMajority(t *testing.T) {
	train := dataset.New([]dataset.Point{
		{X: []float64{0}, Y: 1},
		{X: []float64{0}, Y: 1},
		{X: []float64{0}, Y: 0},
	})
	m := Majority{}.Fit(train)
	if m.Predict([]float64{9}) != 1 {
		t.Fatal("Majority should predict 1")
	}
	if (Majority{}).Fit(dataset.New(nil)).Predict(nil) != 0 {
		t.Fatal("Majority on empty should predict 0")
	}
}

func TestTrainersHandleDegenerateSets(t *testing.T) {
	empty := dataset.New(nil)
	single := dataset.New([]dataset.Point{{X: []float64{1, 2}, Y: 3}})
	single.Classes = 4
	trainers := []Trainer{SVM{}, KNN{}, LogReg{}, Majority{}}
	for _, tr := range trainers {
		if got := tr.Fit(empty).Predict([]float64{0, 0}); got != 0 {
			t.Errorf("%T on empty set predicts %d, want 0", tr, got)
		}
	}
	// A single-class set must predict that class everywhere.
	for _, tr := range []Trainer{SVM{}, KNN{}, LogReg{}} {
		if got := tr.Fit(single).Predict([]float64{-5, 7}); got != 3 {
			t.Errorf("%T on single-class set predicts %d, want 3", tr, got)
		}
	}
}

func TestSVMSeparatesGaussians(t *testing.T) {
	r := rng.New(42)
	d := dataset.TwoGaussians(r, 400, 3, 8)
	d.Standardize()
	train, test := d.Split(0.7)
	model := SVM{Seed: 1}.Fit(train)
	if acc := Accuracy(model, test); acc < 0.9 {
		t.Errorf("SVM accuracy = %.3f on well-separated data, want ≥0.9", acc)
	}
}

func TestSVMMulticlassIris(t *testing.T) {
	d := dataset.IrisLike(rng.New(7), 150)
	d.Standardize()
	train, test := d.Split(0.7)
	model := SVM{Seed: 1}.Fit(train)
	if acc := Accuracy(model, test); acc < 0.8 {
		t.Errorf("SVM accuracy = %.3f on Iris-like, want ≥0.8", acc)
	}
}

func TestSVMDeterministic(t *testing.T) {
	d := dataset.IrisLike(rng.New(9), 60)
	d.Standardize()
	a := SVM{Seed: 5}.Fit(d)
	b := SVM{Seed: 5}.Fit(d)
	for _, p := range d.Points {
		if a.Predict(p.X) != b.Predict(p.X) {
			t.Fatal("same-seed SVM training not deterministic")
		}
	}
}

func TestKNNClassifies(t *testing.T) {
	train := dataset.New([]dataset.Point{
		{X: []float64{0, 0}, Y: 0},
		{X: []float64{0, 1}, Y: 0},
		{X: []float64{1, 0}, Y: 0},
		{X: []float64{10, 10}, Y: 1},
		{X: []float64{10, 11}, Y: 1},
		{X: []float64{11, 10}, Y: 1},
	})
	m := KNN{K: 3}.Fit(train)
	if m.Predict([]float64{0.2, 0.2}) != 0 {
		t.Error("KNN mislabels cluster 0")
	}
	if m.Predict([]float64{10.5, 10.5}) != 1 {
		t.Error("KNN mislabels cluster 1")
	}
}

func TestKNNKLargerThanTrain(t *testing.T) {
	train := dataset.New([]dataset.Point{
		{X: []float64{0}, Y: 0},
		{X: []float64{1}, Y: 1},
		{X: []float64{1.1}, Y: 1},
	})
	m := KNN{K: 50}.Fit(train)
	if m.Predict([]float64{1}) != 1 {
		t.Error("KNN with clamped k mispredicts")
	}
}

func TestKNNIndependentOfLaterMutation(t *testing.T) {
	train := dataset.New([]dataset.Point{
		{X: []float64{0}, Y: 0},
		{X: []float64{5}, Y: 1},
	})
	m := KNN{K: 1}.Fit(train)
	train.Points[0].Y = 1 // mutate after fit
	if m.Predict([]float64{0}) != 0 {
		t.Error("KNN model shares storage with training set")
	}
}

func TestLogRegSeparatesGaussians(t *testing.T) {
	d := dataset.TwoGaussians(rng.New(11), 400, 3, 8)
	d.Standardize()
	train, test := d.Split(0.7)
	model := LogReg{Seed: 1}.Fit(train)
	if acc := Accuracy(model, test); acc < 0.9 {
		t.Errorf("LogReg accuracy = %.3f, want ≥0.9", acc)
	}
}

func TestLogRegMulticlass(t *testing.T) {
	d := dataset.IrisLike(rng.New(13), 150)
	d.Standardize()
	train, test := d.Split(0.7)
	model := LogReg{Seed: 1}.Fit(train)
	if acc := Accuracy(model, test); acc < 0.8 {
		t.Errorf("LogReg accuracy = %.3f on Iris-like, want ≥0.8", acc)
	}
}

func TestSVMAdultLike(t *testing.T) {
	d := dataset.AdultLike(rng.New(17), 1200)
	d.Standardize()
	train, test := d.Split(0.75)
	model := SVM{Seed: 1}.Fit(train)
	acc := Accuracy(model, test)
	// Real Adult linear models reach ~0.76–0.85; synthetic should too.
	if acc < 0.7 {
		t.Errorf("SVM accuracy = %.3f on Adult-like, want ≥0.7", acc)
	}
}

func BenchmarkSVMFit50(b *testing.B) {
	d := dataset.IrisLike(rng.New(1), 50)
	d.Standardize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVM{Seed: uint64(i)}.Fit(d)
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	d := dataset.IrisLike(rng.New(1), 150)
	m := KNN{K: 5}.Fit(d)
	x := d.Points[0].X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

func TestLogRegWithL2(t *testing.T) {
	d := dataset.TwoGaussians(rng.New(31), 300, 3, 8)
	d.Standardize()
	train, test := d.Split(0.7)
	model := LogReg{Seed: 1, L2: 0.05}.Fit(train)
	if acc := Accuracy(model, test); acc < 0.85 {
		t.Errorf("regularised LogReg accuracy = %.3f", acc)
	}
}

func TestSVMCustomLambdaAndEpochs(t *testing.T) {
	d := dataset.TwoGaussians(rng.New(33), 300, 3, 8)
	d.Standardize()
	train, test := d.Split(0.7)
	model := SVM{Seed: 1, Lambda: 1e-3, Epochs: 30}.Fit(train)
	if acc := Accuracy(model, test); acc < 0.85 {
		t.Errorf("custom SVM accuracy = %.3f", acc)
	}
}

func TestBinaryLinearModelSignDecision(t *testing.T) {
	// Binary problems use a single margin decided by sign; verify both
	// labels are reachable.
	train := dataset.New([]dataset.Point{
		{X: []float64{-1}, Y: 0},
		{X: []float64{-0.9}, Y: 0},
		{X: []float64{1}, Y: 1},
		{X: []float64{0.9}, Y: 1},
	})
	m := SVM{Seed: 2, Epochs: 50}.Fit(train)
	if m.Predict([]float64{-2}) != 0 || m.Predict([]float64{2}) != 1 {
		t.Error("binary SVM failed trivial separation")
	}
}
