package semivalue

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestParseRoundTrip(t *testing.T) {
	for _, w := range []Weighting{Shapley(), Banzhaf(), Beta(4, 1), Beta(0.5, 2.5), AbsoluteShapley()} {
		got, err := Parse(w.Key())
		if err != nil {
			t.Fatalf("Parse(%q): %v", w.Key(), err)
		}
		if got != w {
			t.Fatalf("Parse(%q) = %v, want %v", w.Key(), got, w)
		}
	}
	for _, s := range []string{"Shapley", " banzhaf ", "ABS-SHAPLEY", "absolute-shapley", "beta(16, 1)"} {
		if _, err := Parse(s); err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
	}
	for _, s := range []string{"", "owen", "beta", "beta(0,1)", "beta(1)", "beta(a,b)"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

// Σ_k C(n−1,k)·p_n(k) = 1 for every weighting family (semivalue
// normalisation), equivalently mean position weight 1.
func TestWeightNormalisation(t *testing.T) {
	for _, w := range []Weighting{Shapley(), Banzhaf(), Beta(1, 1), Beta(4, 1), Beta(1, 16), AbsoluteShapley()} {
		for _, n := range []int{1, 2, 3, 7, 20, 150} {
			sum := 0.0
			for _, omega := range w.PosWeights(n) {
				sum += omega
			}
			if !almost(sum/float64(n), 1, 1e-9) {
				t.Errorf("%v n=%d: mean position weight %g, want 1", w, n, sum/float64(n))
			}
		}
	}
}

// Beta(1,1) is mathematically the Shapley weighting; the Beta tables come
// from lgamma so equality is numerical, not bit-exact.
func TestBetaOneOneIsShapley(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12, 64} {
		sh, be := Shapley().PosWeights(n), Beta(1, 1).PosWeights(n)
		for pos := range sh {
			if !almost(sh[pos], be[pos], 1e-9) {
				t.Fatalf("n=%d pos=%d: shapley ω=%g beta(1,1) ω=%g", n, pos, sh[pos], be[pos])
			}
		}
		shS, beS := Shapley().SubsetWeights(n), Beta(1, 1).SubsetWeights(n)
		for k := range shS {
			if !almost(shS[k]/beS[k], 1, 1e-9) {
				t.Fatalf("n=%d k=%d: shapley p=%g beta(1,1) p=%g", n, k, shS[k], beS[k])
			}
		}
	}
}

func TestShapleyTablesExact(t *testing.T) {
	n := 9
	for pos, omega := range Shapley().PosWeights(n) {
		if omega != 1 {
			t.Fatalf("Shapley ω(%d) = %g, want exactly 1", pos, omega)
		}
	}
	// The historic core.Exact recurrence.
	want := make([]float64, n)
	want[0] = 1 / float64(n)
	for k := 1; k < n; k++ {
		want[k] = want[k-1] * float64(k) / float64(n-k)
	}
	got := Shapley().SubsetWeights(n)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Shapley p(%d) = %v, want %v", k, got[k], want[k])
		}
	}
}

func TestBanzhafSubsetWeights(t *testing.T) {
	n := 10
	for k, p := range Banzhaf().SubsetWeights(n) {
		if p != 1.0/512 {
			t.Fatalf("Banzhaf p(%d) = %g, want 2^-9", k, p)
		}
	}
}

// The Shapley add tables must be the historic DeltaAdd coefficients in
// closed form, and general tables must agree with the defining formulas.
func TestAddCoeffs(t *testing.T) {
	n := 7
	cNo, cWith, wNew := Shapley().AddCoeffs(n)
	for pos := 0; pos < n; pos++ {
		c := float64(pos+1) / float64(n+1)
		if cNo[pos] != -c || cWith[pos] != c {
			t.Fatalf("Shapley add pos %d: cNo=%g cWith=%g, want ∓%g", pos, cNo[pos], cWith[pos], c)
		}
	}
	for k := 0; k <= n; k++ {
		if wNew[k] != 1/float64(n+1) {
			t.Fatalf("Shapley wNew[%d] = %g, want 1/%d", k, wNew[k], n+1)
		}
	}
	// Beta(1,1) numerically matches the Shapley closed forms.
	bNo, bWith, bNew := Beta(1, 1).AddCoeffs(n)
	for pos := 0; pos < n; pos++ {
		if !almost(bNo[pos], cNo[pos], 1e-9) || !almost(bWith[pos], cWith[pos], 1e-9) {
			t.Fatalf("Beta(1,1) add pos %d: (%g,%g) want (%g,%g)", pos, bNo[pos], bWith[pos], cNo[pos], cWith[pos])
		}
	}
	for k := 0; k <= n; k++ {
		if !almost(bNew[k], wNew[k], 1e-9) {
			t.Fatalf("Beta(1,1) wNew[%d] = %g, want %g", k, bNew[k], wNew[k])
		}
	}
	// Banzhaf: a(pos) + published ω consistency — the pivot's weights must
	// sum to 1 ... Σ_k C(n,k)·2^{-n} = 1.
	_, _, zNew := Banzhaf().AddCoeffs(n)
	sum := 0.0
	for k := 0; k <= n; k++ {
		sum += zNew[k]
	}
	if !almost(sum, 1, 1e-9) {
		t.Fatalf("Banzhaf Σ wNew = %g, want 1", sum)
	}
}

func TestDeleteCoeffs(t *testing.T) {
	n := 8
	cNo, cWith := Shapley().DeleteCoeffs(n)
	for pos := 0; pos < n-1; pos++ {
		c := float64(pos+1) / float64(n)
		if cNo[pos] != c || cWith[pos] != -c {
			t.Fatalf("Shapley delete pos %d: cNo=%g cWith=%g, want ±%g", pos, cNo[pos], cWith[pos], c)
		}
	}
	bNo, bWith := Beta(1, 1).DeleteCoeffs(n)
	for pos := 0; pos < n-1; pos++ {
		if !almost(bNo[pos], cNo[pos], 1e-9) || !almost(bWith[pos], cWith[pos], 1e-9) {
			t.Fatalf("Beta(1,1) delete pos %d: (%g,%g) want (%g,%g)", pos, bNo[pos], bWith[pos], cNo[pos], cWith[pos])
		}
	}
}

// Sampled merge coefficients must reduce to the historic n/(n−k) for
// Shapley, and exact coefficients to the survivor game's subset weights.
func TestMergeCoeffs(t *testing.T) {
	n := 9
	sampled := Shapley().MergeCoeffs(n, false)
	for k := 1; k <= n-1; k++ {
		if !almost(sampled[k], float64(n)/float64(n-k), 1e-9) {
			t.Fatalf("Shapley sampled coef[%d] = %g, want %g", k, sampled[k], float64(n)/float64(n-k))
		}
	}
	exact := Banzhaf().MergeCoeffs(n, true)
	sw := Banzhaf().SubsetWeights(n - 1)
	for k := 1; k <= n-1; k++ {
		if exact[k] != sw[k-1] {
			t.Fatalf("Banzhaf exact coef[%d] = %g, want %g", k, exact[k], sw[k-1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MergeCoeffs on abs-shapley did not panic")
		}
	}()
	AbsoluteShapley().MergeCoeffs(n, false)
}

func TestTransform(t *testing.T) {
	if AbsoluteShapley().Transform(-2) != 2 || Shapley().Transform(-2) != -2 {
		t.Fatal("marginal transform wrong")
	}
	if !AbsoluteShapley().Abs() || Banzhaf().Abs() || AbsoluteShapley().Linear() {
		t.Fatal("Abs/Linear flags wrong")
	}
}
