// Package semivalue defines the pluggable weighting layer behind the
// permutation engine: a Weighting names a semivalue — Shapley, Beta(α,β)
// (Kwon & Zou), Banzhaf, or Absolute Shapley — as a per-subset-size
// coefficient p_n(k) plus an optional transform applied to each marginal
// contribution (|·| for Absolute Shapley, arXiv 2003.10076).
//
// Every semivalue of a player i has the form
//
//	φ_i = Σ_{k=0}^{n−1} p_n(k) · Σ_{|S|=k, S ⊆ N∖{i}} T(U(S∪{i}) − U(S))
//
// with T the marginal transform and Σ_k C(n−1,k)·p_n(k) = 1. A uniform
// random permutation observes, at position pos, a uniformly drawn size-pos
// prefix, so the same walk prices any semivalue by re-weighting the
// observed marginal with the position coefficient
//
//	ω_n(pos) = n · C(n−1,pos) · p_n(k=pos),
//
// which is identically 1 for Shapley — the engine's historic accumulation.
// The package also derives the differential coefficient tables the
// dynamic-update walks (DeltaAdd/DeltaDelete) need to carry non-Shapley
// heads; see AddCoeffs and DeleteCoeffs.
package semivalue

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// kind enumerates the supported weighting families.
type kind int

const (
	kindShapley kind = iota
	kindBanzhaf
	kindBeta
	kindAbsShapley
)

// Weighting identifies one semivalue head: a subset-size weighting family
// (plus the Beta family's parameters) and the marginal transform. The zero
// value is the Shapley weighting. Weightings are comparable values; two
// heads are the same iff their Keys are equal.
type Weighting struct {
	k           kind
	alpha, beta float64
}

// Shapley returns the Shapley weighting: p_n(k) = 1/(n·C(n−1,k)), the
// uniform-over-positions average every permutation walk accumulates natively.
func Shapley() Weighting { return Weighting{} }

// Banzhaf returns the Banzhaf weighting: every subset weighs 2^{1−n}.
func Banzhaf() Weighting { return Weighting{k: kindBanzhaf} }

// Beta returns the Beta(α,β) weighting of Kwon & Zou:
// p_n(k) = B(k+β, n−k−1+α) / B(α,β). Beta(1,1) is exactly the Shapley
// weighting; α > 1 emphasises small coalitions, β > 1 large ones. It
// panics unless α > 0 and β > 0.
func Beta(alpha, beta float64) Weighting {
	if !(alpha > 0) || !(beta > 0) {
		panic(fmt.Sprintf("semivalue: Beta parameters must be positive, got (%g, %g)", alpha, beta))
	}
	return Weighting{k: kindBeta, alpha: alpha, beta: beta}
}

// AbsoluteShapley returns the Absolute Shapley weighting (arXiv
// 2003.10076): Shapley's subset weights applied to |marginal| instead of
// the signed marginal, so detrimental and beneficial contributions both
// count positively.
func AbsoluteShapley() Weighting { return Weighting{k: kindAbsShapley} }

// Key returns the weighting's canonical wire name, stable across releases:
// "shapley", "banzhaf", "beta(α,β)", "abs-shapley". Parse inverts it.
func (w Weighting) Key() string {
	switch w.k {
	case kindBanzhaf:
		return "banzhaf"
	case kindBeta:
		return fmt.Sprintf("beta(%g,%g)", w.alpha, w.beta)
	case kindAbsShapley:
		return "abs-shapley"
	default:
		return "shapley"
	}
}

// String returns the canonical name (same as Key).
func (w Weighting) String() string { return w.Key() }

// IsShapley reports whether w is exactly the Shapley weighting — the head
// the engine's unweighted accumulation already produces. Beta(1,1) is
// mathematically Shapley but reports false: its coefficients come from the
// Beta formulas and are not the bit-exact constant 1.
func (w Weighting) IsShapley() bool { return w.k == kindShapley }

// Abs reports whether the weighting applies the |·| transform to each
// marginal. Heads with Abs true cannot be recovered from the YN-NN
// deletion stores: the stored quantities are sums of signed utilities,
// and |·| does not distribute over sums.
func (w Weighting) Abs() bool { return w.k == kindAbsShapley }

// Linear reports whether the head is linear in the marginals (no
// transform), i.e. recoverable from linear utility aggregates such as the
// deletion stores.
func (w Weighting) Linear() bool { return !w.Abs() }

// Parse resolves a wire name produced by Key (case-insensitive; spaces
// ignored). Accepted spellings: "shapley", "banzhaf", "beta(α,β)", and
// "abs-shapley" (also "absolute-shapley", "abs_shapley").
func Parse(s string) (Weighting, error) {
	name := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), " ", ""))
	switch name {
	case "shapley":
		return Shapley(), nil
	case "banzhaf":
		return Banzhaf(), nil
	case "abs-shapley", "abs_shapley", "absolute-shapley", "absoluteshapley":
		return AbsoluteShapley(), nil
	}
	if args, ok := strings.CutPrefix(name, "beta("); ok && strings.HasSuffix(args, ")") {
		parts := strings.Split(strings.TrimSuffix(args, ")"), ",")
		if len(parts) == 2 {
			a, errA := strconv.ParseFloat(parts[0], 64)
			b, errB := strconv.ParseFloat(parts[1], 64)
			if errA == nil && errB == nil && a > 0 && b > 0 {
				return Beta(a, b), nil
			}
		}
		return Weighting{}, fmt.Errorf("semivalue: malformed beta weighting %q, want beta(α,β) with α, β > 0", s)
	}
	return Weighting{}, fmt.Errorf("semivalue: unknown weighting %q (want shapley, banzhaf, beta(α,β) or abs-shapley)", s)
}

// Transform applies the weighting's marginal transform.
func (w Weighting) Transform(m float64) float64 {
	if w.Abs() {
		return math.Abs(m)
	}
	return m
}

// logChoose returns ln C(n, k) via lgamma, valid far past float64's
// binomial overflow point.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln - lk - lnk
}

// logBeta returns ln B(a, b).
func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// logSubsetWeight returns ln p_n(k): the log of the weight an n-player
// game's semivalue places on each individual size-k subset, k ∈ [0, n−1].
func (w Weighting) logSubsetWeight(n, k int) float64 {
	switch w.k {
	case kindBanzhaf:
		return -float64(n-1) * math.Ln2
	case kindBeta:
		return logBeta(float64(k)+w.beta, float64(n-k-1)+w.alpha) - logBeta(w.alpha, w.beta)
	default: // Shapley and Absolute Shapley
		return -math.Log(float64(n)) - logChoose(n-1, k)
	}
}

// SubsetWeights returns p_n(k) for k = 0..n−1 — the per-subset
// coefficients exact enumeration folds against. The Shapley table is built
// by the historic recurrence of core.Exact (w[0] = 1/n, w[k] =
// w[k−1]·k/(n−k)), so enumerating with it reproduces the pre-semivalue
// output bit for bit; Banzhaf's 2^{1−n} is exact for any enumerable n.
func (w Weighting) SubsetWeights(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	switch w.k {
	case kindBanzhaf:
		out[0] = 1 / float64(uint64(1)<<uint(n-1)) // n ≤ MaxExactPlayers « 64
		for k := 1; k < n; k++ {
			out[k] = out[0]
		}
	case kindBeta:
		lb := logBeta(w.alpha, w.beta)
		for k := 0; k < n; k++ {
			out[k] = math.Exp(logBeta(float64(k)+w.beta, float64(n-k-1)+w.alpha) - lb)
		}
	default: // Shapley and Absolute Shapley: the historic recurrence.
		out[0] = 1 / float64(n)
		for k := 1; k < n; k++ {
			out[k] = out[k-1] * float64(k) / float64(n-k)
		}
	}
	return out
}

// PosWeights returns ω_n(pos) = n·C(n−1,pos)·p_n(pos) for pos = 0..n−1:
// the coefficient a full permutation walk multiplies the marginal observed
// at position pos by. Shapley's table is exactly all ones (by definition,
// not by floating-point accident), so a Shapley head folded through these
// weights reproduces the engine's native accumulation.
func (w Weighting) PosWeights(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	switch w.k {
	case kindShapley, kindAbsShapley:
		for pos := range out {
			out[pos] = 1
		}
	default:
		ln := math.Log(float64(n))
		for pos := 0; pos < n; pos++ {
			out[pos] = math.Exp(ln + logChoose(n-1, pos) + w.logSubsetWeight(n, pos))
		}
	}
	return out
}

// AddCoeffs returns the differential tables an insertion walk (DeltaAdd:
// n-player base game growing to n+1 players) folds the head with:
//
//   - cNo[pos], cWith[pos] for pos = 0..n−1: an old player observed at
//     position pos with pivot-free marginal mNo and pivot-included marginal
//     mWith contributes cNo·T(mNo) + cWith·T(mWith) to its head CHANGE —
//     new = old + avg. cNo is a_h(pos) − ω_n(pos) with a_h(pos) =
//     n·C(n−1,pos)·p_{n+1}(pos) (the walk's estimate of the new game's
//     pivot-free strata minus the old-game value the base already holds)
//     and cWith = n·C(n−1,pos)·p_{n+1}(pos+1) prices the pivot-containing
//     strata the old game never had.
//   - wNew[k] for k = 0..n: the pivot's own head value is the per-walk sum
//     Σ_k wNew[k]·T(d_k) averaged over walks, d_k the pivot's marginal on
//     the size-k prefix, wNew[k] = C(n,k)·p_{n+1}(k).
//
// For Shapley the closed forms cNo = −(pos+1)/(n+1), cWith = (pos+1)/(n+1),
// wNew = 1/(n+1) are returned directly — the historic DeltaAdd fold
// dmc·(pos+1)/(n+1) is exactly cNo·mNo + cWith·mWith.
func (w Weighting) AddCoeffs(n int) (cNo, cWith, wNew []float64) {
	cNo = make([]float64, n)
	cWith = make([]float64, n)
	wNew = make([]float64, n+1)
	if w.k == kindShapley || w.k == kindAbsShapley {
		for pos := 0; pos < n; pos++ {
			c := float64(pos+1) / float64(n+1)
			cNo[pos] = -c
			cWith[pos] = c
		}
		for k := 0; k <= n; k++ {
			wNew[k] = 1 / float64(n+1)
		}
		return cNo, cWith, wNew
	}
	ln := math.Log(float64(n))
	omega := w.PosWeights(n)
	for pos := 0; pos < n; pos++ {
		base := ln + logChoose(n-1, pos)
		cNo[pos] = math.Exp(base+w.logSubsetWeight(n+1, pos)) - omega[pos]
		cWith[pos] = math.Exp(base + w.logSubsetWeight(n+1, pos+1))
	}
	for k := 0; k <= n; k++ {
		wNew[k] = math.Exp(logChoose(n, k) + w.logSubsetWeight(n+1, k))
	}
	return cNo, cWith, wNew
}

// DeleteCoeffs returns the differential tables a deletion walk
// (DeltaDelete: n-player game shrinking to n−1 survivors) folds the head
// with: a survivor observed at position pos of the survivor walk, with
// pivot-free marginal mNo and pivot-included marginal mWith, contributes
// cNo[pos]·T(mNo) + cWith[pos]·T(mWith) to its head change. cNo =
// ω_{n−1}(pos) − (n−1)·C(n−2,pos)·p_n(pos) re-prices the pivot-free
// strata from the old game's weights to the survivor game's; cWith =
// −(n−1)·C(n−2,pos)·p_n(pos+1) removes the strata that contained the
// deleted point. For Shapley: cNo = (pos+1)/n, cWith = −(pos+1)/n — the
// historic −dmc·(pos+1)/n fold.
func (w Weighting) DeleteCoeffs(n int) (cNo, cWith []float64) {
	if n < 2 {
		return nil, nil
	}
	cNo = make([]float64, n-1)
	cWith = make([]float64, n-1)
	if w.k == kindShapley || w.k == kindAbsShapley {
		for pos := 0; pos < n-1; pos++ {
			c := float64(pos+1) / float64(n)
			cNo[pos] = c
			cWith[pos] = -c
		}
		return cNo, cWith
	}
	omega := w.PosWeights(n - 1)
	ln1 := math.Log(float64(n - 1))
	for pos := 0; pos < n-1; pos++ {
		base := ln1 + logChoose(n-2, pos)
		cNo[pos] = omega[pos] - math.Exp(base+w.logSubsetWeight(n, pos))
		cWith[pos] = -math.Exp(base + w.logSubsetWeight(n, pos+1))
	}
	return cNo, cWith
}

// MergeCoeffs returns the per-k coefficients recovering the head's
// post-deletion values from a YN-NN deletion store filled over an n-player
// game: out[i] = Σ_{k=1}^{n−1} coef[k]·(YN[i][p][k] − NN[i][p][k−1]).
// The difference isolates the survivor game's size-(k−1) strata, so any
// LINEAR head re-weights it; exact stores hold the combinatorial sums
// (coef = p_{n−1}(k−1)), sampled stores hold permutation averages whose
// stratum hit-rate (n−k)/(n(n−1)) and subset count C(n−2,k−1) fold into
// the coefficient. It panics for Abs weightings — |·| does not distribute
// over the stored sums (callers gate on Linear).
func (w Weighting) MergeCoeffs(n int, exact bool) []float64 {
	if w.Abs() {
		panic("semivalue: MergeCoeffs on an absolute-transform weighting")
	}
	coef := make([]float64, n)
	if n < 2 {
		return coef
	}
	if exact {
		sw := w.SubsetWeights(n - 1)
		for k := 1; k <= n-1; k++ {
			coef[k] = sw[k-1]
		}
		return coef
	}
	lnn := math.Log(float64(n)) + math.Log(float64(n-1))
	for k := 1; k <= n-1; k++ {
		coef[k] = math.Exp(w.logSubsetWeight(n-1, k-1) + logChoose(n-2, k-1) + lnn - math.Log(float64(n-k)))
	}
	return coef
}

// Keys renders a weighting list as its canonical wire names.
func Keys(ws []Weighting) []string {
	if len(ws) == 0 {
		return nil
	}
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Key()
	}
	return out
}

// ParseAll inverts Keys.
func ParseAll(names []string) ([]Weighting, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]Weighting, len(names))
	for i, s := range names {
		w, err := Parse(s)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}
