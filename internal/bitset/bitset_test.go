package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		s := New(n)
		if s.Cap() != n {
			t.Errorf("Cap() = %d, want %d", s.Cap(), n)
		}
		if s.Len() != 0 {
			t.Errorf("Len() = %d, want 0", s.Len())
		}
		if !s.Empty() {
			t.Errorf("New(%d) not empty", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Errorf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("after Add(%d), Contains false", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len() = %d, want 8", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("after Remove(64), Contains true")
	}
	if s.Len() != 7 {
		t.Fatalf("Len() = %d, want 7", s.Len())
	}
	// Add is idempotent.
	s.Add(0)
	s.Add(0)
	if s.Len() != 7 {
		t.Fatalf("idempotent Add changed Len to %d", s.Len())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Remove(10) },
		func() { s.Contains(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range index")
				}
			}()
			fn()
		}()
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 65, 100} {
		s := Full(n)
		if s.Len() != n {
			t.Errorf("Full(%d).Len() = %d", n, s.Len())
		}
		for i := 0; i < n; i++ {
			if !s.Contains(i) {
				t.Errorf("Full(%d) missing %d", n, i)
			}
		}
	}
}

func TestFromIndicesAndIndices(t *testing.T) {
	s := FromIndices(70, 3, 9, 64, 69)
	got := s.Indices()
	want := []int{3, 9, 64, 69}
	if len(got) != len(want) {
		t.Fatalf("Indices() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices() = %v, want %v", got, want)
		}
	}
}

func TestAppendIndicesReusesBuffer(t *testing.T) {
	s := FromIndices(10, 2, 5)
	buf := make([]int, 0, 4)
	out := s.AppendIndices(buf)
	if len(out) != 2 || out[0] != 2 || out[1] != 5 {
		t.Fatalf("AppendIndices = %v", out)
	}
	if cap(out) != 4 {
		t.Fatalf("AppendIndices reallocated: cap=%d", cap(out))
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromIndices(80, 1, 70)
	c := s.Clone()
	c.Add(2)
	if s.Contains(2) {
		t.Error("Clone shares storage with original")
	}
	if !c.Contains(70) || !c.Contains(1) {
		t.Error("Clone lost members")
	}
}

func TestCopyFrom(t *testing.T) {
	s := FromIndices(10, 1, 2)
	d := New(10)
	d.CopyFrom(s)
	if !d.Equal(s) {
		t.Error("CopyFrom did not copy")
	}
	d.Add(5)
	if s.Contains(5) {
		t.Error("CopyFrom shares storage")
	}
}

func TestSetOps(t *testing.T) {
	a := FromIndices(100, 1, 2, 3, 70)
	b := FromIndices(100, 3, 4, 70, 99)

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Indices(); len(got) != 6 {
		t.Errorf("union = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Indices(); len(got) != 2 || got[0] != 3 || got[1] != 70 {
		t.Errorf("intersection = %v", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Indices(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("difference = %v", got)
	}

	if !i.IsSubsetOf(a) || !i.IsSubsetOf(b) {
		t.Error("intersection not subset of operands")
	}
	if a.IsSubsetOf(b) {
		t.Error("a wrongly subset of b")
	}
}

func TestEqualDifferentCap(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Error("sets of different capacity reported equal")
	}
}

func TestKeyAndHash(t *testing.T) {
	a := FromIndices(130, 0, 64, 129)
	b := FromIndices(130, 0, 64, 129)
	c := FromIndices(130, 0, 64, 128)
	if a.Key() != b.Key() {
		t.Error("equal sets have different keys")
	}
	if a.Key() == c.Key() {
		t.Error("different sets share a key")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal sets have different hashes")
	}
}

func TestUint64(t *testing.T) {
	s := FromIndices(64, 0, 63)
	if got := s.Uint64(); got != 1|1<<63 {
		t.Errorf("Uint64() = %x", got)
	}
	wide := New(65)
	defer func() {
		if recover() == nil {
			t.Error("Uint64 on wide set did not panic")
		}
	}()
	wide.Uint64()
}

func TestString(t *testing.T) {
	if got := FromIndices(10, 3, 1).String(); got != "{1, 3}" {
		t.Errorf("String() = %q", got)
	}
	if got := New(5).String(); got != "{}" {
		t.Errorf("String() = %q", got)
	}
}

func TestClear(t *testing.T) {
	s := Full(77)
	s.Clear()
	if !s.Empty() {
		t.Error("Clear left members")
	}
}

// Property: Key uniquely identifies membership for random sets.
func TestQuickKeyMatchesEqual(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Len equals the count of distinct added indices.
func TestQuickLenDistinct(t *testing.T) {
	f := func(xs []uint8) bool {
		const n = 256
		s := New(n)
		distinct := map[uint8]bool{}
		for _, x := range xs {
			s.Add(int(x))
			distinct[x] = true
		}
		return s.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan — |A ∪ B| + |A ∩ B| == |A| + |B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u, i := a.Clone(), a.Clone()
		u.UnionWith(b)
		i.IntersectWith(b)
		return u.Len()+i.Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestForEachOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := New(300)
	for k := 0; k < 50; k++ {
		s.Add(r.Intn(300))
	}
	prev := -1
	s.ForEach(func(i int) {
		if i <= prev {
			t.Fatalf("ForEach out of order: %d after %d", i, prev)
		}
		prev = i
	})
}

func BenchmarkAddContains(b *testing.B) {
	s := New(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(i % 1024)
		if !s.Contains(i % 1024) {
			b.Fatal("missing")
		}
	}
}

func BenchmarkKey(b *testing.B) {
	s := Full(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130, 256} {
		s := New(n)
		for i := 0; i < n; i += 7 {
			s.Add(i)
		}
		if got := string(s.AppendKey(nil)); got != s.Key() {
			t.Errorf("n=%d: AppendKey = %q, Key = %q", n, got, s.Key())
		}
	}
}

func TestAppendKeyReusesBuffer(t *testing.T) {
	s := FromIndices(130, 0, 64, 129)
	buf := make([]byte, 0, 64)
	out := s.AppendKey(buf)
	if len(out) != 3*8 {
		t.Fatalf("AppendKey length = %d, want %d", len(out), 3*8)
	}
	if &out[0] != &buf[:1][0] {
		t.Error("AppendKey reallocated despite sufficient capacity")
	}
	// Appending onto existing content preserves the prefix.
	pre := append([]byte(nil), 'x', 'y')
	out = s.AppendKey(pre)
	if string(out[:2]) != "xy" || string(out[2:]) != s.Key() {
		t.Error("AppendKey clobbered the destination prefix")
	}
}

func TestAppendKeyAllocFree(t *testing.T) {
	s := Full(256)
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendKey(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendKey into sized buffer allocates %.1f times per call", allocs)
	}
}

func BenchmarkAppendKey(b *testing.B) {
	s := Full(256)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = s.AppendKey(buf[:0])
	}
}
