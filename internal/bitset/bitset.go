// Package bitset provides a compact, variable-width bit set used to
// represent coalitions of players (data points) throughout the library.
//
// A coalition over n players is a subset of {0, …, n−1}. Bit i of a Set is 1
// iff player i belongs to the coalition. Sets are value types backed by a
// []uint64 word slice; all mutating methods operate in place and return the
// receiver's words unchanged in length, so a Set sized for n players never
// reallocates.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set over players 0..n-1.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty Set with capacity for n players.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a Set of capacity n containing exactly the given players.
func FromIndices(n int, indices ...int) Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Full returns the Set of capacity n containing all n players.
func Full(n int) Set {
	s := New(n)
	for w := range s.words {
		s.words[w] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears bits at positions >= n in the last word.
func (s *Set) trim() {
	if len(s.words) == 0 {
		return
	}
	if r := s.n % wordBits; r != 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(r)) - 1
	}
}

// Cap returns the player capacity n of the set.
func (s Set) Cap() int { return s.n }

// Len returns the number of players in the coalition (popcount).
func (s Set) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the coalition has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts player i into the coalition.
func (s Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes player i from the coalition.
func (s Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether player i belongs to the coalition.
func (s Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Clear removes all players from the coalition.
func (s Set) Clear() {
	for w := range s.words {
		s.words[w] = 0
	}
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the receiver's contents with those of src.
// The two sets must have the same capacity.
func (s Set) CopyFrom(src Set) {
	if s.n != src.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(s.words, src.words)
}

// Equal reports whether the two coalitions have identical members.
// Sets of different capacity are never equal.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for w := range s.words {
		if s.words[w] != t.words[w] {
			return false
		}
	}
	return true
}

// UnionWith adds every member of t to the receiver.
func (s Set) UnionWith(t Set) {
	if s.n != t.n {
		panic("bitset: UnionWith capacity mismatch")
	}
	for w := range s.words {
		s.words[w] |= t.words[w]
	}
}

// IntersectWith removes members of the receiver absent from t.
func (s Set) IntersectWith(t Set) {
	if s.n != t.n {
		panic("bitset: IntersectWith capacity mismatch")
	}
	for w := range s.words {
		s.words[w] &= t.words[w]
	}
}

// DifferenceWith removes every member of t from the receiver.
func (s Set) DifferenceWith(t Set) {
	if s.n != t.n {
		panic("bitset: DifferenceWith capacity mismatch")
	}
	for w := range s.words {
		s.words[w] &^= t.words[w]
	}
}

// IsSubsetOf reports whether every member of s also belongs to t.
func (s Set) IsSubsetOf(t Set) bool {
	if s.n != t.n {
		panic("bitset: IsSubsetOf capacity mismatch")
	}
	for w := range s.words {
		if s.words[w]&^t.words[w] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member of the coalition in increasing order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Indices returns the members of the coalition in increasing order.
func (s Set) Indices() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// AppendIndices appends the members of the coalition to dst in increasing
// order and returns the extended slice. It allows callers to reuse buffers.
func (s Set) AppendIndices(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}

// Key returns a compact string key identifying the coalition, suitable for
// use as a map key (e.g. in utility caches). Two sets of equal capacity have
// equal keys iff they are Equal.
func (s Set) Key() string {
	return string(s.AppendKey(nil))
}

// AppendKey appends the coalition's key bytes (the little-endian words, 8
// bytes each) to dst and returns the extended slice. Callers that reuse a
// buffer — e.g. the utility cache, which keys a map lookup per coalition —
// avoid the per-call string allocation of Key: map access through
// string(dst) compiles to a no-copy lookup.
func (s Set) AppendKey(dst []byte) []byte {
	for _, w := range s.words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// Hash returns a 64-bit hash of the coalition contents (FNV-1a over words).
func (s Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		for k := 0; k < 8; k++ {
			h ^= (w >> (8 * k)) & 0xff
			h *= prime
		}
	}
	return h
}

// Uint64 returns the first word of the set. It panics if the capacity
// exceeds 64, and exists for fast paths over small games.
func (s Set) Uint64() uint64 {
	if s.n > wordBits {
		panic("bitset: Uint64 on set wider than 64 players")
	}
	if len(s.words) == 0 {
		return 0
	}
	return s.words[0]
}

// String renders the coalition as "{i, j, …}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
