package game

import (
	"math/rand"
	"sync"
	"testing"

	"dynshap/internal/bitset"
)

// walkBoth drives an incremental evaluator and scratch Value calls along the
// same permutation, requiring exact equality at every prefix.
func walkBoth(t *testing.T, g Game, ev PrefixEvaluator, perm []int) {
	t.Helper()
	prefix := bitset.New(g.N())
	ev.Reset()
	for pos, p := range perm {
		prefix.Add(p)
		want := g.Value(prefix)
		got := ev.Add(p)
		if got != want {
			t.Fatalf("prefix %v (pos %d): Add(%d) = %v, Value = %v", perm[:pos+1], pos, p, got, want)
		}
	}
}

func prefixGames() map[string]Game {
	return map[string]Game{
		// Integer-valued weights keep float addition exact, so the running
		// sums match index-order summation bit for bit.
		"additive":  Additive{Weights: []float64{3, -2, 7, 0, 5, -11, 4, 1, 9, -6}},
		"unanimity": Unanimity{Players: 10, Carrier: []int{2, 5, 9}},
		"glove":     NewGlove([]int{0, 2, 4, 6}, []int{1, 3, 5, 7, 8, 9}),
		"airport":   Airport{Costs: []float64{1, 4, 2, 8, 5.5, 7, 3, 6, 2.5, 4.5}},
		"voting":    WeightedVoting{Weights: []float64{4, 3, 2, 1, 5, 6, 2, 3, 1, 4}, Quota: 16},
		"symmetric": Symmetric{Players: 10, F: func(k int) float64 { return float64(k) / float64(k+3) }},
		"sum": Sum{
			A: Additive{Weights: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
			B: Airport{Costs: []float64{5, 3, 8, 1, 9, 2, 7, 4, 6, 10}},
		},
	}
}

func TestClassicPrefixEvaluatorsMatchValue(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for name, g := range prefixGames() {
		ev := PrefixEvaluatorOf(g)
		if ev == nil {
			t.Fatalf("%s: no prefix evaluator", name)
		}
		for trial := 0; trial < 50; trial++ {
			perm := rnd.Perm(g.N())
			t.Run(name, func(t *testing.T) { walkBoth(t, g, ev, perm) })
		}
	}
}

func TestScratchPrefixMatchesValue(t *testing.T) {
	g := Glove{Left: []int{0, 1}, Right: []int{2, 3, 4}, total: 5}
	walkBoth(t, g, ScratchPrefix(g), []int{4, 0, 2, 1, 3})
}

func TestPrefixEvaluatorOfUnsupported(t *testing.T) {
	g := Func{Players: 3, U: func(s bitset.Set) float64 { return float64(s.Len()) }}
	if ev := PrefixEvaluatorOf(g); ev != nil {
		t.Fatalf("Func unexpectedly supports prefix evaluation: %T", ev)
	}
	// Sum with one unsupported addend must not claim the capability.
	sum := Sum{A: Additive{Weights: []float64{1, 2, 3}}, B: g}
	if ev := PrefixEvaluatorOf(sum); ev != nil {
		t.Fatalf("Sum over unsupported addend yields evaluator: %T", ev)
	}
}

func TestCountingForwardsPrefix(t *testing.T) {
	c := NewCounting(Additive{Weights: []float64{1, 2, 3}})
	ev := PrefixEvaluatorOf(c)
	if ev == nil {
		t.Fatal("Counting did not forward the capability")
	}
	ev.Reset()
	ev.Add(1)
	ev.Add(0)
	if c.PrefixAdds() != 2 {
		t.Fatalf("PrefixAdds = %d, want 2", c.PrefixAdds())
	}
	if c.Calls() != 0 {
		t.Fatalf("Calls = %d, want 0 (Adds are not Value calls)", c.Calls())
	}
	// Unsupported inner game: no capability through the wrapper either.
	if ev := PrefixEvaluatorOf(NewCounting(Func{Players: 2, U: func(bitset.Set) float64 { return 0 }})); ev != nil {
		t.Fatal("Counting invented a capability its inner game lacks")
	}
}

func TestCachedForwardsPrefixAndBypassesCache(t *testing.T) {
	c := NewCached(Additive{Weights: []float64{2, 4, 6}})
	ev := PrefixEvaluatorOf(c)
	if ev == nil {
		t.Fatal("Cached did not forward the capability")
	}
	ev.Reset()
	if got := ev.Add(2); got != 6 {
		t.Fatalf("Add(2) = %v, want 6", got)
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Fatalf("incremental Add touched the cache: hits=%d misses=%d", hits, misses)
	}
	if c.PrefixAdds() != 1 {
		t.Fatalf("PrefixAdds = %d, want 1", c.PrefixAdds())
	}
	if c.Len() != 0 {
		t.Fatalf("incremental Add stored entries: Len = %d", c.Len())
	}
}

func TestRestrictForwardsPrefixWithTranslation(t *testing.T) {
	g := Additive{Weights: []float64{10, 20, 30, 40, 50}}
	r := NewRestrict(g, 1, 3) // keep 0, 2, 4
	ev := PrefixEvaluatorOf(r)
	if ev == nil {
		t.Fatal("Restrict did not forward the capability")
	}
	walkBoth(t, r, ev, []int{2, 0, 1})
}

// The sharded cache must behave exactly like the old single-map cache.

func TestShardedCacheStatsAndLen(t *testing.T) {
	calls := 0
	c := NewCached(Func{Players: 130, U: func(s bitset.Set) float64 {
		calls++
		return float64(s.Len())
	}})
	a := set(130, 0, 64, 129)
	b := set(130, 1)
	if c.Value(a) != 3 || c.Value(b) != 1 || c.Value(a) != 3 {
		t.Fatal("wrong values")
	}
	if calls != 2 {
		t.Fatalf("inner called %d times, want 2", calls)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = (%d, %d), want (1, 2)", hits, misses)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if c.Value(a) != 3 || calls != 3 {
		t.Fatalf("Purge did not drop entries (calls=%d)", calls)
	}
}

func TestShardedCacheFork(t *testing.T) {
	c := NewCached(Func{Players: 70, U: func(s bitset.Set) float64 { return float64(s.Len()) }})
	for i := 0; i < 70; i++ {
		c.Value(set(70, i))
	}
	fork := c.Fork(Func{Players: 70, U: func(s bitset.Set) float64 {
		t.Fatal("fork recomputed a warmed coalition")
		return 0
	}})
	for i := 0; i < 70; i++ {
		if got := fork.Value(set(70, i)); got != 1 {
			t.Fatalf("fork.Value = %v", got)
		}
	}
	hits, misses := fork.Stats()
	if hits != 70 || misses != 0 {
		t.Fatalf("fork stats = (%d, %d), want (70, 0)", hits, misses)
	}
	// Fresh entries in the fork must not leak back.
	fork2 := c.Fork(Func{Players: 70, U: func(s bitset.Set) float64 { return -1 }})
	fork2.Value(set(70, 0, 1))
	if c.Len() != 70 {
		t.Fatalf("fork wrote through to parent: Len = %d", c.Len())
	}
}

func TestShardedCacheConcurrentMixedCoalitions(t *testing.T) {
	c := NewCached(Func{Players: 200, U: func(s bitset.Set) float64 { return float64(s.Len()) }})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := bitset.New(200)
			for i := 0; i < 200; i++ {
				s.Clear()
				s.Add(i)
				s.Add((i + w) % 200)
				if got, want := c.Value(s), float64(s.Len()); got != want {
					t.Errorf("Value = %v, want %v", got, want)
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*200)
	}
}

func BenchmarkCachedHit(b *testing.B) {
	c := NewCached(Func{Players: 256, U: func(s bitset.Set) float64 { return float64(s.Len()) }})
	s := bitset.Full(256)
	c.Value(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Value(s)
	}
}

// BenchmarkCachedParallelHit measures hit throughput under contention — the
// regime of the paper's 48-thread runs, where the old single RWMutex
// serialised every lookup.
func BenchmarkCachedParallelHit(b *testing.B) {
	c := NewCached(Func{Players: 128, U: func(s bitset.Set) float64 { return float64(s.Len()) }})
	warm := make([]bitset.Set, 128)
	for i := range warm {
		warm[i] = bitset.FromIndices(128, i, (i+1)%128, (i+7)%128)
		c.Value(warm[i])
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Value(warm[i%len(warm)])
			i++
		}
	})
}
