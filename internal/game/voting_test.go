package game

import (
	"math"
	"testing"
)

// exactByEnumeration computes Shapley values of a WeightedVoting game by
// brute force, as an oracle for the DP.
func exactByEnumeration(weights []float64, quota float64) []float64 {
	n := len(weights)
	g := WeightedVoting{Weights: weights, Quota: quota}
	weight := make([]float64, n)
	weight[0] = 1 / float64(n)
	for s := 1; s < n; s++ {
		weight[s] = weight[s-1] * float64(s) / float64(n-s)
	}
	sv := make([]float64, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		s := set(n)
		size := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(i)
				size++
			}
		}
		base := g.Value(s)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				s.Add(i)
				sv[i] += weight[size] * (g.Value(s) - base)
				s.Remove(i)
			}
		}
	}
	return sv
}

func TestShapleyShubikMatchesEnumeration(t *testing.T) {
	cases := []struct {
		weights []int
		quota   int
	}{
		{[]int{4, 2, 1}, 5},
		{[]int{40, 25, 15, 10, 5, 5}, 51},
		{[]int{1, 1, 1, 1, 1}, 3},
		{[]int{10, 1, 1, 1}, 11},
		{[]int{3, 3, 2, 2, 1, 1, 1}, 7},
	}
	for _, c := range cases {
		got, err := ShapleyShubik(c.weights, c.quota)
		if err != nil {
			t.Fatal(err)
		}
		wf := make([]float64, len(c.weights))
		for i, w := range c.weights {
			wf[i] = float64(w)
		}
		want := exactByEnumeration(wf, float64(c.quota))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("weights %v quota %d: got %v, want %v", c.weights, c.quota, got, want)
			}
		}
	}
}

func TestShapleyShubikSumsToOne(t *testing.T) {
	// Balance: the power indices of a decisive game sum to 1.
	got, err := ShapleyShubik([]int{7, 4, 3, 3, 2, 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("Σ power = %v, want 1", sum)
	}
}

func TestShapleyShubikNullVoter(t *testing.T) {
	// A 0-weight voter has zero power (zero element).
	got, err := ShapleyShubik([]int{5, 3, 0}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 0 {
		t.Fatalf("null voter power = %v", got[2])
	}
}

func TestShapleyShubikDictator(t *testing.T) {
	// A voter meeting the quota alone with no one else able to combine
	// against it takes all the power.
	got, err := ShapleyShubik([]int{10, 1, 1, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 1e-10 {
		t.Fatalf("dictator power = %v, want 1", got[0])
	}
}

func TestShapleyShubikLargeCouncil(t *testing.T) {
	// 60 voters — far beyond 2^n enumeration — finishes instantly and
	// respects symmetry and balance.
	weights := make([]int, 60)
	for i := range weights {
		weights[i] = 1 + i%3
	}
	totalW := 0
	for _, w := range weights {
		totalW += w
	}
	got, err := ShapleyShubik(weights, totalW/2+1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σ power = %v", sum)
	}
	// Same-weight voters have identical power.
	if math.Abs(got[0]-got[3]) > 1e-10 { // both weight 1
		t.Fatalf("symmetric voters differ: %v vs %v", got[0], got[3])
	}
}

func TestShapleyShubikValidation(t *testing.T) {
	if _, err := ShapleyShubik([]int{1, -2}, 1); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := ShapleyShubik([]int{1, 2}, 0); err == nil {
		t.Error("zero quota should fail")
	}
	if _, err := ShapleyShubik([]int{1, 2}, 4); err == nil {
		t.Error("unreachable quota should fail")
	}
	if got, err := ShapleyShubik(nil, 1); err != nil || got != nil {
		t.Error("empty game should return nil, nil")
	}
}
