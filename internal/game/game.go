// Package game defines the cooperative-game abstraction the Shapley engine
// operates on, together with a collection of classical games with
// closed-form Shapley values used to validate every estimator, and utility
// wrappers (caching, evaluation counting) shared by the machine-learning
// valuation substrate.
//
// A cooperative game is a pair (N, U) of a player set N = {0, …, n−1} and a
// characteristic (utility) function U: 2^N → ℝ. In data valuation the
// players are training points and U(S) is the test performance of a model
// trained on S; nothing in the Shapley engine depends on that
// interpretation, which is why the paper's algorithms also apply to general
// games (paper §I).
package game

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dynshap/internal/bitset"
)

// Game is a cooperative game with a fixed player set.
//
// Implementations must be safe for concurrent Value calls; the engine's
// parallel samplers evaluate coalitions from many goroutines.
type Game interface {
	// N returns the number of players.
	N() int
	// Value returns the utility U(S) of the coalition S.
	// S must have capacity N().
	Value(s bitset.Set) float64
}

// Func adapts a plain function to the Game interface.
type Func struct {
	Players int
	U       func(s bitset.Set) float64
}

// N implements Game.
func (f Func) N() int { return f.Players }

// Value implements Game.
func (f Func) Value(s bitset.Set) float64 { return f.U(s) }

// ExactShapley is implemented by games whose Shapley values are known in
// closed form. The test suite uses it to validate estimators independently
// of the exact enumerator.
type ExactShapley interface {
	// ShapleyValues returns the exact Shapley value of every player.
	ShapleyValues() []float64
}

// Counting wraps a game and counts utility evaluations. The experiment
// harness reports evaluation counts alongside wall time because the paper's
// large-dataset tables (XI–XIV) are dominated by #evaluations × training
// time.
type Counting struct {
	inner      Game
	calls      atomic.Int64
	prefixAdds atomic.Int64
}

// NewCounting returns a counting wrapper around g.
func NewCounting(g Game) *Counting { return &Counting{inner: g} }

// N implements Game.
func (c *Counting) N() int { return c.inner.N() }

// Value implements Game.
func (c *Counting) Value(s bitset.Set) float64 {
	c.calls.Add(1)
	return c.inner.Value(s)
}

// Calls returns the number of Value invocations so far.
func (c *Counting) Calls() int64 { return c.calls.Load() }

// Reset zeroes the call counter.
func (c *Counting) Reset() { c.calls.Store(0) }

// cacheShardCount is the number of lock stripes in a cache store. Power of
// two so shard selection is a mask of the coalition hash; 64 stripes keep
// the probability of two of the paper's 48 threads colliding on one lock
// low without bloating small caches.
const cacheShardCount = 64

// cacheEntry holds one memoised coalition. Entries are bucketed by the
// 64-bit coalition hash; the full key bytes are kept only to confirm
// membership on the (rare) hash collision.
type cacheEntry struct {
	key string
	v   float64
}

// cacheShard is one lock stripe of the store. The trailing padding keeps
// adjacent shards' mutexes on distinct cache lines so uncontended stripes
// do not false-share.
type cacheShard struct {
	mu     sync.RWMutex
	values map[uint64][]cacheEntry
	_      [24]byte
}

// cacheStore is the shareable state behind Cached: the memoised values,
// lock-striped by coalition hash so parallel samplers do not serialise on a
// single RWMutex, and the shared statistics.
type cacheStore struct {
	shards     [cacheShardCount]cacheShard
	hits       atomic.Int64
	misses     atomic.Int64
	prefixAdds atomic.Int64
}

func newCacheStore() *cacheStore {
	st := &cacheStore{}
	for i := range st.shards {
		st.shards[i].values = make(map[uint64][]cacheEntry)
	}
	return st
}

// lookup returns the memoised value for (hash, key) if present.
func (st *cacheStore) lookup(h uint64, key []byte) (float64, bool) {
	sh := &st.shards[h%cacheShardCount]
	sh.mu.RLock()
	for _, e := range sh.values[h] {
		if e.key == string(key) {
			sh.mu.RUnlock()
			return e.v, true
		}
	}
	sh.mu.RUnlock()
	return 0, false
}

// insert memoises v under (hash, key), tolerating concurrent duplicate
// computation: a racing insert of the same coalition overwrites rather than
// duplicating the entry.
func (st *cacheStore) insert(h uint64, key []byte, v float64) {
	sh := &st.shards[h%cacheShardCount]
	sh.mu.Lock()
	entries := sh.values[h]
	for i := range entries {
		if entries[i].key == string(key) {
			entries[i].v = v
			sh.mu.Unlock()
			return
		}
	}
	sh.values[h] = append(entries, cacheEntry{key: string(key), v: v})
	sh.mu.Unlock()
}

// Cached wraps a game with a memoising coalition→utility cache. Model
// training is by far the dominant cost of data valuation, and dynamic
// updates re-evaluate many coalitions already seen while valuing the
// original dataset (paper §I, motivating example), so the cache is what
// makes "reuse" measurable.
type Cached struct {
	inner Game
	store *cacheStore
}

// NewCached returns a caching wrapper around g.
func NewCached(g Game) *Cached {
	return &Cached{inner: g, store: newCacheStore()}
}

// NewCachedShared returns a caching wrapper around g that shares prev's
// memoised values (and statistics). It supports growing a game by appended
// players: coalitions over the original players keep identical keys, so
// the expensive utilities computed before the growth keep serving hits.
// It must NOT be used across player re-numberings (deletions) — build a
// fresh cache there. A nil prev behaves like NewCached.
func NewCachedShared(g Game, prev *Cached) *Cached {
	if prev == nil {
		return NewCached(g)
	}
	return &Cached{inner: g, store: prev.store}
}

// Fork returns a new Cached around inner, pre-warmed with a copy of c's
// entries but with fresh statistics and independent storage. The experiment
// harness uses it to hand every contender the same starting cache without
// letting them warm each other's.
func (c *Cached) Fork(inner Game) *Cached {
	st := newCacheStore()
	for i := range c.store.shards {
		src := &c.store.shards[i]
		dst := &st.shards[i]
		src.mu.RLock()
		for h, entries := range src.values {
			dst.values[h] = append([]cacheEntry(nil), entries...)
		}
		src.mu.RUnlock()
	}
	return &Cached{inner: inner, store: st}
}

// N implements Game.
func (c *Cached) N() int { return c.inner.N() }

// Value implements Game, consulting the cache first. The key bytes are
// built into a stack buffer via bitset.AppendKey, so a cache hit performs
// no allocation (games above 512 players spill the buffer to the heap).
func (c *Cached) Value(s bitset.Set) float64 {
	var buf [64]byte
	key := s.AppendKey(buf[:0])
	h := s.Hash()
	if v, ok := c.store.lookup(h, key); ok {
		c.store.hits.Add(1)
		return v
	}
	v := c.inner.Value(s)
	c.store.insert(h, key, v)
	c.store.misses.Add(1)
	return v
}

// Stats returns the numbers of cache hits and misses so far.
func (c *Cached) Stats() (hits, misses int64) {
	return c.store.hits.Load(), c.store.misses.Load()
}

// Len returns the number of cached coalitions.
func (c *Cached) Len() int {
	total := 0
	for i := range c.store.shards {
		sh := &c.store.shards[i]
		sh.mu.RLock()
		for _, entries := range sh.values {
			total += len(entries)
		}
		sh.mu.RUnlock()
	}
	return total
}

// Purge drops all cached entries.
func (c *Cached) Purge() {
	for i := range c.store.shards {
		sh := &c.store.shards[i]
		sh.mu.Lock()
		sh.values = make(map[uint64][]cacheEntry)
		sh.mu.Unlock()
	}
}

// Restrict presents a sub-game over the players NOT in `removed`, with
// player indices renumbered to 0..n−|removed|−1 preserving order. It is how
// the deletion algorithms view the post-deletion dataset N⁻: utilities of
// coalitions in N⁻ are utilities of the same coalitions in the original
// game, so a cached original game transparently serves both.
type Restrict struct {
	inner Game
	// keep[i] is the original index of restricted player i.
	keep []int
}

// NewRestrict returns the sub-game of g over all players except removed.
func NewRestrict(g Game, removed ...int) *Restrict {
	gone := bitset.New(g.N())
	for _, p := range removed {
		gone.Add(p)
	}
	keep := make([]int, 0, g.N()-gone.Len())
	for i := 0; i < g.N(); i++ {
		if !gone.Contains(i) {
			keep = append(keep, i)
		}
	}
	return &Restrict{inner: g, keep: keep}
}

// N implements Game.
func (r *Restrict) N() int { return len(r.keep) }

// Keep returns the original indices of the remaining players in order.
func (r *Restrict) Keep() []int { return append([]int(nil), r.keep...) }

// Value implements Game by translating the restricted coalition into the
// original player numbering.
func (r *Restrict) Value(s bitset.Set) float64 {
	if s.Cap() != len(r.keep) {
		panic(fmt.Sprintf("game: Restrict.Value set capacity %d, want %d", s.Cap(), len(r.keep)))
	}
	orig := bitset.New(r.inner.N())
	s.ForEach(func(i int) { orig.Add(r.keep[i]) })
	return r.inner.Value(orig)
}
