package game

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"dynshap/internal/bitset"
)

func set(n int, members ...int) bitset.Set { return bitset.FromIndices(n, members...) }

func TestFuncAdapter(t *testing.T) {
	g := Func{Players: 3, U: func(s bitset.Set) float64 { return float64(s.Len()) }}
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if got := g.Value(set(3, 0, 2)); got != 2 {
		t.Fatalf("Value = %v", got)
	}
}

func TestAdditive(t *testing.T) {
	g := Additive{Weights: []float64{1, -2, 3.5}}
	if got := g.Value(set(3)); got != 0 {
		t.Errorf("U(∅) = %v", got)
	}
	if got := g.Value(set(3, 0, 1, 2)); got != 2.5 {
		t.Errorf("U(N) = %v", got)
	}
	sv := g.ShapleyValues()
	for i, w := range g.Weights {
		if sv[i] != w {
			t.Errorf("SV[%d] = %v, want %v", i, sv[i], w)
		}
	}
	// ShapleyValues must not alias Weights.
	sv[0] = 99
	if g.Weights[0] == 99 {
		t.Error("ShapleyValues aliases Weights")
	}
}

func TestUnanimity(t *testing.T) {
	g := Unanimity{Players: 5, Carrier: []int{1, 3}}
	if g.Value(set(5, 1)) != 0 {
		t.Error("partial carrier should have zero value")
	}
	if g.Value(set(5, 1, 3)) != 1 || g.Value(set(5, 0, 1, 3, 4)) != 1 {
		t.Error("supersets of the carrier should have value 1")
	}
	sv := g.ShapleyValues()
	want := []float64{0, 0.5, 0, 0.5, 0}
	for i := range want {
		if sv[i] != want[i] {
			t.Errorf("SV = %v, want %v", sv, want)
		}
	}
}

func TestGlove(t *testing.T) {
	g := NewGlove([]int{0}, []int{1, 2})
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	cases := []struct {
		s    bitset.Set
		want float64
	}{
		{set(3), 0},
		{set(3, 0), 0},
		{set(3, 1, 2), 0},
		{set(3, 0, 1), 1},
		{set(3, 0, 1, 2), 1},
	}
	for _, c := range cases {
		if got := g.Value(c.s); got != c.want {
			t.Errorf("U(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestAirportClosedForm(t *testing.T) {
	g := Airport{Costs: []float64{1, 3, 3, 10}}
	sv := g.ShapleyValues()
	// Littlechild–Owen by hand:
	// sorted costs 1,3,3,10 (indices 0,1,2,3).
	// SV(0) = 1/4
	// SV(1) = 1/4 + 2/3 ≈ 0.91667 ; SV(2) same
	// SV(3) = 1/4 + 2/3 + 0/2 + 7/1 = 7.91667
	want := []float64{0.25, 0.25 + 2.0/3, 0.25 + 2.0/3, 0.25 + 2.0/3 + 7}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-12 {
			t.Errorf("SV[%d] = %v, want %v", i, sv[i], want[i])
		}
	}
	// Balance: sum equals U(N) = max cost.
	sum := 0.0
	for _, v := range sv {
		sum += v
	}
	if math.Abs(sum-10) > 1e-12 {
		t.Errorf("ΣSV = %v, want 10", sum)
	}
}

func TestWeightedVoting(t *testing.T) {
	g := WeightedVoting{Weights: []float64{4, 2, 1}, Quota: 5}
	if g.Value(set(3, 0)) != 0 || g.Value(set(3, 0, 2)) != 1 || g.Value(set(3, 1, 2)) != 0 {
		t.Error("quota logic wrong")
	}
}

func TestSymmetric(t *testing.T) {
	g := Symmetric{Players: 4, F: func(k int) float64 { return float64(k * k) }}
	sv := g.ShapleyValues()
	for _, v := range sv {
		if v != 4 {
			t.Errorf("SV = %v, want all 4", sv)
		}
	}
}

func TestSum(t *testing.T) {
	a := Additive{Weights: []float64{1, 2}}
	b := Additive{Weights: []float64{10, 20}}
	g := Sum{A: a, B: b}
	if got := g.Value(set(2, 0, 1)); got != 33 {
		t.Errorf("Sum value = %v", got)
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(Additive{Weights: []float64{1, 2, 3}})
	if c.Calls() != 0 {
		t.Fatal("fresh counter nonzero")
	}
	s := set(3, 0)
	c.Value(s)
	c.Value(s)
	if c.Calls() != 2 {
		t.Fatalf("Calls = %d, want 2", c.Calls())
	}
	c.Reset()
	if c.Calls() != 0 {
		t.Fatal("Reset did not zero")
	}
}

func TestCachedDedupes(t *testing.T) {
	counted := NewCounting(Additive{Weights: []float64{1, 2, 3}})
	c := NewCached(counted)
	s := set(3, 0, 2)
	v1 := c.Value(s)
	v2 := c.Value(s)
	if v1 != v2 || v1 != 4 {
		t.Fatalf("cached values %v, %v", v1, v2)
	}
	if counted.Calls() != 1 {
		t.Fatalf("inner calls = %d, want 1", counted.Calls())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("Purge did not clear")
	}
	c.Value(s)
	if counted.Calls() != 2 {
		t.Fatal("purged cache did not re-evaluate")
	}
}

func TestCachedSharedSurvivesGrowth(t *testing.T) {
	// A 4-player game grows to 5 players; coalitions of the original four
	// must hit the shared cache (same key), new coalitions must miss.
	inner4 := NewCounting(Additive{Weights: []float64{1, 2, 3, 4}})
	c4 := NewCached(inner4)
	_ = c4.Value(set(4, 0, 2))
	inner5 := NewCounting(Additive{Weights: []float64{1, 2, 3, 4, 5}})
	c5 := NewCachedShared(inner5, c4)
	if got := c5.Value(set(5, 0, 2)); got != 4 {
		t.Fatalf("shared value = %v, want 4", got)
	}
	if inner5.Calls() != 0 {
		t.Fatal("grown cache re-evaluated a known coalition")
	}
	_ = c5.Value(set(5, 0, 4))
	if inner5.Calls() != 1 {
		t.Fatal("new coalition should miss")
	}
	// Statistics are shared.
	hits, misses := c4.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("shared stats = (%d, %d), want (1, 2)", hits, misses)
	}
	// Nil prev behaves like NewCached.
	c := NewCachedShared(inner4, nil)
	if c.Len() != 0 {
		t.Fatal("nil-prev shared cache not empty")
	}
}

func TestCachedConcurrent(t *testing.T) {
	counted := NewCounting(Symmetric{Players: 64, F: func(k int) float64 { return float64(k) }})
	c := NewCached(counted)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := set(64, i%64, (i+w)%64)
				_ = c.Value(s)
			}
		}(w)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 1600 {
		t.Fatalf("hits+misses = %d, want 1600", hits+misses)
	}
	if c.Len() > 64*64 {
		t.Fatalf("cache grew unreasonably: %d", c.Len())
	}
}

func TestRestrict(t *testing.T) {
	g := Additive{Weights: []float64{1, 10, 100, 1000}}
	r := NewRestrict(g, 1)
	if r.N() != 3 {
		t.Fatalf("N = %d", r.N())
	}
	keep := r.Keep()
	want := []int{0, 2, 3}
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("Keep = %v, want %v", keep, want)
		}
	}
	// Restricted player 1 is original player 2.
	if got := r.Value(set(3, 1)); got != 100 {
		t.Errorf("restricted U({1}) = %v, want 100", got)
	}
	if got := r.Value(set(3, 0, 1, 2)); got != 1101 {
		t.Errorf("restricted U(N⁻) = %v, want 1101", got)
	}
}

func TestRestrictMultiple(t *testing.T) {
	g := Additive{Weights: []float64{1, 10, 100, 1000, 10000}}
	r := NewRestrict(g, 0, 3)
	if r.N() != 3 {
		t.Fatalf("N = %d", r.N())
	}
	if got := r.Value(set(3, 0, 1, 2)); got != 10110 {
		t.Errorf("restricted value = %v", got)
	}
}

func TestRestrictCapacityPanics(t *testing.T) {
	r := NewRestrict(Additive{Weights: []float64{1, 2, 3}}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong capacity")
		}
	}()
	r.Value(set(3, 0))
}

// Property: glove value is monotone under adding players.
func TestQuickGloveMonotone(t *testing.T) {
	g := NewGlove([]int{0, 1, 2}, []int{3, 4, 5, 6})
	f := func(membersRaw []uint8, extraRaw uint8) bool {
		s := bitset.New(7)
		for _, m := range membersRaw {
			s.Add(int(m % 7))
		}
		before := g.Value(s)
		s.Add(int(extraRaw % 7))
		return g.Value(s) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Sum of additive games has additive values.
func TestQuickAdditivity(t *testing.T) {
	f := func(w1, w2 [5]int8, membersRaw []uint8) bool {
		a := Additive{Weights: make([]float64, 5)}
		b := Additive{Weights: make([]float64, 5)}
		for i := 0; i < 5; i++ {
			a.Weights[i] = float64(w1[i])
			b.Weights[i] = float64(w2[i])
		}
		s := bitset.New(5)
		for _, m := range membersRaw {
			s.Add(int(m % 5))
		}
		sum := Sum{A: a, B: b}
		return sum.Value(s) == a.Value(s)+b.Value(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
