package game

import "fmt"

// ShapleyShubik computes the exact Shapley values (power indices) of a
// weighted voting game with integer weights, in pseudo-polynomial time
// O(n²·W) via subset-sum dynamic programming with item removal — no 2^n
// enumeration, so councils with hundreds of voters are exact.
//
// Player i is pivotal for a coalition S ∌ i iff w(S) < quota ≤ w(S) + w_i;
// its Shapley value is Σ_s s!(n−1−s)!/n! · #{S : |S| = s, pivotal}. The DP
// table counts subsets of all players by (size, weight); for each player the
// counts excluding it are recovered by inverting the item insertion.
func ShapleyShubik(weights []int, quota int) ([]float64, error) {
	n := len(weights)
	if n == 0 {
		return nil, nil
	}
	total := 0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("game: negative weight %d at player %d", w, i)
		}
		total += w
	}
	if quota <= 0 || quota > total {
		return nil, fmt.Errorf("game: quota %d outside (0, %d]", quota, total)
	}
	// count[s][w] = number of subsets of ALL players with size s, weight w.
	count := make([][]float64, n+1)
	for s := range count {
		count[s] = make([]float64, total+1)
	}
	count[0][0] = 1
	for _, wi := range weights {
		for s := n - 1; s >= 0; s-- {
			for w := total - wi; w >= 0; w-- {
				if count[s][w] != 0 {
					count[s+1][w+wi] += count[s][w]
				}
			}
		}
	}
	// Positional weights s!(n−1−s)!/n! via the stable recurrence.
	weight := make([]float64, n)
	weight[0] = 1 / float64(n)
	for s := 1; s < n; s++ {
		weight[s] = weight[s-1] * float64(s) / float64(n-s)
	}
	sv := make([]float64, n)
	// without[s][w] reused per player.
	without := make([][]float64, n)
	for s := range without {
		without[s] = make([]float64, total+1)
	}
	for i, wi := range weights {
		// Invert player i's insertion: subsets not containing i.
		for w := 0; w <= total; w++ {
			without[0][w] = count[0][w]
		}
		for s := 1; s < n; s++ {
			for w := 0; w <= total; w++ {
				c := count[s][w]
				if w >= wi {
					c -= without[s-1][w-wi]
				}
				without[s][w] = c
			}
		}
		if wi == 0 {
			continue // null voter: never pivotal
		}
		lo := quota - wi
		if lo < 0 {
			lo = 0
		}
		for s := 0; s < n; s++ {
			pivotal := 0.0
			hi := quota - 1
			if hi > total {
				hi = total
			}
			for w := lo; w <= hi; w++ {
				pivotal += without[s][w]
			}
			sv[i] += weight[s] * pivotal
		}
	}
	return sv, nil
}
