package game

import (
	"sort"

	"dynshap/internal/bitset"
)

// Additive is the inessential game U(S) = Σ_{i∈S} w_i. Its Shapley values
// are exactly the weights — the canonical sanity check for any estimator.
type Additive struct {
	Weights []float64
}

// N implements Game.
func (g Additive) N() int { return len(g.Weights) }

// Value implements Game.
func (g Additive) Value(s bitset.Set) float64 {
	v := 0.0
	s.ForEach(func(i int) { v += g.Weights[i] })
	return v
}

// ShapleyValues implements ExactShapley.
func (g Additive) ShapleyValues() []float64 {
	return append([]float64(nil), g.Weights...)
}

// Unanimity is the game U(S) = 1 iff S ⊇ T for a carrier coalition T.
// Shapley values: 1/|T| for members of T, 0 otherwise — it exercises the
// zero-element (null player) property.
type Unanimity struct {
	Players int
	Carrier []int // distinct player indices
}

// N implements Game.
func (g Unanimity) N() int { return g.Players }

// Value implements Game.
func (g Unanimity) Value(s bitset.Set) float64 {
	for _, t := range g.Carrier {
		if !s.Contains(t) {
			return 0
		}
	}
	return 1
}

// ShapleyValues implements ExactShapley.
func (g Unanimity) ShapleyValues() []float64 {
	sv := make([]float64, g.Players)
	share := 1 / float64(len(g.Carrier))
	for _, t := range g.Carrier {
		sv[t] = share
	}
	return sv
}

// Glove is the glove-market game: players in L hold left gloves, players in
// R hold right gloves, and U(S) = min(|S∩L|, |S∩R|) (pairs formed). For the
// 3-player market L={0}, R={1,2} the exact values are (2/3, 1/6, 1/6);
// general values are computed by the test suite through enumeration.
type Glove struct {
	Left  []int
	Right []int
	total int
}

// NewGlove builds a glove market. Player indices must partition 0..n−1.
func NewGlove(left, right []int) Glove {
	return Glove{Left: left, Right: right, total: len(left) + len(right)}
}

// N implements Game.
func (g Glove) N() int { return g.total }

// Value implements Game.
func (g Glove) Value(s bitset.Set) float64 {
	l, r := 0, 0
	for _, i := range g.Left {
		if s.Contains(i) {
			l++
		}
	}
	for _, i := range g.Right {
		if s.Contains(i) {
			r++
		}
	}
	if l < r {
		return float64(l)
	}
	return float64(r)
}

// Airport is Littlechild–Owen's airport game: player i needs a runway of
// cost c_i and U(S) = max_{i∈S} c_i (cost games are usually stated as costs;
// we use the value form, whose Shapley value has the same closed form).
//
// With costs sorted ascending c_(1) ≤ … ≤ c_(n), the Shapley value of the
// player with the k-th smallest cost is Σ_{j=1..k} (c_(j) − c_(j−1))/(n−j+1).
type Airport struct {
	Costs []float64
}

// N implements Game.
func (g Airport) N() int { return len(g.Costs) }

// Value implements Game.
func (g Airport) Value(s bitset.Set) float64 {
	maxC := 0.0
	s.ForEach(func(i int) {
		if g.Costs[i] > maxC {
			maxC = g.Costs[i]
		}
	})
	return maxC
}

// ShapleyValues implements ExactShapley using the Littlechild–Owen formula.
func (g Airport) ShapleyValues() []float64 {
	n := len(g.Costs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Costs[order[a]] < g.Costs[order[b]] })
	sv := make([]float64, n)
	acc := 0.0
	prev := 0.0
	for rank, p := range order {
		// Segment (prev, c_p] is shared by the n−rank players with cost ≥ c_p.
		acc += (g.Costs[p] - prev) / float64(n-rank)
		sv[p] = acc
		prev = g.Costs[p]
	}
	return sv
}

// WeightedVoting is the weighted majority game: U(S) = 1 iff the total
// weight of S reaches Quota. Exact Shapley values (= Shapley–Shubik power
// indices) are produced by enumeration in tests.
type WeightedVoting struct {
	Weights []float64
	Quota   float64
}

// N implements Game.
func (g WeightedVoting) N() int { return len(g.Weights) }

// Value implements Game.
func (g WeightedVoting) Value(s bitset.Set) float64 {
	w := 0.0
	s.ForEach(func(i int) { w += g.Weights[i] })
	if w >= g.Quota {
		return 1
	}
	return 0
}

// Symmetric is a game whose utility depends only on coalition size:
// U(S) = f(|S|). All players share the same Shapley value
// (f(n) − f(0)) / n by the balance and symmetry axioms.
type Symmetric struct {
	Players int
	F       func(size int) float64
}

// N implements Game.
func (g Symmetric) N() int { return g.Players }

// Value implements Game.
func (g Symmetric) Value(s bitset.Set) float64 { return g.F(s.Len()) }

// ShapleyValues implements ExactShapley.
func (g Symmetric) ShapleyValues() []float64 {
	sv := make([]float64, g.Players)
	share := (g.F(g.Players) - g.F(0)) / float64(g.Players)
	for i := range sv {
		sv[i] = share
	}
	return sv
}

// Sum is the player-wise sum of two games over the same player set. The
// additivity axiom states SV_{A+B} = SV_A + SV_B; the property tests use it.
type Sum struct {
	A, B Game
}

// N implements Game.
func (g Sum) N() int { return g.A.N() }

// Value implements Game.
func (g Sum) Value(s bitset.Set) float64 { return g.A.Value(s) + g.B.Value(s) }
