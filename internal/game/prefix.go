// Incremental prefix evaluation.
//
// Every permutation-sampling estimator in the engine walks a permutation
// head to tail asking for U(prefix) after each player joins. A plain Game
// answers each question from scratch — for model utilities that is a full
// training run per question, so one permutation costs Θ(n · training). Many
// games, however, can maintain U as players JOIN a coalition far more
// cheaply than they can evaluate an arbitrary coalition: the KNN utility
// updates per-test-point neighbour lists (Jia et al., "Towards Efficient
// Data Valuation Based on the Shapley Value"), and the closed-form games
// update running sums, counts, or maxima in O(1).
//
// PrefixEvaluator is that capability's protocol, and Prefixer is how games
// advertise it. The contract binding the two paths together: for a
// deterministic game, the value returned by Add MUST be bit-identical to
// what Value would return on the same coalition, so estimators produce the
// same estimates to the last bit whichever path they take. Estimators
// detect the capability with PrefixEvaluatorOf and fall back to Value
// unchanged when it returns nil.
package game

import (
	"sync/atomic"

	"dynshap/internal/bitset"
)

// PrefixEvaluator incrementally evaluates the utility of a growing
// coalition. After Reset the tracked coalition is ∅; each Add(p) inserts
// player p and returns U(prefix ∪ {p}). Players must not repeat between
// Resets. An evaluator is NOT safe for concurrent use — parallel samplers
// obtain one per worker from the game's Prefixer.
type PrefixEvaluator interface {
	// Reset empties the tracked coalition.
	Reset()
	// Add inserts player p into the coalition and returns its new utility.
	Add(p int) float64
}

// Prefixer is implemented by games that can hand out incremental prefix
// evaluators. Prefix may return nil when the capability is unavailable for
// the game's current configuration (e.g. a model utility whose trainer has
// no incremental form); callers should use PrefixEvaluatorOf, which folds
// that case into the missing-capability one.
type Prefixer interface {
	// Prefix returns a fresh evaluator over the game's players, or nil.
	// It must be safe for concurrent calls.
	Prefix() PrefixEvaluator
}

// PrefixEvaluatorOf returns a fresh incremental evaluator for g, or nil if
// g does not support incremental prefix evaluation.
func PrefixEvaluatorOf(g Game) PrefixEvaluator {
	if p, ok := g.(Prefixer); ok {
		return p.Prefix()
	}
	return nil
}

// countedPrefix wraps an evaluator, counting Adds into a shared counter.
type countedPrefix struct {
	ev PrefixEvaluator
	n  *atomic.Int64
}

func (c *countedPrefix) Reset() { c.ev.Reset() }

func (c *countedPrefix) Add(p int) float64 {
	c.n.Add(1)
	return c.ev.Add(p)
}

// Prefix implements Prefixer by forwarding the inner game's capability.
// Incremental evaluations are counted separately from Value calls (see
// PrefixAdds): an Add is not a model training, which is what Calls
// measures.
func (c *Counting) Prefix() PrefixEvaluator {
	ev := PrefixEvaluatorOf(c.inner)
	if ev == nil {
		return nil
	}
	return &countedPrefix{ev: ev, n: &c.prefixAdds}
}

// PrefixAdds returns the number of incremental prefix evaluations served
// through evaluators handed out by Prefix.
func (c *Counting) PrefixAdds() int64 { return c.prefixAdds.Load() }

// Prefix implements Prefixer by forwarding the inner game's capability.
// Incremental evaluations bypass the cache entirely — for games that
// support them, an Add is cheaper than a cache lookup, and the values it
// produces are bit-identical to Value's — so they appear in PrefixAdds
// rather than in the hit/miss statistics.
func (c *Cached) Prefix() PrefixEvaluator {
	ev := PrefixEvaluatorOf(c.inner)
	if ev == nil {
		return nil
	}
	return &countedPrefix{ev: ev, n: &c.store.prefixAdds}
}

// PrefixAdds returns the number of incremental prefix evaluations served
// past the cache (shared across NewCachedShared views of the same store).
func (c *Cached) PrefixAdds() int64 { return c.store.prefixAdds.Load() }

// restrictPrefix translates restricted player indices to the original
// numbering before delegating.
type restrictPrefix struct {
	ev   PrefixEvaluator
	keep []int
}

func (r *restrictPrefix) Reset()            { r.ev.Reset() }
func (r *restrictPrefix) Add(p int) float64 { return r.ev.Add(r.keep[p]) }

// Prefix implements Prefixer: a prefix of the restricted game is a prefix
// of the original game over the translated indices, so the inner
// evaluator serves it directly.
func (r *Restrict) Prefix() PrefixEvaluator {
	ev := PrefixEvaluatorOf(r.inner)
	if ev == nil {
		return nil
	}
	return &restrictPrefix{ev: ev, keep: r.keep}
}

// --- Closed-form games -----------------------------------------------------
//
// The evaluators below maintain the quantity each game's Value derives from
// the coalition (sum, count, maximum, size) under single-player joins. For
// Unanimity, Glove, Airport, and Symmetric the maintained quantity is exact
// (integer counts or order-independent maxima), so Add is bit-identical to
// Value unconditionally. Additive and WeightedVoting maintain a running
// float sum in JOIN order while Value sums in INDEX order; the two agree
// bit-for-bit whenever the additions are exact (e.g. integer-valued
// weights, the test suite's choice), and to FP re-association error
// otherwise.

type additivePrefix struct {
	weights []float64
	sum     float64
}

func (e *additivePrefix) Reset()            { e.sum = 0 }
func (e *additivePrefix) Add(p int) float64 { e.sum += e.weights[p]; return e.sum }

// Prefix implements Prefixer with an O(1)-per-Add running sum.
func (g Additive) Prefix() PrefixEvaluator {
	return &additivePrefix{weights: g.Weights}
}

type unanimityPrefix struct {
	carrier []bool
	need    int
	have    int
}

func (e *unanimityPrefix) Reset() { e.have = 0 }

func (e *unanimityPrefix) Add(p int) float64 {
	if e.carrier[p] {
		e.have++
	}
	if e.have == e.need {
		return 1
	}
	return 0
}

// Prefix implements Prefixer with an O(1)-per-Add carrier-membership count.
func (g Unanimity) Prefix() PrefixEvaluator {
	carrier := make([]bool, g.Players)
	for _, t := range g.Carrier {
		carrier[t] = true
	}
	return &unanimityPrefix{carrier: carrier, need: len(g.Carrier)}
}

type glovePrefix struct {
	side []int8 // 0 = neither, 1 = left, 2 = right
	l, r int
}

func (e *glovePrefix) Reset() { e.l, e.r = 0, 0 }

func (e *glovePrefix) Add(p int) float64 {
	switch e.side[p] {
	case 1:
		e.l++
	case 2:
		e.r++
	}
	if e.l < e.r {
		return float64(e.l)
	}
	return float64(e.r)
}

// Prefix implements Prefixer with O(1)-per-Add glove counts.
func (g Glove) Prefix() PrefixEvaluator {
	side := make([]int8, g.total)
	for _, i := range g.Left {
		side[i] = 1
	}
	for _, i := range g.Right {
		side[i] = 2
	}
	return &glovePrefix{side: side}
}

type airportPrefix struct {
	costs []float64
	max   float64
}

func (e *airportPrefix) Reset() { e.max = 0 }

func (e *airportPrefix) Add(p int) float64 {
	if e.costs[p] > e.max {
		e.max = e.costs[p]
	}
	return e.max
}

// Prefix implements Prefixer with an O(1)-per-Add running maximum.
func (g Airport) Prefix() PrefixEvaluator {
	return &airportPrefix{costs: g.Costs}
}

type votingPrefix struct {
	weights []float64
	quota   float64
	sum     float64
}

func (e *votingPrefix) Reset() { e.sum = 0 }

func (e *votingPrefix) Add(p int) float64 {
	e.sum += e.weights[p]
	if e.sum >= e.quota {
		return 1
	}
	return 0
}

// Prefix implements Prefixer with an O(1)-per-Add running weight.
func (g WeightedVoting) Prefix() PrefixEvaluator {
	return &votingPrefix{weights: g.Weights, quota: g.Quota}
}

type symmetricPrefix struct {
	f    func(size int) float64
	size int
}

func (e *symmetricPrefix) Reset() { e.size = 0 }

func (e *symmetricPrefix) Add(int) float64 {
	e.size++
	return e.f(e.size)
}

// Prefix implements Prefixer with an O(1)-per-Add size count.
func (g Symmetric) Prefix() PrefixEvaluator {
	return &symmetricPrefix{f: g.F}
}

type sumPrefix struct {
	a, b PrefixEvaluator
}

func (e *sumPrefix) Reset() { e.a.Reset(); e.b.Reset() }

func (e *sumPrefix) Add(p int) float64 { return e.a.Add(p) + e.b.Add(p) }

// Prefix implements Prefixer when BOTH addends support it.
func (g Sum) Prefix() PrefixEvaluator {
	a := PrefixEvaluatorOf(g.A)
	if a == nil {
		return nil
	}
	b := PrefixEvaluatorOf(g.B)
	if b == nil {
		return nil
	}
	return &sumPrefix{a: a, b: b}
}

// valuePrefix evaluates prefixes by scratch Value calls over a maintained
// bitset — the universal fallback. It is not handed out by any Prefixer
// (estimators already implement this walk themselves); it exists for
// callers that want a uniform PrefixEvaluator regardless of capability.
type valuePrefix struct {
	g Game
	s bitset.Set
}

func (e *valuePrefix) Reset() { e.s.Clear() }

func (e *valuePrefix) Add(p int) float64 {
	e.s.Add(p)
	return e.g.Value(e.s)
}

// ScratchPrefix returns a PrefixEvaluator that answers every Add with a
// scratch Value call. It is the reference implementation the property tests
// compare capability implementations against.
func ScratchPrefix(g Game) PrefixEvaluator {
	return &valuePrefix{g: g, s: bitset.New(g.N())}
}
