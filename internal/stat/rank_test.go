package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpearmanPerfectAgreement(t *testing.T) {
	xs := []float64{1, 5, 3, 9}
	ys := []float64{10, 50, 30, 90}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestSpearmanPerfectDisagreement(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{4, 3, 2, 1}
	if got := Spearman(xs, ys); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman = %v, want -1", got)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic textbook pairs: ranks of ys vs xs differ partially.
	xs := []float64{106, 86, 100, 101, 99, 103, 97, 113, 112, 110}
	ys := []float64{7, 0, 27, 50, 28, 29, 20, 12, 6, 17}
	// Known Spearman ρ ≈ −0.1758 for this example.
	if got := Spearman(xs, ys); math.Abs(got-(-0.17575757575757575)) > 1e-9 {
		t.Fatalf("Spearman = %v, want ≈-0.1758", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get average ranks: (1,1,2) vs (1,1,2) is still perfect.
	if got := Spearman([]float64{1, 1, 2}, []float64{5, 5, 9}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("tied Spearman = %v, want 1", got)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if Spearman([]float64{1}, []float64{2}) != 0 {
		t.Fatal("single pair should give 0")
	}
	if Spearman([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant sample should give 0")
	}
}

func TestSpearmanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Spearman([]float64{1}, []float64{1, 2})
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestQuickSpearmanMonotoneInvariant(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			ys[i] = float64(i%5) - float64(r)/3
		}
		base := Spearman(xs, ys)
		warped := make([]float64, len(xs))
		for i, x := range xs {
			warped[i] = x*x*x + 2*x // strictly increasing
		}
		return math.Abs(Spearman(warped, ys)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ranks are a permutation of average ranks summing to n(n+1)/2.
func TestQuickRanksSum(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		sum := 0.0
		for _, r := range ranks(xs) {
			sum += r
		}
		n := float64(len(xs))
		return math.Abs(sum-n*(n+1)/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
