package stat

import (
	"math"
	"sort"
)

// Spearman returns the Spearman rank-correlation coefficient between two
// paired samples, with average ranks for ties. Valuation practitioners care
// about it alongside MSE: data selection and compensation ordering depend
// only on the RANKS of the Shapley estimates, so an estimator with a worse
// MSE but better rank agreement can still be the better business choice.
// It returns 0 when either sample is constant (no ordering information).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stat: Spearman length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return pearson(rx, ry)
}

// ranks returns average ranks (1-based) with ties sharing their mean rank.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j share the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// pearson returns the Pearson correlation of two equal-length samples,
// or 0 when either is constant.
func pearson(xs, ys []float64) float64 {
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}
