package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "Mean")
	approx(t, Variance(xs), 32.0/7, 1e-12, "Variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "StdDev")
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestMSEAndMAE(t *testing.T) {
	est := []float64{1, 2, 3}
	tru := []float64{1, 1, 5}
	approx(t, MSE(est, tru), (0.0+1+4)/3, 1e-12, "MSE")
	approx(t, MAE(est, tru), (0.0+1+2)/3, 1e-12, "MAE")
}

func TestMSEPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MSE([]float64{1}, []float64{1, 2}) },
		func() { MSE(nil, nil) },
		func() { MAE([]float64{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHoeffdingSamples(t *testing.T) {
	// width=2, eps=0.1, delta=0.05: τ = 4·ln40/0.02 ≈ 737.8 → 738.
	got := HoeffdingSamples(2, 0.1, 0.05)
	want := int(math.Ceil(4 * math.Log(40) / 0.02))
	if got != want {
		t.Errorf("HoeffdingSamples = %d, want %d", got, want)
	}
	// Monotonicity: tighter eps needs more samples.
	if HoeffdingSamples(2, 0.05, 0.05) <= got {
		t.Error("smaller eps should need more samples")
	}
	if HoeffdingSamples(2, 0.1, 0.01) <= got {
		t.Error("smaller delta should need more samples")
	}
}

func TestTheoremSampleSizes(t *testing.T) {
	// Theorem 1: τ ≥ 2r² ln(2/δ)/ε².
	r, eps, delta := 0.5, 0.01, 0.05
	want := int(math.Ceil(2 * r * r * math.Log(2/delta) / (eps * eps)))
	if got := PivotSamples(r, eps, delta); got != want {
		t.Errorf("PivotSamples = %d, want %d", got, want)
	}
	// Theorem 2: τ ≥ 2n²d² ln(2/δ)/((n+1)²ε²) — strictly below Theorem 1's
	// bound whenever d < r (the delta-based advantage).
	n, d := 100, 0.1
	wantAdd := int(math.Ceil(2 * float64(n*n) * d * d * math.Log(2/delta) /
		(float64((n+1)*(n+1)) * eps * eps)))
	if got := DeltaAddSamples(n, d, eps, delta); got != wantAdd {
		t.Errorf("DeltaAddSamples = %d, want %d", got, wantAdd)
	}
	if DeltaAddSamples(n, d, eps, delta) >= PivotSamples(r, eps, delta) {
		t.Error("delta bound should beat pivot bound when d << r")
	}
	// Theorem 4: τ ≥ 2(n−1)²d² ln(2/δ)/(n²ε²).
	wantDel := int(math.Ceil(2 * float64((n-1)*(n-1)) * d * d * math.Log(2/delta) /
		(float64(n*n) * eps * eps)))
	if got := DeltaDeleteSamples(n, d, eps, delta); got != wantDel {
		t.Errorf("DeltaDeleteSamples = %d, want %d", got, wantDel)
	}
}

func TestLogGamma(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{10.5, 13.940625219403763}, // math.lgamma reference
	}
	for _, c := range cases {
		approx(t, LogGamma(c.x), c.want, 1e-10, "LogGamma")
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.9, 1} {
		approx(t, RegIncBeta(1, 1, x), x, 1e-10, "I_x(1,1)")
	}
	// I_x(2,2) = 3x² − 2x³.
	for _, x := range []float64{0.1, 0.5, 0.8} {
		approx(t, RegIncBeta(2, 2, x), 3*x*x-2*x*x*x, 1e-10, "I_x(2,2)")
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	approx(t, RegIncBeta(3.5, 1.25, 0.3), 1-RegIncBeta(1.25, 3.5, 0.7), 1e-10, "beta symmetry")
}

func TestWelchTTestKnownValue(t *testing.T) {
	// Classic example with clearly different means.
	x := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	y := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5}
	w, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Reference computed independently in Python (Welch formula + lgamma
	// incomplete beta): t≈−2.70778, df≈26.9527, p≈0.0116162.
	approx(t, w.T, -2.70778, 5e-5, "Welch t")
	approx(t, w.DF, 26.9527, 5e-4, "Welch df")
	approx(t, w.P, 0.0116162, 5e-6, "Welch p")
}

func TestStudentTLargeDFMatchesNormal(t *testing.T) {
	// For df → ∞ the Student-t tail converges to the normal tail:
	// P(T>1.959964) → 0.025. At df=1e6 they agree to ~1e-6.
	p := 2 * studentTSF(1.959964, 1e6)
	approx(t, p, 0.05, 1e-4, "two-sided p at z=1.96, df=1e6")
	// And the Cauchy case df=1 has closed form: P(T>t) = 1/2 − atan(t)/π.
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 0.5 - math.Atan(x)/math.Pi
		approx(t, studentTSF(x, 1), want, 1e-10, "Cauchy tail")
	}
}

func TestWelchTTestIdenticalSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	w, err := WelchTTest(x, x)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, w.T, 0, 1e-12, "t on identical samples")
	approx(t, w.P, 1, 1e-9, "p on identical samples")
}

func TestWelchTTestZeroVariance(t *testing.T) {
	w, err := WelchTTest([]float64{1, 1, 1}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.P != 0 {
		t.Errorf("p = %v for disjoint constants, want 0", w.P)
	}
	w, err = WelchTTest([]float64{3, 3}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.P != 1 {
		t.Errorf("p = %v for equal constants, want 1", w.P)
	}
}

func TestWelchTTestInsufficient(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err != ErrInsufficientData {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestPolyFitExact(t *testing.T) {
	// y = 2 − 3x + 0.5x² fitted through 5 points must be recovered exactly.
	xs := []float64{-2, -1, 0, 1, 2}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 - 3*x + 0.5*x*x
	}
	c, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, c[0], 2, 1e-9, "c0")
	approx(t, c[1], -3, 1e-9, "c1")
	approx(t, c[2], 0.5, 1e-9, "c2")
	approx(t, PolyEval(c, 3), 2-9+4.5, 1e-9, "PolyEval")
}

func TestPolyFitInsufficient(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 2); err != ErrInsufficientData {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestPolyFitSingular(t *testing.T) {
	// All x identical → Vandermonde rank 1 → singular for degree ≥ 1.
	if _, err := PolyFit([]float64{2, 2, 2}, []float64{1, 2, 3}, 1); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestExpDecayFit(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = -0.04 * math.Exp(-1.3*x) // negative branch, as for same-label ΔSV
	}
	a, l, err := ExpDecayFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a, -0.04, 1e-9, "amplitude")
	approx(t, l, 1.3, 1e-9, "lambda")
}

func TestExpDecayFitMixedSigns(t *testing.T) {
	if _, _, err := ExpDecayFit([]float64{0, 1, 2}, []float64{1, -1, 1}); err == nil {
		t.Error("mixed-sign fit should fail")
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	approx(t, RSquared(obs, obs), 1, 1e-12, "perfect fit R²")
	if RSquared([]float64{0, 0, 0, 0}, obs) >= 1 {
		t.Error("bad fit should have R² < 1")
	}
	if RSquared([]float64{1, 1}, []float64{2, 2}) != 0 {
		t.Error("constant observations give R² = 0 by convention")
	}
}

// Property: MSE is non-negative and zero iff slices match.
func TestQuickMSENonNegative(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		m := MSE(a[:n], b[:n])
		if m < 0 {
			return false
		}
		same := true
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				same = false
			}
		}
		return !same || m == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant and scales quadratically.
func TestQuickVarianceAffine(t *testing.T) {
	f := func(xs []float64, shiftRaw int8) bool {
		if len(xs) < 2 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e6 {
				return true // skip pathological magnitudes
			}
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
			scaled[i] = 2 * x
		}
		v := Variance(xs)
		tol := 1e-7 * (1 + v)
		return math.Abs(Variance(shifted)-v) < tol &&
			math.Abs(Variance(scaled)-4*v) < 4*tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: I_x(a,b) is monotone in x.
func TestQuickRegIncBetaMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint8, x1Raw, x2Raw uint16) bool {
		a := 0.5 + float64(aRaw%40)/4
		b := 0.5 + float64(bRaw%40)/4
		x1 := float64(x1Raw) / 65536
		x2 := float64(x2Raw) / 65536
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegIncBeta(a, b, x1) <= RegIncBeta(a, b, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
