package stat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a least-squares system is rank-deficient.
var ErrSingular = errors.New("stat: singular least-squares system")

// PolyFit fits a polynomial of the given degree to the points (xs, ys) by
// ordinary least squares and returns its coefficients c so that
//
//	y ≈ c[0] + c[1]·x + … + c[degree]·x^degree.
//
// It solves the normal equations with partially pivoted Gaussian elimination,
// which is ample for the low degrees (≤3) used by the KNN+ heuristic.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		panic("stat: PolyFit length mismatch")
	}
	if degree < 0 {
		panic("stat: PolyFit negative degree")
	}
	m := degree + 1
	if len(xs) < m {
		return nil, ErrInsufficientData
	}
	// Build the normal equations AᵀA c = Aᵀy with A the Vandermonde matrix.
	ata := make([][]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m+1)
	}
	pows := make([]float64, 2*m-1)
	for _, x := range xs {
		p := 1.0
		for k := range pows {
			pows[k] += p
			p *= x
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			ata[i][j] = pows[i+j]
		}
	}
	for k, x := range xs {
		p := 1.0
		for i := 0; i < m; i++ {
			ata[i][m] += p * ys[k]
			p *= x
		}
	}
	return solveAugmented(ata)
}

// solveAugmented solves the m×(m+1) augmented system in place.
func solveAugmented(a [][]float64) ([]float64, error) {
	m := len(a)
	for col := 0; col < m; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return nil, ErrSingular
		}
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		s := a[i][m]
		for j := i + 1; j < m; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// PolyEval evaluates the polynomial with coefficients c (as returned by
// PolyFit) at x using Horner's rule.
func PolyEval(c []float64, x float64) float64 {
	y := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}

// ExpDecayFit fits y ≈ a·exp(−λ·x) to the points, where all ys must share one
// sign, by linear regression of ln|y| on x. It returns (a, λ). This is the
// curve family the paper's Figure 2 motivates for KNN+: the magnitude of a
// Shapley value change decays with distance from the new point.
func ExpDecayFit(xs, ys []float64) (a, lambda float64, err error) {
	if len(xs) != len(ys) {
		panic("stat: ExpDecayFit length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	sgn := 0.0
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i, y := range ys {
		if y == 0 {
			continue
		}
		s := math.Copysign(1, y)
		if sgn == 0 {
			sgn = s
		} else if s != sgn {
			return 0, 0, errors.New("stat: ExpDecayFit requires single-signed ys")
		}
		lx = append(lx, xs[i])
		ly = append(ly, math.Log(math.Abs(y)))
	}
	if len(lx) < 2 {
		return 0, 0, ErrInsufficientData
	}
	c, err := PolyFit(lx, ly, 1)
	if err != nil {
		return 0, 0, err
	}
	return sgn * math.Exp(c[0]), -c[1], nil
}

// RSquared returns the coefficient of determination of predictions against
// observations, or 0 when the observations are constant.
func RSquared(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		panic("stat: RSquared length mismatch")
	}
	if len(obs) == 0 {
		return 0
	}
	m := Mean(obs)
	var ssRes, ssTot float64
	for i := range obs {
		ssRes += (obs[i] - pred[i]) * (obs[i] - pred[i])
		ssTot += (obs[i] - m) * (obs[i] - m)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
