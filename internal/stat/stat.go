// Package stat provides the statistical machinery used by the valuation
// engine and the experiment harness: descriptive statistics, mean-squared
// error, Hoeffding sample-size bounds (Theorems 1, 2 and 4 of the paper),
// Welch's t-test for the paper's MSE-difference p-values, and least-squares
// curve fitting for the KNN+ heuristic.
package stat

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs,
// or 0 when fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MSE returns the mean squared error between estimate and truth.
// It panics if the slices have different lengths or are empty.
func MSE(estimate, truth []float64) float64 {
	if len(estimate) != len(truth) {
		panic("stat: MSE length mismatch")
	}
	if len(estimate) == 0 {
		panic("stat: MSE of empty slices")
	}
	s := 0.0
	for i := range estimate {
		d := estimate[i] - truth[i]
		s += d * d
	}
	return s / float64(len(estimate))
}

// MAE returns the mean absolute error between estimate and truth.
func MAE(estimate, truth []float64) float64 {
	if len(estimate) != len(truth) {
		panic("stat: MAE length mismatch")
	}
	if len(estimate) == 0 {
		panic("stat: MAE of empty slices")
	}
	s := 0.0
	for i := range estimate {
		s += math.Abs(estimate[i] - truth[i])
	}
	return s / float64(len(estimate))
}

// HoeffdingSamples returns the number of i.i.d. samples of a random variable
// with range width `width` (= b−a) required so that the sample mean is within
// eps of the true mean with probability at least 1−delta:
//
//	τ ≥ width² · ln(2/δ) / (2 ε²)
//
// This is the bound behind Theorem 1 of the paper with width = 2r.
func HoeffdingSamples(width, eps, delta float64) int {
	if width <= 0 || eps <= 0 || delta <= 0 || delta >= 1 {
		panic("stat: HoeffdingSamples requires width>0, eps>0, 0<delta<1")
	}
	tau := width * width * math.Log(2/delta) / (2 * eps * eps)
	return int(math.Ceil(tau))
}

// PivotSamples returns Theorem 1's sample size for the pivot-based algorithm
// with marginal-contribution range [−r, r]: τ ≥ 2 r² ln(2/δ) / ε².
func PivotSamples(r, eps, delta float64) int {
	return HoeffdingSamples(2*r, eps, delta)
}

// DeltaAddSamples returns Theorem 2's sample size for the delta-based
// addition algorithm: τ ≥ 2 n² d² ln(2/δ) / ((n+1)² ε²), where d bounds the
// absolute differential marginal contribution and n is the original size.
func DeltaAddSamples(n int, d, eps, delta float64) int {
	if n <= 0 {
		panic("stat: DeltaAddSamples requires n>0")
	}
	scale := float64(n) / float64(n+1)
	return HoeffdingSamples(2*d*scale, eps, delta)
}

// DeltaDeleteSamples returns Theorem 4's sample size for the delta-based
// deletion algorithm: τ ≥ 2 (n−1)² d² ln(2/δ) / (n² ε²).
func DeltaDeleteSamples(n int, d, eps, delta float64) int {
	if n <= 1 {
		panic("stat: DeltaDeleteSamples requires n>1")
	}
	scale := float64(n-1) / float64(n)
	return HoeffdingSamples(2*d*scale, eps, delta)
}

// Welch holds the result of Welch's unequal-variance two-sample t-test.
type Welch struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// ErrInsufficientData is returned when a test needs more observations.
var ErrInsufficientData = errors.New("stat: insufficient data")

// WelchTTest performs Welch's two-sample t-test on xs and ys and returns the
// two-sided p-value. The paper reports such p-values for the differences
// between the MSEs of each algorithm and plain Monte Carlo.
func WelchTTest(xs, ys []float64) (Welch, error) {
	nx, ny := float64(len(xs)), float64(len(ys))
	if nx < 2 || ny < 2 {
		return Welch{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	sx, sy := vx/nx, vy/ny
	se := math.Sqrt(sx + sy)
	if se == 0 {
		if mx == my {
			return Welch{T: 0, DF: nx + ny - 2, P: 1}, nil
		}
		return Welch{T: math.Inf(sign(mx - my)), DF: nx + ny - 2, P: 0}, nil
	}
	t := (mx - my) / se
	df := (sx + sy) * (sx + sy) / (sx*sx/(nx-1) + sy*sy/(ny-1))
	p := 2 * studentTSF(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return Welch{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSF returns P(T > t) for T ~ Student-t with df degrees of freedom,
// t >= 0, via the regularised incomplete beta function.
func studentTSF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// LogGamma returns ln Γ(x) for x > 0 (Lanczos approximation, g=7, n=9).
func LogGamma(x float64) float64 {
	if x <= 0 {
		panic("stat: LogGamma requires x > 0")
	}
	var lanczos = [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection formula.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - LogGamma(1-x)
	}
	x--
	a := lanczos[0]
	t := x + 7.5
	for i := 1; i < len(lanczos); i++ {
		a += lanczos[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// RegIncBeta returns the regularised incomplete beta function I_x(a, b)
// evaluated by the continued-fraction expansion (Numerical Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := LogGamma(a+b) - LogGamma(a) - LogGamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
