package dataset

import (
	"testing"

	"dynshap/internal/rng"
)

func randomSets(seed uint64, m, n, dim int) (test, train *Dataset) {
	r := rng.New(seed)
	mk := func(count int) *Dataset {
		pts := make([]Point, count)
		for i := range pts {
			x := make([]float64, dim)
			for j := range x {
				x[j] = r.NormFloat64()
			}
			pts[i] = Point{X: x, Y: r.Intn(3)}
		}
		d := New(pts)
		d.Classes = 3
		return d
	}
	return mk(m), mk(n)
}

func checkKernel(t *testing.T, k *DistanceKernel, test, train *Dataset) {
	t.Helper()
	if k.Rows() != test.Len() || k.Cols() != train.Len() {
		t.Fatalf("kernel is %d×%d, want %d×%d", k.Rows(), k.Cols(), test.Len(), train.Len())
	}
	for i := range train.Points {
		col := k.Col(i)
		for j := range test.Points {
			want := Euclidean(test.Points[j].X, train.Points[i].X)
			if col[j] != want {
				t.Fatalf("Col(%d)[%d] = %v, want %v", i, j, col[j], want)
			}
			if got := k.At(i, j); got != want {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestDistanceKernelMatchesEuclidean(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		for _, shape := range [][2]int{{1, 1}, {7, 13}, {20, 50}, {33, 97}} {
			test, train := randomSets(11, shape[0], shape[1], 4)
			k := NewDistanceKernel(test, train, workers)
			checkKernel(t, k, test, train)
		}
	}
}

func TestDistanceKernelLargeParallelFill(t *testing.T) {
	// Big enough to cross the serial-fill threshold so the worker split runs.
	test, train := randomSets(5, 60, 600, 6)
	serial := NewDistanceKernel(test, train, 1)
	parallel := NewDistanceKernel(test, train, 4)
	for i := 0; i < train.Len(); i++ {
		for j := 0; j < test.Len(); j++ {
			if serial.At(i, j) != parallel.At(i, j) {
				t.Fatalf("fill differs at (%d,%d): serial %v parallel %v", i, j, serial.At(i, j), parallel.At(i, j))
			}
		}
	}
	checkKernel(t, parallel, test, train)
}

func TestDistanceKernelAppend(t *testing.T) {
	test, full := randomSets(7, 9, 24, 4)
	base := New(full.Points[:20])
	base.Classes = full.Classes
	k := NewDistanceKernel(test, base, 1)
	k2 := k.Append(full.Points[20:]...)
	checkKernel(t, k2, test, full)
	// The receiver is a still-valid view of the smaller set.
	checkKernel(t, k, test, base)
}

func TestDistanceKernelAppendGrowth(t *testing.T) {
	test, train := randomSets(13, 6, 5, 3)
	k := NewDistanceKernel(test, train, 1)
	cur := train
	for step := 0; step < 30; step++ {
		_, extra := randomSets(uint64(100+step), 0, 1, 3)
		cur = cur.Append(extra.Points...)
		k = k.Append(extra.Points...)
	}
	checkKernel(t, k, test, cur)
}

func TestDistanceKernelBatchAppendParallel(t *testing.T) {
	// A batched append big enough to cross the serial-fill gate must fill
	// its new columns in parallel yet stay bit-identical to the serial
	// append and to a fresh full build, at every worker count.
	test, full := randomSets(61, 80, 700, 6)
	base := New(full.Points[:200])
	base.Classes = full.Classes
	batch := full.Points[200:]
	want := NewDistanceKernel(test, full, 1)
	for _, workers := range []int{0, 1, 2, 4, 8} {
		k := NewDistanceKernel(test, base, workers).Append(batch...)
		if k.Rows() != want.Rows() || k.Cols() != want.Cols() {
			t.Fatalf("workers=%d: kernel is %d×%d, want %d×%d", workers, k.Rows(), k.Cols(), want.Rows(), want.Cols())
		}
		for i := 0; i < want.Cols(); i++ {
			for j := 0; j < want.Rows(); j++ {
				if k.At(i, j) != want.At(i, j) {
					t.Fatalf("workers=%d: At(%d,%d) = %v, want %v", workers, i, j, k.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestDistanceKernelBranchedAppend(t *testing.T) {
	test, train := randomSets(3, 8, 10, 4)
	_, extras := randomSets(99, 0, 3, 4)
	base := NewDistanceKernel(test, train, 1)

	// Two appends branch off the same base: the first claims spare capacity
	// in place, the second must reallocate. Both must read correctly, and
	// the base must be unaffected.
	k1 := base.Append(extras.Points[0])
	k2 := base.Append(extras.Points[1], extras.Points[2])
	checkKernel(t, k1, test, train.Append(extras.Points[0]))
	checkKernel(t, k2, test, train.Append(extras.Points[1], extras.Points[2]))
	checkKernel(t, base, test, train)

	// Chaining off a branch keeps working.
	k3 := k1.Append(extras.Points[2])
	checkKernel(t, k3, test, train.Append(extras.Points[0], extras.Points[2]))
}

func TestDistanceKernelRemove(t *testing.T) {
	test, train := randomSets(17, 10, 15, 4)
	k := NewDistanceKernel(test, train, 1)
	for _, gone := range [][]int{{0}, {14}, {3, 7, 11}, {0, 1, 2, 3, 4}} {
		kr := k.Remove(gone...)
		checkKernel(t, kr, test, train.Remove(gone...))
	}
	// Remove then append: appended columns slot in after the survivors.
	_, extra := randomSets(23, 0, 2, 4)
	kr := k.Remove(2, 5).Append(extra.Points...)
	checkKernel(t, kr, test, train.Remove(2, 5).Append(extra.Points...))
	checkKernel(t, k, test, train)
}

func TestDistanceKernelEmptySets(t *testing.T) {
	test, train := randomSets(29, 0, 4, 3)
	k := NewDistanceKernel(test, train, 2)
	if k.Rows() != 0 || k.Cols() != 4 {
		t.Fatalf("empty-test kernel is %d×%d, want 0×4", k.Rows(), k.Cols())
	}
	_, extra := randomSets(31, 0, 1, 3)
	k = k.Append(extra.Points...).Remove(0, 2)
	if k.Cols() != 3 {
		t.Fatalf("after append+remove Cols = %d, want 3", k.Cols())
	}

	testOnly, empty := randomSets(37, 5, 0, 3)
	k2 := NewDistanceKernel(testOnly, empty, 2)
	if k2.Cols() != 0 {
		t.Fatalf("empty-train kernel has %d cols", k2.Cols())
	}
	_, one := randomSets(41, 0, 1, 3)
	k2 = k2.Append(one.Points...)
	checkKernel(t, k2, testOnly, empty.Append(one.Points...))
}

func TestDistanceKernelMemoryBytes(t *testing.T) {
	test, train := randomSets(43, 12, 30, 4)
	k := NewDistanceKernel(test, train, 1)
	if got := k.MemoryBytes(); got < int64(12*30*8) {
		t.Fatalf("MemoryBytes = %d, want at least %d for the 12×30 matrix", got, 12*30*8)
	}
	// Masking frees nothing: the physical buffer stays shared.
	if kr := k.Remove(0, 1, 2); kr.MemoryBytes() >= k.MemoryBytes() {
		// Only the 4-byte cols entries shrink; the float buffer is intact.
		t.Fatalf("Remove changed the float buffer footprint: %d -> %d", k.MemoryBytes(), kr.MemoryBytes())
	}
}

func TestNearestWithMatchesNearest(t *testing.T) {
	_, train := randomSets(47, 0, 40, 4)
	// Duplicate a few points so distance ties exercise the index tiebreak.
	train = train.Append(train.Points[3], train.Points[17], train.Points[3])
	queries, _ := randomSets(53, 10, 0, 4)
	var s NearestScratch
	for _, q := range queries.Points {
		for _, k := range []int{0, 1, 3, 5, 40, 100} {
			want := train.Nearest(q.X, k)
			got := train.NearestWith(&s, q.X, k)
			if len(want) != len(got) {
				t.Fatalf("k=%d: len %d vs %d", k, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("k=%d: index %d differs: %d vs %d", k, i, got[i], want[i])
				}
			}
		}
	}
}
