package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV parser never panics and that everything it
// accepts survives a write/read round trip. Run with `go test -fuzz
// FuzzReadCSV ./internal/dataset` for coverage-guided exploration; the
// seeds below run as regular tests.
func FuzzReadCSV(f *testing.F) {
	f.Add("1.0,2.0,0\n3.5,-1,1\n")
	f.Add("")
	f.Add("1,2\n")
	f.Add("a,b,c\n")
	f.Add("1,2,0\n1,2,3,0\n")
	f.Add("0.5,-0,2\n")
	f.Add("nan,1,0\n")
	f.Add("1e308,1e308,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialise: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != d.Len() {
			t.Fatalf("round trip changed size %d → %d", d.Len(), back.Len())
		}
	})
}
