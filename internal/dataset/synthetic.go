package dataset

import "dynshap/internal/rng"

// The paper evaluates on UCI Iris (150×4, 3 classes) and UCI Adult (sampled
// to 10 000 points, 3 features, binary label). This module is offline, so we
// generate synthetic datasets matching those datasets' published class
// structure and feature statistics. Every Shapley-maintenance algorithm
// under test treats the utility as a black box, so only the coarse
// statistics (dimensionality, separability, class balance, accuracy range of
// the trained model) matter to the experimental shape; see DESIGN.md §4.

// gaussianClass draws count points of class label around the given per-
// feature means with the given per-feature standard deviations.
func gaussianClass(r *rng.Source, count, label int, means, stds []float64) []Point {
	pts := make([]Point, count)
	for i := range pts {
		x := make([]float64, len(means))
		for j := range x {
			x[j] = means[j] + stds[j]*r.NormFloat64()
		}
		pts[i] = Point{X: x, Y: label}
	}
	return pts
}

// IrisLike generates an Iris-style dataset: total points split evenly over 3
// classes with 4 features (sepal length/width, petal length/width) whose
// per-class means and spreads follow the published Iris statistics. Class 0
// (setosa) is linearly separable from the others; classes 1 and 2
// (versicolor/virginica) overlap, so model accuracy on subsets is noisy —
// the regime the paper's MSE experiments live in.
func IrisLike(r *rng.Source, total int) *Dataset {
	per := total / 3
	rem := total - 2*per
	classes := []struct {
		means, stds []float64
		count       int
	}{
		{[]float64{5.01, 3.43, 1.46, 0.25}, []float64{0.35, 0.38, 0.17, 0.11}, per},
		{[]float64{5.94, 2.77, 4.26, 1.33}, []float64{0.52, 0.31, 0.47, 0.20}, per},
		{[]float64{6.59, 2.97, 5.55, 2.03}, []float64{0.64, 0.32, 0.55, 0.27}, rem},
	}
	var pts []Point
	for label, c := range classes {
		pts = append(pts, gaussianClass(r, c.count, label, c.means, c.stds)...)
	}
	d := New(pts)
	d.Classes = 3
	d.Shuffle(r)
	return d
}

// AdultLike generates an Adult-census-style binary classification dataset
// with 3 numeric features (age, education-num, hours-per-week), ~24% positive
// class (income >50K), weakly informative features, and label noise — the
// configuration of the paper's large-dataset experiment (§VII-G). A linear
// model reaches roughly 0.76–0.85 accuracy, as on the real Adult data.
func AdultLike(r *rng.Source, total int) *Dataset {
	pts := make([]Point, total)
	for i := range pts {
		pos := r.Float64() < 0.24
		var age, edu, hours float64
		if pos {
			age = clamp(44+10.5*r.NormFloat64(), 17, 90)
			edu = clamp(11.6+2.4*r.NormFloat64(), 1, 16)
			hours = clamp(45.5+11*r.NormFloat64(), 1, 99)
		} else {
			age = clamp(36.8+14*r.NormFloat64(), 17, 90)
			edu = clamp(9.6+2.4*r.NormFloat64(), 1, 16)
			hours = clamp(38.8+12.3*r.NormFloat64(), 1, 99)
		}
		y := 0
		if pos {
			y = 1
		}
		// 5% label noise keeps per-subset utilities from saturating.
		if r.Float64() < 0.05 {
			y = 1 - y
		}
		pts[i] = Point{X: []float64{age, edu, hours}, Y: y}
	}
	d := New(pts)
	d.Classes = 2
	return d
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// TwoGaussians generates a simple two-class d-dimensional benchmark with the
// class means separated by `sep` standard deviations — convenient for unit
// tests that need a dataset with a controllable difficulty.
func TwoGaussians(r *rng.Source, total, dim int, sep float64) *Dataset {
	m0 := make([]float64, dim)
	m1 := make([]float64, dim)
	s := make([]float64, dim)
	for j := 0; j < dim; j++ {
		m1[j] = sep / float64(dim)
		s[j] = 1
	}
	per := total / 2
	pts := append(gaussianClass(r, per, 0, m0, s), gaussianClass(r, total-per, 1, m1, s)...)
	d := New(pts)
	d.Classes = 2
	d.Shuffle(r)
	return d
}
