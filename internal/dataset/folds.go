package dataset

import (
	"fmt"
	"math"

	"dynshap/internal/rng"
)

// KFold partitions the dataset into k folds and returns, for each fold, the
// training set (the other folds) and the test set (the fold itself). The
// dataset is shuffled with r first (pass nil to keep order). Valuation
// users cross-validate the utility definition this way before committing to
// an expensive Shapley run.
func (d *Dataset) KFold(k int, r *rng.Source) ([]*Dataset, []*Dataset, error) {
	n := d.Len()
	if k < 2 || k > n {
		return nil, nil, fmt.Errorf("dataset: KFold needs 2 ≤ k ≤ n, got k=%d n=%d", k, n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if r != nil {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	trains := make([]*Dataset, k)
	tests := make([]*Dataset, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		testIdx := order[lo:hi]
		trainIdx := make([]int, 0, n-(hi-lo))
		trainIdx = append(trainIdx, order[:lo]...)
		trainIdx = append(trainIdx, order[hi:]...)
		trains[f] = d.Subset(trainIdx)
		tests[f] = d.Subset(testIdx)
	}
	return trains, tests, nil
}

// Manhattan returns the L1 distance between feature vectors.
func Manhattan(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dataset: Manhattan dimension mismatch")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Cosine returns the cosine distance 1 − cos(a, b) ∈ [0, 2]. Zero vectors
// are at distance 1 from everything (no direction information).
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dataset: Cosine dimension mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
}

// ClassCounts returns how many points carry each label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, p := range d.Points {
		counts[p.Y]++
	}
	return counts
}
