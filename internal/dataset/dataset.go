// Package dataset provides the tabular-data substrate for data valuation:
// in-memory datasets of labelled feature vectors, CSV input/output,
// standardisation, train/test splitting, distance metrics, and synthetic
// generators that stand in for the UCI Iris and Adult datasets used by the
// paper (the module is offline; see DESIGN.md §4 for the substitution
// rationale).
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"dynshap/internal/rng"
)

// Point is one labelled observation.
type Point struct {
	X []float64 // feature vector
	Y int       // class label, 0-based
}

// Clone returns a deep copy of the point.
func (p Point) Clone() Point {
	return Point{X: append([]float64(nil), p.X...), Y: p.Y}
}

// Dataset is an ordered collection of points sharing a feature schema.
type Dataset struct {
	Points  []Point
	Classes int // number of distinct labels (labels are 0..Classes-1)
}

// New returns a dataset over the given points. Classes is inferred as
// max(label)+1.
func New(points []Point) *Dataset {
	classes := 0
	for _, p := range points {
		if p.Y+1 > classes {
			classes = p.Y + 1
		}
	}
	return &Dataset{Points: points, Classes: classes}
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.Points) }

// Dim returns the feature dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0].X)
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	pts := make([]Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = p.Clone()
	}
	return &Dataset{Points: pts, Classes: d.Classes}
}

// View returns a structurally independent copy of the dataset: a fresh
// Points slice sharing the points' feature storage with the receiver.
// Appending to or reordering the view never affects the receiver, but
// mutating a point's X in place would — the right derivation for
// read-only consumers on hot paths (see Append's immutability argument).
func (d *Dataset) View() *Dataset {
	pts := make([]Point, len(d.Points))
	copy(pts, d.Points)
	return &Dataset{Points: pts, Classes: d.Classes}
}

// Subset returns a new dataset holding clones of the points at the given
// indices, in the given order.
func (d *Dataset) Subset(indices []int) *Dataset {
	pts := make([]Point, len(indices))
	for k, i := range indices {
		pts[k] = d.Points[i].Clone()
	}
	return &Dataset{Points: pts, Classes: d.Classes}
}

// Append returns a new dataset with the given points appended. The
// receiver is not modified. The surviving points' feature vectors are
// SHARED with the receiver — derived datasets follow the library's
// immutable-state discipline (no code path mutates a published point's X
// in place; Shuffle only swaps whole Point structs and Standardize is
// called on freshly generated data before any derivation), so deep-
// cloning n vectors for an O(k)-sized update would be pure allocation
// overhead on the hottest write path. The appended points themselves ARE
// cloned: the caller may own and reuse their storage. Callers that
// intend to mutate features must Clone first.
func (d *Dataset) Append(points ...Point) *Dataset {
	pts := make([]Point, len(d.Points), len(d.Points)+len(points))
	copy(pts, d.Points)
	nd := &Dataset{Points: pts, Classes: d.Classes}
	for _, p := range points {
		nd.Points = append(nd.Points, p.Clone())
		if p.Y+1 > nd.Classes {
			nd.Classes = p.Y + 1
		}
	}
	return nd
}

// Remove returns a new dataset without the points at the given indices.
// Like Append, the survivors' feature vectors are shared with the
// receiver, not cloned.
func (d *Dataset) Remove(indices ...int) *Dataset {
	gone := make(map[int]bool, len(indices))
	for _, i := range indices {
		gone[i] = true
	}
	pts := make([]Point, 0, len(d.Points)-len(gone))
	for i, p := range d.Points {
		if !gone[i] {
			pts = append(pts, p)
		}
	}
	return &Dataset{Points: pts, Classes: d.Classes}
}

// Shuffle permutes the points in place using r.
func (d *Dataset) Shuffle(r *rng.Source) {
	r.Shuffle(len(d.Points), func(i, j int) {
		d.Points[i], d.Points[j] = d.Points[j], d.Points[i]
	})
}

// Split partitions the dataset into a training set of trainFrac·Len()
// points and a test set of the remainder, preserving order. Use Shuffle
// first for a random split.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	if trainFrac < 0 || trainFrac > 1 {
		panic("dataset: Split fraction out of [0,1]")
	}
	cut := int(math.Round(trainFrac * float64(len(d.Points))))
	trainIdx := make([]int, cut)
	testIdx := make([]int, len(d.Points)-cut)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	for i := range testIdx {
		testIdx[i] = cut + i
	}
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// Standardize rescales every feature to zero mean and unit variance in
// place, returning the per-feature means and standard deviations so the same
// affine map can be applied to future points (ApplyStandardize).
// Zero-variance features are left centred with scale 1.
func (d *Dataset) Standardize() (means, stds []float64) {
	dim := d.Dim()
	means = make([]float64, dim)
	stds = make([]float64, dim)
	n := float64(len(d.Points))
	if n == 0 {
		for j := range stds {
			stds[j] = 1
		}
		return means, stds
	}
	for _, p := range d.Points {
		for j, x := range p.X {
			means[j] += x
		}
	}
	for j := range means {
		means[j] /= n
	}
	for _, p := range d.Points {
		for j, x := range p.X {
			dx := x - means[j]
			stds[j] += dx * dx
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / n)
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	for i := range d.Points {
		ApplyStandardize(d.Points[i].X, means, stds)
	}
	return means, stds
}

// ApplyStandardize rescales x in place with the given means and stds.
func ApplyStandardize(x, means, stds []float64) {
	for j := range x {
		x[j] = (x[j] - means[j]) / stds[j]
	}
}

// Euclidean returns the Euclidean distance between feature vectors a and b.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dataset: Euclidean dimension mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Nearest returns the indices of the k points in d whose feature vectors are
// closest to x in Euclidean distance, in increasing distance order.
// If k exceeds the dataset size, all indices are returned.
func (d *Dataset) Nearest(x []float64, k int) []int {
	var s NearestScratch
	got := d.NearestWith(&s, x, k)
	if got == nil {
		return nil
	}
	return append([]int(nil), got...)
}

// NearestScratch holds the candidate window NearestWith selects into, so
// repeated queries reuse one allocation. A scratch belongs to one caller
// at a time; its zero value is ready to use.
type NearestScratch struct {
	dists []float64
	idxs  []int
}

// NearestWith is Nearest with a caller-owned scratch window. The returned
// slice aliases the scratch and is valid only until the next call with the
// same scratch; callers that keep the result must copy it (Nearest does).
// Selection is identical to Nearest: a sorted k-window where only a
// strictly smaller distance displaces the current worst, so among equal
// distances the earlier-scanned (smaller) index wins.
func (d *Dataset) NearestWith(s *NearestScratch, x []float64, k int) []int {
	if k > len(d.Points) {
		k = len(d.Points)
	}
	if k <= 0 {
		return nil
	}
	// Simple selection keeping a sorted window of size k; datasets in this
	// library are small enough that a k-window scan beats heap overhead.
	if cap(s.dists) < k {
		s.dists = make([]float64, k)
		s.idxs = make([]int, k)
	}
	dists, idxs := s.dists[:k], s.idxs[:k]
	size := 0
	for i, p := range d.Points {
		dist := Euclidean(x, p.X)
		if size == k && dist >= dists[size-1] {
			continue
		}
		pos := size
		if size < k {
			size++
		} else {
			pos = k - 1
		}
		for pos > 0 && dists[pos-1] > dist {
			dists[pos] = dists[pos-1]
			idxs[pos] = idxs[pos-1]
			pos--
		}
		dists[pos] = dist
		idxs[pos] = i
	}
	return idxs[:size]
}

// ErrBadCSV reports a malformed CSV row.
var ErrBadCSV = errors.New("dataset: malformed CSV")

// ReadCSV parses a headerless CSV stream where every row is
// feature_1, …, feature_d, label (label integral). It allows dropping in the
// real UCI files in place of the synthetic generators.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var pts []Point
	dim := -1
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("%w: line %d has %d fields, need ≥2", ErrBadCSV, line, len(rec))
		}
		if dim == -1 {
			dim = len(rec) - 1
		} else if len(rec)-1 != dim {
			return nil, fmt.Errorf("%w: line %d has %d features, want %d", ErrBadCSV, line, len(rec)-1, dim)
		}
		x := make([]float64, dim)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d field %d: %v", ErrBadCSV, line, j+1, err)
			}
			x[j] = v
		}
		y, err := strconv.Atoi(rec[dim])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d label: %v", ErrBadCSV, line, err)
		}
		if y < 0 {
			return nil, fmt.Errorf("%w: line %d negative label %d", ErrBadCSV, line, y)
		}
		pts = append(pts, Point{X: x, Y: y})
	}
	return New(pts), nil
}

// LoadCSV reads a dataset from the file at path (see ReadCSV).
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV writes the dataset in the format ReadCSV accepts.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rec := make([]string, d.Dim()+1)
	for _, p := range d.Points {
		for j, x := range p.X {
			rec[j] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		rec[d.Dim()] = strconv.Itoa(p.Y)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to the file at path (see WriteCSV).
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
