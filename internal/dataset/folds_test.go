package dataset

import (
	"math"
	"testing"

	"dynshap/internal/rng"
)

func TestKFoldPartitions(t *testing.T) {
	d := IrisLike(rng.New(41), 30)
	trains, tests, err := d.KFold(5, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(trains) != 5 || len(tests) != 5 {
		t.Fatalf("fold counts %d/%d", len(trains), len(tests))
	}
	totalTest := 0
	for f := range trains {
		if trains[f].Len()+tests[f].Len() != 30 {
			t.Fatalf("fold %d sizes %d+%d != 30", f, trains[f].Len(), tests[f].Len())
		}
		totalTest += tests[f].Len()
	}
	if totalTest != 30 {
		t.Fatalf("test folds cover %d points, want 30", totalTest)
	}
}

func TestKFoldUnevenSizes(t *testing.T) {
	d := IrisLike(rng.New(43), 10)
	_, tests, err := d.KFold(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 10 into 3 folds: sizes 3, 4, 3 (floor boundaries).
	sizes := []int{tests[0].Len(), tests[1].Len(), tests[2].Len()}
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatalf("fold sizes %v", sizes)
	}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Fatalf("unbalanced folds %v", sizes)
		}
	}
}

func TestKFoldValidation(t *testing.T) {
	d := IrisLike(rng.New(44), 5)
	if _, _, err := d.KFold(1, nil); err == nil {
		t.Error("k=1 should fail")
	}
	if _, _, err := d.KFold(6, nil); err == nil {
		t.Error("k>n should fail")
	}
}

func TestKFoldNoOverlap(t *testing.T) {
	// Without shuffling, fold f's test rows must be absent from its train.
	d := IrisLike(rng.New(45), 12)
	trains, tests, err := d.KFold(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := func(p Point) [4]float64 {
		var k [4]float64
		copy(k[:], p.X)
		return k
	}
	for f := range trains {
		inTest := map[[4]float64]bool{}
		for _, p := range tests[f].Points {
			inTest[key(p)] = true
		}
		for _, p := range trains[f].Points {
			if inTest[key(p)] {
				t.Fatalf("fold %d train/test overlap", f)
			}
		}
	}
}

func TestManhattan(t *testing.T) {
	if got := Manhattan([]float64{1, -2}, []float64{4, 2}); got != 7 {
		t.Fatalf("Manhattan = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	Manhattan([]float64{1}, []float64{1, 2})
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{2, 0}); math.Abs(got) > 1e-12 {
		t.Fatalf("parallel vectors distance = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("orthogonal vectors distance = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{-1, 0}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("opposite vectors distance = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 2}); got != 1 {
		t.Fatalf("zero vector distance = %v", got)
	}
}

func TestClassCounts(t *testing.T) {
	d := New([]Point{
		{X: []float64{0}, Y: 0},
		{X: []float64{0}, Y: 2},
		{X: []float64{0}, Y: 2},
	})
	counts := d.ClassCounts()
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 2 {
		t.Fatalf("ClassCounts = %v", counts)
	}
}
