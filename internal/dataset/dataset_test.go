package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"dynshap/internal/rng"
)

func sample() *Dataset {
	return New([]Point{
		{X: []float64{1, 2}, Y: 0},
		{X: []float64{3, 4}, Y: 1},
		{X: []float64{5, 6}, Y: 2},
		{X: []float64{7, 8}, Y: 1},
	})
}

func TestNewInfersClasses(t *testing.T) {
	d := sample()
	if d.Classes != 3 {
		t.Fatalf("Classes = %d, want 3", d.Classes)
	}
	if d.Len() != 4 || d.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", d.Len(), d.Dim())
	}
	empty := New(nil)
	if empty.Len() != 0 || empty.Dim() != 0 || empty.Classes != 0 {
		t.Fatal("empty dataset misreported")
	}
}

func TestCloneDeep(t *testing.T) {
	d := sample()
	c := d.Clone()
	c.Points[0].X[0] = 99
	c.Points[0].Y = 9
	if d.Points[0].X[0] == 99 || d.Points[0].Y == 9 {
		t.Fatal("Clone shares storage")
	}
}

func TestSubset(t *testing.T) {
	d := sample()
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Points[0].X[0] != 5 || s.Points[1].X[0] != 1 {
		t.Fatalf("Subset wrong: %+v", s.Points)
	}
	s.Points[0].X[0] = -1
	if d.Points[2].X[0] == -1 {
		t.Fatal("Subset shares storage")
	}
}

func TestAppendAndRemove(t *testing.T) {
	d := sample()
	bigger := d.Append(Point{X: []float64{9, 10}, Y: 3})
	if d.Len() != 4 {
		t.Fatal("Append mutated receiver")
	}
	if bigger.Len() != 5 || bigger.Classes != 4 {
		t.Fatalf("Append result Len=%d Classes=%d", bigger.Len(), bigger.Classes)
	}
	smaller := d.Remove(1, 3)
	if smaller.Len() != 2 || smaller.Points[0].Y != 0 || smaller.Points[1].Y != 2 {
		t.Fatalf("Remove wrong: %+v", smaller.Points)
	}
	if d.Len() != 4 {
		t.Fatal("Remove mutated receiver")
	}
}

func TestSplit(t *testing.T) {
	d := sample()
	train, test := d.Split(0.75)
	if train.Len() != 3 || test.Len() != 1 {
		t.Fatalf("Split sizes %d/%d", train.Len(), test.Len())
	}
	if test.Points[0].X[0] != 7 {
		t.Fatal("Split did not preserve order")
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(1.5) did not panic")
		}
	}()
	sample().Split(1.5)
}

func TestStandardize(t *testing.T) {
	d := New([]Point{
		{X: []float64{1, 5}, Y: 0},
		{X: []float64{3, 5}, Y: 0},
	})
	means, stds := d.Standardize()
	if means[0] != 2 || stds[0] != 1 {
		t.Fatalf("means/stds = %v/%v", means, stds)
	}
	if stds[1] != 1 {
		t.Fatal("zero-variance feature should keep scale 1")
	}
	if d.Points[0].X[0] != -1 || d.Points[1].X[0] != 1 {
		t.Fatalf("standardised values: %+v", d.Points)
	}
	if d.Points[0].X[1] != 0 {
		t.Fatal("constant feature should centre to 0")
	}
	// ApplyStandardize maps a future point with the same affine transform.
	x := []float64{2, 5}
	ApplyStandardize(x, means, stds)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("ApplyStandardize = %v", x)
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 3}, []float64{4, 0}); got != 5 {
		t.Fatalf("Euclidean = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestNearest(t *testing.T) {
	d := New([]Point{
		{X: []float64{0, 0}, Y: 0},
		{X: []float64{1, 0}, Y: 0},
		{X: []float64{5, 5}, Y: 1},
		{X: []float64{0.4, 0}, Y: 0},
	})
	got := d.Nearest([]float64{0, 0}, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("Nearest = %v, want [0 3]", got)
	}
	if got := d.Nearest([]float64{0, 0}, 10); len(got) != 4 {
		t.Fatalf("Nearest with k>n returned %d", len(got))
	}
	if got := d.Nearest([]float64{0, 0}, 0); got != nil {
		t.Fatalf("Nearest with k=0 returned %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Classes != d.Classes {
		t.Fatalf("round trip Len=%d Classes=%d", back.Len(), back.Classes)
	}
	for i := range d.Points {
		if back.Points[i].Y != d.Points[i].Y {
			t.Fatalf("label %d changed", i)
		}
		for j := range d.Points[i].X {
			if back.Points[i].X[j] != d.Points[i].X[j] {
				t.Fatalf("feature (%d,%d) changed", i, j)
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	d := sample()
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := d.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("Len = %d", back.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"1.0\n",            // too few fields
		"1.0,2.0,x\n",      // bad label
		"a,2.0,1\n",        // bad feature
		"1,2,0\n1,2,3,0\n", // inconsistent dims
		"1.0,2.0,-1\n",     // negative label
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
}

func TestLoadCSVMissingFile(t *testing.T) {
	if _, err := LoadCSV("/nonexistent/x.csv"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestIrisLike(t *testing.T) {
	d := IrisLike(rng.New(1), 150)
	if d.Len() != 150 || d.Dim() != 4 || d.Classes != 3 {
		t.Fatalf("IrisLike shape: Len=%d Dim=%d Classes=%d", d.Len(), d.Dim(), d.Classes)
	}
	counts := make([]int, 3)
	for _, p := range d.Points {
		counts[p.Y]++
	}
	for c, cnt := range counts {
		if cnt != 50 {
			t.Errorf("class %d count = %d, want 50", c, cnt)
		}
	}
	// Setosa (class 0) should have clearly smaller petal length (feature 2).
	var m0, m12 float64
	for _, p := range d.Points {
		if p.Y == 0 {
			m0 += p.X[2] / 50
		} else {
			m12 += p.X[2] / 100
		}
	}
	if m0 >= m12-1 {
		t.Errorf("class separation lost: setosa petal %.2f vs others %.2f", m0, m12)
	}
}

func TestAdultLike(t *testing.T) {
	d := AdultLike(rng.New(2), 5000)
	if d.Len() != 5000 || d.Dim() != 3 || d.Classes != 2 {
		t.Fatalf("AdultLike shape: Len=%d Dim=%d Classes=%d", d.Len(), d.Dim(), d.Classes)
	}
	pos := 0
	for _, p := range d.Points {
		pos += p.Y
		if p.X[0] < 17 || p.X[0] > 90 {
			t.Fatalf("age out of range: %v", p.X[0])
		}
	}
	frac := float64(pos) / 5000
	if frac < 0.18 || frac < 0 || frac > 0.34 {
		t.Errorf("positive fraction = %.3f, want ≈0.24±0.10", frac)
	}
}

func TestTwoGaussians(t *testing.T) {
	d := TwoGaussians(rng.New(3), 200, 5, 4)
	if d.Len() != 200 || d.Dim() != 5 || d.Classes != 2 {
		t.Fatalf("TwoGaussians shape wrong")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	d1 := sample()
	d2 := sample()
	d1.Shuffle(rng.New(7))
	d2.Shuffle(rng.New(7))
	for i := range d1.Points {
		if d1.Points[i].X[0] != d2.Points[i].X[0] {
			t.Fatal("same-seed shuffles differ")
		}
	}
}

// Property: standardisation yields per-feature mean ≈ 0 and variance ≈ 1
// for any dataset with ≥2 distinct rows.
func TestQuickStandardize(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 6 {
			return true
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{X: []float64{float64(raw[i]), float64(raw[i+1])}, Y: 0})
		}
		d := New(pts)
		d.Standardize()
		n := float64(d.Len())
		for j := 0; j < 2; j++ {
			var mean, varr float64
			for _, p := range d.Points {
				mean += p.X[j]
			}
			mean /= n
			for _, p := range d.Points {
				varr += (p.X[j] - mean) * (p.X[j] - mean)
			}
			varr /= n
			if math.Abs(mean) > 1e-9 {
				return false
			}
			if varr != 0 && math.Abs(varr-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Nearest returns indices sorted by distance.
func TestQuickNearestSorted(t *testing.T) {
	f := func(raw []int8, kRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{X: []float64{float64(raw[i]), float64(raw[i+1])}, Y: 0})
		}
		d := New(pts)
		k := 1 + int(kRaw)%d.Len()
		q := []float64{0, 0}
		got := d.Nearest(q, k)
		if len(got) != k {
			return false
		}
		prev := -1.0
		for _, idx := range got {
			dist := Euclidean(q, d.Points[idx].X)
			if dist < prev {
				return false
			}
			prev = dist
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
