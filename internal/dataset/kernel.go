package dataset

import (
	"runtime"
	"sync"
)

// DistanceKernel is the precomputed m×n matrix of Euclidean distances
// between a fixed test set (m rows, one per test point) and a training set
// (n columns, one per training point). Every entry is exactly
// Euclidean(test[j].X, train[i].X) — the same call, in the same argument
// order, as the scratch evaluation path — so evaluators reading the kernel
// produce bit-identical results to ones recomputing distances on demand.
//
// Storage is train-point-major: the distances from training point i to all
// m test points occupy one contiguous m-float block. That orientation
// serves both hot paths at once — knnPrefix.Add walks a fixed training
// point across every test point (a unit-stride read of one block), and
// appending a training point writes exactly one new block, O(m), without
// touching existing columns. A cols indirection maps logical training
// indices to physical blocks so Remove is pure masking: drop entries from
// cols, never move a float.
//
// Kernels are persistent values in the same sense as Dataset: Append and
// Remove return new views and never mutate columns the receiver exposes.
// Views derived from a common ancestor share the physical buffer; a
// claim counter (kernelShare) arbitrates which Append may fill trailing
// spare capacity in place and which must reallocate, so branched derived
// utilities (a pivot's N⁺ built alongside the base, say) stay safe.
type DistanceKernel struct {
	m    int      // test rows per column
	test *Dataset // referenced, not cloned: distances for appended columns come from it
	cols []int32  // logical training index -> physical column
	data []float64
	phys int // physical columns this view may read (prefix of data)
	// workers is the fill parallelism Appends inherit from construction
	// (≤0 means GOMAXPROCS); batched appends split their new columns
	// across this many goroutines exactly as the initial fill does.
	workers int

	share *kernelShare
}

// kernelShare tracks, per physical buffer, how many columns any view has
// claimed. An Append extends in place only when its view's phys equals the
// claimed count (it is the frontier view) and spare capacity remains;
// otherwise it reallocates. Claimed columns are written exactly once,
// before the new view escapes, so concurrent readers of sibling views
// never observe a partially filled column they can reach.
type kernelShare struct {
	mu      sync.Mutex
	claimed int
}

// NewDistanceKernel builds the full m×n kernel for the given test and
// training sets. The fill is embarrassingly parallel — each worker computes
// a contiguous block of columns — and therefore bit-identical at any worker
// count: every entry is one independent Euclidean call whose result does
// not depend on fill order. workers ≤ 0 means GOMAXPROCS. The kernel keeps
// a reference to test (callers hand it an already-private clone) so that
// appended columns use the exact same feature vectors.
func NewDistanceKernel(test, train *Dataset, workers int) *DistanceKernel {
	m, n := test.Len(), train.Len()
	capCols := n + n/4 + 4 // spare columns so early Appends skip reallocation
	k := &DistanceKernel{
		m:       m,
		test:    test,
		cols:    make([]int32, n),
		data:    make([]float64, capCols*m),
		phys:    n,
		workers: workers,
		share:   &kernelShare{claimed: n},
	}
	for i := range k.cols {
		k.cols[i] = int32(i)
	}
	k.fill(train.Points, 0, workers)
	return k
}

// fill computes the columns for points into physical columns
// base..base+len(points)-1, split across workers in contiguous blocks.
func (k *DistanceKernel) fill(points []Point, base, workers int) {
	n := len(points)
	if n == 0 || k.m == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Below ~32k entries the goroutine startup outweighs the fill itself.
	if n*k.m < 1<<15 {
		workers = 1
	}
	if workers == 1 {
		k.fillBlock(points, base, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			k.fillBlock(points, base, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// fillBlock fills physical columns base+lo..base+hi-1 from points[lo:hi].
func (k *DistanceKernel) fillBlock(points []Point, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		col := k.data[(base+i)*k.m : (base+i+1)*k.m]
		px := points[i].X
		for j := range k.test.Points {
			col[j] = Euclidean(k.test.Points[j].X, px)
		}
	}
}

// Rows returns m, the number of test points.
func (k *DistanceKernel) Rows() int { return k.m }

// Cols returns the number of training points the view currently maps.
func (k *DistanceKernel) Cols() int { return len(k.cols) }

// Col returns the contiguous distances from training point i to every test
// point: Col(i)[j] == Euclidean(test[j].X, train[i].X). The slice aliases
// the kernel's storage and must not be written.
func (k *DistanceKernel) Col(i int) []float64 {
	c := int(k.cols[i]) * k.m
	return k.data[c : c+k.m : c+k.m]
}

// At returns the distance between training point i and test point j.
func (k *DistanceKernel) At(i, j int) float64 {
	return k.data[int(k.cols[i])*k.m+j]
}

// Phys returns the physical column id backing logical training index i.
// Physical ids are assigned in append order, never reused and never moved,
// so they are stable names for training points across the logical-index
// shifts Remove causes. Within any view the mapping is strictly
// increasing: Append claims fresh ids past every existing one and Remove
// preserves order — so ascending physical id IS ascending logical index,
// which is what lets the exact estimator keep tie-order with a stable
// sort while indexing its state by physical id.
func (k *DistanceKernel) Phys(i int) int32 { return k.cols[i] }

// PhysExtent returns the number of physical columns the view may address:
// every id returned by Phys is < PhysExtent. Masked (removed) columns
// count — their storage stays resident and readable.
func (k *DistanceKernel) PhysExtent() int { return k.phys }

// AtPhys returns the distance between the physical column p and test
// point j — the same entry At reads through the logical map. It stays
// valid for masked columns, so state keyed by physical id can keep
// reading distances of points that left the logical view.
func (k *DistanceKernel) AtPhys(p int32, j int) float64 {
	return k.data[int(p)*k.m+j]
}

// Append returns a view extended with one column per point, computed
// against the kernel's test set — O(m·d) per point, independent of n. The
// receiver is unchanged. The new columns land in the shared buffer's spare
// capacity when this view is the buffer's frontier (the common sequential
// Add flow); a branched Append reallocates its own buffer instead. Batched
// appends fill their columns with the same parallel blocked fill as
// construction (single-point appends stay serial — the fill gates on size).
func (k *DistanceKernel) Append(points ...Point) *DistanceKernel {
	need := len(points)
	nk := &DistanceKernel{m: k.m, test: k.test, workers: k.workers}
	nk.cols = make([]int32, len(k.cols), len(k.cols)+need)
	copy(nk.cols, k.cols)
	if need == 0 {
		nk.data, nk.phys, nk.share = k.data, k.phys, k.share
		return nk
	}
	k.share.mu.Lock()
	inPlace := k.share.claimed == k.phys && (k.phys+need)*k.m <= len(k.data)
	if inPlace {
		k.share.claimed += need
	}
	k.share.mu.Unlock()
	if inPlace {
		nk.data = k.data
		nk.share = k.share
	} else {
		capCols := k.phys + need
		capCols += capCols/4 + 4
		nk.data = make([]float64, capCols*k.m)
		copy(nk.data, k.data[:k.phys*k.m])
		nk.share = &kernelShare{claimed: k.phys + need}
	}
	base := k.phys
	nk.fill(points, base, nk.workers)
	for t := 0; t < need; t++ {
		nk.cols = append(nk.cols, int32(base+t))
	}
	nk.phys = base + need
	return nk
}

// Remove returns a view without the columns for the given logical training
// indices. No distances are recomputed or moved — the surviving cols
// entries keep pointing at their physical blocks, and remaining logical
// indices shift down exactly as Dataset.Remove shifts points. Masked
// columns stay allocated until every view sharing the buffer is dropped.
func (k *DistanceKernel) Remove(indices ...int) *DistanceKernel {
	gone := make(map[int]bool, len(indices))
	for _, i := range indices {
		gone[i] = true
	}
	nk := &DistanceKernel{m: k.m, test: k.test, data: k.data, phys: k.phys, workers: k.workers, share: k.share}
	nk.cols = make([]int32, 0, len(k.cols)-len(gone))
	for i, c := range k.cols {
		if !gone[i] {
			nk.cols = append(nk.cols, c)
		}
	}
	return nk
}

// MemoryBytes reports the heap footprint of the view: the shared physical
// buffer (counted in full — masked and spare columns included, since they
// stay resident as long as this view does) plus the column map.
func (k *DistanceKernel) MemoryBytes() int64 {
	return int64(len(k.data))*8 + int64(len(k.cols))*4
}
