package journal

import (
	"encoding/json"
	"testing"

	"dynshap/internal/dataset"
)

func pts(n int) []dataset.Point {
	out := make([]dataset.Point, n)
	for i := range out {
		out[i] = dataset.Point{X: []float64{float64(i)}, Y: i % 2}
	}
	return out
}

func TestJournalAppendAndVersions(t *testing.T) {
	j := New(pts(3), 2, nil)
	if j.Len() != 0 || j.LastVersion() != 0 || j.BaseVersion() != 0 {
		t.Fatalf("fresh journal: len=%d last=%d base=%d", j.Len(), j.LastVersion(), j.BaseVersion())
	}
	j.Append(Update{Version: 1, Op: "init", Algo: "MC"})
	j.Append(Update{Version: 2, Op: "add", Algo: "Delta", Points: pts(1)})
	j.Append(Update{Version: 3, Op: "delete", Algo: "YN-NN", Indices: []int{2}})
	if j.Len() != 3 || j.LastVersion() != 3 {
		t.Fatalf("len=%d last=%d", j.Len(), j.LastVersion())
	}
	u, ok := j.At(2)
	if !ok || u.Op != "add" || len(u.Points) != 1 {
		t.Fatalf("At(2) = %+v, %v", u, ok)
	}
	if _, ok := j.At(0); ok {
		t.Fatal("At(base version) should not resolve to an entry")
	}
	if _, ok := j.At(4); ok {
		t.Fatal("At beyond last version should fail")
	}
	if got := j.Through(2); len(got) != 2 || got[1].Version != 2 {
		t.Fatalf("Through(2) = %+v", got)
	}
	if got := j.Through(0); len(got) != 0 {
		t.Fatalf("Through(0) = %+v", got)
	}
}

func TestJournalAppendGapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-contiguous append should panic")
		}
	}()
	j := New(pts(1), 1, nil)
	j.Append(Update{Version: 2, Op: "init"})
}

func TestJournalStateRoundTrip(t *testing.T) {
	j := New(pts(2), 2, []float64{0.1, 0.2})
	j.Append(Update{Version: 1, Op: "init", Algo: "MC", Trainings: 7, Decision: []string{"why"}})
	st := j.State()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	j2 := Restore(back)
	if j2.Len() != 1 || j2.LastVersion() != 1 {
		t.Fatalf("restored len=%d last=%d", j2.Len(), j2.LastVersion())
	}
	base, classes, vals := j2.Base()
	if len(base) != 2 || classes != 2 || len(vals) != 2 || vals[1] != 0.2 {
		t.Fatalf("restored base %d/%d/%v", len(base), classes, vals)
	}
	u, ok := j2.At(1)
	if !ok || u.Trainings != 7 || len(u.Decision) != 1 {
		t.Fatalf("restored entry %+v", u)
	}
}

func TestJournalBatchValues(t *testing.T) {
	j := New(pts(2), 2, nil)
	j.Append(Update{Version: 1, Op: "init", Algo: "MC"})
	vals := []float64{0.4, -0.1, 0.03}
	u := Update{Version: 2, Op: "add", Algo: "Delta-batch", Points: pts(3), BatchValues: vals}
	j.Append(u)
	// Appending deep-copies: mutating the caller's slice must not reach
	// the journal.
	vals[0] = 99
	got, ok := j.At(2)
	if !ok || len(got.BatchValues) != 3 || got.BatchValues[0] != 0.4 {
		t.Fatalf("At(2).BatchValues = %v, %v", got.BatchValues, ok)
	}
	// Reads hand out copies too.
	got.BatchValues[1] = 99
	again, _ := j.At(2)
	if again.BatchValues[1] != -0.1 {
		t.Fatal("At shares BatchValues storage with caller")
	}
	// And the field survives a serialise/restore round trip.
	raw, err := json.Marshal(j.State())
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	u2, ok := Restore(back).At(2)
	if !ok || len(u2.BatchValues) != 3 || u2.BatchValues[2] != 0.03 {
		t.Fatalf("restored BatchValues = %v, %v", u2.BatchValues, ok)
	}
}

// TestJournalResumedBase covers a journal whose base is a mid-life state:
// entries continue from a non-zero base version.
func TestJournalResumedBase(t *testing.T) {
	st := State{
		Base:    pts(4),
		Classes: 2,
		Entries: []Update{
			{Version: 1, Op: "init"},
			{Version: 2, Op: "add"},
		},
	}
	j := Restore(st)
	if j.BaseVersion() != 0 || j.LastVersion() != 2 {
		t.Fatalf("base=%d last=%d", j.BaseVersion(), j.LastVersion())
	}
	j.Append(Update{Version: 3, Op: "delete"})
	if j.LastVersion() != 3 {
		t.Fatalf("last=%d", j.LastVersion())
	}
}

func TestJournalIsolation(t *testing.T) {
	base := pts(1)
	j := New(base, 2, nil)
	base[0].X[0] = 99
	got, _, _ := j.Base()
	if got[0].X[0] == 99 {
		t.Fatal("journal shares base point storage with caller")
	}
	u := Update{Version: 1, Op: "add", Points: pts(1)}
	j.Append(u)
	u.Points[0].X[0] = 99
	h := j.History()
	if h[0].Points[0].X[0] == 99 {
		t.Fatal("journal shares entry point storage with caller")
	}
}
