// Package journal records the mutation history of a valuation session as
// an append-only log of Update records.
//
// The paper treats a valuation as a long-lived object — Shapley values
// maintained across insertions and deletions — which makes the *sequence*
// of updates part of the state: a broker must be able to explain which
// algorithm produced the values it paid on (the planner's decision trace),
// audit what each update cost (model trainings, permutations, wall time),
// and reproduce any historical version exactly. The journal supplies all
// three. Because every sampler in the library is deterministic and each
// operation draws from an RNG stream keyed by (seed, version), replaying
// the base dataset through the journaled operations reproduces every
// recorded version bit for bit.
//
// A Journal is safe for concurrent use: appends come from the session's
// single writer, reads may come from any goroutine.
package journal

import (
	"fmt"
	"sync"

	"dynshap/internal/dataset"
)

// Update is one journaled session mutation. Points and Indices carry the
// operation's full input so the operation can be re-applied during replay;
// the remaining fields are the audit trail.
type Update struct {
	// Version is the state version this update produced. Versions are
	// contiguous: the first update yields version 1 (or base+1 after a
	// resume that carried history over).
	Version int `json:"version"`
	// Op is the operation kind: "init", "add", "delete" or "refresh".
	Op string `json:"op"`
	// Requested is the algorithm the caller asked for, when it differs
	// from the one that ran — "Auto" when the planner chose.
	Requested string `json:"requested,omitempty"`
	// Algo is the algorithm that actually ran (paper names: "MC", "Delta",
	// "YN-NN", "Pivot-s", …). Replay re-applies this resolved algorithm,
	// so recorded versions stay reproducible even if planner heuristics
	// change between releases.
	Algo string `json:"algo,omitempty"`
	// Points holds the added points (op "add").
	Points []dataset.Point `json:"points,omitempty"`
	// Indices holds the deleted indices in the pre-delete numbering
	// (op "delete").
	Indices []int `json:"indices,omitempty"`
	// BatchValues holds the per-point attribution of a batched add: the
	// value each appended point received, in arrival order (batch algos
	// only). Replay does not consume it — the batched walks are
	// deterministic from (seed, version) — but auditors reading the
	// journal see what each point of a batch was individually worth.
	BatchValues []float64 `json:"batch_values,omitempty"`
	// HeadValues holds, for sessions pricing extra semivalue heads, each
	// head's attribution of the appended points (key = the weighting's wire
	// name, value aligned with Points) — what each arriving point was worth
	// under Banzhaf, Beta(α,β), … the moment it landed. Replay does not
	// consume it: head folds are deterministic bookkeeping over the same
	// walks, so re-running the operation reproduces every head bit for bit.
	HeadValues map[string][]float64 `json:"head_values,omitempty"`
	// Coalesced reports that the update arrived through the session's
	// write-coalescing pipeline: the recorded Points (adds) or Indices
	// (deletes) are one admission window, not a single caller's batch.
	// Replay does not consume it — the executed operation is identical
	// either way — but auditors reading the journal see which records were
	// window-shaped by traffic timing rather than by a caller.
	Coalesced bool `json:"coalesced,omitempty"`
	// RemovedValues holds the pre-delete Shapley values of the removed
	// points, aligned with Indices — exact values on the exact k-NN
	// deletion path (where the estimator knows them exactly), the
	// published pre-delete estimates on the batched delta and pivot
	// deletion paths. Replay does not consume it; auditors see what each
	// departing point was worth the moment it left, and the coalescer
	// resolves delete futures with it.
	RemovedValues []float64 `json:"removed_values,omitempty"`
	// Trainings is the number of model trainings the operation cost.
	Trainings int64 `json:"trainings"`
	// PrefixAdds is the number of incremental prefix evaluations the
	// operation used in place of trainings.
	PrefixAdds int64 `json:"prefix_adds,omitempty"`
	// Permutations is the number of permutations the operation issued
	// (engine passes and pivot replays; 0 for heuristic updates).
	Permutations int `json:"permutations,omitempty"`
	// Seconds is the operation's wall time.
	Seconds float64 `json:"seconds"`
	// Decision is the planner's trace: the artifacts it saw, the costs it
	// predicted, and why it settled on Algo. Empty when the caller picked
	// the algorithm directly.
	Decision []string `json:"decision,omitempty"`
}

// State is the serialisable form of a Journal, embedded in snapshot
// format 2.
type State struct {
	// Base holds the training points the journal's first entry applied to.
	Base []dataset.Point `json:"base"`
	// Classes is the label-space size of the base points.
	Classes int `json:"classes"`
	// BaseValues, when present, are Shapley values installed directly at
	// version 0 (a session resumed from a format-1 snapshot has values but
	// no recorded history; replay re-installs them instead of re-running
	// an init pass).
	BaseValues []float64 `json:"base_values,omitempty"`
	// Entries is the update log, versions ascending and contiguous.
	Entries []Update `json:"entries,omitempty"`
}

// Journal is an append-only log of session updates over a fixed base.
type Journal struct {
	mu         sync.Mutex
	base       []dataset.Point
	classes    int
	baseValues []float64
	entries    []Update
}

// New returns a journal over the given base training points. baseValues
// may be nil (a fresh session) or the values installed at version 0 (a
// session resumed without history). All inputs are deep-copied.
func New(base []dataset.Point, classes int, baseValues []float64) *Journal {
	return &Journal{
		base:       clonePoints(base),
		classes:    classes,
		baseValues: append([]float64(nil), baseValues...),
	}
}

// Restore rebuilds a journal from its serialised state.
func Restore(st State) *Journal {
	j := New(st.Base, st.Classes, st.BaseValues)
	j.entries = cloneEntries(st.Entries)
	return j
}

// Append records one successful update. It panics if the entry's version
// does not extend the log contiguously — journal corruption is a
// programming error, not a runtime condition.
func (j *Journal) Append(u Update) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if want := j.lastVersionLocked() + 1; u.Version != want {
		panic(fmt.Sprintf("journal: appending version %d after %d", u.Version, want-1))
	}
	j.entries = append(j.entries, cloneEntry(u))
}

// Len returns the number of journaled updates.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// LastVersion returns the version the most recent entry produced, or the
// base version when the log is empty.
func (j *Journal) LastVersion() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastVersionLocked()
}

func (j *Journal) lastVersionLocked() int {
	if len(j.entries) == 0 {
		return j.baseVersionLocked()
	}
	return j.entries[len(j.entries)-1].Version
}

// baseVersionLocked is the version of the journal's base state: one less
// than the first entry's version (0 for a fresh journal).
func (j *Journal) baseVersionLocked() int {
	if len(j.entries) == 0 {
		return 0
	}
	return j.entries[0].Version - 1
}

// BaseVersion returns the version of the journal's base state.
func (j *Journal) BaseVersion() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.baseVersionLocked()
}

// History returns a copy of the update log, versions ascending.
func (j *Journal) History() []Update {
	j.mu.Lock()
	defer j.mu.Unlock()
	return cloneEntries(j.entries)
}

// At returns the update that produced the given version.
func (j *Journal) At(version int) (Update, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	base := j.baseVersionLocked()
	i := version - base - 1
	if i < 0 || i >= len(j.entries) {
		return Update{}, false
	}
	return cloneEntry(j.entries[i]), true
}

// Through returns the updates with Version ≤ version, ascending — the
// replay prefix that reproduces that version from the base.
func (j *Journal) Through(version int) []Update {
	j.mu.Lock()
	defer j.mu.Unlock()
	base := j.baseVersionLocked()
	k := version - base
	if k < 0 {
		k = 0
	}
	if k > len(j.entries) {
		k = len(j.entries)
	}
	return cloneEntries(j.entries[:k])
}

// Base returns copies of the base points, their class count, and the
// base-installed values (nil for fresh sessions).
func (j *Journal) Base() ([]dataset.Point, int, []float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return clonePoints(j.base), j.classes, append([]float64(nil), j.baseValues...)
}

// State returns a deep copy of the journal for serialisation.
func (j *Journal) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return State{
		Base:       clonePoints(j.base),
		Classes:    j.classes,
		BaseValues: append([]float64(nil), j.baseValues...),
		Entries:    cloneEntries(j.entries),
	}
}

func cloneEntry(u Update) Update {
	u.Points = clonePoints(u.Points)
	u.Indices = append([]int(nil), u.Indices...)
	u.BatchValues = append([]float64(nil), u.BatchValues...)
	if u.HeadValues != nil {
		hv := make(map[string][]float64, len(u.HeadValues))
		for k, v := range u.HeadValues {
			hv[k] = append([]float64(nil), v...)
		}
		u.HeadValues = hv
	}
	u.RemovedValues = append([]float64(nil), u.RemovedValues...)
	u.Decision = append([]string(nil), u.Decision...)
	return u
}

func cloneEntries(es []Update) []Update {
	if es == nil {
		return nil
	}
	out := make([]Update, len(es))
	for i, e := range es {
		out[i] = cloneEntry(e)
	}
	return out
}

func clonePoints(pts []dataset.Point) []dataset.Point {
	if pts == nil {
		return nil
	}
	out := make([]dataset.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}
