// Package utility turns machine-learning training runs into cooperative-game
// utility functions: U(S) = score of a model trained on the coalition S of
// training points, evaluated on a held-out test set (the interpretation used
// throughout the paper).
//
// Two properties matter for valuation correctness and are enforced here:
//
//  1. Determinism — U(S) must return the same value every time it is asked
//     about the same coalition, or estimators see phantom noise and caches
//     poison results. The per-fit RNG seed is therefore derived from the
//     coalition content itself.
//  2. Observability — dynamic algorithms win by avoiding model trainings, so
//     the layer exposes training counts and supports a simulated per-training
//     latency for reproducing the paper's wall-clock tables on hardware
//     much smaller than the authors' testbed.
package utility

import (
	"sync/atomic"
	"time"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/ml"
)

// ModelUtility is a game.Game whose value is the test accuracy of a model
// trained on the coalition.
type ModelUtility struct {
	train   *dataset.Dataset
	test    *dataset.Dataset
	trainer ml.Trainer
	// EmptyValue is U(∅). The conventional choice — used here — is the
	// accuracy of the trivial always-predict-0 model, so marginal
	// contributions of first points are meaningful.
	emptyValue float64
	// delay, when positive, is slept on every training run to emulate the
	// paper's expensive models (T in Theorems 1–4).
	delay time.Duration
	fits  atomic.Int64
	// prefixAdds counts incremental prefix evaluations (see Prefix); they
	// avoid a training each, so the two counters together describe how the
	// utility's work splits between scratch and incremental paths.
	prefixAdds atomic.Int64
}

// Option configures a ModelUtility.
type Option func(*ModelUtility)

// WithSimulatedLatency makes every Value call sleep for d, emulating a model
// whose training dominates runtime (the paper's SVM on Adult).
func WithSimulatedLatency(d time.Duration) Option {
	return func(u *ModelUtility) { u.delay = d }
}

// WithEmptyValue overrides U(∅).
func WithEmptyValue(v float64) Option {
	return func(u *ModelUtility) { u.emptyValue = v }
}

// NewModelUtility builds the utility for valuing the points of train with
// the given trainer, scored on test. Both datasets are cloned; later
// mutation of the arguments does not affect the utility.
func NewModelUtility(train, test *dataset.Dataset, trainer ml.Trainer, opts ...Option) *ModelUtility {
	u := &ModelUtility{
		train:   train.Clone(),
		test:    test.Clone(),
		trainer: trainer,
	}
	u.emptyValue = ml.Accuracy(ml.Constant{Label: 0}, u.test)
	for _, o := range opts {
		o(u)
	}
	return u
}

// N implements game.Game: the players are the training points.
func (u *ModelUtility) N() int { return u.train.Len() }

// Value implements game.Game: train on the coalition, score on the test set.
func (u *ModelUtility) Value(s bitset.Set) float64 {
	if s.Empty() {
		return u.emptyValue
	}
	if u.delay > 0 {
		time.Sleep(u.delay)
	}
	u.fits.Add(1)
	sub := u.train.Subset(s.Indices())
	sub.Classes = u.train.Classes
	model := u.seededFit(sub, s)
	return ml.Accuracy(model, u.test)
}

// seededFit trains with a seed derived from the coalition so U is a pure
// function of S even though training is stochastic.
func (u *ModelUtility) seededFit(sub *dataset.Dataset, s bitset.Set) ml.Classifier {
	switch tr := u.trainer.(type) {
	case ml.SVM:
		tr.Seed = s.Hash()
		return tr.Fit(sub)
	case ml.LogReg:
		tr.Seed = s.Hash()
		return tr.Fit(sub)
	default:
		return u.trainer.Fit(sub)
	}
}

// Fits returns the number of model trainings performed so far (excluding
// empty coalitions).
func (u *ModelUtility) Fits() int64 { return u.fits.Load() }

// ResetFits zeroes the training counter.
func (u *ModelUtility) ResetFits() { u.fits.Store(0) }

// Train returns a clone of the training dataset being valued.
func (u *ModelUtility) Train() *dataset.Dataset { return u.train.Clone() }

// Test returns a clone of the held-out test dataset.
func (u *ModelUtility) Test() *dataset.Dataset { return u.test.Clone() }

// Append returns a new ModelUtility over the training set extended with the
// given points (the N⁺ view of the addition algorithms). The receiver is
// unchanged; the test set is cloned — matching NewModelUtility's isolation
// guarantee — and the trainer and options carry over.
func (u *ModelUtility) Append(points ...dataset.Point) *ModelUtility {
	nu := &ModelUtility{
		train:      u.train.Append(points...),
		test:       u.test.Clone(),
		trainer:    u.trainer,
		emptyValue: u.emptyValue,
		delay:      u.delay,
	}
	return nu
}

// Remove returns a new ModelUtility over the training set without the
// points at the given indices (the N⁻ view of the deletion algorithms).
// Like Append, the test set is cloned so the derived utility shares no
// mutable state with the receiver.
func (u *ModelUtility) Remove(indices ...int) *ModelUtility {
	nu := &ModelUtility{
		train:      u.train.Remove(indices...),
		test:       u.test.Clone(),
		trainer:    u.trainer,
		emptyValue: u.emptyValue,
		delay:      u.delay,
	}
	return nu
}
