// Package utility turns machine-learning training runs into cooperative-game
// utility functions: U(S) = score of a model trained on the coalition S of
// training points, evaluated on a held-out test set (the interpretation used
// throughout the paper).
//
// Two properties matter for valuation correctness and are enforced here:
//
//  1. Determinism — U(S) must return the same value every time it is asked
//     about the same coalition, or estimators see phantom noise and caches
//     poison results. The per-fit RNG seed is therefore derived from the
//     coalition content itself.
//  2. Observability — dynamic algorithms win by avoiding model trainings, so
//     the layer exposes training counts and supports a simulated per-training
//     latency for reproducing the paper's wall-clock tables on hardware
//     much smaller than the authors' testbed.
package utility

import (
	"sync/atomic"
	"time"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/ml"
)

// ModelUtility is a game.Game whose value is the test accuracy of a model
// trained on the coalition.
type ModelUtility struct {
	train   *dataset.Dataset
	test    *dataset.Dataset
	trainer ml.Trainer
	// kernel caches every test-to-train Euclidean distance when the trainer
	// is KNN, so Value and Prefix evaluations select neighbours by reading a
	// matrix instead of recomputing m·|S| distances per coalition. Entries
	// are the exact Euclidean values the scratch path would compute, and the
	// selection code mirrors dataset.Nearest's tie order, so results are
	// bit-identical with or without it (see DESIGN.md §12). Nil for other
	// trainers or under WithoutKernel.
	kernel *dataset.DistanceKernel
	// knnK is the trainer's resolved neighbour count (0 for non-KNN
	// trainers, which never select neighbours).
	knnK int
	// soft selects Jia et al.'s soft k-NN scoring rule instead of
	// majority-vote accuracy (ml.SoftKNN trainers): U(S) = mean over test
	// points of (#same-label among the min(k,|S|) nearest in S)/k, with
	// U(∅) = 0. Only this utility admits the exact closed-form Shapley
	// fast path (internal/exact).
	soft     bool
	noKernel bool
	workers  int
	// EmptyValue is U(∅). The conventional choice — used here — is the
	// accuracy of the trivial always-predict-0 model, so marginal
	// contributions of first points are meaningful.
	emptyValue float64
	// delay, when positive, is slept on every training run to emulate the
	// paper's expensive models (T in Theorems 1–4).
	delay time.Duration
	fits  atomic.Int64
	// prefixAdds counts incremental prefix evaluations (see Prefix); they
	// avoid a training each, so the two counters together describe how the
	// utility's work splits between scratch and incremental paths.
	prefixAdds atomic.Int64
}

// Option configures a ModelUtility.
type Option func(*ModelUtility)

// WithSimulatedLatency makes every Value call sleep for d, emulating a model
// whose training dominates runtime (the paper's SVM on Adult).
func WithSimulatedLatency(d time.Duration) Option {
	return func(u *ModelUtility) { u.delay = d }
}

// WithEmptyValue overrides U(∅).
func WithEmptyValue(v float64) Option {
	return func(u *ModelUtility) { u.emptyValue = v }
}

// WithoutKernel disables the precomputed distance kernel, trading the m×n
// float64 matrix's memory for recomputing distances on every evaluation.
// Values are bit-identical either way; this is purely a memory/speed knob
// and the reference arm the kernel's equality tests compare against.
func WithoutKernel() Option {
	return func(u *ModelUtility) { u.noKernel = true }
}

// WithWorkers sets the worker count for the kernel's initial parallel fill.
// Zero or negative means GOMAXPROCS. The fill is bit-identical at any
// count; evaluation never spawns goroutines.
func WithWorkers(workers int) Option {
	return func(u *ModelUtility) { u.workers = workers }
}

// NewModelUtility builds the utility for valuing the points of train with
// the given trainer, scored on test. Both datasets are cloned; later
// mutation of the arguments does not affect the utility.
func NewModelUtility(train, test *dataset.Dataset, trainer ml.Trainer, opts ...Option) *ModelUtility {
	u := &ModelUtility{
		train:   train.Clone(),
		test:    test.Clone(),
		trainer: trainer,
	}
	if _, ok := trainer.(ml.SoftKNN); ok {
		u.soft = true
		u.emptyValue = 0 // the soft utility's convention: U(∅) = 0
	} else {
		u.emptyValue = ml.Accuracy(ml.Constant{Label: 0}, u.test)
	}
	for _, o := range opts {
		o(u)
	}
	u.buildKernel()
	return u
}

// buildKernel precomputes the distance kernel for KNN trainers. Built once
// here; Session add/delete flows extend or mask it via Append/Remove and
// never trigger a rebuild.
func (u *ModelUtility) buildKernel() {
	switch tr := u.trainer.(type) {
	case ml.KNN:
		u.knnK = tr.K
	case ml.SoftKNN:
		u.knnK = tr.K
	default:
		return
	}
	if u.knnK == 0 {
		u.knnK = 5
	}
	if u.noKernel {
		return
	}
	u.kernel = dataset.NewDistanceKernel(u.test, u.train, u.workers)
}

// N implements game.Game: the players are the training points.
func (u *ModelUtility) N() int { return u.train.Len() }

// Value implements game.Game: train on the coalition, score on the test set.
func (u *ModelUtility) Value(s bitset.Set) float64 {
	if s.Empty() {
		return u.emptyValue
	}
	if u.delay > 0 {
		time.Sleep(u.delay)
	}
	u.fits.Add(1)
	if u.soft {
		return u.softValue(s)
	}
	if u.kernel != nil {
		return u.knnValue(s)
	}
	sub := u.train.Subset(s.Indices())
	sub.Classes = u.train.Classes
	model := u.seededFit(sub, s)
	return ml.Accuracy(model, u.test)
}

// knnValue evaluates the KNN utility straight off the kernel: no subset
// clone, no model object, same bits. It replays the scratch pipeline
// exactly — Subset scans members in ascending index order, Fit clamps k to
// |S|, Nearest's window admits a candidate only on strictly smaller
// distance (ties keep the earlier index), majority vote ties toward the
// smaller label, Accuracy divides correct by m — with kernel reads in place
// of Euclidean calls. Only per-call locals are written, so concurrent
// Value calls stay safe.
func (u *ModelUtility) knnValue(s bitset.Set) float64 {
	m := u.test.Len()
	if m == 0 {
		return 0 // ml.Accuracy's empty-test convention
	}
	members := s.Indices()
	k := u.knnK
	if k > len(members) {
		k = len(members)
	}
	dists := make([]float64, k)
	idxs := make([]int, k)
	counts := make([]int, u.train.Classes)
	correct := 0
	for j := 0; j < m; j++ {
		size := 0
		for _, i := range members {
			dist := u.kernel.At(i, j)
			if size == k && dist >= dists[size-1] {
				continue
			}
			pos := size
			if size < k {
				size++
			} else {
				pos = k - 1
			}
			for pos > 0 && dists[pos-1] > dist {
				dists[pos] = dists[pos-1]
				idxs[pos] = idxs[pos-1]
				pos--
			}
			dists[pos] = dist
			idxs[pos] = i
		}
		for c := range counts {
			counts[c] = 0
		}
		for w := 0; w < size; w++ {
			counts[u.train.Points[idxs[w]].Y]++
		}
		best := 0
		for c, cnt := range counts {
			if cnt > counts[best] {
				best = c
			}
		}
		if best == u.test.Points[j].Y {
			correct++
		}
	}
	return float64(correct) / float64(m)
}

// softValue evaluates the soft k-NN utility: per test point, select the
// min(k,|S|) nearest coalition members with exactly knnValue's insertion
// window (strictly smaller distance displaces, ties keep the earlier
// index), count the same-label members, and return the single canonical
// division total/(k·m). The integer total is what the incremental prefix
// evaluator and the scratch path both maintain, so every evaluation route
// — kernel, scratch, prefix — produces identical bits. Distances come
// from the kernel when present and from the same Euclidean call the
// kernel fill performs otherwise.
func (u *ModelUtility) softValue(s bitset.Set) float64 {
	m := u.test.Len()
	if m == 0 {
		return 0
	}
	members := s.Indices()
	k := u.knnK
	win := k
	if win > len(members) {
		win = len(members)
	}
	dists := make([]float64, win)
	idxs := make([]int, win)
	total := 0
	for j := 0; j < m; j++ {
		size := 0
		for _, i := range members {
			var dist float64
			if u.kernel != nil {
				dist = u.kernel.At(i, j)
			} else {
				dist = dataset.Euclidean(u.test.Points[j].X, u.train.Points[i].X)
			}
			if size == win && dist >= dists[size-1] {
				continue
			}
			pos := size
			if size < win {
				size++
			} else {
				pos = win - 1
			}
			for pos > 0 && dists[pos-1] > dist {
				dists[pos] = dists[pos-1]
				idxs[pos] = idxs[pos-1]
				pos--
			}
			dists[pos] = dist
			idxs[pos] = i
		}
		ty := u.test.Points[j].Y
		for w := 0; w < size; w++ {
			if u.train.Points[idxs[w]].Y == ty {
				total++
			}
		}
	}
	return float64(total) / float64(k*m)
}

// ExactKNNState exposes the ingredients of the exact closed-form k-NN
// Shapley estimator — the distance kernel and the neighbour count — when
// this utility is the soft k-NN scoring rule backed by a kernel, which is
// precisely the configuration whose Shapley values the closed form is
// exact for. ok is false for every other trainer, for majority-vote KNN
// (the form is NOT exact there), and under WithoutKernel.
func (u *ModelUtility) ExactKNNState() (kernel *dataset.DistanceKernel, k int, ok bool) {
	if !u.soft || u.kernel == nil {
		return nil, 0, false
	}
	return u.kernel, u.knnK, true
}

// seededFit trains with a seed derived from the coalition so U is a pure
// function of S even though training is stochastic.
func (u *ModelUtility) seededFit(sub *dataset.Dataset, s bitset.Set) ml.Classifier {
	switch tr := u.trainer.(type) {
	case ml.SVM:
		tr.Seed = s.Hash()
		return tr.Fit(sub)
	case ml.LogReg:
		tr.Seed = s.Hash()
		return tr.Fit(sub)
	case ml.KNN:
		// The subset was built for this call and discarded after scoring —
		// skip Fit's defensive clone.
		return tr.FitOwned(sub)
	default:
		return u.trainer.Fit(sub)
	}
}

// Fits returns the number of model trainings performed so far (excluding
// empty coalitions).
func (u *ModelUtility) Fits() int64 { return u.fits.Load() }

// ResetFits zeroes the training counter.
func (u *ModelUtility) ResetFits() { u.fits.Store(0) }

// Train returns a clone of the training dataset being valued.
func (u *ModelUtility) Train() *dataset.Dataset { return u.train.Clone() }

// Test returns a clone of the held-out test dataset.
func (u *ModelUtility) Test() *dataset.Dataset { return u.test.Clone() }

// Append returns a new ModelUtility over the training set extended with the
// given points (the N⁺ view of the addition algorithms). The receiver is
// unchanged; the derived train/test datasets are structurally independent
// views sharing the points' immutable feature storage, and the trainer
// and options carry over.
// The kernel rides along with one O(m·d) column append per point instead
// of an O(m·n·d) rebuild.
func (u *ModelUtility) Append(points ...dataset.Point) *ModelUtility {
	nu := &ModelUtility{
		train:      u.train.Append(points...),
		test:       u.test.View(),
		trainer:    u.trainer,
		knnK:       u.knnK,
		soft:       u.soft,
		noKernel:   u.noKernel,
		workers:    u.workers,
		emptyValue: u.emptyValue,
		delay:      u.delay,
	}
	if u.kernel != nil {
		nu.kernel = u.kernel.Append(points...)
	}
	return nu
}

// Remove returns a new ModelUtility over the training set without the
// points at the given indices (the N⁻ view of the deletion algorithms).
// Like Append, the derived utility is structurally independent of the
// receiver (fresh train/test slices; nothing either does affects the
// other) while sharing the points' immutable feature storage.
// The kernel is masked, not rebuilt: surviving columns keep their storage
// and only the logical index map shrinks.
func (u *ModelUtility) Remove(indices ...int) *ModelUtility {
	nu := &ModelUtility{
		train:      u.train.Remove(indices...),
		test:       u.test.View(),
		trainer:    u.trainer,
		knnK:       u.knnK,
		soft:       u.soft,
		noKernel:   u.noKernel,
		workers:    u.workers,
		emptyValue: u.emptyValue,
		delay:      u.delay,
	}
	if u.kernel != nil {
		nu.kernel = u.kernel.Remove(indices...)
	}
	return nu
}

// KernelMemoryBytes reports the distance kernel's heap footprint, 0 when
// the utility has none. Views derived by Append/Remove may share one
// physical buffer; each reports the full buffer it keeps resident.
func (u *ModelUtility) KernelMemoryBytes() int64 {
	if u.kernel == nil {
		return 0
	}
	return u.kernel.MemoryBytes()
}
