package utility

import (
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
)

// knnFixture builds a standardised Iris-like valuation workload.
func knnFixture(t *testing.T, n, testSize, k int, seed uint64) *ModelUtility {
	t.Helper()
	rnd := rng.New(seed)
	pool := dataset.IrisLike(rnd, n+testSize)
	pool.Standardize()
	train, test := pool.Split(float64(n) / float64(n+testSize))
	if train.Len() != n {
		t.Fatalf("split yielded %d train points, want %d", train.Len(), n)
	}
	return NewModelUtility(train, test, ml.KNN{K: k})
}

// TestKNNPrefixMatchesScratchExactly is the property test backing the
// incremental protocol's bit-identity contract: on random permutations and
// random k, every prefix utility from the evaluator must EQUAL (==, no
// tolerance) the scratch Value of the same coalition.
func TestKNNPrefixMatchesScratchExactly(t *testing.T) {
	rnd := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 8 + rnd.Intn(25)
		k := 1 + rnd.Intn(9) // deliberately often exceeds small prefix sizes
		u := knnFixture(t, n, 10+rnd.Intn(20), k, uint64(1000+trial))
		ev := game.PrefixEvaluatorOf(u)
		if ev == nil {
			t.Fatal("KNN utility does not expose a prefix evaluator")
		}
		for rep := 0; rep < 3; rep++ {
			perm := rnd.PermN(n)
			prefix := bitset.New(n)
			ev.Reset()
			for pos, p := range perm {
				prefix.Add(p)
				want := u.Value(prefix)
				got := ev.Add(p)
				if got != want {
					t.Fatalf("trial %d rep %d k=%d pos %d (player %d): Add = %v, Value = %v",
						trial, rep, k, pos, p, got, want)
				}
			}
		}
	}
}

// The default-k (K=0 → 5) path and reuse across Resets must also agree.
func TestKNNPrefixDefaultKAndReuse(t *testing.T) {
	u := knnFixture(t, 20, 15, 0, 7)
	ev := game.PrefixEvaluatorOf(u)
	rnd := rng.New(3)
	prefix := bitset.New(20)
	for rep := 0; rep < 5; rep++ {
		perm := rnd.PermN(20)
		prefix.Clear()
		ev.Reset()
		for _, p := range perm {
			prefix.Add(p)
			if got, want := ev.Add(p), u.Value(prefix); got != want {
				t.Fatalf("rep %d: Add(%d) = %v, Value = %v", rep, p, got, want)
			}
		}
	}
}

func TestKNNPrefixCountsAdds(t *testing.T) {
	u := knnFixture(t, 10, 5, 3, 1)
	ev := game.PrefixEvaluatorOf(u)
	ev.Reset()
	for p := 0; p < 10; p++ {
		ev.Add(p)
	}
	if got := u.PrefixAdds(); got != 10 {
		t.Fatalf("PrefixAdds = %d, want 10", got)
	}
	if got := u.Fits(); got != 0 {
		t.Fatalf("incremental walk trained %d models, want 0", got)
	}
}

// Non-KNN trainers must not claim the capability.
func TestPrefixUnavailableForOtherTrainers(t *testing.T) {
	rnd := rng.New(5)
	pool := dataset.IrisLike(rnd, 30)
	train, test := pool.Split(0.5)
	for name, tr := range map[string]ml.Trainer{
		"nb":  ml.NaiveBayes{},
		"svm": ml.SVM{Epochs: 3},
	} {
		u := NewModelUtility(train, test, tr)
		if ev := game.PrefixEvaluatorOf(u); ev != nil {
			t.Errorf("%s trainer unexpectedly yields evaluator %T", name, ev)
		}
	}
}

// Appending or removing points must not let the derived utility share the
// receiver's test dataset (NewModelUtility promises clone isolation).
func TestAppendRemoveCloneTestSet(t *testing.T) {
	u := knnFixture(t, 10, 8, 3, 11)
	s := bitset.FromIndices(10, 0, 3, 7)

	plus := u.Append(dataset.Point{X: make([]float64, u.Train().Dim()), Y: 0})
	plus.Test().Points[0].X[0] = 0 // Test() clones; mutate via the internal pointer instead
	plus.test.Points[0].X[0] += 1e6
	if got, want := u.Value(s), knnFixture(t, 10, 8, 3, 11).Value(s); got != want {
		t.Fatalf("mutating the appended utility's test set changed the parent: %v != %v", got, want)
	}

	minus := u.Remove(9)
	minus.test.Points[0].X[0] += 1e6
	if got, want := u.Value(s), knnFixture(t, 10, 8, 3, 11).Value(s); got != want {
		t.Fatalf("mutating the removed utility's test set changed the parent: %v != %v", got, want)
	}
}
