package utility

import (
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
)

// knnPrefix incrementally maintains the KNN utility U(S) = test accuracy of
// a k-NN classifier trained on the coalition S, as points join S one at a
// time (the structure Jia et al. exploit for exact k-NN Shapley values).
//
// For every test point it keeps the candidate list of the k nearest
// coalition members ordered by (distance, original index) — exactly the
// selection rule of dataset.Nearest scanning a coalition subset in
// increasing index order, so the maintained windows, votes, and accuracy
// are bit-identical to a scratch ModelUtility.Value call on the same
// coalition. One Add costs O(m·(d + k)) for m test points in d dimensions,
// versus O(|S|·m·d) plus a dataset clone for a scratch evaluation.
type knnPrefix struct {
	u *ModelUtility
	k int
	m int // number of test points

	// Per-test-point candidate windows, row-major m×k. Window j holds the
	// min(|S|, k) nearest coalition members of test point j; row length is
	// uniform because every training point is a candidate for every test
	// point.
	dists []float64
	idxs  []int32

	// predCorrect[j] reports whether the current vote for test point j
	// matches its label; correct is the running total.
	predCorrect []bool
	correct     int

	size   int   // members added since Reset
	counts []int // vote-counting scratch, one slot per class
}

// Prefix implements game.Prefixer. The capability is available only for the
// KNN trainer, whose lazy model admits exact incremental maintenance;
// other trainers return nil, sending estimators down the scratch-Value
// fallback. Evaluations through the evaluator train no model: they do not
// count as Fits, and the simulated training latency (WithSimulatedLatency)
// does not apply. Prefix is safe for concurrent calls; each returned
// evaluator must stay on one goroutine.
func (u *ModelUtility) Prefix() game.PrefixEvaluator {
	tr, ok := u.trainer.(ml.KNN)
	if !ok {
		return nil
	}
	k := tr.K
	if k == 0 {
		k = 5
	}
	m := u.test.Len()
	return &knnPrefix{
		u:           u,
		k:           k,
		m:           m,
		dists:       make([]float64, m*k),
		idxs:        make([]int32, m*k),
		predCorrect: make([]bool, m),
		counts:      make([]int, u.train.Classes),
	}
}

// PrefixAdds returns the number of incremental prefix evaluations served by
// evaluators handed out by Prefix (the trainings avoided, roughly).
func (u *ModelUtility) PrefixAdds() int64 { return u.prefixAdds.Load() }

// Reset implements game.PrefixEvaluator.
func (e *knnPrefix) Reset() {
	e.size = 0
	e.correct = 0
}

// Add implements game.PrefixEvaluator: training point p joins the
// coalition; the new utility is returned.
func (e *knnPrefix) Add(p int) float64 {
	e.u.prefixAdds.Add(1)
	e.size++
	wlen := e.size - 1 // window length before this Add
	if wlen > e.k {
		wlen = e.k
	}
	px := e.u.train.Points[p].X
	for j := 0; j < e.m; j++ {
		tp := &e.u.test.Points[j]
		d := dataset.Euclidean(tp.X, px)
		if !e.insert(j, wlen, d, int32(p)) {
			continue
		}
		// Window changed: recount the vote among its members. Ties break
		// toward the smaller label, as in the scratch classifier.
		for c := range e.counts {
			e.counts[c] = 0
		}
		row := j * e.k
		n := wlen + 1
		if n > e.k {
			n = e.k
		}
		for w := 0; w < n; w++ {
			e.counts[e.u.train.Points[e.idxs[row+w]].Y]++
		}
		best := 0
		for c, cnt := range e.counts {
			if cnt > e.counts[best] {
				best = c
			}
		}
		ok := best == tp.Y
		if e.size > 1 && e.predCorrect[j] {
			e.correct--
		}
		if ok {
			e.correct++
		}
		e.predCorrect[j] = ok
	}
	if e.m == 0 {
		return 0 // matches ml.Accuracy on an empty test set
	}
	return float64(e.correct) / float64(e.m)
}

// insert places candidate (d, idx) into test point j's window of current
// length wlen if it ranks among the k nearest under the (distance, index)
// order, reporting whether the window changed. Equal distances prefer the
// smaller original index — the rule dataset.Nearest's index-order scan
// implements implicitly.
func (e *knnPrefix) insert(j, wlen int, d float64, idx int32) bool {
	row := j * e.k
	pos := wlen
	if wlen == e.k {
		last := row + e.k - 1
		if d > e.dists[last] || (d == e.dists[last] && idx > e.idxs[last]) {
			return false
		}
		pos = e.k - 1
	}
	for pos > 0 && (e.dists[row+pos-1] > d || (e.dists[row+pos-1] == d && e.idxs[row+pos-1] > idx)) {
		e.dists[row+pos] = e.dists[row+pos-1]
		e.idxs[row+pos] = e.idxs[row+pos-1]
		pos--
	}
	e.dists[row+pos] = d
	e.idxs[row+pos] = idx
	return true
}
