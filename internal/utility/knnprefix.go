package utility

import (
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
)

// knnPrefix incrementally maintains the KNN utility U(S) = test accuracy of
// a k-NN classifier trained on the coalition S, as points join S one at a
// time (the structure Jia et al. exploit for exact k-NN Shapley values).
//
// For every test point it keeps the candidate list of the k nearest
// coalition members ordered by (distance, original index) — exactly the
// selection rule of dataset.Nearest scanning a coalition subset in
// increasing index order, so the maintained windows, votes, and accuracy
// are bit-identical to a scratch ModelUtility.Value call on the same
// coalition. Distances come from the utility's precomputed kernel when it
// has one (one contiguous column read per Add) and are recomputed with
// Euclidean otherwise; the two sources carry identical bits. Votes are
// maintained incrementally — one increment for the entering member, one
// decrement for the displaced one — instead of recounting the window, so
// an Add costs O(m·(k + classes)) with the kernel, with no distance work
// at all.
type knnPrefix struct {
	u       *ModelUtility
	k       int
	m       int // number of test points
	classes int

	// col is the distance source for the point being added: a kernel column
	// when the utility has one, otherwise scratch filled with Euclidean
	// calls at the top of Add.
	kernel  *dataset.DistanceKernel
	scratch []float64

	// labels caches train/test labels as flat arrays so the hot loop never
	// chases Point structs.
	labels     []int32
	testLabels []int32

	// Per-test-point candidate windows, row-major m×k. Window j holds the
	// min(|S|, k) nearest coalition members of test point j; row length is
	// uniform because every training point is a candidate for every test
	// point.
	dists []float64
	idxs  []int32

	// worst/worstIdx cache each full window's tail entry — (dists, idxs)
	// at row position k−1 — in two packed arrays, so the steady-state
	// reject test ("not among the k nearest") reads two unit-stride values
	// instead of striding across window rows. Written whenever a window's
	// tail changes; read only once windows are full, so no initialisation
	// is needed at Reset.
	worst    []float64
	worstIdx []int32

	// votes is the row-major m×classes table of vote counts over the
	// current windows. Integer counts updated by ±1 per membership change
	// are exact, so the argmax below equals a full recount bit-for-bit.
	votes []int32

	// predCorrect[j] reports whether the current vote for test point j
	// matches its label; correct is the running total.
	predCorrect []bool
	correct     int

	// soft switches the scoring rule to the soft k-NN utility (SoftKNN
	// trainers): instead of voting, softTotal counts same-label members
	// across all windows and the value is softTotal/(k·m) — the same
	// single integer-derived division softValue performs, so the two
	// paths are bit-identical. Window maintenance is shared; only the
	// ±1 bookkeeping per membership change differs.
	soft      bool
	softTotal int

	size int // members added since Reset
}

// Prefix implements game.Prefixer. The capability is available only for
// the KNN trainers (majority-vote and soft), whose lazy models admit
// exact incremental maintenance; other trainers return nil, sending
// estimators down the scratch-Value fallback. Evaluations through the evaluator train no model: they do not
// count as Fits, and the simulated training latency (WithSimulatedLatency)
// does not apply. Prefix is safe for concurrent calls; each returned
// evaluator must stay on one goroutine.
func (u *ModelUtility) Prefix() game.PrefixEvaluator {
	var k int
	var soft bool
	switch tr := u.trainer.(type) {
	case ml.KNN:
		k = tr.K
	case ml.SoftKNN:
		k = tr.K
		soft = true
	default:
		return nil
	}
	if k == 0 {
		k = 5
	}
	m := u.test.Len()
	e := &knnPrefix{
		u:           u,
		k:           k,
		m:           m,
		soft:        soft,
		classes:     u.train.Classes,
		kernel:      u.kernel,
		labels:      make([]int32, u.train.Len()),
		testLabels:  make([]int32, m),
		dists:       make([]float64, m*k),
		idxs:        make([]int32, m*k),
		worst:       make([]float64, m),
		worstIdx:    make([]int32, m),
		votes:       make([]int32, m*u.train.Classes),
		predCorrect: make([]bool, m),
	}
	for i, p := range u.train.Points {
		e.labels[i] = int32(p.Y)
	}
	for j, p := range u.test.Points {
		e.testLabels[j] = int32(p.Y)
	}
	if e.kernel == nil {
		e.scratch = make([]float64, m)
	}
	return e
}

// PrefixAdds returns the number of incremental prefix evaluations served by
// evaluators handed out by Prefix (the trainings avoided, roughly).
func (u *ModelUtility) PrefixAdds() int64 { return u.prefixAdds.Load() }

// Reset implements game.PrefixEvaluator.
func (e *knnPrefix) Reset() {
	e.size = 0
	e.correct = 0
	e.softTotal = 0
	// The windows restart empty (size gates how much of each row is live),
	// but the vote table mirrors window contents and must restart at zero.
	for i := range e.votes {
		e.votes[i] = 0
	}
}

// Add implements game.PrefixEvaluator: training point p joins the
// coalition; the new utility is returned. The soft rule gets its own copy
// of the walk (addSoft) rather than a per-event branch inside this one:
// interleaving the two scoring rules in one body measurably degraded the
// majority-vote loop's codegen, and this loop carries every sampled KNN
// estimator.
func (e *knnPrefix) Add(p int) float64 {
	if e.soft {
		return e.addSoft(p)
	}
	e.u.prefixAdds.Add(1)
	e.size++
	wlen := e.size - 1 // window length before this Add
	if wlen > e.k {
		wlen = e.k
	}
	var col []float64
	if e.kernel != nil {
		col = e.kernel.Col(p)
	} else {
		col = e.scratch
		px := e.u.train.Points[p].X
		for j := 0; j < e.m; j++ {
			col[j] = dataset.Euclidean(e.u.test.Points[j].X, px)
		}
	}
	pLabel := e.labels[p]
	idx := int32(p)
	if wlen == e.k {
		// Steady state: every window is full. A candidate enters window j
		// only if it beats the tail under the (distance, index) order —
		// the rule dataset.Nearest's index-order scan implements
		// implicitly: strictly smaller distance displaces, equal distance
		// keeps the earlier (smaller) index. The packed tail cache decides
		// the common rejection on two sequential loads.
		for j := 0; j < e.m; j++ {
			d := col[j]
			if d > e.worst[j] || (d == e.worst[j] && idx > e.worstIdx[j]) {
				continue
			}
			row := j * e.k
			last := row + e.k - 1
			displaced := e.idxs[last]
			pos := e.k - 1
			for pos > 0 && (e.dists[row+pos-1] > d || (e.dists[row+pos-1] == d && e.idxs[row+pos-1] > idx)) {
				e.dists[row+pos] = e.dists[row+pos-1]
				e.idxs[row+pos] = e.idxs[row+pos-1]
				pos--
			}
			e.dists[row+pos] = d
			e.idxs[row+pos] = idx
			e.worst[j] = e.dists[last]
			e.worstIdx[j] = e.idxs[last]
			// A same-label swap leaves the vote row — and therefore the
			// prediction — untouched: skipping the tally is exact.
			if dl := e.labels[displaced]; dl != pLabel {
				e.tally(j, pLabel, dl)
			}
		}
	} else {
		// Growing phase (the first k adds after Reset): windows are not
		// full yet, so no candidate can be rejected — each slides into
		// place and extends its window by one.
		for j := 0; j < e.m; j++ {
			d := col[j]
			row := j * e.k
			pos := wlen
			for pos > 0 && (e.dists[row+pos-1] > d || (e.dists[row+pos-1] == d && e.idxs[row+pos-1] > idx)) {
				e.dists[row+pos] = e.dists[row+pos-1]
				e.idxs[row+pos] = e.idxs[row+pos-1]
				pos--
			}
			e.dists[row+pos] = d
			e.idxs[row+pos] = idx
			if wlen+1 == e.k {
				last := row + e.k - 1
				e.worst[j] = e.dists[last]
				e.worstIdx[j] = e.idxs[last]
			}
			e.tally(j, pLabel, -1)
		}
	}
	if e.m == 0 {
		return 0 // matches ml.Accuracy on an empty test set
	}
	return float64(e.correct) / float64(e.m)
}

// addSoft is Add for the soft scoring rule: identical window maintenance,
// but the per-membership-change bookkeeping is the softTotal ±1 update and
// the return value is softTotal/(k·m) — the same single integer-derived
// division softValue performs, so the two paths are bit-identical.
func (e *knnPrefix) addSoft(p int) float64 {
	e.u.prefixAdds.Add(1)
	e.size++
	wlen := e.size - 1
	if wlen > e.k {
		wlen = e.k
	}
	var col []float64
	if e.kernel != nil {
		col = e.kernel.Col(p)
	} else {
		col = e.scratch
		px := e.u.train.Points[p].X
		for j := 0; j < e.m; j++ {
			col[j] = dataset.Euclidean(e.u.test.Points[j].X, px)
		}
	}
	pLabel := e.labels[p]
	idx := int32(p)
	if wlen == e.k {
		for j := 0; j < e.m; j++ {
			d := col[j]
			if d > e.worst[j] || (d == e.worst[j] && idx > e.worstIdx[j]) {
				continue
			}
			row := j * e.k
			last := row + e.k - 1
			displaced := e.idxs[last]
			pos := e.k - 1
			for pos > 0 && (e.dists[row+pos-1] > d || (e.dists[row+pos-1] == d && e.idxs[row+pos-1] > idx)) {
				e.dists[row+pos] = e.dists[row+pos-1]
				e.idxs[row+pos] = e.idxs[row+pos-1]
				pos--
			}
			e.dists[row+pos] = d
			e.idxs[row+pos] = idx
			e.worst[j] = e.dists[last]
			e.worstIdx[j] = e.idxs[last]
			// A same-label swap leaves the same-label count untouched.
			if dl := e.labels[displaced]; dl != pLabel {
				e.softTally(j, pLabel, dl)
			}
		}
	} else {
		for j := 0; j < e.m; j++ {
			d := col[j]
			row := j * e.k
			pos := wlen
			for pos > 0 && (e.dists[row+pos-1] > d || (e.dists[row+pos-1] == d && e.idxs[row+pos-1] > idx)) {
				e.dists[row+pos] = e.dists[row+pos-1]
				e.idxs[row+pos] = e.idxs[row+pos-1]
				pos--
			}
			e.dists[row+pos] = d
			e.idxs[row+pos] = idx
			if wlen+1 == e.k {
				last := row + e.k - 1
				e.worst[j] = e.dists[last]
				e.worstIdx[j] = e.idxs[last]
			}
			e.softTally(j, pLabel, -1)
		}
	}
	if e.m == 0 {
		return 0
	}
	return float64(e.softTotal) / float64(e.k*e.m)
}

// softTally applies the membership change {+pLabel, −displacedLabel} (no
// removal when displacedLabel is −1) to the soft rule's same-label count.
// Integer ±1 updates are exact, and the final division in addSoft matches
// softValue's canonical total/(k·m), so prefix evaluation is bit-identical
// to scratch soft evaluation of the same coalition.
func (e *knnPrefix) softTally(j int, pLabel, displacedLabel int32) {
	ty := e.testLabels[j]
	if pLabel == ty {
		e.softTotal++
	}
	if displacedLabel >= 0 && displacedLabel == ty {
		e.softTotal--
	}
}

// tally applies the membership change {+pLabel, −displacedLabel} (no
// removal when displacedLabel is -1) to window j's vote row and refreshes
// the prediction. Integer counts updated by ±1 are exact, so the argmax —
// ties toward the smaller label, as in the scratch classifier — equals a
// full recount bit-for-bit.
func (e *knnPrefix) tally(j int, pLabel, displacedLabel int32) {
	vrow := j * e.classes
	e.votes[vrow+int(pLabel)]++
	if displacedLabel >= 0 {
		e.votes[vrow+int(displacedLabel)]--
	}
	best := 0
	for c := 1; c < e.classes; c++ {
		if e.votes[vrow+c] > e.votes[vrow+best] {
			best = c
		}
	}
	ok := int32(best) == e.testLabels[j]
	if e.size > 1 && e.predCorrect[j] {
		e.correct--
	}
	if ok {
		e.correct++
	}
	e.predCorrect[j] = ok
}
