package utility

import (
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
)

// kernelPair builds the same KNN workload twice: once with the distance
// kernel (the default) and once forced down the scratch path. Every test
// in this file asserts the two arms agree with ==, no tolerance — the
// kernel's bit-identity contract.
func kernelPair(t *testing.T, n, testSize, k int, seed uint64, dup int) (withKernel, scratch *ModelUtility) {
	t.Helper()
	rnd := rng.New(seed)
	pool := dataset.IrisLike(rnd, n+testSize)
	pool.Standardize()
	train, test := pool.Split(float64(n) / float64(n+testSize))
	// Duplicate points create exact distance ties, stressing the
	// (distance, index) tiebreak both arms must share.
	for i := 0; i < dup && train.Len() > 0; i++ {
		train = train.Append(train.Points[rnd.Intn(train.Len())])
	}
	withKernel = NewModelUtility(train, test, ml.KNN{K: k})
	scratch = NewModelUtility(train, test, ml.KNN{K: k}, WithoutKernel())
	if withKernel.kernel == nil {
		t.Fatal("default KNN utility built no kernel")
	}
	if scratch.kernel != nil {
		t.Fatal("WithoutKernel still built a kernel")
	}
	return withKernel, scratch
}

// TestKernelValueMatchesScratchExactly: random coalitions, random k,
// duplicated points — kernel Value must equal scratch Value bit-for-bit.
func TestKernelValueMatchesScratchExactly(t *testing.T) {
	rnd := rng.New(42)
	for trial := 0; trial < 25; trial++ {
		baseN := 6 + rnd.Intn(20)
		dup := rnd.Intn(5)
		k := 1 + rnd.Intn(8)
		u, us := kernelPair(t, baseN, 8+rnd.Intn(15), k, uint64(500+trial), dup)
		n := u.N()
		for rep := 0; rep < 15; rep++ {
			s := bitset.New(n)
			for i := 0; i < n; i++ {
				if rnd.Intn(2) == 0 {
					s.Add(i)
				}
			}
			if got, want := u.Value(s), us.Value(s); got != want {
				t.Fatalf("trial %d rep %d k=%d |S|=%d: kernel %v, scratch %v",
					trial, rep, k, s.Len(), got, want)
			}
		}
	}
}

// The kernel-backed prefix evaluator and the scratch prefix evaluator must
// produce identical sequences, and both must match scratch Values.
func TestKernelPrefixMatchesScratchExactly(t *testing.T) {
	rnd := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		u, us := kernelPair(t, 10+rnd.Intn(15), 10, 1+rnd.Intn(7), uint64(900+trial), 3)
		n := u.N()
		ev := game.PrefixEvaluatorOf(u)
		evs := game.PrefixEvaluatorOf(us)
		for rep := 0; rep < 3; rep++ {
			perm := rnd.PermN(n)
			prefix := bitset.New(n)
			ev.Reset()
			evs.Reset()
			for pos, p := range perm {
				prefix.Add(p)
				got := ev.Add(p)
				noKernel := evs.Add(p)
				want := us.Value(prefix)
				if got != noKernel || got != want {
					t.Fatalf("trial %d rep %d pos %d: kernel prefix %v, scratch prefix %v, scratch value %v",
						trial, rep, pos, got, noKernel, want)
				}
			}
		}
	}
}

// Append/Remove chains must keep the masked/extended kernel bit-identical
// to a scratch utility over the same mutated dataset — the property that
// lets Session updates never rebuild the kernel.
func TestKernelAppendRemoveChainsMatchScratch(t *testing.T) {
	rnd := rng.New(1234)
	for trial := 0; trial < 8; trial++ {
		u, us := kernelPair(t, 12+rnd.Intn(10), 10, 1+rnd.Intn(6), uint64(300+trial), 2)
		check := func(step string) {
			t.Helper()
			n := u.N()
			if n != us.N() {
				t.Fatalf("trial %d %s: N mismatch %d vs %d", trial, step, n, us.N())
			}
			ev := game.PrefixEvaluatorOf(u)
			perm := rnd.PermN(n)
			prefix := bitset.New(n)
			ev.Reset()
			for _, p := range perm {
				prefix.Add(p)
				if got, want := ev.Add(p), us.Value(prefix); got != want {
					t.Fatalf("trial %d %s: prefix %v, scratch %v", trial, step, got, want)
				}
			}
			for rep := 0; rep < 5; rep++ {
				s := bitset.New(n)
				for i := 0; i < n; i++ {
					if rnd.Intn(3) > 0 {
						s.Add(i)
					}
				}
				if got, want := u.Value(s), us.Value(s); got != want {
					t.Fatalf("trial %d %s: kernel %v, scratch %v", trial, step, got, want)
				}
			}
		}
		for step := 0; step < 6; step++ {
			if rnd.Intn(2) == 0 || u.N() < 6 {
				// Append, sometimes duplicating an existing point.
				var p dataset.Point
				if rnd.Intn(2) == 0 {
					p = u.train.Points[rnd.Intn(u.N())].Clone()
				} else {
					p = dataset.Point{X: []float64{rnd.NormFloat64(), rnd.NormFloat64(), rnd.NormFloat64(), rnd.NormFloat64()}, Y: rnd.Intn(3)}
				}
				u = u.Append(p)
				us = us.Append(p)
				check("append")
			} else {
				gone := []int{rnd.Intn(u.N())}
				if u.N() > 8 {
					gone = append(gone, 0, u.N()-1)
				}
				u = u.Remove(gone...)
				us = us.Remove(gone...)
				check("remove")
			}
		}
	}
}

// Branched derivations off one base utility (the pivot algorithms build
// N⁺ views that may be abandoned) must not disturb each other.
func TestKernelBranchedDerivationsIndependent(t *testing.T) {
	u, us := kernelPair(t, 15, 10, 3, 8, 2)
	extra := dataset.Point{X: []float64{1, 2, 3, 4}, Y: 1}
	other := dataset.Point{X: []float64{-1, 0, 1, 0}, Y: 2}

	a := u.Append(extra)
	b := u.Append(other) // second branch off the same base
	sa, sb := us.Append(extra), us.Append(other)

	rnd := rng.New(17)
	for _, pair := range []struct{ got, want *ModelUtility }{{a, sa}, {b, sb}, {u, us}} {
		n := pair.got.N()
		for rep := 0; rep < 10; rep++ {
			s := bitset.New(n)
			for i := 0; i < n; i++ {
				if rnd.Intn(2) == 0 {
					s.Add(i)
				}
			}
			if got, want := pair.got.Value(s), pair.want.Value(s); got != want {
				t.Fatalf("branched utility diverged: %v vs %v", got, want)
			}
		}
	}
}

func TestKernelMemoryBytes(t *testing.T) {
	u, us := kernelPair(t, 20, 10, 3, 5, 0)
	if got := u.KernelMemoryBytes(); got < 20*10*8 {
		t.Fatalf("KernelMemoryBytes = %d, want ≥ %d", got, 20*10*8)
	}
	if got := us.KernelMemoryBytes(); got != 0 {
		t.Fatalf("scratch utility reports %d kernel bytes, want 0", got)
	}
	if got := NewModelUtility(u.Train(), u.Test(), ml.NaiveBayes{}).KernelMemoryBytes(); got != 0 {
		t.Fatalf("non-KNN utility reports %d kernel bytes, want 0", got)
	}
}
