package utility

import (
	"sync"
	"testing"
	"time"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
)

func fixture(n int) (*dataset.Dataset, *dataset.Dataset) {
	d := dataset.IrisLike(rng.New(3), n+30)
	d.Standardize()
	idxTrain := make([]int, n)
	idxTest := make([]int, 30)
	for i := range idxTrain {
		idxTrain[i] = i
	}
	for i := range idxTest {
		idxTest[i] = n + i
	}
	return d.Subset(idxTrain), d.Subset(idxTest)
}

func TestNPlayersAreTrainingPoints(t *testing.T) {
	train, test := fixture(20)
	u := NewModelUtility(train, test, ml.KNN{K: 3})
	if u.N() != 20 {
		t.Fatalf("N = %d, want 20", u.N())
	}
}

func TestEmptyCoalitionValue(t *testing.T) {
	train, test := fixture(10)
	u := NewModelUtility(train, test, ml.KNN{K: 3})
	want := ml.Accuracy(ml.Constant{Label: 0}, test)
	if got := u.Value(bitset.New(10)); got != want {
		t.Fatalf("U(∅) = %v, want %v", got, want)
	}
	u2 := NewModelUtility(train, test, ml.KNN{K: 3}, WithEmptyValue(0.123))
	if got := u2.Value(bitset.New(10)); got != 0.123 {
		t.Fatalf("U(∅) with override = %v", got)
	}
	if u.Fits() != 0 {
		t.Fatal("empty coalitions should not count as fits")
	}
}

func TestValueDeterministicPerCoalition(t *testing.T) {
	train, test := fixture(15)
	u := NewModelUtility(train, test, ml.SVM{Epochs: 5})
	s := bitset.FromIndices(15, 0, 3, 7, 11)
	v1 := u.Value(s)
	v2 := u.Value(s)
	if v1 != v2 {
		t.Fatalf("U(S) not deterministic: %v vs %v", v1, v2)
	}
}

func TestValueInRange(t *testing.T) {
	train, test := fixture(12)
	u := NewModelUtility(train, test, ml.SVM{Epochs: 5})
	full := bitset.Full(12)
	v := u.Value(full)
	if v < 0 || v > 1 {
		t.Fatalf("accuracy utility out of [0,1]: %v", v)
	}
	if v < 0.5 {
		t.Errorf("full-data accuracy suspiciously low: %v", v)
	}
}

func TestFitsCounter(t *testing.T) {
	train, test := fixture(8)
	u := NewModelUtility(train, test, ml.KNN{K: 1})
	u.Value(bitset.FromIndices(8, 0))
	u.Value(bitset.FromIndices(8, 0, 1))
	if u.Fits() != 2 {
		t.Fatalf("Fits = %d, want 2", u.Fits())
	}
	u.ResetFits()
	if u.Fits() != 0 {
		t.Fatal("ResetFits did not zero")
	}
}

func TestSimulatedLatency(t *testing.T) {
	train, test := fixture(6)
	u := NewModelUtility(train, test, ml.KNN{K: 1}, WithSimulatedLatency(20*time.Millisecond))
	start := time.Now()
	u.Value(bitset.FromIndices(6, 0, 1))
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Fatalf("latency not applied: %v", took)
	}
}

func TestCloningIsolation(t *testing.T) {
	train, test := fixture(6)
	u := NewModelUtility(train, test, ml.KNN{K: 1})
	before := u.Value(bitset.Full(6))
	train.Points[0].Y = (train.Points[0].Y + 1) % 3 // mutate caller's copy
	test.Points[0].Y = (test.Points[0].Y + 1) % 3
	if after := u.Value(bitset.Full(6)); after != before {
		t.Fatal("ModelUtility shares storage with caller datasets")
	}
}

func TestAppendCreatesNPlusView(t *testing.T) {
	train, test := fixture(10)
	u := NewModelUtility(train, test, ml.KNN{K: 3})
	p := dataset.Point{X: []float64{0, 0, 0, 0}, Y: 1}
	up := u.Append(p)
	if up.N() != 11 || u.N() != 10 {
		t.Fatalf("Append sizes: got %d/%d", up.N(), u.N())
	}
	// Utilities of coalitions not containing the new point must agree.
	s10 := bitset.FromIndices(10, 2, 5)
	s11 := bitset.FromIndices(11, 2, 5)
	if u.Value(s10) != up.Value(s11) {
		t.Fatal("Append changed utilities of old coalitions")
	}
}

func TestBatchAppendMatchesChained(t *testing.T) {
	// The batch update pipeline leans on one multi-point Append being
	// bit-identical to chaining single-point Appends and to a fresh build:
	// one kernel fill, one test-set clone, same utilities everywhere.
	train, test := fixture(12)
	pts := make([]dataset.Point, 4)
	for j := range pts {
		x := make([]float64, train.Dim())
		for i := range x {
			x[i] = 0.3*float64(i) - 0.2*float64(j+1)
		}
		pts[j] = dataset.Point{X: x, Y: j % 3}
	}
	u := NewModelUtility(train, test, ml.KNN{K: 3}, WithWorkers(2))
	batch := u.Append(pts...)
	chained := u
	for _, p := range pts {
		chained = chained.Append(p)
	}
	fresh := NewModelUtility(train.Append(pts...), test, ml.KNN{K: 3})
	if batch.N() != 16 || chained.N() != 16 || fresh.N() != 16 {
		t.Fatalf("sizes: batch %d chained %d fresh %d, want 16", batch.N(), chained.N(), fresh.N())
	}
	for _, s := range []bitset.Set{
		bitset.New(16),
		bitset.FromIndices(16, 0, 3, 7),
		bitset.FromIndices(16, 12, 13, 14, 15),
		bitset.FromIndices(16, 1, 5, 12, 15),
		bitset.Full(16),
	} {
		vb, vc, vf := batch.Value(s), chained.Value(s), fresh.Value(s)
		if vb != vc || vb != vf {
			t.Fatalf("U(%v): batch %v chained %v fresh %v", s, vb, vc, vf)
		}
	}
}

func TestRemoveCreatesNMinusView(t *testing.T) {
	train, test := fixture(10)
	u := NewModelUtility(train, test, ml.KNN{K: 3})
	um := u.Remove(4)
	if um.N() != 9 {
		t.Fatalf("Remove size = %d", um.N())
	}
	// Coalition {0,1} exists in both numberings (indices < 4 unaffected).
	if u.Value(bitset.FromIndices(10, 0, 1)) != um.Value(bitset.FromIndices(9, 0, 1)) {
		t.Fatal("Remove changed utilities of unaffected coalitions")
	}
}

func TestConcurrentValueCalls(t *testing.T) {
	train, test := fixture(12)
	u := NewModelUtility(train, test, ml.KNN{K: 3})
	var wg sync.WaitGroup
	vals := make([]float64, 8)
	for w := range vals {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals[w] = u.Value(bitset.FromIndices(12, 0, 1, 2, 3))
		}(w)
	}
	wg.Wait()
	for _, v := range vals[1:] {
		if v != vals[0] {
			t.Fatal("concurrent Value calls disagree")
		}
	}
}
