// Package plan picks the cheapest valid update algorithm for a valuation
// session, replacing hand-selection and ErrStaleStores-style failures with
// an automatic decision.
//
// The decision logic follows the economics the paper establishes and the
// cost hints internal/core attaches to each artifact:
//
//   - The YN-NN / YNN-NNN arrays (Algorithms 6–7) recover exact
//     post-deletion values with ZERO utility evaluations — when they are
//     fresh and cover the request, nothing can beat them.
//   - Retained pivot permutations (Algorithm 3) reuse the initialisation
//     pass's prefix evaluations for additions, halving the work per added
//     point relative to a fresh pass.
//   - The delta estimators (Algorithms 5, 8) need no retained artifacts
//     and converge with far fewer samples than recomputation (Theorems
//     2–4), so they are the default incremental path.
//   - When an update replaces more than half the player set, the
//     differential framing loses its advantage and per-point sequential
//     application costs more than one from-scratch pass: fall back to
//     Monte Carlo recomputation.
//
// Every decision carries a human-readable trace — which artifacts were
// considered, the predicted costs, and why the losers lost — which the
// session records in its journal.
package plan

import (
	"fmt"

	"dynshap/internal/core"
)

// Op is the kind of update being planned.
type Op int

const (
	// OpAdd appends points to the valued set.
	OpAdd Op = iota
	// OpDelete removes points from the valued set.
	OpDelete
)

// String returns the operation's journal name.
func (o Op) String() string {
	if o == OpAdd {
		return "add"
	}
	return "delete"
}

// Choice is the planner's selected algorithm family. The session maps it
// onto its public Algorithm enum; keeping the planner's vocabulary
// separate avoids an import cycle with the facade.
type Choice int

const (
	// ChoiceExact is the YN-NN / YNN-NNN merge (deletions only).
	ChoiceExact Choice = iota
	// ChoicePivotSame replays the retained permutations (additions only).
	ChoicePivotSame
	// ChoiceDelta estimates the change from differential contributions.
	ChoiceDelta
	// ChoiceMonteCarlo recomputes from scratch.
	ChoiceMonteCarlo
	// ChoiceDeltaBatch runs the batched delta walk: one permutation pass
	// shared by all pending points (additions with k > 1 only).
	ChoiceDeltaBatch
	// ChoicePivotBatch replays the retained permutations once for the
	// whole batch (additions with k > 1 only).
	ChoicePivotBatch
	// ChoiceExactKNN maintains the exact closed-form k-NN Shapley values
	// (Jia et al.) through the update — available whenever the session
	// keeps the sorted-neighbour estimator (soft k-NN utility with a
	// distance kernel). Exact for any update shape at zero model
	// trainings, so nothing sampled can beat it.
	ChoiceExactKNN
	// ChoiceDeltaDeleteBatch runs the batched delta deletion: one
	// permutation pass over the common survivors prices all departing
	// points (deletions with k > 1 only).
	ChoiceDeltaDeleteBatch
	// ChoicePivotDeleteBatch evolves the retained permutations through
	// the removals and rebuilds SV/LSV with one walk — the only deletion
	// path that PRESERVES the pivot artifact for later additions.
	ChoicePivotDeleteBatch
)

// String returns the paper's name for the chosen family.
func (c Choice) String() string {
	switch c {
	case ChoiceExact:
		return "YN-NN"
	case ChoicePivotSame:
		return "Pivot-s"
	case ChoiceDelta:
		return "Delta"
	case ChoiceDeltaBatch, ChoiceDeltaDeleteBatch:
		return "Delta-batch"
	case ChoicePivotBatch, ChoicePivotDeleteBatch:
		return "Pivot-s-batch"
	case ChoiceExactKNN:
		return "Exact-KNN"
	default:
		return "MC"
	}
}

// Request describes the update to plan.
type Request struct {
	// Op is the update kind.
	Op Op
	// Count is the number of points being added or deleted.
	Count int
	// Indices holds the deletion indices (OpDelete only), in the current
	// numbering.
	Indices []int
	// Coalesced marks a request assembled by the write-coalescing drainer:
	// Count points from independent submitters sharing one admission
	// window. Purely informational — the planner prices the window like
	// any other batch — but the trace records it so journal readers see
	// why a multi-point add exists without a multi-point caller.
	Coalesced bool
}

// Artifacts describes the dynamic-update state the session retained. Nil
// fields mean the artifact was never built or has been invalidated.
type Artifacts struct {
	// N is the current player count.
	N int
	// ExactKNN reports whether the session maintains the exact
	// closed-form k-NN estimator (soft k-NN utility backed by a distance
	// kernel). Unlike the deletion arrays it never goes stale — the
	// sorted orders are maintained through every update — so when it is
	// present the planner routes ALL updates onto it.
	ExactKNN bool
	// TestPoints is the held-out test count m, the exact estimator's
	// per-update cost multiplier (meaningful only with ExactKNN).
	TestPoints int
	// StoresFresh reports whether the deletion arrays still match the
	// current player set (any update since the last fill stales them).
	StoresFresh bool
	// Heads is the number of EXTRA semivalue heads the session maintains
	// beyond Shapley (Banzhaf, Beta(α,β), Absolute Shapley). Heads ride the
	// sampled walks for array-op cost only, but they disqualify the paths
	// that cannot produce them: the exact k-NN fast path and the pivot
	// replays are Shapley-specific, and the multi-deletion merge recovers
	// only Shapley.
	Heads int
	// HeadsLinear reports whether every extra head is linear in the
	// marginals (no |·| transform). Only linear heads can be recovered from
	// the YN-NN deletion arrays.
	HeadsLinear bool
	// Pivot is the maintained pivot state (survives additions, dies on
	// deletion).
	Pivot *core.PivotState
	// Deletion is the YN-NN store, when WithTrackDeletions built one.
	Deletion *core.DeletionStore
	// Multi is the YNN-NNN store, when WithMultiDelete built one.
	Multi *core.MultiDeletionStore
}

// Budget is the sampling budget the session grants an update.
type Budget struct {
	// UpdateTau is the per-pass permutation budget.
	UpdateTau int
	// TargetEps and TargetDelta are the adaptive early-termination
	// parameters (0 when disabled); they shrink the effective τ but not
	// the relative ordering of the paths, so the planner only reports
	// them in its trace.
	TargetEps, TargetDelta float64
	// Truncation is the stratified-truncated walk length configured on the
	// session's engine (0 when off). Like the adaptive parameters it
	// scales every sampled path by the same factor — walk length t instead
	// of n — so it shows up in the Monte Carlo cost hint and the trace,
	// never in the path ordering.
	Truncation int
}

// Decision is the planner's answer.
type Decision struct {
	// Choice is the selected algorithm family.
	Choice Choice
	// Cost is the predicted cost of the selected path.
	Cost core.Cost
	// Trace explains the decision: artifacts seen, costs predicted,
	// rejections reasoned. Recorded verbatim in the session journal.
	Trace []string
}

// Plan selects the cheapest valid algorithm for the request. It assumes
// the session is initialised and the request validated (non-empty, indices
// in range).
func Plan(req Request, art Artifacts, b Budget) Decision {
	var trace []string
	note := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	if b.TargetEps > 0 {
		note("adaptive budget: τ≤%d with (ε=%g, δ=%g) early stop", b.UpdateTau, b.TargetEps, b.TargetDelta)
	}
	if b.Truncation > 0 {
		note("stratified truncation active: recomputation walks stop at t=%d positions (arXiv 2311.05346)", b.Truncation)
	}
	if req.Coalesced {
		note("coalesced admission window: %d point(s) from independent submitters batched by the write pipeline", req.Count)
	}
	// Recomputation honours the engine's truncation; the incremental paths
	// walk full permutations by construction.
	mcCost := func(n int) core.Cost {
		if b.Truncation > 0 {
			c := core.StratifiedMCCost(n, b.Truncation, b.UpdateTau)
			return core.Cost{Evaluations: c.Evaluations}
		}
		return core.MonteCarloCost(n, b.UpdateTau)
	}

	done := func(c Choice, cost core.Cost, why string) Decision {
		note("chose %s (%s): %s", c, cost, why)
		return Decision{Choice: c, Cost: cost, Trace: trace}
	}
	// Sampled paths price the extra heads from the same walks; fold the
	// bookkeeping into their cost so the trace shows what riding along
	// actually adds (array ops only, never evaluations).
	withHeads := func(cost core.Cost, n int) core.Cost {
		if art.Heads > 0 {
			cost = cost.Plus(core.HeadFillCost(art.Heads, n, b.UpdateTau))
		}
		return cost
	}
	if art.Heads > 0 {
		note("%d extra semivalue head(s) ride every sampled pass (+%s bookkeeping, zero extra evaluations)",
			art.Heads, core.HeadFillCost(art.Heads, art.N, b.UpdateTau))
	}

	// The exact estimator dominates every sampled path outright: it keeps
	// the values EXACT through any update shape and spends zero utility
	// evaluations, only array maintenance. Record the sampled
	// alternative's price so the journal shows what the closed form saved.
	// It is Shapley-only, though — a session carrying extra heads must take
	// a sampled path so the heads keep moving with the data.
	if art.ExactKNN && art.Heads > 0 {
		note("exact k-NN fast path available but Shapley-only; %d configured semivalue head(s) require a sampled pass", art.Heads)
	}
	if art.ExactKNN && art.Heads == 0 {
		var alt core.Cost
		var altName string
		if req.Op == OpDelete && req.Count > 1 {
			altName, alt = "batched Delta deletion", core.BatchDeltaDeleteCost(art.N, req.Count, b.UpdateTau)
		} else if req.Op == OpDelete {
			altName, alt = "Delta deletion", core.DeltaDeleteCost(art.N, b.UpdateTau)
		} else if req.Count > 1 {
			altName, alt = "batched Delta addition", core.BatchDeltaAddCost(art.N, req.Count, b.UpdateTau)
		} else {
			altName, alt = "Delta addition", core.DeltaAddCost(art.N, b.UpdateTau)
		}
		note("exact k-NN estimator maintained (soft utility + distance kernel); sampled alternative %s would spend %s", altName, alt)
		return done(ChoiceExactKNN, core.ExactKNNCost(art.N, art.TestPoints, req.Count),
			"closed-form sorted-neighbour recurrence (Jia et al.) keeps values exact with zero model trainings")
	}

	switch req.Op {
	case OpDelete:
		if req.Count == 1 && art.Deletion != nil {
			if !art.StoresFresh {
				note("YN-NN arrays present but stale (an update ran since the fill); exact merge unavailable")
			} else if art.Heads > 0 && !art.HeadsLinear {
				note("YN-NN arrays fresh but an absolute-transform head is configured; |·| does not distribute over the stored sums, so the merge cannot recover it")
			} else {
				why := "YN-NN arrays fresh; exact recovery with zero model trainings"
				if art.Heads > 0 {
					why += fmt.Sprintf("; %d linear head(s) re-priced from the same arrays", art.Heads)
				}
				return done(ChoiceExact, art.Deletion.MergeCost(), why)
			}
		}
		if req.Count > 1 && art.Multi != nil {
			if !art.StoresFresh {
				note("YNN-NNN arrays present but stale; exact merge unavailable")
			} else if art.Heads > 0 {
				note("YNN-NNN merge is Shapley-only; %d configured head(s) force the sampled path", art.Heads)
			} else if !art.Multi.Covers(req.Indices...) {
				note("YNN-NNN arrays fresh but tuple %v outside the prepared d=%d candidate subsets",
					req.Indices, art.Multi.D())
			} else {
				return done(ChoiceExact, art.Multi.MergeCost(),
					"YNN-NNN arrays fresh and cover the tuple; exact recovery with zero model trainings")
			}
		}
		if art.Pivot != nil && art.Pivot.N() == art.N && art.Pivot.HasPermutations() && !bulk(req.Count, art.N) {
			if art.Heads > 0 {
				note("pivot deletion is Shapley-specific (full-walk SV/LSV rebuild); %d configured head(s) force the delta path", art.Heads)
			} else {
				cost := art.Pivot.DeleteSameBatchCost(req.Count)
				note("retained permutations survive the removal: one evolved-permutation walk (%s) replaces %d delta pass(es) (%s) and keeps the pivot artifact alive for later additions",
					cost, req.Count, core.BatchDeltaDeleteCost(art.N, req.Count, b.UpdateTau))
				return done(ChoicePivotDeleteBatch, cost,
					"stored permutations evolve through the removals (subsequences of uniform orders stay uniform); one final walk rebuilds SV/LSV")
			}
		} else if art.Pivot != nil && art.Pivot.N() == art.N && art.Pivot.HasPermutations() {
			note("retained permutations present but the removal is bulk; recomputation matches the evolved-walk cost without the bookkeeping")
		}
		if bulk(req.Count, art.N) {
			return done(ChoiceMonteCarlo, withHeads(mcCost(art.N-req.Count), art.N-req.Count),
				fmt.Sprintf("deleting %d of %d players; differential updates lose their edge past half the set", req.Count, art.N))
		}
		if req.Count > 1 && art.Heads > 0 {
			note("batched delta deletion is Shapley-only; %d configured head(s) keep the %d removals on sequential delta passes", art.Heads, req.Count)
		} else if req.Count > 1 {
			cost := core.BatchDeltaDeleteCost(art.N, req.Count, b.UpdateTau)
			note("batch of %d: shared common-survivor chain cuts the walk to %s from the sequential loop's %s",
				req.Count, cost, core.DeltaDeleteCost(art.N, b.UpdateTau).Times(req.Count))
			return done(ChoiceDeltaDeleteBatch, cost,
				"batched delta deletion (Algorithm 8, one permutation pass for all departing points)")
		}
		cost := withHeads(core.DeltaDeleteCost(art.N, b.UpdateTau).Times(req.Count), art.N)
		return done(ChoiceDelta, cost,
			"no exact artifact applies; delta deletion (Algorithm 8) converges at small τ (Theorem 4)")

	default: // OpAdd
		if art.Pivot != nil && art.Pivot.N() == art.N && art.Heads > 0 {
			note("pivot replays are Shapley-specific (suffix walks + LSV recurrence); %d configured head(s) force the delta path", art.Heads)
		} else if art.Pivot != nil && art.Pivot.N() == art.N {
			if art.Pivot.HasPermutations() {
				if req.Count > 1 {
					cost := art.Pivot.AddSameBatchCost(req.Count)
					note("batch of %d with retained permutations: one stored-permutation pass (%s) replaces %d sequential Pivot-s replays (%s)",
						req.Count, cost, req.Count, art.Pivot.AddSameCost().Times(req.Count))
					return done(ChoicePivotBatch, cost,
						"retained permutations walked once for the whole batch; per-point accumulators stripe across workers")
				}
				return done(ChoicePivotSame, art.Pivot.AddSameCost().Times(req.Count),
					"retained permutations; Pivot-s reuses every pre-pivot prefix evaluation (Algorithm 3)")
			}
			note("pivot LSV present without retained permutations; preferring Delta over Pivot-d's decaying LSV reuse")
		} else if art.Pivot != nil {
			note("pivot state sized for %d players, set has %d; unusable", art.Pivot.N(), art.N)
		}
		if bulk(req.Count, art.N) {
			return done(ChoiceMonteCarlo, withHeads(mcCost(art.N+req.Count), art.N+req.Count),
				fmt.Sprintf("adding %d to %d players; recomputation beats %d sequential delta passes", req.Count, art.N, req.Count))
		}
		if req.Count > 1 {
			cost := withHeads(core.BatchDeltaAddCost(art.N, req.Count, b.UpdateTau), art.N)
			note("batch of %d: shared no-pivot chain cuts the walk to %s from the sequential loop's %s",
				req.Count, cost, core.DeltaAddCost(art.N, b.UpdateTau).Times(req.Count))
			return done(ChoiceDeltaBatch, cost,
				"batched delta walk (Algorithm 5, one permutation pass for all pending points)")
		}
		cost := withHeads(core.DeltaAddCost(art.N, b.UpdateTau).Times(req.Count), art.N)
		return done(ChoiceDelta, cost,
			"no reusable addition artifact; delta addition (Algorithm 5) converges at small τ (Theorem 2)")
	}
}

// bulk reports whether the update touches more than half the player set —
// the regime where sequential incremental application stops paying for
// itself.
func bulk(count, n int) bool {
	if n <= 0 {
		return true
	}
	return 2*count > n
}
