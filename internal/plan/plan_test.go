package plan

import (
	"strings"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/core"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

func planGame(n int) game.Game {
	return game.Func{Players: n, U: func(s bitset.Set) float64 {
		return float64(s.Len()) / float64(n+1)
	}}
}

func artifacts(t *testing.T, n int, keepPerms, trackDel bool, multiD int, cands []int) Artifacts {
	t.Helper()
	art := Artifacts{N: n, StoresFresh: true}
	art.Pivot = core.PivotInit(planGame(n), 50, keepPerms, rng.New(1))
	if trackDel {
		art.Deletion = core.PreprocessDeletion(planGame(n), 50, rng.New(1))
	}
	if multiD > 0 {
		ms, err := core.PreprocessMultiDeletion(planGame(n), multiD, cands, 50, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		art.Multi = ms
	}
	return art
}

func TestPlanDeleteExactWhenFresh(t *testing.T) {
	art := artifacts(t, 10, false, true, 0, nil)
	d := Plan(Request{Op: OpDelete, Count: 1, Indices: []int{3}}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceExact {
		t.Fatalf("choice = %v, want exact", d.Choice)
	}
	if d.Cost.Evaluations != 0 {
		t.Fatalf("exact path predicts %d evaluations", d.Cost.Evaluations)
	}
	if len(d.Trace) == 0 || !strings.Contains(strings.Join(d.Trace, " "), "YN-NN") {
		t.Fatalf("trace missing rationale: %v", d.Trace)
	}
}

func TestPlanDeleteDeltaWhenStale(t *testing.T) {
	art := artifacts(t, 10, false, true, 0, nil)
	art.StoresFresh = false
	d := Plan(Request{Op: OpDelete, Count: 1, Indices: []int{3}}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("choice = %v, want delta", d.Choice)
	}
	if !strings.Contains(strings.Join(d.Trace, " "), "stale") {
		t.Fatalf("trace should mention staleness: %v", d.Trace)
	}
}

func TestPlanDeleteDeltaWithoutArrays(t *testing.T) {
	art := Artifacts{N: 10, StoresFresh: true}
	d := Plan(Request{Op: OpDelete, Count: 1, Indices: []int{0}}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("choice = %v, want delta", d.Choice)
	}
}

func TestPlanMultiDelete(t *testing.T) {
	art := artifacts(t, 10, false, true, 2, []int{1, 3, 5})
	covered := Plan(Request{Op: OpDelete, Count: 2, Indices: []int{5, 1}}, art, Budget{UpdateTau: 100})
	if covered.Choice != ChoiceExact {
		t.Fatalf("covered tuple: choice = %v, want exact", covered.Choice)
	}
	uncovered := Plan(Request{Op: OpDelete, Count: 2, Indices: []int{0, 2}}, art, Budget{UpdateTau: 100})
	if uncovered.Choice != ChoiceDeltaDeleteBatch {
		t.Fatalf("uncovered tuple: choice = %v, want Delta-batch", uncovered.Choice)
	}
	if !strings.Contains(strings.Join(uncovered.Trace, " "), "candidate") {
		t.Fatalf("trace should explain coverage miss: %v", uncovered.Trace)
	}
}

func TestPlanDeleteBatch(t *testing.T) {
	// Multi-point deletes without artifacts take the batched delta walk,
	// and its predicted cost must undercut k sequential delta passes.
	art := Artifacts{N: 20}
	d := Plan(Request{Op: OpDelete, Count: 4, Indices: []int{0, 5, 9, 13}}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDeltaDeleteBatch {
		t.Fatalf("choice = %v, want Delta-batch", d.Choice)
	}
	seq := core.DeltaDeleteCost(20, 100).Times(4)
	if d.Cost.Evaluations >= seq.Evaluations {
		t.Fatalf("batch cost %d not below sequential %d", d.Cost.Evaluations, seq.Evaluations)
	}
	if !strings.Contains(strings.Join(d.Trace, " "), "batch") {
		t.Fatalf("trace should explain the batching: %v", d.Trace)
	}

	// Heads disqualify the Shapley-only batched walk: sequential delta
	// passes carry them instead.
	withHeads := Artifacts{N: 20, Heads: 2, HeadsLinear: true}
	d = Plan(Request{Op: OpDelete, Count: 4, Indices: []int{0, 5, 9, 13}}, withHeads, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("with heads: choice = %v, want delta", d.Choice)
	}
	if !strings.Contains(strings.Join(d.Trace, " "), "Shapley-only") {
		t.Fatalf("trace should explain the head rejection: %v", d.Trace)
	}
}

func TestPlanDeletePivotPreservesArtifact(t *testing.T) {
	// Retained permutations route deletions onto the evolved-walk path —
	// the only one that keeps the pivot artifact alive for later adds.
	withPerms := artifacts(t, 10, true, false, 0, nil)
	for _, req := range []Request{
		{Op: OpDelete, Count: 1, Indices: []int{3}},
		{Op: OpDelete, Count: 3, Indices: []int{3, 7, 0}},
	} {
		d := Plan(req, withPerms, Budget{UpdateTau: 100})
		if d.Choice != ChoicePivotDeleteBatch {
			t.Fatalf("count=%d: choice = %v, want Pivot-s-batch", req.Count, d.Choice)
		}
		if got := withPerms.Pivot.DeleteSameBatchCost(req.Count); d.Cost != got {
			t.Fatalf("count=%d: cost = %v, want %v", req.Count, d.Cost, got)
		}
		if !strings.Contains(strings.Join(d.Trace, " "), "pivot artifact alive") {
			t.Fatalf("trace should note the artifact preservation: %v", d.Trace)
		}
	}

	// A fresh YN-NN array still beats it: zero evaluations wins.
	withBoth := artifacts(t, 10, true, true, 0, nil)
	d := Plan(Request{Op: OpDelete, Count: 1, Indices: []int{3}}, withBoth, Budget{UpdateTau: 100})
	if d.Choice != ChoiceExact {
		t.Fatalf("with fresh arrays: choice = %v, want exact", d.Choice)
	}

	// Without permutations there is nothing to evolve.
	noPerms := artifacts(t, 10, false, false, 0, nil)
	d = Plan(Request{Op: OpDelete, Count: 1, Indices: []int{3}}, noPerms, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("without perms: choice = %v, want delta", d.Choice)
	}

	// Heads force the sampled path (the SV/LSV rebuild is Shapley-only).
	headed := artifacts(t, 10, true, false, 0, nil)
	headed.Heads, headed.HeadsLinear = 2, true
	d = Plan(Request{Op: OpDelete, Count: 1, Indices: []int{3}}, headed, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("with heads: choice = %v, want delta", d.Choice)
	}

	// Bulk removals fall back to recomputation even with a pivot.
	d = Plan(Request{Op: OpDelete, Count: 6, Indices: []int{0, 1, 2, 3, 4, 5}}, withPerms, Budget{UpdateTau: 100})
	if d.Choice != ChoiceMonteCarlo {
		t.Fatalf("bulk with perms: choice = %v, want MC", d.Choice)
	}
}

func TestPlanBulkFallsBackToMC(t *testing.T) {
	art := Artifacts{N: 10, StoresFresh: true}
	del := Plan(Request{Op: OpDelete, Count: 6, Indices: []int{0, 1, 2, 3, 4, 5}}, art, Budget{UpdateTau: 100})
	if del.Choice != ChoiceMonteCarlo {
		t.Fatalf("bulk delete: choice = %v, want MC", del.Choice)
	}
	add := Plan(Request{Op: OpAdd, Count: 6}, art, Budget{UpdateTau: 100})
	if add.Choice != ChoiceMonteCarlo {
		t.Fatalf("bulk add: choice = %v, want MC", add.Choice)
	}
}

func TestPlanAddPivotFamily(t *testing.T) {
	withPerms := artifacts(t, 10, true, false, 0, nil)
	d := Plan(Request{Op: OpAdd, Count: 1}, withPerms, Budget{UpdateTau: 100})
	if d.Choice != ChoicePivotSame {
		t.Fatalf("choice = %v, want Pivot-s", d.Choice)
	}
	noPerms := artifacts(t, 10, false, false, 0, nil)
	d = Plan(Request{Op: OpAdd, Count: 1}, noPerms, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("without perms: choice = %v, want delta", d.Choice)
	}
	// A pivot sized for a different player count is unusable.
	resized := artifacts(t, 10, true, false, 0, nil)
	resized.N = 12
	d = Plan(Request{Op: OpAdd, Count: 1}, resized, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("mis-sized pivot: choice = %v, want delta", d.Choice)
	}
}

func TestPlanAddBatch(t *testing.T) {
	// Multi-point adds without artifacts take the batched delta walk, and
	// its predicted cost must undercut k sequential delta passes.
	art := Artifacts{N: 20}
	d := Plan(Request{Op: OpAdd, Count: 4}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDeltaBatch {
		t.Fatalf("choice = %v, want Delta-batch", d.Choice)
	}
	seq := core.DeltaAddCost(20, 100).Times(4)
	if d.Cost.Evaluations >= seq.Evaluations {
		t.Fatalf("batch cost %d not below sequential %d", d.Cost.Evaluations, seq.Evaluations)
	}
	if !strings.Contains(strings.Join(d.Trace, " "), "batch") {
		t.Fatalf("trace should explain the batching: %v", d.Trace)
	}

	// With retained permutations the whole batch rides one stored-perm pass.
	withPerms := artifacts(t, 20, true, false, 0, nil)
	d = Plan(Request{Op: OpAdd, Count: 4}, withPerms, Budget{UpdateTau: 100})
	if d.Choice != ChoicePivotBatch {
		t.Fatalf("with perms: choice = %v, want Pivot-s-batch", d.Choice)
	}

	// Bulk additions still fall back to recomputation.
	d = Plan(Request{Op: OpAdd, Count: 11}, Artifacts{N: 20}, Budget{UpdateTau: 100})
	if d.Choice != ChoiceMonteCarlo {
		t.Fatalf("bulk add: choice = %v, want MC", d.Choice)
	}
}

func TestPlanExactKNNDominates(t *testing.T) {
	// With the exact estimator maintained, every update shape routes onto
	// it — even when every sampled artifact is also present and fresh.
	art := artifacts(t, 10, true, true, 2, []int{1, 3, 5})
	art.ExactKNN = true
	art.TestPoints = 4
	for _, req := range []Request{
		{Op: OpAdd, Count: 1},
		{Op: OpAdd, Count: 4},
		{Op: OpAdd, Count: 9}, // bulk: MC would win among sampled paths
		{Op: OpDelete, Count: 1, Indices: []int{3}},
		{Op: OpDelete, Count: 2, Indices: []int{5, 1}},
	} {
		d := Plan(req, art, Budget{UpdateTau: 100})
		if d.Choice != ChoiceExactKNN {
			t.Fatalf("%s count=%d: choice = %v, want Exact-KNN", req.Op, req.Count, d.Choice)
		}
		if d.Cost.Evaluations != 0 {
			t.Fatalf("%s count=%d: exact path predicts %d utility evaluations", req.Op, req.Count, d.Cost.Evaluations)
		}
		trace := strings.Join(d.Trace, " ")
		if !strings.Contains(trace, "sampled alternative") {
			t.Fatalf("trace should price the sampled alternative: %v", d.Trace)
		}
		if !strings.Contains(trace, "chose Exact-KNN") {
			t.Fatalf("trace should record the verdict: %v", d.Trace)
		}
	}

	// Without the estimator the same artifacts fall through to the
	// sampled decision tree.
	art.ExactKNN = false
	d := Plan(Request{Op: OpDelete, Count: 1, Indices: []int{3}}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceExact {
		t.Fatalf("without estimator: choice = %v, want YN-NN merge", d.Choice)
	}
}

func TestPlanTraceMentionsAdaptiveBudget(t *testing.T) {
	art := Artifacts{N: 10}
	d := Plan(Request{Op: OpAdd, Count: 1}, art, Budget{UpdateTau: 100, TargetEps: 0.01, TargetDelta: 0.05})
	if !strings.Contains(strings.Join(d.Trace, " "), "adaptive") {
		t.Fatalf("trace should mention the adaptive budget: %v", d.Trace)
	}
}

func TestOpAndChoiceStrings(t *testing.T) {
	if OpAdd.String() != "add" || OpDelete.String() != "delete" {
		t.Fatal("Op names wrong")
	}
	names := map[Choice]string{
		ChoiceExact: "YN-NN", ChoicePivotSame: "Pivot-s",
		ChoiceDelta: "Delta", ChoiceMonteCarlo: "MC",
		ChoiceDeltaBatch: "Delta-batch", ChoicePivotBatch: "Pivot-s-batch",
		ChoiceExactKNN:         "Exact-KNN",
		ChoiceDeltaDeleteBatch: "Delta-batch",
		ChoicePivotDeleteBatch: "Pivot-s-batch",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestPlanHeadsDisqualifyShapleyOnlyPaths(t *testing.T) {
	// Extra heads must force the sampled path off the exact k-NN fast path.
	art := Artifacts{N: 20, ExactKNN: true, TestPoints: 50, Heads: 3, HeadsLinear: true}
	d := Plan(Request{Op: OpAdd, Count: 1}, art, Budget{UpdateTau: 100})
	if d.Choice == ChoiceExactKNN {
		t.Fatalf("choice = %v; heads must disqualify the Shapley-only exact path", d.Choice)
	}
	if !strings.Contains(strings.Join(d.Trace, " "), "Shapley-only") {
		t.Fatalf("trace should explain the exact k-NN rejection: %v", d.Trace)
	}

	// Pivot replays are Shapley-specific too.
	art = artifacts(t, 10, true, false, 0, nil)
	art.Heads, art.HeadsLinear = 2, true
	d = Plan(Request{Op: OpAdd, Count: 1}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("choice = %v, want delta (pivot replay cannot carry heads)", d.Choice)
	}

	// The multi-deletion merge recovers only Shapley.
	art = artifacts(t, 10, false, false, 2, []int{1, 2, 3})
	art.Heads, art.HeadsLinear = 1, true
	d = Plan(Request{Op: OpDelete, Count: 2, Indices: []int{1, 2}}, art, Budget{UpdateTau: 100})
	if d.Choice == ChoiceExact {
		t.Fatalf("choice = %v; YNN-NNN merge is Shapley-only", d.Choice)
	}
}

func TestPlanHeadsKeepLinearDeletionMerge(t *testing.T) {
	// Linear heads CAN be recovered from the YN-NN arrays, so the exact
	// merge survives; an absolute-transform head kills it.
	art := artifacts(t, 10, false, true, 0, nil)
	art.Heads, art.HeadsLinear = 2, true
	d := Plan(Request{Op: OpDelete, Count: 1, Indices: []int{3}}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceExact {
		t.Fatalf("choice = %v, want exact (linear heads merge from the arrays)", d.Choice)
	}

	art.HeadsLinear = false
	d = Plan(Request{Op: OpDelete, Count: 1, Indices: []int{3}}, art, Budget{UpdateTau: 100})
	if d.Choice != ChoiceDelta {
		t.Fatalf("choice = %v, want delta (absolute head cannot merge)", d.Choice)
	}
	if !strings.Contains(strings.Join(d.Trace, " "), "absolute-transform") {
		t.Fatalf("trace should explain the abs rejection: %v", d.Trace)
	}
}

func TestPlanHeadsPriceBookkeeping(t *testing.T) {
	art := Artifacts{N: 12, Heads: 3, HeadsLinear: true}
	d := Plan(Request{Op: OpAdd, Count: 1}, art, Budget{UpdateTau: 100})
	base := core.DeltaAddCost(12, 100)
	want := base.Plus(core.HeadFillCost(3, 12, 100))
	if d.Cost != want {
		t.Fatalf("cost = %v, want %v (delta plus head fill)", d.Cost, want)
	}
	if !strings.Contains(strings.Join(d.Trace, " "), "head(s) ride") {
		t.Fatalf("trace should price the head fill: %v", d.Trace)
	}
}
