package bench

import (
	"fmt"
	"strings"

	"dynshap/internal/core"
	"dynshap/internal/rng"
)

// deleteTrial runs one repetition of a deletion experiment: shared init
// (filling the YN-NN / YNN-NNN arrays), benchmark on N⁻, then every
// contender. tauInit builds the precomputed state (benchmark quality, the
// broker's existing valuation); tau drives the online updates.
func (r *Runner) deleteTrial(n, numDel int, algos []string, tauInit, tau int, trial uint64) ([]measurement, error) {
	seed := r.cfg.Seed + 2000*trial
	sc := r.irisScenario(n, seed)
	// Deleted points are drawn from a small candidate pool, which also
	// bounds the multi-delete store's memory (see MultiDeletionStore docs).
	poolSize := numDel + 4
	if poolSize > n {
		poolSize = n
	}
	cands := rng.New(seed+7).Sample(n, poolSize)
	deleted := append([]int(nil), cands[:numDel]...)

	// Only build the utility arrays an algorithm in this run will consume.
	var opt core.InitOptions
	for _, a := range algos {
		if a == "YN-NN" && numDel == 1 {
			opt.TrackDeletions = true
		}
		if a == "YNN-NNN" && numDel > 1 {
			opt.MultiDelete = numDel
			opt.Candidates = cands
		}
	}
	prods, err := r.initialize(sc, opt, tauInit, seed+1)
	if err != nil {
		return nil, err
	}
	bench := r.benchmarkDelete(sc, deleted, r.cfg.BenchTauFactor*(n-numDel), seed+2)

	out := make([]measurement, 0, len(algos))
	for i, name := range algos {
		sv, m, err := r.runDelete(name, sc, prods, deleted, tau, seed+3+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if !m.na {
			m.mse = mseOverSurvivors(sv, bench, deleted)
		}
		out = append(out, m)
	}
	return out, nil
}

// mseOverSurvivors compares value vectors in original indexing, skipping
// deleted entries (which are zero by convention on both sides).
func mseOverSurvivors(estimate, benchmark []float64, deleted []int) float64 {
	gone := map[int]bool{}
	for _, p := range deleted {
		gone[p] = true
	}
	var s float64
	count := 0
	for i := range estimate {
		if gone[i] {
			continue
		}
		d := estimate[i] - benchmark[i]
		s += d * d
		count++
	}
	if count == 0 {
		return 0
	}
	return s / float64(count)
}

// deleteExperiment averages deleteTrial over the configured repetitions.
func (r *Runner) deleteExperiment(n, numDel int, algos []string) ([]measurement, error) {
	key := fmt.Sprintf("del/%d/%d/%s", n, numDel, strings.Join(algos, ","))
	if ms, ok := r.memo[key]; ok {
		return ms, nil
	}
	tau := r.cfg.TauFactor * n
	tauInit := r.cfg.BenchTauFactor * n
	per := make([][]measurement, 0, r.cfg.Trials)
	for t := 0; t < r.cfg.Trials; t++ {
		ms, err := r.deleteTrial(n, numDel, algos, tauInit, tau, uint64(t))
		if err != nil {
			return nil, err
		}
		per = append(per, ms)
	}
	out := averageMeasurements(per)
	r.memo[key] = out
	return out, nil
}

// tableDeleteOne reproduces Table VIII: MSEs of every contender deleting
// one point at τ = 20n.
func (r *Runner) tableDeleteOne() (*Table, error) { return r.deleteMSETable(1, deleteAlgorithms) }

// tableDeleteTwo reproduces Table X, with YNN-NNN in place of YN-NN.
func (r *Runner) tableDeleteTwo() (*Table, error) {
	algos := []string{"MC", "TMC", "YNN-NNN", "Delta", "KNN", "KNN+"}
	return r.deleteMSETable(2, algos)
}

func (r *Runner) deleteMSETable(numDel int, algos []string) (*Table, error) {
	ms, err := r.deleteExperiment(r.cfg.N, numDel, algos)
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: append([]string{}, algos...)}
	row := make([]string, len(ms))
	for i, m := range ms {
		if m.na {
			row[i] = "N/A"
		} else {
			row[i] = sci(m.mse)
		}
	}
	t.Rows = [][]string{row}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d, τ=%d·n, benchmark τ=%d·n, %d trial(s)", r.cfg.N, r.cfg.TauFactor, r.cfg.BenchTauFactor, r.cfg.Trials),
		"YN-NN recovers values from precomputed arrays; its residual MSE is the benchmark's own sampling noise",
		fillStatsNote(r.lastFill))
	if note := pValueNote(ms); note != "" {
		t.Notes = append(t.Notes, note)
	}
	return t, nil
}

// fillStatsNote renders the permutation-engine stats of the last shared
// initialisation pass (the array fill behind YN-NN / YNN-NNN recovery).
func fillStatsNote(st core.EngineStats) string {
	note := fmt.Sprintf("array fill: %d/%d permutations on %d worker(s)",
		st.Issued, st.Budget, st.Workers)
	if st.EarlyStop {
		note += fmt.Sprintf(", stopped early at bound %.3g", st.Bound)
	}
	if tp := st.Throughput(); tp > 0 {
		note += fmt.Sprintf(", %.3g cell updates/s", tp)
	}
	return note
}

// tableMemory reproduces Table IX: memory consumption of the YN-NN arrays
// across dataset sizes.
func (r *Runner) tableMemory() (*Table, error) {
	t := &Table{Columns: []string{"n"}, Rows: [][]string{{"cost (MB)"}}}
	for _, n := range r.cfg.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", n))
		ds := core.NewDeletionStore(n)
		mb := float64(ds.MemoryBytes()) / (1 << 20)
		t.Rows[0] = append(t.Rows[0], fmt.Sprintf("%.6f", mb))
	}
	t.Notes = append(t.Notes, "two dense n×n×(n+1) float64 arrays; paper reports 15.25 MB at n=100")
	return t, nil
}

// figureDeleteOneMSE reproduces Figure 5(a).
func (r *Runner) figureDeleteOneMSE() (*Table, error) {
	return r.deleteSweep(1, deleteAlgorithms, func(m measurement) string { return sci(m.mse) }, "MSE")
}

// figureDeleteOneTime reproduces Figure 5(b).
func (r *Runner) figureDeleteOneTime() (*Table, error) {
	return r.deleteSweep(1, deleteAlgorithms, func(m measurement) string { return fmt.Sprintf("%.4g", m.seconds) }, "seconds")
}

// figureDeleteTwoMSE reproduces Figure 6(a).
func (r *Runner) figureDeleteTwoMSE() (*Table, error) {
	algos := []string{"MC", "TMC", "YNN-NNN", "Delta", "KNN", "KNN+"}
	return r.deleteSweep(2, algos, func(m measurement) string { return sci(m.mse) }, "MSE")
}

// figureDeleteTwoTime reproduces Figure 6(b).
func (r *Runner) figureDeleteTwoTime() (*Table, error) {
	algos := []string{"MC", "TMC", "YNN-NNN", "Delta", "KNN", "KNN+"}
	return r.deleteSweep(2, algos, func(m measurement) string { return fmt.Sprintf("%.4g", m.seconds) }, "seconds")
}

func (r *Runner) deleteSweep(numDel int, algos []string, cell func(measurement) string, unit string) (*Table, error) {
	t := &Table{Columns: []string{"algorithm"}}
	for _, n := range r.cfg.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("n=%d", n))
	}
	cells := make(map[string][]string)
	for _, n := range r.cfg.Sizes {
		if numDel >= n {
			return nil, fmt.Errorf("cannot delete %d of %d points", numDel, n)
		}
		ms, err := r.deleteExperiment(n, numDel, algos)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			c := cell(m)
			if m.na {
				c = "N/A"
			}
			cells[m.name] = append(cells[m.name], c)
		}
	}
	for _, name := range algos {
		t.Rows = append(t.Rows, append([]string{name}, cells[name]...))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("values are %s; deleting %d point(s); τ=%d·n", unit, numDel, r.cfg.TauFactor))
	return t, nil
}

// figureDeleteManyTime reproduces Figure 6(c): update time as the number of
// deleted points grows.
func (r *Runner) figureDeleteManyTime() (*Table, error) {
	counts := []int{2, 4, 6, 8, 10}
	algos := []string{"MC", "Delta", "KNN", "KNN+"}
	t := &Table{Columns: []string{"algorithm"}}
	for _, c := range counts {
		t.Columns = append(t.Columns, fmt.Sprintf("del=%d", c))
	}
	cells := make(map[string][]string)
	for _, c := range counts {
		if c >= r.cfg.N {
			return nil, fmt.Errorf("cannot delete %d of %d points", c, r.cfg.N)
		}
		ms, err := r.deleteExperiment(r.cfg.N, c, algos)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			cells[m.name] = append(cells[m.name], fmt.Sprintf("%.4g", m.seconds))
		}
	}
	for _, name := range algos {
		t.Rows = append(t.Rows, append([]string{name}, cells[name]...))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("seconds per update sequence; n=%d", r.cfg.N))
	return t, nil
}
