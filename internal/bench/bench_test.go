package bench

import (
	"strconv"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	c := QuickConfig()
	c.TauFactor = 4
	c.BenchTauFactor = 20
	c.Trials = 1
	c.Sizes = []int{8, 12}
	c.N = 12
	c.TestSize = 15
	c.LargeN = 40
	c.LargeTau = 5
	c.LargeBenchTau = 10
	c.SVMEpochs = 3
	return c
}

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{"F2", "T4", "T5", "F3a", "F3b", "T6", "T7", "F4a", "F4b", "F4c",
		"T8", "T9", "F5a", "F5b", "T10", "F6a", "F6b", "F6c", "T11", "T12", "T13", "T14",
		"A1", "A2", "A3", "A4"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() has %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	r := NewRunner(tiny())
	if _, err := r.Run("T99"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"X — demo", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// runExperiment is a helper asserting an experiment completes and produces a
// well-formed table.
func runExperiment(t *testing.T, id string) *Table {
	t.Helper()
	r := NewRunner(tiny())
	tab, err := r.Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
		t.Fatalf("%s: malformed table %+v", id, tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s: row width %d != %d columns", id, len(row), len(tab.Columns))
		}
	}
	return tab
}

func TestTableIV(t *testing.T) {
	tab := runExperiment(t, "T4")
	// All MSE cells must parse as non-negative floats.
	for i, cell := range tab.Rows[0] {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil || v < 0 {
			t.Fatalf("cell %d = %q not a valid MSE", i, cell)
		}
	}
}

func TestTableV(t *testing.T) {
	tab := runExperiment(t, "T5")
	if tab.Rows[0][0] != "Pivot-s" || tab.Rows[1][0] != "Pivot-d" {
		t.Fatalf("unexpected row labels: %v", tab.Rows)
	}
	if tab.Rows[0][2] != "N/A" || tab.Rows[0][3] != "N/A" {
		t.Fatal("Pivot-s must be N/A for unequal τ columns")
	}
}

func TestFigure3(t *testing.T) {
	runExperiment(t, "F3a")
	runExperiment(t, "F3b")
}

func TestTableVIAndVII(t *testing.T) {
	runExperiment(t, "T6")
	runExperiment(t, "T7")
}

func TestFigure4(t *testing.T) {
	runExperiment(t, "F4a")
	runExperiment(t, "F4b")
}

func TestFigure4c(t *testing.T) {
	tab := runExperiment(t, "F4c")
	if len(tab.Rows) != 4 {
		t.Fatalf("F4c should have 4 algorithm rows, got %d", len(tab.Rows))
	}
}

func TestTableVIII(t *testing.T) {
	tab := runExperiment(t, "T8")
	// The YN-NN column (index 2) must be far below MC (index 0): the arrays
	// reproduce the estimate without re-sampling noise.
	mc, err1 := strconv.ParseFloat(tab.Rows[0][0], 64)
	ynnn, err2 := strconv.ParseFloat(tab.Rows[0][2], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable cells: %v", tab.Rows[0])
	}
	// At the tiny test scale both measurements sit near the benchmark's own
	// noise floor, so only assert YN-NN is not materially worse; the real
	// separation is checked at recorded scale (EXPERIMENTS.md).
	if ynnn > 2*mc {
		t.Errorf("YN-NN MSE %v should not materially exceed MC MSE %v", ynnn, mc)
	}
}

func TestTableIX(t *testing.T) {
	tab := runExperiment(t, "T9")
	// Memory grows with n.
	prev := -1.0
	for _, cell := range tab.Rows[0][1:] {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad memory cell %q", cell)
		}
		if v <= prev {
			t.Fatalf("memory not increasing: %v", tab.Rows[0])
		}
		prev = v
	}
}

func TestFigure5(t *testing.T) {
	runExperiment(t, "F5a")
	runExperiment(t, "F5b")
}

func TestTableX(t *testing.T) {
	tab := runExperiment(t, "T10")
	if tab.Columns[2] != "YNN-NNN" {
		t.Fatalf("expected YNN-NNN column, got %v", tab.Columns)
	}
}

func TestFigure6(t *testing.T) {
	runExperiment(t, "F6a")
	runExperiment(t, "F6b")
	runExperiment(t, "F6c")
}

func TestLargeTables(t *testing.T) {
	for _, id := range []string{"T11", "T12", "T13", "T14"} {
		tab := runExperiment(t, id)
		if tab.Columns[1] != "MC+" {
			t.Fatalf("%s: second column %q, want MC+", id, tab.Columns[1])
		}
		if len(tab.Rows) != 4 || tab.Rows[0][0] != "seconds" || tab.Rows[1][0] != "utility evals" ||
			tab.Rows[2][0] != "cache hits" || tab.Rows[3][0] != "prefix adds" {
			t.Fatalf("%s: expected seconds/evals/hits/adds rows, got %v", id, tab.Rows)
		}
	}
}

func TestFigure2(t *testing.T) {
	tab := runExperiment(t, "F2")
	if len(tab.Rows) == 0 {
		t.Fatal("F2 produced no bins")
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"A1", "A2", "A3", "A4"} {
		runExperiment(t, id)
	}
}

func TestMSEOverSurvivors(t *testing.T) {
	est := []float64{1, 0, 3}
	ben := []float64{1, 0, 5}
	if got := mseOverSurvivors(est, ben, []int{1}); got != 2 {
		t.Fatalf("mseOverSurvivors = %v, want 2", got)
	}
	if got := mseOverSurvivors([]float64{1}, []float64{2}, []int{0}); got != 0 {
		t.Fatal("all-deleted should give 0")
	}
}

func TestAverageMeasurements(t *testing.T) {
	per := [][]measurement{
		{{name: "a", mse: 1, seconds: 2, evals: 10}},
		{{name: "a", mse: 3, seconds: 4, evals: 20}},
	}
	avg := averageMeasurements(per)
	if avg[0].mse != 2 || avg[0].seconds != 3 || avg[0].evals != 15 {
		t.Fatalf("average = %+v", avg[0])
	}
	if averageMeasurements(nil) != nil {
		t.Fatal("empty average should be nil")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestPValuesVsMC(t *testing.T) {
	ms := []measurement{
		{name: "MC", mseSamples: []float64{1.0e-6, 1.2e-6, 0.9e-6, 1.1e-6}},
		{name: "Delta", mseSamples: []float64{1.0e-7, 1.2e-7, 0.9e-7, 1.1e-7}},
		{name: "KNN", na: true, mseSamples: []float64{1, 1, 1, 1}},
		{name: "Base", mseSamples: []float64{1e-6}}, // too few trials
	}
	ps := pValuesVsMC(ms)
	if _, ok := ps["MC"]; ok {
		t.Fatal("MC should not be tested against itself")
	}
	if _, ok := ps["KNN"]; ok {
		t.Fatal("N/A algorithms should be omitted")
	}
	if _, ok := ps["Base"]; ok {
		t.Fatal("single-trial algorithms should be omitted")
	}
	p, ok := ps["Delta"]
	if !ok {
		t.Fatal("Delta missing from p-values")
	}
	if p <= 0 || p >= 0.05 {
		t.Fatalf("clearly separated samples should give p < 0.05, got %v", p)
	}
	if note := pValueNote(ms); note == "" {
		t.Fatal("note should render when p-values exist")
	}
	if pValuesVsMC(nil) != nil {
		t.Fatal("no measurements should give nil")
	}
}
