package bench

import (
	"fmt"
	"time"

	"dynshap/internal/core"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// The large-dataset experiments (Tables XI–XIV) compare wall time on an
// Adult-derived workload with a FIXED τ (the paper uses τ = 100,
// τ_MC+ = 1000 on 10 000 points). MSEs are omitted exactly as in the paper:
// MC does not converge at such a small τ, so only cost is meaningful.
//
// The "MC+" column is the high-τ Monte Carlo benchmark run itself — the
// cost a broker would pay for a fully re-converged valuation.

// largeAddTable generates Tables XI (numAdd=1) and XII (numAdd=2).
func (r *Runner) largeAddTable(numAdd int) (*Table, error) {
	n := r.cfg.LargeN
	sc := r.adultScenario(n, r.cfg.Seed+11)
	added := sc.extra[:numAdd]
	algos := []string{"MC", "TMC", "Pivot-d", "Delta", "KNN", "KNN+"}

	prods, err := r.initialize(sc, core.InitOptions{}, r.cfg.LargeTau, r.cfg.Seed+12)
	if err != nil {
		return nil, err
	}

	cols := []string{"metric", "MC+", "MC", "TMC", "Pivot-d", "Delta", "KNN", "KNN+"}
	timeRow := make([]string, len(cols))
	evalRow := make([]string, len(cols))
	hitRow := make([]string, len(cols))
	addRow := make([]string, len(cols))
	timeRow[0], evalRow[0] = "seconds", "utility evals"
	hitRow[0], addRow[0] = "cache hits", "prefix adds"

	// MC+ column: the paper's high-τ from-scratch benchmark run.
	start := time.Now()
	uPlus := sc.util.Append(added...)
	benchCount := game.NewCounting(uPlus)
	benchCache := game.NewCached(benchCount)
	core.MonteCarloParallel(benchCache, r.cfg.LargeBenchTau, r.cfg.Workers, rng.New(r.cfg.Seed+13))
	timeRow[1] = secs(time.Since(start))
	evalRow[1] = fmt.Sprintf("%d", benchCount.Calls())
	benchHits, _ := benchCache.Stats()
	hitRow[1] = fmt.Sprintf("%d", benchHits)
	addRow[1] = fmt.Sprintf("%d", benchCache.PrefixAdds())

	for i, name := range algos {
		_, m, err := r.runAdd(name, sc, prods, added, r.cfg.LargeTau, r.cfg.Seed+14+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		timeRow[i+2] = fmt.Sprintf("%.4g", m.seconds)
		evalRow[i+2] = fmt.Sprintf("%d", m.evals)
		hitRow[i+2] = fmt.Sprintf("%d", m.hits)
		addRow[i+2] = fmt.Sprintf("%d", m.prefixAdds)
	}
	t := &Table{Columns: cols, Rows: [][]string{timeRow, evalRow, hitRow, addRow}}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Adult-like dataset, n=%d, fixed τ=%d, τ_MC+=%d (paper: n=10000, τ=100, τ_MC+=1000)",
			n, r.cfg.LargeTau, r.cfg.LargeBenchTau),
		"seconds; MSEs omitted as in the paper (MC does not converge at this τ)",
		"utility evals = cache misses (model trainings); prefix adds = incremental prefix evaluations, which bypass the cache")
	return t, nil
}

// largeDeleteTable generates Tables XIII (numDel=1) and XIV (numDel=2).
func (r *Runner) largeDeleteTable(numDel int) (*Table, error) {
	n := r.cfg.LargeN
	sc := r.adultScenario(n, r.cfg.Seed+21)
	cands := rng.New(r.cfg.Seed+22).Sample(n, numDel+4)
	deleted := cands[:numDel]

	ynnnName := "YN-NN"
	if numDel > 1 {
		ynnnName = "YNN-NNN"
	}
	algos := []string{"MC", "TMC", ynnnName, "Delta", "KNN", "KNN+"}

	// At large n the dense n³ YN-NN arrays exceed memory (n=1000 → 16 GB);
	// use the candidate-restricted store, as a broker with a known set of
	// revocable owners would (DESIGN.md §4).
	opt := core.InitOptions{MultiDelete: numDel, Candidates: cands}
	prods, err := r.initialize(sc, opt, r.cfg.LargeTau, r.cfg.Seed+23)
	if err != nil {
		return nil, err
	}

	cols := append([]string{"metric", "MC+"}, algos...)
	timeRow := make([]string, len(cols))
	evalRow := make([]string, len(cols))
	hitRow := make([]string, len(cols))
	addRow := make([]string, len(cols))
	timeRow[0], evalRow[0] = "seconds", "utility evals"
	hitRow[0], addRow[0] = "cache hits", "prefix adds"

	start := time.Now()
	benchCount := game.NewCounting(sc.util)
	benchCache := game.NewCached(benchCount)
	restricted := game.NewRestrict(benchCache, deleted...)
	core.MonteCarloParallel(restricted, r.cfg.LargeBenchTau, r.cfg.Workers, rng.New(r.cfg.Seed+24))
	timeRow[1] = secs(time.Since(start))
	evalRow[1] = fmt.Sprintf("%d", benchCount.Calls())
	benchHits, _ := benchCache.Stats()
	hitRow[1] = fmt.Sprintf("%d", benchHits)
	addRow[1] = fmt.Sprintf("%d", benchCache.PrefixAdds())

	for i, name := range algos {
		_, m, err := r.runDelete(name, sc, prods, deleted, r.cfg.LargeTau, r.cfg.Seed+25+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if m.na {
			timeRow[i+2], evalRow[i+2] = "N/A", "N/A"
			hitRow[i+2], addRow[i+2] = "N/A", "N/A"
		} else {
			timeRow[i+2] = fmt.Sprintf("%.4g", m.seconds)
			evalRow[i+2] = fmt.Sprintf("%d", m.evals)
			hitRow[i+2] = fmt.Sprintf("%d", m.hits)
			addRow[i+2] = fmt.Sprintf("%d", m.prefixAdds)
		}
	}
	t := &Table{Columns: cols, Rows: [][]string{timeRow, evalRow, hitRow, addRow}}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Adult-like dataset, n=%d, fixed τ=%d, τ_MC+=%d; YN-NN via candidate-restricted arrays (%d candidates)",
			n, r.cfg.LargeTau, r.cfg.LargeBenchTau, len(cands)),
		"seconds; MSEs omitted as in the paper")
	return t, nil
}

func (r *Runner) tableLargeAddOne() (*Table, error)    { return r.largeAddTable(1) }
func (r *Runner) tableLargeAddTwo() (*Table, error)    { return r.largeAddTable(2) }
func (r *Runner) tableLargeDeleteOne() (*Table, error) { return r.largeDeleteTable(1) }
func (r *Runner) tableLargeDeleteTwo() (*Table, error) { return r.largeDeleteTable(2) }
