package bench

import (
	"fmt"
	"strings"

	"dynshap/internal/core"
	"dynshap/internal/dataset"
)

// addTrial runs one repetition of an addition experiment: shared init,
// benchmark on N⁺, then every contender.
func (r *Runner) addTrial(n, numAdd int, algos []string, tauLSV, tauUpdate int, trial uint64) ([]measurement, error) {
	seed := r.cfg.Seed + 1000*trial
	sc := r.irisScenario(n, seed)
	added := append([]dataset.Point(nil), sc.extra[:numAdd]...)

	needPerms := false
	for _, a := range algos {
		if a == "Pivot-s" {
			needPerms = true
		}
	}
	prods, err := r.initialize(sc, core.InitOptions{KeepPerms: needPerms}, tauLSV, seed+1)
	if err != nil {
		return nil, err
	}
	bench := r.benchmarkAdd(sc, added, r.cfg.BenchTauFactor*(n+numAdd), seed+2)

	out := make([]measurement, 0, len(algos))
	for i, name := range algos {
		sv, m, err := r.runAdd(name, sc, prods, added, tauUpdate, seed+3+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if !m.na {
			m.mse = mseVsBenchmark(sv, bench)
		}
		out = append(out, m)
	}
	return out, nil
}

// addExperiment averages addTrial over the configured repetitions. The
// precomputed state (old SV, LSV) is built at benchmark quality — the
// paper's premise is that the broker already owns well-converged values for
// the original data, and only the update runs at the online τ = TauFactor·n.
func (r *Runner) addExperiment(n, numAdd int, algos []string) ([]measurement, error) {
	key := fmt.Sprintf("add/%d/%d/%s", n, numAdd, strings.Join(algos, ","))
	if ms, ok := r.memo[key]; ok {
		return ms, nil
	}
	tauUpdate := r.cfg.TauFactor * n
	tauInit := r.cfg.BenchTauFactor * n
	per := make([][]measurement, 0, r.cfg.Trials)
	for t := 0; t < r.cfg.Trials; t++ {
		ms, err := r.addTrial(n, numAdd, algos, tauInit, tauUpdate, uint64(t))
		if err != nil {
			return nil, err
		}
		per = append(per, ms)
	}
	out := averageMeasurements(per)
	r.memo[key] = out
	return out, nil
}

// tableAddOne reproduces Table IV: MSEs of every contender adding one point
// to the n-point Iris workload at τ = 20n.
func (r *Runner) tableAddOne() (*Table, error) { return r.addMSETable(1) }

// tableAddTwo reproduces Table VI (two added points).
func (r *Runner) tableAddTwo() (*Table, error) { return r.addMSETable(2) }

func (r *Runner) addMSETable(numAdd int) (*Table, error) {
	ms, err := r.addExperiment(r.cfg.N, numAdd, addAlgorithms)
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: append([]string{}, addAlgorithms...)}
	row := make([]string, len(ms))
	for i, m := range ms {
		row[i] = sci(m.mse)
	}
	t.Rows = [][]string{row}
	t.Notes = append(t.Notes, fmt.Sprintf("n=%d, τ=%d·n, benchmark τ=%d·n, %d trial(s), %s utility on Iris-like data",
		r.cfg.N, r.cfg.TauFactor, r.cfg.BenchTauFactor, r.cfg.Trials, r.modelName()))
	if note := pValueNote(ms); note != "" {
		t.Notes = append(t.Notes, note)
	}
	return t, nil
}

// tablePivotSvsD reproduces Table V: Pivot-s vs Pivot-d with
// τ_LSV ∈ {1×, 5×, 25×}·(TauFactor·n) while τ_RSV stays at TauFactor·n.
// Pivot-s requires τ_LSV = τ_RSV and reads N/A otherwise, as in the paper.
func (r *Runner) tablePivotSvsD() (*Table, error) { return r.pivotSvsDTable(1) }

// tablePivotSvsDTwo reproduces Table VII (two added points).
func (r *Runner) tablePivotSvsDTwo() (*Table, error) { return r.pivotSvsDTable(2) }

func (r *Runner) pivotSvsDTable(numAdd int) (*Table, error) {
	n := r.cfg.N
	tauRSV := r.cfg.TauFactor * n
	factors := []int{1, 5, 25}
	t := &Table{Columns: []string{"algorithm"}}
	for _, f := range factors {
		t.Columns = append(t.Columns, fmt.Sprintf("τLSV=%d·n", r.cfg.TauFactor*f))
	}
	rows := [][]string{{"Pivot-s"}, {"Pivot-d"}}
	for _, f := range factors {
		tauLSV := tauRSV * f
		// Pivot-s applies only in the equal-τ column.
		if f == 1 {
			per := make([][]measurement, 0, r.cfg.Trials)
			for trial := 0; trial < r.cfg.Trials; trial++ {
				ms, err := r.addTrial(n, numAdd, []string{"Pivot-s"}, tauLSV, tauRSV, uint64(trial))
				if err != nil {
					return nil, err
				}
				per = append(per, ms)
			}
			rows[0] = append(rows[0], sci(averageMeasurements(per)[0].mse))
		} else {
			rows[0] = append(rows[0], "N/A")
		}
		per := make([][]measurement, 0, r.cfg.Trials)
		for trial := 0; trial < r.cfg.Trials; trial++ {
			ms, err := r.addTrial(n, numAdd, []string{"Pivot-d"}, tauLSV, tauRSV, uint64(trial))
			if err != nil {
				return nil, err
			}
			per = append(per, ms)
		}
		rows[1] = append(rows[1], sci(averageMeasurements(per)[0].mse))
	}
	t.Rows = rows
	t.Notes = append(t.Notes, fmt.Sprintf("n=%d, τRSV=%d·n; Pivot-s needs τLSV=τRSV (N/A otherwise)", n, r.cfg.TauFactor))
	return t, nil
}

// figureAddOneMSE reproduces Figure 3(a): MSE vs original-dataset size.
func (r *Runner) figureAddOneMSE() (*Table, error) {
	return r.addSweep(1, func(m measurement) string { return sci(m.mse) }, "MSE")
}

// figureAddOneTime reproduces Figure 3(b): update time vs dataset size.
func (r *Runner) figureAddOneTime() (*Table, error) {
	return r.addSweep(1, func(m measurement) string { return fmt.Sprintf("%.4g", m.seconds) }, "seconds")
}

// figureAddTwoMSE reproduces Figure 4(a).
func (r *Runner) figureAddTwoMSE() (*Table, error) {
	return r.addSweep(2, func(m measurement) string { return sci(m.mse) }, "MSE")
}

// figureAddTwoTime reproduces Figure 4(b).
func (r *Runner) figureAddTwoTime() (*Table, error) {
	return r.addSweep(2, func(m measurement) string { return fmt.Sprintf("%.4g", m.seconds) }, "seconds")
}

// addSweep runs the addition contenders across the configured sizes and
// formats one row per algorithm — the series behind Figures 3 and 4.
func (r *Runner) addSweep(numAdd int, cell func(measurement) string, unit string) (*Table, error) {
	t := &Table{Columns: []string{"algorithm"}}
	for _, n := range r.cfg.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("n=%d", n))
	}
	cells := make(map[string][]string)
	for _, n := range r.cfg.Sizes {
		ms, err := r.addExperiment(n, numAdd, addAlgorithms)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			cells[m.name] = append(cells[m.name], cell(m))
		}
	}
	for _, name := range addAlgorithms {
		t.Rows = append(t.Rows, append([]string{name}, cells[name]...))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("values are %s; adding %d point(s); τ=%d·n", unit, numAdd, r.cfg.TauFactor))
	return t, nil
}

// figureAddManyTime reproduces Figure 4(c): update time as the number of
// added points grows, for the algorithms that remain applicable (MC
// recomputes once; Delta/KNN/KNN+ process points sequentially).
func (r *Runner) figureAddManyTime() (*Table, error) {
	counts := []int{2, 4, 6, 8, 10}
	algos := []string{"MC", "Delta", "KNN", "KNN+"}
	t := &Table{Columns: []string{"algorithm"}}
	for _, c := range counts {
		t.Columns = append(t.Columns, fmt.Sprintf("add=%d", c))
	}
	cells := make(map[string][]string)
	for _, c := range counts {
		if c > 16 {
			return nil, fmt.Errorf("add count %d exceeds extra pool", c)
		}
		ms, err := r.addExperiment(r.cfg.N, c, algos)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			cells[m.name] = append(cells[m.name], fmt.Sprintf("%.4g", m.seconds))
		}
	}
	for _, name := range algos {
		t.Rows = append(t.Rows, append([]string{name}, cells[name]...))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("seconds per update sequence; n=%d", r.cfg.N))
	return t, nil
}
