package bench

import (
	"fmt"
	"sort"

	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

// figureDeltaField reproduces Figure 2: how the Shapley values of the
// original points change when a new point arrives, as a function of their
// distance to it and label agreement. The paper renders this as a scatter
// over the feature plane; we report the same field binned by distance,
// split into same-label and different-label points — the structure
// ("same-label values drop, different-label values rise, both effects decay
// with distance") that motivates the KNN+ heuristic.
func (r *Runner) figureDeltaField() (*Table, error) {
	n := r.cfg.N
	seed := r.cfg.Seed + 31
	sc := r.irisScenario(n, seed)
	added := sc.extra[0]

	// Estimate ΔSV directly with the differential-marginal-contribution
	// sampler (the estimator behind Algorithm 5): unbiased for the change
	// and far lower variance than differencing two independent Monte Carlo
	// runs, so the field's structure is visible at moderate τ.
	tau := r.cfg.BenchTauFactor * n / 4
	uPlus := sc.util.Append(added)
	gPlus := game.NewCached(uPlus)
	zeros := make([]float64, n)
	delta, err := core.DeltaAdd(gPlus, zeros, tau, rng.New(seed+1))
	if err != nil {
		return nil, err
	}

	type obs struct {
		dist  float64
		delta float64
		same  bool
	}
	observations := make([]obs, n)
	for i := 0; i < n; i++ {
		observations[i] = obs{
			dist:  dataset.Euclidean(sc.train.Points[i].X, added.X),
			delta: delta[i],
			same:  sc.train.Points[i].Y == added.Y,
		}
	}
	sort.Slice(observations, func(i, j int) bool { return observations[i].dist < observations[j].dist })

	const bins = 4
	t := &Table{Columns: []string{"distance bin", "same-label mean ΔSV", "count", "diff-label mean ΔSV", "count"}}
	per := (n + bins - 1) / bins
	for b := 0; b < bins; b++ {
		lo := b * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		var sameVals, diffVals []float64
		for _, o := range observations[lo:hi] {
			if o.same {
				sameVals = append(sameVals, o.delta)
			} else {
				diffVals = append(diffVals, o.delta)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("[%.2f, %.2f]", observations[lo].dist, observations[hi-1].dist),
			sci(stat.Mean(sameVals)), fmt.Sprintf("%d", len(sameVals)),
			sci(stat.Mean(diffVals)), fmt.Sprintf("%d", len(diffVals)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("one point (label %d) added to n=%d Iris-like; ΔSV via differential-marginal-contribution sampling", added.Y, n),
		"expected shape: same-label ΔSV negative near the new point, different-label positive, both fading with distance")
	return t, nil
}
