package bench

import (
	"fmt"
	"time"

	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
	"dynshap/internal/utility"
)

// scenario is one experimental workload: an original training set under
// valuation, the test set defining the utility, and a pool of extra points
// available for additions.
type scenario struct {
	train *dataset.Dataset
	test  *dataset.Dataset
	extra []dataset.Point
	util  *utility.ModelUtility
}

// modelName returns the configured utility model's display name.
func (r *Runner) modelName() string {
	switch r.cfg.Model {
	case "nb":
		return "naive-Bayes"
	case "knn":
		return "k-NN"
	default:
		return "SVM"
	}
}

// trainer returns the configured utility model (default: the paper's SVM).
func (r *Runner) trainer() ml.Trainer {
	switch r.cfg.Model {
	case "nb":
		return ml.NaiveBayes{}
	case "knn":
		return ml.KNN{K: 5}
	default:
		return ml.SVM{Epochs: r.cfg.SVMEpochs}
	}
}

// irisScenario builds the paper's main workload: n Iris-like points valued
// under the configured utility model, standardised, with spare points for
// additions.
func (r *Runner) irisScenario(n int, seed uint64) *scenario {
	rnd := rng.New(seed)
	pool := dataset.IrisLike(rnd, n+r.cfg.TestSize+16)
	pool.Standardize()
	train := pool.Subset(seqInts(0, n))
	test := pool.Subset(seqInts(n, n+r.cfg.TestSize))
	extraSet := pool.Subset(seqInts(n+r.cfg.TestSize, pool.Len()))
	return &scenario{
		train: train,
		test:  test,
		extra: extraSet.Points,
		util:  utility.NewModelUtility(train, test, r.trainer()),
	}
}

// adultScenario builds the large-dataset workload of Tables XI–XIV: an
// Adult-like sample with 3 features under the SVM utility.
func (r *Runner) adultScenario(n int, seed uint64) *scenario {
	rnd := rng.New(seed)
	pool := dataset.AdultLike(rnd, n+r.cfg.TestSize+16)
	pool.Standardize()
	train := pool.Subset(seqInts(0, n))
	test := pool.Subset(seqInts(n, n+r.cfg.TestSize))
	extraSet := pool.Subset(seqInts(n+r.cfg.TestSize, pool.Len()))
	return &scenario{
		train: train,
		test:  test,
		extra: extraSet.Points,
		util:  utility.NewModelUtility(train, test, r.trainer()),
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// measurement is one algorithm's result on one workload.
type measurement struct {
	name    string
	mse     float64
	seconds float64
	evals   int64 // cache misses = fresh utility evaluations (model trainings)
	// hits counts cache lookups served without a training; prefixAdds counts
	// incremental prefix evaluations (game.PrefixEvaluator.Add), which bypass
	// the cache entirely. Together the three counters show how an algorithm's
	// utility work splits between fresh, cached, and incremental evaluation.
	hits       int64
	prefixAdds int64
	na         bool // algorithm not applicable / skipped
	// mseSamples holds the per-trial MSEs behind the averaged mse, for the
	// paper's significance tests (§VII-A).
	mseSamples []float64
}

// initProducts bundles what one shared initialisation pass hands to the
// contenders: estimates, pivot state, deletion stores, and the warmed cache.
type initProducts struct {
	res   *core.InitResult
	cache *game.Cached
}

// initialize runs the shared preprocessing pass with the given τ, routed
// through the stripe-parallel permutation engine under the configured
// worker budget. The engine is bit-identical to the serial pass for a
// fixed seed, so all downstream numbers are unchanged; its stats for the
// pass are kept on the Runner for the table notes.
func (r *Runner) initialize(sc *scenario, opt core.InitOptions, tau int, seed uint64) (*initProducts, error) {
	cache := game.NewCached(sc.util)
	engine := core.NewEngine(core.WithWorkers(r.cfg.Workers))
	res, err := engine.Initialize(cache, tau, opt, rng.New(seed))
	if err != nil {
		return nil, err
	}
	r.lastFill = engine.Stats()
	return &initProducts{res: res, cache: cache}, nil
}

// benchmarkAdd computes the reference Shapley values MCSV⁺ on the updated
// dataset with τ = BenchTauFactor·n, as the paper's §VII-B prescribes.
// Results are memoised per (size, additions, τ, seed): the τ_LSV sweep
// tables evaluate several configurations against one benchmark.
func (r *Runner) benchmarkAdd(sc *scenario, added []dataset.Point, tau int, seed uint64) []float64 {
	key := fmt.Sprintf("benchAdd/%d/%d/%d/%d", sc.util.N(), len(added), tau, seed)
	if sv, ok := r.benchMemo[key]; ok {
		return sv
	}
	uPlus := sc.util.Append(added...)
	g := game.NewCached(uPlus)
	sv := core.MonteCarloParallel(g, tau, r.cfg.Workers, rng.New(seed))
	r.benchMemo[key] = sv
	return sv
}

// benchmarkDelete computes MCSV⁺ on the post-deletion dataset, returned in
// the ORIGINAL indexing with zeros at deleted points so contenders compare
// directly.
func (r *Runner) benchmarkDelete(sc *scenario, deleted []int, tau int, seed uint64) []float64 {
	g := game.NewCached(sc.util)
	restricted := game.NewRestrict(g, deleted...)
	sub := core.MonteCarloParallel(restricted, tau, r.cfg.Workers, rng.New(seed))
	out := make([]float64, sc.util.N())
	for ri, orig := range restricted.Keep() {
		out[orig] = sub[ri]
	}
	return out
}

// addAlgorithms are the contenders of the addition experiments, in the
// paper's column order.
var addAlgorithms = []string{"MC", "Base", "TMC", "Pivot-d", "Delta", "KNN", "KNN+"}

// deleteAlgorithms are the contenders of the deletion experiments.
var deleteAlgorithms = []string{"MC", "TMC", "YN-NN", "Delta", "KNN", "KNN+"}

// runAdd measures one contender adding the given points sequentially,
// starting from the shared initialisation products. It returns the updated
// values in N⁺ indexing plus cost measurements.
func (r *Runner) runAdd(name string, sc *scenario, prods *initProducts, added []dataset.Point, tau int, seed uint64) ([]float64, measurement, error) {
	rnd := rng.New(seed)
	m := measurement{name: name}

	// Every contender gets its own fork of the warmed cache so timing
	// reflects only the model trainings it newly causes.
	uPlus := sc.util.Append(added...)
	forked := prods.cache.Fork(sc.util)

	start := time.Now()
	var sv []float64
	var err error
	switch name {
	case "MC":
		sv = core.MonteCarlo(game.NewCachedShared(uPlus, forked), tau, rnd)
	case "TMC":
		sv = core.TruncatedMonteCarlo(game.NewCachedShared(uPlus, forked), tau, 1e-12, rnd)
	case "Base":
		sv = core.BaseAdd(prods.res.Pivot.SV, len(added))
	case "Pivot-s", "Pivot-d":
		st := prods.res.Pivot.Clone()
		cur := sc.util
		cache := forked
		for _, p := range added {
			next := cur.Append(p)
			g := game.NewCachedShared(next, cache)
			if name == "Pivot-s" {
				sv, err = st.AddSame(g, rnd)
			} else {
				sv, err = st.AddDifferent(g, tau, rnd)
			}
			if err != nil {
				return nil, m, err
			}
			cur = next
			cache = game.NewCachedShared(cur, cache)
		}
	case "Delta":
		sv = append([]float64(nil), prods.res.Pivot.SV...)
		cur := sc.util
		cache := forked
		for _, p := range added {
			next := cur.Append(p)
			g := game.NewCachedShared(next, cache)
			sv, err = core.DeltaAdd(g, sv, tau, rnd)
			if err != nil {
				return nil, m, err
			}
			cur = next
			cache = game.NewCachedShared(cur, cache)
		}
	case "KNN":
		sv, err = core.KNNAdd(prods.res.Pivot.SV, sc.train, added, 5)
		if err != nil {
			return nil, m, err
		}
	case "KNN+":
		g := game.NewCachedShared(sc.util, forked)
		sv, err = core.KNNPlusAdd(g, sc.train, prods.res.Pivot.SV, added, nil,
			core.KNNPlusConfig{K: 5}, rnd)
		if err != nil {
			return nil, m, err
		}
	default:
		m.na = true
		return nil, m, nil
	}
	m.seconds = time.Since(start).Seconds()
	hits, misses := forked.Stats()
	m.hits = hits
	m.evals = misses
	m.prefixAdds = forked.PrefixAdds()
	return sv, m, nil
}

// runDelete measures one contender deleting the given points, returning
// values in the ORIGINAL indexing with zeros at deleted points.
func (r *Runner) runDelete(name string, sc *scenario, prods *initProducts, deleted []int, tau int, seed uint64) ([]float64, measurement, error) {
	n := sc.train.Len()
	rnd := rng.New(seed)
	m := measurement{name: name}
	forked := prods.cache.Fork(sc.util)
	g := game.Game(game.NewCachedShared(sc.util, forked))

	start := time.Now()
	var expanded []float64
	var err error
	switch name {
	case "MC", "TMC":
		restricted := game.NewRestrict(g, deleted...)
		var sub []float64
		if name == "TMC" {
			sub = core.TruncatedMonteCarlo(restricted, tau, 1e-12, rnd)
		} else {
			sub = core.MonteCarlo(restricted, tau, rnd)
		}
		expanded = make([]float64, n)
		for ri, orig := range restricted.Keep() {
			expanded[orig] = sub[ri]
		}
	case "YN-NN", "YNN-NNN":
		if len(deleted) == 1 {
			switch {
			case prods.res.Deletion != nil:
				expanded, err = prods.res.Deletion.Merge(deleted[0])
			case prods.res.Multi != nil && prods.res.Multi.D() == 1:
				// Large datasets use the candidate-restricted store: the
				// full n³ arrays would not fit in memory (DESIGN.md §4).
				expanded, err = prods.res.Multi.Merge(deleted[0])
			default:
				m.na = true
				return nil, m, nil
			}
		} else {
			if prods.res.Multi == nil {
				m.na = true
				return nil, m, nil
			}
			expanded, err = prods.res.Multi.Merge(deleted...)
		}
		if err != nil {
			return nil, m, err
		}
	case "Delta":
		expanded = append([]float64(nil), prods.res.Pivot.SV...)
		// Apply sequentially over the shrinking game, tracking indices.
		alive := seqInts(0, n)
		cur := expanded
		var gone []int
		rg := g
		for _, orig := range deleted {
			ri := indexOf(alive, orig)
			cur, err = core.DeltaDelete(rg, cur, ri, tau, rnd)
			if err != nil {
				return nil, m, err
			}
			cur = append(cur[:ri:ri], cur[ri+1:]...)
			alive = append(alive[:ri:ri], alive[ri+1:]...)
			gone = append(gone, orig)
			rg = game.NewRestrict(g, gone...)
		}
		expanded = make([]float64, n)
		for i, orig := range alive {
			expanded[orig] = cur[i]
		}
	case "KNN":
		expanded, err = core.KNNDelete(prods.res.Pivot.SV, sc.train, deleted, 5)
		if err != nil {
			return nil, m, err
		}
	case "KNN+":
		expanded, err = core.KNNPlusDelete(g, sc.train, prods.res.Pivot.SV, deleted, nil,
			core.KNNPlusConfig{K: 5}, rnd)
		if err != nil {
			return nil, m, err
		}
	default:
		m.na = true
		return nil, m, nil
	}
	m.seconds = time.Since(start).Seconds()
	hits, misses := forked.Stats()
	m.hits = hits
	m.evals = misses
	m.prefixAdds = forked.PrefixAdds()
	return expanded, m, nil
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// averageMeasurements merges per-trial measurements of the same algorithm.
func averageMeasurements(per [][]measurement) []measurement {
	if len(per) == 0 {
		return nil
	}
	out := make([]measurement, len(per[0]))
	copy(out, per[0])
	for i := range out {
		out[i].mse = 0
		out[i].seconds = 0
		out[i].evals = 0
		out[i].hits = 0
		out[i].prefixAdds = 0
	}
	for i := range out {
		out[i].mseSamples = nil
	}
	for _, trial := range per {
		for i, m := range trial {
			out[i].mse += m.mse / float64(len(per))
			out[i].seconds += m.seconds / float64(len(per))
			out[i].evals += m.evals / int64(len(per))
			out[i].hits += m.hits / int64(len(per))
			out[i].prefixAdds += m.prefixAdds / int64(len(per))
			out[i].na = out[i].na || m.na
			out[i].mseSamples = append(out[i].mseSamples, m.mse)
		}
	}
	return out
}

// pValuesVsMC runs Welch's t-test between each algorithm's per-trial MSEs
// and MC's, reproducing the significance statement of the paper's §VII-A
// ("all p-values are much smaller than 0.05"). It needs ≥2 trials per cell;
// algorithms without enough data are omitted.
func pValuesVsMC(ms []measurement) map[string]float64 {
	var mc *measurement
	for i := range ms {
		if ms[i].name == "MC" {
			mc = &ms[i]
			break
		}
	}
	if mc == nil || len(mc.mseSamples) < 2 {
		return nil
	}
	out := make(map[string]float64)
	for _, m := range ms {
		if m.name == "MC" || m.na || len(m.mseSamples) < 2 {
			continue
		}
		w, err := stat.WelchTTest(m.mseSamples, mc.mseSamples)
		if err != nil {
			continue
		}
		out[m.name] = w.P
	}
	return out
}

// mseVsBenchmark computes the paper's effectiveness metric.
func mseVsBenchmark(estimate, benchmark []float64) float64 {
	return stat.MSE(estimate, benchmark)
}
