package bench

import (
	"fmt"
	"time"

	"dynshap/internal/bitset"
	"dynshap/internal/core"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

// Ablation experiments beyond the paper's artifacts (DESIGN.md §7). They
// probe the design choices the paper asserts but does not measure: the
// utility cache behind the pivot reuse claim, the TMC tolerance, the KNN+
// curve family, and how Shapley-guided data selection compares with the
// leave-one-out baseline the introduction dismisses.

// ablationCacheReuse (A1) quantifies the utility cache: model trainings for
// a Pivot-s addition with and without the warm cache from initialisation.
func (r *Runner) ablationCacheReuse() (*Table, error) {
	n := r.cfg.N
	tau := r.cfg.TauFactor * n
	seed := r.cfg.Seed + 41
	sc := r.irisScenario(n, seed)
	added := sc.extra[:1]

	prods, err := r.initialize(sc, core.InitOptions{KeepPerms: true}, tau, seed+1)
	if err != nil {
		return nil, err
	}

	measure := func(warm bool) (int64, float64) {
		st := prods.res.Pivot.Clone()
		uPlus := sc.util.Append(added...)
		var g game.Game
		var cache *game.Cached
		if warm {
			cache = prods.cache.Fork(uPlus)
			g = cache
		} else {
			cache = game.NewCached(uPlus)
			g = cache
		}
		start := time.Now()
		if _, err := st.AddSame(g, rng.New(seed+2)); err != nil {
			panic(err) // exercised paths validated by unit tests
		}
		secs := time.Since(start).Seconds()
		_, misses := cache.Stats()
		return misses, secs
	}

	warmEvals, warmSecs := measure(true)
	coldEvals, coldSecs := measure(false)

	t := &Table{
		Columns: []string{"configuration", "model trainings", "seconds"},
		Rows: [][]string{
			{"Pivot-s, warm cache (reuse)", fmt.Sprintf("%d", warmEvals), fmt.Sprintf("%.4g", warmSecs)},
			{"Pivot-s, cold cache (no reuse)", fmt.Sprintf("%d", coldEvals), fmt.Sprintf("%.4g", coldSecs)},
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d, τ=%d; the warm row retrains only suffix coalitions containing the new point — the paper's \"half the computation\" claim made concrete", n, tau))
	return t, nil
}

// ablationTMCTolerance (A2) sweeps the TMC truncation tolerance: looser
// tolerances save trainings but bias the estimates.
func (r *Runner) ablationTMCTolerance() (*Table, error) {
	n := r.cfg.N
	tau := r.cfg.TauFactor * n
	seed := r.cfg.Seed + 42
	sc := r.irisScenario(n, seed)
	counting := game.NewCounting(game.NewCached(sc.util))
	bench := core.MonteCarloParallel(game.NewCached(sc.util), r.cfg.BenchTauFactor*n, r.cfg.Workers, rng.New(seed+1))

	t := &Table{Columns: []string{"tolerance", "MSE", "utility evals"}}
	for _, tol := range []float64{0, 1e-12, 1e-3, 1e-2, 5e-2, 1e-1} {
		counting.Reset()
		est := core.TruncatedMonteCarlo(counting, tau, tol, rng.New(seed+2))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0e", tol),
			sci(stat.MSE(est, bench)),
			fmt.Sprintf("%d", counting.Calls()),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d, τ=%d; tolerance 0 is plain MC; the paper fixes 1e-12 (truncation restricted to positions ≥ n/2)", n, tau))
	return t, nil
}

// ablationKNNPlusCurves (A3) varies the KNN+ polynomial degree and
// subsample size, measuring MSE after one addition.
func (r *Runner) ablationKNNPlusCurves() (*Table, error) {
	n := r.cfg.N
	seed := r.cfg.Seed + 43
	sc := r.irisScenario(n, seed)
	added := sc.extra[:1]
	prods, err := r.initialize(sc, core.InitOptions{}, r.cfg.BenchTauFactor*n, seed+1)
	if err != nil {
		return nil, err
	}
	bench := r.benchmarkAdd(sc, added, r.cfg.BenchTauFactor*(n+1), seed+2)
	knnSV, err := core.KNNAdd(prods.res.Pivot.SV, sc.train, added, 5)
	if err != nil {
		return nil, err
	}

	t := &Table{Columns: []string{"configuration", "MSE", "seconds"}}
	t.Rows = append(t.Rows, []string{"KNN (no curve)", sci(stat.MSE(knnSV, bench)), "~0"})
	sub := n / 2
	if sub < 10 {
		sub = n
	}
	for _, cfg := range []core.KNNPlusConfig{
		{Degree: 1, K: 5},
		{Degree: 2, K: 5},
		{Degree: 3, K: 5},
		{Degree: 2, K: 5, SubsampleSize: sub},
	} {
		g := prods.cache.Fork(sc.util)
		start := time.Now()
		sv, err := core.KNNPlusAdd(g, sc.train, prods.res.Pivot.SV, added, nil, cfg, rng.New(seed+3))
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		label := fmt.Sprintf("KNN+ degree %d", cfg.Degree)
		if cfg.SubsampleSize > 0 {
			label = fmt.Sprintf("KNN+ degree %d, subsample %d", cfg.Degree, cfg.SubsampleSize)
		}
		t.Rows = append(t.Rows, []string{label, sci(stat.MSE(sv, bench)), fmt.Sprintf("%.4g", secs)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("n=%d, one added point; curve fitting dominates KNN+ cost", n))
	return t, nil
}

// ablationSelection (A4) reproduces the introduction's motivation: rank
// points by Shapley value vs leave-one-out vs random, keep the top half,
// retrain, and compare test accuracy.
func (r *Runner) ablationSelection() (*Table, error) {
	n := r.cfg.N
	seed := r.cfg.Seed + 44
	sc := r.irisScenario(n, seed)
	g := game.NewCached(sc.util)
	sv := core.MonteCarloParallel(g, r.cfg.BenchTauFactor*n, r.cfg.Workers, rng.New(seed+1))
	loo := core.LeaveOneOut(g)

	keep := n / 2
	accOf := func(scores []float64) float64 {
		idx := topK(scores, keep)
		s := bitset.FromIndices(n, idx...)
		return g.Value(s)
	}
	rnd := rng.New(seed + 2)
	randomIdx := rnd.Sample(n, keep)
	full := g.Value(bitset.Full(n))

	t := &Table{
		Columns: []string{"selection rule", "test accuracy (top 50%)"},
		Rows: [][]string{
			{"all points", fmt.Sprintf("%.4f", full)},
			{"Shapley value (top)", fmt.Sprintf("%.4f", accOf(sv))},
			{"leave-one-out (top)", fmt.Sprintf("%.4f", accOf(loo))},
			{"random", fmt.Sprintf("%.4f", g.Value(bitset.FromIndices(n, randomIdx...)))},
		},
	}
	t.Notes = append(t.Notes,
		"the introduction's premise (Ghorbani & Zou): SV-ranked selection retains more useful points than LOO")
	return t, nil
}

// topK returns the indices of the k largest scores.
func topK(scores []float64, k int) []int {
	idx := seqInts(0, len(scores))
	// partial selection sort — n is small here.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
