// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§VII). Each experiment is identified by
// the paper artifact it reproduces (T4 = Table IV, F3a = Figure 3(a), …),
// builds its workload from the synthetic Iris-like/Adult-like datasets,
// runs the baseline and proposed algorithms, and reports the same rows or
// series the paper does — MSE against a high-τ Monte Carlo benchmark for
// effectiveness, wall time and utility-evaluation counts for efficiency.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"dynshap/internal/core"
)

// Config scales the experiments. The paper's full settings (τ = 20n
// contenders, τ = 1000n benchmark, n up to 10 000) take hours on laptop
// hardware just as they took days on the authors' testbed; DefaultConfig
// preserves every ratio at sizes that finish in tens of minutes, and Full
// restores the paper's numbers.
//
// The benchmark τ bounds the OBSERVABLE separation: measured MSE is the
// contender's variance plus the benchmark's own (≈ V/(BenchTauFactor·n)),
// so the best possible contender can only look (BenchTauFactor/TauFactor+1)×
// better than MC. The paper's 1000n benchmark permits the ~16× gaps its
// Table IV reports; keep BenchTauFactor ≥ 20·TauFactor to see them.
type Config struct {
	// Seed drives all sampling.
	Seed uint64
	// TauFactor sets the contenders' sample size τ = TauFactor·n (paper: 20).
	TauFactor int
	// BenchTauFactor sets the benchmark's τ = BenchTauFactor·n (paper: 1000).
	BenchTauFactor int
	// Trials is the number of independent repetitions averaged per cell.
	Trials int
	// Sizes are the original-dataset sizes swept by the figures (paper:
	// 10, 50, 100).
	Sizes []int
	// N is the original-dataset size for the tables (paper: 100).
	N int
	// TestSize is the held-out set defining the utility.
	TestSize int
	// LargeN is the dataset size of the large-scale tables XI–XIV
	// (paper: 10 000).
	LargeN int
	// LargeTau is the fixed τ of the large-scale tables (paper: 100).
	LargeTau int
	// LargeBenchTau is MC+'s τ in the large-scale tables (paper: 1000).
	LargeBenchTau int
	// Workers bounds parallel sampling (≤0 selects GOMAXPROCS).
	Workers int
	// SVMEpochs tunes the utility model's training cost.
	SVMEpochs int
	// Model selects the utility model: "svm" (the paper's choice), "nb"
	// (deterministic Gaussian naive Bayes) or "knn".
	Model string
}

// DefaultConfig returns laptop-scale settings preserving the paper's ratios.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		TauFactor:      20,
		BenchTauFactor: 400,
		Trials:         3,
		Sizes:          []int{10, 50, 100},
		N:              100,
		TestSize:       100,
		LargeN:         1000,
		LargeTau:       20,
		LargeBenchTau:  200,
		Workers:        0,
		SVMEpochs:      8,
		// The deterministic naive Bayes utility mirrors the stability of the
		// paper's libsvm SVC; our from-scratch SVM is SGD-trained and its
		// per-coalition training noise inflates the (differential) marginal
		// contribution ranges the dynamic algorithms exploit. Select "svm"
		// to reproduce under the noisier utility.
		Model: "nb",
	}
}

// QuickConfig returns the smallest settings that still exercise every code
// path — used by the root benchmark suite and smoke tests.
func QuickConfig() Config {
	c := DefaultConfig()
	c.TauFactor = 5
	c.BenchTauFactor = 40
	c.Trials = 1
	c.Sizes = []int{10, 30}
	c.N = 30
	c.TestSize = 20
	c.LargeN = 200
	c.LargeTau = 10
	c.LargeBenchTau = 50
	c.SVMEpochs = 5
	return c
}

// FullConfig returns the paper's exact experimental scales. Expect very
// long runtimes.
func FullConfig() Config {
	c := DefaultConfig()
	c.BenchTauFactor = 1000
	c.Trials = 5
	c.LargeN = 10000
	c.LargeTau = 100
	c.LargeBenchTau = 1000
	return c
}

// Table is one rendered experiment result.
type Table struct {
	// ID is the experiment identifier (T4, F3a, …).
	ID string
	// Title describes the artifact, matching the paper's caption.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, row-major.
	Rows [][]string
	// Notes holds provenance remarks (substitutions, scaling).
	Notes []string
	// Elapsed is how long the experiment took to regenerate.
	Elapsed time.Duration
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintf(w, "  (regenerated in %v)\n\n", t.Elapsed.Round(time.Millisecond))
}

// WriteCSV writes the table's columns and rows as CSV (no notes), for
// plotting the figure series with external tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("bench: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("bench: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner executes experiments under one configuration.
type Runner struct {
	cfg Config
	// memo caches averaged measurements across experiments: the MSE and
	// time variants of each figure share identical sweeps, so the second
	// artifact renders from the first one's run.
	memo map[string][]measurement
	// benchMemo caches benchmark Shapley runs, the dominant cost of the
	// τ_LSV sweep tables (several configurations, one benchmark).
	benchMemo map[string][]float64
	// lastFill records the permutation-engine stats of the most recent
	// shared initialisation pass (permutations issued vs budget, worker
	// count, fill throughput), surfaced in table notes.
	lastFill core.EngineStats
}

// NewRunner returns a Runner with the given configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:       cfg,
		memo:      make(map[string][]measurement),
		benchMemo: make(map[string][]float64),
	}
}

// experiments maps IDs to implementations.
var experiments = map[string]struct {
	title string
	run   func(r *Runner) (*Table, error)
}{
	"T4":  {"Table IV: MSEs for adding a data point", (*Runner).tableAddOne},
	"T5":  {"Table V: Pivot-s vs Pivot-d MSEs (adding one point)", (*Runner).tablePivotSvsD},
	"F3a": {"Figure 3(a): MSE vs dataset size (adding a data point)", (*Runner).figureAddOneMSE},
	"F3b": {"Figure 3(b): time vs dataset size (adding a data point)", (*Runner).figureAddOneTime},
	"T6":  {"Table VI: MSEs for adding two data points", (*Runner).tableAddTwo},
	"T7":  {"Table VII: Pivot-s vs Pivot-d MSEs (adding two points)", (*Runner).tablePivotSvsDTwo},
	"F4a": {"Figure 4(a): MSE vs dataset size (adding two points)", (*Runner).figureAddTwoMSE},
	"F4b": {"Figure 4(b): time vs dataset size (adding two points)", (*Runner).figureAddTwoTime},
	"F4c": {"Figure 4(c): time vs number of added points", (*Runner).figureAddManyTime},
	"T8":  {"Table VIII: MSEs for deleting a data point", (*Runner).tableDeleteOne},
	"T9":  {"Table IX: YN-NN memory consumption", (*Runner).tableMemory},
	"F5a": {"Figure 5(a): MSE vs dataset size (deleting a data point)", (*Runner).figureDeleteOneMSE},
	"F5b": {"Figure 5(b): time vs dataset size (deleting a data point)", (*Runner).figureDeleteOneTime},
	"T10": {"Table X: MSEs for deleting two data points", (*Runner).tableDeleteTwo},
	"F6a": {"Figure 6(a): MSE vs dataset size (deleting two points)", (*Runner).figureDeleteTwoMSE},
	"F6b": {"Figure 6(b): time vs dataset size (deleting two points)", (*Runner).figureDeleteTwoTime},
	"F6c": {"Figure 6(c): time vs number of deleted points", (*Runner).figureDeleteManyTime},
	"T11": {"Table XI: time for adding one data point, large dataset", (*Runner).tableLargeAddOne},
	"T12": {"Table XII: time for adding two data points, large dataset", (*Runner).tableLargeAddTwo},
	"T13": {"Table XIII: time for deleting one data point, large dataset", (*Runner).tableLargeDeleteOne},
	"T14": {"Table XIV: time for deleting two data points, large dataset", (*Runner).tableLargeDeleteTwo},
	"F2":  {"Figure 2: Shapley value changes after adding a point", (*Runner).figureDeltaField},
	// Ablations beyond the paper (DESIGN.md §7).
	"A1": {"Ablation: utility-cache reuse behind Pivot-s", (*Runner).ablationCacheReuse},
	"A2": {"Ablation: TMC truncation tolerance sweep", (*Runner).ablationTMCTolerance},
	"A3": {"Ablation: KNN+ curve degree and subsample size", (*Runner).ablationKNNPlusCurves},
	"A4": {"Ablation: data selection by SV vs leave-one-out", (*Runner).ablationSelection},
}

// IDs lists every experiment in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return artifactOrder(ids[i]) < artifactOrder(ids[j]) })
	return ids
}

// artifactOrder sorts experiments in the paper's presentation order.
func artifactOrder(id string) int {
	order := []string{"F2", "T4", "T5", "F3a", "F3b", "T6", "T7", "F4a", "F4b", "F4c",
		"T8", "T9", "F5a", "F5b", "T10", "F6a", "F6b", "F6c", "T11", "T12", "T13", "T14",
		"A1", "A2", "A3", "A4"}
	for i, v := range order {
		if v == id {
			return i
		}
	}
	return len(order)
}

// Run executes the experiment with the given ID.
func (r *Runner) Run(id string) (*Table, error) {
	exp, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	start := time.Now()
	t, err := exp.run(r)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", id, err)
	}
	t.ID = id
	t.Title = exp.title
	t.Elapsed = time.Since(start)
	return t, nil
}

// RunAll executes every experiment in the paper's order.
func (r *Runner) RunAll() ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := r.Run(id)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// pValueNote renders Welch p-values of each algorithm's MSE against MC's
// (the paper's §VII-A significance claim); empty below 2 trials.
func pValueNote(ms []measurement) string {
	ps := pValuesVsMC(ms)
	if len(ps) == 0 {
		return ""
	}
	names := make([]string, 0, len(ps))
	for name := range ps {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s %.3g", name, ps[name]))
	}
	return "Welch p-values of MSE vs MC (≥10 trials recommended): " + strings.Join(parts, ", ")
}

// sci formats a float in the paper's scientific-notation style (e.g. 2.48e-6).
func sci(v float64) string {
	if v == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", v)
}

// secs formats a duration in seconds in the paper's style.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.4g", d.Seconds())
}
