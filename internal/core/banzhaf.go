package core

import (
	"fmt"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// The Banzhaf value is the other classical semivalue: instead of averaging
// a player's marginal contribution over permutations (sizes weighted like
// Shapley), it averages over all 2^{n−1} coalitions of the other players
// with EQUAL weight. Data-valuation practice sometimes prefers it because
// each Monte Carlo sample is a single independent coalition, making
// variance analysis elementary. It forgoes the balance axiom (values don't
// sum to U(N) − U(∅)), which is why Shapley remains the compensation rule.

// ExactBanzhaf returns exact Banzhaf values by complete enumeration
// (n ≤ MaxExactPlayers).
func ExactBanzhaf(g game.Game) []float64 {
	n := g.N()
	if n > MaxExactPlayers {
		panic(fmt.Sprintf("core: ExactBanzhaf limited to %d players, got %d", MaxExactPlayers, n))
	}
	if n == 0 {
		return nil
	}
	size := 1 << uint(n)
	util := make([]float64, size)
	s := bitset.New(n)
	for mask := 0; mask < size; mask++ {
		s.Clear()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(i)
			}
		}
		util[mask] = g.Value(s)
	}
	bv := make([]float64, n)
	denom := float64(int(1) << uint(n-1))
	for mask := 0; mask < size; mask++ {
		for i := 0; i < n; i++ {
			bit := 1 << uint(i)
			if mask&bit == 0 {
				bv[i] += (util[mask|bit] - util[mask]) / denom
			}
		}
	}
	return bv
}

// MonteCarloBanzhaf approximates Banzhaf values with tau uniformly sampled
// coalitions per player: each sample draws S ⊆ N∖{i} by independent fair
// coin flips and records U(S∪{i}) − U(S).
func MonteCarloBanzhaf(g game.Game, tau int, r *rng.Source) []float64 {
	n := g.N()
	bv := make([]float64, n)
	if n == 0 || tau <= 0 {
		return bv
	}
	s := bitset.New(n)
	for i := 0; i < n; i++ {
		var sum float64
		for t := 0; t < tau; t++ {
			s.Clear()
			for j := 0; j < n; j++ {
				if j != i && r.Uint64()&1 == 1 {
					s.Add(j)
				}
			}
			without := g.Value(s)
			s.Add(i)
			sum += g.Value(s) - without
		}
		bv[i] = sum / float64(tau)
	}
	return bv
}
