package core

import (
	"fmt"

	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// The Banzhaf value is the other classical semivalue: instead of averaging
// a player's marginal contribution over permutations (sizes weighted like
// Shapley), it averages over all 2^{n−1} coalitions of the other players
// with EQUAL weight. Data-valuation practice sometimes prefers it because
// its per-coalition weight is size-independent, making variance analysis
// elementary. It forgoes the balance axiom (values don't sum to
// U(N) − U(∅)), which is why Shapley remains the compensation rule.
//
// Both estimators are heads of the semivalue layer: exact enumeration
// folds the utility table with the Banzhaf subset weight 2^{1−n}
// (a power of two, so the fold is bit-identical to the historic
// divide-by-2^{n−1} loop), and the Monte Carlo estimator is a permutation
// pass re-weighted with the Banzhaf position coefficients
// ω(pos) = n·C(n−1,pos)/2^{n−1} — the same walks that price Shapley, so a
// multi-head pass gets Banzhaf for free.

// ExactBanzhaf returns exact Banzhaf values by complete enumeration
// (n ≤ MaxExactPlayers).
func ExactBanzhaf(g game.Game) []float64 {
	n := g.N()
	if n > MaxExactPlayers {
		panic(fmt.Sprintf("core: ExactBanzhaf limited to %d players, got %d", MaxExactPlayers, n))
	}
	if n == 0 {
		return nil
	}
	return ExactSemivalue(g, semivalueBanzhaf)
}

// MonteCarloBanzhaf approximates Banzhaf values by permutation sampling
// through the semivalue layer: each of the τ walks re-weights its observed
// marginals with the Banzhaf position coefficients. Historically this
// estimator drew one independent coalition per player per sample; the
// permutation form observes all n players per walk from the same samples
// Shapley uses, which is what lets one pass price both.
func MonteCarloBanzhaf(g game.Game, tau int, r *rng.Source) []float64 {
	n := g.N()
	if n == 0 || tau <= 0 {
		return make([]float64, n)
	}
	return MonteCarloSemivalues(g, banzhafHead, tau, r)[0]
}
