package core

import (
	"testing"

	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/utility"
)

// The batched update walk's determinism contract: one shared permutation
// pass over k pending points produces EXACTLY the bits of the per-point
// sequential reference — for the delta form, k independent τ-walks against
// the fixed base sharing the permutation stream (BatchDeltaAddSeq); for
// the pivot form, k successive AddSame calls (BatchAddSameSeq) — at every
// worker count, on both the incremental-prefix and scratch-fallback paths.

// batchPoints fabricates k deterministic pending points for a utility.
func batchPoints(u *utility.ModelUtility, k int) []dataset.Point {
	dim := u.Train().Dim()
	pts := make([]dataset.Point, k)
	for j := range pts {
		x := make([]float64, dim)
		for i := range x {
			x[i] = 0.2*float64(i+1) - 0.15*float64(j+1)
		}
		pts[j] = dataset.Point{X: x, Y: (j + 1) % 3}
	}
	return pts
}

// knnBatchPair returns the (n+k)-player updated KNN game twice: Prefixer
// visible, and hidden behind game.Func (scratch fallback).
func knnBatchPair(t *testing.T, n, k int) (*utility.ModelUtility, game.Game) {
	t.Helper()
	u, _ := knnPair(t, n)
	uPlus := u.Append(batchPoints(u, k)...)
	return uPlus, game.Func{Players: n + k, U: uPlus.Value}
}

func baseValues(n int) []float64 {
	sv := make([]float64, n)
	for i := range sv {
		sv[i] = 0.01*float64(i) - 0.003*float64(n-i)
	}
	return sv
}

func TestBatchDeltaAddMatchesSequentialReference(t *testing.T) {
	const n, k, tau = 14, 5, 40
	uPlus, hidden := knnBatchPair(t, n, k)
	oldSV := baseValues(n)

	want, err := BatchDeltaAddSeq(uPlus, oldSV, k, tau, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	wantFB, err := BatchDeltaAddSeq(hidden, oldSV, k, tau, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "seq incremental vs fallback", want, wantFB)

	for _, workers := range []int{1, 2, 3, 4, 16} {
		e := NewEngine(WithWorkers(workers))
		got, err := e.BatchDeltaAdd(uPlus, oldSV, k, tau, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		sameSlice(t, "engine incremental", got, want)
		if st := e.Stats(); st.Issued != tau || st.Budget != tau {
			t.Fatalf("workers=%d: stats issued=%d budget=%d, want %d", workers, st.Issued, st.Budget, tau)
		}
		gotFB, err := e.BatchDeltaAdd(hidden, oldSV, k, tau, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		sameSlice(t, "engine fallback", gotFB, want)
	}
}

func TestBatchDeltaAddK1MatchesDeltaAdd(t *testing.T) {
	const n, tau = 12, 30
	uPlus, _ := knnBatchPair(t, n, 1)
	oldSV := baseValues(n)

	want, err := DeltaAdd(uPlus, oldSV, tau, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := BatchDeltaAddSeq(uPlus, oldSV, 1, tau, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "seq vs DeltaAdd", seq, want)
	got, err := NewEngine().BatchDeltaAdd(uPlus, oldSV, 1, tau, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "engine vs DeltaAdd", got, want)
	gotE, err := NewEngine().DeltaAdd(uPlus, oldSV, tau, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "engine DeltaAdd vs batch", gotE, got)
}

// pivotFixture builds a keepPerms pivot state over the n-player base and
// the (n+k)-player updated game, plus k per-point RNG sources.
func pivotFixture(t *testing.T, n, k int) (*PivotState, game.Game, game.Game) {
	t.Helper()
	u, _ := knnPair(t, n)
	st := PivotInit(u, 25, true, rng.New(3))
	uPlus := u.Append(batchPoints(u, k)...)
	return st, uPlus, game.Func{Players: n + k, U: uPlus.Value}
}

func splitSources(seed uint64, k int) []*rng.Source {
	r := rng.New(seed)
	rs := make([]*rng.Source, k)
	for i := range rs {
		rs[i] = r.Split()
	}
	return rs
}

func TestBatchAddSameMatchesSequentialReference(t *testing.T) {
	const n, k = 14, 5
	st, uPlus, hidden := pivotFixture(t, n, k)

	ref := st.Clone()
	want, err := BatchAddSameSeq(ref, uPlus, k, splitSources(9, k))
	if err != nil {
		t.Fatal(err)
	}
	refFB := st.Clone()
	wantFB, err := BatchAddSameSeq(refFB, uPlus, k, splitSources(9, k))
	if err != nil {
		t.Fatal(err)
	}
	_ = hidden
	sameSlice(t, "seq twice", want, wantFB)

	for _, workers := range []int{1, 2, 3, 4, 16} {
		for _, g := range []game.Game{uPlus, hidden} {
			cl := st.Clone()
			e := NewEngine(WithWorkers(workers))
			got, err := e.BatchAddSame(cl, g, k, splitSources(9, k))
			if err != nil {
				t.Fatal(err)
			}
			sameSlice(t, "engine batch SV", got, want)
			sameSlice(t, "engine batch LSV", cl.LSV, ref.LSV)
			if len(cl.perms) != len(ref.perms) {
				t.Fatalf("evolved perm count %d, want %d", len(cl.perms), len(ref.perms))
			}
			for i := range cl.perms {
				if cl.slots[i] != ref.slots[i] {
					t.Fatalf("perm %d: slot %d, want %d", i, cl.slots[i], ref.slots[i])
				}
				for j := range cl.perms[i] {
					if cl.perms[i][j] != ref.perms[i][j] {
						t.Fatalf("perm %d position %d: %d, want %d", i, j, cl.perms[i][j], ref.perms[i][j])
					}
				}
			}
		}
	}
}

func TestBatchAddSameK1MatchesAddSame(t *testing.T) {
	const n = 12
	st, uPlus, _ := pivotFixture(t, n, 1)

	ref := st.Clone()
	want, err := ref.AddSame(uPlus, splitSources(4, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	cl := st.Clone()
	got, err := NewEngine().BatchAddSame(cl, uPlus, 1, splitSources(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "k=1 batch vs AddSame", got, want)
	sameSlice(t, "k=1 LSV", cl.LSV, ref.LSV)
}

func TestBatchAddErrors(t *testing.T) {
	const n, k = 8, 3
	uPlus, _ := knnBatchPair(t, n, k)
	oldSV := baseValues(n)
	e := NewEngine()

	if _, err := e.BatchDeltaAdd(uPlus, oldSV, k, 0, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaAdd accepted tau=0")
	}
	if _, err := e.BatchDeltaAdd(uPlus, oldSV, k+1, 10, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaAdd accepted a mis-sized game")
	}
	if _, err := e.BatchDeltaAdd(uPlus, oldSV, 0, 10, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaAdd accepted k=0")
	}
	if _, err := BatchDeltaAddSeq(uPlus, oldSV, k, 0, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaAddSeq accepted tau=0")
	}

	st, uPlusP, _ := pivotFixture(t, n, k)
	if _, err := e.BatchAddSame(st.Clone(), uPlusP, k, splitSources(1, k-1)); err == nil {
		t.Fatal("BatchAddSame accepted a short source list")
	}
	if _, err := e.BatchAddSame(st.Clone(), uPlusP, k+1, splitSources(1, k+1)); err == nil {
		t.Fatal("BatchAddSame accepted a mis-sized game")
	}
	noPerms := PivotInit(game.Func{Players: n, U: uPlusP.Value}, 5, false, rng.New(2))
	if _, err := e.BatchAddSame(noPerms, uPlusP, k, splitSources(1, k)); err != ErrNoPermutations {
		t.Fatalf("BatchAddSame without permutations: %v, want ErrNoPermutations", err)
	}
	if _, err := BatchAddSameSeq(noPerms, uPlusP, k, splitSources(1, k)); err != ErrNoPermutations {
		t.Fatalf("BatchAddSameSeq without permutations: %v, want ErrNoPermutations", err)
	}
}
