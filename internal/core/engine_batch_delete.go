package core

import (
	"fmt"
	"sync"
	"time"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// This file implements the batched DELETION walk — the removal-side
// counterpart of engine_batch.go. The same two families, mirrored:
//
//   - BatchDeltaDelete shares the common-survivor chain. Per-point
//     DeltaDelete pays two prefix walks per permutation; across k
//     departing points the without-chain (a walk of the survivors only)
//     is the SAME for every point once permutations are drawn over the
//     COMMON survivors, so the producer walks it once and the k
//     with-chains — each seeded with its departing point — read its
//     utilities from a buffer: (k+1) chains per permutation instead of
//     2k.
//
//   - BatchDeleteSame evolves the stored permutations through all k
//     removals first (pure integer bookkeeping, zero randomness, zero
//     evaluations) and walks each FINAL permutation once in the final
//     (n−k)-player game. k successive DeleteSame calls rebuild SV/LSV
//     from scratch at every step, so the intermediate walks are dead
//     work — the batch skips them for a genuine k× evaluation saving
//     while landing on bit-identical state: the final walk visits the
//     same permutations in the same game either way.
//
// Parallelism follows engine_batch.go's contract. The delta form stripes
// over the DEPARTING POINTS (each dsv_j single-owner); the pivot form has
// one shared pass, so it stripes over the PLAYER ROWS of rsv/dlsv like
// the preprocessing fills, with the producer publishing each walk's
// prefix utilities. Either way every accumulator is written by exactly
// one worker, fed in chunk issue order — bit-identical to the sequential
// references at any worker count. All randomness (the delta form's
// permutation draws) is consumed in the producer; the pivot form consumes
// none at all.
//
// Neither pass supports adaptive early stop (shared permutations couple
// the points' budgets) or extra semivalue heads (the batched deletes are
// Shapley-only; the planner never routes a head-carrying session here).
// Stats report Issued == Budget.

// BatchDeltaDelete runs the batched delta deletion (Algorithm 8
// generalised to k departing points): g is the n-player PRE-batch game,
// oldSV the n pre-batch values, points the departing indices in arrival
// order. It returns n entries — every survivor's value adjusted by the k
// points' summed (negated) deltas folded in arrival order, and 0 for each
// removed player. Bit-identical to BatchDeltaDeleteSeq for the same seed
// at every worker count; at k = 1 bit-identical to DeltaDelete.
func (e *Engine) BatchDeltaDelete(g game.Game, oldSV []float64, points []int, tau int, r *rng.Source) ([]float64, error) {
	n := g.N()
	if len(oldSV) != n {
		return nil, fmt.Errorf("core: BatchDeltaDelete oldSV has %d entries, want %d", len(oldSV), n)
	}
	if err := checkBatchDelete(n, points); err != nil {
		return nil, err
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: BatchDeltaDelete requires tau > 0, got %d", tau)
	}
	k := len(points)
	if k == n {
		e.stats = EngineStats{Budget: tau, Workers: 1}
		e.headVals = nil
		return make([]float64, n), nil
	}
	survivors := batchSurvivors(n, points)
	c := n - k
	workers := e.effectiveWorkers(k)
	e.stats = EngineStats{Budget: tau, Workers: workers}
	e.headVals = nil

	uEmpty := g.Value(bitset.New(n))
	uP := make([]float64, k)
	for j, p := range points {
		uP[j] = g.Value(bitset.FromIndices(n, p))
	}
	dsv := zeroMat(&e.scratch.dsv, k, n)

	start := time.Now()
	if workers == 1 {
		wBase := newPrefixWalker(g)
		wWith := newPrefixWalker(g)
		perm := reuseInts(e.scratch.perm, c)
		utils := reuseFloats(e.scratch.utils, c)
		e.scratch.perm, e.scratch.utils = perm, utils
		for t := 0; t < tau; t++ {
			r.Perm(perm)
			wBase.reset()
			for pos, idx := range perm {
				utils[pos] = wBase.add(survivors[idx])
			}
			for j := 0; j < k; j++ {
				batchDeltaDeleteStep(wWith, perm, survivors, utils, uEmpty, uP[j], points[j], c+1, dsv[j])
			}
		}
	} else {
		e.runDeltaDeleteBatchStriped(g, survivors, points, k, tau, r, uEmpty, uP, dsv, workers)
	}
	e.stats.Seconds = time.Since(start).Seconds()
	e.stats.Issued = tau
	e.stats.Updates = int64(tau) * int64(k) * int64(c)

	out := make([]float64, n)
	for _, q := range survivors {
		out[q] = oldSV[q]
	}
	for j := 0; j < k; j++ {
		for _, q := range survivors {
			out[q] += dsv[j][q] / float64(tau)
		}
	}
	return out, nil
}

// batchDeltaDeleteStep runs one departing point's with-chain over one
// walked permutation — DeltaDelete's inner loop with the survivor chain's
// utilities read from the shared buffer instead of re-walked. denom is
// c+1 = n−k+1, the survivor-game stratification weight.
func batchDeltaDeleteStep(w *prefixWalker, perm, survivors []int, utils []float64, uEmpty, uP float64, p, denom int, dsv []float64) {
	w.reset()
	prevNo := uEmpty
	prevWith := w.seed(p, uP)
	for pos, idx := range perm {
		q := survivors[idx]
		curNo := utils[pos]
		curWith := w.add(q)
		dmc := (curWith - curNo) - (prevWith - prevNo)
		dsv[q] -= dmc * float64(pos+1) / float64(denom)
		prevNo, prevWith = curNo, curWith
	}
}

// runDeltaDeleteBatchStriped is BatchDeltaDelete's parallel path: the
// producer samples survivor permutations and walks the shared
// common-survivor chain into double-buffered chunks (reusing the delta
// batch slots — the buffers resize per pass); worker w owns the
// contiguous departing-point stripe jlo ≤ j < jhi and runs only those
// with-chains. Each dsv[j] is written by exactly one worker in chunk
// issue order, so every bit matches the serial path.
func (e *Engine) runDeltaDeleteBatchStriped(g game.Game, survivors, points []int, k, tau int, r *rng.Source, uEmpty float64, uP []float64, dsv [][]float64, workers int) {
	const depth = 2
	c := len(survivors)
	if e.scratch.deltaSlots == nil {
		e.scratch.deltaSlots = make([]*deltaBatchChunk, depth)
		for s := range e.scratch.deltaSlots {
			e.scratch.deltaSlots[s] = &deltaBatchChunk{
				perms: make([][]int, e.chunk),
				utils: make([][]float64, e.chunk),
			}
		}
	}
	slots := e.scratch.deltaSlots
	for _, ch := range slots {
		for p := 0; p < e.chunk; p++ {
			ch.perms[p] = reuseInts(ch.perms[p], c)
			ch.utils[p] = reuseFloats(ch.utils[p], c)
		}
	}

	chans := make([]chan *deltaBatchChunk, workers)
	var wwg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		chans[wk] = make(chan *deltaBatchChunk, depth)
		jlo, jhi := wk*k/workers, (wk+1)*k/workers
		wwg.Add(1)
		go func(jlo, jhi int, ch chan *deltaBatchChunk) {
			defer wwg.Done()
			w := newPrefixWalker(g)
			for cch := range ch {
				for p := 0; p < cch.count; p++ {
					for j := jlo; j < jhi; j++ {
						batchDeltaDeleteStep(w, cch.perms[p], survivors, cch.utils[p], uEmpty, uP[j], points[j], c+1, dsv[j])
					}
				}
				cch.wg.Done()
			}
		}(jlo, jhi, chans[wk])
	}

	wBase := newPrefixWalker(g)
	issued := 0
	for si := 0; issued < tau; si++ {
		cch := slots[si%depth]
		cch.wg.Wait()
		count := e.chunk
		if rem := tau - issued; rem < count {
			count = rem
		}
		cch.count = count
		for p := 0; p < count; p++ {
			perm := cch.perms[p]
			r.Perm(perm)
			wBase.reset()
			u := cch.utils[p]
			for pos, idx := range perm {
				u[pos] = wBase.add(survivors[idx])
			}
		}
		cch.wg.Add(workers)
		for _, ch := range chans {
			ch <- cch
		}
		issued += count
	}
	for _, ch := range chans {
		close(ch)
	}
	wwg.Wait()
}

// deleteSameChunk is one batch of evolved permutations — with their
// adjusted pivot slots and prefix utilities — in flight between the
// producer and the row-striped workers.
type deleteSameChunk struct {
	count int
	perms [][]int // aliases the state's evolved permutation buffers
	slots []int
	utils [][]float64
	wg    sync.WaitGroup
}

// BatchDeleteSame runs the batched pivot deletion: the producer threads
// every stored permutation through all k removals (deleteEvolveStep per
// point, arrival order), then ONE full walk per evolved permutation in
// the final (n−k)-player game gMinus rebuilds SV and LSV — exactly the
// state k successive DeleteSame calls land on, minus their k−1
// intermediate walks. points are original n-player indices in arrival
// order; gMinus must renumber survivors by order-preserving compaction.
// st is mutated exactly as the sequential loop would mutate it (evolved
// permutations, adjusted slots, rebuilt SV/LSV); no randomness is
// consumed. Bit-identical to BatchDeleteSameSeq at every worker count.
func (e *Engine) BatchDeleteSame(st *PivotState, gMinus game.Game, points []int) ([]float64, error) {
	if st.perms == nil {
		return nil, ErrNoPermutations
	}
	n := st.N()
	if err := checkBatchDelete(n, points); err != nil {
		return nil, err
	}
	k := len(points)
	if k >= n {
		return nil, fmt.Errorf("core: BatchDeleteSame would remove every player")
	}
	m := n - k
	if gMinus.N() != m {
		return nil, fmt.Errorf("core: BatchDeleteSame game has %d players, want %d", gMinus.N(), m)
	}
	workers := e.effectiveWorkers(m)
	e.stats = EngineStats{Budget: st.Tau, Workers: workers}
	e.headVals = nil

	// Per-step removal indices translated through the earlier removals:
	// rel[j] is points[j] in the numbering current when step j runs.
	rel := make([]int, k)
	for j, p := range points {
		rel[j] = p
		for _, d := range points[:j] {
			if d < p {
				rel[j]--
			}
		}
	}

	rsv := zeroMat(&e.scratch.rsv, 1, m)[0]
	dlsv := zeroMat(&e.scratch.dlsv, 1, m)[0]
	uEmpty := gMinus.Value(bitset.New(m))

	start := time.Now()
	if workers == 1 {
		w := newPrefixWalker(gMinus)
		for t := range st.perms {
			perm, slot := st.perms[t], st.slots[t]
			for _, p := range rel {
				perm, slot = deleteEvolveStep(perm, slot, p)
			}
			st.perms[t], st.slots[t] = perm, slot
			w.reset()
			prev := uEmpty
			for pos, q := range perm {
				cur := w.add(q)
				mc := cur - prev
				rsv[q] += mc
				if pos < slot {
					dlsv[q] += mc
				}
				prev = cur
			}
		}
	} else {
		e.runDeleteSameStriped(st, gMinus, rel, m, uEmpty, rsv, dlsv, workers)
	}
	e.stats.Seconds = time.Since(start).Seconds()
	e.stats.Issued = st.Tau
	e.stats.Updates = int64(st.Tau) * int64(m)

	sv := make([]float64, m)
	lsv := make([]float64, m)
	for i := 0; i < m; i++ {
		sv[i] = rsv[i] / float64(st.Tau)
		lsv[i] = dlsv[i] / float64(st.Tau)
	}
	st.SV = sv
	st.LSV = lsv
	return append([]float64(nil), sv...), nil
}

// runDeleteSameStriped is BatchDeleteSame's parallel path. Unlike the
// per-point batch stripes there is only ONE walk per permutation here, so
// parallelism stripes over the PLAYER ROWS of rsv/dlsv (the fill engine's
// pattern): the producer evolves each permutation, walks its prefix
// utilities once, and ships (perm, slot, utils) chunks; worker w re-derives
// the marginals from the utility diffs and folds only rows lo ≤ q < hi.
// Single-owner rows fed in chunk issue order — bit-identical to serial.
func (e *Engine) runDeleteSameStriped(st *PivotState, gMinus game.Game, rel []int, m int, uEmpty float64, rsv, dlsv []float64, workers int) {
	const depth = 2
	if e.scratch.delSlots == nil {
		e.scratch.delSlots = make([]*deleteSameChunk, depth)
		for s := range e.scratch.delSlots {
			e.scratch.delSlots[s] = &deleteSameChunk{
				perms: make([][]int, e.chunk),
				slots: make([]int, e.chunk),
				utils: make([][]float64, e.chunk),
			}
		}
	}
	slots := e.scratch.delSlots
	for _, c := range slots {
		for p := 0; p < e.chunk; p++ {
			c.utils[p] = reuseFloats(c.utils[p], m)
		}
	}

	chans := make([]chan *deleteSameChunk, workers)
	var wwg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		chans[wk] = make(chan *deleteSameChunk, depth)
		lo, hi := wk*m/workers, (wk+1)*m/workers
		wwg.Add(1)
		go func(lo, hi int, ch chan *deleteSameChunk) {
			defer wwg.Done()
			for c := range ch {
				for p := 0; p < c.count; p++ {
					perm, slot, utils := c.perms[p], c.slots[p], c.utils[p]
					prev := uEmpty
					for pos, q := range perm {
						cur := utils[pos]
						if q >= lo && q < hi {
							mc := cur - prev
							rsv[q] += mc
							if pos < slot {
								dlsv[q] += mc
							}
						}
						prev = cur
					}
				}
				c.wg.Done()
			}
		}(lo, hi, chans[wk])
	}

	w := newPrefixWalker(gMinus)
	tau := len(st.perms)
	issued := 0
	for si := 0; issued < tau; si++ {
		c := slots[si%depth]
		c.wg.Wait()
		count := e.chunk
		if rem := tau - issued; rem < count {
			count = rem
		}
		c.count = count
		for p := 0; p < count; p++ {
			t := issued + p
			perm, slot := st.perms[t], st.slots[t]
			for _, d := range rel {
				perm, slot = deleteEvolveStep(perm, slot, d)
			}
			st.perms[t], st.slots[t] = perm, slot
			w.reset()
			u := c.utils[p]
			for pos, q := range perm {
				u[pos] = w.add(q)
			}
			c.perms[p], c.slots[p] = perm, slot
		}
		c.wg.Add(workers)
		for _, ch := range chans {
			ch <- c
		}
		issued += count
	}
	for _, ch := range chans {
		close(ch)
	}
	wwg.Wait()
}
