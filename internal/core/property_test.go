package core

// Property-based tests over randomly generated games: every estimator must
// respect the axioms it can respect exactly, and converge to exact values
// in expectation. These complement the per-algorithm tests with coverage of
// game shapes no one thought to write down.

import (
	"math"
	"testing"
	"testing/quick"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

// randomGame builds a small deterministic pseudo-random game from quick's
// raw inputs.
func randomGame(seed uint64, nRaw uint8) tableGame {
	return tableGame{n: 3 + int(nRaw%6), seed: seed}
}

func TestQuickTMCBalanceAtZeroTolerance(t *testing.T) {
	// With tol = 0 no permutation truncates, so TMC inherits MC's exact
	// per-permutation balance.
	f := func(seed uint64, nRaw, tauRaw uint8) bool {
		g := randomGame(seed, nRaw)
		tau := 1 + int(tauRaw%10)
		sv := TruncatedMonteCarlo(g, tau, 0, rng.New(seed+3))
		sum := 0.0
		for _, v := range sv {
			sum += v
		}
		want := g.Value(bitset.Full(g.n)) - g.Value(bitset.New(g.n))
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeltaAddConsistency(t *testing.T) {
	// For any random game, DeltaAdd from exact old values converges toward
	// the exact new values (loose tolerance at moderate τ).
	f := func(seed uint64, nRaw uint8) bool {
		gPlus := randomGame(seed, nRaw)
		n := gPlus.n - 1
		gD := restrictFirst(gPlus, n)
		oldSV := Exact(gD)
		got, err := DeltaAdd(gPlus, oldSV, 4000, rng.New(seed+7))
		if err != nil {
			return false
		}
		want := Exact(gPlus)
		return stat.MSE(got, want) < 5e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickYNNNExactFillAllDeletions(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		g := randomGame(seed, nRaw)
		ds := PreprocessDeletionExact(g)
		for p := 0; p < g.n; p++ {
			got, err := ds.Merge(p)
			if err != nil {
				return false
			}
			want := expandDeleted(Exact(game.NewRestrict(g, p)), g.n, p)
			if maxAbsDiff(got, want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickExactSymmetryOnSymmetrisedGames(t *testing.T) {
	// Symmetrise a random game over players 0 and 1 by averaging with the
	// swapped game; exact Shapley values of 0 and 1 must then coincide.
	f := func(seed uint64, nRaw uint8) bool {
		base := randomGame(seed, nRaw)
		n := base.n
		swapped := game.Func{Players: n, U: func(s bitset.Set) float64 {
			sw := bitset.New(n)
			s.ForEach(func(i int) {
				switch i {
				case 0:
					sw.Add(1)
				case 1:
					sw.Add(0)
				default:
					sw.Add(i)
				}
			})
			return base.Value(sw)
		}}
		sym := game.Func{Players: n, U: func(s bitset.Set) float64 {
			return 0.5 * (base.Value(s) + swapped.Value(s))
		}}
		sv := Exact(sym)
		return math.Abs(sv[0]-sv[1]) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickLeaveOneOutBoundedByRange(t *testing.T) {
	// |LOO_i| ≤ range of the game's utilities (tableGame ⊂ [0,1)).
	f := func(seed uint64, nRaw uint8) bool {
		g := randomGame(seed, nRaw)
		for _, v := range LeaveOneOut(g) {
			if math.Abs(v) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickStratifiedNullPlayer(t *testing.T) {
	// A null player (utility ignores it) gets exactly zero from the
	// stratified estimator: every sampled marginal is zero.
	f := func(seed uint64, nRaw uint8) bool {
		inner := randomGame(seed, nRaw)
		n := inner.n + 1
		null := n - 1
		g := game.Func{Players: n, U: func(s bitset.Set) float64 {
			sub := bitset.New(inner.n)
			s.ForEach(func(i int) {
				if i != null {
					sub.Add(i)
				}
			})
			return inner.Value(sub)
		}}
		sv := StratifiedMonteCarlo(g, 5, rng.New(seed+11))
		return sv[null] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickTrackerMatchesMC(t *testing.T) {
	f := func(seed uint64, nRaw, tauRaw uint8) bool {
		g := randomGame(seed, nRaw)
		tau := 1 + int(tauRaw%20)
		mc := MonteCarlo(g, tau, rng.New(seed+13))
		tr := NewTracker(g, rng.New(seed+13))
		tr.StepN(tau)
		return maxAbsDiff(mc, tr.Values()) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
