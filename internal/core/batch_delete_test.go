package core

import (
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// The batched deletion walk's determinism contract mirrors the addition
// side: one shared pass over k departing points produces EXACTLY the bits
// of the per-point sequential reference — for the delta form, k
// independent τ-walks over the common survivors sharing the permutation
// stream (BatchDeltaDeleteSeq); for the pivot form, k successive
// DeleteSame calls (BatchDeleteSameSeq) — at every worker count, on both
// the incremental-prefix and scratch-fallback paths.

func TestBatchDeltaDeleteMatchesSequentialReference(t *testing.T) {
	const n, tau = 14, 40
	points := []int{2, 11, 0, 7, 5} // arrival order, deliberately unsorted
	u, hidden := knnPair(t, n)
	oldSV := baseValues(n)

	want, err := BatchDeltaDeleteSeq(u, oldSV, points, tau, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	wantFB, err := BatchDeltaDeleteSeq(hidden, oldSV, points, tau, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "seq incremental vs fallback", want, wantFB)
	for _, p := range points {
		if want[p] != 0 {
			t.Fatalf("removed point %d reported %v, want 0", p, want[p])
		}
	}

	for _, workers := range []int{1, 2, 3, 4, 16} {
		e := NewEngine(WithWorkers(workers))
		got, err := e.BatchDeltaDelete(u, oldSV, points, tau, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		sameSlice(t, "engine incremental", got, want)
		if st := e.Stats(); st.Issued != tau || st.Budget != tau {
			t.Fatalf("workers=%d: stats issued=%d budget=%d, want %d", workers, st.Issued, st.Budget, tau)
		}
		gotFB, err := e.BatchDeltaDelete(hidden, oldSV, points, tau, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		sameSlice(t, "engine fallback", gotFB, want)
	}
}

func TestBatchDeltaDeleteK1MatchesDeltaDelete(t *testing.T) {
	const n, tau, p = 12, 30, 4
	u, _ := knnPair(t, n)
	oldSV := baseValues(n)

	want, err := DeltaDelete(u, oldSV, p, tau, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := BatchDeltaDeleteSeq(u, oldSV, []int{p}, tau, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "seq vs DeltaDelete", seq, want)
	got, err := NewEngine().BatchDeltaDelete(u, oldSV, []int{p}, tau, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "engine vs DeltaDelete", got, want)
	gotE, err := NewEngine().DeltaDelete(u, oldSV, p, tau, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "engine DeltaDelete vs batch", gotE, got)
}

func TestBatchDeltaDeleteEveryPlayer(t *testing.T) {
	const n, tau = 6, 10
	u, _ := knnPair(t, n)
	out, err := NewEngine().BatchDeltaDelete(u, baseValues(n), []int{0, 1, 2, 3, 4, 5}, tau, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("full-batch delete: out[%d] = %v, want 0", i, v)
		}
	}
}

// deletePivotFixture builds a keepPerms pivot state over the n-player
// base, the post-batch restricted game, and its scratch-fallback twin.
func deletePivotFixture(t *testing.T, n int, points []int) (*PivotState, game.Game, game.Game, game.Game) {
	t.Helper()
	u, _ := knnPair(t, n)
	st := PivotInit(u, 25, true, rng.New(3))
	rg := game.NewRestrict(u, points...)
	return st, u, rg, game.Func{Players: rg.N(), U: rg.Value}
}

func TestBatchDeleteSameMatchesSequentialReference(t *testing.T) {
	const n = 14
	points := []int{9, 1, 12, 4, 6}
	st, u, rg, hidden := deletePivotFixture(t, n, points)

	ref := st.Clone()
	want, err := BatchDeleteSameSeq(ref, u, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != n-len(points) {
		t.Fatalf("seq returned %d values, want %d", len(want), n-len(points))
	}

	for _, workers := range []int{1, 2, 3, 4, 16} {
		for _, g := range []game.Game{rg, hidden} {
			cl := st.Clone()
			e := NewEngine(WithWorkers(workers))
			got, err := e.BatchDeleteSame(cl, g, points)
			if err != nil {
				t.Fatal(err)
			}
			sameSlice(t, "engine batch SV", got, want)
			sameSlice(t, "engine batch LSV", cl.LSV, ref.LSV)
			if st := e.Stats(); st.Issued != cl.Tau || st.Budget != cl.Tau {
				t.Fatalf("workers=%d: stats issued=%d budget=%d, want %d", workers, st.Issued, st.Budget, cl.Tau)
			}
			if len(cl.perms) != len(ref.perms) {
				t.Fatalf("evolved perm count %d, want %d", len(cl.perms), len(ref.perms))
			}
			for i := range cl.perms {
				if cl.slots[i] != ref.slots[i] {
					t.Fatalf("perm %d: slot %d, want %d", i, cl.slots[i], ref.slots[i])
				}
				for j := range cl.perms[i] {
					if cl.perms[i][j] != ref.perms[i][j] {
						t.Fatalf("perm %d position %d: %d, want %d", i, j, cl.perms[i][j], ref.perms[i][j])
					}
				}
			}
		}
	}
}

func TestBatchDeleteSameK1MatchesDeleteSame(t *testing.T) {
	const n, p = 12, 7
	st, _, rg, _ := deletePivotFixture(t, n, []int{p})

	ref := st.Clone()
	want, err := ref.DeleteSame(rg, p)
	if err != nil {
		t.Fatal(err)
	}
	cl := st.Clone()
	got, err := NewEngine().BatchDeleteSame(cl, rg, []int{p})
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "k=1 batch vs DeleteSame", got, want)
	sameSlice(t, "k=1 LSV", cl.LSV, ref.LSV)
}

// TestDeleteSameThenAddSame checks the deletion leaves a coherent pivot
// artifact: the evolved permutations and slots must still drive AddSame,
// and deleting the point just added must restore the pre-add player count.
func TestDeleteSameThenAddSame(t *testing.T) {
	const n = 10
	u, _ := knnPair(t, n)
	st := PivotInit(u, 20, true, rng.New(7))

	rg := game.NewRestrict(u, 3)
	if _, err := st.DeleteSame(rg, 3); err != nil {
		t.Fatal(err)
	}
	if st.N() != n-1 {
		t.Fatalf("post-delete state covers %d players, want %d", st.N(), n-1)
	}
	for i, perm := range st.perms {
		if len(perm) != n-1 {
			t.Fatalf("perm %d has %d entries, want %d", i, len(perm), n-1)
		}
		if st.slots[i] < 0 || st.slots[i] > n-1 {
			t.Fatalf("perm %d slot %d out of range [0,%d]", i, st.slots[i], n-1)
		}
	}
	// The evolved artifact must still power an addition: the adjusted
	// slots are valid insertion points for an (n−1)-length permutation.
	gPlus := game.Func{Players: n, U: func(s bitset.Set) float64 {
		v := 0.0
		s.ForEach(func(i int) { v += float64(i + 1) })
		return v
	}}
	if _, err := st.AddSame(gPlus, rng.New(9)); err != nil {
		t.Fatal(err)
	}
	if st.N() != n {
		t.Fatalf("post-add state covers %d players, want %d", st.N(), n)
	}
}

func TestBatchDeleteErrors(t *testing.T) {
	const n = 8
	u, _ := knnPair(t, n)
	oldSV := baseValues(n)
	e := NewEngine()

	if _, err := e.BatchDeltaDelete(u, oldSV, []int{1, 2}, 0, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaDelete accepted tau=0")
	}
	if _, err := e.BatchDeltaDelete(u, oldSV, nil, 10, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaDelete accepted an empty batch")
	}
	if _, err := e.BatchDeltaDelete(u, oldSV, []int{1, 1}, 10, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaDelete accepted a duplicate point")
	}
	if _, err := e.BatchDeltaDelete(u, oldSV, []int{n}, 10, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaDelete accepted an out-of-range point")
	}
	if _, err := e.BatchDeltaDelete(u, oldSV[:n-1], []int{1}, 10, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaDelete accepted mis-sized oldSV")
	}
	if _, err := BatchDeltaDeleteSeq(u, oldSV, []int{1, 2}, 0, rng.New(1)); err == nil {
		t.Fatal("BatchDeltaDeleteSeq accepted tau=0")
	}

	st := PivotInit(u, 5, true, rng.New(2))
	rg := game.NewRestrict(u, 1, 2)
	if _, err := e.BatchDeleteSame(st.Clone(), u, []int{1, 2}); err == nil {
		t.Fatal("BatchDeleteSame accepted a mis-sized game")
	}
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if _, err := e.BatchDeleteSame(st.Clone(), rg, all); err == nil {
		t.Fatal("BatchDeleteSame accepted removing every player")
	}
	noPerms := PivotInit(u, 5, false, rng.New(2))
	if _, err := e.BatchDeleteSame(noPerms, rg, []int{1, 2}); err != ErrNoPermutations {
		t.Fatalf("BatchDeleteSame without permutations: %v, want ErrNoPermutations", err)
	}
	if _, err := BatchDeleteSameSeq(noPerms, u, []int{1, 2}); err != ErrNoPermutations {
		t.Fatalf("BatchDeleteSameSeq without permutations: %v, want ErrNoPermutations", err)
	}
	if _, err := noPerms.DeleteSame(game.NewRestrict(u, 0), 0); err != ErrNoPermutations {
		t.Fatalf("DeleteSame without permutations: %v, want ErrNoPermutations", err)
	}
}
