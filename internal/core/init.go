package core

import (
	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/semivalue"
)

// InitOptions selects which dynamic-update structures a combined
// initialisation pass should build alongside the Shapley estimates.
type InitOptions struct {
	// KeepPerms retains sampled permutations in the pivot state, enabling
	// Pivot-s (Algorithm 3) later. Costs O(τ·n) memory.
	KeepPerms bool
	// TrackDeletions fills the YN-NN store (Algorithm 6). Costs O(n³) memory
	// and O(n²) extra additions per permutation.
	TrackDeletions bool
	// MultiDelete, when ≥1, additionally fills a YNN-NNN store for deleting
	// exactly MultiDelete of the Candidates at once.
	MultiDelete int
	// Candidates restricts the multi-deletion store; required when
	// MultiDelete ≥ 1.
	Candidates []int
	// Store selects the storage backend for the deletion stores. The zero
	// value is the exact dense float64 default.
	Store StoreConfig
	// Heads lists extra semivalue weightings to price from the same pass
	// (see HeadValues). Heads consume no randomness, so the Shapley output
	// is bit-identical with or without them.
	Heads []semivalue.Weighting
}

// InitResult bundles the structures produced by Initialize. Pivot is always
// present; Deletion and Multi are nil unless requested.
type InitResult struct {
	Pivot    *PivotState
	Deletion *DeletionStore
	Multi    *MultiDeletionStore
	// HeadValues holds one estimate slice per requested head, in the order
	// of InitOptions.Heads; nil when no heads were requested.
	HeadValues [][]float64
}

// SV returns the Shapley estimates of the initialisation pass.
func (res *InitResult) SV() []float64 {
	return append([]float64(nil), res.Pivot.SV...)
}

// Initialize runs one Monte Carlo pass of τ permutations over g and builds
// every requested structure from the same samples: Shapley estimates, the
// pivot state's LSV (Algorithm 2), and the YN-NN / YNN-NNN utility arrays
// (Algorithm 6). Sharing the pass matters because utility evaluations — one
// model training each — dominate the cost; the bookkeeping that
// distinguishes the algorithms is nearly free by comparison.
func Initialize(g game.Game, tau int, opt InitOptions, r *rng.Source) (*InitResult, error) {
	n := g.N()
	res := &InitResult{
		Pivot: &PivotState{
			SV:  make([]float64, n),
			LSV: make([]float64, n),
			Tau: tau,
		},
	}
	if opt.KeepPerms {
		res.Pivot.perms = make([][]int, 0, tau)
		res.Pivot.slots = make([]int, 0, tau)
	}
	if opt.TrackDeletions {
		ds, err := NewDeletionStoreWith(n, opt.Store)
		if err != nil {
			return nil, err
		}
		res.Deletion = ds
	}
	if opt.MultiDelete >= 1 {
		ms, err := NewMultiDeletionStoreWith(n, opt.MultiDelete, opt.Candidates, opt.Store)
		if err != nil {
			return nil, err
		}
		res.Multi = ms
	}
	if n == 0 || tau <= 0 {
		return res, nil
	}

	w := newPrefixWalker(g)
	uEmpty := g.Value(bitset.New(n))
	utilities := make([]float64, n)
	hf := newHeadFold(opt.Heads, n)
	st := res.Pivot
	for k := 0; k < tau; k++ {
		perm := r.PermN(n)
		t := r.Intn(n + 1)
		w.reset()
		prev := uEmpty
		for pos, p := range perm {
			cur := w.add(p)
			utilities[pos] = cur
			m := cur - prev
			st.SV[p] += m
			if pos < t {
				st.LSV[p] += m
			}
			prev = cur
		}
		if opt.KeepPerms {
			st.perms = append(st.perms, perm)
			st.slots = append(st.slots, t)
		}
		if res.Deletion != nil {
			res.Deletion.AccumulatePermutation(perm, utilities, uEmpty)
		}
		if res.Multi != nil {
			res.Multi.AccumulatePermutation(perm, utilities, uEmpty)
		}
		if hf != nil {
			hf.foldWalk(perm, utilities, uEmpty, n)
		}
	}
	if hf != nil {
		res.HeadValues = hf.finish(tau)
	}
	for i := 0; i < n; i++ {
		st.SV[i] /= float64(tau)
		st.LSV[i] /= float64(tau)
	}
	if res.Deletion != nil {
		res.Deletion.finishSampled()
	}
	if res.Multi != nil {
		res.Multi.finishSampled()
	}
	return res, nil
}
