package core

import (
	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// ComplementaryMonteCarlo approximates Shapley values from complementary
// contributions (Zhang et al., "Efficient sampling approaches to Shapley
// value approximation", SIGMOD 2023 — the stratification the paper's
// related-work section highlights):
//
//	CC(S) = U(S) − U(N∖S),
//	SV_i  = (1/n) Σ_{j=1..n} E[CC(S) | i ∈ S, |S| = j].
//
// One sampled permutation yields n nested coalitions (its prefixes), and a
// single CC evaluation benefits every member of S simultaneously, so each
// utility evaluation informs many players — the source of its variance
// advantage on games with strong complementarities.
//
// The estimator averages within each (player, size) stratum and then
// averages the strata, skipping empty ones (they occur only at tiny τ).
func ComplementaryMonteCarlo(g game.Game, tau int, r *rng.Source) []float64 {
	n := g.N()
	sv := make([]float64, n)
	if n == 0 || tau <= 0 {
		return sv
	}
	sums := make([][]float64, n)
	counts := make([][]int, n)
	for i := range sums {
		sums[i] = make([]float64, n+1)
		counts[i] = make([]int, n+1)
	}
	perm := make([]int, n)
	prefix := bitset.New(n)
	complement := bitset.New(n)
	for t := 0; t < tau; t++ {
		r.Perm(perm)
		prefix.Clear()
		complement.CopyFrom(bitset.Full(n))
		for j := 1; j <= n; j++ {
			p := perm[j-1]
			prefix.Add(p)
			complement.Remove(p)
			cc := g.Value(prefix) - g.Value(complement)
			for _, i := range perm[:j] {
				sums[i][j] += cc
				counts[i][j]++
			}
		}
	}
	for i := 0; i < n; i++ {
		total := 0.0
		filled := 0
		for j := 1; j <= n; j++ {
			if counts[i][j] > 0 {
				total += sums[i][j] / float64(counts[i][j])
				filled++
			}
		}
		if filled > 0 {
			sv[i] = total / float64(filled)
		}
	}
	return sv
}
