package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

func TestLeaveOneOutAdditive(t *testing.T) {
	// On an additive game LOO equals the Shapley value (= the weights).
	g := game.Additive{Weights: []float64{1, -0.5, 2, 0}}
	got := LeaveOneOut(g)
	if d := maxAbsDiff(got, g.Weights); d > 1e-12 {
		t.Fatalf("LOO on additive game: diff %v", d)
	}
}

func TestLeaveOneOutUnanimityDegenerates(t *testing.T) {
	// LOO famously fails on redundancy: with carrier {0,1}, removing either
	// destroys all value (LOO = 1 each) but removing one of two IDENTICAL
	// redundant carriers {0 or 1 suffices} yields 0. Use the OR-game: every
	// single carrier member suffices.
	orGame := game.Func{Players: 3, U: func(s bitset.Set) float64 {
		if s.Contains(0) || s.Contains(1) {
			return 1
		}
		return 0
	}}
	loo := LeaveOneOut(orGame)
	// Either redundant player alone keeps U(N∖i) = 1 → LOO = 0.
	if loo[0] != 0 || loo[1] != 0 {
		t.Fatalf("LOO = %v, want 0 for redundant players", loo)
	}
	// Shapley assigns them each 1/2 — the distinction the paper's intro cites.
	sv := Exact(orGame)
	if math.Abs(sv[0]-0.5) > 1e-12 || math.Abs(sv[1]-0.5) > 1e-12 {
		t.Fatalf("SV = %v, want (0.5, 0.5, 0)", sv)
	}
}

func TestLeaveOneOutEvaluationCount(t *testing.T) {
	c := game.NewCounting(tableGame{n: 9, seed: 90})
	LeaveOneOut(c)
	if c.Calls() != 10 {
		t.Fatalf("LOO used %d evaluations, want n+1 = 10", c.Calls())
	}
}

func TestLeaveOneOutEmpty(t *testing.T) {
	if got := LeaveOneOut(game.Additive{}); len(got) != 0 {
		t.Fatalf("LOO on empty game = %v", got)
	}
}

func TestStratifiedMonteCarloConverges(t *testing.T) {
	g := tableGame{n: 9, seed: 91}
	want := Exact(g)
	got := StratifiedMonteCarlo(g, 2000, rng.New(1))
	if mse := stat.MSE(got, want); mse > 1e-4 {
		t.Fatalf("stratified MC MSE = %v", mse)
	}
}

func TestStratifiedMonteCarloExactOnAdditive(t *testing.T) {
	g := game.Additive{Weights: []float64{2, -1, 0.5, 3}}
	got := StratifiedMonteCarlo(g, 1, rng.New(2))
	if d := maxAbsDiff(got, g.ShapleyValues()); d > 1e-12 {
		t.Fatalf("stratified MC on additive game: diff %v", d)
	}
}

func TestStratifiedMonteCarloDegenerate(t *testing.T) {
	if got := StratifiedMonteCarlo(game.Additive{}, 5, rng.New(1)); len(got) != 0 {
		t.Fatal("stratified on empty game should be empty")
	}
	got := StratifiedMonteCarlo(game.Additive{Weights: []float64{1}}, 0, rng.New(1))
	if got[0] != 0 {
		t.Fatal("zero samples should give zero estimate")
	}
}

func TestTrackerConvergesToExact(t *testing.T) {
	g := tableGame{n: 8, seed: 92}
	want := Exact(g)
	tr := NewTracker(g, rng.New(3))
	tr.StepN(20000)
	if mse := stat.MSE(tr.Values(), want); mse > 1e-4 {
		t.Fatalf("tracker MSE = %v", mse)
	}
	if tr.Samples() != 20000 {
		t.Fatalf("Samples = %d", tr.Samples())
	}
}

func TestTrackerMatchesMonteCarlo(t *testing.T) {
	// Same seed, same τ ⇒ identical estimates (the tracker IS Algorithm 1
	// with running statistics).
	g := tableGame{n: 7, seed: 93}
	mc := MonteCarlo(g, 500, rng.New(4))
	tr := NewTracker(g, rng.New(4))
	tr.StepN(500)
	if d := maxAbsDiff(mc, tr.Values()); d > 1e-12 {
		t.Fatalf("tracker deviates from MC: %v", d)
	}
}

func TestTrackerStdErrsShrink(t *testing.T) {
	g := tableGame{n: 6, seed: 94}
	tr := NewTracker(g, rng.New(5))
	if !math.IsInf(tr.MaxStdErr(), 1) {
		t.Fatal("stderr before sampling should be +Inf")
	}
	tr.StepN(100)
	se100 := tr.MaxStdErr()
	tr.StepN(3900)
	se4000 := tr.MaxStdErr()
	if se4000 >= se100 {
		t.Fatalf("stderr did not shrink: %v → %v", se100, se4000)
	}
	// ~1/√τ scaling: 40× more samples ⇒ ~6.3× smaller, allow slack.
	if se4000 > se100/3 {
		t.Fatalf("stderr shrank too slowly: %v → %v", se100, se4000)
	}
}

func TestTrackerRunUntil(t *testing.T) {
	g := tableGame{n: 6, seed: 95}
	tr := NewTracker(g, rng.New(6))
	values, used := tr.RunUntil(0.05, 0.05, 30, 100000)
	if used >= 100000 {
		t.Fatalf("did not converge within cap (used %d)", used)
	}
	if used < 30 {
		t.Fatalf("stopped before minSamples: %d", used)
	}
	want := Exact(g)
	for i := range want {
		if math.Abs(values[i]-want[i]) > 0.1 {
			t.Fatalf("converged estimate %d off by %v", i, values[i]-want[i])
		}
	}
	// An impossible precision should exhaust the cap.
	tr2 := NewTracker(g, rng.New(7))
	_, used2 := tr2.RunUntil(1e-9, 0.05, 30, 200)
	if used2 != 200 {
		t.Fatalf("cap not honoured: %d", used2)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.0001, -3.719016},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("normalQuantile(0) did not panic")
		}
	}()
	normalQuantile(0)
}
