package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

// restrictFirst returns the sub-game of gPlus over its first n players —
// the "original dataset" view used by the addition tests.
func restrictFirst(gPlus game.Game, n int) game.Game {
	removed := make([]int, 0, gPlus.N()-n)
	for i := n; i < gPlus.N(); i++ {
		removed = append(removed, i)
	}
	return game.NewRestrict(gPlus, removed...)
}

// exactLSV computes the exact left-group average LSV⁺ (Lemma 1) for every
// original player by enumerating all (n+1)! permutations of the updated
// game. Used to validate PivotInit's sampler.
func exactLSV(gPlus game.Game) []float64 {
	m := gPlus.N()
	lsv := make([]float64, m-1)
	pivot := m - 1
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	count := 0
	prefix := bitset.New(m)
	var visit func(k int)
	var scan func()
	scan = func() {
		count++
		prefix.Clear()
		prev := gPlus.Value(prefix)
		seenPivot := false
		for _, p := range perm {
			prefix.Add(p)
			cur := gPlus.Value(prefix)
			if p == pivot {
				seenPivot = true
			} else if !seenPivot {
				lsv[p] += cur - prev
			}
			prev = cur
		}
	}
	visit = func(k int) {
		if k == m {
			scan()
			return
		}
		for i := k; i < m; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			visit(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	visit(0)
	for i := range lsv {
		lsv[i] /= float64(count)
	}
	return lsv
}

func TestPivotInitSVMatchesExact(t *testing.T) {
	gPlus := tableGame{n: 7, seed: 21}
	gD := restrictFirst(gPlus, 6)
	st := PivotInit(gD, 30000, false, rng.New(1))
	want := Exact(gD)
	if mse := stat.MSE(st.SV, want); mse > 1e-4 {
		t.Fatalf("PivotInit SV MSE = %v", mse)
	}
}

func TestPivotInitLSVUnbiased(t *testing.T) {
	gPlus := tableGame{n: 5, seed: 22}
	gD := restrictFirst(gPlus, 4)
	st := PivotInit(gD, 200000, false, rng.New(2))
	want := exactLSV(gPlus)
	if mse := stat.MSE(st.LSV, want); mse > 1e-4 {
		t.Fatalf("LSV MSE vs enumeration = %v\n got %v\nwant %v", mse, st.LSV, want)
	}
}

func TestPivotAddSameMatchesExact(t *testing.T) {
	gPlus := tableGame{n: 7, seed: 23}
	gD := restrictFirst(gPlus, 6)
	st := PivotInit(gD, 30000, true, rng.New(3))
	got, err := st.AddSame(gPlus, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(gPlus)
	if mse := stat.MSE(got, want); mse > 2e-4 {
		t.Fatalf("AddSame MSE = %v\n got %v\nwant %v", mse, got, want)
	}
	if st.N() != 7 {
		t.Fatalf("state N = %d after add", st.N())
	}
}

func TestPivotAddDifferentMatchesExact(t *testing.T) {
	gPlus := tableGame{n: 7, seed: 24}
	gD := restrictFirst(gPlus, 6)
	st := PivotInit(gD, 30000, false, rng.New(5))
	got, err := st.AddDifferent(gPlus, 30000, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(gPlus)
	if mse := stat.MSE(got, want); mse > 2e-4 {
		t.Fatalf("AddDifferent MSE = %v\n got %v\nwant %v", mse, got, want)
	}
}

func TestPivotAddDifferentLargerOfflineTau(t *testing.T) {
	// The Table V regime: a large offline τ_LSV with a modest online τ_RSV
	// must beat equal small τ on both. Averaged over repetitions to avoid
	// flaky single-draw comparisons.
	gPlus := tableGame{n: 6, seed: 25}
	gD := restrictFirst(gPlus, 5)
	want := Exact(gPlus)
	const reps = 30
	var mseSmall, mseBig float64
	for rep := 0; rep < reps; rep++ {
		seed := uint64(100 + rep)
		stSmall := PivotInit(gD, 50, false, rng.New(seed))
		gotSmall, err := stSmall.AddDifferent(gPlus, 50, rng.New(seed+1000))
		if err != nil {
			t.Fatal(err)
		}
		stBig := PivotInit(gD, 5000, false, rng.New(seed))
		gotBig, err := stBig.AddDifferent(gPlus, 50, rng.New(seed+1000))
		if err != nil {
			t.Fatal(err)
		}
		mseSmall += stat.MSE(gotSmall, want) / reps
		mseBig += stat.MSE(gotBig, want) / reps
	}
	if mseBig >= mseSmall {
		t.Fatalf("larger offline τ_LSV did not help: %v vs %v", mseBig, mseSmall)
	}
}

func TestPivotAddSameRequiresPermutations(t *testing.T) {
	gPlus := tableGame{n: 4, seed: 26}
	gD := restrictFirst(gPlus, 3)
	st := PivotInit(gD, 10, false, rng.New(7))
	if _, err := st.AddSame(gPlus, rng.New(8)); err != ErrNoPermutations {
		t.Fatalf("err = %v, want ErrNoPermutations", err)
	}
}

func TestPivotAddDifferentInvalidatesPermutations(t *testing.T) {
	g8 := tableGame{n: 8, seed: 27}
	g7 := restrictFirst(g8, 7)
	g6 := restrictFirst(g8, 6)
	st := PivotInit(g6, 50, true, rng.New(9))
	if !st.HasPermutations() {
		t.Fatal("keepPerms init lost permutations")
	}
	if _, err := st.AddDifferent(g7, 50, rng.New(10)); err != nil {
		t.Fatal(err)
	}
	if st.HasPermutations() {
		t.Fatal("AddDifferent should drop stored permutations")
	}
	if _, err := st.AddSame(g8, rng.New(11)); err != ErrNoPermutations {
		t.Fatalf("err = %v, want ErrNoPermutations", err)
	}
}

func TestPivotAddSizeMismatch(t *testing.T) {
	gPlus := tableGame{n: 6, seed: 28}
	gD := restrictFirst(gPlus, 5)
	st := PivotInit(gD, 10, true, rng.New(12))
	if _, err := st.AddSame(tableGame{n: 8, seed: 28}, rng.New(13)); err == nil {
		t.Fatal("AddSame with wrong game size should fail")
	}
	if _, err := st.AddDifferent(tableGame{n: 8, seed: 28}, 10, rng.New(13)); err == nil {
		t.Fatal("AddDifferent with wrong game size should fail")
	}
	if _, err := st.AddDifferent(gPlus, 0, rng.New(13)); err == nil {
		t.Fatal("AddDifferent with τ=0 should fail")
	}
}

func TestPivotSequentialAdds(t *testing.T) {
	// Two sequential AddSame calls track the exact values of the twice-
	// extended game. The LSV 2/3-decay is approximate, so the tolerance is
	// looser than for a single addition.
	g8 := tableGame{n: 8, seed: 29}
	g7 := restrictFirst(g8, 7)
	g6 := restrictFirst(g8, 6)
	st := PivotInit(g6, 20000, true, rng.New(14))
	if _, err := st.AddSame(g7, rng.New(15)); err != nil {
		t.Fatal(err)
	}
	got, err := st.AddSame(g8, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(g8)
	if mse := stat.MSE(got, want); mse > 5e-3 {
		t.Fatalf("two sequential AddSame MSE = %v", mse)
	}
}

func TestPivotAddSameReusesCachedUtilities(t *testing.T) {
	// The pivot reuse claim: with a shared cache, AddSame evaluates roughly
	// half the coalitions a fresh MC run over N⁺ would.
	gPlus := game.NewCached(tableGame{n: 11, seed: 30})
	counting := game.NewCounting(gPlus)
	gD := restrictFirst(counting, 10)
	st := PivotInit(gD, 200, true, rng.New(17))
	initCalls := counting.Calls()
	counting.Reset()
	hitsBefore, _ := gPlus.Stats()
	if _, err := st.AddSame(counting, rng.New(18)); err != nil {
		t.Fatal(err)
	}
	addCalls := counting.Calls()
	hitsAfter, _ := gPlus.Stats()
	if addCalls >= initCalls {
		t.Fatalf("AddSame evaluated %d ≥ init's %d coalitions", addCalls, initCalls)
	}
	// The t-prefix utilities must come from cache (they were computed in init).
	if hitsAfter <= hitsBefore {
		t.Fatal("AddSame produced no cache hits; prefix reuse broken")
	}
}

func TestPivotNewPointValueAccurate(t *testing.T) {
	gPlus := tableGame{n: 6, seed: 31}
	gD := restrictFirst(gPlus, 5)
	want := Exact(gPlus)
	st := PivotInit(gD, 20000, false, rng.New(19))
	got, err := st.AddDifferent(gPlus, 20000, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(got[5] - want[5]); d > 0.02 {
		t.Fatalf("new point SV = %v, want %v (diff %v)", got[5], want[5], d)
	}
}
