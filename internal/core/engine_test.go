package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/rng"
)

// additiveGame has exactly zero-variance marginal contributions: player
// i's marginal is (i+1)/n in every permutation, so the adaptive bound
// collapses to 0 as soon as enough samples accumulate.
type additiveGame struct{ n int }

func (g additiveGame) N() int { return g.n }

func (g additiveGame) Value(s bitset.Set) float64 {
	sum := 0.0
	s.ForEach(func(i int) { sum += float64(i + 1) })
	return sum / float64(g.n)
}

// assertBitEqual fails unless got and want are bitwise identical floats.
func assertBitEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v, want %v (not bit-identical)", name, i, got[i], want[i])
		}
	}
}

// The tentpole's core contract: the striped fill is bit-identical to the
// serial PreprocessDeletion for a fixed seed, at every worker count
// (including workers = 1 and workers > n) and at chunk sizes that do and
// do not divide τ.
func TestEnginePreprocessDeletionBitIdentical(t *testing.T) {
	const n, tau = 19, 97
	for _, seed := range []uint64{1, 7} {
		g := tableGame{n: n, seed: seed}
		serial := PreprocessDeletion(g, tau, rng.New(seed))
		for _, workers := range []int{1, 2, 3, 8, 40} {
			for _, chunk := range []int{0, 5} { // 0 → default
				e := NewEngine(WithWorkers(workers), WithChunkSize(chunk))
				ds := e.PreprocessDeletion(g, tau, rng.New(seed))
				if ds.tau != serial.tau {
					t.Fatalf("workers=%d chunk=%d: tau %d, want %d", workers, chunk, ds.tau, serial.tau)
				}
				assertBitEqual(t, "SV", ds.SV, serial.SV)
				assertBitEqual(t, "yn", ds.yn, serial.yn)
				assertBitEqual(t, "nn", ds.nn, serial.nn)
				st := e.Stats()
				if st.Issued != tau || st.Budget != tau || st.EarlyStop {
					t.Fatalf("workers=%d: stats %+v, want issued=budget=%d without early stop", workers, st, tau)
				}
				if st.Updates != int64(tau)*int64(n)*int64(n+1) {
					t.Fatalf("workers=%d: %d updates, want %d", workers, st.Updates, tau*n*(n+1))
				}
				if st.Throughput() <= 0 {
					t.Fatalf("workers=%d: throughput %v, want > 0", workers, st.Throughput())
				}
			}
		}
	}
}

func TestEnginePreprocessMultiDeletionBitIdentical(t *testing.T) {
	const n, d, tau = 15, 2, 80
	candidates := []int{1, 4, 7, 9, 12}
	g := tableGame{n: n, seed: 11}
	serial, err := PreprocessMultiDeletion(g, d, candidates, tau, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 16} {
		e := NewEngine(WithWorkers(workers))
		ms, err := e.PreprocessMultiDeletion(g, d, candidates, tau, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if ms.tau != serial.tau {
			t.Fatalf("workers=%d: tau %d, want %d", workers, ms.tau, serial.tau)
		}
		assertBitEqual(t, "SV", ms.SV, serial.SV)
		assertBitEqual(t, "y", ms.y, serial.y)
		assertBitEqual(t, "nn", ms.nn, serial.nn)
	}
}

// The combined initialisation pass must reproduce the serial Initialize
// exactly — Shapley sums, pivot LSV, kept permutations and slot draws
// (i.e. the whole randomness stream), and both stores — at every worker
// count.
func TestEngineInitializeBitIdentical(t *testing.T) {
	const n, tau = 14, 75
	g := monotoneGame{n: n, seed: 5}
	opts := []InitOptions{
		{},
		{KeepPerms: true},
		{TrackDeletions: true},
		{KeepPerms: true, TrackDeletions: true, MultiDelete: 2, Candidates: []int{0, 3, 6, 10}},
	}
	for oi, opt := range opts {
		serial, err := Initialize(g, tau, opt, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 20} {
			e := NewEngine(WithWorkers(workers))
			res, err := e.Initialize(g, tau, opt, rng.New(21))
			if err != nil {
				t.Fatal(err)
			}
			assertBitEqual(t, "Pivot.SV", res.Pivot.SV, serial.Pivot.SV)
			assertBitEqual(t, "Pivot.LSV", res.Pivot.LSV, serial.Pivot.LSV)
			if res.Pivot.Tau != serial.Pivot.Tau {
				t.Fatalf("opt %d workers=%d: Tau %d, want %d", oi, workers, res.Pivot.Tau, serial.Pivot.Tau)
			}
			if opt.KeepPerms {
				if len(res.Pivot.perms) != len(serial.Pivot.perms) {
					t.Fatalf("opt %d: kept %d perms, want %d", oi, len(res.Pivot.perms), len(serial.Pivot.perms))
				}
				for k := range serial.Pivot.perms {
					if res.Pivot.slots[k] != serial.Pivot.slots[k] {
						t.Fatalf("opt %d: slot[%d] = %d, want %d", oi, k, res.Pivot.slots[k], serial.Pivot.slots[k])
					}
					for j := range serial.Pivot.perms[k] {
						if res.Pivot.perms[k][j] != serial.Pivot.perms[k][j] {
							t.Fatalf("opt %d: perm[%d][%d] differs", oi, k, j)
						}
					}
				}
			}
			if opt.TrackDeletions {
				assertBitEqual(t, "Deletion.SV", res.Deletion.SV, serial.Deletion.SV)
				assertBitEqual(t, "Deletion.yn", res.Deletion.yn, serial.Deletion.yn)
				assertBitEqual(t, "Deletion.nn", res.Deletion.nn, serial.Deletion.nn)
			}
			if opt.MultiDelete >= 1 {
				assertBitEqual(t, "Multi.SV", res.Multi.SV, serial.Multi.SV)
				assertBitEqual(t, "Multi.y", res.Multi.y, serial.Multi.y)
				assertBitEqual(t, "Multi.nn", res.Multi.nn, serial.Multi.nn)
			}
		}
	}
}

// With adaptive mode off, the engine's estimator methods must be
// bit-identical to their package-level counterparts.
func TestEngineEstimatorsMatchSerial(t *testing.T) {
	const n, tau = 13, 90
	g := tableGame{n: n, seed: 9}

	assertBitEqual(t, "MonteCarlo",
		NewEngine().MonteCarlo(g, tau, rng.New(4)),
		MonteCarlo(g, tau, rng.New(4)))

	assertBitEqual(t, "TruncatedMonteCarlo",
		NewEngine().TruncatedMonteCarlo(monotoneGame{n: n, seed: 2}, tau, 0.05, rng.New(4)),
		TruncatedMonteCarlo(monotoneGame{n: n, seed: 2}, tau, 0.05, rng.New(4)))

	gPlus := tableGame{n: n + 1, seed: 9}
	oldSV := MonteCarlo(tableGame{n: n, seed: 9}, tau, rng.New(1))
	want, err := DeltaAdd(gPlus, oldSV, tau, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewEngine().DeltaAdd(gPlus, oldSV, tau, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, "DeltaAdd", got, want)

	wantDel, err := DeltaDelete(g, oldSV, 5, tau, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	gotDel, err := NewEngine().DeltaDelete(g, oldSV, 5, tau, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, "DeltaDelete", gotDel, wantDel)
}

// The acceptance criterion for adaptive mode: on a low-variance game the
// pass stops below the fixed τ budget and the stats report the τ actually
// used. The additive game has zero-variance marginals, so the bound hits
// zero at the first eligible chunk boundary.
func TestAdaptiveStopsEarlyOnLowVarianceGame(t *testing.T) {
	const n, budget = 12, 5000
	g := additiveGame{n: n}
	e := NewEngine(WithTargetError(1e-6, 0.05))
	sv := e.MonteCarlo(g, budget, rng.New(3))
	st := e.Stats()
	if !st.EarlyStop || st.Issued >= budget {
		t.Fatalf("adaptive MC did not stop early: %+v", st)
	}
	if st.Issued < adaptiveMinTau {
		t.Fatalf("stopped before the minimum τ floor: %+v", st)
	}
	if st.Budget != budget {
		t.Fatalf("budget %d, want %d", st.Budget, budget)
	}
	if st.Bound > 1e-6 {
		t.Fatalf("reported bound %v exceeds target", st.Bound)
	}
	for i, v := range sv {
		want := float64(i+1) / float64(n)
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("sv[%d] = %v, want %v", i, v, want)
		}
	}
}

// An adaptive preprocessing fill that stops after I permutations must
// equal the serial fill run for exactly I permutations on the same seed —
// early termination truncates the sample stream, nothing else.
func TestAdaptivePreprocessDeletionTruncatesExactly(t *testing.T) {
	const n, budget = 10, 4000
	g := additiveGame{n: n}
	e := NewEngine(WithTargetError(1e-6, 0.05), WithWorkers(3))
	ds := e.PreprocessDeletion(g, budget, rng.New(12))
	st := e.Stats()
	if !st.EarlyStop || st.Issued >= budget {
		t.Fatalf("adaptive fill did not stop early: %+v", st)
	}
	if ds.Tau() != st.Issued {
		t.Fatalf("store tau %d, stats issued %d", ds.Tau(), st.Issued)
	}
	serial := PreprocessDeletion(g, st.Issued, rng.New(12))
	assertBitEqual(t, "SV", ds.SV, serial.SV)
	assertBitEqual(t, "yn", ds.yn, serial.yn)
	assertBitEqual(t, "nn", ds.nn, serial.nn)
}

// The stop decision lives in the producer, so the issued τ — and the
// filled arrays — must be identical at every worker count even when the
// bound fires mid-run on a noisy game.
func TestAdaptiveIssuedIndependentOfWorkers(t *testing.T) {
	const n, budget = 20, 3000
	g := monotoneGame{n: n, seed: 17}
	run := func(workers int) (*DeletionStore, EngineStats) {
		e := NewEngine(WithTargetError(0.05, 0.05), WithWorkers(workers))
		ds := e.PreprocessDeletion(g, budget, rng.New(30))
		return ds, e.Stats()
	}
	ds1, st1 := run(1)
	for _, workers := range []int{2, 4} {
		dsW, stW := run(workers)
		if stW.Issued != st1.Issued {
			t.Fatalf("workers=%d issued %d, workers=1 issued %d", workers, stW.Issued, st1.Issued)
		}
		assertBitEqual(t, "SV", dsW.SV, ds1.SV)
		assertBitEqual(t, "yn", dsW.yn, ds1.yn)
		assertBitEqual(t, "nn", dsW.nn, ds1.nn)
	}
	if !st1.EarlyStop {
		t.Logf("note: bound did not fire within budget (issued %d); worker-independence still verified", st1.Issued)
	}
}

// Parallel Merge recovery must be bit-identical to the single-goroutine
// sweep, for both fill semantics and both stores.
func TestMergeParallelMatchesSerial(t *testing.T) {
	sampled := PreprocessDeletion(tableGame{n: 24, seed: 5}, 60, rng.New(9))
	exact := PreprocessDeletionExact(tableGame{n: 8, seed: 3})
	for _, ds := range []*DeletionStore{sampled, exact} {
		for _, p := range []int{0, ds.n / 2, ds.n - 1} {
			want, err := ds.mergeWith(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 5, 100} {
				got, err := ds.mergeWith(p, workers)
				if err != nil {
					t.Fatal(err)
				}
				assertBitEqual(t, "merge", got, want)
			}
		}
	}

	cands := []int{0, 2, 5, 8, 11}
	msSampled, err := PreprocessMultiDeletion(tableGame{n: 14, seed: 6}, 2, cands, 50, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	msExact, err := PreprocessMultiDeletionExact(tableGame{n: 12, seed: 4}, 2, cands)
	if err != nil {
		t.Fatal(err)
	}
	for _, ms := range []*MultiDeletionStore{msSampled, msExact} {
		want, err := ms.mergeWith(1, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{3, 50} {
			got, err := ms.mergeWith(workers, 2, 8)
			if err != nil {
				t.Fatal(err)
			}
			assertBitEqual(t, "multi merge", got, want)
		}
	}
}

// The binary-search tuple lookup must behave exactly like the old map:
// hits for every prepared tuple in any argument order, misses otherwise.
func TestTupleLookup(t *testing.T) {
	cands := []int{1, 3, 4, 8, 9}
	ms, err := NewMultiDeletionStore(12, 2, cands)
	if err != nil {
		t.Fatal(err)
	}
	for _, tuple := range ms.tuples {
		// Reversed argument order must still resolve (Merge sorts).
		if _, err := ms.Merge(tuple[1], tuple[0]); err != nil {
			t.Fatalf("Merge(%v reversed): %v", tuple, err)
		}
	}
	if _, err := ms.Merge(1, 2); err == nil {
		t.Fatal("Merge with non-candidate point should fail")
	}
	if _, err := ms.Merge(3, 3); err == nil {
		t.Fatal("Merge with a repeated point should fail")
	}
}

// WithTargetError must reject nonsensical parameters loudly.
func TestWithTargetErrorValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.5}, {-1, 0.5}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("WithTargetError(%v, %v) should panic", bad[0], bad[1])
				}
			}()
			WithTargetError(bad[0], bad[1])
		}()
	}
}
