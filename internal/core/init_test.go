package core

import (
	"testing"

	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

func TestInitializeMatchesIndividualPasses(t *testing.T) {
	g := tableGame{n: 7, seed: 81}
	res, err := Initialize(g, 20000, InitOptions{KeepPerms: true, TrackDeletions: true}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(g)
	if mse := stat.MSE(res.Pivot.SV, want); mse > 1e-4 {
		t.Fatalf("combined-pass SV MSE = %v", mse)
	}
	if !res.Pivot.HasPermutations() {
		t.Fatal("KeepPerms not honoured")
	}
	if res.Deletion == nil {
		t.Fatal("TrackDeletions not honoured")
	}
	// The deletion store built in the combined pass must merge correctly.
	got, err := res.Deletion.Merge(2)
	if err != nil {
		t.Fatal(err)
	}
	wantDel := expandDeleted(Exact(game.NewRestrict(g, 2)), 7, 2)
	if mse := stat.MSE(got, wantDel); mse > 2e-4 {
		t.Fatalf("combined-pass merge MSE = %v", mse)
	}
	// Store and pivot agree on the Shapley estimates (same samples).
	if d := maxAbsDiff(res.Deletion.SV, res.Pivot.SV); d > 1e-12 {
		t.Fatalf("SV mismatch between structures: %v", d)
	}
	if sv := res.SV(); maxAbsDiff(sv, res.Pivot.SV) != 0 {
		t.Fatal("InitResult.SV() differs from pivot SV")
	}
}

func TestInitializeWithMultiDelete(t *testing.T) {
	g := tableGame{n: 6, seed: 82}
	res, err := Initialize(g, 30000, InitOptions{MultiDelete: 2, Candidates: []int{0, 3, 5}}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Multi == nil {
		t.Fatal("MultiDelete not honoured")
	}
	got, err := res.Multi.Merge(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := expandDeleted(Exact(game.NewRestrict(g, 0, 5)), 6, 0, 5)
	if mse := stat.MSE(got, want); mse > 2e-4 {
		t.Fatalf("multi merge MSE = %v", mse)
	}
}

func TestInitializeValidation(t *testing.T) {
	g := tableGame{n: 5, seed: 83}
	if _, err := Initialize(g, 10, InitOptions{MultiDelete: 2, Candidates: []int{0}}, rng.New(3)); err == nil {
		t.Fatal("invalid multi-delete options should fail")
	}
}

func TestInitializeDegenerate(t *testing.T) {
	res, err := Initialize(game.Additive{}, 10, InitOptions{}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pivot.SV) != 0 {
		t.Fatal("empty game should give empty SV")
	}
	res, err = Initialize(tableGame{n: 3, seed: 84}, 0, InitOptions{}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Pivot.SV {
		if v != 0 {
			t.Fatal("τ=0 should give zero SV")
		}
	}
}

func TestInitializePivotUsableForAdd(t *testing.T) {
	gPlus := tableGame{n: 6, seed: 85}
	gD := restrictFirst(gPlus, 5)
	res, err := Initialize(gD, 20000, InitOptions{KeepPerms: true}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Pivot.AddSame(gPlus, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(gPlus)
	if mse := stat.MSE(got, want); mse > 2e-4 {
		t.Fatalf("AddSame after Initialize MSE = %v", mse)
	}
}
