package core

import (
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
	"dynshap/internal/utility"
)

// The incremental-prefix protocol's headline guarantee: every estimator
// produces the SAME result — to the last bit — whether the game exposes the
// capability or not, because the walker consumes no randomness and the
// evaluator's Adds equal scratch Values exactly. These tests run each
// estimator twice on the same KNN utility with the same seed: once directly
// (Prefixer capability visible) and once wrapped in game.Func (capability
// hidden → scratch fallback), and require exact slice equality.

// knnPair returns the same KNN valuation game twice: with the Prefixer
// capability visible, and hidden behind a game.Func wrapper.
func knnPair(t *testing.T, n int) (*utility.ModelUtility, game.Game) {
	t.Helper()
	rnd := rng.New(42)
	pool := dataset.IrisLike(rnd, n+12)
	pool.Standardize()
	train, test := pool.Split(float64(n) / float64(n+12))
	if train.Len() != n {
		t.Fatalf("split yielded %d train points, want %d", train.Len(), n)
	}
	u := utility.NewModelUtility(train, test, ml.KNN{K: 3})
	if game.PrefixEvaluatorOf(u) == nil {
		t.Fatal("KNN utility lost the Prefixer capability")
	}
	return u, game.Func{Players: n, U: u.Value}
}

// knnPlusPair is knnPair for the (n+1)-player updated game of the addition
// algorithms: the last player is an appended point.
func knnPlusPair(t *testing.T, n int) (*utility.ModelUtility, game.Game) {
	t.Helper()
	u, _ := knnPair(t, n)
	x := make([]float64, u.Train().Dim())
	for i := range x {
		x[i] = 0.25 * float64(i+1)
	}
	uPlus := u.Append(dataset.Point{X: x, Y: 1})
	return uPlus, game.Func{Players: n + 1, U: uPlus.Value}
}

func sameSlice(t *testing.T, name string, inc, fb []float64) {
	t.Helper()
	if len(inc) != len(fb) {
		t.Fatalf("%s: length %d vs %d", name, len(inc), len(fb))
	}
	for i := range inc {
		if inc[i] != fb[i] {
			t.Fatalf("%s: player %d differs: incremental %v, fallback %v", name, i, inc[i], fb[i])
		}
	}
}

func TestPrefixBitIdenticalMonteCarlo(t *testing.T) {
	u, hidden := knnPair(t, 14)
	sameSlice(t, "MonteCarlo",
		MonteCarlo(u, 25, rng.New(7)),
		MonteCarlo(hidden, 25, rng.New(7)))
	if u.PrefixAdds() == 0 {
		t.Fatal("incremental run never used the evaluator")
	}
	sameSlice(t, "TruncatedMonteCarlo",
		TruncatedMonteCarlo(u, 25, 0.05, rng.New(8)),
		TruncatedMonteCarlo(hidden, 25, 0.05, rng.New(8)))
	sameSlice(t, "MonteCarloAntithetic",
		MonteCarloAntithetic(u, 12, rng.New(9)),
		MonteCarloAntithetic(hidden, 12, rng.New(9)))
}

func TestPrefixBitIdenticalMonteCarloParallel(t *testing.T) {
	u, hidden := knnPair(t, 14)
	sameSlice(t, "MonteCarloParallel",
		MonteCarloParallel(u, 24, 3, rng.New(11)),
		MonteCarloParallel(hidden, 24, 3, rng.New(11)))
}

func TestPrefixBitIdenticalPivotFamily(t *testing.T) {
	u, hidden := knnPair(t, 10)
	uPlus, hiddenPlus := knnPlusPair(t, 10)

	stInc := PivotInit(u, 30, true, rng.New(13))
	stFb := PivotInit(hidden, 30, true, rng.New(13))
	sameSlice(t, "PivotInit.SV", stInc.SV, stFb.SV)
	sameSlice(t, "PivotInit.LSV", stInc.LSV, stFb.LSV)

	svInc, err := stInc.Clone().AddSame(uPlus, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	svFb, err := stFb.Clone().AddSame(hiddenPlus, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "AddSame", svInc, svFb)

	svInc, err = stInc.Clone().AddDifferent(uPlus, 20, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	svFb, err = stFb.Clone().AddDifferent(hiddenPlus, 20, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "AddDifferent", svInc, svFb)

	svInc, err = stInc.Clone().AddDifferentParallel(uPlus, 18, 3, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	svFb, err = stFb.Clone().AddDifferentParallel(hiddenPlus, 18, 3, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "AddDifferentParallel", svInc, svFb)
}

func TestPrefixBitIdenticalDeltaFamily(t *testing.T) {
	u, hidden := knnPair(t, 10)
	uPlus, hiddenPlus := knnPlusPair(t, 10)
	oldSV := MonteCarlo(hidden, 20, rng.New(17))

	svInc, err := DeltaAdd(uPlus, oldSV, 20, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	svFb, err := DeltaAdd(hiddenPlus, oldSV, 20, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "DeltaAdd", svInc, svFb)

	svInc, err = DeltaAddParallel(uPlus, oldSV, 18, 3, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	svFb, err = DeltaAddParallel(hiddenPlus, oldSV, 18, 3, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "DeltaAddParallel", svInc, svFb)

	svInc, err = DeltaDelete(u, oldSV, 4, 20, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	svFb, err = DeltaDelete(hidden, oldSV, 4, 20, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "DeltaDelete", svInc, svFb)
}

func TestPrefixBitIdenticalInitializeAndDeletionStores(t *testing.T) {
	u, hidden := knnPair(t, 8)

	must := func(sv []float64, err error) []float64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sv
	}

	opt := InitOptions{KeepPerms: true, TrackDeletions: true}
	resInc, err := Initialize(u, 20, opt, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	resFb, err := Initialize(hidden, 20, opt, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "Initialize.SV", resInc.Pivot.SV, resFb.Pivot.SV)
	sameSlice(t, "Initialize.LSV", resInc.Pivot.LSV, resFb.Pivot.LSV)
	delInc := must(resInc.Deletion.Merge(3))
	delFb := must(resFb.Deletion.Merge(3))
	sameSlice(t, "Initialize.Deletion", delInc, delFb)

	dsInc := PreprocessDeletion(u, 20, rng.New(22))
	dsFb := PreprocessDeletion(hidden, 20, rng.New(22))
	sameSlice(t, "PreprocessDeletion.SV", dsInc.SV, dsFb.SV)
	sameSlice(t, "PreprocessDeletion.Delete", must(dsInc.Merge(2)), must(dsFb.Merge(2)))

	msInc, err := PreprocessMultiDeletion(u, 2, []int{0, 1, 2, 3}, 15, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	msFb, err := PreprocessMultiDeletion(hidden, 2, []int{0, 1, 2, 3}, 15, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	mdInc, err := msInc.Merge(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	mdFb, err := msFb.Merge(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "PreprocessMultiDeletion.Delete", mdInc, mdFb)
}

// The incremental path must spare trainings: an MC run over a KNN Prefixer
// should train no model beyond the two boundary coalitions (∅ is free, the
// full set is evaluated by TMC only).
func TestPrefixSparesTrainings(t *testing.T) {
	u, _ := knnPair(t, 14)
	MonteCarlo(u, 10, rng.New(31))
	if fits := u.Fits(); fits != 0 {
		t.Fatalf("incremental MC trained %d models, want 0", fits)
	}
	if adds := u.PrefixAdds(); adds != 10*14 {
		t.Fatalf("PrefixAdds = %d, want %d", adds, 10*14)
	}
}

// Classic closed-form games ride the same protocol; spot-check one walk
// through the core estimators rather than only game-level unit tests.
func TestPrefixBitIdenticalClassicGame(t *testing.T) {
	g := game.Airport{Costs: []float64{1, 4, 2, 8, 5, 7, 3, 6, 2, 4, 9, 1}}
	hidden := game.Func{Players: g.N(), U: g.Value}
	sameSlice(t, "MonteCarlo/airport",
		MonteCarlo(g, 40, rng.New(29)),
		MonteCarlo(hidden, 40, rng.New(29)))
	sameSlice(t, "Exact-vs-walker sanity", Exact(g), Exact(hidden))
}

// The walker itself: fallback mode must reproduce the scratch walk on a
// cached game, touching the cache exactly as the old code did.
func TestPrefixWalkerFallbackUsesValues(t *testing.T) {
	calls := 0
	g := game.Func{Players: 5, U: func(s bitset.Set) float64 {
		calls++
		return float64(s.Len() * s.Len())
	}}
	w := newPrefixWalker(g)
	if w.incremental() {
		t.Fatal("Func game unexpectedly incremental")
	}
	w.reset()
	for i, p := range []int{3, 0, 4} {
		if got, want := w.add(p), float64((i+1)*(i+1)); got != want {
			t.Fatalf("add(%d) = %v, want %v", p, got, want)
		}
	}
	if calls != 3 {
		t.Fatalf("fallback issued %d Value calls, want 3", calls)
	}
	// seed must not evaluate in fallback mode.
	w.reset()
	if got := w.seed(1, 123.5); got != 123.5 || calls != 3 {
		t.Fatalf("seed evaluated (calls=%d, got=%v)", calls, got)
	}
}
