package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

func TestDeltaAddMatchesExact(t *testing.T) {
	gPlus := tableGame{n: 7, seed: 41}
	gD := restrictFirst(gPlus, 6)
	oldSV := Exact(gD)
	got, err := DeltaAdd(gPlus, oldSV, 30000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(gPlus)
	if mse := stat.MSE(got, want); mse > 1e-4 {
		t.Fatalf("DeltaAdd MSE = %v\n got %v\nwant %v", mse, got, want)
	}
}

func TestDeltaAddNewPointUnbiased(t *testing.T) {
	// The corrected new-point estimator (empty stratum included, ÷(n+1))
	// must converge to the exact value of the added player.
	gPlus := tableGame{n: 6, seed: 42}
	gD := restrictFirst(gPlus, 5)
	oldSV := Exact(gD)
	got, err := DeltaAdd(gPlus, oldSV, 50000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(gPlus)
	if d := math.Abs(got[5] - want[5]); d > 0.01 {
		t.Fatalf("new point SV = %v, want %v", got[5], want[5])
	}
}

func TestDeltaAddPropagatesOldError(t *testing.T) {
	// Delta estimates changes, so a constant shift in oldSV survives intact.
	gPlus := tableGame{n: 5, seed: 43}
	gD := restrictFirst(gPlus, 4)
	oldSV := Exact(gD)
	shifted := make([]float64, len(oldSV))
	for i := range shifted {
		shifted[i] = oldSV[i] + 0.1
	}
	a, err := DeltaAdd(gPlus, oldSV, 2000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeltaAdd(gPlus, shifted, 2000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs((b[i]-a[i])-0.1) > 1e-12 {
			t.Fatalf("shift not preserved at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDeltaAddValidation(t *testing.T) {
	gPlus := tableGame{n: 5, seed: 44}
	if _, err := DeltaAdd(gPlus, make([]float64, 3), 10, rng.New(4)); err == nil {
		t.Fatal("size mismatch should fail")
	}
	if _, err := DeltaAdd(gPlus, make([]float64, 4), 0, rng.New(4)); err == nil {
		t.Fatal("τ=0 should fail")
	}
}

func TestDeltaDeleteMatchesExact(t *testing.T) {
	g := tableGame{n: 7, seed: 45}
	oldSV := Exact(g)
	for _, p := range []int{0, 3, 6} {
		got, err := DeltaDelete(g, oldSV, p, 30000, rng.New(uint64(p+5)))
		if err != nil {
			t.Fatal(err)
		}
		if got[p] != 0 {
			t.Fatalf("deleted entry %d nonzero: %v", p, got[p])
		}
		wantSub := Exact(game.NewRestrict(g, p))
		// Re-expand to original indexing for comparison.
		want := make([]float64, 7)
		ri := 0
		for i := 0; i < 7; i++ {
			if i == p {
				continue
			}
			want[i] = wantSub[ri]
			ri++
		}
		if mse := stat.MSE(got, want); mse > 1e-4 {
			t.Fatalf("DeltaDelete(p=%d) MSE = %v\n got %v\nwant %v", p, mse, got, want)
		}
	}
}

func TestDeltaDeleteValidation(t *testing.T) {
	g := tableGame{n: 4, seed: 46}
	sv := make([]float64, 4)
	if _, err := DeltaDelete(g, make([]float64, 3), 0, 10, rng.New(1)); err == nil {
		t.Fatal("size mismatch should fail")
	}
	if _, err := DeltaDelete(g, sv, 4, 10, rng.New(1)); err == nil {
		t.Fatal("out-of-range point should fail")
	}
	if _, err := DeltaDelete(g, sv, -1, 10, rng.New(1)); err == nil {
		t.Fatal("negative point should fail")
	}
	if _, err := DeltaDelete(g, sv, 0, 0, rng.New(1)); err == nil {
		t.Fatal("τ=0 should fail")
	}
}

func TestDeltaDeleteSinglePlayerGame(t *testing.T) {
	g := tableGame{n: 1, seed: 47}
	got, err := DeltaDelete(g, []float64{0.4}, 0, 10, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-player delete = %v", got)
	}
}

// interactionGame models the ML regime the delta-based algorithm targets:
// utilities are dominated by an additive part while the new point (player
// n−1) only interacts weakly, so differential marginal contributions have a
// much smaller range than raw ones.
type interactionGame struct {
	n int
}

func (g interactionGame) N() int { return g.n }

func (g interactionGame) Value(s bitset.Set) float64 {
	v := 0.0
	s.ForEach(func(i int) { v += 1 / float64(i+2) })
	if s.Contains(g.n - 1) {
		// Weak pairwise interaction between the pivot and the others.
		v += 0.01 * float64(s.Len()-1)
	}
	return v
}

func TestDeltaAddNeedsFewerSamplesThanMC(t *testing.T) {
	// The headline claim (Theorem 2 / §IV-B): at equal τ, estimating changes
	// has lower error than re-estimating absolute values, because the DMC
	// range d is far smaller than the marginal-contribution range r.
	gPlus := interactionGame{n: 9}
	gD := restrictFirst(gPlus, 8)
	oldSV := Exact(gD)
	want := Exact(gPlus)
	const tau, reps = 30, 40
	var mseDelta, mseMC float64
	for rep := 0; rep < reps; rep++ {
		seed := uint64(1000 + rep)
		d, err := DeltaAdd(gPlus, oldSV, tau, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		m := MonteCarlo(gPlus, tau, rng.New(seed+5000))
		mseDelta += stat.MSE(d, want) / reps
		mseMC += stat.MSE(m, want) / reps
	}
	if mseDelta >= mseMC {
		t.Fatalf("Delta MSE %v not below MC MSE %v at τ=%d", mseDelta, mseMC, tau)
	}
	// And the advantage should be substantial (paper observes ~10×).
	if mseDelta > mseMC/2 {
		t.Logf("warning: delta advantage modest: %v vs %v", mseDelta, mseMC)
	}
}

func TestDeltaAddThenDeleteRoundTrip(t *testing.T) {
	// §V-C: delta supports interleaved dynamics. Add the pivot then delete
	// it again; the values of the original players must return near the
	// originals.
	gPlus := tableGame{n: 6, seed: 48}
	gD := restrictFirst(gPlus, 5)
	oldSV := Exact(gD)
	afterAdd, err := DeltaAdd(gPlus, oldSV, 20000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	afterDel, err := DeltaDelete(gPlus, afterAdd, 5, 20000, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if d := math.Abs(afterDel[i] - oldSV[i]); d > 0.02 {
			t.Fatalf("round trip drifted at %d: %v vs %v", i, afterDel[i], oldSV[i])
		}
	}
}
