package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

// expandDeleted re-expands exact values of a restricted game into original
// indexing with zeros at deleted points.
func expandDeleted(sub []float64, n int, deleted ...int) []float64 {
	gone := map[int]bool{}
	for _, p := range deleted {
		gone[p] = true
	}
	out := make([]float64, n)
	ri := 0
	for i := 0; i < n; i++ {
		if gone[i] {
			continue
		}
		out[i] = sub[ri]
		ri++
	}
	return out
}

// fillAllPermutations feeds every permutation of {0..n−1} into the store,
// making the sampled-mode arrays exact up to floating point. It validates
// the sampled merge coefficient n/(n−k) independently of sampling noise.
func fillAllPermutations(g game.Game, ds *DeletionStore) {
	n := g.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	prefix := bitset.New(n)
	uEmpty := g.Value(bitset.New(n))
	utilities := make([]float64, n)
	var visit func(k int)
	visit = func(k int) {
		if k == n {
			prefix.Clear()
			for pos, p := range perm {
				prefix.Add(p)
				utilities[pos] = g.Value(prefix)
			}
			ds.AccumulatePermutation(perm, utilities, uEmpty)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			visit(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	visit(0)
	ds.finishSampled()
}

func TestDeletionStoreExactFill(t *testing.T) {
	g := tableGame{n: 7, seed: 61}
	ds := PreprocessDeletionExact(g)
	for p := 0; p < 7; p++ {
		got, err := ds.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		want := expandDeleted(Exact(game.NewRestrict(g, p)), 7, p)
		if d := maxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("exact-fill Merge(%d): max diff %v\n got %v\nwant %v", p, d, got, want)
		}
	}
}

func TestDeletionStoreSampledCoefficientExactOnFullEnumeration(t *testing.T) {
	// With ALL n! permutations accumulated, the sampled-semantics merge must
	// recover the exact post-deletion Shapley values to machine precision —
	// the decisive check of the derived n/(n−k) coefficient (the paper's
	// printed (n−1)/(n−j) fails this test).
	g := tableGame{n: 6, seed: 62}
	ds := NewDeletionStore(6)
	fillAllPermutations(g, ds)
	for p := 0; p < 6; p++ {
		got, err := ds.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		want := expandDeleted(Exact(game.NewRestrict(g, p)), 6, p)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("full-enumeration Merge(%d): max diff %v\n got %v\nwant %v", p, d, got, want)
		}
	}
	// The SV accumulated during the fill must equal the exact SV too.
	if d := maxAbsDiff(ds.SV, Exact(g)); d > 1e-9 {
		t.Fatalf("fill SV diff %v", d)
	}
}

func TestDeletionStoreSampledConverges(t *testing.T) {
	g := tableGame{n: 8, seed: 63}
	ds := PreprocessDeletion(g, 40000, rng.New(1))
	for _, p := range []int{0, 4, 7} {
		got, err := ds.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		want := expandDeleted(Exact(game.NewRestrict(g, p)), 8, p)
		if mse := stat.MSE(got, want); mse > 2e-4 {
			t.Fatalf("sampled Merge(%d) MSE = %v", p, mse)
		}
	}
}

func TestDeletionStoreNoNewEvaluations(t *testing.T) {
	// Merging must not evaluate the game at all — the YN-NN selling point.
	counting := game.NewCounting(tableGame{n: 6, seed: 64})
	ds := PreprocessDeletion(counting, 100, rng.New(2))
	counting.Reset()
	if _, err := ds.Merge(3); err != nil {
		t.Fatal(err)
	}
	if counting.Calls() != 0 {
		t.Fatalf("Merge evaluated the game %d times", counting.Calls())
	}
}

func TestDeletionStoreMemoryBytes(t *testing.T) {
	ds := NewDeletionStore(100)
	want := int64(2 * 100 * 100 * 101 * 8)
	if got := ds.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
	// n=100 should be ~16 MB, matching the paper's Table IX scale (15.25 MB).
	if mb := float64(ds.MemoryBytes()) / (1 << 20); mb < 12 || mb > 20 {
		t.Fatalf("n=100 memory = %.2f MB, expected ≈16 MB", mb)
	}
}

func TestDeletionStoreMergeValidation(t *testing.T) {
	ds := NewDeletionStore(4)
	if _, err := ds.Merge(4); err == nil {
		t.Fatal("out-of-range merge should fail")
	}
	if _, err := ds.Merge(-1); err == nil {
		t.Fatal("negative merge should fail")
	}
}

func TestDeletionStoreSinglePlayer(t *testing.T) {
	g := tableGame{n: 1, seed: 65}
	ds := PreprocessDeletion(g, 10, rng.New(3))
	got, err := ds.Merge(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-player merge = %v", got)
	}
}

func TestMultiDeletionExactFill(t *testing.T) {
	g := tableGame{n: 7, seed: 66}
	cands := []int{1, 3, 5, 6}
	ms, err := PreprocessMultiDeletionExact(g, 2, cands)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{1, 3}, {3, 5}, {1, 6}, {5, 6}}
	for _, pr := range pairs {
		got, err := ms.Merge(pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		want := expandDeleted(Exact(game.NewRestrict(g, pr[0], pr[1])), 7, pr[0], pr[1])
		if d := maxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("exact multi Merge(%v): diff %v\n got %v\nwant %v", pr, d, got, want)
		}
	}
}

func TestMultiDeletionSampledCoefficientExactOnFullEnumeration(t *testing.T) {
	g := tableGame{n: 6, seed: 67}
	ms, err := NewMultiDeletionStore(6, 2, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Feed all 6! permutations.
	n := 6
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	prefix := bitset.New(n)
	uEmpty := g.Value(bitset.New(n))
	utilities := make([]float64, n)
	var visit func(k int)
	visit = func(k int) {
		if k == n {
			prefix.Clear()
			for pos, p := range perm {
				prefix.Add(p)
				utilities[pos] = g.Value(prefix)
			}
			ms.AccumulatePermutation(perm, utilities, uEmpty)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			visit(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	visit(0)
	inv := 1 / float64(ms.tau)
	for i := range ms.y {
		ms.y[i] *= inv
		ms.nn[i] *= inv
	}
	for _, pr := range [][2]int{{0, 2}, {0, 4}, {2, 4}} {
		got, err := ms.Merge(pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		want := expandDeleted(Exact(game.NewRestrict(g, pr[0], pr[1])), 6, pr[0], pr[1])
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("full-enumeration multi Merge(%v): diff %v\n got %v\nwant %v", pr, d, got, want)
		}
	}
}

func TestMultiDeletionSampledConverges(t *testing.T) {
	g := tableGame{n: 8, seed: 68}
	ms, err := PreprocessMultiDeletion(g, 2, []int{1, 4, 6}, 40000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ms.Merge(4, 1) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	want := expandDeleted(Exact(game.NewRestrict(g, 1, 4)), 8, 1, 4)
	if mse := stat.MSE(got, want); mse > 2e-4 {
		t.Fatalf("sampled multi merge MSE = %v", mse)
	}
}

func TestMultiDeletionD3(t *testing.T) {
	g := tableGame{n: 7, seed: 69}
	ms, err := PreprocessMultiDeletionExact(g, 3, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ms.Merge(0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := expandDeleted(Exact(game.NewRestrict(g, 0, 2, 3)), 7, 0, 2, 3)
	if d := maxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("d=3 exact merge diff %v", d)
	}
}

func TestMultiDeletionValidation(t *testing.T) {
	if _, err := NewMultiDeletionStore(5, 0, []int{1}); err == nil {
		t.Fatal("d=0 should fail")
	}
	if _, err := NewMultiDeletionStore(5, 2, []int{1}); err == nil {
		t.Fatal("too few candidates should fail")
	}
	if _, err := NewMultiDeletionStore(5, 1, []int{7}); err == nil {
		t.Fatal("out-of-range candidate should fail")
	}
	if _, err := NewMultiDeletionStore(5, 1, []int{1, 1}); err == nil {
		t.Fatal("duplicate candidate should fail")
	}
	ms, err := NewMultiDeletionStore(5, 2, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Merge(0); err == nil {
		t.Fatal("wrong deletion count should fail")
	}
	if _, err := ms.Merge(0, 3); err == nil {
		t.Fatal("uncovered tuple should fail")
	}
}

func TestMultiDeletionCandidates(t *testing.T) {
	ms, err := NewMultiDeletionStore(6, 2, []int{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	got := ms.Candidates()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Candidates = %v, want %v", got, want)
		}
	}
	if ms.N() != 6 || ms.D() != 2 {
		t.Fatalf("N/D = %d/%d", ms.N(), ms.D())
	}
	// 3 candidates choose 2 = 3 tuples; memory = 2·n·3·(n+1)·8 bytes.
	want64 := int64(2 * 6 * 3 * 7 * 8)
	if ms.MemoryBytes() != want64 {
		t.Fatalf("MemoryBytes = %d, want %d", ms.MemoryBytes(), want64)
	}
}

func TestMultiDeletionAgreesWithSingleStore(t *testing.T) {
	// d=1 multi store must agree with the dedicated DeletionStore.
	g := tableGame{n: 6, seed: 70}
	ds := PreprocessDeletion(g, 5000, rng.New(5))
	ms, err := PreprocessMultiDeletion(g, 1, []int{0, 1, 2, 3, 4, 5}, 5000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 6; p++ {
		a, err := ds.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ms.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(a, b); d > 1e-12 {
			t.Fatalf("d=1 stores disagree at p=%d: %v", p, d)
		}
	}
}

func TestDeletionStoreBalanceOfMergedValues(t *testing.T) {
	// Balance on the restricted game: Σ SV⁻ = U(N⁻) − U(∅).
	g := tableGame{n: 6, seed: 71}
	ds := PreprocessDeletionExact(g)
	for p := 0; p < 6; p++ {
		got, err := ds.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range got {
			sum += v
		}
		rest := bitset.Full(6)
		rest.Remove(p)
		want := g.Value(rest) - g.Value(bitset.New(6))
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("balance after delete %d: ΣSV⁻ = %v, want %v", p, sum, want)
		}
	}
}
