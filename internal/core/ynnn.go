package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/semivalue"
)

// DeletionStore is the YN-NN data structure (Algorithm 6 / Definition 1):
// two three-dimensional utility-sum arrays filled as a free by-product of
// computing Shapley values on the original dataset, from which the
// post-deletion Shapley value of every surviving player is recovered in
// O(n²) — without a single new utility evaluation.
//
//	YN[i][j][k] accumulates utilities of size-k coalitions containing i and
//	excluding j; NN[i][j][k] those excluding both i and j.
//
// Two fill semantics exist and are tracked by the exact flag:
//
//   - sampled (Algorithm 6): each permutation's prefix utilities are
//     accumulated and divided by τ. E[YN[i][j][k]] equals the Definition-1
//     sum scaled by (k−1)!(n−k)!/n!, so Merge uses the derived coefficient
//     n/(n−k). (The paper's Algorithm 7 prints (n−1)/(n−j); the corrected
//     coefficient is verified against full-enumeration recovery in the
//     tests.)
//   - exact (Definition 1): the arrays hold the combinatorial sums
//     themselves and Merge applies Lemma 3 verbatim.
type DeletionStore struct {
	// SV holds the Shapley estimates computed while filling (sampled mode).
	SV []float64

	n     int
	tau   int
	exact bool
	store StoreConfig
	// ynB/nnB are the storage backends: yn[i][j][k] for k in 0..n, nn
	// likewise; flat layout i*(n*(n+1)) + j*(n+1) + k.
	ynB, nnB storeBackend
	// yn, nn alias the dense float64 arrays when the store uses the
	// default dense backend (nil otherwise) — the fill and merge hot loops
	// take the direct-slice path through them, keeping the dense store
	// bit-identical to its pre-interface self.
	yn, nn []float64
}

// NewDeletionStore allocates an empty store for an n-player game on the
// default (exact, dense float64) backend.
func NewDeletionStore(n int) *DeletionStore {
	ds, err := NewDeletionStoreWith(n, StoreConfig{})
	if err != nil {
		panic(err) // dense allocation cannot fail with an error
	}
	return ds
}

// NewDeletionStoreWith allocates an empty store on the configured storage
// backend. Only BackendSpill32 can fail (scratch-file I/O).
func NewDeletionStoreWith(n int, cfg StoreConfig) (*DeletionStore, error) {
	ds := &DeletionStore{
		n:     n,
		SV:    make([]float64, n),
		store: cfg,
	}
	entries, rowLen := n*n*(n+1), n*(n+1)
	var err error
	if ds.ynB, err = newBackend(entries, rowLen, cfg); err != nil {
		return nil, err
	}
	if ds.nnB, err = newBackend(entries, rowLen, cfg); err != nil {
		ds.ynB.close()
		return nil, err
	}
	if d, ok := ds.ynB.(*dense64); ok {
		ds.yn = d.v
		ds.nn = ds.nnB.(*dense64).v
	}
	return ds, nil
}

// N returns the number of players the store covers.
func (ds *DeletionStore) N() int { return ds.n }

// Tau returns the number of permutations accumulated (sampled mode).
func (ds *DeletionStore) Tau() int { return ds.tau }

// Backend identifies the storage backend holding the arrays.
func (ds *DeletionStore) Backend() BackendKind { return ds.ynB.backendKind() }

// MemoryBytes returns the logical footprint of the two utility arrays —
// the quantity the paper's Table IX reports. For the spill backend this is
// file bytes, not RAM; see HeapBytes.
func (ds *DeletionStore) MemoryBytes() int64 {
	return ds.ynB.logicalBytes() + ds.nnB.logicalBytes()
}

// HeapBytes returns the heap-resident share of the arrays: equal to
// MemoryBytes for the in-memory backends, bookkeeping-only for spill.
func (ds *DeletionStore) HeapBytes() int64 {
	return ds.ynB.heapBytes() + ds.nnB.heapBytes()
}

// Flush writes dirty tiles to stable storage (spill backend; no-op for the
// in-memory backends).
func (ds *DeletionStore) Flush() error {
	if err := ds.ynB.flush(); err != nil {
		return err
	}
	return ds.nnB.flush()
}

// Close releases non-heap resources (the spill backend's mapping and
// scratch file). The store must not be used afterwards. In-memory stores
// need no Close; spill stores are also closed by a GC finalizer, so Close
// is an optimisation for deterministic cleanup, not a correctness duty.
func (ds *DeletionStore) Close() error {
	if err := ds.ynB.close(); err != nil {
		return err
	}
	return ds.nnB.close()
}

func (ds *DeletionStore) idx(i, j, k int) int {
	return (i*ds.n+j)*(ds.n+1) + k
}

// AccumulatePermutation folds one permutation's prefix utilities into the
// sampled-mode arrays and Shapley sums (the loop body of Algorithm 6).
// utilities[pos] must hold U({perm[0..pos]}); uEmpty is U(∅).
func (ds *DeletionStore) AccumulatePermutation(perm []int, utilities []float64, uEmpty float64) {
	n := ds.n
	if len(perm) != n || len(utilities) != n {
		panic("core: AccumulatePermutation length mismatch")
	}
	prev := uEmpty
	for pos, pt := range perm {
		cur := utilities[pos]
		ds.SV[pt] += cur - prev
		prev = cur
	}
	ds.accumulateStripe(perm, utilities, uEmpty, nil, 0, n, n)
	ds.tau++
}

// newAux implements stripeTarget; the YN-NN fill needs no per-permutation
// metadata.
func (ds *DeletionStore) newAux() []int { return nil }

// prepare implements stripeTarget: a walk of length w costs
// Σ_{pos<w} 2·(n−pos) array updates.
func (ds *DeletionStore) prepare(perm []int, aux []int, walk int) int64 {
	n := int64(ds.n)
	w := int64(walk)
	return w * (2*n - w + 1)
}

// accumulateStripe folds one permutation into the rows lo ≤ i < hi of the
// arrays — the stripe owned by one engine worker. Row i receives its
// additions in permutation-walk order regardless of how [0, n) is split
// into stripes, so the striped fill is bit-identical to the serial one —
// for every backend, since each entry still has exactly one writer adding
// in walk order. SV and τ are left to the producer. Only the first walk
// positions carry valid utilities (walk < n under truncation).
func (ds *DeletionStore) accumulateStripe(perm []int, utilities []float64, uEmpty float64, aux []int, lo, hi, walk int) {
	n := ds.n
	if yn, nn := ds.yn, ds.nn; yn != nil {
		// Dense fast path: direct slice arithmetic, the historic loop.
		prev := uEmpty
		for pos := 0; pos < walk; pos++ {
			pt := perm[pos]
			cur := utilities[pos]
			if pt >= lo && pt < hi {
				// Every player at a later position is absent from both prefixes.
				for j := pos; j < n; j++ {
					q := perm[j]
					yn[(pt*n+q)*(n+1)+pos+1] += cur
					nn[(pt*n+q)*(n+1)+pos] += prev
				}
			}
			prev = cur
		}
		return
	}
	prev := uEmpty
	for pos := 0; pos < walk; pos++ {
		pt := perm[pos]
		cur := utilities[pos]
		if pt >= lo && pt < hi {
			for j := pos; j < n; j++ {
				q := perm[j]
				ds.ynB.add(ds.idx(pt, q, pos+1), cur)
				ds.nnB.add(ds.idx(pt, q, pos), prev)
			}
		}
		prev = cur
	}
}

// PreprocessDeletion runs Algorithm 6: Monte Carlo Shapley computation over
// g that simultaneously fills the YN/NN arrays. The extra work per
// permutation is O(n²) float additions — no additional utility evaluations.
func PreprocessDeletion(g game.Game, tau int, r *rng.Source) *DeletionStore {
	n := g.N()
	ds := NewDeletionStore(n)
	if n == 0 || tau <= 0 {
		return ds
	}
	w := newPrefixWalker(g)
	uEmpty := g.Value(bitset.New(n))
	utilities := make([]float64, n)
	perm := make([]int, n)
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		w.reset()
		for pos, p := range perm {
			utilities[pos] = w.add(p)
		}
		ds.AccumulatePermutation(perm, utilities, uEmpty)
	}
	ds.finishSampled()
	return ds
}

// finishSampled converts accumulated sums into averages.
func (ds *DeletionStore) finishSampled() {
	inv := 1 / float64(ds.tau)
	if ds.yn != nil {
		// Dense fast path: the historic interleaved loop, bit-identical.
		for i := range ds.yn {
			ds.yn[i] *= inv
			ds.nn[i] *= inv
		}
	} else {
		ds.ynB.scale(inv)
		ds.nnB.scale(inv)
	}
	for i := range ds.SV {
		ds.SV[i] *= inv
	}
}

// PreprocessDeletionExact fills the arrays with the combinatorial sums of
// Definition 1 by complete enumeration (n ≤ MaxExactPlayers) and records
// exact Shapley values. Merge then applies Lemma 3 verbatim.
func PreprocessDeletionExact(g game.Game) *DeletionStore {
	n := g.N()
	if n > MaxExactPlayers {
		panic(fmt.Sprintf("core: PreprocessDeletionExact limited to %d players, got %d", MaxExactPlayers, n))
	}
	ds := NewDeletionStore(n)
	ds.exact = true
	ds.SV = Exact(g)
	s := bitset.New(n)
	size := 1 << uint(n)
	for mask := 0; mask < size; mask++ {
		s.Clear()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(i)
			}
		}
		u := g.Value(s)
		k := popcount(mask)
		for i := 0; i < n; i++ {
			iIn := mask&(1<<uint(i)) != 0
			for j := 0; j < n; j++ {
				if mask&(1<<uint(j)) != 0 {
					continue // j must be excluded
				}
				if iIn {
					ds.ynB.add(ds.idx(i, j, k), u)
				} else if i != j {
					ds.nnB.add(ds.idx(i, j, k), u)
				}
			}
		}
	}
	return ds
}

// mergeParallelWork is the row-sweep size (entries read) below which a
// parallel Merge is not worth the goroutine fan-out.
const mergeParallelWork = 1 << 15

// mergeWorkers picks the recovery parallelism for a sweep over `work`
// array entries.
func mergeWorkers(work int) int {
	if work < mergeParallelWork {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// parallelRows splits [0, n) into `workers` contiguous stripes and runs f
// on each concurrently. f(lo, hi) must touch only rows in its stripe.
func parallelRows(n, workers int, f func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Merge runs Algorithm 7: it derives the post-deletion Shapley values of
// every surviving player after removing player p, purely from the stored
// arrays. The returned slice has n entries with out[p] = 0. The row sweep
// is parallelised over i for large stores; each out[i] is accumulated in
// ascending-k order by exactly one goroutine, so the result is
// bit-identical at every worker count.
func (ds *DeletionStore) Merge(p int) ([]float64, error) {
	return ds.mergeWith(p, mergeWorkers(ds.n*ds.n))
}

// mergeWith is Merge with an explicit worker count (exposed for tests).
func (ds *DeletionStore) mergeWith(p, workers int) ([]float64, error) {
	n := ds.n
	if p < 0 || p >= n {
		return nil, fmt.Errorf("core: Merge point %d out of range [0,%d)", p, n)
	}
	out := make([]float64, n)
	if n == 1 {
		return out, nil
	}
	// Per-k coefficients, shared across rows; computed by the same
	// recurrences — and applied with the same operations (divide for
	// exact, multiply for sampled) — as the historic k-outer loop, so each
	// out[i] sees bit-identical arithmetic in the same ascending-k order.
	coef := make([]float64, n)
	if ds.exact {
		// Lemma 3: SV⁻_i = 1/(n−1) Σ_k (YN[i][p][k] − NN[i][p][k−1]) / C(n−2, k−1).
		binom := 1.0 // C(n−2, 0)
		for k := 1; k <= n-1; k++ {
			coef[k] = binom
			binom = binom * float64(n-1-k) / float64(k) // C(n−2, k)
		}
	} else {
		// Sampled semantics: coefficient n/(n−k) (see type comment).
		for k := 1; k <= n-1; k++ {
			coef[k] = float64(n) / float64(n-k)
		}
	}
	parallelRows(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == p {
				continue
			}
			if ds.yn != nil {
				// Dense fast path: the historic plain accumulation, so the
				// default backend stays bit-identical to pre-interface output.
				acc := 0.0
				base := (i*n + p) * (n + 1)
				for k := 1; k <= n-1; k++ {
					d := ds.yn[base+k] - ds.nn[base+k-1]
					if ds.exact {
						acc += d / coef[k]
					} else {
						acc += d * coef[k]
					}
				}
				if ds.exact {
					acc /= float64(n - 1)
				}
				out[i] = acc
				continue
			}
			// Float32 backends: Neumaier-compensated reduction, so the merge
			// adds no error beyond the storage rounding (DESIGN.md §15).
			var acc neumaierSum
			base := (i*n + p) * (n + 1)
			for k := 1; k <= n-1; k++ {
				d := ds.ynB.at(base+k) - ds.nnB.at(base+k-1)
				if ds.exact {
					acc.add(d / coef[k])
				} else {
					acc.add(d * coef[k])
				}
			}
			v := acc.value()
			if ds.exact {
				v /= float64(n - 1)
			}
			out[i] = v
		}
	})
	return out, nil
}

// MergeSemivalue derives the post-deletion values of a LINEAR semivalue
// head from the same stored arrays Merge reads: the YN−NN difference
// isolates the survivor game's strata, so any untransformed weighting can
// re-price them (semivalue.MergeCoeffs). Absolute-transform heads are
// rejected — |·| does not distribute over the stored sums. The Shapley
// weighting is NOT routed through Merge: its coefficients are the same
// values the historic loop derives, but applied as multiplications, so
// use Merge when bit-compatibility with pre-semivalue output matters.
func (ds *DeletionStore) MergeSemivalue(p int, w semivalue.Weighting) ([]float64, error) {
	return ds.mergeSemivalueWith(p, w, mergeWorkers(ds.n*ds.n))
}

// mergeSemivalueWith is MergeSemivalue with an explicit worker count.
func (ds *DeletionStore) mergeSemivalueWith(p int, w semivalue.Weighting, workers int) ([]float64, error) {
	n := ds.n
	if p < 0 || p >= n {
		return nil, fmt.Errorf("core: MergeSemivalue point %d out of range [0,%d)", p, n)
	}
	if w.Abs() {
		return nil, fmt.Errorf("core: MergeSemivalue cannot recover %v from the deletion store (absolute transform)", w)
	}
	out := make([]float64, n)
	if n == 1 {
		return out, nil
	}
	coef := w.MergeCoeffs(n, ds.exact)
	parallelRows(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == p {
				continue
			}
			if ds.yn != nil {
				acc := 0.0
				base := (i*n + p) * (n + 1)
				for k := 1; k <= n-1; k++ {
					acc += (ds.yn[base+k] - ds.nn[base+k-1]) * coef[k]
				}
				out[i] = acc
				continue
			}
			var acc neumaierSum
			base := (i*n + p) * (n + 1)
			for k := 1; k <= n-1; k++ {
				acc.add((ds.ynB.at(base+k) - ds.nnB.at(base+k-1)) * coef[k])
			}
			out[i] = acc.value()
		}
	})
	return out, nil
}

// MultiDeletionStore is the YNN-NNN generalisation (Definition 2 / Lemma 4)
// for deleting d points at once: the arrays gain one axis per potential
// deleted point. Materialising them for all C(n, d) tuples is O(n^{d+2})
// space, so the store is built over an explicit candidate set — the points
// that may leave (a realistic broker knows which owners are revocable; the
// paper's experiments delete from a fixed pool).
type MultiDeletionStore struct {
	// SV holds the Shapley estimates computed while filling (sampled mode).
	SV []float64

	n          int
	d          int
	tau        int
	exact      bool
	store      StoreConfig
	candidates []int
	candSlot   []int // player -> position in candidates, -1 if not a candidate
	tuples     [][]int
	// yB/nnB are the storage backends: y[i][t][k], nn[i][t][k] flat
	// (i*len(tuples)+t)*(n+1)+k. y and nn alias the dense float64 arrays
	// when the default backend is in use (nil otherwise); the fill and
	// merge hot loops go through them directly.
	yB, nnB storeBackend
	y, nn   []float64
	// aux is the per-permutation scratch of AccumulatePermutation, reused
	// across calls (layout of newAux); lazily allocated, never serialised.
	aux []int
}

// tupleIndex locates a sorted tuple of player indices by binary search
// over the lexicographically ordered tuple table (the enumeration order of
// NewMultiDeletionStore). Allocation-free, unlike the string keys it
// replaced. Returns -1 when the tuple is not covered.
func (ms *MultiDeletionStore) tupleIndex(sorted []int) int {
	lo := sort.Search(len(ms.tuples), func(t int) bool {
		return !lessIntSlice(ms.tuples[t], sorted)
	})
	if lo < len(ms.tuples) && equalIntSlice(ms.tuples[lo], sorted) {
		return lo
	}
	return -1
}

// lessIntSlice is lexicographic < over equal-length int slices.
func lessIntSlice(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func equalIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NewMultiDeletionStore allocates a store for deleting exactly d of the
// candidate players from an n-player game, on the dense default backend.
func NewMultiDeletionStore(n, d int, candidates []int) (*MultiDeletionStore, error) {
	return NewMultiDeletionStoreWith(n, d, candidates, StoreConfig{})
}

// NewMultiDeletionStoreWith is NewMultiDeletionStore with an explicit
// storage backend.
func NewMultiDeletionStoreWith(n, d int, candidates []int, cfg StoreConfig) (*MultiDeletionStore, error) {
	if d < 1 {
		return nil, fmt.Errorf("core: multi-deletion needs d ≥ 1, got %d", d)
	}
	if len(candidates) < d {
		return nil, fmt.Errorf("core: %d candidates cannot cover d = %d deletions", len(candidates), d)
	}
	seen := map[int]bool{}
	cands := append([]int(nil), candidates...)
	sort.Ints(cands)
	for _, c := range cands {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("core: candidate %d out of range [0,%d)", c, n)
		}
		if seen[c] {
			return nil, fmt.Errorf("core: duplicate candidate %d", c)
		}
		seen[c] = true
	}
	ms := &MultiDeletionStore{
		n:          n,
		d:          d,
		store:      cfg,
		candidates: cands,
		candSlot:   make([]int, n),
		SV:         make([]float64, n),
	}
	for i := range ms.candSlot {
		ms.candSlot[i] = -1
	}
	for i, c := range cands {
		ms.candSlot[c] = i
	}
	// Enumerate all d-subsets of the candidates, in lexicographic order —
	// the sort invariant tupleIndex's binary search relies on.
	comb := make([]int, d)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == d {
			t := make([]int, d)
			for i, ci := range comb {
				t[i] = cands[ci]
			}
			ms.tuples = append(ms.tuples, t)
			return
		}
		for c := start; c <= len(cands)-(d-depth); c++ {
			comb[depth] = c
			rec(c+1, depth+1)
		}
	}
	rec(0, 0)
	// Rows (the striping unit) are the first axis i: rowLen entries each,
	// so row-aligned tiles keep every tile single-writer under the engine's
	// stripe workers.
	rowLen := len(ms.tuples) * (n + 1)
	entries := n * rowLen
	var err error
	if ms.yB, err = newBackend(entries, rowLen, cfg); err != nil {
		return nil, err
	}
	if ms.nnB, err = newBackend(entries, rowLen, cfg); err != nil {
		ms.yB.close()
		return nil, err
	}
	if db, ok := ms.yB.(*dense64); ok {
		ms.y = db.v
	}
	if db, ok := ms.nnB.(*dense64); ok {
		ms.nn = db.v
	}
	return ms, nil
}

// N returns the number of players the store covers.
func (ms *MultiDeletionStore) N() int { return ms.n }

// D returns the number of simultaneous deletions the store supports.
func (ms *MultiDeletionStore) D() int { return ms.d }

// Candidates returns the deletable players (sorted).
func (ms *MultiDeletionStore) Candidates() []int {
	return append([]int(nil), ms.candidates...)
}

// Backend reports which storage implementation holds the utility arrays.
func (ms *MultiDeletionStore) Backend() BackendKind { return ms.yB.backendKind() }

// MemoryBytes returns the logical footprint of the two utility arrays
// (heap or spill file).
func (ms *MultiDeletionStore) MemoryBytes() int64 {
	return ms.yB.logicalBytes() + ms.nnB.logicalBytes()
}

// HeapBytes returns the RAM-resident share of MemoryBytes — what the
// process cannot evict. Equal to MemoryBytes for the in-memory backends;
// near zero for the spill backend.
func (ms *MultiDeletionStore) HeapBytes() int64 {
	return ms.yB.heapBytes() + ms.nnB.heapBytes()
}

// Flush writes dirty tiles back to stable storage (no-op for the
// in-memory backends).
func (ms *MultiDeletionStore) Flush() error {
	if err := ms.yB.flush(); err != nil {
		return err
	}
	return ms.nnB.flush()
}

// Close releases non-heap resources (the spill backend's mmap and scratch
// file). The store must not be used afterwards.
func (ms *MultiDeletionStore) Close() error {
	err := ms.yB.close()
	if e := ms.nnB.close(); err == nil {
		err = e
	}
	return err
}

func (ms *MultiDeletionStore) idx(i, t, k int) int {
	return (i*len(ms.tuples)+t)*(ms.n+1) + k
}

// AccumulatePermutation folds one permutation into the sampled-mode arrays.
// utilities[pos] must hold U({perm[0..pos]}); uEmpty is U(∅). The
// per-permutation scratch (candidate positions and tuple minima) is reused
// across calls instead of reallocated each iteration.
func (ms *MultiDeletionStore) AccumulatePermutation(perm []int, utilities []float64, uEmpty float64) {
	n := ms.n
	if len(perm) != n || len(utilities) != n {
		panic("core: AccumulatePermutation length mismatch")
	}
	if ms.aux == nil {
		ms.aux = ms.newAux()
	}
	ms.prepare(perm, ms.aux, n)
	prev := uEmpty
	for p, pt := range perm {
		cur := utilities[p]
		ms.SV[pt] += cur - prev
		prev = cur
	}
	ms.accumulateStripe(perm, utilities, uEmpty, ms.aux, 0, n, n)
	ms.tau++
}

// newAux implements stripeTarget: one permutation's metadata is the
// position of every candidate followed by the earliest position of every
// tuple.
func (ms *MultiDeletionStore) newAux() []int {
	return make([]int, len(ms.candidates)+len(ms.tuples))
}

// prepare implements stripeTarget: it fills aux with candidate positions
// and per-tuple minima and returns the permutation's update count
// (2·Σ_t min(minPos[t], walk), one y and one nn write for every position
// preceding each tuple's first member, capped at the truncation depth).
func (ms *MultiDeletionStore) prepare(perm []int, aux []int, walk int) int64 {
	nc := len(ms.candidates)
	candPos := aux[:nc]
	minPos := aux[nc:]
	for p, pt := range perm {
		if s := ms.candSlot[pt]; s >= 0 {
			candPos[s] = p
		}
	}
	var updates int64
	for t, tuple := range ms.tuples {
		// minPos[t] = earliest position of any member of tuple t.
		m := ms.n
		for _, member := range tuple {
			if p := candPos[ms.candSlot[member]]; p < m {
				m = p
			}
		}
		minPos[t] = m
		if m > walk {
			m = walk
		}
		updates += int64(m)
	}
	return 2 * updates
}

// accumulateStripe folds one permutation into the rows lo ≤ i < hi of the
// arrays (SV and τ are left to the producer), visiting only the first walk
// positions. Row i receives its additions in permutation-walk order
// regardless of striping, so the striped fill is bit-identical to the
// serial one on every backend.
func (ms *MultiDeletionStore) accumulateStripe(perm []int, utilities []float64, uEmpty float64, aux []int, lo, hi, walk int) {
	minPos := aux[len(ms.candidates):]
	if ms.y != nil {
		// Dense fast path: direct slice writes, the historic hot loop.
		prev := uEmpty
		for p, pt := range perm {
			if p >= walk {
				break
			}
			cur := utilities[p]
			if pt >= lo && pt < hi {
				for t := range ms.tuples {
					// All tuple members strictly after position p ⇒ the prefix
					// excludes the whole tuple (and pt ∉ tuple, since pt is at p).
					if minPos[t] > p {
						ms.y[ms.idx(pt, t, p+1)] += cur
						ms.nn[ms.idx(pt, t, p)] += prev
					}
				}
			}
			prev = cur
		}
		return
	}
	prev := uEmpty
	for p, pt := range perm {
		if p >= walk {
			break
		}
		cur := utilities[p]
		if pt >= lo && pt < hi {
			for t := range ms.tuples {
				if minPos[t] > p {
					ms.yB.add(ms.idx(pt, t, p+1), cur)
					ms.nnB.add(ms.idx(pt, t, p), prev)
				}
			}
		}
		prev = cur
	}
}

// finishSampled converts accumulated sums into averages.
func (ms *MultiDeletionStore) finishSampled() {
	inv := 1 / float64(ms.tau)
	if ms.y != nil {
		// Historic interleaved loop, kept verbatim for bit-identity.
		for i := range ms.y {
			ms.y[i] *= inv
			ms.nn[i] *= inv
		}
	} else {
		ms.yB.scale(inv)
		ms.nnB.scale(inv)
	}
	for i := range ms.SV {
		ms.SV[i] *= inv
	}
}

// PreprocessMultiDeletion runs the YNN-NNN fill: Monte Carlo Shapley
// computation over g that simultaneously populates the (d+2)-dimensional
// arrays for every d-subset of the candidates.
func PreprocessMultiDeletion(g game.Game, d int, candidates []int, tau int, r *rng.Source) (*MultiDeletionStore, error) {
	n := g.N()
	ms, err := NewMultiDeletionStore(n, d, candidates)
	if err != nil {
		return nil, err
	}
	if n == 0 || tau <= 0 {
		return ms, nil
	}
	w := newPrefixWalker(g)
	uEmpty := g.Value(bitset.New(n))
	utilities := make([]float64, n)
	perm := make([]int, n)
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		w.reset()
		for pos, p := range perm {
			utilities[pos] = w.add(p)
		}
		ms.AccumulatePermutation(perm, utilities, uEmpty)
	}
	ms.finishSampled()
	return ms, nil
}

// PreprocessMultiDeletionExact fills Definition-2 arrays by complete
// enumeration (n ≤ MaxExactPlayers).
func PreprocessMultiDeletionExact(g game.Game, d int, candidates []int) (*MultiDeletionStore, error) {
	n := g.N()
	if n > MaxExactPlayers {
		return nil, fmt.Errorf("core: exact multi-deletion limited to %d players, got %d", MaxExactPlayers, n)
	}
	ms, err := NewMultiDeletionStore(n, d, candidates)
	if err != nil {
		return nil, err
	}
	ms.exact = true
	ms.SV = Exact(g)
	s := bitset.New(n)
	size := 1 << uint(n)
	for mask := 0; mask < size; mask++ {
		s.Clear()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(i)
			}
		}
		u := g.Value(s)
		k := popcount(mask)
		for t, tuple := range ms.tuples {
			excluded := true
			for _, m := range tuple {
				if mask&(1<<uint(m)) != 0 {
					excluded = false
					break
				}
			}
			if !excluded {
				continue
			}
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					ms.yB.add(ms.idx(i, t, k), u)
				} else if !contains(tuple, i) {
					ms.nnB.add(ms.idx(i, t, k), u)
				}
			}
		}
	}
	return ms, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Merge derives the post-deletion Shapley values after removing exactly the
// given points, which must form one of the prepared d-subsets of the
// candidate set. The returned slice has n entries, zero at deleted points.
// The row sweep is parallelised over i for large stores; each out[i] is
// accumulated in ascending-k order by exactly one goroutine, so the result
// is bit-identical at every worker count.
func (ms *MultiDeletionStore) Merge(points ...int) ([]float64, error) {
	return ms.mergeWith(mergeWorkers(ms.n*(ms.n-ms.d+1)), points...)
}

// mergeWith is Merge with an explicit worker count (exposed for tests).
func (ms *MultiDeletionStore) mergeWith(workers int, points ...int) ([]float64, error) {
	if len(points) != ms.d {
		return nil, fmt.Errorf("core: Merge got %d points, store prepared for d = %d", len(points), ms.d)
	}
	sorted := append([]int(nil), points...)
	sort.Ints(sorted)
	t := ms.tupleIndex(sorted)
	if t < 0 {
		return nil, fmt.Errorf("core: tuple %v not covered by candidate set %v", sorted, ms.candidates)
	}
	n, d := ms.n, ms.d
	out := make([]float64, n)
	// Per-k coefficients shared across rows, computed by the historic
	// recurrences and applied with the historic operations (divide for
	// exact, multiply for sampled).
	coef := make([]float64, n-d+1)
	if ms.exact {
		// Lemma 4: SV⁻_i = 1/(n−d) Σ_k (Y[i][t][k] − N[i][t][k−1]) / C(n−d−1, k−1).
		binom := 1.0
		for k := 1; k <= n-d; k++ {
			coef[k] = binom
			binom = binom * float64(n-d-k) / float64(k)
		}
	} else {
		// Sampled semantics: coef(k) = Π_{j<k} (n−j)/(n−d−j), the d-point
		// generalisation of the n/(n−k) coefficient (see DESIGN.md §3).
		c := 1.0
		for k := 1; k <= n-d; k++ {
			c *= float64(n-k+1) / float64(n-d-k+1)
			coef[k] = c
		}
	}
	parallelRows(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if contains(sorted, i) {
				continue
			}
			if ms.y != nil {
				// Dense fast path: the historic plain accumulation, kept
				// verbatim for bit-identity with the pre-interface store.
				acc := 0.0
				base := ms.idx(i, t, 0)
				for k := 1; k <= n-d; k++ {
					dv := ms.y[base+k] - ms.nn[base+k-1]
					if ms.exact {
						acc += dv / coef[k]
					} else {
						acc += dv * coef[k]
					}
				}
				if ms.exact {
					acc /= float64(n - d)
				}
				out[i] = acc
				continue
			}
			// float32 backends: compensated float64 reduction so the only
			// error left is the storage rounding itself.
			var acc neumaierSum
			base := ms.idx(i, t, 0)
			for k := 1; k <= n-d; k++ {
				dv := ms.yB.at(base+k) - ms.nnB.at(base+k-1)
				if ms.exact {
					acc.add(dv / coef[k])
				} else {
					acc.add(dv * coef[k])
				}
			}
			v := acc.value()
			if ms.exact {
				v /= float64(n - d)
			}
			out[i] = v
		}
	})
	return out, nil
}
