package core

import (
	"runtime"
	"sync"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// MonteCarloParallel is MonteCarlo with the τ permutations spread across
// `workers` goroutines (≤0 selects GOMAXPROCS). The paper notes that MC,
// TMC, Pivot-d and Delta parallelise this way (§VII-G, k = 48 threads);
// permutations are independent, so the estimates merge by summation.
// Each worker derives its own RNG stream with Split, so the result is
// deterministic for a given (seed, workers) pair.
func MonteCarloParallel(g game.Game, tau, workers int, r *rng.Source) []float64 {
	return parallelPermutationSum(g.N(), tau, workers, r, func(sub *rng.Source, quota int, sv []float64) {
		accumulateMC(g, quota, sub, sv)
	})
}

// accumulateMC runs one worker's share of permutations. It is called once
// per goroutine, so the walker it builds — and any incremental evaluator
// inside — stays worker-local.
func accumulateMC(g game.Game, tau int, r *rng.Source, sv []float64) {
	n := g.N()
	perm := make([]int, n)
	w := newPrefixWalker(g)
	empty := g.Value(bitset.New(n))
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		w.reset()
		prev := empty
		for _, p := range perm {
			cur := w.add(p)
			sv[p] += cur - prev
			prev = cur
		}
	}
}

// parallelPermutationSum runs fn on per-worker quotas summing into per-worker
// accumulators, then merges and divides by τ.
func parallelPermutationSum(n, tau, workers int, r *rng.Source, fn func(sub *rng.Source, quota int, sv []float64)) []float64 {
	sv := make([]float64, n)
	if n == 0 || tau <= 0 {
		return sv
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tau {
		workers = tau
	}
	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := tau / workers
		if w < tau%workers {
			quota++
		}
		sub := r.Split()
		partials[w] = make([]float64, n)
		wg.Add(1)
		go func(w, quota int, sub *rng.Source) {
			defer wg.Done()
			fn(sub, quota, partials[w])
		}(w, quota, sub)
	}
	wg.Wait()
	for _, part := range partials {
		for i, v := range part {
			sv[i] += v
		}
	}
	for i := range sv {
		sv[i] /= float64(tau)
	}
	return sv
}
