package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

// fillDeletionStore feeds tau synthetic permutation walks into ds. The
// (seed, umax) stream is a pure function of its arguments, so filling two
// stores with the same parameters gives them identical input — any output
// difference is then attributable to the storage backend alone.
func fillDeletionStore(ds *DeletionStore, tau int, seed uint64, umax float64) {
	n := ds.N()
	r := rng.New(seed)
	perm := make([]int, n)
	utilities := make([]float64, n)
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		for pos := range utilities {
			utilities[pos] = umax * (2*r.Float64() - 1)
		}
		ds.AccumulatePermutation(perm, utilities, 0)
	}
	ds.finishSampled()
}

// fillMultiStore is fillDeletionStore for the YNN-NNN store.
func fillMultiStore(ms *MultiDeletionStore, tau int, seed uint64, umax float64) {
	n := ms.N()
	r := rng.New(seed)
	perm := make([]int, n)
	utilities := make([]float64, n)
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		for pos := range utilities {
			utilities[pos] = umax * (2*r.Float64() - 1)
		}
		ms.AccumulatePermutation(perm, utilities, 0)
	}
	ms.finishSampled()
}

// storeMergeTolerance is the DESIGN.md §15 tolerance contract for the
// float32 backends: a sampled entry accumulates ≤ τ addends of magnitude
// ≤ umax in float32, so after the 1/τ scaling its rounding error is at most
// τ·ε32·umax; Merge combines n−1 entry pairs with coefficients n/(n−k)
// summing to n·H_{n−1} ≤ n·(ln n + 1), and its Neumaier-compensated float64
// reduction adds nothing at float32 scale. The factor 4 absorbs the
// coarseness of bounding Σ|addends| by τ·umax.
func storeMergeTolerance(n, tau int, umax float64) float64 {
	const eps32 = 1.0 / (1 << 24)
	harmonic := float64(n) * (math.Log(float64(n)) + 1)
	return 4 * 2 * harmonic * float64(tau) * eps32 * umax
}

// TestTiledStoreMemoryRatio pins the headline footprint claim: the tiled
// float32 backend stores the same logical arrays in ≤ 55% of the dense
// float64 backend's bytes — at the small full-store shape and at the
// benchmark's candidate-restricted n=1000 shape.
func TestTiledStoreMemoryRatio(t *testing.T) {
	dsDense := NewDeletionStore(96)
	dsTiled, err := NewDeletionStoreWith(96, StoreConfig{Kind: BackendTiled32})
	if err != nil {
		t.Fatal(err)
	}
	if got, max := dsTiled.MemoryBytes(), dsDense.MemoryBytes()*55/100; got > max {
		t.Errorf("tiled DeletionStore footprint %d B > 55%% of dense %d B", got, dsDense.MemoryBytes())
	}
	if dsTiled.HeapBytes() != dsTiled.MemoryBytes() {
		t.Errorf("tiled backend is in-memory: HeapBytes %d != MemoryBytes %d", dsTiled.HeapBytes(), dsTiled.MemoryBytes())
	}

	const n = 1000
	cands := rng.New(1).Sample(n, 8)
	msDense, err := NewMultiDeletionStoreWith(n, 1, cands, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	msTiled, err := NewMultiDeletionStoreWith(n, 1, cands, StoreConfig{Kind: BackendTiled32})
	if err != nil {
		t.Fatal(err)
	}
	if got, max := msTiled.MemoryBytes(), msDense.MemoryBytes()*55/100; got > max {
		t.Errorf("tiled MultiDeletionStore footprint %d B > 55%% of dense %d B", got, msDense.MemoryBytes())
	}
}

// TestStoreBackendRankCorrelation runs the real engine fill (striped, with
// the prefix walker) on dense and tiled backends over an additive game and
// checks the acceptance contract: Merge output within the documented
// tolerance and Spearman rank correlation ≥ 0.99 against float64.
func TestStoreBackendRankCorrelation(t *testing.T) {
	const n, tau = 64, 160
	w := make([]float64, n)
	r0 := rng.New(11)
	total := 0.0
	for i := range w {
		w[i] = r0.Float64()
		total += w[i]
	}
	g := game.Additive{Weights: w}
	e := NewEngine(WithWorkers(4))
	dense, err := e.PreprocessDeletionWith(g, tau, rng.New(42), StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := e.PreprocessDeletionWith(g, tau, rng.New(42), StoreConfig{Kind: BackendTiled32})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Backend() != BackendDense64 || tiled.Backend() != BackendTiled32 {
		t.Fatalf("backends = %v, %v", dense.Backend(), tiled.Backend())
	}
	tol := storeMergeTolerance(n, tau, total) // prefix utilities peak at the weight total
	for _, p := range []int{0, n / 2, n - 1} {
		dv, err := dense.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := tiled.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dv {
			if d := math.Abs(tv[i] - dv[i]); d > tol {
				t.Fatalf("Merge(%d)[%d]: tiled %v vs dense %v, |Δ|=%g > tolerance %g", p, i, tv[i], dv[i], d, tol)
			}
		}
		if rho := stat.Spearman(dv, tv); rho < 0.99 {
			t.Errorf("Merge(%d): Spearman(dense, tiled) = %v < 0.99", p, rho)
		}
	}
}

// TestFloat32StoreWorkerInvariance checks the tile-ownership design: row-
// aligned tiles give every entry exactly one writer adding in walk order,
// so the float32 fills are bit-identical at any worker count — the same
// guarantee the dense backend has always had.
func TestFloat32StoreWorkerInvariance(t *testing.T) {
	const n, tau = 33, 40
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i%7) + 0.25
	}
	g := game.Additive{Weights: w}
	for _, kind := range []BackendKind{BackendTiled32, BackendSpill32} {
		cfg := StoreConfig{Kind: kind}
		if kind == BackendSpill32 {
			cfg.SpillDir = t.TempDir()
		}
		serial, err := NewEngine(WithWorkers(1)).PreprocessDeletionWith(g, tau, rng.New(7), cfg)
		if err != nil {
			t.Fatal(err)
		}
		striped, err := NewEngine(WithWorkers(4), WithChunkSize(2)).PreprocessDeletionWith(g, tau, rng.New(7), cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertBitEqual(t, kind.String()+" SV", striped.SV, serial.SV)
		assertBitEqual(t, kind.String()+" YN", striped.ynB.export(), serial.ynB.export())
		assertBitEqual(t, kind.String()+" NN", striped.nnB.export(), serial.nnB.export())
		serial.Close()
		striped.Close()
	}
}

// TestSpillStoreMemorySmoke is the `make bench-mem` gate: a spill-backed
// store several MB in logical size must keep its heap-resident share under
// a fixed ceiling, flush cleanly, and merge bit-identically to the in-heap
// tiled backend (both accumulate in float32, so the mapping adds nothing).
func TestSpillStoreMemorySmoke(t *testing.T) {
	const n, tau = 256, 16
	cands := rng.New(3).Sample(n, 8)
	spill, err := NewMultiDeletionStoreWith(n, 1, cands, StoreConfig{Kind: BackendSpill32, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()
	if spill.Backend() != BackendSpill32 {
		t.Skip("spill backend unavailable on this platform (falls back to tiled32)")
	}
	fillMultiStore(spill, tau, 21, 1)
	if err := spill.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	const heapCeiling = 1 << 20 // 1 MiB of bookkeeping for a multi-MB store
	if spill.MemoryBytes() <= heapCeiling {
		t.Fatalf("store too small (%d B) to demonstrate spilling", spill.MemoryBytes())
	}
	if got := spill.HeapBytes(); got > heapCeiling {
		t.Errorf("spill store keeps %d B on heap, ceiling %d B", got, heapCeiling)
	}

	tiled, err := NewMultiDeletionStoreWith(n, 1, cands, StoreConfig{Kind: BackendTiled32})
	if err != nil {
		t.Fatal(err)
	}
	fillMultiStore(tiled, tau, 21, 1)
	want, err := tiled.Merge(cands[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := spill.Merge(cands[0])
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, "spill vs tiled Merge", got, want)
}

// diminishing is a symmetric game whose marginal contributions decay
// geometrically with coalition size — the diminishing-returns regime where
// stratified truncation's tail bias vanishes (U(S) = 1 − ρ^|S|).
type diminishing struct {
	n   int
	rho float64
}

func (g diminishing) N() int { return g.n }
func (g diminishing) Value(s bitset.Set) float64 {
	return 1 - math.Pow(g.rho, float64(s.Len()))
}

// TestTruncatedMonteCarloAccuracy checks the estimator contract: with
// truncation t, strata k ≤ t are unbiased, so on a diminishing-returns game
// the estimate lands within (ρ^t)/n + sampling noise of the closed form
// SV_i = (1 − ρ^n)/n.
func TestTruncatedMonteCarloAccuracy(t *testing.T) {
	const n, trunc, tau = 40, 12, 2000
	g := diminishing{n: n, rho: 0.5}
	e := NewEngine(WithWorkers(3), WithTruncation(trunc))
	sv := e.MonteCarlo(g, tau, rng.New(5))
	if got := e.Stats().Truncation; got != trunc {
		t.Fatalf("EngineStats.Truncation = %d, want %d", got, trunc)
	}
	exact := (1 - math.Pow(g.rho, float64(n))) / float64(n)
	for i, v := range sv {
		if d := math.Abs(v - exact); d > 0.008 {
			t.Errorf("sv[%d] = %v, exact %v, |Δ|=%g beyond noise+tail bound", i, v, exact, d)
		}
	}
}

// TestTruncationDeterminism: the truncated sampler is a pure function of
// the seed — identical across worker counts — and a truncation at or above
// n leaves the historic randomness stream untouched (bit-identical to an
// untruncated engine).
func TestTruncationDeterminism(t *testing.T) {
	const n, tau = 24, 50
	g := diminishing{n: n, rho: 0.6}
	a := NewEngine(WithWorkers(1), WithTruncation(10)).MonteCarlo(g, tau, rng.New(9))
	b := NewEngine(WithWorkers(4), WithChunkSize(3), WithTruncation(10)).MonteCarlo(g, tau, rng.New(9))
	assertBitEqual(t, "truncated MC across workers", b, a)

	plain := NewEngine().MonteCarlo(g, tau, rng.New(9))
	loose := NewEngine(WithTruncation(n + 5)).MonteCarlo(g, tau, rng.New(9))
	assertBitEqual(t, "truncation ≥ n is the identity", loose, plain)
}

// TestTruncationKeepPermsError: retained permutations record full walks, so
// Initialize must refuse the combination rather than store biased prefixes.
func TestTruncationKeepPermsError(t *testing.T) {
	g := diminishing{n: 16, rho: 0.5}
	e := NewEngine(WithTruncation(4))
	if _, err := e.Initialize(g, 20, InitOptions{KeepPerms: true}, rng.New(1)); err == nil {
		t.Fatal("Initialize accepted KeepPerms with truncation; want error")
	}
}

// TestTruncatedStoreStrata: a truncated fill writes only strata k ≤ t of
// the YN array (k < t for NN); the tail strata stay exactly zero, which is
// what keeps Merge's per-k coefficients valid under truncation.
func TestTruncatedStoreStrata(t *testing.T) {
	const n, trunc, tau = 20, 6, 30
	g := diminishing{n: n, rho: 0.5}
	e := NewEngine(WithTruncation(trunc))
	ds, err := e.PreprocessDeletionWith(g, tau, rng.New(13), StoreConfig{Kind: BackendTiled32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := trunc + 1; k <= n; k++ {
				if v := ds.ynB.at(ds.idx(i, j, k)); v != 0 {
					t.Fatalf("YN[%d][%d][%d] = %v, want 0 beyond truncation depth %d", i, j, k, v, trunc)
				}
			}
			for k := trunc; k <= n; k++ {
				if v := ds.nnB.at(ds.idx(i, j, k)); v != 0 {
					t.Fatalf("NN[%d][%d][%d] = %v, want 0 beyond truncation depth %d", i, j, k, v, trunc)
				}
			}
		}
	}
}

// FuzzStoreBackendEquality fuzzes the backend contract over random fills:
// the dense float64 backend is exact-equality gated (bit-identical across
// repeated identical fills), and the tiled float32 backend merges within
// the documented storeMergeTolerance bound of dense.
func FuzzStoreBackendEquality(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(16))
	f.Add(uint64(99), uint8(3), uint8(1))
	f.Add(uint64(7), uint8(20), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, tauRaw uint8) {
		n := 2 + int(nRaw%23)     // 2..24 players
		tau := 1 + int(tauRaw%64) // 1..64 walks
		const umax = 2.0
		dense1 := NewDeletionStore(n)
		dense2 := NewDeletionStore(n)
		tiled, err := NewDeletionStoreWith(n, StoreConfig{Kind: BackendTiled32})
		if err != nil {
			t.Fatal(err)
		}
		fillDeletionStore(dense1, tau, seed, umax)
		fillDeletionStore(dense2, tau, seed, umax)
		fillDeletionStore(tiled, tau, seed, umax)
		tol := storeMergeTolerance(n, tau, umax)
		for p := 0; p < n; p++ {
			v1, err := dense1.Merge(p)
			if err != nil {
				t.Fatal(err)
			}
			v2, _ := dense2.Merge(p)
			vt, _ := tiled.Merge(p)
			for i := range v1 {
				if math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
					t.Fatalf("dense backend not exact: Merge(%d)[%d] = %v vs %v", p, i, v1[i], v2[i])
				}
				if d := math.Abs(vt[i] - v1[i]); d > tol {
					t.Fatalf("tiled Merge(%d)[%d] off by %g > tolerance %g (n=%d τ=%d)", p, i, d, tol, n, tau)
				}
			}
		}
	})
}

// benchFillMulti measures fill throughput and footprint of one backend at
// the candidate-restricted shape internal/bench uses for large n (the dense
// full YN-NN store at n=1000 would be 16 GB; a broker tracks a candidate
// pool). Footprints surface as benchmark metrics so `benchsnap` records and
// diffs them alongside ns/op.
func benchFillMulti(b *testing.B, n, numCand int, cfg StoreConfig) {
	cands := rng.New(1).Sample(n, numCand)
	ms, err := NewMultiDeletionStoreWith(n, 1, cands, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer ms.Close()
	r := rng.New(2)
	perm := make([]int, n)
	utilities := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Perm(perm)
		u := 0.0
		for pos, p := range perm {
			u += float64(p)
			utilities[pos] = u * 1e-6
		}
		ms.AccumulatePermutation(perm, utilities, 0)
	}
	b.StopTimer()
	b.ReportMetric(float64(ms.MemoryBytes()), "store-bytes")
	b.ReportMetric(float64(ms.HeapBytes()), "heap-bytes")
}

func BenchmarkDeletionStoreN1000(b *testing.B) {
	for _, kind := range []BackendKind{BackendDense64, BackendTiled32, BackendSpill32} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := StoreConfig{Kind: kind}
			if kind == BackendSpill32 {
				cfg.SpillDir = b.TempDir()
			}
			benchFillMulti(b, 1000, 8, cfg)
		})
	}
}

func BenchmarkDeletionStoreN2000(b *testing.B) {
	for _, kind := range []BackendKind{BackendTiled32, BackendSpill32} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := StoreConfig{Kind: kind}
			if kind == BackendSpill32 {
				cfg.SpillDir = b.TempDir()
			}
			benchFillMulti(b, 2000, 6, cfg)
		})
	}
}

func BenchmarkDeletionStoreN5000(b *testing.B) {
	b.Run(BackendSpill32.String(), func(b *testing.B) {
		benchFillMulti(b, 5000, 4, StoreConfig{Kind: BackendSpill32, SpillDir: b.TempDir()})
	})
}
