package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

func knnFixture(n, nTest int, seed uint64) (*dataset.Dataset, *dataset.Dataset) {
	d := dataset.IrisLike(rng.New(seed), n+nTest)
	d.Standardize()
	train := d.Subset(seqRange(0, n))
	test := d.Subset(seqRange(n, n+nTest))
	return train, test
}

func seqRange(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// The decisive check: the closed form must equal complete enumeration of
// the soft k-NN utility, for several k and datasets.
func TestKNNShapleyMatchesExactEnumeration(t *testing.T) {
	// k = 11 exceeds both n values: the closed form's base term must
	// switch to 1[match]/k (points stay inside the k-window for every
	// coalition size), not the n ≥ k form 1[match]/n.
	for _, k := range []int{1, 3, 5, 11} {
		for _, n := range []int{6, 9} {
			train, test := knnFixture(n, 12, uint64(100+k))
			u := NewSoftKNNUtility(train, test, k)
			want := Exact(u)
			got, err := KNNShapley(train, test, k)
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(got, want); d > 1e-10 {
				t.Fatalf("k=%d n=%d: closed form diff %v\n got %v\nwant %v", k, n, d, got, want)
			}
		}
	}
}

func TestKNNShapleyBalance(t *testing.T) {
	train, test := knnFixture(40, 20, 7)
	const k = 5
	sv, err := KNNShapley(train, test, k)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range sv {
		sum += v
	}
	u := NewSoftKNNUtility(train, test, k)
	full := u.Value(bitset.Full(40))
	if math.Abs(sum-full) > 1e-10 {
		t.Fatalf("ΣSV = %v, want U(N) = %v (U(∅)=0)", sum, full)
	}
}

func TestKNNShapleyAgreesWithMonteCarlo(t *testing.T) {
	// Cross-validation in the other direction: the generic Monte Carlo
	// estimator over the soft k-NN game must converge to the closed form.
	train, test := knnFixture(12, 15, 9)
	const k = 3
	exact, err := KNNShapley(train, test, k)
	if err != nil {
		t.Fatal(err)
	}
	u := NewSoftKNNUtility(train, test, k)
	mc := MonteCarlo(u, 20000, rng.New(1))
	if mse := stat.MSE(mc, exact); mse > 1e-5 {
		t.Fatalf("MC vs closed form MSE = %v", mse)
	}
}

func TestKNNShapleyValidation(t *testing.T) {
	train, test := knnFixture(5, 5, 11)
	if _, err := KNNShapley(dataset.New(nil), test, 3); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := KNNShapley(train, test, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	got, err := KNNShapley(train, dataset.New(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("empty test set should value everything 0")
		}
	}
}

func TestSoftKNNUtilityProperties(t *testing.T) {
	train, test := knnFixture(8, 10, 13)
	u := NewSoftKNNUtility(train, test, 3)
	if u.N() != 8 {
		t.Fatalf("N = %d", u.N())
	}
	if got := u.Value(bitset.New(8)); got != 0 {
		t.Fatalf("U(∅) = %v", got)
	}
	full := u.Value(bitset.Full(8))
	if full < 0 || full > 1 {
		t.Fatalf("U(N) = %v out of [0,1]", full)
	}
	// Deterministic.
	if u.Value(bitset.Full(8)) != full {
		t.Fatal("utility not deterministic")
	}
}

func TestKNNShapleyFavorsInformativePoints(t *testing.T) {
	// A training point identical to a test point (same label) must be worth
	// more than a mislabelled twin of it.
	train := dataset.New([]dataset.Point{
		{X: []float64{0, 0}, Y: 0}, // matches the test point
		{X: []float64{0, 0}, Y: 1}, // mislabelled twin
		{X: []float64{5, 5}, Y: 1},
		{X: []float64{6, 6}, Y: 1},
	})
	test := dataset.New([]dataset.Point{{X: []float64{0, 0}, Y: 0}})
	sv, err := KNNShapley(train, test, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sv[0] <= sv[1] {
		t.Fatalf("correct twin %v not above mislabelled twin %v", sv[0], sv[1])
	}
}

func BenchmarkKNNShapleyN1000(b *testing.B) {
	train, test := knnFixture(1000, 50, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KNNShapley(train, test, 5); err != nil {
			b.Fatal(err)
		}
	}
}
