package core

import (
	"testing"

	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

func TestComplementaryMonteCarloConverges(t *testing.T) {
	g := tableGame{n: 9, seed: 121}
	want := Exact(g)
	got := ComplementaryMonteCarlo(g, 20000, rng.New(1))
	if mse := stat.MSE(got, want); mse > 1e-4 {
		t.Fatalf("CC-MC MSE = %v", mse)
	}
}

func TestComplementaryMonteCarloAdditive(t *testing.T) {
	g := game.Additive{Weights: []float64{0.5, -0.25, 1, 0}}
	got := ComplementaryMonteCarlo(g, 5000, rng.New(2))
	if mse := stat.MSE(got, g.ShapleyValues()); mse > 1e-4 {
		t.Fatalf("CC-MC on additive game MSE = %v", mse)
	}
}

func TestComplementaryMonteCarloDeterministic(t *testing.T) {
	g := tableGame{n: 7, seed: 122}
	a := ComplementaryMonteCarlo(g, 200, rng.New(5))
	b := ComplementaryMonteCarlo(g, 200, rng.New(5))
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("same-seed CC-MC differs")
	}
}

func TestComplementaryMonteCarloDegenerate(t *testing.T) {
	if got := ComplementaryMonteCarlo(game.Additive{}, 10, rng.New(1)); len(got) != 0 {
		t.Fatal("empty game should give empty result")
	}
	got := ComplementaryMonteCarlo(game.Additive{Weights: []float64{1, 2}}, 0, rng.New(1))
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("τ=0 should give zeros")
	}
}

func TestComplementaryBeatsMCOnComplementaryGame(t *testing.T) {
	// On a symmetric game dominated by the grand-coalition bonus, a single
	// CC sample carries far more information than a single marginal: the
	// CC estimator should win clearly at equal permutation counts.
	g := game.Symmetric{Players: 10, F: func(k int) float64 {
		v := float64(k) / 10
		if k == 10 {
			v += 1
		}
		return v
	}}
	want := g.ShapleyValues()
	const tau, reps = 40, 20
	var mseCC, mseMC float64
	for rep := 0; rep < reps; rep++ {
		seed := uint64(3000 + rep)
		cc := ComplementaryMonteCarlo(g, tau, rng.New(seed))
		mc := MonteCarlo(g, tau, rng.New(seed+500))
		mseCC += stat.MSE(cc, want) / reps
		mseMC += stat.MSE(mc, want) / reps
	}
	if mseCC >= mseMC {
		t.Fatalf("CC-MC MSE %v not below MC MSE %v", mseCC, mseMC)
	}
}
