package core

import (
	"testing"

	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

func TestDeltaAddParallelMatchesExact(t *testing.T) {
	gPlus := tableGame{n: 7, seed: 111}
	gD := restrictFirst(gPlus, 6)
	oldSV := Exact(gD)
	got, err := DeltaAddParallel(gPlus, oldSV, 30000, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(gPlus)
	if mse := stat.MSE(got, want); mse > 1e-4 {
		t.Fatalf("parallel DeltaAdd MSE = %v", mse)
	}
}

func TestDeltaAddParallelDeterministic(t *testing.T) {
	gPlus := tableGame{n: 6, seed: 112}
	oldSV := make([]float64, 5)
	a, err := DeltaAddParallel(gPlus, oldSV, 500, 3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeltaAddParallel(gPlus, oldSV, 500, 3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("same-seed parallel DeltaAdd differs")
	}
}

func TestDeltaAddParallelValidation(t *testing.T) {
	gPlus := tableGame{n: 5, seed: 113}
	if _, err := DeltaAddParallel(gPlus, make([]float64, 3), 10, 2, rng.New(1)); err == nil {
		t.Fatal("size mismatch should fail")
	}
	if _, err := DeltaAddParallel(gPlus, make([]float64, 4), 0, 2, rng.New(1)); err == nil {
		t.Fatal("τ=0 should fail")
	}
}

func TestAddDifferentParallelMatchesExact(t *testing.T) {
	gPlus := tableGame{n: 7, seed: 114}
	gD := restrictFirst(gPlus, 6)
	st := PivotInit(gD, 30000, false, rng.New(2))
	got, err := st.AddDifferentParallel(gPlus, 30000, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(gPlus)
	if mse := stat.MSE(got, want); mse > 2e-4 {
		t.Fatalf("parallel AddDifferent MSE = %v", mse)
	}
	if st.HasPermutations() {
		t.Fatal("parallel AddDifferent should drop stored permutations")
	}
}

func TestAddDifferentParallelDeterministic(t *testing.T) {
	gPlus := tableGame{n: 6, seed: 115}
	gD := restrictFirst(gPlus, 5)
	run := func() []float64 {
		st := PivotInit(gD, 200, false, rng.New(4))
		out, err := st.AddDifferentParallel(gPlus, 400, 3, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if maxAbsDiff(run(), run()) != 0 {
		t.Fatal("same-seed parallel AddDifferent differs")
	}
}

func TestAddDifferentParallelValidation(t *testing.T) {
	st := PivotInit(tableGame{n: 4, seed: 116}, 10, false, rng.New(6))
	if _, err := st.AddDifferentParallel(tableGame{n: 7, seed: 116}, 10, 2, rng.New(7)); err == nil {
		t.Fatal("size mismatch should fail")
	}
	if _, err := st.AddDifferentParallel(tableGame{n: 5, seed: 116}, 0, 2, rng.New(7)); err == nil {
		t.Fatal("τ=0 should fail")
	}
}

func TestParallelWorkersClampedToTau(t *testing.T) {
	gPlus := tableGame{n: 4, seed: 117}
	oldSV := make([]float64, 3)
	if _, err := DeltaAddParallel(gPlus, oldSV, 2, 64, rng.New(8)); err != nil {
		t.Fatalf("clamped workers failed: %v", err)
	}
}
