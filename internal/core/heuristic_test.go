package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/rng"
)

func heuristicFixture() (*dataset.Dataset, []float64) {
	// Two tight clusters; SVs chosen so cluster membership is visible.
	pts := []dataset.Point{
		{X: []float64{0, 0}, Y: 0},
		{X: []float64{0.1, 0}, Y: 0},
		{X: []float64{0, 0.1}, Y: 0},
		{X: []float64{5, 5}, Y: 1},
		{X: []float64{5.1, 5}, Y: 1},
		{X: []float64{5, 5.1}, Y: 1},
	}
	sv := []float64{0.10, 0.12, 0.11, 0.30, 0.28, 0.32}
	return dataset.New(pts), sv
}

func TestKNNAddAssignsNeighborhoodMean(t *testing.T) {
	train, sv := heuristicFixture()
	added := []dataset.Point{{X: []float64{0.05, 0.05}, Y: 0}}
	got, err := KNNAdd(sv, train, added, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("len = %d", len(got))
	}
	// Original values unchanged.
	for i := 0; i < 6; i++ {
		if got[i] != sv[i] {
			t.Fatalf("original SV %d changed", i)
		}
	}
	want := (0.10 + 0.12 + 0.11) / 3
	if math.Abs(got[6]-want) > 1e-12 {
		t.Fatalf("new SV = %v, want %v (mean of cluster 0)", got[6], want)
	}
}

func TestKNNAddMultiplePoints(t *testing.T) {
	train, sv := heuristicFixture()
	added := []dataset.Point{
		{X: []float64{0, 0}, Y: 0},
		{X: []float64{5, 5}, Y: 1},
	}
	got, err := KNNAdd(sv, train, added, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[6] >= got[7] {
		t.Fatalf("cluster-0 addition (%v) should be valued below cluster-1 addition (%v)", got[6], got[7])
	}
}

func TestKNNAddValidation(t *testing.T) {
	train, sv := heuristicFixture()
	if _, err := KNNAdd(sv[:3], train, nil, 3); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := KNNAdd(nil, dataset.New(nil), nil, 3); err == nil {
		t.Fatal("empty original should fail")
	}
}

func TestKNNDeletePreservesTotal(t *testing.T) {
	train, sv := heuristicFixture()
	got, err := KNNDelete(sv, train, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("deleted entry = %v", got[0])
	}
	var before, after float64
	for _, v := range sv {
		before += v
	}
	for _, v := range got {
		after += v
	}
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("total changed: %v → %v", before, after)
	}
	// The redistribution must land on the deleted point's own cluster.
	if got[1] <= sv[1] || got[2] <= sv[2] {
		t.Fatal("neighbours did not inherit the deleted value")
	}
	if got[3] != sv[3] {
		t.Fatal("far points should be untouched")
	}
}

func TestKNNDeleteSkipsOtherDeleted(t *testing.T) {
	train, sv := heuristicFixture()
	got, err := KNNDelete(sv, train, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("deleted entries nonzero")
	}
	// Point 2 is the only survivor in cluster 0; with k=2 the shares spill
	// into cluster 1, but nothing may flow into deleted points.
	var total float64
	for _, v := range got {
		total += v
	}
	var before float64
	for _, v := range sv {
		before += v
	}
	if math.Abs(total-before) > 1e-12 {
		t.Fatal("total not preserved with multiple deletions")
	}
}

func TestKNNDeleteAllPoints(t *testing.T) {
	train, sv := heuristicFixture()
	got, err := KNNDelete(sv, train, []int{0, 1, 2, 3, 4, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("entry %d = %v after deleting everything", i, v)
		}
	}
}

func TestKNNDeleteValidation(t *testing.T) {
	train, sv := heuristicFixture()
	if _, err := KNNDelete(sv, train, []int{9}, 2); err == nil {
		t.Fatal("out-of-range deletion should fail")
	}
	if _, err := KNNDelete(sv[:2], train, []int{0}, 2); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

// distGame is a game over clustered points where a probe point's presence
// shifts every other player's value by a linear function of distance —
// exactly the structure KNN+ fits.
type distGame struct {
	train *dataset.Dataset
}

func (g distGame) N() int { return g.train.Len() }

func (g distGame) Value(s bitset.Set) float64 {
	// Utility: Σ_{i∈S} base(i) − 0.02·Σ_{i<j∈S} max(0, 1 − dist(i,j)),
	// i.e. nearby points are partially redundant.
	members := s.Indices()
	v := 0.1 * float64(len(members))
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			d := dataset.Euclidean(g.train.Points[members[a]].X, g.train.Points[members[b]].X)
			if d < 1 {
				v -= 0.02 * (1 - d)
			}
		}
	}
	return v
}

func knnPlusFixture() (*dataset.Dataset, distGame) {
	r := rng.New(77)
	pts := make([]dataset.Point, 14)
	for i := range pts {
		pts[i] = dataset.Point{X: []float64{r.Float64() * 2, r.Float64() * 2}, Y: i % 2}
	}
	train := dataset.New(pts)
	return train, distGame{train: train}
}

func TestFitCurvesDetectsRedundancyDecay(t *testing.T) {
	train, g := knnPlusFixture()
	cfg := KNNPlusConfig{CurveSamples: 8, CurveTau: 400, Degree: 2}
	cm, err := FitCurves(g, train, cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Labels()) == 0 {
		t.Fatal("no curves fitted")
	}
	// In distGame a probe's presence REDUCES nearby players' values
	// (redundancy), with the effect decaying over distance: the curve at
	// distance 0.1 must be more negative than at distance 0.9.
	for _, l := range cm.Labels() {
		near := cm.Eval(l, 0.1)
		far := cm.Eval(l, 0.9)
		if near >= far {
			t.Fatalf("label %d: near effect %v not below far effect %v", l, near, far)
		}
		if near >= 0 {
			t.Fatalf("label %d: near effect %v should be negative", l, near)
		}
	}
	// Beyond the fitted range the polynomial must not extrapolate.
	if cm.Eval(cm.Labels()[0], 1e6) != 0 {
		t.Fatal("curve extrapolated beyond fitted range")
	}
	if cm.Eval(12345, 0.1) != 0 {
		t.Fatal("unseen label should predict 0")
	}
}

func TestKNNPlusAddImprovesOnKNNForShiftedValues(t *testing.T) {
	// Adding a point near existing ones should reduce their values in
	// distGame. KNN+ predicts that shift; KNN does not.
	train, g := knnPlusFixture()
	oldSV := Exact(g)
	added := []dataset.Point{{X: train.Points[0].X, Y: train.Points[0].Y}}
	cfg := KNNPlusConfig{CurveSamples: 10, CurveTau: 600, Degree: 2, K: 3}
	got, err := KNNPlusAdd(g, train, oldSV, added, nil, cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != train.Len()+1 {
		t.Fatalf("len = %d", len(got))
	}
	// Player 0 sits exactly at the added point: its value must drop.
	if got[0] >= oldSV[0] {
		t.Fatalf("duplicate addition did not reduce player 0's value: %v → %v", oldSV[0], got[0])
	}
}

func TestKNNPlusDeleteShiftsSurvivors(t *testing.T) {
	train, g := knnPlusFixture()
	oldSV := Exact(g)
	cfg := KNNPlusConfig{CurveSamples: 10, CurveTau: 600, Degree: 2, K: 3}
	got, err := KNNPlusDelete(g, train, oldSV, []int{0}, nil, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("deleted entry nonzero")
	}
	// Removing a point relieves redundancy: nearby survivors should gain.
	nearest := train.Nearest(train.Points[0].X, 3)
	gained := false
	for _, nb := range nearest {
		if nb != 0 && got[nb] > oldSV[nb] {
			gained = true
		}
	}
	if !gained {
		t.Fatal("no nearby survivor gained value after deletion")
	}
}

func TestKNNPlusReuseCurves(t *testing.T) {
	train, g := knnPlusFixture()
	oldSV := Exact(g)
	cfg := KNNPlusConfig{CurveSamples: 8, CurveTau: 400, Degree: 2, K: 3}
	cm, err := FitCurves(g, train, cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	added := []dataset.Point{{X: []float64{1, 1}, Y: 0}}
	a, err := KNNPlusAdd(g, train, oldSV, added, cm, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KNNPlusAdd(g, train, oldSV, added, cm, cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("reused curves should make KNN+ deterministic")
	}
}

func TestFitCurvesValidation(t *testing.T) {
	train, g := knnPlusFixture()
	small := dataset.New(train.Points[:2])
	if _, err := FitCurves(g, small, KNNPlusConfig{}, rng.New(7)); err == nil {
		t.Fatal("mismatched train size should fail")
	}
	if _, err := FitCurves(distGame{train: small}, small, KNNPlusConfig{}, rng.New(7)); err == nil {
		t.Fatal("too few players should fail")
	}
}

func TestKNNPlusValidation(t *testing.T) {
	train, g := knnPlusFixture()
	if _, err := KNNPlusAdd(g, train, make([]float64, 3), nil, nil, KNNPlusConfig{}, rng.New(8)); err == nil {
		t.Fatal("size mismatch should fail")
	}
	if _, err := KNNPlusDelete(g, train, make([]float64, train.Len()), []int{99}, nil, KNNPlusConfig{}, rng.New(8)); err == nil {
		t.Fatal("out-of-range deletion should fail")
	}
}
