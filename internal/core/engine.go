package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/semivalue"
)

// This file implements the shared permutation engine behind the sampled
// estimators and the YN-NN / YNN-NNN preprocessing fills.
//
// Two ideas, composable and both deterministic:
//
//   - Stripe parallelism. The preprocessing fills pay almost their entire
//     cost in O(n²) array updates per permutation over O(n³) memory. The
//     engine runs a single producer that samples permutations and computes
//     prefix utilities once (through prefixWalker, so incremental
//     evaluators and the utility cache stay single-goroutine), then fans
//     each chunk of (perm, utilities) out to accumulator workers. Worker w
//     owns the contiguous stripe lo ≤ i < hi of the arrays' first axis and
//     folds only rows in its stripe — no per-worker array clones (the
//     naive approach costs workers × n³ floats), no locks. Every array
//     entry (i, ·, ·) is written by exactly one worker, which processes
//     chunks in issue order and permutations in order within a chunk, so
//     each entry receives float additions in exactly the serial order: the
//     result is bit-identical to the serial fill for a fixed seed, at any
//     worker count.
//
//   - Adaptive early termination. Work is issued in chunks; between chunks
//     the engine checks an empirical-Bernstein bound over the per-player
//     contributions observed so far (producer-side, so the decision is
//     independent of the worker count) and stops as soon as every player's
//     estimate is certified within eps at confidence 1−delta, recording
//     the τ actually spent instead of always burning the full budget.
//
// See DESIGN.md §9 for the determinism contract and the bound's failure
// modes.

// defaultChunkSize is the permutation batch issued between stripe
// dispatches and adaptive-bound checks: large enough to amortise channel
// and barrier overhead, small enough that early termination overshoots the
// certified τ by at most one in-flight batch.
const defaultChunkSize = 64

// adaptiveMinTau is the fewest permutations accumulated before the engine
// trusts the empirical bound; variance estimates below this are too noisy
// to certify anything.
const adaptiveMinTau = 32

// Engine runs permutation-sampling passes with stripe-parallel array fills
// and optional adaptive early termination. The zero value is not usable;
// construct with NewEngine. An Engine is not safe for concurrent use: it
// records per-pass statistics, and its fills mutate the target stores.
type Engine struct {
	workers int
	chunk   int
	eps     float64
	delta   float64
	trunc   int

	// heads are the extra semivalue weightings every head-capable pass
	// folds alongside the Shapley estimate (WithSemivalues). They are pure
	// producer-side bookkeeping: no randomness consumed, no stripe-worker
	// involvement, so the Shapley output is bit-identical with or without
	// them. headBase feeds the differential passes (DeltaAdd/DeltaDelete/
	// BatchDeltaAdd: new = base + observed change); headVals holds the most
	// recent pass's per-head results.
	heads    []semivalue.Weighting
	headBase [][]float64
	headVals [][]float64

	// scratch caches the batched walks' reusable buffers across calls —
	// per-permutation perm/utility arrays, per-point accumulator matrices,
	// and the striped paths' chunk slots. The engine is single-writer (the
	// session serialises updates), so cached scratch is never shared
	// between concurrent passes; every buffer is resized on use and either
	// zeroed (accumulators) or fully overwritten before it is read. This
	// matters most under the write-coalescing pipeline, where every
	// admission window pays a batch walk: without the cache each window
	// re-allocates its whole O(k·n) scratch.
	scratch batchScratch

	stats EngineStats
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithWorkers sets the number of accumulator workers for striped fills
// (≤0 selects GOMAXPROCS). Fill results are bit-identical at every worker
// count — the producer consumes all randomness and each worker owns a
// disjoint stripe of the arrays — so this is purely a throughput knob.
func WithWorkers(k int) EngineOption { return func(e *Engine) { e.workers = k } }

// WithChunkSize sets how many permutations are issued between stripe
// dispatches and adaptive-bound checks (default 64). The issued τ under
// adaptive stopping is always a chunk multiple (or the full budget), so
// the chunk size decides where early termination can land.
func WithChunkSize(c int) EngineOption { return func(e *Engine) { e.chunk = c } }

// WithTargetError enables adaptive early termination: a pass stops at the
// first chunk boundary where an empirical-Bernstein bound certifies every
// player's estimate within eps at confidence 1−delta, instead of spending
// the full τ budget. Stats().Issued reports the τ actually used. It
// panics if eps ≤ 0 or delta lies outside (0, 1).
func WithTargetError(eps, delta float64) EngineOption {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic("core: WithTargetError needs eps > 0 and delta in (0, 1)")
	}
	return func(e *Engine) { e.eps, e.delta = eps, delta }
}

// WithTruncation enables stratified-truncated sampling (see ALGORITHMS.md
// and arXiv 2311.05346): every permutation walk stops after its first t
// positions, and walks are drawn in rotation blocks — each block shares
// one uniformly drawn base permutation, and walk s of the block rotates it
// by s·t positions, so every player lands inside the truncated window
// exactly once per block (when t divides n; nearly so otherwise). Each
// rotated permutation is itself uniformly distributed, so the sampled
// arrays stay unbiased for strata k ≤ t; strata k > t are never written
// and contribute zero, which is the documented truncation bias (small
// under diminishing returns). Cuts both utility evaluations and array
// updates per walk from O(n) and O(n²) to O(t) and O(t·n).
//
// t ≤ 0 disables truncation; t ≥ n is a no-op. Incompatible with kept
// permutations (InitOptions.KeepPerms) — truncated walks don't carry full
// prefix information.
func WithTruncation(t int) EngineOption { return func(e *Engine) { e.trunc = t } }

// WithSemivalues configures extra semivalue heads: every head-capable pass
// (Initialize, MonteCarlo, TruncatedMonteCarlo, DeltaAdd, DeltaDelete,
// BatchDeltaAdd, the preprocessing fills) prices each weighting from the
// same permutation walks and exposes the results through HeadValues.
// Shapley itself needs no head — it is the pass's native output; passing
// it anyway just prices it a second time through the weighted fold.
// Pivot-based passes (BatchAddSame) cannot carry heads: their suffix walks
// never observe the old players' marginals, and their LSV reuse recurrence
// is Shapley-specific — they leave HeadValues nil.
func WithSemivalues(ws ...semivalue.Weighting) EngineOption {
	return func(e *Engine) { e.heads = append([]semivalue.Weighting(nil), ws...) }
}

// NewEngine returns an Engine with the given options.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{chunk: defaultChunkSize}
	for _, o := range opts {
		o(e)
	}
	if e.chunk <= 0 {
		e.chunk = defaultChunkSize
	}
	return e
}

// EngineStats describes the engine's most recent pass.
type EngineStats struct {
	// Budget is the τ requested; Issued is the τ actually accumulated —
	// smaller than Budget when adaptive stopping fired.
	Budget, Issued int
	// Workers is the accumulator goroutine count the pass used (1 for
	// purely producer-side passes such as plain Monte Carlo estimation).
	Workers int
	// EarlyStop reports whether the adaptive bound ended the pass before
	// the budget; Bound is the certified half-width at the last check
	// (+Inf before enough samples, 0 when adaptive mode was off).
	EarlyStop bool
	Bound     float64
	// Truncation is the effective walk length of a stratified-truncated
	// pass (0 when truncation was off — walks covered all n positions).
	Truncation int
	// Updates counts array-fill updates performed and Seconds the wall
	// time of the pass, together giving the fill throughput.
	Updates int64
	Seconds float64
	// KernelBytes is the heap footprint of the utility's precomputed
	// distance kernel when the pass ran against one (0 otherwise). The
	// engine itself is game-agnostic; owners that pair it with a
	// kernel-backed utility — the session — fill this in when publishing,
	// so large-n runs can see the m×n matrix in their accounting.
	KernelBytes int64
}

// Throughput returns the fill rate in array updates per second (0 for
// passes without striped fills).
func (s EngineStats) Throughput() float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return float64(s.Updates) / s.Seconds
}

// Stats returns the statistics of the engine's most recent pass.
func (e *Engine) Stats() EngineStats { return e.stats }

// Heads returns the configured extra semivalue heads.
func (e *Engine) Heads() []semivalue.Weighting { return e.heads }

// SetHeadBase supplies the per-head values the next differential pass
// (DeltaAdd, DeltaDelete, BatchDeltaAdd) updates from, aligned with the
// configured heads. A nil base — or a pass over a game the base was not
// sized for — treats missing entries as zero. Full passes ignore it.
func (e *Engine) SetHeadBase(base [][]float64) { e.headBase = base }

// HeadValues returns the extra heads' values from the most recent pass,
// aligned with the configured heads, or nil when the pass carried none
// (no heads configured, or a head-incapable pass). The caller owns the
// returned slices; the next pass replaces them.
func (e *Engine) HeadValues() [][]float64 { return e.headVals }

func (e *Engine) adaptive() bool { return e.eps > 0 }

// effectiveWorkers resolves the worker option against the row count.
func (e *Engine) effectiveWorkers(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// stripeTarget is a structure whose per-permutation accumulation
// partitions by the first array axis (the player row). Both deletion
// stores implement it.
type stripeTarget interface {
	// newAux allocates one permutation's worth of producer-side metadata
	// (nil when the target needs none).
	newAux() []int
	// prepare fills aux for the permutation and returns how many array
	// updates the permutation costs, for throughput accounting. It runs
	// in the producer and consumes no randomness. Only the first walk
	// positions of the permutation will be accumulated.
	prepare(perm []int, aux []int, walk int) int64
	// accumulateStripe folds one permutation into rows lo ≤ i < hi.
	// utilities[pos] holds U({perm[0..pos]}) for pos < walk (entries past
	// walk are stale and must not be read); uEmpty is U(∅). Rows outside
	// [lo, hi) must not be touched, and neither may SV or τ — the
	// producer owns those.
	accumulateStripe(perm []int, utilities []float64, uEmpty float64, aux []int, lo, hi, walk int)
}

// walkLen resolves the engine's truncation against the player count: the
// number of leading permutation positions a pass walks and accumulates.
func (e *Engine) walkLen(n int) int {
	if e.trunc > 0 && e.trunc < n {
		return e.trunc
	}
	return n
}

// permSampler draws the pass's permutations. Untruncated it is exactly
// r.Perm — the historic randomness stream, bit-identical. Truncated it
// draws one uniform base permutation per rotation block and rotates it by
// walk positions between samples: each rotation of a uniform permutation
// is itself uniform (so every sample is an unbiased truncated walk), and
// across one block every player visits the truncated window once (when
// walk divides n), stratifying the positions players are observed at.
type permSampler struct {
	r     *rng.Source
	n     int
	walk  int
	block int // rotations per base permutation: ⌈n/walk⌉
	rot   int
	base  []int
}

func newPermSampler(r *rng.Source, n, walk int) *permSampler {
	s := &permSampler{r: r, n: n, walk: walk, block: 1}
	if walk < n {
		s.block = (n + walk - 1) / walk
		s.base = make([]int, n)
	}
	return s
}

func (s *permSampler) next(perm []int) {
	if s.block <= 1 {
		s.r.Perm(perm)
		return
	}
	if s.rot == 0 {
		s.r.Perm(s.base)
	}
	// rot < block = ⌈n/walk⌉ ⇒ off = rot·walk < n, so one wrap suffices.
	off := s.rot * s.walk
	for q := 0; q < s.n; q++ {
		j := q + off
		if j >= s.n {
			j -= s.n
		}
		perm[q] = s.base[j]
	}
	s.rot++
	if s.rot == s.block {
		s.rot = 0
	}
}

// fillRun describes one engine pass over sampled permutations.
type fillRun struct {
	g       game.Game
	tau     int
	r       *rng.Source
	targets []stripeTarget
	// perPerm runs in the producer after each permutation's utilities are
	// filled; it may consume randomness (it runs in sample order) and
	// owns all non-striped bookkeeping (Shapley sums, pivot LSV, kept
	// permutations). Only utilities[0:walk] are valid.
	perPerm func(perm []int, utilities []float64, uEmpty float64, walk int)
	// freshPerms allocates a new permutation slice per sample so perPerm
	// may retain it (KeepPerms); otherwise one buffer is reused.
	freshPerms bool
	// heads are the extra semivalue weightings this pass folds from the
	// same walks (producer-side, after perPerm, consuming no randomness).
	heads []semivalue.Weighting
}

// run executes the pass and returns the number of permutations issued.
// Callers guarantee n ≥ 1 and tau ≥ 1.
func (e *Engine) run(fr fillRun) int {
	n := fr.g.N()
	workers := 1
	if len(fr.targets) > 0 {
		workers = e.effectiveWorkers(n)
	}
	e.stats = EngineStats{Budget: fr.tau, Workers: workers}
	if e.walkLen(n) < n {
		e.stats.Truncation = e.walkLen(n)
	}

	w := newPrefixWalker(fr.g)
	uEmpty := fr.g.Value(bitset.New(n))
	var trk *adaptiveTracker
	if e.adaptive() {
		trk = newAdaptiveTracker(n, e.eps, e.delta)
	}
	// Extra semivalue heads fold in the producer after perPerm — behind
	// all randomness draws, outside all stripes — so they change neither
	// the random stream nor any Shapley-path arithmetic.
	hf := newHeadFold(fr.heads, n)
	e.headVals = nil

	start := time.Now()
	var issued int
	if workers == 1 {
		issued = e.runSerial(fr, w, uEmpty, trk, hf)
	} else {
		issued = e.runStriped(fr, w, uEmpty, trk, hf, workers)
	}
	e.stats.Seconds = time.Since(start).Seconds()
	e.stats.Issued = issued
	e.stats.EarlyStop = issued < fr.tau
	if trk != nil {
		e.stats.Bound = trk.lastBound
	}
	if hf != nil {
		e.headVals = hf.finish(issued)
	}
	return issued
}

// runSerial is the single-goroutine path: produce and accumulate inline.
// It performs exactly the accumulation sequence of the historic serial
// fills, so delegating the serial entry points here changes nothing.
func (e *Engine) runSerial(fr fillRun, w *prefixWalker, uEmpty float64, trk *adaptiveTracker, hf *headFold) int {
	n := fr.g.N()
	walk := e.walkLen(n)
	sampler := newPermSampler(fr.r, n, walk)
	perm := make([]int, n)
	utilities := make([]float64, n)
	auxes := make([][]int, len(fr.targets))
	for ti, t := range fr.targets {
		auxes[ti] = t.newAux()
	}
	issued := 0
	for issued < fr.tau {
		if fr.freshPerms {
			perm = make([]int, n)
		}
		sampler.next(perm)
		w.reset()
		for pos := 0; pos < walk; pos++ {
			utilities[pos] = w.add(perm[pos])
		}
		if fr.perPerm != nil {
			fr.perPerm(perm, utilities, uEmpty, walk)
		}
		if hf != nil {
			hf.foldWalk(perm, utilities, uEmpty, walk)
		}
		for ti, t := range fr.targets {
			e.stats.Updates += t.prepare(perm, auxes[ti], walk)
			t.accumulateStripe(perm, utilities, uEmpty, auxes[ti], 0, n, walk)
		}
		if trk != nil {
			trk.observeWalk(perm, utilities, uEmpty, walk)
		}
		issued++
		if trk != nil && issued%e.chunk == 0 && issued >= adaptiveMinTau &&
			issued < fr.tau && trk.met() {
			break
		}
	}
	return issued
}

// fillChunk is one batch of sampled permutations in flight between the
// producer and the stripe workers.
type fillChunk struct {
	count int
	perms [][]int
	utils [][]float64
	aux   [][][]int // [perm][target]
	wg    sync.WaitGroup
}

// runStriped is the parallel path: the producer fills double-buffered
// chunks and broadcasts each to every worker; worker w folds only its
// stripe. The producer overlaps sampling chunk c+1 with the accumulation
// of chunk c; the adaptive bound is producer-side, so the stop decision
// never waits on workers and is identical at every worker count.
func (e *Engine) runStriped(fr fillRun, w *prefixWalker, uEmpty float64, trk *adaptiveTracker, hf *headFold, workers int) int {
	n := fr.g.N()
	walk := e.walkLen(n)
	sampler := newPermSampler(fr.r, n, walk)
	const depth = 2
	slots := make([]*fillChunk, depth)
	for s := range slots {
		c := &fillChunk{
			perms: make([][]int, e.chunk),
			utils: make([][]float64, e.chunk),
			aux:   make([][][]int, e.chunk),
		}
		for p := 0; p < e.chunk; p++ {
			if !fr.freshPerms {
				c.perms[p] = make([]int, n)
			}
			c.utils[p] = make([]float64, n)
			c.aux[p] = make([][]int, len(fr.targets))
			for ti, t := range fr.targets {
				c.aux[p][ti] = t.newAux()
			}
		}
		slots[s] = c
	}

	chans := make([]chan *fillChunk, workers)
	var wwg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		chans[wk] = make(chan *fillChunk, depth)
		lo, hi := wk*n/workers, (wk+1)*n/workers
		wwg.Add(1)
		go func(lo, hi int, ch chan *fillChunk) {
			defer wwg.Done()
			for c := range ch {
				for p := 0; p < c.count; p++ {
					for ti, t := range fr.targets {
						t.accumulateStripe(c.perms[p], c.utils[p], uEmpty, c.aux[p][ti], lo, hi, walk)
					}
				}
				c.wg.Done()
			}
		}(lo, hi, chans[wk])
	}

	issued := 0
	for si := 0; issued < fr.tau; si++ {
		c := slots[si%depth]
		c.wg.Wait() // previous dispatch of this buffer fully drained
		count := e.chunk
		if rem := fr.tau - issued; rem < count {
			count = rem
		}
		c.count = count
		for p := 0; p < count; p++ {
			if fr.freshPerms {
				c.perms[p] = make([]int, n)
			}
			perm := c.perms[p]
			sampler.next(perm)
			w.reset()
			u := c.utils[p]
			for pos := 0; pos < walk; pos++ {
				u[pos] = w.add(perm[pos])
			}
			if fr.perPerm != nil {
				fr.perPerm(perm, u, uEmpty, walk)
			}
			if hf != nil {
				hf.foldWalk(perm, u, uEmpty, walk)
			}
			for ti, t := range fr.targets {
				e.stats.Updates += t.prepare(perm, c.aux[p][ti], walk)
			}
			if trk != nil {
				trk.observeWalk(perm, u, uEmpty, walk)
			}
		}
		c.wg.Add(workers)
		for _, ch := range chans {
			ch <- c
		}
		issued += count
		if trk != nil && issued%e.chunk == 0 && issued >= adaptiveMinTau &&
			issued < fr.tau && trk.met() {
			break
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wwg.Wait()
	return issued
}

// PreprocessDeletion is Algorithm 6 through the engine: the Monte Carlo
// fill of the YN-NN arrays with stripe-parallel accumulation and, when
// configured, adaptive early termination. Bit-identical to the serial
// PreprocessDeletion for a fixed seed at every worker count.
func (e *Engine) PreprocessDeletion(g game.Game, tau int, r *rng.Source) *DeletionStore {
	ds, _ := e.PreprocessDeletionWith(g, tau, r, StoreConfig{})
	return ds
}

// PreprocessDeletionWith is PreprocessDeletion with an explicit storage
// backend for the YN-NN arrays. Only the spill backend can fail.
func (e *Engine) PreprocessDeletionWith(g game.Game, tau int, r *rng.Source, cfg StoreConfig) (*DeletionStore, error) {
	n := g.N()
	ds, err := NewDeletionStoreWith(n, cfg)
	if err != nil {
		return nil, err
	}
	e.stats = EngineStats{Budget: tau}
	if n == 0 || tau <= 0 {
		return ds, nil
	}
	issued := e.run(fillRun{
		g: g, tau: tau, r: r,
		targets: []stripeTarget{ds},
		heads:   e.heads,
		// The producer owns the Shapley sums; the store's striped
		// accumulation covers only the arrays.
		perPerm: func(perm []int, utilities []float64, uEmpty float64, walk int) {
			accumulateMarginals(perm, utilities, uEmpty, ds.SV, walk)
		},
	})
	ds.tau = issued
	ds.finishSampled()
	return ds, nil
}

// PreprocessMultiDeletion is the YNN-NNN fill through the engine.
func (e *Engine) PreprocessMultiDeletion(g game.Game, d int, candidates []int, tau int, r *rng.Source) (*MultiDeletionStore, error) {
	return e.PreprocessMultiDeletionWith(g, d, candidates, tau, r, StoreConfig{})
}

// PreprocessMultiDeletionWith is PreprocessMultiDeletion with an explicit
// storage backend for the YNN-NNN arrays.
func (e *Engine) PreprocessMultiDeletionWith(g game.Game, d int, candidates []int, tau int, r *rng.Source, cfg StoreConfig) (*MultiDeletionStore, error) {
	n := g.N()
	ms, err := NewMultiDeletionStoreWith(n, d, candidates, cfg)
	if err != nil {
		return nil, err
	}
	e.stats = EngineStats{Budget: tau}
	if n == 0 || tau <= 0 {
		return ms, nil
	}
	issued := e.run(fillRun{
		g: g, tau: tau, r: r,
		targets: []stripeTarget{ms},
		heads:   e.heads,
		perPerm: func(perm []int, utilities []float64, uEmpty float64, walk int) {
			accumulateMarginals(perm, utilities, uEmpty, ms.SV, walk)
		},
	})
	ms.tau = issued
	ms.finishSampled()
	return ms, nil
}

// Initialize is the combined initialisation pass (Shapley estimates,
// pivot LSV, and any requested deletion stores) through the engine:
// identical sampling to the package-level Initialize, with the store
// fills striped across workers and optional adaptive early termination.
func (e *Engine) Initialize(g game.Game, tau int, opt InitOptions, r *rng.Source) (*InitResult, error) {
	n := g.N()
	if opt.KeepPerms && e.walkLen(n) < n {
		return nil, fmt.Errorf("core: truncation (t = %d) is incompatible with kept permutations — truncated walks carry no full prefix information", e.trunc)
	}
	res := &InitResult{
		Pivot: &PivotState{
			SV:  make([]float64, n),
			LSV: make([]float64, n),
			Tau: tau,
		},
	}
	if opt.KeepPerms {
		res.Pivot.perms = make([][]int, 0, tau)
		res.Pivot.slots = make([]int, 0, tau)
	}
	if opt.TrackDeletions {
		ds, err := NewDeletionStoreWith(n, opt.Store)
		if err != nil {
			return nil, err
		}
		res.Deletion = ds
	}
	if opt.MultiDelete >= 1 {
		ms, err := NewMultiDeletionStoreWith(n, opt.MultiDelete, opt.Candidates, opt.Store)
		if err != nil {
			return nil, err
		}
		res.Multi = ms
	}
	e.stats = EngineStats{Budget: tau}
	e.headVals = nil
	if n == 0 || tau <= 0 {
		return res, nil
	}

	var targets []stripeTarget
	if res.Deletion != nil {
		targets = append(targets, res.Deletion)
	}
	if res.Multi != nil {
		targets = append(targets, res.Multi)
	}
	heads := opt.Heads
	if heads == nil {
		heads = e.heads
	}
	st := res.Pivot
	issued := e.run(fillRun{
		g: g, tau: tau, r: r,
		targets:    targets,
		freshPerms: opt.KeepPerms,
		heads:      heads,
		perPerm: func(perm []int, utilities []float64, uEmpty float64, walk int) {
			// Same randomness order as the historic loop: the slot draw
			// follows the permutation draw (the walker consumes none).
			t := r.Intn(n + 1)
			prev := uEmpty
			for pos := 0; pos < walk; pos++ {
				p := perm[pos]
				cur := utilities[pos]
				m := cur - prev
				st.SV[p] += m
				if pos < t {
					st.LSV[p] += m
				}
				prev = cur
			}
			if opt.KeepPerms {
				st.perms = append(st.perms, perm)
				st.slots = append(st.slots, t)
			}
		},
	})
	st.Tau = issued
	res.HeadValues = e.headVals
	// The stores' SV sums equal the pivot's (same marginals, same order);
	// install them before the pivot divides, then let each store apply
	// its own historic normalisation (multiply by 1/τ).
	if res.Deletion != nil {
		copy(res.Deletion.SV, st.SV)
		res.Deletion.tau = issued
		res.Deletion.finishSampled()
	}
	if res.Multi != nil {
		copy(res.Multi.SV, st.SV)
		res.Multi.tau = issued
		res.Multi.finishSampled()
	}
	for i := 0; i < n; i++ {
		st.SV[i] /= float64(issued)
		st.LSV[i] /= float64(issued)
	}
	return res, nil
}

// MonteCarlo is Algorithm 1 through the engine: permutation sampling in
// chunks with optional adaptive early termination. With adaptive mode off
// it is bit-identical to the package-level MonteCarlo for the same seed.
func (e *Engine) MonteCarlo(g game.Game, tau int, r *rng.Source) []float64 {
	n := g.N()
	sv := make([]float64, n)
	e.stats = EngineStats{Budget: tau}
	if n == 0 || tau <= 0 {
		return sv
	}
	issued := e.run(fillRun{
		g: g, tau: tau, r: r,
		heads: e.heads,
		perPerm: func(perm []int, utilities []float64, uEmpty float64, walk int) {
			accumulateMarginals(perm, utilities, uEmpty, sv, walk)
		},
	})
	for i := range sv {
		sv[i] /= float64(issued)
	}
	return sv
}

// accumulateMarginals folds the first walk positions of one walked
// permutation's marginal contributions into sv.
func accumulateMarginals(perm []int, utilities []float64, uEmpty float64, sv []float64, walk int) {
	prev := uEmpty
	for pos := 0; pos < walk; pos++ {
		cur := utilities[pos]
		sv[perm[pos]] += cur - prev
		prev = cur
	}
}

// TruncatedMonteCarlo is TMC through the engine. Truncation skips the
// tail's utility evaluations, so this pass cannot share run()'s full-walk
// producer; the chunked adaptive loop is inlined instead. Truncated
// players observe a zero contribution — exactly what the estimator
// credits them. With adaptive mode off it is bit-identical to the
// package-level TruncatedMonteCarlo.
func (e *Engine) TruncatedMonteCarlo(g game.Game, tau int, tol float64, r *rng.Source) []float64 {
	n := g.N()
	sv := make([]float64, n)
	e.stats = EngineStats{Budget: tau, Workers: 1}
	e.headVals = nil
	if n == 0 || tau <= 0 {
		return sv
	}
	perm := make([]int, n)
	w := newPrefixWalker(g)
	empty := g.Value(bitset.New(n))
	full := g.Value(bitset.Full(n))
	minPos := (n + 1) / 2
	var trk *adaptiveTracker
	if e.adaptive() {
		trk = newAdaptiveTracker(n, e.eps, e.delta)
	}
	// Extra heads see the same truncation as the Shapley estimate: a
	// position past the cut is credited zero for every weighting.
	hf := newHeadFold(e.heads, n)
	start := time.Now()
	issued := 0
	for issued < tau {
		r.Perm(perm)
		w.reset()
		prev := empty
		for pos, p := range perm {
			if pos >= minPos && abs(full-prev) < tol {
				if trk != nil {
					for _, q := range perm[pos:] {
						trk.observe(q, 0)
					}
				}
				break
			}
			cur := w.add(p)
			sv[p] += cur - prev
			if hf != nil {
				hf.foldPos(pos, p, cur-prev)
			}
			if trk != nil {
				trk.observe(p, cur-prev)
			}
			prev = cur
		}
		if trk != nil {
			trk.endSample()
		}
		issued++
		if trk != nil && issued%e.chunk == 0 && issued >= adaptiveMinTau &&
			issued < tau && trk.met() {
			break
		}
	}
	e.stats.Seconds = time.Since(start).Seconds()
	e.stats.Issued = issued
	e.stats.EarlyStop = issued < tau
	if trk != nil {
		e.stats.Bound = trk.lastBound
	}
	if hf != nil {
		e.headVals = hf.finish(issued)
	}
	for i := range sv {
		sv[i] /= float64(issued)
	}
	return sv
}

// DeltaAdd is Algorithm 5 through the engine: differential marginal
// contributions sampled in chunks, stopping early when the bound
// certifies every player's CHANGE estimate within eps. With adaptive mode
// off it is bit-identical to the package-level DeltaAdd.
func (e *Engine) DeltaAdd(gPlus game.Game, oldSV []float64, tau int, r *rng.Source) ([]float64, error) {
	n := len(oldSV)
	if gPlus.N() != n+1 {
		return nil, fmt.Errorf("core: DeltaAdd game has %d players, want %d", gPlus.N(), n+1)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: DeltaAdd requires tau > 0, got %d", tau)
	}
	e.stats = EngineStats{Budget: tau, Workers: 1}
	e.headVals = nil
	pivot := n
	m := n + 1
	dsv := make([]float64, n)
	newSV := 0.0

	perm := make([]int, n)
	wNo := newPrefixWalker(gPlus)
	wWith := newPrefixWalker(gPlus)
	uEmpty := gPlus.Value(bitset.New(m))
	uPivot := gPlus.Value(bitset.FromIndices(m, pivot))
	var trk *adaptiveTracker
	if e.adaptive() {
		trk = newAdaptiveTracker(m, e.eps, e.delta)
	}
	// Extra heads ride the same differential walk: each head has its own
	// n → n+1 transition coefficients (semivalue.AddCoeffs) folded over the
	// pivot-free and pivot-included marginals already being computed.
	hs := newAddHeadSums(newAddHeadTables(e.heads, n), n)

	start := time.Now()
	issued := 0
	for issued < tau {
		r.Perm(perm)
		wNo.reset()
		wWith.reset()
		prevNo := uEmpty
		prevWith := wWith.seed(pivot, uPivot)
		d0 := prevWith - prevNo
		newSV += d0 // S=∅ stratum of the new point's value
		permNew := d0
		if hs != nil {
			hs.foldD0(d0)
		}
		for pos, p := range perm {
			curNo := wNo.add(p)
			curWith := wWith.add(p)
			dmc := (curWith - curNo) - (prevWith - prevNo)
			x := dmc * float64(pos+1) / float64(n+1)
			dsv[p] += x
			if trk != nil {
				trk.observe(p, x)
			}
			dd := curWith - curNo
			newSV += dd
			permNew += dd
			if hs != nil {
				hs.foldPos(pos, p, curNo-prevNo, curWith-prevWith, dd)
			}
			prevNo, prevWith = curNo, curWith
		}
		if trk != nil {
			// One observation per permutation whose mean is the new
			// point's value: the stratified sum scaled by 1/(n+1).
			trk.observe(pivot, permNew/float64(n+1))
			trk.endSample()
		}
		issued++
		if trk != nil && issued%e.chunk == 0 && issued >= adaptiveMinTau &&
			issued < tau && trk.met() {
			break
		}
	}
	e.stats.Seconds = time.Since(start).Seconds()
	e.stats.Issued = issued
	e.stats.EarlyStop = issued < tau
	if trk != nil {
		e.stats.Bound = trk.lastBound
	}

	if hs != nil {
		e.headVals = hs.finishAdd(e.headBase, issued)
	}
	out := make([]float64, m)
	for i := 0; i < n; i++ {
		out[i] = oldSV[i] + dsv[i]/float64(issued)
	}
	out[pivot] = newSV / float64(issued) / float64(n+1)
	return out, nil
}

// DeltaDelete is Algorithm 8 through the engine, with chunked adaptive
// early termination. With adaptive mode off it is bit-identical to the
// package-level DeltaDelete.
func (e *Engine) DeltaDelete(g game.Game, oldSV []float64, p, tau int, r *rng.Source) ([]float64, error) {
	n := g.N()
	if len(oldSV) != n {
		return nil, fmt.Errorf("core: DeltaDelete oldSV has %d entries, want %d", len(oldSV), n)
	}
	if p < 0 || p >= n {
		return nil, fmt.Errorf("core: DeltaDelete point %d out of range [0,%d)", p, n)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: DeltaDelete requires tau > 0, got %d", tau)
	}
	e.stats = EngineStats{Budget: tau, Workers: 1}
	e.headVals = nil
	if n == 1 {
		if len(e.heads) > 0 {
			e.headVals = make([][]float64, len(e.heads))
			for h := range e.headVals {
				e.headVals[h] = make([]float64, 1)
			}
		}
		return []float64{0}, nil
	}
	survivors := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != p {
			survivors = append(survivors, i)
		}
	}
	dsv := make([]float64, n)
	perm := make([]int, n-1)
	wNo := newPrefixWalker(g)
	wWith := newPrefixWalker(g)
	uEmpty := g.Value(bitset.New(n))
	uP := g.Value(bitset.FromIndices(n, p))
	var trk *adaptiveTracker
	if e.adaptive() {
		trk = newAdaptiveTracker(n, e.eps, e.delta)
	}
	// Extra heads ride the same differential walk with their own n → n−1
	// transition coefficients (semivalue.DeleteCoeffs).
	hf := newDelHeadFold(e.heads, n)

	start := time.Now()
	issued := 0
	for issued < tau {
		r.Perm(perm)
		wNo.reset()
		wWith.reset()
		prevNo := uEmpty
		prevWith := wWith.seed(p, uP)
		for pos, idx := range perm {
			q := survivors[idx]
			curNo := wNo.add(q)
			curWith := wWith.add(q)
			dmc := (curWith - curNo) - (prevWith - prevNo)
			x := dmc * float64(pos+1) / float64(n)
			dsv[q] -= x
			if trk != nil {
				trk.observe(q, -x)
			}
			if hf != nil {
				hf.foldPos(pos, q, curNo-prevNo, curWith-prevWith)
			}
			prevNo, prevWith = curNo, curWith
		}
		if trk != nil {
			trk.endSample()
		}
		issued++
		if trk != nil && issued%e.chunk == 0 && issued >= adaptiveMinTau &&
			issued < tau && trk.met() {
			break
		}
	}
	e.stats.Seconds = time.Since(start).Seconds()
	e.stats.Issued = issued
	e.stats.EarlyStop = issued < tau
	if trk != nil {
		e.stats.Bound = trk.lastBound
	}

	if hf != nil {
		e.headVals = hf.finishDelete(e.headBase, p, issued)
	}
	out := make([]float64, n)
	for _, q := range survivors {
		out[q] = oldSV[q] + dsv[q]/float64(issued)
	}
	return out, nil
}

// adaptiveTracker maintains the per-player moments behind the stopping
// rule. One observation per player per sample (a per-permutation marginal
// or differential contribution); the half-width certified for player i
// after t samples is the Maurer–Pontil empirical-Bernstein bound
//
//	h_i = sqrt(2·V_i·L/t) + 3·R_i·L/t,  L = ln(3n/δ),
//
// with V_i the empirical variance, R_i the OBSERVED range standing in for
// the true range (the documented approximation: a later sample landing
// outside the range seen so far voids the certificate — DESIGN.md §9),
// and the union bound over the n players folded into L.
type adaptiveTracker struct {
	eps, delta float64
	n          int
	t          int
	sum        []float64
	sumsq      []float64
	min, max   []float64
	lastBound  float64
}

func newAdaptiveTracker(n int, eps, delta float64) *adaptiveTracker {
	a := &adaptiveTracker{
		eps: eps, delta: delta, n: n,
		sum:       make([]float64, n),
		sumsq:     make([]float64, n),
		min:       make([]float64, n),
		max:       make([]float64, n),
		lastBound: math.Inf(1),
	}
	for i := 0; i < n; i++ {
		a.min[i] = math.Inf(1)
		a.max[i] = math.Inf(-1)
	}
	return a
}

// observe records one observation for player i.
func (a *adaptiveTracker) observe(i int, x float64) {
	a.sum[i] += x
	a.sumsq[i] += x * x
	if x < a.min[i] {
		a.min[i] = x
	}
	if x > a.max[i] {
		a.max[i] = x
	}
}

// observeWalk records the walked players' marginals from one (possibly
// truncated) permutation and closes the sample.
func (a *adaptiveTracker) observeWalk(perm []int, utilities []float64, uEmpty float64, walk int) {
	prev := uEmpty
	for pos := 0; pos < walk; pos++ {
		cur := utilities[pos]
		a.observe(perm[pos], cur-prev)
		prev = cur
	}
	a.t++
}

// endSample closes one sample for trackers fed via observe.
func (a *adaptiveTracker) endSample() { a.t++ }

// bound returns the widest per-player half-width certified so far.
func (a *adaptiveTracker) bound() float64 {
	if a.t < 2 {
		return math.Inf(1)
	}
	t := float64(a.t)
	l := math.Log(3 * float64(a.n) / a.delta)
	worst := 0.0
	for i := 0; i < a.n; i++ {
		v := (a.sumsq[i] - a.sum[i]*a.sum[i]/t) / (t - 1)
		if v < 0 {
			v = 0 // guard FP cancellation
		}
		r := a.max[i] - a.min[i]
		if r < 0 {
			r = 0 // player never observed (e.g. the deleted point)
		}
		h := math.Sqrt(2*v*l/t) + 3*r*l/t
		if h > worst {
			worst = h
		}
	}
	return worst
}

// met reports whether the bound satisfies the target, caching the value
// for the pass's stats.
func (a *adaptiveTracker) met() bool {
	a.lastBound = a.bound()
	return a.lastBound <= a.eps
}
