package core

import (
	"fmt"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// This file defines the batched update walk's SEQUENTIAL reference
// implementations: the per-point loops the engine's batched passes
// (engine_batch.go) must reproduce bit for bit. The batched forms change
// only the loop order and the sharing of prefix state — never the set of
// coalitions evaluated for a given (perm, point) pair, the order in which
// any single accumulator receives floating-point additions, or the order
// in which any single RNG source is consumed — which is the whole
// determinism argument, so the references stay in the repository as the
// equality tests' ground truth rather than as scaffolding.

// checkBatchAdd validates the common preconditions of the batched addition
// walks: gPlus is the (n+k)-player updated game whose LAST k players are
// the pending points, in arrival order.
func checkBatchAdd(gPlus game.Game, n, k int) error {
	if k < 1 {
		return fmt.Errorf("core: batch add requires k ≥ 1 pending points, got %d", k)
	}
	if gPlus.N() != n+k {
		return fmt.Errorf("core: batch add game has %d players, want %d", gPlus.N(), n+k)
	}
	return nil
}

// BatchDeltaAddSeq is the sequential reference for the batched delta
// addition: k independent Algorithm-5 estimates against the FIXED n-player
// base, sharing one permutation stream. The permutations are pre-drawn
// exactly as the batched walk draws them (PermN consumes the same values
// Perm does), then each pending point j = 0..k−1 runs the full DeltaAdd
// two-walker pass over all of them and folds its contribution into the
// output in arrival order.
//
// Note what this estimator is NOT: the session's historic per-point loop
// re-bases after every insertion (point j is valued against a game already
// containing points 0..j−1, and later deltas adjust the earlier arrivals'
// fresh values). The batch form values every pending point against the
// shared pre-batch base — that is what lets one permutation pass serve all
// k points. At k = 1 the two notions coincide and this function is
// bit-identical to DeltaAdd.
func BatchDeltaAddSeq(gPlus game.Game, oldSV []float64, k, tau int, r *rng.Source) ([]float64, error) {
	n := len(oldSV)
	if err := checkBatchAdd(gPlus, n, k); err != nil {
		return nil, err
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: BatchDeltaAddSeq requires tau > 0, got %d", tau)
	}
	m := n + k
	perms := make([][]int, tau)
	for t := range perms {
		perms[t] = r.PermN(n)
	}
	uEmpty := gPlus.Value(bitset.New(m))

	out := make([]float64, m)
	copy(out, oldSV)
	wNo := newPrefixWalker(gPlus)
	wWith := newPrefixWalker(gPlus)
	for j := 0; j < k; j++ {
		pivot := n + j
		uPivot := gPlus.Value(bitset.FromIndices(m, pivot))
		dsv := make([]float64, n)
		newSV := 0.0
		for _, perm := range perms {
			wNo.reset()
			wWith.reset()
			prevNo := uEmpty
			prevWith := wWith.seed(pivot, uPivot)
			newSV += prevWith - prevNo // S=∅ stratum, as in DeltaAdd
			for pos, p := range perm {
				curNo := wNo.add(p)
				curWith := wWith.add(p)
				dmc := (curWith - curNo) - (prevWith - prevNo)
				dsv[p] += dmc * float64(pos+1) / float64(n+1)
				newSV += curWith - curNo
				prevNo, prevWith = curNo, curWith
			}
		}
		for i := 0; i < n; i++ {
			out[i] += dsv[i] / float64(tau)
		}
		out[pivot] = newSV / float64(tau) / float64(n+1)
	}
	return out, nil
}

// checkBatchDelete validates the departing points of a batched deletion
// against an n-player pre-batch game: at least one point, all indices in
// range, no duplicates. Points are given in arrival order (the order the
// caller wants their per-point deltas folded), not necessarily sorted.
func checkBatchDelete(n int, points []int) error {
	if len(points) < 1 {
		return fmt.Errorf("core: batch delete requires k ≥ 1 departing points, got 0")
	}
	if len(points) > n {
		return fmt.Errorf("core: batch delete of %d points from %d players", len(points), n)
	}
	seen := bitset.New(n)
	for _, p := range points {
		if p < 0 || p >= n {
			return fmt.Errorf("core: batch delete point %d out of range [0,%d)", p, n)
		}
		if seen.Contains(p) {
			return fmt.Errorf("core: batch delete point %d listed twice", p)
		}
		seen.Add(p)
	}
	return nil
}

// BatchDeltaDeleteSeq is the sequential reference for the batched delta
// deletion: k independent Algorithm-8 estimates against the FIXED n-player
// pre-batch game, sharing one permutation stream drawn over the COMMON
// survivors (the n−k players departing in no removal). The permutations
// are pre-drawn exactly as the batched walk draws them, then each
// departing point j runs the full DeltaDelete two-walker pass over all of
// them and folds its (negated) contribution into the output in arrival
// order. Removed players report 0 (the paper's convention).
//
// As with BatchDeltaAddSeq, this is a different estimator from the
// session's historic per-point loop — which re-bases after every removal,
// shrinking the survivor pool one step at a time — but both are unbiased
// for the same target, and at k = 1 the two notions coincide: this
// function is then bit-identical to DeltaDelete, RNG consumption included.
func BatchDeltaDeleteSeq(g game.Game, oldSV []float64, points []int, tau int, r *rng.Source) ([]float64, error) {
	n := g.N()
	if len(oldSV) != n {
		return nil, fmt.Errorf("core: BatchDeltaDeleteSeq oldSV has %d entries, want %d", len(oldSV), n)
	}
	if err := checkBatchDelete(n, points); err != nil {
		return nil, err
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: BatchDeltaDeleteSeq requires tau > 0, got %d", tau)
	}
	k := len(points)
	out := make([]float64, n)
	if k == n {
		// Every player leaves: nothing survives to estimate, consume no
		// randomness (DeltaDelete's n == 1 convention, generalised).
		return out, nil
	}
	survivors := batchSurvivors(n, points)
	c := n - k
	perms := make([][]int, tau)
	for t := range perms {
		perms[t] = r.PermN(c)
	}
	uEmpty := g.Value(bitset.New(n))
	for _, q := range survivors {
		out[q] = oldSV[q]
	}
	wNo := newPrefixWalker(g)
	wWith := newPrefixWalker(g)
	for _, p := range points {
		uP := g.Value(bitset.FromIndices(n, p))
		dsv := make([]float64, n)
		for _, perm := range perms {
			wNo.reset()
			wWith.reset()
			prevNo := uEmpty
			prevWith := wWith.seed(p, uP)
			for pos, idx := range perm {
				q := survivors[idx]
				curNo := wNo.add(q)
				curWith := wWith.add(q)
				dmc := (curWith - curNo) - (prevWith - prevNo)
				// Stratified weight (|S|+1)/(c+1) over the common-survivor
				// game; at k = 1, c+1 = n — DeltaDelete's weight exactly.
				dsv[q] -= dmc * float64(pos+1) / float64(c+1)
				prevNo, prevWith = curNo, curWith
			}
		}
		for _, q := range survivors {
			out[q] += dsv[q] / float64(tau)
		}
	}
	return out, nil
}

// batchSurvivors returns the ascending indices of the players departing in
// no removal of the batch.
func batchSurvivors(n int, points []int) []int {
	gone := bitset.New(n)
	for _, p := range points {
		gone.Add(p)
	}
	survivors := make([]int, 0, n-len(points))
	for i := 0; i < n; i++ {
		if !gone.Contains(i) {
			survivors = append(survivors, i)
		}
	}
	return survivors
}

// BatchDeleteSameSeq is the sequential reference for the batched pivot
// deletion: k successive DeleteSame calls, each against the restriction of
// the n-player pre-batch game g to the players still present (dropping the
// removed points renumbers the rest by order-preserving compaction — the
// exact renumbering DeleteSame applies to the stored permutations). points
// are original n-player indices in arrival order; the per-step index is
// translated through the earlier removals. DeleteSame consumes no
// randomness, so the reference takes no RNG sources.
func BatchDeleteSameSeq(st *PivotState, g game.Game, points []int) ([]float64, error) {
	if st.perms == nil {
		return nil, ErrNoPermutations
	}
	n := st.N()
	if g.N() != n {
		return nil, fmt.Errorf("core: BatchDeleteSameSeq game has %d players, want %d", g.N(), n)
	}
	if err := checkBatchDelete(n, points); err != nil {
		return nil, err
	}
	if len(points) >= n {
		return nil, fmt.Errorf("core: BatchDeleteSameSeq would remove every player")
	}
	var sv []float64
	for j := range points {
		gj := game.NewRestrict(g, points[:j+1]...)
		pj := points[j]
		for _, d := range points[:j] {
			if d < points[j] {
				pj--
			}
		}
		var err error
		sv, err = st.DeleteSame(gj, pj)
		if err != nil {
			return nil, err
		}
	}
	return sv, nil
}

// BatchAddSameSeq is the sequential reference for the batched Pivot-s
// walk: k successive AddSame calls, each against the restriction of gPlus
// to the players inserted so far (dropping the tail pivots keeps indices
// 0..n+j unchanged, so step j sees exactly the (n+j+1)-player game the
// session's per-point loop would build). rs supplies one RNG source per
// pending point, in arrival order — the batched walk consumes the same
// sources in the same per-source order, which is what keeps the two forms
// bit-identical.
func BatchAddSameSeq(st *PivotState, gPlus game.Game, k int, rs []*rng.Source) ([]float64, error) {
	if st.perms == nil {
		return nil, ErrNoPermutations
	}
	n := st.N()
	if err := checkBatchAdd(gPlus, n, k); err != nil {
		return nil, err
	}
	if len(rs) != k {
		return nil, fmt.Errorf("core: BatchAddSameSeq got %d RNG sources for %d points", len(rs), k)
	}
	var sv []float64
	for j := 0; j < k; j++ {
		gj := game.Game(gPlus)
		if j < k-1 {
			tail := make([]int, 0, k-1-j)
			for t := n + j + 1; t < n+k; t++ {
				tail = append(tail, t)
			}
			gj = game.NewRestrict(gPlus, tail...)
		}
		var err error
		sv, err = st.AddSame(gj, rs[j])
		if err != nil {
			return nil, err
		}
	}
	return sv, nil
}
