package core

import (
	"fmt"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// This file defines the batched update walk's SEQUENTIAL reference
// implementations: the per-point loops the engine's batched passes
// (engine_batch.go) must reproduce bit for bit. The batched forms change
// only the loop order and the sharing of prefix state — never the set of
// coalitions evaluated for a given (perm, point) pair, the order in which
// any single accumulator receives floating-point additions, or the order
// in which any single RNG source is consumed — which is the whole
// determinism argument, so the references stay in the repository as the
// equality tests' ground truth rather than as scaffolding.

// checkBatchAdd validates the common preconditions of the batched addition
// walks: gPlus is the (n+k)-player updated game whose LAST k players are
// the pending points, in arrival order.
func checkBatchAdd(gPlus game.Game, n, k int) error {
	if k < 1 {
		return fmt.Errorf("core: batch add requires k ≥ 1 pending points, got %d", k)
	}
	if gPlus.N() != n+k {
		return fmt.Errorf("core: batch add game has %d players, want %d", gPlus.N(), n+k)
	}
	return nil
}

// BatchDeltaAddSeq is the sequential reference for the batched delta
// addition: k independent Algorithm-5 estimates against the FIXED n-player
// base, sharing one permutation stream. The permutations are pre-drawn
// exactly as the batched walk draws them (PermN consumes the same values
// Perm does), then each pending point j = 0..k−1 runs the full DeltaAdd
// two-walker pass over all of them and folds its contribution into the
// output in arrival order.
//
// Note what this estimator is NOT: the session's historic per-point loop
// re-bases after every insertion (point j is valued against a game already
// containing points 0..j−1, and later deltas adjust the earlier arrivals'
// fresh values). The batch form values every pending point against the
// shared pre-batch base — that is what lets one permutation pass serve all
// k points. At k = 1 the two notions coincide and this function is
// bit-identical to DeltaAdd.
func BatchDeltaAddSeq(gPlus game.Game, oldSV []float64, k, tau int, r *rng.Source) ([]float64, error) {
	n := len(oldSV)
	if err := checkBatchAdd(gPlus, n, k); err != nil {
		return nil, err
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: BatchDeltaAddSeq requires tau > 0, got %d", tau)
	}
	m := n + k
	perms := make([][]int, tau)
	for t := range perms {
		perms[t] = r.PermN(n)
	}
	uEmpty := gPlus.Value(bitset.New(m))

	out := make([]float64, m)
	copy(out, oldSV)
	wNo := newPrefixWalker(gPlus)
	wWith := newPrefixWalker(gPlus)
	for j := 0; j < k; j++ {
		pivot := n + j
		uPivot := gPlus.Value(bitset.FromIndices(m, pivot))
		dsv := make([]float64, n)
		newSV := 0.0
		for _, perm := range perms {
			wNo.reset()
			wWith.reset()
			prevNo := uEmpty
			prevWith := wWith.seed(pivot, uPivot)
			newSV += prevWith - prevNo // S=∅ stratum, as in DeltaAdd
			for pos, p := range perm {
				curNo := wNo.add(p)
				curWith := wWith.add(p)
				dmc := (curWith - curNo) - (prevWith - prevNo)
				dsv[p] += dmc * float64(pos+1) / float64(n+1)
				newSV += curWith - curNo
				prevNo, prevWith = curNo, curWith
			}
		}
		for i := 0; i < n; i++ {
			out[i] += dsv[i] / float64(tau)
		}
		out[pivot] = newSV / float64(tau) / float64(n+1)
	}
	return out, nil
}

// BatchAddSameSeq is the sequential reference for the batched Pivot-s
// walk: k successive AddSame calls, each against the restriction of gPlus
// to the players inserted so far (dropping the tail pivots keeps indices
// 0..n+j unchanged, so step j sees exactly the (n+j+1)-player game the
// session's per-point loop would build). rs supplies one RNG source per
// pending point, in arrival order — the batched walk consumes the same
// sources in the same per-source order, which is what keeps the two forms
// bit-identical.
func BatchAddSameSeq(st *PivotState, gPlus game.Game, k int, rs []*rng.Source) ([]float64, error) {
	if st.perms == nil {
		return nil, ErrNoPermutations
	}
	n := st.N()
	if err := checkBatchAdd(gPlus, n, k); err != nil {
		return nil, err
	}
	if len(rs) != k {
		return nil, fmt.Errorf("core: BatchAddSameSeq got %d RNG sources for %d points", len(rs), k)
	}
	var sv []float64
	for j := 0; j < k; j++ {
		gj := game.Game(gPlus)
		if j < k-1 {
			tail := make([]int, 0, k-1-j)
			for t := n + j + 1; t < n+k; t++ {
				tail = append(tail, t)
			}
			gj = game.NewRestrict(gPlus, tail...)
		}
		var err error
		sv, err = st.AddSame(gj, rs[j])
		if err != nil {
			return nil, err
		}
	}
	return sv, nil
}
