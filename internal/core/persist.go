package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// The maintained structures are expensive to rebuild — a preprocessing pass
// costs τ·n model trainings — so brokers persist them across restarts.
// Encoding is gob with versioned wire structs; all entry points validate
// invariants on load so a corrupted file fails loudly rather than producing
// silently wrong valuations.

const wireVersion = 1

type pivotWire struct {
	Version int
	SV, LSV []float64
	Tau     int
	Perms   [][]int
	Slots   []int
}

// Encode serialises the pivot state (including stored permutations, when
// present).
func (st *PivotState) Encode(w io.Writer) error {
	wire := pivotWire{
		Version: wireVersion,
		SV:      st.SV,
		LSV:     st.LSV,
		Tau:     st.Tau,
		Perms:   st.perms,
		Slots:   st.slots,
	}
	if err := gob.NewEncoder(w).Encode(&wire); err != nil {
		return fmt.Errorf("core: encoding pivot state: %w", err)
	}
	return nil
}

// ReadPivotState deserialises a pivot state written by Encode.
func ReadPivotState(r io.Reader) (*PivotState, error) {
	var wire pivotWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding pivot state: %w", err)
	}
	if wire.Version != wireVersion {
		return nil, fmt.Errorf("core: unsupported pivot state version %d", wire.Version)
	}
	if len(wire.SV) != len(wire.LSV) {
		return nil, fmt.Errorf("core: pivot state SV/LSV length mismatch (%d vs %d)", len(wire.SV), len(wire.LSV))
	}
	if wire.Perms != nil {
		if len(wire.Perms) != len(wire.Slots) {
			return nil, fmt.Errorf("core: pivot state perms/slots length mismatch")
		}
		n := len(wire.SV)
		for i, p := range wire.Perms {
			if len(p) != n {
				return nil, fmt.Errorf("core: pivot state permutation %d has %d entries, want %d", i, len(p), n)
			}
		}
	}
	return &PivotState{
		SV:    wire.SV,
		LSV:   wire.LSV,
		Tau:   wire.Tau,
		perms: wire.Perms,
		slots: wire.Slots,
	}, nil
}

type deletionWire struct {
	Version int
	N       int
	Tau     int
	Exact   bool
	// Backend names the storage backend the store was using (empty in
	// pre-backend files, which decode as dense — gob tolerates the added
	// field in both directions).
	Backend string
	SV      []float64
	YN, NN  []float64
}

// Encode serialises the YN-NN arrays. Size on disk is ~16·n³ bytes —
// 16 MB at n = 100, matching the in-memory footprint of Table IX. The
// arrays always travel as float64 regardless of backend; the backend kind
// is recorded so loading restores the same storage class.
func (ds *DeletionStore) Encode(w io.Writer) error {
	wire := deletionWire{
		Version: wireVersion,
		N:       ds.n,
		Tau:     ds.tau,
		Exact:   ds.exact,
		Backend: ds.Backend().String(),
		SV:      ds.SV,
		YN:      ds.yn,
		NN:      ds.nn,
	}
	if ds.yn == nil {
		wire.YN = ds.ynB.export()
		wire.NN = ds.nnB.export()
	}
	if err := gob.NewEncoder(w).Encode(&wire); err != nil {
		return fmt.Errorf("core: encoding deletion store: %w", err)
	}
	return nil
}

// ReadDeletionStore deserialises a store written by Encode. Dense stores
// adopt the decoded arrays directly (the historic zero-copy path); float32
// backends are rebuilt and reloaded. A spill store loads as the in-memory
// tiled float32 backend — the scratch file is process-private and gone,
// and the caller (the session) re-spills on its next rebuild if configured
// to.
func ReadDeletionStore(r io.Reader) (*DeletionStore, error) {
	var wire deletionWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding deletion store: %w", err)
	}
	if wire.Version != wireVersion {
		return nil, fmt.Errorf("core: unsupported deletion store version %d", wire.Version)
	}
	n := wire.N
	want := n * n * (n + 1)
	if n < 0 || len(wire.YN) != want || len(wire.NN) != want || len(wire.SV) != n {
		return nil, fmt.Errorf("core: deletion store dimensions corrupt (n=%d, yn=%d, nn=%d, sv=%d)",
			n, len(wire.YN), len(wire.NN), len(wire.SV))
	}
	kind, err := ParseBackendKind(wire.Backend)
	if err != nil {
		return nil, err
	}
	ds := &DeletionStore{
		SV:    wire.SV,
		n:     n,
		tau:   wire.Tau,
		exact: wire.Exact,
	}
	if kind == BackendDense64 {
		ds.ynB = &dense64{v: wire.YN}
		ds.nnB = &dense64{v: wire.NN}
		ds.yn, ds.nn = wire.YN, wire.NN
		return ds, nil
	}
	ds.store = StoreConfig{Kind: BackendTiled32}
	ds.ynB = newTiled32(want, n*(n+1))
	ds.nnB = newTiled32(want, n*(n+1))
	ds.ynB.load(wire.YN)
	ds.nnB.load(wire.NN)
	return ds, nil
}

type multiDeletionWire struct {
	Version    int
	N, D, Tau  int
	Exact      bool
	Backend    string
	Candidates []int
	SV         []float64
	Y, NN      []float64
}

// Encode serialises the YNN-NNN arrays (always as float64; the backend
// kind travels alongside, as in the YN-NN wire format).
func (ms *MultiDeletionStore) Encode(w io.Writer) error {
	wire := multiDeletionWire{
		Version:    wireVersion,
		N:          ms.n,
		D:          ms.d,
		Tau:        ms.tau,
		Exact:      ms.exact,
		Backend:    ms.Backend().String(),
		Candidates: ms.candidates,
		SV:         ms.SV,
		Y:          ms.y,
		NN:         ms.nn,
	}
	if ms.y == nil {
		wire.Y = ms.yB.export()
		wire.NN = ms.nnB.export()
	}
	if err := gob.NewEncoder(w).Encode(&wire); err != nil {
		return fmt.Errorf("core: encoding multi-deletion store: %w", err)
	}
	return nil
}

// ReadMultiDeletionStore deserialises a store written by Encode. The tuple
// index is rebuilt from the candidate set, so only the raw arrays travel.
// Spill stores load as in-memory tiled float32 (see ReadDeletionStore).
func ReadMultiDeletionStore(r io.Reader) (*MultiDeletionStore, error) {
	var wire multiDeletionWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding multi-deletion store: %w", err)
	}
	if wire.Version != wireVersion {
		return nil, fmt.Errorf("core: unsupported multi-deletion store version %d", wire.Version)
	}
	kind, err := ParseBackendKind(wire.Backend)
	if err != nil {
		return nil, err
	}
	cfg := StoreConfig{}
	if kind != BackendDense64 {
		cfg.Kind = BackendTiled32
	}
	ms, err := NewMultiDeletionStoreWith(wire.N, wire.D, wire.Candidates, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding multi-deletion store: %w", err)
	}
	want := wire.N * len(ms.tuples) * (wire.N + 1)
	if len(wire.Y) != want || len(wire.NN) != want || len(wire.SV) != wire.N {
		return nil, fmt.Errorf("core: multi-deletion store dimensions corrupt")
	}
	if ms.y != nil {
		// Dense: adopt the decoded arrays directly (historic zero-copy path).
		ms.yB = &dense64{v: wire.Y}
		ms.nnB = &dense64{v: wire.NN}
		ms.y, ms.nn = wire.Y, wire.NN
	} else {
		ms.yB.load(wire.Y)
		ms.nnB.load(wire.NN)
	}
	ms.SV = wire.SV
	ms.tau = wire.Tau
	ms.exact = wire.Exact
	return ms, nil
}
