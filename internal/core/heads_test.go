package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/semivalue"
)

// fourHeads is the canonical multi-head configuration the issue names:
// Shapley, Banzhaf, a Beta weighting and Absolute Shapley priced from one
// pass.
func fourHeads() []semivalue.Weighting {
	return []semivalue.Weighting{
		semivalue.Shapley(),
		semivalue.Banzhaf(),
		semivalue.Beta(4, 1),
		semivalue.AbsoluteShapley(),
	}
}

// exactHeads tabulates exact values for every head of ws.
func exactHeads(g game.Game, ws []semivalue.Weighting) [][]float64 {
	return ExactSemivalues(g, ws)
}

func bitEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d differs: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// ExactSemivalues must agree with an independent brute-force evaluation of
// the semivalue definition (direct subset enumeration with coefficients
// from a separately computed binomial table).
func TestExactSemivaluesDefinition(t *testing.T) {
	g := tableGame{n: 7, seed: 77}
	n := g.N()
	// Independent binomial table.
	choose := make([][]float64, n+1)
	for i := range choose {
		choose[i] = make([]float64, n+1)
		choose[i][0] = 1
		for j := 1; j <= i; j++ {
			choose[i][j] = choose[i-1][j-1] + choose[i-1][j]
		}
	}
	size := 1 << uint(n)
	util := make([]float64, size)
	s := bitset.New(n)
	for mask := 0; mask < size; mask++ {
		s.Clear()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(i)
			}
		}
		util[mask] = g.Value(s)
	}
	got := ExactSemivalues(g, fourHeads())
	for h, w := range fourHeads() {
		p := w.SubsetWeights(n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			bit := 1 << uint(i)
			for mask := 0; mask < size; mask++ {
				if mask&bit != 0 {
					continue
				}
				d := w.Transform(util[mask|bit] - util[mask])
				want[i] += p[popcount(mask)] * d
			}
		}
		for i := range want {
			if math.Abs(got[h][i]-want[i]) > 1e-12 {
				t.Fatalf("head %v player %d: %v, want %v", w, i, got[h][i], want[i])
			}
		}
	}
}

// Sampled heads must converge to the exact heads: the one-pass estimator is
// unbiased for every weighting.
func TestMonteCarloSemivaluesConvergence(t *testing.T) {
	g := tableGame{n: 8, seed: 78}
	ws := fourHeads()
	want := exactHeads(g, ws)
	got := MonteCarloSemivalues(g, ws, 60000, rng.New(9))
	for h := range ws {
		for i := range want[h] {
			if d := math.Abs(got[h][i] - want[h][i]); d > 0.02 {
				t.Fatalf("head %v player %d: sampled %v, exact %v (|Δ|=%v)", ws[h], i, got[h][i], want[h][i], d)
			}
		}
	}
}

// The multi-head pass must not perturb the Shapley output: engine
// MonteCarlo with four heads produces bit-identical Shapley values to the
// headless engine AND to the package-level reference, at every worker
// count; and its Shapley head equals that same output bit for bit.
func TestEngineHeadsShapleyBitIdentical(t *testing.T) {
	g := tableGame{n: 12, seed: 79}
	const tau = 400
	ref := MonteCarlo(g, tau, rng.New(5))
	for _, workers := range []int{1, 2, 5} {
		plain := NewEngine(WithWorkers(workers)).MonteCarlo(g, tau, rng.New(5))
		bitEqual(t, "headless engine vs reference", plain, ref)

		e := NewEngine(WithWorkers(workers), WithSemivalues(fourHeads()...))
		sv := e.MonteCarlo(g, tau, rng.New(5))
		bitEqual(t, "multi-head engine Shapley output", sv, ref)
		hv := e.HeadValues()
		if len(hv) != 4 {
			t.Fatalf("workers=%d: %d head slices, want 4", workers, len(hv))
		}
		bitEqual(t, "Shapley head", hv[0], ref)
	}
}

// Engine head values must be identical at every worker count and equal to
// the serial reference estimator for the same seed.
func TestEngineHeadsWorkerInvariance(t *testing.T) {
	g := tableGame{n: 10, seed: 80}
	ws := fourHeads()
	const tau = 300
	want := MonteCarloSemivalues(g, ws, tau, rng.New(6))
	for _, workers := range []int{1, 3, 7} {
		e := NewEngine(WithWorkers(workers), WithSemivalues(ws...))
		e.MonteCarlo(g, tau, rng.New(6))
		hv := e.HeadValues()
		for h := range ws {
			bitEqual(t, "head "+ws[h].String(), hv[h], want[h])
		}
	}
}

// Initialize must fold heads from the same pass: serial and engine paths
// agree bit for bit, the Shapley head equals the pivot SV, and requesting
// heads changes neither SV nor LSV.
func TestInitializeHeads(t *testing.T) {
	g := tableGame{n: 9, seed: 81}
	const tau = 250
	ws := fourHeads()

	base, err := Initialize(g, tau, InitOptions{TrackDeletions: true}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Initialize(g, tau, InitOptions{TrackDeletions: true, Heads: ws}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	bitEqual(t, "SV with heads", res.Pivot.SV, base.Pivot.SV)
	bitEqual(t, "LSV with heads", res.Pivot.LSV, base.Pivot.LSV)
	if len(res.HeadValues) != 4 {
		t.Fatalf("%d head slices, want 4", len(res.HeadValues))
	}
	bitEqual(t, "Shapley head vs SV", res.HeadValues[0], base.Pivot.SV)

	for _, workers := range []int{1, 4} {
		e := NewEngine(WithWorkers(workers))
		eres, err := e.Initialize(g, tau, InitOptions{TrackDeletions: true, Heads: ws}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		bitEqual(t, "engine SV", eres.Pivot.SV, base.Pivot.SV)
		for h := range ws {
			bitEqual(t, "engine head "+ws[h].String(), eres.HeadValues[h], res.HeadValues[h])
		}
	}
}

// DeltaAdd with heads: starting from the exact head values of the base
// game, the differential update must land on the exact head values of the
// grown game, for every weighting including the absolute transform.
func TestDeltaAddHeads(t *testing.T) {
	gPlus := tableGame{n: 7, seed: 82}
	gD := restrictFirst(gPlus, 6)
	ws := fourHeads()
	oldSV := Exact(gD)
	e := NewEngine(WithSemivalues(ws...))
	e.SetHeadBase(exactHeads(gD, ws))
	out, err := e.DeltaAdd(gPlus, oldSV, 60000, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	hv := e.HeadValues()
	want := exactHeads(gPlus, ws)
	for h := range ws {
		for i := range want[h] {
			if d := math.Abs(hv[h][i] - want[h][i]); d > 0.02 {
				t.Fatalf("head %v player %d: %v, want %v (|Δ|=%v)", ws[h], i, hv[h][i], want[h][i], d)
			}
		}
	}
	// The Shapley head and the Shapley output are the same estimator up to
	// association of the same additions.
	for i := range out {
		if d := math.Abs(hv[0][i] - out[i]); d > 1e-9 {
			t.Fatalf("Shapley head drifts from output at %d: %v vs %v", i, hv[0][i], out[i])
		}
	}
}

// DeltaDelete with heads: from the exact heads of the full game, the
// differential must land on the exact heads of the survivor game.
func TestDeltaDeleteHeads(t *testing.T) {
	g := tableGame{n: 7, seed: 83}
	p := 3
	ws := fourHeads()
	oldSV := Exact(g)
	e := NewEngine(WithSemivalues(ws...))
	e.SetHeadBase(exactHeads(g, ws))
	out, err := e.DeltaDelete(g, oldSV, p, 60000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	hv := e.HeadValues()
	gMinus := game.NewRestrict(g, p)
	want := exactHeads(gMinus, ws)
	for h := range ws {
		if hv[h][p] != 0 {
			t.Fatalf("head %v deleted entry = %v, want 0", ws[h], hv[h][p])
		}
		for i := 0; i < g.N(); i++ {
			if i == p {
				continue
			}
			wi := i
			if i > p {
				wi = i - 1
			}
			if d := math.Abs(hv[h][i] - want[h][wi]); d > 0.02 {
				t.Fatalf("head %v survivor %d: %v, want %v (|Δ|=%v)", ws[h], i, hv[h][i], want[h][wi], d)
			}
		}
	}
	for i := range out {
		if d := math.Abs(hv[0][i] - out[i]); d > 1e-9 {
			t.Fatalf("Shapley head drifts from output at %d: %v vs %v", i, hv[0][i], out[i])
		}
	}
}

// BatchDeltaAdd head values must be bit-identical to DeltaAdd's at k = 1
// and invariant to the worker count at k > 1.
func TestBatchDeltaAddHeads(t *testing.T) {
	gPlus := tableGame{n: 8, seed: 84}
	gD := restrictFirst(gPlus, 7)
	ws := fourHeads()
	base := exactHeads(gD, ws)
	oldSV := Exact(gD)
	const tau = 500

	single := NewEngine(WithSemivalues(ws...))
	single.SetHeadBase(base)
	if _, err := single.DeltaAdd(gPlus, oldSV, tau, rng.New(10)); err != nil {
		t.Fatal(err)
	}
	batch := NewEngine(WithSemivalues(ws...))
	batch.SetHeadBase(base)
	if _, err := batch.BatchDeltaAdd(gPlus, oldSV, 1, tau, rng.New(10)); err != nil {
		t.Fatal(err)
	}
	hs, hb := single.HeadValues(), batch.HeadValues()
	for h := range ws {
		bitEqual(t, "k=1 head "+ws[h].String(), hb[h], hs[h])
	}

	// Worker invariance at k = 3.
	gPlus3 := tableGame{n: 9, seed: 85}
	gD3 := restrictFirst(gPlus3, 6)
	base3 := exactHeads(gD3, ws)
	old3 := Exact(gD3)
	var ref [][]float64
	for _, workers := range []int{1, 2, 3} {
		e := NewEngine(WithWorkers(workers), WithSemivalues(ws...), WithChunkSize(16))
		e.SetHeadBase(base3)
		if _, err := e.BatchDeltaAdd(gPlus3, old3, 3, 200, rng.New(11)); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = e.HeadValues()
			continue
		}
		for h := range ws {
			bitEqual(t, "batch head "+ws[h].String(), e.HeadValues()[h], ref[h])
		}
	}
}

// MergeSemivalue must recover linear heads from the deletion store: exactly
// from an exact store, within sampling error from a sampled store, and
// refuse the absolute transform.
func TestMergeSemivalue(t *testing.T) {
	g := tableGame{n: 8, seed: 86}
	p := 2
	gMinus := game.NewRestrict(g, p)
	linear := []semivalue.Weighting{semivalue.Shapley(), semivalue.Banzhaf(), semivalue.Beta(4, 1)}
	want := exactHeads(gMinus, linear)

	ds := PreprocessDeletionExact(g)
	for h, w := range linear {
		got, err := ds.MergeSemivalue(p, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.N(); i++ {
			if i == p {
				continue
			}
			wi := i
			if i > p {
				wi = i - 1
			}
			if d := math.Abs(got[i] - want[h][wi]); d > 1e-9 {
				t.Fatalf("exact store head %v survivor %d: %v, want %v", w, i, got[i], want[h][wi])
			}
		}
	}
	// Shapley through MergeSemivalue agrees with the historic Merge.
	historic, err := ds.Merge(p)
	if err != nil {
		t.Fatal(err)
	}
	viaHead, err := ds.MergeSemivalue(p, semivalue.Shapley())
	if err != nil {
		t.Fatal(err)
	}
	for i := range historic {
		if d := math.Abs(historic[i] - viaHead[i]); d > 1e-12 {
			t.Fatalf("Shapley MergeSemivalue differs from Merge at %d: %v vs %v", i, viaHead[i], historic[i])
		}
	}

	// Sampled store.
	sds := PreprocessDeletion(g, 60000, rng.New(12))
	for h, w := range linear {
		got, err := sds.MergeSemivalue(p, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.N(); i++ {
			if i == p {
				continue
			}
			wi := i
			if i > p {
				wi = i - 1
			}
			if d := math.Abs(got[i] - want[h][wi]); d > 0.03 {
				t.Fatalf("sampled store head %v survivor %d: %v, want %v (|Δ|=%v)", w, i, got[i], want[h][wi], d)
			}
		}
	}

	if _, err := sds.MergeSemivalue(p, semivalue.AbsoluteShapley()); err == nil {
		t.Fatal("MergeSemivalue accepted an absolute-transform head")
	}
	if _, err := sds.MergeSemivalue(-1, semivalue.Banzhaf()); err == nil {
		t.Fatal("MergeSemivalue accepted an out-of-range point")
	}
}

// TruncatedMonteCarlo heads: the Shapley head must track the truncated
// output bit for bit (both see the same zero-credited tails).
func TestTruncatedMonteCarloHeads(t *testing.T) {
	g := monotoneGame{n: 12, seed: 87}
	const tau, tol = 300, 0.05
	ref := NewEngine().TruncatedMonteCarlo(g, tau, tol, rng.New(13))
	e := NewEngine(WithSemivalues(fourHeads()...))
	sv := e.TruncatedMonteCarlo(g, tau, tol, rng.New(13))
	bitEqual(t, "TMC Shapley output with heads", sv, ref)
	bitEqual(t, "TMC Shapley head", e.HeadValues()[0], ref)
}

// Beta(1,1) must price like Shapley through the full sampled pipeline.
func TestBetaOneOneTracksShapleyHead(t *testing.T) {
	g := tableGame{n: 9, seed: 88}
	ws := []semivalue.Weighting{semivalue.Shapley(), semivalue.Beta(1, 1)}
	got := MonteCarloSemivalues(g, ws, 2000, rng.New(14))
	for i := range got[0] {
		if d := math.Abs(got[0][i] - got[1][i]); d > 1e-9 {
			t.Fatalf("player %d: shapley %v, beta(1,1) %v", i, got[0][i], got[1][i])
		}
	}
}
