package core

import (
	"math"
	"testing"

	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

func TestExactBanzhafAdditive(t *testing.T) {
	// On additive games every semivalue returns the weights.
	g := game.Additive{Weights: []float64{1, -0.5, 2}}
	got := ExactBanzhaf(g)
	if d := maxAbsDiff(got, g.Weights); d > 1e-12 {
		t.Fatalf("Banzhaf on additive game diff %v", d)
	}
}

func TestExactBanzhafKnownVotingGame(t *testing.T) {
	// [quota 5; weights 4, 2, 1]: swings — player 0 swings in {}, {1}, {2},
	// {1,2}? w({1,2})=3 ≥... U(S∪0)−U(S): S=∅:0, {1}: 4+2=6≥5 → 1; {2}: 5 → 1;
	// {1,2}: 7 → 1. Raw Banzhaf of 0 = 3/4. Player 1: swings only with {0}:
	// 6 ≥ 5 but U({0})=0 → 1. So 1/4; symmetric for 2 with {0}: 5 → 1/4.
	g := game.WeightedVoting{Weights: []float64{4, 2, 1}, Quota: 5}
	got := ExactBanzhaf(g)
	want := []float64{0.75, 0.25, 0.25}
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Banzhaf = %v, want %v", got, want)
	}
}

func TestExactBanzhafNullPlayer(t *testing.T) {
	g := game.Unanimity{Players: 4, Carrier: []int{0, 1}}
	got := ExactBanzhaf(g)
	if got[2] != 0 || got[3] != 0 {
		t.Fatalf("null players valued: %v", got)
	}
}

func TestMonteCarloBanzhafConverges(t *testing.T) {
	g := tableGame{n: 9, seed: 131}
	want := ExactBanzhaf(g)
	got := MonteCarloBanzhaf(g, 20000, rng.New(1))
	if mse := stat.MSE(got, want); mse > 1e-4 {
		t.Fatalf("MC Banzhaf MSE = %v", mse)
	}
}

func TestBanzhafDiffersFromShapley(t *testing.T) {
	// On non-symmetric games the two semivalues genuinely differ.
	g := game.WeightedVoting{Weights: []float64{4, 2, 1}, Quota: 5}
	banzhaf := ExactBanzhaf(g)
	shapley := Exact(g)
	diff := 0.0
	for i := range banzhaf {
		diff += math.Abs(banzhaf[i] - shapley[i])
	}
	if diff < 0.1 {
		t.Fatalf("Banzhaf %v suspiciously close to Shapley %v", banzhaf, shapley)
	}
}

func TestBanzhafDegenerate(t *testing.T) {
	if got := ExactBanzhaf(game.Additive{}); got != nil {
		t.Fatal("empty game should give nil")
	}
	got := MonteCarloBanzhaf(game.Additive{Weights: []float64{1}}, 0, rng.New(1))
	if got[0] != 0 {
		t.Fatal("τ=0 should give zeros")
	}
}

func TestBanzhafPanicsBeyondLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic beyond MaxExactPlayers")
		}
	}()
	ExactBanzhaf(game.Symmetric{Players: MaxExactPlayers + 1, F: func(int) float64 { return 0 }})
}
