package core

import (
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// costGame is a cheap saturating game for exercising the cost probes.
func costGame(n int) game.Game {
	return game.Func{Players: n, U: func(s bitset.Set) float64 {
		return float64(s.Len()) / float64(n+1)
	}}
}

func TestMergeCostsAreEvaluationFree(t *testing.T) {
	g := costGame(8)
	ds := PreprocessDeletion(g, 100, rng.New(1))
	c := ds.MergeCost()
	if c.Evaluations != 0 {
		t.Fatalf("YN-NN merge predicts %d evaluations, want 0", c.Evaluations)
	}
	if c.ArrayOps <= 0 {
		t.Fatalf("YN-NN merge predicts %d array ops", c.ArrayOps)
	}
	ms, err := PreprocessMultiDeletion(g, 2, []int{0, 1, 2}, 100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	mc := ms.MergeCost()
	if mc.Evaluations != 0 || mc.ArrayOps <= 0 {
		t.Fatalf("YNN-NNN merge cost = %+v", mc)
	}
}

func TestMultiDeletionCovers(t *testing.T) {
	g := costGame(8)
	ms, err := PreprocessMultiDeletion(g, 2, []int{0, 1, 2}, 50, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Covers(2, 0) {
		t.Fatal("Covers(2,0) = false for covered tuple")
	}
	if ms.Covers(0, 5) {
		t.Fatal("Covers(0,5) = true for uncovered tuple")
	}
	if ms.Covers(0) {
		t.Fatal("Covers with wrong arity should be false")
	}
}

func TestUpdateCostOrdering(t *testing.T) {
	// The orderings the planner relies on: exact merges cost no
	// evaluations; a per-point delta pass costs more evaluations than one
	// MC permutation budget of the same τ; pivot suffix replay costs about
	// half a full pass.
	n, tau := 100, 500
	if DeltaAddCost(n, tau).Evaluations <= MonteCarloCost(n, tau).Evaluations {
		t.Fatal("delta per-point evaluations should exceed one MC pass at equal τ")
	}
	if PivotAddDifferentCost(n, tau).Evaluations >= MonteCarloCost(n+1, tau).Evaluations {
		t.Fatal("pivot suffix replay should undercut a full MC pass")
	}
	st := PivotInit(costGame(10), 50, true, rng.New(1))
	if c := st.AddSameCost(); c.Evaluations <= 0 {
		t.Fatalf("AddSameCost = %+v", c)
	}
	sum := DeltaDeleteCost(n, tau).Plus(DeltaDeleteCost(n, tau))
	if sum.Evaluations != 2*DeltaDeleteCost(n, tau).Evaluations {
		t.Fatal("Plus does not sum evaluations")
	}
	if DeltaDeleteCost(n, tau).Times(3).Evaluations != 3*DeltaDeleteCost(n, tau).Evaluations {
		t.Fatal("Times does not scale evaluations")
	}
	if MonteCarloCost(n, tau).String() == "" {
		t.Fatal("empty cost string")
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a, b := rng.NewStream(7, 1), rng.NewStream(7, 2)
	same := rng.NewStream(7, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("distinct streams start identically")
	}
	x, y := same.Uint64(), rng.NewStream(7, 1).Uint64()
	if x != y {
		t.Fatal("NewStream is not pure")
	}
}
