package core

import (
	"math"
	"testing"
	"testing/quick"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

// tableGame is a deterministic pseudo-random game: every coalition's utility
// is a hash-derived value in [0, 1). It has no structure an estimator could
// exploit, making it a good generic target for unbiasedness tests.
type tableGame struct {
	n    int
	seed uint64
}

func (t tableGame) N() int { return t.n }

func (t tableGame) Value(s bitset.Set) float64 {
	if s.Empty() {
		return 0
	}
	x := s.Hash() ^ t.seed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// monotoneGame is a coalition-size-plus-noise game resembling a learning
// curve: U grows with |S| with diminishing returns plus per-coalition noise.
type monotoneGame struct {
	n    int
	seed uint64
}

func (m monotoneGame) N() int { return m.n }

func (m monotoneGame) Value(s bitset.Set) float64 {
	if s.Empty() {
		return 0
	}
	base := 1 - math.Exp(-float64(s.Len())/3)
	noise := tableGame{n: m.n, seed: m.seed}.Value(s)
	return base + 0.05*noise
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestExactAdditive(t *testing.T) {
	g := game.Additive{Weights: []float64{0.5, -1, 2, 0, 3.25}}
	got := Exact(g)
	want := g.ShapleyValues()
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Exact vs closed form: max diff %v\n got %v\nwant %v", d, got, want)
	}
}

func TestExactAirport(t *testing.T) {
	g := game.Airport{Costs: []float64{1, 2, 2, 5, 9}}
	got := Exact(g)
	want := g.ShapleyValues()
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Exact vs Littlechild–Owen: max diff %v", d)
	}
}

func TestExactUnanimity(t *testing.T) {
	g := game.Unanimity{Players: 6, Carrier: []int{0, 2, 5}}
	got := Exact(g)
	want := g.ShapleyValues()
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Exact vs unanimity closed form: max diff %v", d)
	}
}

func TestExactSymmetric(t *testing.T) {
	g := game.Symmetric{Players: 7, F: func(k int) float64 { return math.Sqrt(float64(k)) }}
	got := Exact(g)
	want := g.ShapleyValues()
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Exact vs symmetric closed form: max diff %v", d)
	}
}

func TestExactGloveMarket(t *testing.T) {
	// Classic 3-player glove market: SV = (2/3, 1/6, 1/6).
	g := game.NewGlove([]int{0}, []int{1, 2})
	got := Exact(g)
	want := []float64{2.0 / 3, 1.0 / 6, 1.0 / 6}
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("glove SV = %v, want %v", got, want)
	}
}

func TestExactBalanceProperty(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := tableGame{n: 8, seed: seed}
		sv := Exact(g)
		sum := 0.0
		for _, v := range sv {
			sum += v
		}
		full := g.Value(bitset.Full(8))
		empty := g.Value(bitset.New(8))
		if math.Abs(sum-(full-empty)) > 1e-10 {
			t.Fatalf("balance violated: ΣSV = %v, U(N)−U(∅) = %v", sum, full-empty)
		}
	}
}

func TestExactNullPlayerProperty(t *testing.T) {
	// Player 3 contributes nothing: utility ignores it.
	inner := tableGame{n: 5, seed: 7}
	g := game.Func{Players: 6, U: func(s bitset.Set) float64 {
		sub := bitset.New(5)
		s.ForEach(func(i int) {
			switch {
			case i < 3:
				sub.Add(i)
			case i > 3:
				sub.Add(i - 1)
			}
		})
		return inner.Value(sub)
	}}
	sv := Exact(g)
	if math.Abs(sv[3]) > 1e-12 {
		t.Fatalf("null player has SV %v, want 0", sv[3])
	}
}

func TestExactSymmetryProperty(t *testing.T) {
	// Players 1 and 2 are interchangeable in a glove market.
	g := game.NewGlove([]int{0}, []int{1, 2})
	sv := Exact(g)
	if math.Abs(sv[1]-sv[2]) > 1e-12 {
		t.Fatalf("symmetric players valued differently: %v vs %v", sv[1], sv[2])
	}
}

func TestExactAdditivityProperty(t *testing.T) {
	a := tableGame{n: 6, seed: 1}
	b := tableGame{n: 6, seed: 2}
	svA := Exact(a)
	svB := Exact(b)
	svSum := Exact(game.Sum{A: a, B: b})
	for i := range svSum {
		if math.Abs(svSum[i]-(svA[i]+svB[i])) > 1e-10 {
			t.Fatalf("additivity violated at %d", i)
		}
	}
}

func TestExactEmptyGame(t *testing.T) {
	if got := Exact(game.Additive{}); got != nil {
		t.Fatalf("Exact of empty game = %v", got)
	}
}

func TestExactPanicsBeyondLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exact beyond MaxExactPlayers did not panic")
		}
	}()
	Exact(game.Symmetric{Players: MaxExactPlayers + 1, F: func(int) float64 { return 0 }})
}

func TestMonteCarloConverges(t *testing.T) {
	g := tableGame{n: 10, seed: 3}
	want := Exact(g)
	got := MonteCarlo(g, 20000, rng.New(1))
	if mse := stat.MSE(got, want); mse > 1e-4 {
		t.Fatalf("MC MSE = %v after 20000 perms", mse)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	g := tableGame{n: 8, seed: 4}
	a := MonteCarlo(g, 100, rng.New(9))
	b := MonteCarlo(g, 100, rng.New(9))
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("same-seed MC runs differ")
	}
}

func TestMonteCarloDegenerate(t *testing.T) {
	if got := MonteCarlo(game.Additive{}, 10, rng.New(1)); len(got) != 0 {
		t.Fatal("MC on empty game should return empty")
	}
	got := MonteCarlo(game.Additive{Weights: []float64{1, 2}}, 0, rng.New(1))
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("MC with τ=0 should return zeros")
	}
}

func TestMonteCarloExactOnAdditive(t *testing.T) {
	// For an additive game every permutation yields the same marginals, so
	// even one permutation is exact.
	g := game.Additive{Weights: []float64{3, -1, 0.5}}
	got := MonteCarlo(g, 1, rng.New(5))
	if d := maxAbsDiff(got, g.ShapleyValues()); d > 1e-12 {
		t.Fatalf("MC on additive game inexact: %v", d)
	}
}

func TestMonteCarloParallelConverges(t *testing.T) {
	g := tableGame{n: 10, seed: 6}
	want := Exact(g)
	got := MonteCarloParallel(g, 20000, 4, rng.New(2))
	if mse := stat.MSE(got, want); mse > 1e-4 {
		t.Fatalf("parallel MC MSE = %v", mse)
	}
}

func TestMonteCarloParallelDeterministicGivenWorkers(t *testing.T) {
	g := tableGame{n: 8, seed: 8}
	a := MonteCarloParallel(g, 200, 3, rng.New(11))
	b := MonteCarloParallel(g, 200, 3, rng.New(11))
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("same-seed same-workers parallel MC differs")
	}
}

func TestMonteCarloParallelWorkerCountClamped(t *testing.T) {
	g := game.Additive{Weights: []float64{1, 2}}
	got := MonteCarloParallel(g, 3, 64, rng.New(1)) // workers > τ
	if d := maxAbsDiff(got, g.ShapleyValues()); d > 1e-12 {
		t.Fatalf("clamped parallel MC wrong: %v", got)
	}
}

func TestTruncatedMonteCarloConverges(t *testing.T) {
	// On a saturating game, truncation with a loose tolerance still tracks
	// the exact values reasonably.
	g := monotoneGame{n: 12, seed: 1}
	want := Exact(g)
	got := TruncatedMonteCarlo(g, 20000, 0.05, rng.New(3))
	if mse := stat.MSE(got, want); mse > 5e-4 {
		t.Fatalf("TMC MSE = %v", mse)
	}
}

func TestTruncatedMonteCarloTightToleranceEqualsMC(t *testing.T) {
	// tol = 0 never truncates, so TMC must equal plain MC with equal seeds.
	g := tableGame{n: 8, seed: 10}
	mc := MonteCarlo(g, 300, rng.New(21))
	tmc := TruncatedMonteCarlo(g, 300, 0, rng.New(21))
	if maxAbsDiff(mc, tmc) > 1e-15 {
		t.Fatal("TMC with tol=0 deviates from MC")
	}
}

func TestTruncatedMonteCarloSavesEvaluations(t *testing.T) {
	g := game.NewCounting(monotoneGame{n: 16, seed: 2})
	MonteCarlo(g, 50, rng.New(4))
	mcCalls := g.Calls()
	g.Reset()
	TruncatedMonteCarlo(g, 50, 0.2, rng.New(4))
	tmcCalls := g.Calls()
	if tmcCalls >= mcCalls {
		t.Fatalf("TMC used %d evals, MC %d — no savings", tmcCalls, mcCalls)
	}
}

func TestBaseAdd(t *testing.T) {
	got := BaseAdd([]float64{1, 2, 3}, 2)
	want := []float64{1, 2, 3, 2, 2}
	if maxAbsDiff(got, want) != 0 {
		t.Fatalf("BaseAdd = %v, want %v", got, want)
	}
	if got := BaseAdd(nil, 1); got[0] != 0 {
		t.Fatalf("BaseAdd on empty = %v", got)
	}
}

// Property: Monte Carlo respects the balance axiom permutation-by-
// permutation: for any game and τ, ΣSV = U(N) − U(∅) exactly.
func TestQuickMonteCarloBalance(t *testing.T) {
	f := func(seed uint64, nRaw, tauRaw uint8) bool {
		n := 2 + int(nRaw%8)
		tau := 1 + int(tauRaw%20)
		g := tableGame{n: n, seed: seed}
		sv := MonteCarlo(g, tau, rng.New(seed+1))
		sum := 0.0
		for _, v := range sv {
			sum += v
		}
		full := g.Value(bitset.Full(n))
		empty := g.Value(bitset.New(n))
		return math.Abs(sum-(full-empty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: exact Shapley of a random additive game returns the weights.
func TestQuickExactAdditive(t *testing.T) {
	f := func(ws [6]int8) bool {
		w := make([]float64, 6)
		for i := range w {
			w[i] = float64(ws[i]) / 16
		}
		g := game.Additive{Weights: w}
		return maxAbsDiff(Exact(g), w) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
