package core

import (
	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// LeaveOneOut returns each player's leave-one-out score
//
//	LOO_i = U(N) − U(N∖{i}),
//
// the classical cheap alternative the paper's introduction compares Shapley
// value against (data points selected by SV train substantially better
// models than LOO-selected ones — Ghorbani & Zou). It costs n+1 utility
// evaluations.
func LeaveOneOut(g game.Game) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	full := g.Value(bitset.Full(n))
	s := bitset.Full(n)
	for i := 0; i < n; i++ {
		s.Remove(i)
		out[i] = full - g.Value(s)
		s.Add(i)
	}
	return out
}

// StratifiedMonteCarlo approximates Shapley values with stratified coalition
// sampling (Maleki et al., cited by the paper as the non-asymptotic-bound
// alternative to permutation sampling): for every player i the coalition
// sizes 0..n−1 form strata, each stratum receives samplesPerStratum
// uniformly drawn coalitions S ⊆ N∖{i} of that size, and
//
//	SV_i = (1/n) Σ_k  avg_S [U(S∪{i}) − U(S)].
//
// Total utility evaluations: 2·n·n·samplesPerStratum (marginals are not
// shared between players, unlike permutation sampling, but each stratum's
// error is bounded independently).
func StratifiedMonteCarlo(g game.Game, samplesPerStratum int, r *rng.Source) []float64 {
	n := g.N()
	sv := make([]float64, n)
	if n == 0 || samplesPerStratum <= 0 {
		return sv
	}
	others := make([]int, 0, n-1)
	s := bitset.New(n)
	for i := 0; i < n; i++ {
		others = others[:0]
		for j := 0; j < n; j++ {
			if j != i {
				others = append(others, j)
			}
		}
		var total float64
		for k := 0; k < n; k++ {
			var stratum float64
			for t := 0; t < samplesPerStratum; t++ {
				// Uniform size-k subset of the other players via a partial
				// shuffle of `others`.
				for x := 0; x < k; x++ {
					y := x + r.Intn(len(others)-x)
					others[x], others[y] = others[y], others[x]
				}
				s.Clear()
				for _, p := range others[:k] {
					s.Add(p)
				}
				without := g.Value(s)
				s.Add(i)
				stratum += g.Value(s) - without
			}
			total += stratum / float64(samplesPerStratum)
		}
		sv[i] = total / float64(n)
	}
	return sv
}
