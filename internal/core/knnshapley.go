package core

import (
	"fmt"
	"sort"

	"dynshap/internal/bitset"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
)

// This file implements the exact k-NN Shapley algorithm of Jia et al.
// ("Efficient task-specific data valuation for nearest neighbor
// algorithms", VLDB 2019) — cited by the paper as the lazy-classifier
// special case where exactness is tractable. For the soft k-NN utility
//
//	U(S) = (1/|T|) Σ_{t∈T} (#correct among the min(k,|S|) nearest
//	        neighbours of t in S) / k,
//
// the Shapley value of every training point has a closed form computable in
// O(n log n) per test point: sort the training points by distance to t and
// apply the recurrence
//
//	s_{α_n} = 1[y_{α_n} = y_t] / max(n, k)
//	s_{α_i} = s_{α_{i+1}} + (1[y_{α_i}=y_t] − 1[y_{α_{i+1}}=y_t])/k ·
//	          min(k, i+1)/(i+1)
//
// where α sorts points by increasing distance (1-based i). The library uses
// it both as a fast exact valuer for k-NN utilities and as an independent
// correctness oracle for the Monte Carlo machinery.

// KNNShapley returns the exact Shapley values of every training point under
// the soft k-NN utility over the given test set.
func KNNShapley(train, test *dataset.Dataset, k int) ([]float64, error) {
	n := train.Len()
	if n == 0 {
		return nil, fmt.Errorf("core: KNNShapley needs a non-empty training set")
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: KNNShapley needs k ≥ 1, got %d", k)
	}
	if test.Len() == 0 {
		return make([]float64, n), nil
	}
	sv := make([]float64, n)
	order := make([]int, n)
	dists := make([]float64, n)
	s := make([]float64, n)
	for _, t := range test.Points {
		for i, p := range train.Points {
			dists[i] = dataset.Euclidean(p.X, t.X)
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
		match := func(rank int) float64 {
			if train.Points[order[rank]].Y == t.Y {
				return 1
			}
			return 0
		}
		// Recurrence from the farthest point inward (0-based rank i,
		// 1-based position i+1). The farthest point is inside the k-window
		// only while the coalition holds fewer than k others, so its value
		// is 1[match]/k · min(k,n)/n = 1[match]/max(n,k) — the familiar
		// 1[match]/n only once n ≥ k.
		den := float64(n)
		if float64(k) > den {
			den = float64(k)
		}
		s[n-1] = match(n-1) / den
		for i := n - 2; i >= 0; i-- {
			// min(k, i+1)/(i+1) with i+1 the 1-based position of rank i+1's
			// predecessor pair in Jia et al.'s Theorem 1.
			minK := float64(k)
			if float64(i+1) < minK {
				minK = float64(i + 1)
			}
			s[i] = s[i+1] + (match(i)-match(i+1))/float64(k)*minK/float64(i+1)
		}
		for rank, idx := range order {
			sv[idx] += s[rank]
		}
	}
	inv := 1 / float64(test.Len())
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}

// SoftKNNUtility is the game the closed form above values exactly:
// U(S) = mean over test points of (#same-label points among the min(k,|S|)
// nearest neighbours in S) / k. It deliberately differs from the
// majority-vote accuracy of ml.KNN — only this "soft" utility admits the
// closed form.
type SoftKNNUtility struct {
	train *dataset.Dataset
	test  *dataset.Dataset
	k     int
	// kernel precomputes every test-to-train distance once. The scratch
	// code computed Euclidean(train.X, test.X); the kernel stores
	// Euclidean(test.X, train.X) — identical bits, since (a−b)² and (b−a)²
	// coincide exactly in IEEE arithmetic — so Value is unchanged
	// bit-for-bit (sort.Slice is deterministic on identical input).
	kernel *dataset.DistanceKernel
}

// NewSoftKNNUtility builds the soft k-NN utility game. Datasets are cloned.
func NewSoftKNNUtility(train, test *dataset.Dataset, k int) *SoftKNNUtility {
	if k <= 0 {
		k = 5
	}
	u := &SoftKNNUtility{train: train.Clone(), test: test.Clone(), k: k}
	u.kernel = dataset.NewDistanceKernel(u.test, u.train, 0)
	return u
}

// N implements game.Game.
func (u *SoftKNNUtility) N() int { return u.train.Len() }

// Value implements game.Game.
func (u *SoftKNNUtility) Value(s bitset.Set) float64 {
	if u.test.Len() == 0 || s.Empty() {
		return 0
	}
	members := s.Indices()
	total := 0.0
	type cand struct {
		dist float64
		y    int
	}
	cands := make([]cand, 0, len(members))
	for ti := range u.test.Points {
		t := &u.test.Points[ti]
		cands = cands[:0]
		for _, i := range members {
			cands = append(cands, cand{dist: u.kernel.At(i, ti), y: u.train.Points[i].Y})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
		kk := u.k
		if kk > len(cands) {
			kk = len(cands)
		}
		correct := 0
		for _, c := range cands[:kk] {
			if c.y == t.Y {
				correct++
			}
		}
		total += float64(correct) / float64(u.k)
	}
	return total / float64(u.test.Len())
}

// interface check
var _ game.Game = (*SoftKNNUtility)(nil)
