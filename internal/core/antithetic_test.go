package core

import (
	"math"
	"testing"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

func TestAntitheticConverges(t *testing.T) {
	g := tableGame{n: 9, seed: 141}
	want := Exact(g)
	got := MonteCarloAntithetic(g, 10000, rng.New(1))
	if mse := stat.MSE(got, want); mse > 1e-4 {
		t.Fatalf("antithetic MC MSE = %v", mse)
	}
}

func TestAntitheticBalance(t *testing.T) {
	g := tableGame{n: 7, seed: 142}
	sv := MonteCarloAntithetic(g, 50, rng.New(2))
	sum := 0.0
	for _, v := range sv {
		sum += v
	}
	want := g.Value(bitset.Full(7)) - g.Value(bitset.New(7))
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("balance violated: %v vs %v", sum, want)
	}
}

func TestAntitheticBeatsMCOnSaturatingGame(t *testing.T) {
	// The variance-reduction claim, on a learning-curve-shaped utility, at
	// equal evaluation budgets (τ pairs vs 2τ plain permutations).
	g := game.Symmetric{Players: 12, F: func(k int) float64 {
		return 1 - math.Exp(-float64(k)/4)
	}}
	want := g.ShapleyValues()
	const pairs, reps = 20, 30
	var mseAnti, mseMC float64
	for rep := 0; rep < reps; rep++ {
		seed := uint64(4000 + rep)
		anti := MonteCarloAntithetic(g, pairs, rng.New(seed))
		mc := MonteCarlo(g, 2*pairs, rng.New(seed+900))
		mseAnti += stat.MSE(anti, want) / reps
		mseMC += stat.MSE(mc, want) / reps
	}
	if mseAnti >= mseMC {
		t.Fatalf("antithetic MSE %v not below MC MSE %v at equal budget", mseAnti, mseMC)
	}
}

func TestAntitheticDegenerate(t *testing.T) {
	if got := MonteCarloAntithetic(game.Additive{}, 5, rng.New(1)); len(got) != 0 {
		t.Fatal("empty game should give empty result")
	}
	got := MonteCarloAntithetic(game.Additive{Weights: []float64{1}}, 0, rng.New(1))
	if got[0] != 0 {
		t.Fatal("τ=0 should give zeros")
	}
}

func TestAntitheticDeterministic(t *testing.T) {
	g := tableGame{n: 6, seed: 143}
	a := MonteCarloAntithetic(g, 100, rng.New(7))
	b := MonteCarloAntithetic(g, 100, rng.New(7))
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("same-seed antithetic runs differ")
	}
}
