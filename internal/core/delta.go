package core

import (
	"fmt"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// DeltaAdd runs Algorithm 5 (the delta-based algorithm for adding a data
// point): instead of re-estimating absolute Shapley values it estimates the
// *change* ∆SV_i of every original player caused by the arrival of the new
// point, by sampling differential marginal contributions
//
//	DMC(S, i) = [U(S∪{z_new}∪{z_i}) − U(S∪{z_i})] − [U(S∪{z_new}) − U(S)],
//
// whose range d is typically far smaller than the range r of raw marginal
// contributions; by Hoeffding's inequality (Theorem 2) the same accuracy
// then needs a factor (d/r)² fewer permutations.
//
// gPlus is the (n+1)-player updated game whose last player is the new
// point; oldSV holds the n precomputed values. The returned slice has n+1
// entries: updated values for the original players and a fresh estimate for
// the new one.
//
// Deviation from the paper's pseudocode: Algorithm 5 (line 8) estimates the
// new point's own value by averaging its marginal contributions over prefix
// sizes 1..n with weight 1/n, which both skips the S=∅ stratum and
// mis-normalises Eq. (2); we include the empty stratum and divide by n+1,
// which makes the estimator unbiased (verified against exact enumeration in
// the tests).
func DeltaAdd(gPlus game.Game, oldSV []float64, tau int, r *rng.Source) ([]float64, error) {
	n := len(oldSV)
	if gPlus.N() != n+1 {
		return nil, fmt.Errorf("core: DeltaAdd game has %d players, want %d", gPlus.N(), n+1)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: DeltaAdd requires tau > 0, got %d", tau)
	}
	pivot := n
	m := n + 1
	dsv := make([]float64, n)
	newSV := 0.0

	perm := make([]int, n)
	// Two independent walks per permutation: the coalition without the new
	// point and the one with it; each gets its own walker (and, for
	// Prefixer games, its own incremental evaluator).
	wNo := newPrefixWalker(gPlus)
	wWith := newPrefixWalker(gPlus)
	uEmpty := gPlus.Value(bitset.New(m))
	uPivot := gPlus.Value(bitset.FromIndices(m, pivot))

	for k := 0; k < tau; k++ {
		r.Perm(perm)
		wNo.reset()
		wWith.reset()
		prevNo := uEmpty
		prevWith := wWith.seed(pivot, uPivot)
		newSV += prevWith - prevNo // S=∅ stratum of the new point's value
		for pos, p := range perm {
			curNo := wNo.add(p)
			curWith := wWith.add(p)
			dmc := (curWith - curNo) - (prevWith - prevNo)
			// Stratified weight (|S|+1)/(n+1) with |S| = pos (Lemma 2 /
			// Theorem 2): the scan visits each prefix size exactly once.
			dsv[p] += dmc * float64(pos+1) / float64(n+1)
			newSV += curWith - curNo
			prevNo, prevWith = curNo, curWith
		}
	}

	out := make([]float64, m)
	for i := 0; i < n; i++ {
		out[i] = oldSV[i] + dsv[i]/float64(tau)
	}
	out[pivot] = newSV / float64(tau) / float64(n+1)
	return out, nil
}

// DeltaDelete runs Algorithm 8 (the delta-based algorithm for deleting data
// point p): it samples permutations of the surviving players and estimates
// each survivor's value change from differential marginal contributions
// involving the departing point, then subtracts it from the precomputed
// value. The returned slice has n entries with out[p] = 0 (the paper's
// convention for removed points).
//
// All utility evaluations are coalitions of the *original* game g (some
// including p), so no new data is touched — only extra model trainings on
// subsets that were never sampled before.
func DeltaDelete(g game.Game, oldSV []float64, p, tau int, r *rng.Source) ([]float64, error) {
	n := g.N()
	if len(oldSV) != n {
		return nil, fmt.Errorf("core: DeltaDelete oldSV has %d entries, want %d", len(oldSV), n)
	}
	if p < 0 || p >= n {
		return nil, fmt.Errorf("core: DeltaDelete point %d out of range [0,%d)", p, n)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: DeltaDelete requires tau > 0, got %d", tau)
	}
	if n == 1 {
		return []float64{0}, nil
	}
	// Survivors in a fixed order; permutations are drawn over them.
	survivors := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != p {
			survivors = append(survivors, i)
		}
	}
	dsv := make([]float64, n)
	perm := make([]int, n-1)
	wNo := newPrefixWalker(g)
	wWith := newPrefixWalker(g)
	uEmpty := g.Value(bitset.New(n))
	uP := g.Value(bitset.FromIndices(n, p))
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		wNo.reset()
		wWith.reset()
		prevNo := uEmpty
		prevWith := wWith.seed(p, uP)
		for pos, idx := range perm {
			q := survivors[idx]
			curNo := wNo.add(q)
			curWith := wWith.add(q)
			// Deletion mirrors addition with opposite sign: the survivor
			// loses exactly the share the departing point contributed.
			// Weight (|S|+1)/n with |S| = pos (Lemma 2's deletion form).
			dmc := (curWith - curNo) - (prevWith - prevNo)
			dsv[q] -= dmc * float64(pos+1) / float64(n)
			prevNo, prevWith = curNo, curWith
		}
	}
	out := make([]float64, n)
	for _, q := range survivors {
		out[q] = oldSV[q] + dsv[q]/float64(tau)
	}
	return out, nil
}
