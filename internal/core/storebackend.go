package core

import "fmt"

// This file is the storage layer behind the deletion stores' utility
// arrays. The YN-NN store is O(n²·m) and YNN-NNN is O(n^{d+2}) — dense
// float64 slices cap the delete-capable session near n≈300, so the arrays
// sit behind a small backend interface with three implementations:
//
//   - dense64: the historic contiguous []float64. Default, exact, and
//     bit-identical to the pre-interface stores at every worker count.
//   - tiled32: float32 entries in row-aligned tiles — half the bytes per
//     entry. Reads promote to float64 and the Merge recurrence runs a
//     Neumaier-compensated float64 reduction per row, so the only error
//     sources are float32 rounding of the accumulated sums (bounded; see
//     DESIGN.md §15 for the tolerance contract).
//   - spill32: the tiled32 layout backed by an mmap'd file, for stores
//     larger than RAM. Tile-granular dirty tracking lets Flush write back
//     only touched tiles; the heap holds bookkeeping only.
//
// Tiles never straddle a first-axis row. The engine's stripe workers each
// own a contiguous row range [lo, hi), so row-aligned tiles guarantee each
// tile has exactly ONE writing goroutine — dirty flags need no atomics and
// the fill stays lock-free. Entries within a row are written in
// permutation-walk order by that single owner, which is why every backend
// (not just dense64) is bit-identical to its own serial fill at any worker
// count.

// BackendKind selects the storage implementation behind a deletion store.
type BackendKind int

const (
	// BackendDense64 is the historic dense float64 array: exact, and the
	// default everywhere.
	BackendDense64 BackendKind = iota
	// BackendTiled32 stores float32 entries in row-aligned tiles: half the
	// memory, bounded rounding drift (see DESIGN.md §15).
	BackendTiled32
	// BackendSpill32 is the tiled float32 layout in an mmap'd file: the
	// store no longer needs to fit in RAM.
	BackendSpill32
)

// String returns the backend's wire/config name.
func (k BackendKind) String() string {
	switch k {
	case BackendTiled32:
		return "tiled32"
	case BackendSpill32:
		return "spill32"
	default:
		return "dense64"
	}
}

// ParseBackendKind is the inverse of String. The empty string parses as
// the dense default so zero-valued configs round-trip.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "", "dense64":
		return BackendDense64, nil
	case "tiled32":
		return BackendTiled32, nil
	case "spill32":
		return BackendSpill32, nil
	default:
		return BackendDense64, fmt.Errorf("core: unknown store backend %q", s)
	}
}

// StoreConfig selects the storage backend for the deletion stores built by
// an initialisation pass. The zero value is the exact dense default.
type StoreConfig struct {
	// Kind picks the implementation.
	Kind BackendKind
	// SpillDir is the directory for BackendSpill32's mmap files (the
	// process's temp dir when empty). Ignored by the in-memory backends.
	SpillDir string
}

// storeBackend is one utility array (YN, NN, Y or NNN) behind a deletion
// store. Implementations are NOT safe for concurrent writes to the same
// entry; the stores guarantee single-writer entries via row striping.
type storeBackend interface {
	// at reads entry idx (flat layout, identical to the historic slices).
	at(idx int) float64
	// add accumulates v into entry idx.
	add(idx int, v float64)
	// scale multiplies every entry by f (the finishSampled normalisation).
	scale(f float64)
	// logicalBytes is the store's data footprint (heap or file).
	logicalBytes() int64
	// heapBytes is the heap-resident share of logicalBytes plus
	// bookkeeping — what the process actually pays in RAM it cannot evict.
	heapBytes() int64
	// backendKind identifies the implementation.
	backendKind() BackendKind
	// export copies the array out as float64, for persistence.
	export() []float64
	// load overwrites the array from a float64 slice of equal length.
	load(vals []float64)
	// flush writes dirty tiles back to stable storage (no-op in memory).
	flush() error
	// close releases non-heap resources (mmap, spill file).
	close() error
}

// newBackend builds one array of the given entry count. rowLen is the
// number of entries per first-axis row — the striping unit tiles must not
// straddle.
func newBackend(entries, rowLen int, cfg StoreConfig) (storeBackend, error) {
	switch cfg.Kind {
	case BackendTiled32:
		return newTiled32(entries, rowLen), nil
	case BackendSpill32:
		return newSpill32(entries, rowLen, cfg.SpillDir)
	default:
		return &dense64{v: make([]float64, entries)}, nil
	}
}

// dense64 is the historic dense float64 array.
type dense64 struct{ v []float64 }

func (d *dense64) at(idx int) float64      { return d.v[idx] }
func (d *dense64) add(idx int, x float64)  { d.v[idx] += x }
func (d *dense64) logicalBytes() int64     { return int64(len(d.v)) * 8 }
func (d *dense64) heapBytes() int64        { return d.logicalBytes() }
func (d *dense64) backendKind() BackendKind { return BackendDense64 }
func (d *dense64) flush() error            { return nil }
func (d *dense64) close() error            { return nil }

func (d *dense64) scale(f float64) {
	for i := range d.v {
		d.v[i] *= f
	}
}

func (d *dense64) export() []float64 {
	return append([]float64(nil), d.v...)
}

func (d *dense64) load(vals []float64) {
	copy(d.v, vals)
}

// tileEntries is the tile size in entries: 1<<16 float32 = 256 KiB, small
// enough that a dirty tile flush stays fine-grained and a tile fits
// comfortably in L2 during merges, large enough that per-tile bookkeeping
// is negligible against the data.
const tileEntries = 1 << 16

// tileLayout maps the stores' flat index space onto row-aligned tiles.
// Rows are split into ⌈rowLen/tileEntries⌉ tiles; the last tile of each
// row is short. entries must be a multiple of rowLen.
type tileLayout struct {
	entries, rowLen, tilesPerRow int
}

func newTileLayout(entries, rowLen int) tileLayout {
	l := tileLayout{entries: entries, rowLen: rowLen, tilesPerRow: 1}
	if rowLen > tileEntries {
		l.tilesPerRow = (rowLen + tileEntries - 1) / tileEntries
	}
	return l
}

// numTiles is the total tile count.
func (l tileLayout) numTiles() int {
	if l.rowLen == 0 {
		return 0
	}
	return l.entries / l.rowLen * l.tilesPerRow
}

// tileOf returns the tile holding flat index idx.
func (l tileLayout) tileOf(idx int) int {
	row := idx / l.rowLen
	off := idx - row*l.rowLen
	return row*l.tilesPerRow + off/tileEntries
}

// tileSpan returns tile t's flat [start, end) entry range.
func (l tileLayout) tileSpan(t int) (start, end int) {
	row := t / l.tilesPerRow
	k := t - row*l.tilesPerRow
	start = row*l.rowLen + k*tileEntries
	end = start + tileEntries
	if limit := (row + 1) * l.rowLen; end > limit {
		end = limit
	}
	return start, end
}

// tiled32 stores float32 entries in independently allocated row-aligned
// tiles. Half the bytes of dense64; accumulation rounds each running sum
// to float32 (the documented drift), reads promote back to float64.
type tiled32 struct {
	layout tileLayout
	tiles  [][]float32
}

func newTiled32(entries, rowLen int) *tiled32 {
	l := newTileLayout(entries, rowLen)
	b := &tiled32{layout: l, tiles: make([][]float32, l.numTiles())}
	for t := range b.tiles {
		start, end := l.tileSpan(t)
		b.tiles[t] = make([]float32, end-start)
	}
	return b
}

func (b *tiled32) locate(idx int) (tile []float32, slot int) {
	row := idx / b.layout.rowLen
	off := idx - row*b.layout.rowLen
	k := off / tileEntries
	return b.tiles[row*b.layout.tilesPerRow+k], off - k*tileEntries
}

func (b *tiled32) at(idx int) float64 {
	tile, s := b.locate(idx)
	return float64(tile[s])
}

func (b *tiled32) add(idx int, x float64) {
	tile, s := b.locate(idx)
	tile[s] = float32(float64(tile[s]) + x)
}

func (b *tiled32) scale(f float64) {
	for _, tile := range b.tiles {
		for i := range tile {
			tile[i] = float32(float64(tile[i]) * f)
		}
	}
}

func (b *tiled32) logicalBytes() int64      { return int64(b.layout.entries) * 4 }
func (b *tiled32) heapBytes() int64         { return b.logicalBytes() }
func (b *tiled32) backendKind() BackendKind { return BackendTiled32 }
func (b *tiled32) flush() error             { return nil }
func (b *tiled32) close() error             { return nil }

func (b *tiled32) export() []float64 {
	out := make([]float64, 0, b.layout.entries)
	for _, tile := range b.tiles {
		for _, v := range tile {
			out = append(out, float64(v))
		}
	}
	return out
}

func (b *tiled32) load(vals []float64) {
	i := 0
	for _, tile := range b.tiles {
		for s := range tile {
			tile[s] = float32(vals[i])
			i++
		}
	}
}

// neumaierSum is a compensated (Neumaier/Kahan–Babuška) float64
// accumulator: the running compensation recovers the low-order bits a
// plain sum drops, so the float32 backends' Merge reduction loses nothing
// beyond the storage rounding itself.
type neumaierSum struct {
	sum, c float64
}

func (a *neumaierSum) add(x float64) {
	t := a.sum + x
	if abs(a.sum) >= abs(x) {
		a.c += (a.sum - t) + x
	} else {
		a.c += (x - t) + a.sum
	}
	a.sum = t
}

func (a *neumaierSum) value() float64 { return a.sum + a.c }
