package core

import (
	"dynshap/internal/bitset"
	"dynshap/internal/game"
)

// prefixWalker drives the permutation walks shared by every sampler: it
// evaluates utilities of growing coalition prefixes through the game's
// incremental evaluator when the game offers one (game.Prefixer), and
// through scratch Value calls on a maintained bitset otherwise — the exact
// code path the samplers used before the capability existed. Deterministic
// games return bit-identical utilities on both paths (the PrefixEvaluator
// contract), and the walker consumes no randomness, so an estimator's
// output is the same to the last bit whichever path serves it.
//
// A walker is single-goroutine state; parallel samplers build one per
// worker (game.Prefixer.Prefix is safe for concurrent calls).
type prefixWalker struct {
	g      game.Game
	ev     game.PrefixEvaluator // nil → scratch fallback
	prefix bitset.Set
}

func newPrefixWalker(g game.Game) *prefixWalker {
	return &prefixWalker{g: g, ev: game.PrefixEvaluatorOf(g), prefix: bitset.New(g.N())}
}

// incremental reports whether walks run on the incremental path.
func (w *prefixWalker) incremental() bool { return w.ev != nil }

// reset empties the prefix.
func (w *prefixWalker) reset() {
	if w.ev != nil {
		w.ev.Reset()
		return
	}
	w.prefix.Clear()
}

// add inserts player p into the prefix and returns U(prefix ∪ {p}).
func (w *prefixWalker) add(p int) float64 {
	if w.ev != nil {
		return w.ev.Add(p)
	}
	w.prefix.Add(p)
	return w.g.Value(w.prefix)
}

// seed inserts player p whose utility the caller already knows (known),
// returning U(prefix ∪ {p}). The fallback path skips the redundant Value
// call — preserving the historic evaluation counts of the delta
// algorithms, which reuse U({pivot}) across permutations — while the
// incremental path must still feed the evaluator, whose Add returns the
// same value bit-identically.
func (w *prefixWalker) seed(p int, known float64) float64 {
	if w.ev != nil {
		return w.ev.Add(p)
	}
	w.prefix.Add(p)
	return known
}

// advance inserts perm[:t] and returns U(perm[:t]); uEmpty supplies U(∅)
// for the t = 0 case on the incremental path. The fallback path batches
// the prefix into ONE Value call — the pivot algorithms' historic
// behaviour, where with a warmed cache that single pre-pivot lookup is the
// "reuse half the computation" claim — so it ignores uEmpty and evaluates
// even the empty prefix, exactly as before.
func (w *prefixWalker) advance(perm []int, t int, uEmpty float64) float64 {
	if w.ev != nil {
		prev := uEmpty
		for _, q := range perm[:t] {
			prev = w.ev.Add(q)
		}
		return prev
	}
	for _, q := range perm[:t] {
		w.prefix.Add(q)
	}
	return w.g.Value(w.prefix)
}
