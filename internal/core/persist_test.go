package core

import (
	"bytes"
	"testing"

	"dynshap/internal/game"
	"dynshap/internal/rng"
)

func TestPivotStateRoundTrip(t *testing.T) {
	gPlus := tableGame{n: 6, seed: 101}
	gD := restrictFirst(gPlus, 5)
	st := PivotInit(gD, 200, true, rng.New(1))

	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPivotState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(back.SV, st.SV) != 0 || maxAbsDiff(back.LSV, st.LSV) != 0 || back.Tau != st.Tau {
		t.Fatal("round trip changed scalar state")
	}
	if !back.HasPermutations() {
		t.Fatal("round trip lost permutations")
	}
	// The restored state must be functionally identical: same AddSame result.
	a, err := st.AddSame(gPlus, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.AddSame(gPlus, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("restored pivot state behaves differently")
	}
}

func TestPivotStateRoundTripWithoutPerms(t *testing.T) {
	gD := tableGame{n: 5, seed: 102}
	st := PivotInit(gD, 50, false, rng.New(3))
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPivotState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.HasPermutations() {
		t.Fatal("permutations materialised from nowhere")
	}
}

func TestDeletionStoreRoundTrip(t *testing.T) {
	g := tableGame{n: 7, seed: 103}
	ds := PreprocessDeletion(g, 500, rng.New(4))
	var buf bytes.Buffer
	if err := ds.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDeletionStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 7; p++ {
		a, err := ds.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Merge(p)
		if err != nil {
			t.Fatal(err)
		}
		if maxAbsDiff(a, b) != 0 {
			t.Fatalf("restored store merges differently at p=%d", p)
		}
	}
	if back.Tau() != ds.Tau() || back.N() != ds.N() {
		t.Fatal("metadata lost")
	}
}

func TestDeletionStoreExactFlagSurvives(t *testing.T) {
	g := tableGame{n: 5, seed: 104}
	ds := PreprocessDeletionExact(g)
	var buf bytes.Buffer
	if err := ds.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDeletionStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ds.Merge(2)
	b, _ := back.Merge(2)
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("exact-mode store merges differently after round trip")
	}
}

func TestMultiDeletionStoreRoundTrip(t *testing.T) {
	g := tableGame{n: 8, seed: 105}
	ms, err := PreprocessMultiDeletion(g, 2, []int{1, 3, 6}, 500, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ms.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMultiDeletionStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ms.Merge(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Merge(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(a, b) != 0 {
		t.Fatal("restored multi store merges differently")
	}
}

func TestReadPivotStateCorrupt(t *testing.T) {
	if _, err := ReadPivotState(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("junk input should fail")
	}
}

func TestReadDeletionStoreCorrupt(t *testing.T) {
	if _, err := ReadDeletionStore(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("junk input should fail")
	}
	// Valid gob, inconsistent dimensions.
	ds := NewDeletionStore(3)
	var buf bytes.Buffer
	if err := ds.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate arrays by rewriting with a mangled wire struct.
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff
	if _, err := ReadDeletionStore(bytes.NewReader(raw)); err == nil {
		t.Log("mangled payload decoded (gob is permissive); dimension checks must hold elsewhere")
	}
}

func TestReadMultiDeletionStoreCorrupt(t *testing.T) {
	if _, err := ReadMultiDeletionStore(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("junk input should fail")
	}
}

func TestRestoredStoreUsableForGame(t *testing.T) {
	// End-to-end: preprocess, persist, restart, merge — values match exact.
	g := tableGame{n: 6, seed: 106}
	ds := PreprocessDeletionExact(g)
	var buf bytes.Buffer
	if err := ds.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDeletionStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Merge(4)
	if err != nil {
		t.Fatal(err)
	}
	want := expandDeleted(Exact(game.NewRestrict(g, 4)), 6, 4)
	if d := maxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("restored exact store wrong by %v", d)
	}
}
