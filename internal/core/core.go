// Package core implements the paper's contribution: Shapley value
// computation and its dynamic maintenance under data additions and
// deletions.
//
// The static estimators are exact enumeration (small n), Monte Carlo
// permutation sampling (Algorithm 1 of the paper) and Truncated Monte Carlo
// (Ghorbani & Zou). The dynamic algorithms are:
//
//   - addition: the pivot-based algorithms with same/different sampled
//     permutations (Algorithms 2–4) and the delta-based algorithm
//     (Algorithm 5);
//   - deletion: the YN-NN algorithm (Algorithms 6–7), its multi-delete
//     generalisation YNN-NNN (Lemma 4) and the delta-based deletion
//     algorithm (Algorithm 8);
//   - heuristics: KNN (Algorithm 9) and KNN+ (Algorithm 10).
//
// All estimators take an explicit *rng.Source and are deterministic given
// the seed. Player indexing follows the game: players are 0-based; in
// addition scenarios the new point is player n of the (n+1)-player game.
package core

import (
	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/semivalue"
)

// MaxExactPlayers bounds the exact enumerator: it tabulates all 2^n
// coalition utilities, so memory is 8·2^n bytes.
const MaxExactPlayers = 24

// Exact returns the exact Shapley values of every player by complete
// enumeration of the 2^n coalitions. It panics if g has more than
// MaxExactPlayers players. It is the Shapley head of the generalised
// enumerator: the Shapley subset weights are built by the same recurrence
// (w[0] = 1/n, w[s] = w[s−1]·s/(n−s)) and folded with the same
// weight·marginal expression this function used before the semivalue
// layer, so the delegation is bit-identical.
func Exact(g game.Game) []float64 {
	if g.N() == 0 {
		return nil
	}
	return ExactSemivalue(g, semivalue.Shapley())
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// MonteCarlo approximates Shapley values by permutation sampling
// (Algorithm 1): τ random permutations are scanned head to tail and each
// player is credited its marginal contribution; the estimate is the average.
func MonteCarlo(g game.Game, tau int, r *rng.Source) []float64 {
	n := g.N()
	sv := make([]float64, n)
	if n == 0 || tau <= 0 {
		return sv
	}
	perm := make([]int, n)
	w := newPrefixWalker(g)
	empty := g.Value(bitset.New(n))
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		w.reset()
		prev := empty
		for _, p := range perm {
			cur := w.add(p)
			sv[p] += cur - prev
			prev = cur
		}
	}
	for i := range sv {
		sv[i] /= float64(tau)
	}
	return sv
}

// TruncatedMonteCarlo is Monte Carlo with Ghorbani–Zou truncation: once the
// prefix utility is within tol of the full-coalition utility, the remaining
// players of the permutation are credited zero marginal contribution,
// saving their model trainings. Following the paper's experimental setup
// (§VII-A), truncation is only allowed from position ⌈n/2⌉ onward.
func TruncatedMonteCarlo(g game.Game, tau int, tol float64, r *rng.Source) []float64 {
	n := g.N()
	sv := make([]float64, n)
	if n == 0 || tau <= 0 {
		return sv
	}
	perm := make([]int, n)
	w := newPrefixWalker(g)
	empty := g.Value(bitset.New(n))
	full := g.Value(bitset.Full(n))
	minPos := (n + 1) / 2
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		w.reset()
		prev := empty
		for pos, p := range perm {
			if pos >= minPos && abs(full-prev) < tol {
				break // remaining marginals treated as zero
			}
			cur := w.add(p)
			sv[p] += cur - prev
			prev = cur
		}
	}
	for i := range sv {
		sv[i] /= float64(tau)
	}
	return sv
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BaseAdd is the paper's "Base" baseline for additions: original players
// keep their precomputed values and every added player receives the average
// of the original values.
func BaseAdd(oldSV []float64, added int) []float64 {
	n := len(oldSV)
	out := make([]float64, n+added)
	copy(out, oldSV)
	avg := 0.0
	if n > 0 {
		for _, v := range oldSV {
			avg += v
		}
		avg /= float64(n)
	}
	for i := 0; i < added; i++ {
		out[n+i] = avg
	}
	return out
}
