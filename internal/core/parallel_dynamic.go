package core

import (
	"fmt"
	"runtime"
	"sync"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// The paper notes (§VII-G) that MC, TMC, Pivot-d and Delta all parallelise
// across sampled permutations. This file provides the parallel update
// variants; they merge per-worker partial sums exactly like
// MonteCarloParallel and are deterministic for a fixed (seed, workers).

// DeltaAddParallel is DeltaAdd with the τ permutations spread over workers
// goroutines (≤0 selects GOMAXPROCS).
func DeltaAddParallel(gPlus game.Game, oldSV []float64, tau, workers int, r *rng.Source) ([]float64, error) {
	n := len(oldSV)
	if gPlus.N() != n+1 {
		return nil, fmt.Errorf("core: DeltaAddParallel game has %d players, want %d", gPlus.N(), n+1)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: DeltaAddParallel requires tau > 0, got %d", tau)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tau {
		workers = tau
	}
	pivot := n
	m := n + 1
	empty := bitset.New(m)
	onlyPivot := bitset.FromIndices(m, pivot)
	uEmpty := gPlus.Value(empty)
	uPivot := gPlus.Value(onlyPivot)

	type partial struct {
		dsv   []float64
		newSV float64
	}
	partials := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := tau / workers
		if w < tau%workers {
			quota++
		}
		sub := r.Split()
		partials[w].dsv = make([]float64, n)
		wg.Add(1)
		go func(w, quota int, sub *rng.Source) {
			defer wg.Done()
			perm := make([]int, n)
			// Walkers are built inside the goroutine: incremental
			// evaluators are single-goroutine state, one pair per worker.
			wkNo := newPrefixWalker(gPlus)
			wkWith := newPrefixWalker(gPlus)
			for k := 0; k < quota; k++ {
				sub.Perm(perm)
				wkNo.reset()
				wkWith.reset()
				prevNo := uEmpty
				prevWith := wkWith.seed(pivot, uPivot)
				partials[w].newSV += prevWith - prevNo
				for pos, p := range perm {
					curNo := wkNo.add(p)
					curWith := wkWith.add(p)
					dmc := (curWith - curNo) - (prevWith - prevNo)
					partials[w].dsv[p] += dmc * float64(pos+1) / float64(n+1)
					partials[w].newSV += curWith - curNo
					prevNo, prevWith = curNo, curWith
				}
			}
		}(w, quota, sub)
	}
	wg.Wait()

	out := make([]float64, m)
	var newSV float64
	for i := 0; i < n; i++ {
		var d float64
		for w := range partials {
			d += partials[w].dsv[i]
		}
		out[i] = oldSV[i] + d/float64(tau)
	}
	for w := range partials {
		newSV += partials[w].newSV
	}
	out[pivot] = newSV / float64(tau) / float64(n+1)
	return out, nil
}

// AddDifferentParallel is PivotState.AddDifferent with the τ2 fresh
// permutations spread over workers goroutines. Like AddDifferent it
// invalidates stored permutations.
func (st *PivotState) AddDifferentParallel(gPlus game.Game, tau2, workers int, r *rng.Source) ([]float64, error) {
	n := st.N()
	if gPlus.N() != n+1 {
		return nil, fmt.Errorf("core: AddDifferentParallel game has %d players, want %d", gPlus.N(), n+1)
	}
	if tau2 <= 0 {
		return nil, fmt.Errorf("core: AddDifferentParallel requires tau2 > 0, got %d", tau2)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tau2 {
		workers = tau2
	}
	pivot := n
	m := n + 1

	type partial struct {
		rsv  []float64
		dlsv []float64
	}
	partials := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := tau2 / workers
		if w < tau2%workers {
			quota++
		}
		sub := r.Split()
		partials[w].rsv = make([]float64, m)
		partials[w].dlsv = make([]float64, m)
		wg.Add(1)
		go func(w, quota int, sub *rng.Source) {
			defer wg.Done()
			perm := make([]int, m)
			wk := newPrefixWalker(gPlus)
			var uEmpty float64
			if wk.incremental() {
				uEmpty = gPlus.Value(bitset.New(m))
			}
			for k := 0; k < quota; k++ {
				sub.Perm(perm)
				t := 0
				for pos, q := range perm {
					if q == pivot {
						t = pos
						break
					}
				}
				p := sub.Intn(m + 1)
				wk.reset()
				prev := wk.advance(perm, t, uEmpty)
				for pos := t; pos < m; pos++ {
					q := perm[pos]
					cur := wk.add(q)
					mc := cur - prev
					partials[w].rsv[q] += mc
					if pos < p {
						partials[w].dlsv[q] += mc
					}
					prev = cur
				}
			}
		}(w, quota, sub)
	}
	wg.Wait()

	sv := make([]float64, m)
	lsv := make([]float64, m)
	for i := 0; i < m; i++ {
		var l, rsvSum, dlsvSum float64
		if i < n {
			l = st.LSV[i]
		}
		for w := range partials {
			rsvSum += partials[w].rsv[i]
			dlsvSum += partials[w].dlsv[i]
		}
		sv[i] = l + rsvSum/float64(tau2)
		lsv[i] = 2.0/3.0*l + dlsvSum/float64(tau2)
	}
	st.SV = sv
	st.LSV = lsv
	st.Tau = tau2
	st.perms = nil
	st.slots = nil
	return append([]float64(nil), sv...), nil
}
