//go:build unix

package core

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// spill32 is the tiled float32 layout backed by an mmap'd scratch file:
// the OS pages cold tiles out under memory pressure, so the store's
// logical size is bounded by disk, not RAM. The heap holds only the tile
// bookkeeping (dirty flags and the layout) — a few bytes per 256 KiB
// tile.
//
// Writes land in the shared mapping; flush() msyncs the dirty tiles so a
// crash after a completed fill loses nothing, and close() (also run by a
// GC finalizer as a leak backstop) unmaps and deletes the scratch file.
// The file is private per store — spill stores are rebuilt by Refresh,
// like every other derived artifact, never shared between processes.
type spill32 struct {
	layout tileLayout
	data   []float32 // the full mapping, flat row-major
	raw    []byte    // the mmap region backing data
	path   string
	file   *os.File
	// dirty flags one bit of work per tile. Tiles are row-aligned and the
	// stores stripe writers by row, so each flag has a single writer — no
	// atomics needed.
	dirty  []bool
	closed bool
}

func newSpill32(entries, rowLen int, dir string) (storeBackend, error) {
	l := newTileLayout(entries, rowLen)
	f, err := os.CreateTemp(dir, "dynshap-spill-*.f32")
	if err != nil {
		return nil, fmt.Errorf("core: creating spill file: %w", err)
	}
	size := int64(entries) * 4
	sp := &spill32{layout: l, path: f.Name(), file: f, dirty: make([]bool, l.numTiles())}
	if entries > 0 {
		if err := f.Truncate(size); err != nil {
			f.Close()
			os.Remove(sp.path)
			return nil, fmt.Errorf("core: sizing spill file to %d bytes: %w", size, err)
		}
		raw, err := syscall.Mmap(int(f.Fd()), 0, int(size),
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
		if err != nil {
			f.Close()
			os.Remove(sp.path)
			return nil, fmt.Errorf("core: mmap of %d-byte spill store: %w", size, err)
		}
		sp.raw = raw
		sp.data = unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), entries)
	}
	// Leak backstop: a store dropped without Close (e.g. a session state
	// discarded by an update) still releases its mapping and scratch file.
	runtime.SetFinalizer(sp, func(s *spill32) { s.close() })
	return sp, nil
}

func (b *spill32) at(idx int) float64 { return float64(b.data[idx]) }

func (b *spill32) add(idx int, x float64) {
	b.data[idx] = float32(float64(b.data[idx]) + x)
	b.dirty[b.layout.tileOf(idx)] = true
}

func (b *spill32) scale(f float64) {
	for i := range b.data {
		b.data[i] = float32(float64(b.data[i]) * f)
	}
	for t := range b.dirty {
		b.dirty[t] = true
	}
}

func (b *spill32) logicalBytes() int64 { return int64(b.layout.entries) * 4 }

// heapBytes is the bookkeeping only: the mapping is file-backed and
// evictable, which is the whole point of the backend.
func (b *spill32) heapBytes() int64 {
	return int64(len(b.dirty)) + int64(unsafe.Sizeof(*b))
}

func (b *spill32) backendKind() BackendKind { return BackendSpill32 }

func (b *spill32) export() []float64 {
	out := make([]float64, len(b.data))
	for i, v := range b.data {
		out[i] = float64(v)
	}
	return out
}

func (b *spill32) load(vals []float64) {
	for i, v := range vals {
		b.data[i] = float32(v)
	}
	for t := range b.dirty {
		b.dirty[t] = true
	}
}

// flush msyncs every dirty tile (widened to page boundaries, as msync
// requires) and clears the flags. Clean tiles cost nothing.
func (b *spill32) flush() error {
	if len(b.raw) == 0 {
		return nil
	}
	page := int64(os.Getpagesize())
	base := uintptr(unsafe.Pointer(&b.raw[0]))
	for t, d := range b.dirty {
		if !d {
			continue
		}
		start, end := b.layout.tileSpan(t)
		lo := (int64(start) * 4 / page) * page
		hi := int64(end) * 4
		if hi > int64(len(b.raw)) {
			hi = int64(len(b.raw))
		}
		if _, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
			base+uintptr(lo), uintptr(hi-lo), syscall.MS_SYNC); errno != 0 {
			return fmt.Errorf("core: msync of spill tile %d: %w", t, errno)
		}
		b.dirty[t] = false
	}
	return nil
}

func (b *spill32) close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	runtime.SetFinalizer(b, nil)
	var first error
	if b.raw != nil {
		if err := syscall.Munmap(b.raw); err != nil && first == nil {
			first = fmt.Errorf("core: munmap spill store: %w", err)
		}
		b.raw, b.data = nil, nil
	}
	if err := b.file.Close(); err != nil && first == nil {
		first = err
	}
	if err := os.Remove(b.path); err != nil && first == nil {
		first = err
	}
	return first
}
