package core

import (
	"fmt"

	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/stat"
)

// KNNAdd runs Algorithm 9 (heuristic KNN for additions): by the symmetry
// axiom, points with similar features earn similar values, so each added
// point is assigned the mean Shapley value of its k nearest original
// neighbours while the original points keep their values unchanged.
// train holds the original points (aligned with oldSV); the returned slice
// appends one value per added point.
func KNNAdd(oldSV []float64, train *dataset.Dataset, added []dataset.Point, k int) ([]float64, error) {
	n := len(oldSV)
	if train.Len() != n {
		return nil, fmt.Errorf("core: KNNAdd train has %d points, oldSV %d", train.Len(), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("core: KNNAdd needs a non-empty original dataset")
	}
	if k <= 0 {
		k = 5
	}
	out := make([]float64, n, n+len(added))
	copy(out, oldSV)
	for _, p := range added {
		neighbors := train.Nearest(p.X, k)
		avg := 0.0
		for _, nb := range neighbors {
			avg += oldSV[nb]
		}
		out = append(out, avg/float64(len(neighbors)))
	}
	return out, nil
}

// KNNDelete is the deletion variant of Algorithm 9 sketched in §VI: each
// deleted point's value is redistributed evenly over its k nearest
// surviving neighbours (preserving the balance axiom's total), and deleted
// entries are zeroed.
func KNNDelete(oldSV []float64, train *dataset.Dataset, deleted []int, k int) ([]float64, error) {
	n := len(oldSV)
	if train.Len() != n {
		return nil, fmt.Errorf("core: KNNDelete train has %d points, oldSV %d", train.Len(), n)
	}
	if k <= 0 {
		k = 5
	}
	gone := make(map[int]bool, len(deleted))
	for _, p := range deleted {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("core: KNNDelete point %d out of range [0,%d)", p, n)
		}
		gone[p] = true
	}
	if len(gone) == n {
		return make([]float64, n), nil
	}
	out := append([]float64(nil), oldSV...)
	for p := range gone {
		// Nearest surviving neighbours of the departing point.
		cands := train.Nearest(train.Points[p].X, k+len(gone))
		share := make([]int, 0, k)
		for _, c := range cands {
			if c != p && !gone[c] {
				share = append(share, c)
				if len(share) == k {
					break
				}
			}
		}
		if len(share) == 0 {
			continue
		}
		for _, c := range share {
			out[c] += oldSV[p] / float64(len(share))
		}
	}
	for p := range gone {
		out[p] = 0
	}
	return out, nil
}

// KNNPlusConfig parameterises Algorithm 10.
type KNNPlusConfig struct {
	// K is the neighbour count for assigning values to added points
	// (and Algorithm 9 compatibility). Zero selects 5.
	K int
	// CurveSamples is d in Algorithm 10: how many probe points have their
	// ΔSV measured to fit the similarity→change curves. Zero selects 8.
	CurveSamples int
	// CurveTau is the Monte Carlo sample size used for each probe
	// measurement. Zero selects 2·n.
	CurveTau int
	// Degree is the fitted polynomial's degree. Zero selects 2.
	Degree int
	// SubsampleSize caps the number of players the curve-measurement Monte
	// Carlo runs operate on. On large datasets measuring ΔSV on the full
	// game would cost more than plain MC (defeating the heuristic); probing
	// a subsample and rescaling keeps KNN+ orders of magnitude cheaper, as
	// in the paper's Tables XI–XIV. Zero selects min(n, 60).
	SubsampleSize int
}

func (c KNNPlusConfig) withDefaults(n int) KNNPlusConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if c.CurveSamples <= 0 {
		c.CurveSamples = 8
	}
	if c.SubsampleSize <= 0 {
		c.SubsampleSize = 60
	}
	if c.SubsampleSize > n {
		c.SubsampleSize = n
	}
	if c.CurveTau <= 0 {
		c.CurveTau = 2 * c.SubsampleSize
	}
	if c.Degree <= 0 {
		c.Degree = 2
	}
	return c
}

// CurveModel holds the fitted per-label similarity→ΔSV functions of
// Algorithm 10 so they can be reused across several updates.
type CurveModel struct {
	coeffs  map[int][]float64
	maxDist map[int]float64
	// scale calibrates subsample-measured changes to the full game: Shapley
	// values (and their changes) shrink roughly like 1/n as the grand
	// coalition grows, so curves fitted on an s-player subsample are scaled
	// by s/n when applied to the n-player game.
	scale float64
}

// Eval returns the predicted Shapley change of a point at the given
// distance from a new/deleted point with the given label. Distances beyond
// the fitted range and unseen labels predict 0 (polynomials diverge when
// extrapolated).
func (cm *CurveModel) Eval(label int, dist float64) float64 {
	c, ok := cm.coeffs[label]
	if !ok || dist > cm.maxDist[label] {
		return 0
	}
	return cm.scale * stat.PolyEval(c, dist)
}

// Labels returns the labels for which a curve was fitted.
func (cm *CurveModel) Labels() []int {
	out := make([]int, 0, len(cm.coeffs))
	for l := range cm.coeffs {
		out = append(out, l)
	}
	return out
}

// FitCurves performs the measurement stage of Algorithm 10 (lines 5-8): it
// samples cfg.CurveSamples probe points, measures how the remaining players'
// Shapley values change when each probe is removed — the same quantity, with
// opposite sign conventions, that governs additions (Figure 2 of the paper)
// — and fits one polynomial per probe label mapping distance to change.
func FitCurves(g game.Game, train *dataset.Dataset, cfg KNNPlusConfig, r *rng.Source) (*CurveModel, error) {
	n := g.N()
	if train.Len() != n {
		return nil, fmt.Errorf("core: FitCurves train has %d points, game %d", train.Len(), n)
	}
	if n < 3 {
		return nil, fmt.Errorf("core: FitCurves needs ≥3 players, got %d", n)
	}
	cfg = cfg.withDefaults(n)
	// Measure on a subsample: restrict the game to `s` random players so the
	// probe Monte Carlo runs cost O(s²·τ) utility evaluations instead of
	// O(n²·τ). With s = n this is the paper's Algorithm 10 verbatim.
	s := cfg.SubsampleSize
	if cfg.CurveSamples > s {
		cfg.CurveSamples = s
	}
	sample := r.Sample(n, s)
	inSample := make(map[int]bool, s)
	for _, i := range sample {
		inSample[i] = true
	}
	var removed []int
	for i := 0; i < n; i++ {
		if !inSample[i] {
			removed = append(removed, i)
		}
	}
	base := game.Game(g)
	players := make([]int, n)
	for i := range players {
		players[i] = i
	}
	if len(removed) > 0 {
		rg := game.NewRestrict(g, removed...)
		base = rg
		players = rg.Keep()
	}
	baseSV := MonteCarlo(base, cfg.CurveTau, r)
	probes := r.Sample(base.N(), cfg.CurveSamples)
	xsByLabel := map[int][]float64{}
	ysByLabel := map[int][]float64{}
	for _, t := range probes {
		sub := game.NewRestrict(base, t)
		subSV := MonteCarlo(sub, cfg.CurveTau, r)
		probeOrig := players[t]
		label := train.Points[probeOrig].Y
		// Map restricted indices back to original players.
		keep := sub.Keep()
		for ri, bi := range keep {
			orig := players[bi]
			// ΔSV of `orig` caused by the probe's PRESENCE: with − without.
			d := baseSV[bi] - subSV[ri]
			xsByLabel[label] = append(xsByLabel[label], dataset.Euclidean(train.Points[probeOrig].X, train.Points[orig].X))
			ysByLabel[label] = append(ysByLabel[label], d)
		}
	}
	cm := &CurveModel{
		coeffs:  map[int][]float64{},
		maxDist: map[int]float64{},
		scale:   float64(base.N()) / float64(n),
	}
	for label, xs := range xsByLabel {
		c, err := stat.PolyFit(xs, ysByLabel[label], cfg.Degree)
		if err != nil {
			// Not enough distinct probes for this label; skip the curve —
			// Eval then predicts 0 change, degrading gracefully to KNN.
			continue
		}
		cm.coeffs[label] = c
		maxD := 0.0
		for _, x := range xs {
			if x > maxD {
				maxD = x
			}
		}
		cm.maxDist[label] = maxD
	}
	return cm, nil
}

// KNNPlusAdd runs Algorithm 10: fit (or reuse) the per-label ΔSV curves,
// shift every original player's value by the predicted effect of each added
// point, and assign each added point the mean value of its k nearest
// original neighbours. Pass a nil curves to fit them on the spot.
func KNNPlusAdd(g game.Game, train *dataset.Dataset, oldSV []float64, added []dataset.Point, curves *CurveModel, cfg KNNPlusConfig, r *rng.Source) ([]float64, error) {
	n := len(oldSV)
	if train.Len() != n {
		return nil, fmt.Errorf("core: KNNPlusAdd train has %d points, oldSV %d", train.Len(), n)
	}
	cfg = cfg.withDefaults(n)
	if curves == nil {
		var err error
		curves, err = FitCurves(g, train, cfg, r)
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, n, n+len(added))
	copy(out, oldSV)
	for _, p := range added {
		for j := 0; j < n; j++ {
			out[j] += curves.Eval(p.Y, dataset.Euclidean(p.X, train.Points[j].X))
		}
	}
	for _, p := range added {
		neighbors := train.Nearest(p.X, cfg.K)
		avg := 0.0
		for _, nb := range neighbors {
			avg += oldSV[nb]
		}
		out = append(out, avg/float64(len(neighbors)))
	}
	return out, nil
}

// KNNPlusDelete is the deletion variant of Algorithm 10 (§VI): every
// survivor's value moves by the negated predicted effect of each departing
// point's presence; deleted entries are zeroed.
func KNNPlusDelete(g game.Game, train *dataset.Dataset, oldSV []float64, deleted []int, curves *CurveModel, cfg KNNPlusConfig, r *rng.Source) ([]float64, error) {
	n := len(oldSV)
	if train.Len() != n {
		return nil, fmt.Errorf("core: KNNPlusDelete train has %d points, oldSV %d", train.Len(), n)
	}
	cfg = cfg.withDefaults(n)
	if curves == nil {
		var err error
		curves, err = FitCurves(g, train, cfg, r)
		if err != nil {
			return nil, err
		}
	}
	gone := make(map[int]bool, len(deleted))
	for _, p := range deleted {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("core: KNNPlusDelete point %d out of range [0,%d)", p, n)
		}
		gone[p] = true
	}
	out := append([]float64(nil), oldSV...)
	for p := range gone {
		for j := 0; j < n; j++ {
			if j == p || gone[j] {
				continue
			}
			// Removing p cancels the effect its presence had on j.
			out[j] -= curves.Eval(train.Points[p].Y, dataset.Euclidean(train.Points[p].X, train.Points[j].X))
		}
	}
	for p := range gone {
		out[p] = 0
	}
	return out, nil
}
