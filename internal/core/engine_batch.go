package core

import (
	"fmt"
	"sync"
	"time"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// This file implements the batched update walk: for a batch of k pending
// points, each sampled permutation is walked ONCE, with all k points
// evaluated against shared prefix state, instead of k separate τ-walks
// each re-deriving its prefixes.
//
// Two passes, one per addition family:
//
//   - BatchDeltaAdd shares the no-pivot chain. The per-point DeltaAdd pays
//     two prefix walks per permutation (with and without the new point),
//     but the without-chain is the SAME walk for every pending point — so
//     the producer walks it once per permutation and the k with-chains
//     read its utilities from a buffer, cutting the evaluation count from
//     2·k·n to (k+1)·n per permutation before any parallelism.
//
//   - BatchAddSame shares the stored-permutation evolution. The producer
//     threads each stored permutation through all k pivot insertions
//     (slot draws in arrival order), and the k suffix walks — one per
//     pending point — proceed independently from the recorded insertion
//     slots.
//
// Parallelism stripes over the PENDING POINTS, not the permutations:
// every per-point accumulator (dsv_j, rsv_j, dlsv_j, newSV_j) is owned by
// exactly one worker, which processes chunks in issue order and
// permutations in order within a chunk, so each accumulator receives its
// floating-point additions in exactly the sequential reference's order.
// All randomness is consumed in the producer, in the reference's
// per-source order. Together that makes both passes bit-identical to
// their batch.go references — and, for the pivot form, to the session's
// historic per-point AddSame loop — at any worker count.
//
// Neither pass supports adaptive early termination: the stopping decision
// would couple the k points' budgets (they share permutations), so a
// batch always spends its full τ. Stats report Issued == Budget.

// batchScratch holds the batched walks' cached buffers (see the Engine
// field's doc for the ownership argument).
type batchScratch struct {
	perm  []int
	utils []float64
	dsv   [][]float64
	rsv   [][]float64
	dlsv  [][]float64
	steps []pivotBatchStep

	deltaSlots []*deltaBatchChunk
	pivotSlots []*pivotBatchChunk
	delSlots   []*deleteSameChunk
}

// reuseInts returns a length-n int buffer, reusing s's storage when it
// fits. Contents are unspecified — callers overwrite before reading.
func reuseInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// reuseFloats is reuseInts for float64 buffers.
func reuseFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// zeroMat returns a k×n matrix of zeroed accumulators, reusing *dst's
// rows when they fit.
func zeroMat(dst *[][]float64, k, n int) [][]float64 {
	m := *dst
	if cap(m) < k {
		grown := make([][]float64, k)
		copy(grown, m[:cap(m)])
		m = grown
	} else {
		m = m[:k]
	}
	for j := range m {
		if cap(m[j]) < n {
			m[j] = make([]float64, n)
		} else {
			m[j] = m[j][:n]
			clear(m[j])
		}
	}
	*dst = m
	return m
}

// BatchDeltaAdd runs the batched delta addition (Algorithm 5 generalised
// to k pending points): gPlus is the (n+k)-player updated game whose last
// k players are the pending points in arrival order, oldSV the n
// pre-batch values. It returns n+k entries: every original player's value
// adjusted by the k points' summed deltas (folded in arrival order), and
// one fresh estimate per pending point. Bit-identical to BatchDeltaAddSeq
// for the same seed at every worker count; at k = 1 bit-identical to
// DeltaAdd.
func (e *Engine) BatchDeltaAdd(gPlus game.Game, oldSV []float64, k, tau int, r *rng.Source) ([]float64, error) {
	n := len(oldSV)
	if err := checkBatchAdd(gPlus, n, k); err != nil {
		return nil, err
	}
	if tau <= 0 {
		return nil, fmt.Errorf("core: BatchDeltaAdd requires tau > 0, got %d", tau)
	}
	m := n + k
	workers := e.effectiveWorkers(k)
	e.stats = EngineStats{Budget: tau, Workers: workers}
	e.headVals = nil

	uEmpty := gPlus.Value(bitset.New(m))
	uPivot := make([]float64, k)
	for j := 0; j < k; j++ {
		uPivot[j] = gPlus.Value(bitset.FromIndices(m, n+j))
	}
	dsv := zeroMat(&e.scratch.dsv, k, n)
	newSV := make([]float64, k)
	// Extra heads mirror the Shapley batch semantics: each pending point's
	// head differential is measured against the shared n-player no-pivot
	// chain (the same n → n+1 tables for every j) and the deltas are summed
	// in arrival order at the end. Each point's sums are owned by exactly
	// one worker, like its dsv/newSV.
	ht := newAddHeadTables(e.heads, n)
	var hsums []*addHeadSums
	if ht != nil {
		hsums = make([]*addHeadSums, k)
		for j := range hsums {
			hsums[j] = newAddHeadSums(ht, n)
		}
	}

	start := time.Now()
	if workers == 1 {
		wBase := newPrefixWalker(gPlus)
		wWith := newPrefixWalker(gPlus)
		perm := reuseInts(e.scratch.perm, n)
		utils := reuseFloats(e.scratch.utils, n)
		e.scratch.perm, e.scratch.utils = perm, utils
		for t := 0; t < tau; t++ {
			r.Perm(perm)
			wBase.reset()
			for pos, p := range perm {
				utils[pos] = wBase.add(p)
			}
			for j := 0; j < k; j++ {
				var hs *addHeadSums
				if hsums != nil {
					hs = hsums[j]
				}
				batchDeltaStep(wWith, perm, utils, uEmpty, uPivot[j], n+j, n, dsv[j], &newSV[j], hs)
			}
		}
	} else {
		e.runDeltaBatchStriped(gPlus, n, k, tau, r, uEmpty, uPivot, dsv, newSV, hsums, workers)
	}
	e.stats.Seconds = time.Since(start).Seconds()
	e.stats.Issued = tau
	e.stats.Updates = int64(tau) * int64(k) * int64(n)

	out := make([]float64, m)
	copy(out, oldSV)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			out[i] += dsv[j][i] / float64(tau)
		}
		out[n+j] = newSV[j] / float64(tau) / float64(n+1)
	}
	if hsums != nil {
		hv := make([][]float64, len(e.heads))
		for h := range e.heads {
			vals := make([]float64, m)
			if e.headBase != nil && h < len(e.headBase) {
				copy(vals, e.headBase[h])
			}
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					vals[i] += hsums[j].sums[h][i] / float64(tau)
				}
				vals[n+j] = hsums[j].pivot[h] / float64(tau)
			}
			hv[h] = vals
		}
		e.headVals = hv
	}
	return out, nil
}

// batchDeltaStep runs one pending point's with-chain over one walked
// permutation — exactly DeltaAdd's inner loop with the no-pivot chain's
// utilities read from the shared buffer instead of re-walked.
func batchDeltaStep(w *prefixWalker, perm []int, utils []float64, uEmpty, uPivot float64, pivot, n int, dsv []float64, newSV *float64, hs *addHeadSums) {
	w.reset()
	prevNo := uEmpty
	prevWith := w.seed(pivot, uPivot)
	d0 := prevWith - prevNo
	*newSV += d0
	if hs != nil {
		hs.foldD0(d0)
	}
	for pos, p := range perm {
		curNo := utils[pos]
		curWith := w.add(p)
		dmc := (curWith - curNo) - (prevWith - prevNo)
		dsv[p] += dmc * float64(pos+1) / float64(n+1)
		dd := curWith - curNo
		*newSV += dd
		if hs != nil {
			hs.foldPos(pos, p, curNo-prevNo, curWith-prevWith, dd)
		}
		prevNo, prevWith = curNo, curWith
	}
}

// deltaBatchChunk is one batch of walked permutations in flight between
// the producer and the point-striped workers.
type deltaBatchChunk struct {
	count int
	perms [][]int
	utils [][]float64
	wg    sync.WaitGroup
}

// runDeltaBatchStriped is BatchDeltaAdd's parallel path: the producer
// samples permutations and walks the shared no-pivot chain into
// double-buffered chunks; worker w owns the contiguous pending-point
// stripe jlo ≤ j < jhi and runs only those with-chains. Each dsv[j] /
// newSV[j] is written by exactly one worker, in chunk issue order, so the
// accumulation order — and therefore every bit — matches the serial path.
func (e *Engine) runDeltaBatchStriped(gPlus game.Game, n, k, tau int, r *rng.Source, uEmpty float64, uPivot []float64, dsv [][]float64, newSV []float64, hsums []*addHeadSums, workers int) {
	const depth = 2
	if e.scratch.deltaSlots == nil {
		e.scratch.deltaSlots = make([]*deltaBatchChunk, depth)
		for s := range e.scratch.deltaSlots {
			e.scratch.deltaSlots[s] = &deltaBatchChunk{
				perms: make([][]int, e.chunk),
				utils: make([][]float64, e.chunk),
			}
		}
	}
	slots := e.scratch.deltaSlots
	for _, c := range slots {
		for p := 0; p < e.chunk; p++ {
			c.perms[p] = reuseInts(c.perms[p], n)
			c.utils[p] = reuseFloats(c.utils[p], n)
		}
	}

	chans := make([]chan *deltaBatchChunk, workers)
	var wwg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		chans[wk] = make(chan *deltaBatchChunk, depth)
		jlo, jhi := wk*k/workers, (wk+1)*k/workers
		wwg.Add(1)
		go func(jlo, jhi int, ch chan *deltaBatchChunk) {
			defer wwg.Done()
			w := newPrefixWalker(gPlus)
			for c := range ch {
				for p := 0; p < c.count; p++ {
					for j := jlo; j < jhi; j++ {
						var hs *addHeadSums
						if hsums != nil {
							hs = hsums[j]
						}
						batchDeltaStep(w, c.perms[p], c.utils[p], uEmpty, uPivot[j], n+j, n, dsv[j], &newSV[j], hs)
					}
				}
				c.wg.Done()
			}
		}(jlo, jhi, chans[wk])
	}

	wBase := newPrefixWalker(gPlus)
	issued := 0
	for si := 0; issued < tau; si++ {
		c := slots[si%depth]
		c.wg.Wait() // previous dispatch of this buffer fully drained
		count := e.chunk
		if rem := tau - issued; rem < count {
			count = rem
		}
		c.count = count
		for p := 0; p < count; p++ {
			perm := c.perms[p]
			r.Perm(perm)
			wBase.reset()
			u := c.utils[p]
			for pos, q := range perm {
				u[pos] = wBase.add(q)
			}
		}
		c.wg.Add(workers)
		for _, ch := range chans {
			ch <- c
		}
		issued += count
	}
	for _, ch := range chans {
		close(ch)
	}
	wwg.Wait()
}

// pivotBatchStep records one pending point's insertion into one stored
// permutation: the evolved permutation (pivots 0..j included), the slot
// the point landed in (where the suffix walk starts), and the slot drawn
// for the NEXT pivot (the dlsv cutoff).
type pivotBatchStep struct {
	perm  []int
	tslot int
	next  int
}

// pivotBatchChunk is one batch of evolved stored permutations in flight.
type pivotBatchChunk struct {
	count int
	steps [][]pivotBatchStep // [perm][pending point]
	wg    sync.WaitGroup
}

// BatchAddSame runs the batched Pivot-s walk (Algorithm 3 generalised to
// k pending points): every stored permutation is threaded through all k
// pivot insertions by the producer, and the k suffix walks proceed from
// the recorded slots, striped across workers by pending point. st is
// mutated exactly as k successive AddSame calls would mutate it (evolved
// permutations, final slots, folded SV/LSV); rs supplies one RNG source
// per pending point in arrival order, each consumed once per stored
// permutation — the same per-source order as the sequential loop.
// Bit-identical to BatchAddSameSeq (and therefore to the per-point
// AddSame loop) for the same sources at every worker count; requires a
// state built with keepPerms.
func (e *Engine) BatchAddSame(st *PivotState, gPlus game.Game, k int, rs []*rng.Source) ([]float64, error) {
	if st.perms == nil {
		return nil, ErrNoPermutations
	}
	n := st.N()
	if err := checkBatchAdd(gPlus, n, k); err != nil {
		return nil, err
	}
	if len(rs) != k {
		return nil, fmt.Errorf("core: BatchAddSame got %d RNG sources for %d points", len(rs), k)
	}
	m := n + k
	workers := e.effectiveWorkers(k)
	e.stats = EngineStats{Budget: st.Tau, Workers: workers}
	// The pivot walk cannot carry extra heads: its suffix walks and LSV
	// recurrence are Shapley-specific (the planner never routes a
	// multi-head update here).
	e.headVals = nil

	rsv := zeroMat(&e.scratch.rsv, k, m)
	dlsv := zeroMat(&e.scratch.dlsv, k, m)
	probe := newPrefixWalker(gPlus)
	var uEmpty float64
	if probe.incremental() {
		uEmpty = gPlus.Value(bitset.New(m))
	}

	start := time.Now()
	var updates int64
	if workers == 1 {
		steps := reuseSteps(&e.scratch.steps, k)
		for t := range st.perms {
			e.evolvePivotPerm(st, t, n, k, rs, steps)
			for j := 0; j < k; j++ {
				updates += pivotBatchWalk(probe, steps[j], uEmpty, rsv[j], dlsv[j])
			}
		}
	} else {
		updates = e.runPivotBatchStriped(st, gPlus, n, k, rs, uEmpty, rsv, dlsv, workers)
	}
	e.stats.Seconds = time.Since(start).Seconds()
	e.stats.Issued = st.Tau
	e.stats.Updates = updates

	// Fold the k points' contributions in arrival order — the exact
	// SV/LSV recurrence k successive AddSame folds apply, with each step's
	// lsv feeding the next step's reuse term.
	sv := make([]float64, m)
	lsv := make([]float64, m)
	copy(lsv, st.LSV)
	for j := 0; j < k; j++ {
		mj := n + j + 1
		for i := 0; i < mj; i++ {
			l := lsv[i]
			sv[i] = l + rsv[j][i]/float64(st.Tau)
			lsv[i] = 2.0/3.0*l + dlsv[j][i]/float64(st.Tau)
		}
	}
	st.SV = sv
	st.LSV = lsv
	return append([]float64(nil), sv...), nil
}

// reuseSteps returns a length-k step buffer, reusing *dst's entries (and
// through them the per-step perm buffers evolvePivotPerm recycles).
func reuseSteps(dst *[]pivotBatchStep, k int) []pivotBatchStep {
	s := *dst
	if cap(s) < k {
		grown := make([]pivotBatchStep, k)
		copy(grown, s[:cap(s)])
		s = grown
	} else {
		s = s[:k]
	}
	*dst = s
	return s
}

// evolvePivotPerm threads stored permutation t through all k pivot
// insertions, recording one step per pending point, and installs the
// final permutation and slot back into the state — exactly what k
// successive AddSame iterations over this permutation do. It consumes one
// Intn draw from each source, in arrival order.
//
// Each step's perm buffer is recycled from the previous call (steps
// buffers are single-owner: the serial loop and the chunk slots both
// drain a step's walk before re-evolving into it), so the k insertions
// cost zero steady-state allocations. The final permutation is COPIED
// into the state — st.perms[t] is freshly cloned by the session for this
// update and must outlive the recycled buffers.
func (e *Engine) evolvePivotPerm(st *PivotState, t, n, k int, rs []*rng.Source, steps []pivotBatchStep) {
	cur := st.perms[t]
	tslot := st.slots[t]
	for j := 0; j < k; j++ {
		pj := steps[j].perm
		if cap(pj) < len(cur)+1 {
			pj = make([]int, 0, len(cur)+1)
		} else {
			pj = pj[:0]
		}
		pj = append(pj, cur[:tslot]...)
		pj = append(pj, n+j)
		pj = append(pj, cur[tslot:]...)
		next := rs[j].Intn(len(pj) + 1)
		steps[j] = pivotBatchStep{perm: pj, tslot: tslot, next: next}
		cur, tslot = pj, next
	}
	st.perms[t] = append(st.perms[t][:0], cur...)
	st.slots[t] = tslot
}

// pivotBatchWalk evaluates one pending point's suffix walk over one
// evolved permutation — AddSame's inner loop verbatim — and returns the
// number of accumulator updates for throughput accounting.
func pivotBatchWalk(w *prefixWalker, s pivotBatchStep, uEmpty float64, rsv, dlsv []float64) int64 {
	w.reset()
	prev := w.advance(s.perm, s.tslot, uEmpty)
	for pos := s.tslot; pos < len(s.perm); pos++ {
		q := s.perm[pos]
		cur := w.add(q)
		mc := cur - prev
		rsv[q] += mc
		if pos < s.next {
			dlsv[q] += mc
		}
		prev = cur
	}
	return int64(len(s.perm) - s.tslot)
}

// runPivotBatchStriped is BatchAddSame's parallel path: the producer
// evolves stored permutations (consuming all randomness) into
// double-buffered chunks; worker w walks only its pending-point stripe.
// Per-point accumulators are single-writer and fed in chunk issue order,
// so the result is bit-identical to the serial path.
func (e *Engine) runPivotBatchStriped(st *PivotState, gPlus game.Game, n, k int, rs []*rng.Source, uEmpty float64, rsv, dlsv [][]float64, workers int) int64 {
	const depth = 2
	if e.scratch.pivotSlots == nil {
		e.scratch.pivotSlots = make([]*pivotBatchChunk, depth)
		for s := range e.scratch.pivotSlots {
			e.scratch.pivotSlots[s] = &pivotBatchChunk{steps: make([][]pivotBatchStep, e.chunk)}
		}
	}
	slots := e.scratch.pivotSlots
	for _, c := range slots {
		for p := 0; p < e.chunk; p++ {
			c.steps[p] = reuseSteps(&c.steps[p], k)
		}
	}

	counts := make([]int64, workers)
	chans := make([]chan *pivotBatchChunk, workers)
	var wwg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		chans[wk] = make(chan *pivotBatchChunk, depth)
		jlo, jhi := wk*k/workers, (wk+1)*k/workers
		wwg.Add(1)
		go func(wk, jlo, jhi int, ch chan *pivotBatchChunk) {
			defer wwg.Done()
			w := newPrefixWalker(gPlus)
			for c := range ch {
				for p := 0; p < c.count; p++ {
					for j := jlo; j < jhi; j++ {
						counts[wk] += pivotBatchWalk(w, c.steps[p][j], uEmpty, rsv[j], dlsv[j])
					}
				}
				c.wg.Done()
			}
		}(wk, jlo, jhi, chans[wk])
	}

	tau := len(st.perms)
	issued := 0
	for si := 0; issued < tau; si++ {
		c := slots[si%depth]
		c.wg.Wait()
		count := e.chunk
		if rem := tau - issued; rem < count {
			count = rem
		}
		c.count = count
		for p := 0; p < count; p++ {
			e.evolvePivotPerm(st, issued+p, n, k, rs, c.steps[p])
		}
		c.wg.Add(workers)
		for _, ch := range chans {
			ch <- c
		}
		issued += count
	}
	for _, ch := range chans {
		close(ch)
	}
	wwg.Wait()
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}
