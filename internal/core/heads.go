package core

import (
	"fmt"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
	"dynshap/internal/semivalue"
)

// This file is the multi-head accumulation layer: the machinery that lets
// one permutation pass price several semivalues (Shapley, Beta(α,β),
// Banzhaf, Absolute Shapley) simultaneously. The heads are pure
// bookkeeping — they consume no randomness and never touch the stripe
// workers — so a pass with extra heads draws the exact random stream of a
// Shapley-only pass, and the Shapley estimate itself still flows through
// the historic unweighted accumulation: bit-identical output whether zero
// or ten extra heads ride along. See DESIGN.md §16.

// semivalueBanzhaf and banzhafHead are shared singletons for the Banzhaf
// wrappers.
var (
	semivalueBanzhaf = semivalue.Banzhaf()
	banzhafHead      = []semivalue.Weighting{semivalue.Banzhaf()}
)

// headFold accumulates the extra semivalue heads of a full-walk pass: for
// each head h, vals_h[p] += ω_h(pos)·T_h(marginal of p at pos).
type headFold struct {
	ws   []semivalue.Weighting
	abs  []bool
	pos  [][]float64 // ω_h(pos) tables, one per head
	sums [][]float64
}

func newHeadFold(ws []semivalue.Weighting, n int) *headFold {
	if len(ws) == 0 || n == 0 {
		return nil
	}
	hf := &headFold{
		ws:   ws,
		abs:  make([]bool, len(ws)),
		pos:  make([][]float64, len(ws)),
		sums: make([][]float64, len(ws)),
	}
	for h, w := range ws {
		hf.abs[h] = w.Abs()
		hf.pos[h] = w.PosWeights(n)
		hf.sums[h] = make([]float64, n)
	}
	return hf
}

// foldWalk credits every walked position's marginal to each head. Under
// truncation (walk < n) the tail positions contribute zero — the same
// stratified-truncation bias the Shapley head carries.
func (hf *headFold) foldWalk(perm []int, utilities []float64, uEmpty float64, walk int) {
	for h := range hf.ws {
		omega, sums, absH := hf.pos[h], hf.sums[h], hf.abs[h]
		prev := uEmpty
		for pos := 0; pos < walk; pos++ {
			cur := utilities[pos]
			m := cur - prev
			if absH && m < 0 {
				m = -m
			}
			sums[perm[pos]] += omega[pos] * m
			prev = cur
		}
	}
}

// foldPos credits a single walked position's marginal — the per-position
// form TruncatedMonteCarlo needs (its walk may stop mid-permutation, which
// credits the tail zero for every head, Shapley included).
func (hf *headFold) foldPos(pos, player int, m float64) {
	for h := range hf.ws {
		v := m
		if hf.abs[h] && v < 0 {
			v = -v
		}
		hf.sums[h][player] += hf.pos[h][pos] * v
	}
}

// finish converts the accumulated sums into per-head averages. The
// division (rather than a reciprocal multiply) matches the Shapley path's
// normalisation exactly, keeping the Shapley head bit-identical to the
// pass's native output.
func (hf *headFold) finish(issued int) [][]float64 {
	out := make([][]float64, len(hf.sums))
	for h, s := range hf.sums {
		vals := make([]float64, len(s))
		for i, v := range s {
			vals[i] = v / float64(issued)
		}
		out[h] = vals
	}
	return out
}

// addHeadTables holds the per-head differential coefficient tables for one
// n → n+1 insertion transition (semivalue.AddCoeffs), shared read-only by
// every walk of a pass — and by every worker of a striped batch pass.
type addHeadTables struct {
	ws         []semivalue.Weighting
	abs        []bool
	cNo, cWith [][]float64 // [head][pos 0..n−1]
	wNew       [][]float64 // [head][k 0..n]
}

func newAddHeadTables(ws []semivalue.Weighting, n int) *addHeadTables {
	if len(ws) == 0 {
		return nil
	}
	t := &addHeadTables{
		ws:    ws,
		abs:   make([]bool, len(ws)),
		cNo:   make([][]float64, len(ws)),
		cWith: make([][]float64, len(ws)),
		wNew:  make([][]float64, len(ws)),
	}
	for h, w := range ws {
		t.abs[h] = w.Abs()
		t.cNo[h], t.cWith[h], t.wNew[h] = w.AddCoeffs(n)
	}
	return t
}

// addHeadSums accumulates one pending point's head contributions over an
// insertion walk: per-head differential sums for the n old players and the
// pivot's own stratified sum. In a striped batch pass each pending point's
// sums are owned by exactly one worker.
type addHeadSums struct {
	t     *addHeadTables
	sums  [][]float64 // [head][old player]
	pivot []float64   // [head]
}

func newAddHeadSums(t *addHeadTables, n int) *addHeadSums {
	if t == nil {
		return nil
	}
	hs := &addHeadSums{
		t:     t,
		sums:  make([][]float64, len(t.ws)),
		pivot: make([]float64, len(t.ws)),
	}
	for h := range t.ws {
		hs.sums[h] = make([]float64, n)
	}
	return hs
}

// foldD0 credits the pivot's empty-prefix stratum (d0 = U({pivot}) − U(∅)).
func (hs *addHeadSums) foldD0(d0 float64) {
	for h := range hs.t.ws {
		v := d0
		if hs.t.abs[h] && v < 0 {
			v = -v
		}
		hs.pivot[h] += hs.t.wNew[h][0] * v
	}
}

// foldPos credits old player p observed at position pos: mNo/mWith are its
// pivot-free and pivot-included marginals, dd = curWith − curNo the
// pivot's own marginal on the size-(pos+1) prefix.
func (hs *addHeadSums) foldPos(pos, p int, mNo, mWith, dd float64) {
	for h := range hs.t.ws {
		x, y, z := mNo, mWith, dd
		if hs.t.abs[h] {
			if x < 0 {
				x = -x
			}
			if y < 0 {
				y = -y
			}
			if z < 0 {
				z = -z
			}
		}
		hs.sums[h][p] += hs.t.cNo[h][pos]*x + hs.t.cWith[h][pos]*y
		hs.pivot[h] += hs.t.wNew[h][pos+1] * z
	}
}

// finishAdd turns one pending point's sums into updated head values: n
// old-player entries (base + differential average) followed by the pivot's
// own estimate. A nil base counts as zero.
func (hs *addHeadSums) finishAdd(base [][]float64, issued int) [][]float64 {
	out := make([][]float64, len(hs.sums))
	for h, s := range hs.sums {
		n := len(s)
		vals := make([]float64, n+1)
		for i, v := range s {
			vals[i] = v / float64(issued)
			if base != nil && h < len(base) && i < len(base[h]) {
				vals[i] += base[h][i]
			}
		}
		vals[n] = hs.pivot[h] / float64(issued)
		out[h] = vals
	}
	return out
}

// delHeadFold accumulates the survivors' head changes over a deletion walk
// (n-player game shrinking to n−1): survivor q observed at position pos
// with pivot-free marginal mNo and pivot-included marginal mWith
// contributes cNo[pos]·T(mNo) + cWith[pos]·T(mWith).
type delHeadFold struct {
	ws         []semivalue.Weighting
	abs        []bool
	cNo, cWith [][]float64 // [head][pos 0..n−2]
	sums       [][]float64 // [head][player]
}

func newDelHeadFold(ws []semivalue.Weighting, n int) *delHeadFold {
	if len(ws) == 0 || n < 2 {
		return nil
	}
	f := &delHeadFold{
		ws:    ws,
		abs:   make([]bool, len(ws)),
		cNo:   make([][]float64, len(ws)),
		cWith: make([][]float64, len(ws)),
		sums:  make([][]float64, len(ws)),
	}
	for h, w := range ws {
		f.abs[h] = w.Abs()
		f.cNo[h], f.cWith[h] = w.DeleteCoeffs(n)
		f.sums[h] = make([]float64, n)
	}
	return f
}

func (f *delHeadFold) foldPos(pos, q int, mNo, mWith float64) {
	for h := range f.ws {
		x, y := mNo, mWith
		if f.abs[h] {
			if x < 0 {
				x = -x
			}
			if y < 0 {
				y = -y
			}
		}
		f.sums[h][q] += f.cNo[h][pos]*x + f.cWith[h][pos]*y
	}
}

// finishDelete returns the survivors' updated head values (deleted point
// zeroed, like the Shapley output). A nil base counts as zero.
func (f *delHeadFold) finishDelete(base [][]float64, p, issued int) [][]float64 {
	out := make([][]float64, len(f.sums))
	for h, s := range f.sums {
		vals := make([]float64, len(s))
		for i, v := range s {
			if i == p {
				continue
			}
			vals[i] = v / float64(issued)
			if base != nil && h < len(base) && i < len(base[h]) {
				vals[i] += base[h][i]
			}
		}
		out[h] = vals
	}
	return out
}

// MonteCarloSemivalues prices every weighting in ws with one permutation
// pass: τ walks are sampled exactly as MonteCarlo samples them, and each
// head folds the observed marginals with its own position weights. The
// Shapley head's fold multiplies by exactly 1.0, so its output is
// bit-identical to MonteCarlo for the same source. This is the serial
// reference implementation the engine's multi-head passes are tested
// against.
func MonteCarloSemivalues(g game.Game, ws []semivalue.Weighting, tau int, r *rng.Source) [][]float64 {
	n := g.N()
	out := make([][]float64, len(ws))
	for h := range out {
		out[h] = make([]float64, n)
	}
	if n == 0 || tau <= 0 || len(ws) == 0 {
		return out
	}
	hf := newHeadFold(ws, n)
	perm := make([]int, n)
	utilities := make([]float64, n)
	w := newPrefixWalker(g)
	uEmpty := g.Value(bitset.New(n))
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		w.reset()
		for pos, p := range perm {
			utilities[pos] = w.add(p)
		}
		hf.foldWalk(perm, utilities, uEmpty, n)
	}
	return hf.finish(tau)
}

// ExactSemivalues computes exact values for every weighting in ws by one
// complete enumeration of the 2^n coalitions (n ≤ MaxExactPlayers): the
// utility table is filled once and each head folds it with its own subset
// weights. The Shapley head uses the historic recurrence weights and the
// historic weight·marginal expression, so Exact(g) ≡
// ExactSemivalues(g, [Shapley])[0] bit for bit; Banzhaf's power-of-two
// weight makes ExactBanzhaf's divide and this multiply identical too.
func ExactSemivalues(g game.Game, ws []semivalue.Weighting) [][]float64 {
	n := g.N()
	if n > MaxExactPlayers {
		panic(fmt.Sprintf("core: ExactSemivalues limited to %d players, got %d", MaxExactPlayers, n))
	}
	out := make([][]float64, len(ws))
	if n == 0 {
		return out
	}
	size := 1 << uint(n)
	util := make([]float64, size)
	s := bitset.New(n)
	for mask := 0; mask < size; mask++ {
		s.Clear()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(i)
			}
		}
		util[mask] = g.Value(s)
	}
	for h, w := range ws {
		weight := w.SubsetWeights(n)
		absH := w.Abs()
		sv := make([]float64, n)
		for mask := 0; mask < size; mask++ {
			sz := popcount(mask)
			for i := 0; i < n; i++ {
				bit := 1 << uint(i)
				if mask&bit == 0 {
					d := util[mask|bit] - util[mask]
					if absH && d < 0 {
						d = -d
					}
					sv[i] += weight[sz] * d
				}
			}
		}
		out[h] = sv
	}
	return out
}

// ExactSemivalue is ExactSemivalues for a single weighting.
func ExactSemivalue(g game.Game, w semivalue.Weighting) []float64 {
	return ExactSemivalues(g, []semivalue.Weighting{w})[0]
}
