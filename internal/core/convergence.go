package core

import (
	"math"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// Tracker is an online Monte Carlo Shapley estimator with per-player
// convergence diagnostics. It runs the same permutation scan as
// Algorithm 1 but maintains running means and variances (Welford), so
// callers can sample until a target precision is met instead of fixing τ
// up front — the practical counterpart of the paper's (ϵ, δ) sample-size
// theorems, which bound τ a priori from the (often unknown) contribution
// range.
type Tracker struct {
	g      game.Game
	r      *rng.Source
	count  int
	mean   []float64
	m2     []float64
	perm   []int
	prefix bitset.Set
	empty  float64
}

// NewTracker creates a tracker over g driven by r.
func NewTracker(g game.Game, r *rng.Source) *Tracker {
	n := g.N()
	return &Tracker{
		g:      g,
		r:      r,
		mean:   make([]float64, n),
		m2:     make([]float64, n),
		perm:   make([]int, n),
		prefix: bitset.New(n),
		empty:  g.Value(bitset.New(n)),
	}
}

// Step samples one permutation and folds every player's marginal
// contribution into the running statistics.
func (t *Tracker) Step() {
	t.count++
	t.r.Perm(t.perm)
	t.prefix.Clear()
	prev := t.empty
	for _, p := range t.perm {
		t.prefix.Add(p)
		cur := t.g.Value(t.prefix)
		x := cur - prev
		d := x - t.mean[p]
		t.mean[p] += d / float64(t.count)
		t.m2[p] += d * (x - t.mean[p])
		prev = cur
	}
}

// StepN samples n permutations.
func (t *Tracker) StepN(n int) {
	for i := 0; i < n; i++ {
		t.Step()
	}
}

// Samples returns the number of permutations consumed so far.
func (t *Tracker) Samples() int { return t.count }

// Values returns the current Shapley estimates.
func (t *Tracker) Values() []float64 {
	return append([]float64(nil), t.mean...)
}

// StdErrs returns the per-player standard errors of the estimates
// (sample standard deviation / √τ), or +Inf before two samples exist.
func (t *Tracker) StdErrs() []float64 {
	out := make([]float64, len(t.mean))
	if t.count < 2 {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	for i := range out {
		variance := t.m2[i] / float64(t.count-1)
		out[i] = math.Sqrt(variance / float64(t.count))
	}
	return out
}

// MaxStdErr returns the largest per-player standard error.
func (t *Tracker) MaxStdErr() float64 {
	max := 0.0
	for _, se := range t.StdErrs() {
		if se > max {
			max = se
		}
	}
	return max
}

// Converged reports whether every player's CLT-based confidence half-width
// z·stderr is within eps, where z is the standard-normal quantile for the
// two-sided confidence 1−delta. It is never true before minSamples
// permutations (default 30 when minSamples ≤ 0), since early variance
// estimates are unreliable.
func (t *Tracker) Converged(eps, delta float64, minSamples int) bool {
	if minSamples <= 0 {
		minSamples = 30
	}
	if t.count < minSamples {
		return false
	}
	z := normalQuantile(1 - delta/2)
	for _, se := range t.StdErrs() {
		if z*se > eps {
			return false
		}
	}
	return true
}

// RunUntil samples until Converged(eps, delta, minSamples) or maxSamples
// permutations, whichever comes first, and returns the estimates and the
// number of permutations consumed.
func (t *Tracker) RunUntil(eps, delta float64, minSamples, maxSamples int) ([]float64, int) {
	for !t.Converged(eps, delta, minSamples) && t.count < maxSamples {
		t.Step()
	}
	return t.Values(), t.count
}

// normalQuantile returns the standard normal quantile via the
// Beasley-Springer-Moro rational approximation (|error| < 1e-9 over
// p ∈ (1e-10, 1−1e-10)) — ample for stopping rules.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("core: normalQuantile requires 0 < p < 1")
	}
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
