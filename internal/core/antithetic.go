package core

import (
	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// MonteCarloAntithetic is permutation-sampling Shapley estimation with
// antithetic pairs: each drawn permutation is scanned together with its
// reverse. A player near the head of π sits near the tail of reverse(π), so
// the two marginal contributions are negatively correlated for monotone
// games — for each pair, SV_i(π) + SV_i(π̄) telescopes through complementary
// prefixes. At equal utility-evaluation budgets this typically cuts the
// variance of saturating (learning-curve-like) utilities.
//
// τ counts permutation PAIRS; the evaluation budget matches MonteCarlo with
// 2τ permutations.
func MonteCarloAntithetic(g game.Game, tau int, r *rng.Source) []float64 {
	n := g.N()
	sv := make([]float64, n)
	if n == 0 || tau <= 0 {
		return sv
	}
	perm := make([]int, n)
	w := newPrefixWalker(g)
	empty := g.Value(bitset.New(n))
	scan := func(order []int) {
		w.reset()
		prev := empty
		for _, p := range order {
			cur := w.add(p)
			sv[p] += cur - prev
			prev = cur
		}
	}
	reversed := make([]int, n)
	for k := 0; k < tau; k++ {
		r.Perm(perm)
		scan(perm)
		for i, p := range perm {
			reversed[n-1-i] = p
		}
		scan(reversed)
	}
	for i := range sv {
		sv[i] /= float64(2 * tau)
	}
	return sv
}
