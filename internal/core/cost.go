package core

import "fmt"

// This file attaches cost hints to the dynamic-update artifacts. The
// planner (internal/plan) compares them to pick the cheapest valid update
// path for a session; they are estimates of *work shape*, not wall-clock
// predictions — the point is that a YN-NN merge costs zero utility
// evaluations while a delta pass costs O(τ·n) of them, a gap of many
// orders of magnitude whenever a utility evaluation trains a model.

// Cost predicts what an update path spends, split into the two currencies
// that matter for valuation workloads.
type Cost struct {
	// Evaluations is the number of coalition-utility evaluations the path
	// performs. Each one trains a model unless the coalition cache or an
	// incremental prefix evaluator absorbs it, so this is the dominant
	// term for ML utilities.
	Evaluations int64
	// ArrayOps is the auxiliary floating-point work (array reads/writes,
	// merge recurrences) — cheap per unit, but the only cost of the exact
	// merge paths.
	ArrayOps int64
}

// Plus returns the component-wise sum of two costs.
func (c Cost) Plus(o Cost) Cost {
	return Cost{Evaluations: c.Evaluations + o.Evaluations, ArrayOps: c.ArrayOps + o.ArrayOps}
}

// Times returns the cost scaled by k (a per-point cost applied k times).
func (c Cost) Times(k int) Cost {
	return Cost{Evaluations: c.Evaluations * int64(k), ArrayOps: c.ArrayOps * int64(k)}
}

// String renders the cost for planner traces.
func (c Cost) String() string {
	return fmt.Sprintf("%d evals + %d array ops", c.Evaluations, c.ArrayOps)
}

// MergeCost is the cost of recovering post-deletion values from the YN-NN
// arrays: no utility evaluations at all, one O(n²) coefficient sweep.
func (ds *DeletionStore) MergeCost() Cost {
	n := int64(ds.n)
	return Cost{ArrayOps: n * (n + 1)}
}

// MergeCost is the cost of a YNN-NNN merge: zero evaluations, one
// O(n·(n−d+1)) sweep over the tuple's arrays.
func (ms *MultiDeletionStore) MergeCost() Cost {
	n, d := int64(ms.n), int64(ms.d)
	return Cost{ArrayOps: n * (n - d + 1)}
}

// Covers reports whether the store can merge out exactly the given points
// — len(points) must equal the prepared d and the set must be one of the
// candidate d-subsets. It is the planner's validity probe; Merge repeats
// the check and returns an error.
func (ms *MultiDeletionStore) Covers(points ...int) bool {
	if len(points) != ms.d {
		return false
	}
	sorted := append([]int(nil), points...)
	insertionSortInts(sorted)
	return ms.tupleIndex(sorted) >= 0
}

// insertionSortInts sorts tiny index tuples without pulling package sort
// into the hot planner path (d is single digits in every realistic store).
func insertionSortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
			xs[k], xs[k-1] = xs[k-1], xs[k]
		}
	}
}

// AddSameCost is the per-point cost of Pivot-s (Algorithm 3): each stored
// permutation re-evaluates only the suffix from the pivot slot, half the
// walk in expectation.
func (st *PivotState) AddSameCost() Cost {
	n := int64(st.N())
	return Cost{Evaluations: int64(st.Tau) * (n + 2) / 2}
}

// PivotAddDifferentCost is the per-point cost of Pivot-d (Algorithm 4)
// with tau fresh permutations over an n-player original set.
func PivotAddDifferentCost(n, tau int) Cost {
	return Cost{Evaluations: int64(tau) * (int64(n) + 2) / 2}
}

// DeltaAddCost is the per-point cost of the delta addition (Algorithm 5):
// two interleaved prefix walks of the (n+1)-player game per permutation.
func DeltaAddCost(n, tau int) Cost {
	return Cost{Evaluations: 2 * int64(tau) * int64(n+1)}
}

// BatchDeltaAddCost is the cost of the batched delta addition of k points
// (BatchDeltaAdd): per permutation, ONE shared no-pivot chain of n prefix
// evaluations plus k with-chains of n+1 each — versus the sequential
// loop's k·2·(n+1) (DeltaAddCost times k). The ratio approaches 2× as k
// grows before any parallelism.
func BatchDeltaAddCost(n, k, tau int) Cost {
	return Cost{Evaluations: int64(tau) * (int64(n) + int64(k)*int64(n+1))}
}

// AddSameBatchCost is the cost of the batched Pivot-s walk over k pending
// points (BatchAddSame): the j-th point's suffix walk covers half of an
// (n+j+1)-permutation in expectation, same per-point shape as AddSameCost
// — the batch form wins on worker parallelism and single-pass utility
// derivation, not on evaluation count.
func (st *PivotState) AddSameBatchCost(k int) Cost {
	n := int64(st.N())
	var evals int64
	for j := int64(0); j < int64(k); j++ {
		evals += int64(st.Tau) * (n + j + 2) / 2
	}
	return Cost{Evaluations: evals}
}

// DeltaDeleteCost is the per-point cost of the delta deletion
// (Algorithm 8): two interleaved walks over the n−1 survivors.
func DeltaDeleteCost(n, tau int) Cost {
	if n < 1 {
		n = 1
	}
	return Cost{Evaluations: 2 * int64(tau) * int64(n-1)}
}

// BatchDeltaDeleteCost is the cost of the batched delta deletion of k
// points (BatchDeltaDelete): per permutation, ONE shared common-survivor
// chain of n−k prefix evaluations plus k with-chains of n−k+1 each —
// versus the sequential loop's k·2·(n−1) (DeltaDeleteCost times k). The
// ratio approaches 2× as k grows before any parallelism.
func BatchDeltaDeleteCost(n, k, tau int) Cost {
	c := n - k
	if c < 0 {
		c = 0
	}
	return Cost{Evaluations: int64(tau) * (int64(c) + int64(k)*int64(c+1))}
}

// DeleteSameBatchCost is the cost of the batched pivot deletion of k
// points (BatchDeleteSame): the permutations evolve through all k
// removals for free (integer bookkeeping) and pay ONE full walk of the
// final (n−k)-length permutations — versus k sequential DeleteSame calls'
// Σ_j τ·(n−j−1), a genuine ~k× evaluation saving. The artifact it
// preserves (stored permutations through the removal) is the other half
// of its value: the next addition can still run Pivot-s.
func (st *PivotState) DeleteSameBatchCost(k int) Cost {
	c := int64(st.N()) - int64(k)
	if c < 0 {
		c = 0
	}
	return Cost{Evaluations: int64(st.Tau) * c}
}

// MonteCarloCost is the cost of recomputing from scratch over n players
// with tau permutations (Algorithm 1).
func MonteCarloCost(n, tau int) Cost {
	return Cost{Evaluations: int64(tau) * int64(n)}
}

// StratifiedMCCost is MonteCarloCost under stratified-truncated sampling
// (WithTruncation): each walk evaluates only its first min(t, n) prefixes,
// and an initialisation pass that also fills the YN-NN arrays pays
// O(t·(2n−t)) array updates per walk instead of O(n²). t ≤ 0 means no
// truncation.
func StratifiedMCCost(n, t, tau int) Cost {
	walk := int64(n)
	if t > 0 && t < n {
		walk = int64(t)
	}
	return Cost{
		Evaluations: int64(tau) * walk,
		ArrayOps:    int64(tau) * walk * (2*int64(n) - walk + 1),
	}
}

// HeadFillCost is the bookkeeping a sampled pass pays to price `heads`
// extra semivalue weightings from its walks: one weighted fold per head
// per walked position, zero additional utility evaluations. It is why the
// multi-head pass is nearly free next to any path that re-evaluates
// coalitions — the currency that matters never moves.
func HeadFillCost(heads, n, tau int) Cost {
	if heads <= 0 {
		return Cost{}
	}
	return Cost{ArrayOps: int64(heads) * int64(tau) * int64(n)}
}

// ExactKNNCost is the cost of maintaining exact closed-form k-NN Shapley
// values (Jia et al.) through an update touching count points of an
// n-point set valued against m test points: per test column, a binary
// search per point plus the affected rank suffix of the recurrence
// (bounded by n+count), then the O(m·(n+count)) deterministic value
// reduction. ZERO utility evaluations — like the YN-NN merge, only array
// work — which is why the planner routes every update of an exact-capable
// session here.
func ExactKNNCost(n, m, count int) Cost {
	after := int64(n + count)
	lg := int64(1)
	for v := after; v > 1; v >>= 1 {
		lg++
	}
	return Cost{ArrayOps: int64(m) * (int64(count)*lg + 2*after)}
}
