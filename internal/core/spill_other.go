//go:build !unix

package core

// Platforms without mmap fall back to the in-memory tiled float32 backend:
// same layout, same tolerance contract, no spill. Callers can detect the
// substitution through the store's BackendKind.
func newSpill32(entries, rowLen int, dir string) (storeBackend, error) {
	_ = dir
	return newTiled32(entries, rowLen), nil
}
