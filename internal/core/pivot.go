package core

import (
	"errors"
	"fmt"

	"dynshap/internal/bitset"
	"dynshap/internal/game"
	"dynshap/internal/rng"
)

// PivotState carries the precomputation the pivot-based algorithms maintain
// across additions: the current Shapley estimates, the left-of-pivot partial
// sums LSV, and (optionally) the sampled permutations with their pivot
// insertion slots, which Pivot-s (Algorithm 3) reuses verbatim.
//
// The decomposition (Lemma 1): taking the incoming point as a pivot, every
// permutation of the updated dataset N⁺ places an original point z_i either
// before the pivot — where its marginal contribution is unchanged from the
// original dataset and can be reused — or after it. SV⁺_i = LSV⁺_i + RSV⁺_i,
// where the two terms average marginal contributions over the two groups.
type PivotState struct {
	// SV holds the current Shapley estimates, one per player.
	SV []float64
	// LSV holds the left-group partial averages (LSV⁺ in the paper).
	LSV []float64
	// Tau is the number of permutations that produced SV and LSV.
	Tau int

	// perms/slots are retained only when the state was built with
	// keepPerms; they enable AddSame.
	perms [][]int
	slots []int
}

// N returns the number of players currently covered by the state.
func (st *PivotState) N() int { return len(st.SV) }

// Clone returns an independent deep copy of the state, so one
// initialisation can seed several competing update sequences.
func (st *PivotState) Clone() *PivotState {
	c := &PivotState{
		SV:  append([]float64(nil), st.SV...),
		LSV: append([]float64(nil), st.LSV...),
		Tau: st.Tau,
	}
	if st.perms != nil {
		c.perms = make([][]int, len(st.perms))
		for i, p := range st.perms {
			c.perms[i] = append([]int(nil), p...)
		}
		c.slots = append([]int(nil), st.slots...)
	}
	return c
}

// HasPermutations reports whether AddSame (Algorithm 3) is available.
func (st *PivotState) HasPermutations() bool { return st.perms != nil }

// PivotInit runs Algorithm 2: Monte Carlo Shapley computation over the
// original game that additionally accumulates LSV — the part of each
// player's estimate contributed while it sat before a uniformly chosen
// pivot slot. keepPerms retains the sampled permutations so a later
// addition can reuse them (Pivot-s); without it only Pivot-d is available,
// saving O(τ·n) memory.
func PivotInit(g game.Game, tau int, keepPerms bool, r *rng.Source) *PivotState {
	n := g.N()
	st := &PivotState{
		SV:  make([]float64, n),
		LSV: make([]float64, n),
		Tau: tau,
	}
	if keepPerms {
		st.perms = make([][]int, 0, tau)
		st.slots = make([]int, 0, tau)
	}
	if n == 0 || tau <= 0 {
		return st
	}
	w := newPrefixWalker(g)
	empty := g.Value(bitset.New(n))
	for k := 0; k < tau; k++ {
		perm := r.PermN(n)
		// t = number of players that will precede the pivot; uniform on
		// {0, …, n} because the incoming point is equally likely to land in
		// any of the n+1 slots of an (n+1)-permutation.
		t := r.Intn(n + 1)
		w.reset()
		prev := empty
		for pos, p := range perm {
			cur := w.add(p)
			m := cur - prev
			st.SV[p] += m
			if pos < t {
				st.LSV[p] += m
			}
			prev = cur
		}
		if keepPerms {
			st.perms = append(st.perms, perm)
			st.slots = append(st.slots, t)
		}
	}
	for i := 0; i < n; i++ {
		st.SV[i] /= float64(tau)
		st.LSV[i] /= float64(tau)
	}
	return st
}

// ErrNoPermutations is returned by AddSame when the state was built without
// keepPerms (or a previous AddDifferent discarded the permutations).
var ErrNoPermutations = errors.New("core: pivot state holds no stored permutations; use AddDifferent or rebuild with PivotInit(keepPerms)")

// AddSame runs Algorithm 3 (the pivot-based algorithm with the same sampled
// permutations): the stored permutations are extended by inserting the new
// player at the recorded pivot slot, only the suffix starting at the pivot
// is (re-)evaluated, and the refreshed estimates SV⁺ = LSV + RSV are
// installed in the state. gPlus must be the (n+1)-player game whose last
// player is the new point.
//
// With a cached utility the prefix evaluations before the pivot hit the
// cache entries produced by PivotInit — this is the "half the computation"
// reuse the paper's title claim rests on.
func (st *PivotState) AddSame(gPlus game.Game, r *rng.Source) ([]float64, error) {
	if st.perms == nil {
		return nil, ErrNoPermutations
	}
	n := st.N()
	if gPlus.N() != n+1 {
		return nil, fmt.Errorf("core: AddSame game has %d players, want %d", gPlus.N(), n+1)
	}
	pivot := n
	m := n + 1
	rsv := make([]float64, m)
	dlsv := make([]float64, m)
	w := newPrefixWalker(gPlus)
	var uEmpty float64
	if w.incremental() {
		uEmpty = gPlus.Value(bitset.New(m))
	}
	for k := range st.perms {
		old := st.perms[k]
		t := st.slots[k]
		perm := make([]int, 0, m)
		perm = append(perm, old[:t]...)
		perm = append(perm, pivot)
		perm = append(perm, old[t:]...)
		// Slot for the *next* pivot, uniform over the m+1 = n+2 positions.
		p := r.Intn(m + 1)
		w.reset()
		prev := w.advance(perm, t, uEmpty)
		for pos := t; pos < m; pos++ {
			q := perm[pos]
			cur := w.add(q)
			mc := cur - prev
			rsv[q] += mc
			if pos < p {
				dlsv[q] += mc
			}
			prev = cur
		}
		st.perms[k] = perm
		st.slots[k] = p
	}
	sv := make([]float64, m)
	lsv := make([]float64, m)
	for i := 0; i < m; i++ {
		var l float64
		if i < n {
			l = st.LSV[i]
		}
		sv[i] = l + rsv[i]/float64(st.Tau)
		// 2/3 of the permutations counted in the old LSV keep z_i before the
		// next pivot (among the 3! relative orders of {z_i, old pivot, next
		// pivot}, conditioning on z_i before the old pivot leaves 2/3 with
		// z_i also before the next one); ∆LSV supplies the freshly sampled
		// "after old pivot, before next pivot" share.
		lsv[i] = 2.0/3.0*l + dlsv[i]/float64(st.Tau)
	}
	st.SV = sv
	st.LSV = lsv
	return append([]float64(nil), sv...), nil
}

// DeleteSame removes player p from the state by evolving the stored
// permutations — the deletion-side counterpart of AddSame, and the reason
// a pivot artifact can now survive removals instead of being rebuilt.
//
// Deleting a player from a uniform permutation leaves a uniform
// permutation of the survivors (a subsequence of a uniform order is
// uniform), so the stored permutations stay a valid sample after dropping
// p and renumbering the survivors down by one. The pivot slot moves with
// its position: t' = t − 1 when p sat before the slot, else t' = t — a
// uniform slot over the n+1 positions maps to a uniform slot over the n
// remaining ones (P(t'=s) = (n−s)/((n+1)n) + (s+1)/((n+1)n) = 1/n), so
// the LSV decomposition's pivot stays uniformly placed. One full walk of
// each evolved permutation in the (n−1)-player game gMinus then
// re-establishes PivotInit's invariant: SV from all positions, LSV from
// positions before the slot. The walk consumes NO randomness — replay and
// batching stay deterministic for free.
//
// gMinus must be the (n−1)-player post-deletion game whose indices are
// the survivors renumbered by order-preserving compaction (index q > p
// becomes q−1), exactly what game.NewRestrict(g, p) or a utility's Remove
// produces.
func (st *PivotState) DeleteSame(gMinus game.Game, p int) ([]float64, error) {
	if st.perms == nil {
		return nil, ErrNoPermutations
	}
	n := st.N()
	if n < 2 {
		return nil, fmt.Errorf("core: DeleteSame cannot remove the last player")
	}
	if p < 0 || p >= n {
		return nil, fmt.Errorf("core: DeleteSame point %d out of range [0,%d)", p, n)
	}
	m := n - 1
	if gMinus.N() != m {
		return nil, fmt.Errorf("core: DeleteSame game has %d players, want %d", gMinus.N(), m)
	}
	rsv := make([]float64, m)
	dlsv := make([]float64, m)
	w := newPrefixWalker(gMinus)
	uEmpty := gMinus.Value(bitset.New(m))
	for t := range st.perms {
		perm, slot := deleteEvolveStep(st.perms[t], st.slots[t], p)
		w.reset()
		prev := uEmpty
		for pos, q := range perm {
			cur := w.add(q)
			mc := cur - prev
			rsv[q] += mc
			if pos < slot {
				dlsv[q] += mc
			}
			prev = cur
		}
		st.perms[t] = perm
		st.slots[t] = slot
	}
	sv := make([]float64, m)
	lsv := make([]float64, m)
	for i := 0; i < m; i++ {
		sv[i] = rsv[i] / float64(st.Tau)
		lsv[i] = dlsv[i] / float64(st.Tau)
	}
	st.SV = sv
	st.LSV = lsv
	return append([]float64(nil), sv...), nil
}

// deleteEvolveStep removes player p from one stored permutation in place:
// p's entry is dropped, survivors above p renumber down by one, and the
// pivot slot decrements when p sat before it. Pure integer bookkeeping —
// the batched deletion evolves permutations through k removals with k of
// these steps and walks utilities only once, which is where its k× saving
// comes from.
func deleteEvolveStep(perm []int, slot, p int) ([]int, int) {
	w := 0
	for r, q := range perm {
		if q == p {
			if r < slot {
				slot--
			}
			continue
		}
		if q > p {
			q--
		}
		perm[w] = q
		w++
	}
	return perm[:w], slot
}

// AddDifferent runs Algorithm 4 (the pivot-based algorithm with different
// sampled permutations): tau2 fresh permutations of the updated game are
// sampled and only the suffix from the pivot's position onward is
// evaluated; RSV is estimated from these while LSV is inherited from the
// state. Fresh permutations cost no permutation storage and allow
// τ_LSV ≠ τ_RSV — the paper's Table V regime, where a large offline τ_LSV
// drives the overall error below Pivot-s.
//
// AddDifferent invalidates any stored permutations (they no longer match
// the sampled estimates), so a subsequent AddSame returns
// ErrNoPermutations.
func (st *PivotState) AddDifferent(gPlus game.Game, tau2 int, r *rng.Source) ([]float64, error) {
	n := st.N()
	if gPlus.N() != n+1 {
		return nil, fmt.Errorf("core: AddDifferent game has %d players, want %d", gPlus.N(), n+1)
	}
	if tau2 <= 0 {
		return nil, fmt.Errorf("core: AddDifferent requires tau2 > 0, got %d", tau2)
	}
	pivot := n
	m := n + 1
	rsv := make([]float64, m)
	dlsv := make([]float64, m)
	w := newPrefixWalker(gPlus)
	var uEmpty float64
	if w.incremental() {
		uEmpty = gPlus.Value(bitset.New(m))
	}
	perm := make([]int, m)
	for k := 0; k < tau2; k++ {
		r.Perm(perm)
		t := 0
		for pos, q := range perm {
			if q == pivot {
				t = pos
				break
			}
		}
		p := r.Intn(m + 1)
		w.reset()
		prev := w.advance(perm, t, uEmpty)
		for pos := t; pos < m; pos++ {
			q := perm[pos]
			cur := w.add(q)
			mc := cur - prev
			rsv[q] += mc
			if pos < p {
				dlsv[q] += mc
			}
			prev = cur
		}
	}
	sv := make([]float64, m)
	lsv := make([]float64, m)
	for i := 0; i < m; i++ {
		var l float64
		if i < n {
			l = st.LSV[i]
		}
		sv[i] = l + rsv[i]/float64(tau2)
		lsv[i] = 2.0/3.0*l + dlsv[i]/float64(tau2)
	}
	st.SV = sv
	st.LSV = lsv
	st.Tau = tau2
	st.perms = nil
	st.slots = nil
	return append([]float64(nil), sv...), nil
}
