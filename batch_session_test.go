package dynshap

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The batch pipeline's session-level contracts: AlgoPivotSameBatch is
// bit-identical to the sequential per-point AlgoPivotSame loop (same op
// seed, same RNG splits); AlgoDeltaBatch is deterministic and worker-count
// invariant, and collapses to AlgoDelta at k = 1; AlgoAuto routes
// multi-point adds onto the batch paths; and journal, replay, and
// snapshots carry batched updates faithfully.

func batchTestPoints(k, dim int) []Point {
	pts := make([]Point, k)
	for j := range pts {
		x := make([]float64, dim)
		for i := range x {
			x[i] = 0.25*float64(i+1) - 0.1*float64(j+1)
		}
		pts[j] = Point{X: x, Y: j % 3}
	}
	return pts
}

func TestSessionBatchPivotMatchesSequential(t *testing.T) {
	const n, k = 14, 5
	pts := batchTestPoints(k, 4)
	seqS := newTestSession(t, n, WithKeepPermutations())
	batchS := newTestSession(t, n, WithKeepPermutations())
	if err := seqS.Init(); err != nil {
		t.Fatal(err)
	}
	if err := batchS.Init(); err != nil {
		t.Fatal(err)
	}
	want, err := seqS.Add(pts, AlgoPivotSame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := batchS.Add(pts, AlgoPivotSameBatch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batched pivot add diverged from sequential:\n got %v\nwant %v", got, want)
	}
	// The journal attributes a value to each point of the batch, matching
	// the tail of the published values.
	rec, err := batchS.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.BatchValues) != k {
		t.Fatalf("journal BatchValues has %d entries, want %d", len(rec.BatchValues), k)
	}
	if !reflect.DeepEqual(rec.BatchValues, got[n:]) {
		t.Fatalf("BatchValues %v != value tail %v", rec.BatchValues, got[n:])
	}
	// Sequential records no attribution.
	seqRec, err := seqS.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if seqRec.BatchValues != nil {
		t.Fatalf("sequential add recorded BatchValues %v", seqRec.BatchValues)
	}
}

func TestSessionBatchDeltaWorkerInvariantAndK1(t *testing.T) {
	const n, k = 14, 4
	pts := batchTestPoints(k, 4)
	var ref []float64
	for _, workers := range []int{1, 2, 4} {
		s := newTestSession(t, n, WithWorkers(workers))
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		got, err := s.Add(pts, AlgoDeltaBatch)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
		} else if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: batched delta add diverged:\n got %v\nwant %v", workers, got, ref)
		}
	}

	// At k = 1 the batched walk IS the delta walk.
	one := batchTestPoints(1, 4)
	sd := newTestSession(t, n)
	sb := newTestSession(t, n)
	if err := sd.Init(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Init(); err != nil {
		t.Fatal(err)
	}
	want, err := sd.Add(one, AlgoDelta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.Add(one, AlgoDeltaBatch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("k=1 batched delta != AlgoDelta:\n got %v\nwant %v", got, want)
	}
}

func TestSessionAutoRoutesBatches(t *testing.T) {
	const n, k = 16, 4
	pts := batchTestPoints(k, 4)

	// Without retained artifacts a multi-point add takes the batched delta
	// walk.
	s := newTestSession(t, n)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(pts, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err := s.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoDeltaBatch.String() {
		t.Fatalf("auto resolved %q, want %q", rec.Algo, AlgoDeltaBatch)
	}
	if rec.Requested != AlgoAuto.String() {
		t.Fatalf("Requested = %q, want %q", rec.Requested, AlgoAuto)
	}
	if !strings.Contains(strings.Join(rec.Decision, " "), "batch") {
		t.Fatalf("decision trace should mention batching: %v", rec.Decision)
	}

	// With retained permutations the batch rides the stored-perm pass.
	sp := newTestSession(t, n, WithKeepPermutations())
	if err := sp.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Add(pts, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err = sp.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoPivotSameBatch.String() {
		t.Fatalf("auto with perms resolved %q, want %q", rec.Algo, AlgoPivotSameBatch)
	}

	// Single-point adds keep their sequential algorithms.
	if _, err := s.Add(batchTestPoints(1, 4), AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err = s.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoDelta.String() {
		t.Fatalf("auto for k=1 resolved %q, want %q", rec.Algo, AlgoDelta)
	}
}

// TestSnapshotFormat2BatchRoundTrip is the batch pipeline's durability
// contract: a journal containing batched adds survives a format-2
// snapshot, and Resume + ReplayTo reproduce the recorded values at EVERY
// version bit for bit.
func TestSnapshotFormat2BatchRoundTrip(t *testing.T) {
	const n = 12
	s := newTestSession(t, n, WithKeepPermutations())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	history := map[int][]float64{1: s.Values()}
	// Version 2: a batched pivot add (auto-routed). Version 3: a delete
	// (drops the pivot). Version 4: a batched delta add (auto-routed).
	if _, err := s.Add(batchTestPoints(3, 4), AlgoAuto); err != nil {
		t.Fatal(err)
	}
	history[2] = s.Values()
	if _, err := s.Delete([]int{1}, AlgoDelta); err != nil {
		t.Fatal(err)
	}
	history[3] = s.Values()
	if _, err := s.Add(batchTestPoints(2, 4), AlgoAuto); err != nil {
		t.Fatal(err)
	}
	history[4] = s.Values()
	for _, v := range []int{2, 4} {
		rec, err := s.At(v)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(rec.Algo, "batch") {
			t.Fatalf("version %d ran %q, expected a batch algorithm", v, rec.Algo)
		}
	}

	var buf bytes.Buffer
	if _, err := s.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sn.Resume(KNNClassifier{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Values(), s.Values()) {
		t.Fatalf("resumed values diverged:\n got %v\nwant %v", r.Values(), s.Values())
	}
	for v := 1; v <= 4; v++ {
		rep, err := r.ReplayTo(v)
		if err != nil {
			t.Fatalf("ReplayTo(%d): %v", v, err)
		}
		if !reflect.DeepEqual(rep.Values(), history[v]) {
			t.Fatalf("replayed version %d diverged:\n got %v\nwant %v", v, rep.Values(), history[v])
		}
		// Batched entries keep their per-point attribution through the
		// snapshot and replay.
		rec, err := rep.At(v)
		if v == 2 || v == 4 {
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.BatchValues) == 0 {
				t.Fatalf("version %d lost BatchValues through snapshot+replay", v)
			}
		}
	}
}
