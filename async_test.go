package dynshap

import (
	"reflect"
	"testing"
	"time"
)

// The async write pipeline's session-level contracts: a full admission
// window executes bit-identically to the same points handed to one
// synchronous Add call (same version, same RNG stream), every handle
// resolves with its point's journal attribution, reads never block behind
// an open window, deletes act as barriers, and the journal marks
// coalesced records so replay reproduces them exactly.

// TestSubmitAddWindowBitIdenticalToAdd is the determinism acceptance
// gate: k submissions coalesced into one window produce the same version-2
// state, bit for bit, as one Add(pts, AlgoPivotSame) call — across worker
// counts, on the stored-permutation path where even the retained LSV/perm
// state is partition-independent.
func TestSubmitAddWindowBitIdenticalToAdd(t *testing.T) {
	const n, k = 14, 5
	pts := batchTestPoints(k, 4)
	for _, workers := range []int{1, 4} {
		async := newTestSession(t, n, WithKeepPermutations(), WithWorkers(workers),
			WithCoalescing(k, time.Hour))
		seq := newTestSession(t, n, WithKeepPermutations(), WithWorkers(workers))
		if err := async.Init(); err != nil {
			t.Fatal(err)
		}
		if err := seq.Init(); err != nil {
			t.Fatal(err)
		}
		handles := make([]*UpdateHandle, k)
		for i, p := range pts {
			handles[i] = async.SubmitAdd(p)
		}
		if err := async.Flush(); err != nil {
			t.Fatal(err)
		}
		want, err := seq.Add(pts, AlgoPivotSame)
		if err != nil {
			t.Fatal(err)
		}
		if got := async.Values(); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: coalesced window diverged from sequential Add:\n got %v\nwant %v", workers, got, want)
		}
		// Every future carries its point's attribution from the window's
		// journal record.
		rec, err := async.At(2)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Coalesced {
			t.Fatal("journal record of a coalesced window lacks the coalesced mark")
		}
		if len(rec.BatchValues) != k {
			t.Fatalf("BatchValues has %d entries, want %d", len(rec.BatchValues), k)
		}
		for i, h := range handles {
			res, err := h.Wait()
			if err != nil {
				t.Fatalf("handle %d: %v", i, err)
			}
			if res.Version != 2 || res.Window != k {
				t.Fatalf("handle %d resolved %+v, want version 2 window %d", i, res, k)
			}
			if res.Index != n+i {
				t.Fatalf("handle %d index %d, want %d", i, res.Index, n+i)
			}
			if res.Value != rec.BatchValues[i] {
				t.Fatalf("handle %d value %g != journal attribution %g", i, res.Value, rec.BatchValues[i])
			}
			if res.Algo != AlgoPivotSameBatch.String() {
				t.Fatalf("handle %d ran %q, want %q", i, res.Algo, AlgoPivotSameBatch)
			}
		}
		if err := async.Close(); err != nil {
			t.Fatal(err)
		}
		if err := seq.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubmitReadsNeverBlock: with a window held open (huge MaxDelay,
// unfilled), reads observe the last published version immediately.
func TestSubmitReadsNeverBlock(t *testing.T) {
	const n = 12
	s := newTestSession(t, n, WithCoalescing(16, time.Hour))
	defer s.Close()
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	before := s.Values()
	h := s.SubmitAdd(batchTestPoints(1, 4)[0])
	// The window is open and will not close for an hour; reads must not
	// wait for it.
	if got := s.Version(); got != 1 {
		t.Fatalf("version %d while window open, want 1", got)
	}
	if got := s.Values(); !reflect.DeepEqual(got, before) {
		t.Fatal("Values changed before the window executed")
	}
	// Flush is the barrier that forces the window out.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(); got != 2 {
		t.Fatalf("version %d after flush, want 2", got)
	}
}

// TestSubmitDeleteBarrier: a submitted delete sees the state every prior
// submission produced (the add→delete transition closes the add window
// first), and the whole async history replays bit for bit.
func TestSubmitDeleteBarrier(t *testing.T) {
	const n, k = 12, 3
	s := newTestSession(t, n, WithCoalescing(k, time.Hour))
	defer s.Close()
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	for _, p := range batchTestPoints(k, 4) {
		s.SubmitAdd(p)
	}
	// Deleting index n+k−1 names the last window point — only valid if the
	// add window executed before the delete. The delete now opens a window
	// of its own, so Flush forces it out instead of waiting for MaxDelay.
	h := s.SubmitDelete([]int{n + k - 1})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 3 || res.Index != -1 {
		t.Fatalf("delete resolved %+v, want version 3 index -1", res)
	}
	rec, err := s.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != "delete" || !rec.Coalesced {
		t.Fatalf("journal record %+v, want coalesced delete", rec)
	}
	// Replay of the coalesced history is bit-identical and keeps the
	// coalesced marks.
	rep, err := s.ReplayTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Values(), s.Values()) {
		t.Fatalf("replayed coalesced history diverged:\n got %v\nwant %v", rep.Values(), s.Values())
	}
	repRec, err := rep.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if !repRec.Coalesced {
		t.Fatal("replay dropped the coalesced mark")
	}
}

// TestSubmitAfterClose: Close drains, later submissions fail with
// ErrSubmitClosed, and the synchronous API keeps working.
func TestSubmitAfterClose(t *testing.T) {
	const n = 12
	s := newTestSession(t, n, WithCoalescing(4, time.Millisecond))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	h := s.SubmitAdd(batchTestPoints(1, 4)[0])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatalf("pre-close submission failed: %v", err)
	}
	if _, err := s.SubmitAdd(batchTestPoints(1, 4)[0]).Wait(); err != ErrSubmitClosed {
		t.Fatalf("post-close submit err = %v, want ErrSubmitClosed", err)
	}
	if _, err := s.Add(batchTestPoints(1, 4), AlgoAuto); err != nil {
		t.Fatalf("synchronous Add after Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
