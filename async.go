package dynshap

// Async write pipeline: SubmitAdd/SubmitDelete enqueue updates and return
// a future, and a per-session coalescer (internal/coalesce) batches
// concurrent submissions into admission windows executed through the
// batched walks. The versioned-store contract is untouched — windows
// execute through the same updateMu-serialised addJournaled path every
// synchronous writer uses, and reads (Values, Rank, TopK, the *For head
// variants) keep observing the last published version without blocking
// behind an open window.

import (
	"time"

	"dynshap/internal/coalesce"
	"dynshap/internal/dataset"
)

// Default admission-window bounds for sessions that never called
// WithCoalescing: windows close at 16 points (the batched walks' measured
// sweet spot at n≈200) or after 2ms, whichever comes first.
const (
	DefaultCoalesceBatch = 16
	DefaultCoalesceDelay = 2 * time.Millisecond
)

// UpdateHandle is the future an async submission returns; it resolves
// when the submission's admission window has executed.
type UpdateHandle = coalesce.Handle

// UpdateResult is a resolved submission's report: the version its window
// produced, the algorithm that ran, the window size, and — for adds —
// the submitted point's index and per-point attributed value.
type UpdateResult = coalesce.Result

// ErrSubmitClosed is the failure every submission after Close resolves
// with.
var ErrSubmitClosed = coalesce.ErrClosed

// WithCoalescing bounds the session's async admission windows: a window
// executes once it holds maxBatch points or maxDelay after it opened,
// whichever comes first. maxBatch 1 disables coalescing (every SubmitAdd
// executes alone); maxDelay ≤ 0 never waits — a window executes as soon
// as the submit queue is momentarily empty. Zero values select the
// package defaults. The option only shapes windowing; it never changes
// the values an executed sequence produces, so it is not persisted in
// snapshots.
func WithCoalescing(maxBatch int, maxDelay time.Duration) Option {
	return func(c *config) {
		c.coalesceBatch = maxBatch
		c.coalesceDelay = maxDelay
	}
}

// sessionExecutor adapts the session's journaled write path to the
// coalescer's Executor interface. It runs only on the drainer goroutine,
// one window at a time, through the same updateMu the synchronous
// writers take.
type sessionExecutor struct{ s *Session }

func (e sessionExecutor) ExecAdd(points []dataset.Point) (coalesce.Batch, error) {
	vals, u, err := e.s.addJournaled(points, AlgoAuto, true)
	if err != nil {
		return coalesce.Batch{}, err
	}
	b := coalesce.Batch{Version: u.Version, Algo: u.Algo, Base: len(vals) - len(points)}
	if u.BatchValues != nil {
		// Batched walks journal per-point attribution directly.
		b.Values = u.BatchValues
	} else {
		// Singleton windows may resolve to a non-batch algorithm; the
		// point's value is the tail of the published estimates.
		b.Values = vals[len(vals)-len(points):]
	}
	return b, nil
}

func (e sessionExecutor) ExecDelete(indices []int) (coalesce.Batch, error) {
	_, u, err := e.s.deleteJournaled(indices, AlgoAuto, true)
	if err != nil {
		return coalesce.Batch{}, err
	}
	// The batched and exact deletion paths journal the departing points'
	// pre-delete values; the coalescer folds them back into each delete
	// submission's resolved attribution.
	return coalesce.Batch{Version: u.Version, Algo: u.Algo, Values: u.RemovedValues}, nil
}

// coalescer lazily starts the session's write pipeline on first use.
func (s *Session) coalescer() *coalesce.Coalescer {
	s.coalMu.Lock()
	defer s.coalMu.Unlock()
	if s.coal == nil {
		cfg := coalesce.Config{
			MaxBatch:   s.cfg.coalesceBatch,
			MaxDelay:   s.cfg.coalesceDelay,
			QueueDepth: s.cfg.coalesceDepth,
		}
		if cfg.MaxBatch == 0 {
			cfg.MaxBatch = DefaultCoalesceBatch
		}
		if cfg.MaxDelay == 0 {
			cfg.MaxDelay = DefaultCoalesceDelay
		}
		s.coal = coalesce.New(sessionExecutor{s}, cfg)
	}
	return s.coal
}

// SubmitAdd enqueues one training point for insertion and returns a
// future. The point lands in the coalescer's open admission window; when
// the window executes (at the configured size or delay bound, whichever
// first) as ONE batched update, the handle resolves with the produced
// version, the point's index in the post-window numbering, and its
// per-point attributed value from the window's journal record. Execution
// order is the admitted order; for the stored-permutation path the final
// state is bit-identical to the same submissions applied one at a time.
func (s *Session) SubmitAdd(p Point) *UpdateHandle {
	return s.coalescer().SubmitAdd(p)
}

// SubmitDelete enqueues a deletion and returns a future. The indices are
// interpreted against the SUBMISSION-TIME state — the state after every
// previously admitted submission has applied — exactly as a synchronous
// Delete at the same place in the admitted order would read them.
//
// Consecutive deletions coalesce into one delete window executed as ONE
// batched removal (the planner's batched delta or pivot walk), with each
// later submission's indices remapped past the slots its window
// predecessors vacated; only an add↔delete transition closes a window
// early. The handle resolves with the version the window produced and the
// submission's departing points' summed pre-delete value, when the
// executed path attributes removals (the batched and exact paths do).
func (s *Session) SubmitDelete(indices []int) *UpdateHandle {
	return s.coalescer().SubmitDelete(indices)
}

// Flush blocks until every submission admitted before the call has
// executed and its handle resolved. A session that never submitted
// asynchronously returns immediately.
func (s *Session) Flush() error {
	s.coalMu.Lock()
	c := s.coal
	s.coalMu.Unlock()
	if c == nil {
		return nil
	}
	return c.Flush()
}

// Close drains the async write pipeline — everything already admitted
// executes — and stops it; later submissions resolve with
// ErrSubmitClosed. Synchronous use of the session (Add, Delete, reads)
// remains valid after Close. Safe to call more than once, and a no-op
// for sessions that never submitted asynchronously.
func (s *Session) Close() error {
	s.coalMu.Lock()
	c := s.coal
	s.coalMu.Unlock()
	if c == nil {
		return nil
	}
	return c.Close()
}
