package dynshap

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dynshap/internal/dataset"
)

// Snapshot is a serialisable record of a valuation session: the points, the
// test set defining the utility, and the current Shapley estimates. It lets
// a broker persist what it owes to whom and resume after a restart.
//
// Sampling state and the dynamic-update structures (LSV, stored
// permutations, YN-NN arrays) are deliberately excluded: they are caches,
// recomputed by Refresh, while the snapshot is the durable record.
type Snapshot struct {
	// Format identifies the snapshot schema; currently 1.
	Format int `json:"format"`
	// Train holds the valued points, index-aligned with Values.
	Train []Point `json:"train"`
	// Test holds the held-out points defining the utility.
	Test []Point `json:"test"`
	// Classes is the label-space size shared by both sets.
	Classes int `json:"classes"`
	// Values holds the Shapley estimates (nil before Init).
	Values []float64 `json:"values,omitempty"`
	// Samples is the τ the estimates were computed with.
	Samples int `json:"samples"`
}

// Snapshot captures the session's durable state.
func (s *Session) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	train := s.train.Clone()
	test := s.test.Clone()
	return &Snapshot{
		Format:  1,
		Train:   train.Points,
		Test:    test.Points,
		Classes: train.Classes,
		Values:  append([]float64(nil), s.sv...),
		Samples: s.cfg.tau,
	}
}

// WriteTo serialises the snapshot as JSON.
func (sn *Snapshot) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("dynshap: encoding snapshot: %w", err)
	}
	n, err := w.Write(b)
	return int64(n), err
}

// Save writes the snapshot to the file at path.
func (sn *Snapshot) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dynshap: %w", err)
	}
	if _, err := sn.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot parses a JSON snapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sn); err != nil {
		return nil, fmt.Errorf("dynshap: decoding snapshot: %w", err)
	}
	if sn.Format != 1 {
		return nil, fmt.Errorf("dynshap: unsupported snapshot format %d", sn.Format)
	}
	if len(sn.Values) != 0 && len(sn.Values) != len(sn.Train) {
		return nil, fmt.Errorf("dynshap: snapshot has %d values for %d points", len(sn.Values), len(sn.Train))
	}
	return &sn, nil
}

// LoadSnapshot reads a snapshot from the file at path.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dynshap: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// Resume reconstructs a session from the snapshot. The returned session has
// the recorded values installed and is immediately usable for AlgoDelta,
// AlgoKNN, AlgoKNNPlus, AlgoBase and from-scratch updates; algorithms that
// need maintained structures (AlgoPivotSame/Different, AlgoYNNN) require a
// Refresh first.
func (sn *Snapshot) Resume(trainer Trainer, opts ...Option) (*Session, error) {
	if len(sn.Values) != 0 && len(sn.Values) != len(sn.Train) {
		return nil, fmt.Errorf("dynshap: snapshot has %d values for %d points", len(sn.Values), len(sn.Train))
	}
	train := dataset.New(clonePoints(sn.Train))
	test := dataset.New(clonePoints(sn.Test))
	if sn.Classes > train.Classes {
		train.Classes = sn.Classes
	}
	if sn.Classes > test.Classes {
		test.Classes = sn.Classes
	}
	opts = append([]Option{WithSamples(sn.Samples)}, opts...)
	s := NewSession(train, test, trainer, opts...)
	if len(sn.Values) > 0 {
		s.mu.Lock()
		s.sv = append([]float64(nil), sn.Values...)
		s.initialized = true
		s.storesFresh = false
		s.mu.Unlock()
	}
	return s, nil
}

func clonePoints(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}
