package dynshap

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/journal"
	"dynshap/internal/semivalue"
)

// Snapshot is a serialisable record of a valuation session: the points, the
// test set defining the utility, the current Shapley estimates, and — since
// format 2 — the session configuration and the update journal. It lets a
// broker persist what it owes to whom, resume after a restart, and replay
// or audit the update history that produced the current values.
//
// The dynamic-update structures (LSV, stored permutations, YN-NN arrays)
// are deliberately excluded: they are caches, recomputed by Refresh, while
// the snapshot is the durable record.
type Snapshot struct {
	// Format identifies the snapshot schema. Format 2 adds Version, Config
	// and Journal; format 1 files are still read (their missing fields
	// resume to a history-less session with default options).
	Format int `json:"format"`
	// Version is the state version the snapshot captured (format ≥ 2).
	Version int `json:"version,omitempty"`
	// Train holds the valued points, index-aligned with Values.
	Train []Point `json:"train"`
	// Test holds the held-out points defining the utility.
	Test []Point `json:"test"`
	// Classes is the label-space size shared by both sets.
	Classes int `json:"classes"`
	// Values holds the Shapley estimates (nil before Init).
	Values []float64 `json:"values,omitempty"`
	// Heads holds the extra semivalue heads' current estimates, keyed by
	// the weighting's wire name ("banzhaf", "beta(4,1)", …), each
	// index-aligned with Train (multi-head sessions, format ≥ 2). Resume
	// restores them so ValuesFor keeps answering without a Refresh.
	Heads map[string][]float64 `json:"heads,omitempty"`
	// Samples is the initialisation τ the estimates were computed with.
	Samples int `json:"samples"`
	// Config carries the session options format 1 silently dropped —
	// multi-delete candidates, workers, target error, seed, … (format ≥ 2).
	Config *SnapshotConfig `json:"config,omitempty"`
	// Journal is the session's update log over its base dataset (format ≥ 2).
	Journal *JournalState `json:"journal,omitempty"`
}

// SnapshotConfig is the serialised session configuration. Zero values mean
// "the session default", so a config round-trips through JSON omitempty
// without drift.
type SnapshotConfig struct {
	UpdateSamples  int     `json:"update_samples,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	KeepPerms      bool    `json:"keep_permutations,omitempty"`
	TrackDeletions bool    `json:"track_deletions,omitempty"`
	MultiDelete    int     `json:"multi_delete,omitempty"`
	Candidates     []int   `json:"candidates,omitempty"`
	TruncationTol  float64 `json:"truncation_tolerance,omitempty"`
	HeuristicK     int     `json:"heuristic_k,omitempty"`
	CacheDisabled  bool    `json:"cache_disabled,omitempty"`
	KernelDisabled bool    `json:"kernel_disabled,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	TargetEps      float64 `json:"target_eps,omitempty"`
	TargetDelta    float64 `json:"target_delta,omitempty"`
	// StoreBackend is the deletion-store storage backend's wire name
	// ("" / "dense64", "tiled32", "spill32") and SpillDir the spill
	// backend's scratch directory. Truncation is the stratified-truncated
	// walk length (0 = full walks). All three round-trip so replay after
	// resume reproduces bit-identical values.
	StoreBackend string `json:"store_backend,omitempty"`
	SpillDir     string `json:"spill_dir,omitempty"`
	Truncation   int    `json:"truncation,omitempty"`
	// Semivalues lists the extra heads the session prices alongside Shapley
	// (WithSemivalues), by wire name. Round-trips so a resumed session
	// keeps filling the same heads — and replay reproduces them bit for
	// bit, since heads are deterministic folds over the same walks.
	Semivalues []string `json:"semivalues,omitempty"`
}

// snapshotConfig serialises a session config. Fields matching the
// option-free defaults are zeroed so they omit from the JSON.
func snapshotConfig(cfg config, n int) *SnapshotConfig {
	def := defaultConfig(n)
	sc := &SnapshotConfig{
		Seed:           cfg.seed,
		KeepPerms:      cfg.keepPerms,
		TrackDeletions: cfg.trackDeletions,
		MultiDelete:    cfg.multiDelete,
		Candidates:     append([]int(nil), cfg.candidates...),
		CacheDisabled:  !cfg.cacheEnabled,
		KernelDisabled: cfg.noKernel,
		Workers:        cfg.workers,
		TargetEps:      cfg.targetEps,
		TargetDelta:    cfg.targetDelta,
		SpillDir:       cfg.spillDir,
		Truncation:     cfg.truncation,
	}
	if cfg.storeKind != StoreDense64 {
		sc.StoreBackend = cfg.storeKind.String()
	}
	if cfg.headCount() > 0 {
		sc.Semivalues = semivalue.Keys(cfg.semivalues)
	}
	if cfg.updateTau != cfg.tau {
		sc.UpdateSamples = cfg.updateTau
	}
	if cfg.truncationTol != def.truncationTol {
		sc.TruncationTol = cfg.truncationTol
	}
	if cfg.knnK != def.knnK {
		sc.HeuristicK = cfg.knnK
	}
	return sc
}

// apply overlays the persisted configuration onto cfg.
func (sc *SnapshotConfig) apply(cfg *config) {
	if sc.UpdateSamples > 0 {
		cfg.updateTau = sc.UpdateSamples
	}
	if sc.Seed != 0 {
		cfg.seed = sc.Seed
	}
	cfg.keepPerms = sc.KeepPerms
	cfg.trackDeletions = sc.TrackDeletions
	cfg.multiDelete = sc.MultiDelete
	cfg.candidates = append([]int(nil), sc.Candidates...)
	if sc.TruncationTol > 0 {
		cfg.truncationTol = sc.TruncationTol
	}
	if sc.HeuristicK > 0 {
		cfg.knnK = sc.HeuristicK
	}
	cfg.cacheEnabled = !sc.CacheDisabled
	cfg.noKernel = sc.KernelDisabled
	cfg.workers = sc.Workers
	cfg.targetEps = sc.TargetEps
	cfg.targetDelta = sc.TargetDelta
	if k, err := core.ParseBackendKind(sc.StoreBackend); err == nil {
		cfg.storeKind = k
	}
	cfg.spillDir = sc.SpillDir
	cfg.truncation = sc.Truncation
	if ws, err := semivalue.ParseAll(sc.Semivalues); err == nil {
		cfg.semivalues = ws
	}
}

// Snapshot captures the session's durable state — a non-blocking read of
// the latest published version, even while an update is in flight.
func (s *Session) Snapshot() *Snapshot {
	st := s.state.Load()
	train := st.train.Clone()
	test := s.test.Clone()
	jst := s.journal.State()
	// Wall time is run metadata, not replayable state: dropping it keeps
	// snapshots byte-identical across runs with identical flags and seeds.
	for i := range jst.Entries {
		jst.Entries[i].Seconds = 0
	}
	var heads map[string][]float64
	if s.cfg.headCount() > 0 && len(st.heads) == s.cfg.headCount() {
		heads = make(map[string][]float64, s.cfg.headCount())
		for h, w := range s.cfg.semivalues {
			heads[w.Key()] = append([]float64(nil), st.heads[h]...)
		}
	}
	return &Snapshot{
		Format:  2,
		Version: st.version,
		Train:   train.Points,
		Test:    test.Points,
		Classes: train.Classes,
		Values:  append([]float64(nil), st.sv...),
		Heads:   heads,
		Samples: s.cfg.tau,
		Config:  snapshotConfig(s.cfg, train.Len()),
		Journal: &jst,
	}
}

// WriteTo serialises the snapshot as JSON.
func (sn *Snapshot) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("dynshap: encoding snapshot: %w", err)
	}
	n, err := w.Write(b)
	return int64(n), err
}

// Save writes the snapshot to the file at path.
func (sn *Snapshot) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dynshap: %w", err)
	}
	if _, err := sn.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot parses a JSON snapshot in format 1 or 2.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sn); err != nil {
		return nil, fmt.Errorf("dynshap: decoding snapshot: %w", err)
	}
	if sn.Format != 1 && sn.Format != 2 {
		return nil, fmt.Errorf("dynshap: unsupported snapshot format %d", sn.Format)
	}
	if len(sn.Values) != 0 && len(sn.Values) != len(sn.Train) {
		return nil, fmt.Errorf("dynshap: snapshot has %d values for %d points", len(sn.Values), len(sn.Train))
	}
	return &sn, nil
}

// LoadSnapshot reads a snapshot from the file at path.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dynshap: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// Resume reconstructs a session from the snapshot. The returned session has
// the recorded values installed and is immediately usable for AlgoAuto,
// AlgoDelta, AlgoKNN, AlgoKNNPlus, AlgoBase and from-scratch updates;
// algorithms that need maintained structures (AlgoPivotSame/Different,
// AlgoYNNN) require a Refresh first. Format-2 snapshots restore the
// persisted configuration — including multi-delete candidates, workers and
// target error, which format 1 dropped — plus the journal, so History and
// ReplayTo keep working across the restart; explicit opts override the
// persisted configuration.
func (sn *Snapshot) Resume(trainer Trainer, opts ...Option) (*Session, error) {
	if len(sn.Values) != 0 && len(sn.Values) != len(sn.Train) {
		return nil, fmt.Errorf("dynshap: snapshot has %d values for %d points", len(sn.Values), len(sn.Train))
	}
	train := dataset.New(clonePoints(sn.Train))
	test := dataset.New(clonePoints(sn.Test))
	if sn.Classes > train.Classes {
		train.Classes = sn.Classes
	}
	if sn.Classes > test.Classes {
		test.Classes = sn.Classes
	}
	cfg := defaultConfig(train.Len())
	if sn.Samples > 0 {
		cfg.tau = sn.Samples
	}
	if sn.Config != nil {
		sn.Config.apply(&cfg)
	}
	for _, o := range opts {
		o(&cfg)
	}
	s := newSessionFromConfig(train, test, trainer, cfg)
	// The resumed state version comes from the journal, never from the
	// document's Version field: a mismatch between the two would corrupt the
	// append-only version sequence.
	version := 0
	if sn.Journal != nil {
		for i, u := range sn.Journal.Entries {
			if u.Version != i+1 {
				return nil, fmt.Errorf("dynshap: snapshot journal entry %d has version %d, want %d", i, u.Version, i+1)
			}
		}
		s.journal = journal.Restore(*sn.Journal)
		version = s.journal.LastVersion()
	} else if len(sn.Values) > 0 {
		// A format-1 snapshot has values but no history: record them as the
		// journal's base so ReplayTo(0) reproduces the resume point.
		s.journal = journal.New(train.Points, train.Classes, sn.Values)
	}
	if len(sn.Values) > 0 || version > 0 {
		// Re-order the snapshot's named head values into the resumed
		// config's head order so ValuesFor answers immediately; heads the
		// snapshot lacks resume empty and refill on the next sampled pass.
		var heads [][]float64
		if cfg.headCount() > 0 && sn.Heads != nil {
			heads = make([][]float64, cfg.headCount())
			for h, w := range cfg.semivalues {
				heads[h] = append([]float64(nil), sn.Heads[w.Key()]...)
			}
		}
		s.installBase(sn.Values, heads, version)
	}
	return s, nil
}

func clonePoints(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}
