package dynshap_test

// Soak test for the spill storage backend: a 100-step add/delete churn on a
// session whose YN-NN deletion arrays live in a memory-mapped scratch file.
// Beyond not crashing, the durable state must stay deterministic — ReplayTo
// is bitwise-stable across repeated replays, and a Snapshot/Resume round
// trip carries the spill configuration and reproduces the same values.

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dynshap"
)

func TestSpillSessionSoakReplayResume(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	data := dynshap.IrisLike(100, 23)
	data.Standardize()
	train := data.Subset(rangeInts(0, 14))
	test := data.Subset(rangeInts(14, 40))
	pool := data.Subset(rangeInts(40, 100)).Points

	spillDir := t.TempDir()
	trainer := dynshap.KNNClassifier{K: 3}
	s := dynshap.NewSession(train, test, trainer,
		dynshap.WithSamples(120),
		dynshap.WithUpdateSamples(60),
		dynshap.WithSeed(5),
		dynshap.WithTrackDeletions(),
		dynshap.WithStoreSpill(spillDir))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(3))
	poolIdx := 0
	const steps = 100
	for step := 0; step < steps; step++ {
		n := s.N()
		add := n <= 8 || (poolIdx < len(pool) && r.Intn(2) == 0)
		if add && poolIdx >= len(pool) {
			t.Fatalf("step %d: pool exhausted with n=%d; widen the pool", step, n)
		}
		if add {
			if _, err := s.Add(pool[poolIdx:poolIdx+1], dynshap.AlgoAuto); err != nil {
				t.Fatalf("step %d: Add: %v", step, err)
			}
			poolIdx++
		} else {
			if _, err := s.Delete([]int{r.Intn(n)}, dynshap.AlgoAuto); err != nil {
				t.Fatalf("step %d: Delete: %v", step, err)
			}
		}
		// Periodic refresh rebuilds the spill-backed arrays through the full
		// engine fill path (and re-arms the planner's exact merge route).
		if step%10 == 9 {
			if err := s.Refresh(); err != nil {
				t.Fatalf("step %d: Refresh: %v", step, err)
			}
		}
	}
	for i, v := range s.Values() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Values()[%d] = %v after soak", i, v)
		}
	}

	// ReplayTo must be bitwise-stable: replaying the full journal twice
	// produces identical vectors, matching the live session exactly.
	head := s.Version()
	rep1, err := s.ReplayTo(head)
	if err != nil {
		t.Fatalf("ReplayTo(%d): %v", head, err)
	}
	rep2, err := s.ReplayTo(head)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1.Values(), rep2.Values()) {
		t.Fatal("two replays of the same journal diverged")
	}
	if !reflect.DeepEqual(rep1.Values(), s.Values()) {
		t.Fatal("replayed head differs from the live session values")
	}

	// Snapshot/Resume round trip: the spill configuration persists and the
	// resumed session carries bit-identical values and the same journal.
	snap := s.Snapshot()
	if snap.Config == nil || snap.Config.StoreBackend != "spill32" || snap.Config.SpillDir != spillDir {
		t.Fatalf("snapshot config lost the spill backend: %+v", snap.Config)
	}
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap2, err := dynshap.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := snap2.Resume(trainer)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version() != head {
		t.Fatalf("resumed version %d, want %d", s2.Version(), head)
	}
	if !reflect.DeepEqual(s2.Values(), s.Values()) {
		t.Fatal("resumed values differ from the live session")
	}
	rep3, err := s2.ReplayTo(head)
	if err != nil {
		t.Fatalf("resumed ReplayTo(%d): %v", head, err)
	}
	if !reflect.DeepEqual(rep3.Values(), rep1.Values()) {
		t.Fatal("replay after resume diverged from replay before resume")
	}

	// The resumed session must stay operable on the spill backend: rebuild
	// its artifacts and run one more exact-capable deletion.
	if err := s2.Refresh(); err != nil {
		t.Fatalf("resumed Refresh: %v", err)
	}
	if _, err := s2.Delete([]int{0}, dynshap.AlgoAuto); err != nil {
		t.Fatalf("resumed Delete: %v", err)
	}
}
