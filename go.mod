module dynshap

go 1.22
