package dynshap

import (
	"fmt"
	"sort"
	"sync"

	"dynshap/internal/ml"
	"dynshap/internal/utility"
)

// This file holds valuation conveniences on top of the Session/estimator
// core: building utility games directly, ranking points, and turning values
// into monetary payouts — the broker-side operations the paper's data
// market (Figure 1) performs with Shapley values.

// ModelGame builds the cooperative game the library values: players are the
// points of train and U(S) is the test accuracy of a model produced by
// trainer on the coalition S. The datasets are cloned. Use it with the
// game-level estimators when the Session abstraction is more than you need.
func ModelGame(train, test *Dataset, trainer Trainer) Game {
	return utility.NewModelUtility(train, test, trainer)
}

// Accuracy scores a classifier on a dataset — the utility metric.
func Accuracy(c Classifier, test *Dataset) float64 { return ml.Accuracy(c, test) }

// Ranked is one entry of a valuation ranking.
type Ranked struct {
	// Index is the point's position in the valued dataset.
	Index int
	// Value is its Shapley value.
	Value float64
}

// Rank returns the points ordered by decreasing value, ties broken by index.
func Rank(values []float64) []Ranked {
	out := make([]Ranked, len(values))
	for i, v := range values {
		out[i] = Ranked{Index: i, Value: v}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value > out[b].Value
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// TopK returns the indices of the k most valuable points (all indices when
// k exceeds the count).
func TopK(values []float64, k int) []int {
	ranked := Rank(values)
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].Index
	}
	return out
}

// rankStore lazily caches a published state's sorted rank orders, keyed by
// head (0 = the Shapley head, 1+h = the h-th configured semivalue head).
// Published values are immutable, so the order is computed once per
// (version, head) however many readers ask; readers receive copies of the
// cached slice, never the slice itself.
type rankStore struct {
	mu     sync.Mutex
	byHead map[int][]Ranked
}

func newRankStore() *rankStore { return &rankStore{} }

// ranked returns this state's cached rank order for the given head,
// sorting vals on the first request. The returned slice is SHARED — the
// session accessors copy it before handing it to callers.
func (st *sessionState) ranked(head int, vals []float64) []Ranked {
	rs := st.ranks
	if rs == nil {
		// States predate the cache only in tests poking at zero values;
		// fall back to a fresh sort.
		return Rank(vals)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if r, ok := rs.byHead[head]; ok {
		return r
	}
	r := Rank(vals)
	if rs.byHead == nil {
		rs.byHead = make(map[int][]Ranked, 1)
	}
	rs.byHead[head] = r
	return r
}

// topOf copies the first k indices out of a cached rank order.
func topOf(ranked []Ranked, k int) []int {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].Index
	}
	return out
}

// Rank returns the session's points ordered by decreasing current value —
// a non-blocking read of the latest published state. The order is sorted
// once per published version and cached, so repeated reads between updates
// pay only the copy.
func (s *Session) Rank() []Ranked {
	st := s.state.Load()
	return append([]Ranked(nil), st.ranked(0, st.sv)...)
}

// TopK returns the indices of the session's k most valuable points under
// the latest published values, read off the per-version cached rank order.
func (s *Session) TopK(k int) []int {
	st := s.state.Load()
	return topOf(st.ranked(0, st.sv), k)
}

// headValues resolves a weighting to its rank-cache head index and the
// state's value slice for it (SHARED — callers copy before returning).
// Head 0 is the Shapley head; configured heads follow in order. A nil
// slice with nil error means the head exists but holds no values yet
// (before Init), mirroring Values.
func (s *Session) headValues(st *sessionState, sv Semivalue) (int, []float64, error) {
	if sv.IsShapley() {
		return 0, st.sv, nil
	}
	for h, w := range s.cfg.semivalues {
		if w.Key() == sv.Key() {
			if h >= len(st.heads) {
				return h + 1, nil, nil
			}
			return h + 1, st.heads[h], nil
		}
	}
	return 0, nil, fmt.Errorf("dynshap: semivalue %v is not maintained by this session; pass it to WithSemivalues", sv)
}

// ValuesFor returns the session's current estimates under the given
// semivalue weighting — a non-blocking read of the latest published
// version, like Values. The Shapley weighting is always available (it is
// the session's native head); any other weighting must have been
// configured with WithSemivalues, whose heads every sampled pass fills for
// free. Returns nil (no error) before Init, mirroring Values.
func (s *Session) ValuesFor(sv Semivalue) ([]float64, error) {
	st := s.state.Load()
	_, vals, err := s.headValues(st, sv)
	if err != nil {
		return nil, err
	}
	if vals == nil {
		return nil, nil
	}
	return append([]float64(nil), vals...), nil
}

// RankFor is Rank under the given semivalue weighting, served from the
// same per-version cached order.
func (s *Session) RankFor(sv Semivalue) ([]Ranked, error) {
	st := s.state.Load()
	head, vals, err := s.headValues(st, sv)
	if err != nil {
		return nil, err
	}
	return append([]Ranked(nil), st.ranked(head, vals)...), nil
}

// TopKFor is TopK under the given semivalue weighting, read off the
// per-version cached rank order.
func (s *Session) TopKFor(k int, sv Semivalue) ([]int, error) {
	st := s.state.Load()
	head, vals, err := s.headValues(st, sv)
	if err != nil {
		return nil, err
	}
	return topOf(st.ranked(head, vals), k), nil
}

// Allocate distributes revenue over the data owners in proportion to their
// positive Shapley values — the compensation rule of the paper's market
// model. Owners with non-positive values receive zero (the zero-element
// axiom: no contribution, no payment). If no value is positive, everything
// is zero.
func Allocate(values []float64, revenue float64) []float64 {
	out := make([]float64, len(values))
	var total float64
	for _, v := range values {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return out
	}
	for i, v := range values {
		if v > 0 {
			out[i] = revenue * v / total
		}
	}
	return out
}
