package dynshap

import (
	"fmt"
	"sort"

	"dynshap/internal/ml"
	"dynshap/internal/utility"
)

// This file holds valuation conveniences on top of the Session/estimator
// core: building utility games directly, ranking points, and turning values
// into monetary payouts — the broker-side operations the paper's data
// market (Figure 1) performs with Shapley values.

// ModelGame builds the cooperative game the library values: players are the
// points of train and U(S) is the test accuracy of a model produced by
// trainer on the coalition S. The datasets are cloned. Use it with the
// game-level estimators when the Session abstraction is more than you need.
func ModelGame(train, test *Dataset, trainer Trainer) Game {
	return utility.NewModelUtility(train, test, trainer)
}

// Accuracy scores a classifier on a dataset — the utility metric.
func Accuracy(c Classifier, test *Dataset) float64 { return ml.Accuracy(c, test) }

// Ranked is one entry of a valuation ranking.
type Ranked struct {
	// Index is the point's position in the valued dataset.
	Index int
	// Value is its Shapley value.
	Value float64
}

// Rank returns the points ordered by decreasing value, ties broken by index.
func Rank(values []float64) []Ranked {
	out := make([]Ranked, len(values))
	for i, v := range values {
		out[i] = Ranked{Index: i, Value: v}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value > out[b].Value
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// TopK returns the indices of the k most valuable points (all indices when
// k exceeds the count).
func TopK(values []float64, k int) []int {
	ranked := Rank(values)
	if k > len(ranked) {
		k = len(ranked)
	}
	if k < 0 {
		k = 0
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].Index
	}
	return out
}

// Rank returns the session's points ordered by decreasing current value —
// a non-blocking read of the latest published state.
func (s *Session) Rank() []Ranked { return Rank(s.state.Load().sv) }

// TopK returns the indices of the session's k most valuable points under
// the latest published values.
func (s *Session) TopK(k int) []int { return TopK(s.state.Load().sv, k) }

// ValuesFor returns the session's current estimates under the given
// semivalue weighting — a non-blocking read of the latest published
// version, like Values. The Shapley weighting is always available (it is
// the session's native head); any other weighting must have been
// configured with WithSemivalues, whose heads every sampled pass fills for
// free. Returns nil (no error) before Init, mirroring Values.
func (s *Session) ValuesFor(sv Semivalue) ([]float64, error) {
	st := s.state.Load()
	if sv.IsShapley() {
		return append([]float64(nil), st.sv...), nil
	}
	for h, w := range s.cfg.semivalues {
		if w.Key() == sv.Key() {
			if h >= len(st.heads) {
				return nil, nil
			}
			return append([]float64(nil), st.heads[h]...), nil
		}
	}
	return nil, fmt.Errorf("dynshap: semivalue %v is not maintained by this session; pass it to WithSemivalues", sv)
}

// RankFor is Rank under the given semivalue weighting.
func (s *Session) RankFor(sv Semivalue) ([]Ranked, error) {
	vals, err := s.ValuesFor(sv)
	if err != nil {
		return nil, err
	}
	return Rank(vals), nil
}

// TopKFor is TopK under the given semivalue weighting.
func (s *Session) TopKFor(k int, sv Semivalue) ([]int, error) {
	vals, err := s.ValuesFor(sv)
	if err != nil {
		return nil, err
	}
	return TopK(vals, k), nil
}

// Allocate distributes revenue over the data owners in proportion to their
// positive Shapley values — the compensation rule of the paper's market
// model. Owners with non-positive values receive zero (the zero-element
// axiom: no contribution, no payment). If no value is positive, everything
// is zero.
func Allocate(values []float64, revenue float64) []float64 {
	out := make([]float64, len(values))
	var total float64
	for _, v := range values {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return out
	}
	for i, v := range values {
		if v > 0 {
			out[i] = revenue * v / total
		}
	}
	return out
}
