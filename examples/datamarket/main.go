// Datamarket: a broker values the same owners' data across several model
// tasks and settles compensation from each task's revenue. The additivity
// axiom guarantees per-task values sum to the value on the combined
// business, so the ledger is just a sum over tasks. Snapshots persist each
// task's valuation across broker restarts. Each session also prices a
// Banzhaf head from the same permutation passes (WithSemivalues) and
// reports the Shapley/Banzhaf rank correlation after every update step —
// a cheap sanity check that the settlement ordering is not an artifact of
// the Shapley weighting.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dynshap"
)

// task is one model product the broker sells.
type task struct {
	name    string
	trainer dynshap.Trainer
	revenue float64
}

func main() {
	// Owners contribute one data point each to a shared pool; the broker
	// trains different models for different buyers on the same pool.
	pool := dynshap.AdultLike(140, 99)
	pool.Standardize()
	train := pool.Subset(seq(0, 100))
	test := pool.Subset(seq(100, 140))

	tasks := []task{
		{"income-svm", dynshap.SVM{Epochs: 8}, 12000},
		{"income-logreg", dynshap.LogReg{Epochs: 15}, 8000},
		{"income-knn", dynshap.KNNClassifier{K: 5}, 5000},
	}

	dir, err := os.MkdirTemp("", "datamarket")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	totalPay := make([]float64, train.Len())
	sessions := make([]*dynshap.Session, len(tasks))
	for ti, tk := range tasks {
		s := dynshap.NewSession(train, test, tk.trainer,
			dynshap.WithSamples(800), dynshap.WithSeed(uint64(100+ti)),
			dynshap.WithSemivalues(dynshap.Banzhaf()))
		fmt.Printf("valuing task %q…\n", tk.name)
		if err := s.Init(); err != nil {
			log.Fatal(err)
		}
		sessions[ti] = s
		headCorr(s, tk.name, "after init")
		// Persist per-task state: the broker can restart and resume.
		snapPath := filepath.Join(dir, tk.name+".json")
		if err := s.Snapshot().Save(snapPath); err != nil {
			log.Fatal(err)
		}
		addRevenue(totalPay, s.Values(), tk.revenue)
	}
	payout("initial settlement", totalPay)

	// An owner exercises deletion across ALL tasks. Each session updates
	// with the delta-based algorithm (snapshot-resumable, no arrays needed).
	fmt.Println("\nowner 42 withdraws from the market…")
	for ti, tk := range tasks {
		snapPath := filepath.Join(dir, tk.name+".json")
		sn, err := dynshap.LoadSnapshot(snapPath)
		if err != nil {
			log.Fatal(err)
		}
		s, err := sn.Resume(tk.trainer, dynshap.WithSeed(uint64(200+ti)),
			dynshap.WithUpdateSamples(600))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := s.Delete([]int{42}, dynshap.AlgoDelta); err != nil {
			log.Fatal(err)
		}
		if err := s.Snapshot().Save(snapPath); err != nil {
			log.Fatal(err)
		}
		sessions[ti] = s
		headCorr(s, tk.name, "after withdrawal")
	}

	totalPay = make([]float64, sessions[0].N())
	for ti, tk := range tasks {
		addRevenue(totalPay, sessions[ti].Values(), tk.revenue)
	}
	payout("settlement after withdrawal", totalPay)
}

// addRevenue distributes one task's revenue proportionally to positive
// Shapley value and accumulates it into the cross-task ledger (additivity:
// per-task allocations sum to the combined-business allocation).
func addRevenue(pay, values []float64, revenue float64) {
	for i, p := range dynshap.Allocate(values, revenue) {
		pay[i] += p
	}
}

// headCorr prints the Spearman rank correlation between the session's
// Shapley values and its Banzhaf head — both filled by the same walks, so
// the comparison costs nothing beyond the print. The Banzhaf head survives
// snapshot/Resume (the snapshot records configured heads), so the
// post-withdrawal rows read resumed sessions.
func headCorr(s *dynshap.Session, name, stage string) {
	bz, err := s.ValuesFor(dynshap.Banzhaf())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s %s: Shapley/Banzhaf rank correlation %+.3f\n",
		name, stage, dynshap.RankCorrelation(s.Values(), bz))
}

func payout(stage string, pay []float64) {
	var sum float64
	best := 0
	zero := 0
	for i, p := range pay {
		sum += p
		if p > pay[best] {
			best = i
		}
		if p == 0 {
			zero++
		}
	}
	fmt.Printf("%s: %d owners share $%.2f; best-paid owner %d earns $%.2f; %d owners earn nothing\n",
		stage, len(pay), sum, best, pay[best], zero)
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
