// Convergence: how many permutations does a valuation need? This example
// contrasts the a-priori Hoeffding sample sizes of the paper's Theorems 1,
// 2 and 4 with adaptive sampling that stops when the observed standard
// errors meet the target — usually far earlier, because Hoeffding bounds
// assume worst-case variance.
package main

import (
	"fmt"

	"dynshap"
)

func main() {
	const (
		eps   = 0.01 // target absolute error
		delta = 0.05 // failure probability
	)

	data := dynshap.IrisLike(80, 17)
	data.Standardize()
	train := data.Subset(seq(0, 50))
	test := data.Subset(seq(50, 80))
	g := dynshap.ModelGame(train, test, dynshap.KNNClassifier{K: 3})
	n := g.N()

	// A-priori bounds. Marginal contributions of an accuracy utility lie in
	// [−1, 1] (r = 1); differential marginal contributions rarely exceed a
	// couple of test-set granularities (d ≈ 0.1).
	fmt.Printf("target: |error| ≤ %g with confidence %g, n = %d\n\n", eps, 1-delta, n)
	fmt.Printf("Theorem 1 (pivot, r=1):      τ ≥ %7d permutations\n",
		dynshap.PivotSampleSize(1, eps, delta))
	fmt.Printf("Theorem 2 (delta add, d=.1): τ ≥ %7d permutations\n",
		dynshap.DeltaAddSampleSize(n, 0.1, eps, delta))
	fmt.Printf("Theorem 4 (delta del, d=.1): τ ≥ %7d permutations\n\n",
		dynshap.DeltaDeleteSampleSize(n, 0.1, eps, delta))

	// Adaptive sampling: stop when every player's CLT half-width is within ϵ.
	tracker := dynshap.NewShapleyTracker(g, 23)
	values, used := tracker.RunUntil(eps, delta, 50, 200000)
	fmt.Printf("adaptive tracker stopped after %d permutations (max stderr %.5f)\n",
		used, tracker.MaxStdErr())

	ranked := dynshap.Rank(values)
	fmt.Println("\nmost valuable points:")
	for _, r := range ranked[:5] {
		fmt.Printf("  point %2d: SV %+0.5f\n", r.Index, r.Value)
	}
	pay := dynshap.Allocate(values, 10000)
	fmt.Printf("\nan owner portfolio of $10000 pays the top point $%.2f\n", pay[ranked[0].Index])
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
