// Quickstart: value a small dataset, then keep the valuation current as
// points arrive and leave — without recomputing from scratch.
package main

import (
	"fmt"
	"log"

	"dynshap"
)

func main() {
	// A synthetic Iris-style dataset: 3 classes, 4 features. Drop in your
	// own data with dynshap.LoadCSV or dynshap.NewDataset.
	data := dynshap.IrisLike(130, 42)
	data.Standardize()
	train := data.Subset(indices(0, 100))
	test := data.Subset(indices(100, 130))

	// A session owns the valuation state. WithTrackDeletions maintains the
	// YN-NN arrays so a future deletion is exact and instant;
	// WithKeepPermutations enables the Pivot-s addition algorithm.
	s := dynshap.NewSession(train, test, dynshap.SVM{Epochs: 8},
		dynshap.WithSamples(1000),
		dynshap.WithUpdateSamples(400),
		dynshap.WithSeed(7),
		dynshap.WithTrackDeletions(),
		dynshap.WithKeepPermutations(),
	)
	fmt.Println("computing initial Shapley values (one Monte Carlo pass)…")
	if err := s.Init(); err != nil {
		log.Fatal(err)
	}
	report("initial", s)

	// A new data owner joins: update incrementally with the delta-based
	// algorithm (Algorithm 5) — it converges with far fewer samples than
	// re-running Monte Carlo because it estimates the *change* per point.
	newPoint := dynshap.Point{X: []float64{0.3, -0.1, 0.5, 0.4}, Y: 1}
	if _, err := s.Add([]dynshap.Point{newPoint}, dynshap.AlgoDelta); err != nil {
		log.Fatal(err)
	}
	report("after adding one point (Delta)", s)

	// An owner withdraws consent: the YN-NN arrays recover the new values
	// exactly, without training a single additional model.
	before := s.ModelTrainings()
	if err := s.Refresh(); err != nil { // rebuild arrays for the grown set
		log.Fatal(err)
	}
	refreshCost := s.ModelTrainings() - before
	before = s.ModelTrainings()
	if _, err := s.Delete([]int{13}, dynshap.AlgoYNNN); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deletion cost: %d model trainings (refresh pass before it: %d)\n",
		s.ModelTrainings()-before, refreshCost)
	report("after deleting point 13 (YN-NN, exact)", s)

	// Under the soft k-NN utility none of the sampling above is needed:
	// the closed form (Jia et al.) is exact, and the session keeps it
	// exact through updates by maintaining sorted neighbour orders —
	// AlgoAuto routes every operation onto the Exact-KNN path at zero
	// model trainings.
	fmt.Println("\nexact k-NN fast path (SoftKNNClassifier, no sampling):")
	e := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: 5},
		dynshap.WithSeed(7))
	if err := e.Init(); err != nil {
		log.Fatal(err)
	}
	report("exact initial", e)
	if _, err := e.Add([]dynshap.Point{newPoint}, dynshap.AlgoAuto); err != nil {
		log.Fatal(err)
	}
	if _, err := e.Delete([]int{13}, dynshap.AlgoAuto); err != nil {
		log.Fatal(err)
	}
	report("exact after add + delete", e)
	last, err := e.At(e.Version())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journal: %s via %s, %d model trainings total — planner: %s\n",
		last.Op, last.Algo, e.ModelTrainings(), last.Decision[len(last.Decision)-1])
}

func report(stage string, s *dynshap.Session) {
	values := s.Values()
	best, worst := 0, 0
	var total float64
	for i, v := range values {
		total += v
		if v > values[best] {
			best = i
		}
		if v < values[worst] {
			worst = i
		}
	}
	fmt.Printf("%s: %d points, ΣSV=%.4f (=U(N)−U(∅)), most valuable #%d (%.5f), least #%d (%.5f)\n",
		stage, len(values), total, best, values[best], worst, values[worst])
}

func indices(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
