// Games: the paper's algorithms work for any cooperative game with a
// characteristic utility function, not only for data valuation. This
// example values voters in a weighted voting game (Shapley–Shubik power
// indices), then updates the indices incrementally when a new voter joins
// and when a voter leaves — the "dynamic players" setting of §I.
package main

import (
	"fmt"
	"log"

	"dynshap"
)

// votingGame returns the weighted majority game over the given weights:
// U(S) = 1 iff S's total weight reaches the quota. The Shapley value of a
// voter is its Shapley–Shubik power index.
func votingGame(weights []float64, quota float64) dynshap.Game {
	return dynshap.GameFunc{
		Players: len(weights),
		U: func(s dynshap.Coalition) float64 {
			var w float64
			s.ForEach(func(i int) { w += weights[i] })
			if w >= quota {
				return 1
			}
			return 0
		},
	}
}

func main() {
	// A council: one large party and several small ones. Quota = majority.
	weights := []float64{40, 25, 15, 10, 5, 5}
	const quota = 51.0
	g := votingGame(weights, quota)

	// Small player sets admit exact enumeration; for weighted voting the
	// subset-sum DP gives the same answer in pseudo-polynomial time and
	// scales to councils far beyond 2^n enumeration.
	power := dynshap.ExactShapley(g)
	intWeights := []int{40, 25, 15, 10, 5, 5}
	dp, err := dynshap.ShapleyShubik(intWeights, 51)
	if err != nil {
		log.Fatal(err)
	}
	if dynshap.MSE(power, dp) > 1e-20 {
		log.Fatal("enumeration and DP disagree")
	}
	show("initial council (exact, enumeration == subset-sum DP)", weights, power)

	// A new 20-seat party enters. Rather than recomputing, derive the new
	// power distribution from the old one with the delta-based algorithm.
	// (Exact recomputation is shown for comparison — with ML utilities it
	// would be the expensive path.)
	grown := append(append([]float64{}, weights...), 20)
	gPlus := votingGame(grown, quota)
	updated, err := dynshap.DeltaAddShapley(gPlus, power, 20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	exact := dynshap.ExactShapley(gPlus)
	show("after 20-seat party joins (Delta estimate)", grown, updated)
	fmt.Printf("  estimate vs exact MSE: %.2e\n\n", dynshap.MSE(updated, exact))

	// Preprocess deletion arrays while computing power for the grown
	// council; any single departure is then answered exactly and instantly.
	arrays := dynshap.PreprocessDeletion(gPlus, 30000, 11)
	afterExit, err := arrays.Merge(1) // the 25-seat party dissolves
	if err != nil {
		log.Fatal(err)
	}
	exactExit := dynshap.ExactShapley(dynshap.RestrictGame(gPlus, 1))
	show("after the 25-seat party dissolves (YN-NN merge)", grown, afterExit)
	// afterExit keeps original indexing with 0 at the removed player;
	// compare survivors against exact values of the restricted game.
	var mse float64
	ri := 0
	for i, v := range afterExit {
		if i == 1 {
			continue
		}
		d := v - exactExit[ri]
		mse += d * d / float64(len(exactExit))
		ri++
	}
	fmt.Printf("  merge vs exact MSE: %.2e\n", mse)
}

func show(stage string, weights, power []float64) {
	fmt.Printf("%s:\n", stage)
	for i, p := range power {
		if i < len(weights) {
			fmt.Printf("  party %d (weight %2.0f): power %.4f\n", i, weights[i], p)
		}
	}
	fmt.Println()
}
