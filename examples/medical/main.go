// Medical: the paper's motivating example. A medical institution builds a
// heart-disease classifier from patient records; patients are compensated
// in proportion to their Shapley value. New patients join and existing
// participants drop out, and the institution keeps the compensation ledger
// current with incremental updates instead of recomputing from scratch.
package main

import (
	"fmt"
	"log"

	"dynshap"
)

// patientData synthesises a heart-disease-style cohort: age, resting blood
// pressure, cholesterol, max heart rate; label 1 = disease. (The paper uses
// the Cleveland Heart Disease dataset; the generator mirrors its marginals.)
func patientData(n int, seed uint64) *dynshap.Dataset {
	base := dynshap.AdultLike(n, seed) // reuse the mixed-feature generator
	pts := make([]dynshap.Point, n)
	for i, p := range base.Points {
		age := p.X[0]
		rbps := 110 + age*0.6 + 10*float64(i%7-3)
		chol := 180 + age*0.9 + 8*float64(i%11-5)
		thalach := 200 - age*1.05
		pts[i] = dynshap.Point{X: []float64{age, rbps, chol, thalach}, Y: p.Y}
	}
	return dynshap.NewDataset(pts)
}

func main() {
	const modelRevenue = 10000.0 // per-task revenue to distribute

	cohort := patientData(120, 11)
	cohort.Standardize()
	train := cohort.Subset(seq(0, 90))
	test := cohort.Subset(seq(90, 120))

	s := dynshap.NewSession(train, test, dynshap.LogReg{Epochs: 15},
		dynshap.WithSamples(900),
		dynshap.WithUpdateSamples(300),
		dynshap.WithSeed(3),
		dynshap.WithTrackDeletions(),
	)
	fmt.Println("valuing the initial cohort of 90 patients…")
	if err := s.Init(); err != nil {
		log.Fatal(err)
	}
	ledger("initial cohort", s, modelRevenue)

	// Two new patients enroll. The broker updates compensation with the
	// delta-based algorithm; each costs 2n utility evaluations per sampled
	// permutation but needs far fewer permutations to converge (Theorem 2).
	newPatients := []dynshap.Point{
		{X: []float64{1.2, 0.9, 1.1, -1.0}, Y: 1}, // older, hypertensive
		{X: []float64{-1.0, -0.6, -0.7, 0.9}, Y: 0},
	}
	if _, err := s.Add(newPatients, dynshap.AlgoDelta); err != nil {
		log.Fatal(err)
	}
	ledger("after two enrollments (Delta)", s, modelRevenue)

	// A patient revokes consent (GDPR erasure). Their data leaves the
	// training set and compensation is re-derived for everyone remaining.
	if err := s.Refresh(); err != nil {
		log.Fatal(err)
	}
	trainingsBefore := s.ModelTrainings()
	if _, err := s.Delete([]int{7}, dynshap.AlgoYNNN); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consent revocation handled with %d new model trainings (YN-NN merge)\n",
		s.ModelTrainings()-trainingsBefore)
	ledger("after erasure of patient 7 (YN-NN)", s, modelRevenue)

	// Persist the ledger so the hospital can restart the service.
	if err := s.Snapshot().Save("medical-ledger.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ledger persisted to medical-ledger.json")
}

// ledger prints the compensation each patient earns from the model revenue,
// allocated proportionally to positive Shapley value (the zero-element
// axiom: no contribution, no payment).
func ledger(stage string, s *dynshap.Session, revenue float64) {
	values := s.Values()
	pay := dynshap.Allocate(values, revenue)
	ranked := dynshap.Rank(values)
	top, second := ranked[0].Index, ranked[1].Index
	fmt.Printf("%s: %d patients; top earners: patient %d ($%.2f), patient %d ($%.2f)\n",
		stage, len(values), top, pay[top], second, pay[second])
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
