package dynshap_test

import (
	"fmt"

	"dynshap"
)

// ExampleExactShapley values the classic glove market: player 0 owns a left
// glove, players 1 and 2 own right gloves, and only matched pairs sell.
func ExampleExactShapley() {
	market := dynshap.GameFunc{Players: 3, U: func(s dynshap.Coalition) float64 {
		left, right := 0, 0
		if s.Contains(0) {
			left = 1
		}
		if s.Contains(1) {
			right++
		}
		if s.Contains(2) {
			right++
		}
		if left < right {
			return float64(left)
		}
		return float64(right)
	}}
	sv := dynshap.ExactShapley(market)
	fmt.Printf("left glove: %.4f\n", sv[0])
	fmt.Printf("right gloves: %.4f each\n", sv[1])
	// Output:
	// left glove: 0.6667
	// right gloves: 0.1667 each
}

// ExampleSession shows the end-to-end data-valuation flow: value a training
// set, add a point incrementally, delete a point exactly.
func ExampleSession() {
	data := dynshap.IrisLike(60, 42)
	data.Standardize()
	train := data.Subset(rangeInts(0, 40))
	test := data.Subset(rangeInts(40, 60))

	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
		dynshap.WithSamples(800),
		dynshap.WithSeed(7),
		dynshap.WithTrackDeletions())
	if err := s.Init(); err != nil {
		panic(err)
	}
	fmt.Println("points valued:", len(s.Values()))

	// Exact, instant deletion from the YN-NN arrays built during Init.
	values, err := s.Delete([]int{3}, dynshap.AlgoYNNN)
	if err != nil {
		panic(err)
	}
	fmt.Println("after delete:", len(values))

	// Incremental addition with the delta-based algorithm. (Any update
	// invalidates the deletion arrays; Refresh would rebuild them.)
	newPoint := dynshap.Point{X: []float64{0.1, 0.2, 0.3, 0.4}, Y: 1}
	values, err = s.Add([]dynshap.Point{newPoint}, dynshap.AlgoDelta)
	if err != nil {
		panic(err)
	}
	fmt.Println("after add:", len(values))
	// Output:
	// points valued: 40
	// after delete: 39
	// after add: 40
}

// ExampleAllocate distributes model revenue to data owners proportionally
// to their positive Shapley values.
func ExampleAllocate() {
	values := []float64{0.3, 0.1, -0.05, 0.1}
	pay := dynshap.Allocate(values, 1000)
	for i, p := range pay {
		fmt.Printf("owner %d: $%.2f\n", i, p)
	}
	// Output:
	// owner 0: $600.00
	// owner 1: $200.00
	// owner 2: $0.00
	// owner 3: $200.00
}

// ExamplePivotSampleSize prints the a-priori permutation counts of the
// paper's Theorems for a 1%-accurate valuation at 95% confidence.
func ExamplePivotSampleSize() {
	fmt.Println("pivot (Thm 1): ", dynshap.PivotSampleSize(1, 0.01, 0.05))
	fmt.Println("delta (Thm 2): ", dynshap.DeltaAddSampleSize(100, 0.1, 0.01, 0.05))
	// Output:
	// pivot (Thm 1):  73778
	// delta (Thm 2):  724
}
