// Command dynshapd serves dynamic Shapley valuation sessions over HTTP.
//
// It manages many named sessions, each with its own write-coalescing
// pipeline: concurrent adds from independent clients land in one admission
// window and are priced by a single batched permutation pass, while reads
// are served from the latest published version without ever waiting behind
// an open window. State survives restarts through snapshot-v2 documents
// plus a journal tail (see internal/serve).
//
// Usage:
//
//	dynshapd [-addr :8089] [-data DIR]
//
// Endpoints (JSON bodies; see internal/serve for schemas):
//
//	POST   /v1/sessions                  create a session (synthetic or explicit data)
//	GET    /v1/sessions                  list sessions
//	GET    /v1/sessions/{name}           session info
//	DELETE /v1/sessions/{name}           drain, persist, and unregister
//	POST   /v1/sessions/{name}/add       submit one point (coalesced; returns its attribution)
//	POST   /v1/sessions/{name}/remove    delete points by index (a window barrier)
//	POST   /v1/sessions/{name}/flush     execute everything admitted
//	POST   /v1/sessions/{name}/snapshot  persist a snapshot and reset the journal tail
//	GET    /v1/sessions/{name}/values    latest values (non-blocking)
//	GET    /v1/sessions/{name}/topk?k=   top-k indices by value
//	GET    /v1/sessions/{name}/history   journaled update records
//
// On SIGINT/SIGTERM the server stops accepting requests, drains every
// session's admission queue, and persists final snapshots before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynshap/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8089", "listen address")
	data := flag.String("data", "", "data directory for snapshots and journal tails (empty: memory-only)")
	flag.Parse()

	sv, err := serve.New(serve.Config{DataDir: *data})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynshapd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: sv}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "dynshapd: draining sessions...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		if err := sv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dynshapd: drain:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "dynshapd: listening on %s (data=%q)\n", *addr, *data)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dynshapd:", err)
		os.Exit(1)
	}
	<-done
}
