// Command experiments regenerates the paper's evaluation: every table
// (IV–XIV) and figure (2–6) of "Dynamic Shapley Value Computation"
// (ICDE 2023), printed in the same rows/series the paper reports.
//
// Usage:
//
//	experiments                 # run everything at laptop scale
//	experiments -run T4,T8      # run selected artifacts
//	experiments -quick          # smallest settings (smoke test)
//	experiments -full           # the paper's exact scales (very slow)
//	experiments -list           # list artifact IDs
//
// Scale flags (-n, -trials, -tau, -bench-tau, -large-n, -seed) override the
// chosen preset.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dynshap/internal/bench"
)

func main() {
	var (
		runIDs    = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		quick     = flag.Bool("quick", false, "smallest settings (smoke test)")
		full      = flag.Bool("full", false, "the paper's exact scales (very slow)")
		seed      = flag.Uint64("seed", 0, "override RNG seed")
		trials    = flag.Int("trials", 0, "override trial count")
		n         = flag.Int("n", 0, "override table dataset size")
		tauF      = flag.Int("tau", 0, "override contender τ factor (τ = factor·n)")
		benchTauF = flag.Int("bench-tau", 0, "override benchmark τ factor")
		largeN    = flag.Int("large-n", 0, "override large-table dataset size")
		sizes     = flag.String("sizes", "", "override figure sweep sizes (comma-separated)")
		model     = flag.String("model", "", "override utility model (nb, svm, knn)")
		testSize  = flag.Int("test-size", 0, "override held-out test-set size")
		csvDir    = flag.String("csv-dir", "", "also write each table as <dir>/<ID>.csv")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *full {
		cfg = bench.FullConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *tauF > 0 {
		cfg.TauFactor = *tauF
	}
	if *benchTauF > 0 {
		cfg.BenchTauFactor = *benchTauF
	}
	if *largeN > 0 {
		cfg.LargeN = *largeN
	}
	if *model != "" {
		cfg.Model = *model
	}
	if *testSize > 0 {
		cfg.TestSize = *testSize
	}
	if *sizes != "" {
		cfg.Sizes = nil
		for _, part := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "experiments: bad -sizes entry %q\n", part)
				os.Exit(2)
			}
			cfg.Sizes = append(cfg.Sizes, v)
		}
	}

	ids := bench.IDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	r := bench.NewRunner(cfg)
	failed := false
	for _, id := range ids {
		t, err := r.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			failed = true
			continue
		}
		t.Render(os.Stdout)
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
			if err == nil {
				err = t.WriteCSV(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing CSV for %s: %v\n", id, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
