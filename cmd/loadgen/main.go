// Command loadgen drives mixed add/delete/read traffic against the
// coalescing write pipeline and reports what a serving operator cares
// about: sustained update throughput, p50/p99 update latency, and read
// throughput — the numbers that make the ROADMAP's "heavy traffic from
// many contributors" claim measurable.
//
// Closed-loop workers submit one update, wait for its window to execute,
// and submit the next; readers spin on the latest published values, which
// never block behind an open window. By default the harness runs
// in-process against a Session (the pipeline under test, no HTTP noise);
// with -addr it targets a running dynshapd over HTTP instead.
//
// Results are written in the benchsnap JSON schema (internal/benchfmt),
// so `benchsnap diff old.json new.json` gates load regressions exactly
// like micro-benchmarks: add-ops/s, del-ops/s and read-ops/s are rates (a
// DROP fails), p50-ns/p99-ns/del-p50-ns/del-p99-ns are latencies (a RISE
// fails). Delete latency is reported separately because the mixed-churn
// arm exists to gate it: deletes used to be coalescer barriers, and the
// delete-window pipeline is supposed to move delete p99, not add p50.
//
// Usage:
//
//	loadgen -duration 2s -n 200 -writers 8 -o loadgen.json
//	loadgen -compare -min-speedup 2.0    # k=16 window vs coalescing off
//	loadgen -deletes 0.25 -compare       # mixed churn; delete-window p99 vs barrier-per-delete
//	loadgen -addr localhost:8089         # drive a running dynshapd
//
// -compare runs two arms over the same workload — the configured window
// size, then window 1 (coalescing disabled) — and reports the throughput
// ratio; -min-speedup exits non-zero below the bar.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynshap"
	"dynshap/internal/benchfmt"
)

type config struct {
	addr          string
	n             int
	samples       int
	updateSamples int
	seed          uint64
	writers       int
	readers       int
	duration      time.Duration
	totalAdds     int
	batch         int
	delay         time.Duration
	deleteEvery   int
	deletes       float64
	algo          string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "dynshapd address (host:port); empty runs in-process")
	flag.IntVar(&cfg.n, "n", 200, "initial training-set size")
	flag.IntVar(&cfg.samples, "samples", 200, "permutation samples for the initial computation")
	flag.IntVar(&cfg.updateSamples, "update-samples", 100, "permutation samples per update")
	flag.Uint64Var(&cfg.seed, "seed", 9, "RNG seed")
	flag.IntVar(&cfg.writers, "writers", 8, "closed-loop writer goroutines")
	flag.IntVar(&cfg.readers, "readers", 2, "reader goroutines spinning on Values")
	flag.DurationVar(&cfg.duration, "duration", 2*time.Second, "measurement window per arm (ignored when -adds is set)")
	flag.IntVar(&cfg.totalAdds, "adds", 0, "run each arm for exactly this many adds instead of a time window — compared arms then execute the identical workload over the identical dataset-growth schedule")
	flag.IntVar(&cfg.batch, "batch", 16, "coalescing window size k")
	flag.DurationVar(&cfg.delay, "delay", 2*time.Millisecond, "coalescing window max delay t")
	flag.IntVar(&cfg.deleteEvery, "delete-every", 0, "each writer submits a delete every N adds (0: adds only)")
	flag.Float64Var(&cfg.deletes, "deletes", 0, "mixed-churn arm: fraction of write submissions that are deletes (0-1); concurrent deletes coalesce into delete windows, so only add↔delete transitions are barriers")
	flag.StringVar(&cfg.algo, "algo", "delta", "batch family the planner routes windows to: delta (shared no-pivot chain, best amortisation) or pivot (stored permutations, bit-identical to sequential Pivot-s)")
	out := flag.String("o", "", "write results as a benchsnap JSON snapshot")
	compare := flag.Bool("compare", false, "also run with coalescing disabled (window 1) and report the speedup")
	minSpeedup := flag.Float64("min-speedup", 0, "with -compare: exit non-zero if coalesced/uncoalesced add throughput is below this ratio")
	flag.Parse()

	snap := benchfmt.Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	res, err := runArm(cfg)
	if err != nil {
		fatal(err)
	}
	report(cfg, res)
	snap.Benchmarks = append(snap.Benchmarks, entryFor(cfg, res))

	if *compare {
		solo := cfg
		solo.batch = 1
		soloRes, err := runArm(solo)
		if err != nil {
			fatal(err)
		}
		report(solo, soloRes)
		snap.Benchmarks = append(snap.Benchmarks, entryFor(solo, soloRes))
		speedup := res.addRate() / soloRes.addRate()
		fmt.Printf("coalescing speedup (k=%d vs k=1): %.2fx add throughput\n", cfg.batch, speedup)
		if res.deletes > 0 && soloRes.deletes > 0 {
			// The k=1 arm IS the barrier-per-delete baseline: every delete
			// executes as its own window. The ratio of its delete p99 to the
			// windowed arm's is the latency the delete coalescer removes.
			if windowed, solo := res.delPercentile(0.99), soloRes.delPercentile(0.99); windowed > 0 {
				fmt.Printf("delete-window p99 improvement (k=%d vs barrier-per-delete): %.2fx (%s -> %s)\n",
					cfg.batch, float64(solo)/float64(windowed),
					solo.Round(time.Microsecond), windowed.Round(time.Microsecond))
			}
		}
		if *minSpeedup > 0 && speedup < *minSpeedup {
			fatal(fmt.Errorf("speedup %.2fx below required %.2fx", speedup, *minSpeedup))
		}
	}

	if *out != "" {
		if err := snap.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d result(s) to %s\n", len(snap.Benchmarks), *out)
	}
}

// target abstracts where the traffic lands: an in-process Session or a
// dynshapd session over HTTP.
type target interface {
	add(p dynshap.Point) error
	del(indices []int) error
	read() error
	close() error
}

// result aggregates one arm's measurements. Add and delete latencies are
// kept apart: a churn arm's delete p99 is the number the delete-window
// coalescer is supposed to move, and folding it into the add distribution
// would hide exactly that.
type result struct {
	adds    int
	deletes int
	reads   int64
	lat     []time.Duration // one sample per completed add, sorted on return
	delLat  []time.Duration // one sample per completed delete, sorted on return
	elapsed time.Duration
}

func (r result) addRate() float64 { return float64(r.adds) / r.elapsed.Seconds() }
func (r result) delRate() float64 { return float64(r.deletes) / r.elapsed.Seconds() }

func (r result) percentile(p float64) time.Duration    { return percentileOf(r.lat, p) }
func (r result) delPercentile(p float64) time.Duration { return percentileOf(r.delLat, p) }

func percentileOf(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	return lat[int(p*float64(len(lat)-1))]
}

func runArm(cfg config) (result, error) {
	tgt, err := newTarget(cfg)
	if err != nil {
		return result{}, err
	}
	defer tgt.close()

	// The points every writer draws from: same pool for every arm, so the
	// compared workloads are identical.
	pool := dynshap.IrisLike(4096, cfg.seed+1).Points
	var next uint64

	var stop atomic.Bool
	var claimed int64
	var writers, readers sync.WaitGroup
	writerLat := make([][]time.Duration, cfg.writers)
	writerDelLat := make([][]time.Duration, cfg.writers)
	writerAdds := make([]int, cfg.writers)
	writerDels := make([]int, cfg.writers)
	writerErr := make([]error, cfg.writers)
	var reads int64

	start := time.Now()
	for w := 0; w < cfg.writers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			sinceDelete := 0
			ops, dels := 0, 0
			for !stop.Load() {
				// The mixed-churn arm: keep this writer's delete share at
				// cfg.deletes by interleaving deletes deterministically.
				// Concurrent writers in a delete run land in ONE delete
				// window; deleting index 0 is valid against any non-empty
				// submission-time state, and the coalescer remaps it.
				if cfg.deletes > 0 && float64(dels+1) <= cfg.deletes*float64(ops+1) {
					t0 := time.Now()
					if err := tgt.del([]int{0}); err != nil {
						writerErr[w] = err
						return
					}
					writerDelLat[w] = append(writerDelLat[w], time.Since(t0))
					writerDels[w]++
					ops++
					dels++
					continue
				}
				if cfg.totalAdds > 0 && atomic.AddInt64(&claimed, 1) > int64(cfg.totalAdds) {
					return
				}
				p := pool[int(atomic.AddUint64(&next, 1))%len(pool)]
				t0 := time.Now()
				if err := tgt.add(p); err != nil {
					writerErr[w] = err
					return
				}
				writerLat[w] = append(writerLat[w], time.Since(t0))
				writerAdds[w]++
				ops++
				sinceDelete++
				if cfg.deleteEvery > 0 && sinceDelete >= cfg.deleteEvery {
					sinceDelete = 0
					t0 := time.Now()
					if err := tgt.del([]int{0}); err != nil {
						writerErr[w] = err
						return
					}
					writerDelLat[w] = append(writerDelLat[w], time.Since(t0))
					writerDels[w]++
				}
			}
		}(w)
	}
	for r := 0; r < cfg.readers; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				if err := tgt.read(); err != nil {
					return
				}
				atomic.AddInt64(&reads, 1)
				// Yield so a spinning reader cannot starve the drainer on
				// small machines; reads stay non-blocking either way.
				runtime.Gosched()
			}
		}()
	}

	if cfg.totalAdds > 0 {
		writers.Wait()
	} else {
		time.Sleep(cfg.duration)
		stop.Store(true)
		writers.Wait()
	}
	elapsed := time.Since(start)
	stop.Store(true)
	readers.Wait()

	res := result{reads: reads, elapsed: elapsed}
	for w := 0; w < cfg.writers; w++ {
		if writerErr[w] != nil {
			return result{}, fmt.Errorf("writer %d: %w", w, writerErr[w])
		}
		res.adds += writerAdds[w]
		res.deletes += writerDels[w]
		res.lat = append(res.lat, writerLat[w]...)
		res.delLat = append(res.delLat, writerDelLat[w]...)
	}
	if res.adds == 0 {
		return result{}, fmt.Errorf("no updates completed in %s — raise -duration", cfg.duration)
	}
	sort.Slice(res.lat, func(i, j int) bool { return res.lat[i] < res.lat[j] })
	sort.Slice(res.delLat, func(i, j int) bool { return res.delLat[i] < res.delLat[j] })
	return res, nil
}

func entryFor(cfg config, res result) benchfmt.Entry {
	// Mixed-churn arms get their own benchmark name — their add latencies
	// are not comparable to an adds-only run, and benchsnap diff matches
	// entries by name.
	kind := "Add"
	if cfg.deletes > 0 {
		kind = "Churn"
	}
	e := benchfmt.Entry{
		Name:       fmt.Sprintf("Loadgen%s%sK%dN%d", kind, cases(cfg.algo), cfg.batch, cfg.n),
		Iterations: int64(res.adds + res.deletes),
		Metrics: map[string]float64{
			"add-ops/s":  res.addRate(),
			"read-ops/s": float64(res.reads) / res.elapsed.Seconds(),
			"p50-ns":     float64(res.percentile(0.50)),
			"p99-ns":     float64(res.percentile(0.99)),
		},
	}
	if res.deletes > 0 {
		// Delete latency is its own distribution: del-ops/s is a rate (a
		// drop fails benchsnap diff), del-p50/p99-ns are latencies (a rise
		// fails) — the delete-window gate the ISSUE's churn arm exists for.
		e.Metrics["del-ops/s"] = res.delRate()
		e.Metrics["del-p50-ns"] = float64(res.delPercentile(0.50))
		e.Metrics["del-p99-ns"] = float64(res.delPercentile(0.99))
	}
	return e
}

// cases upper-cases the algo family's first letter for the benchmark name
// ("delta" → "Delta"), keeping names in benchsnap's Benchmark style.
func cases(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if 'a' <= b[0] && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

func report(cfg config, res result) {
	fmt.Printf("k=%-3d n=%d writers=%d readers=%d %s: %d adds (%.1f ops/s), p50 %s, p99 %s, %d reads (%.0f ops/s)\n",
		cfg.batch, cfg.n, cfg.writers, cfg.readers, res.elapsed.Round(time.Millisecond),
		res.adds, res.addRate(),
		res.percentile(0.50).Round(time.Microsecond), res.percentile(0.99).Round(time.Microsecond),
		res.reads, float64(res.reads)/res.elapsed.Seconds())
	if res.deletes > 0 {
		fmt.Printf("        deletes: %d (%.1f ops/s), del-p50 %s, del-p99 %s\n",
			res.deletes, res.delRate(),
			res.delPercentile(0.50).Round(time.Microsecond), res.delPercentile(0.99).Round(time.Microsecond))
	}
}

// --- in-process target ---

type sessionTarget struct{ s *dynshap.Session }

func newTarget(cfg config) (target, error) {
	if cfg.addr != "" {
		return newHTTPTarget(cfg)
	}
	train, test := dynshap.IrisLike(cfg.n+cfg.n/4, cfg.seed).Split(0.8)
	opts := []dynshap.Option{
		dynshap.WithSamples(cfg.samples),
		dynshap.WithUpdateSamples(cfg.updateSamples),
		dynshap.WithSeed(cfg.seed),
		dynshap.WithCoalescing(cfg.batch, cfg.delay),
	}
	switch cfg.algo {
	case "delta":
		// No stored permutations: the planner routes multi-point windows to
		// the delta batch walk, whose shared no-pivot chain makes the
		// marginal cost of an extra window point one differential
		// evaluation instead of a whole pass.
	case "pivot":
		opts = append(opts, dynshap.WithKeepPermutations())
	default:
		return nil, fmt.Errorf("unknown -algo %q (want delta or pivot)", cfg.algo)
	}
	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3}, opts...)
	if err := s.Init(); err != nil {
		return nil, err
	}
	return &sessionTarget{s: s}, nil
}

func (t *sessionTarget) add(p dynshap.Point) error {
	_, err := t.s.SubmitAdd(p).Wait()
	return err
}

func (t *sessionTarget) del(indices []int) error {
	_, err := t.s.SubmitDelete(indices).Wait()
	return err
}

func (t *sessionTarget) read() error {
	t.s.Values()
	return nil
}

func (t *sessionTarget) close() error { return t.s.Close() }

// --- HTTP target (a running dynshapd) ---

type httpTarget struct {
	base   string
	name   string
	client *http.Client
}

func newHTTPTarget(cfg config) (target, error) {
	t := &httpTarget{
		base:   "http://" + cfg.addr,
		name:   fmt.Sprintf("loadgen-k%d-%d", cfg.batch, time.Now().UnixNano()),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	body := map[string]any{
		"name":              t.name,
		"synthetic":         map[string]any{"kind": "iris", "total": cfg.n + cfg.n/4, "seed": cfg.seed},
		"model":             "knn",
		"knn_k":             3,
		"samples":           cfg.samples,
		"update_samples":    cfg.updateSamples,
		"seed":              cfg.seed,
		"keep_permutations": cfg.algo == "pivot",
		"coalesce_batch":    cfg.batch,
		"coalesce_delay_ms": int(cfg.delay / time.Millisecond),
	}
	return t, t.post("/v1/sessions", body)
}

func (t *httpTarget) post(path string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := t.client.Post(t.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
	}
	return nil
}

func (t *httpTarget) add(p dynshap.Point) error {
	return t.post("/v1/sessions/"+t.name+"/add", map[string]any{"x": p.X, "y": p.Y})
}

func (t *httpTarget) del(indices []int) error {
	return t.post("/v1/sessions/"+t.name+"/remove", map[string]any{"indices": indices})
}

func (t *httpTarget) read() error {
	resp, err := t.client.Get(t.base + "/v1/sessions/" + t.name + "/values")
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

func (t *httpTarget) close() error {
	req, err := http.NewRequest(http.MethodDelete, t.base+"/v1/sessions/"+t.name, nil)
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
