// Command benchsnap runs the full benchmark suite once and records a
// dated JSON snapshot of every metric — ns/op, allocations, the engine's
// fill throughput, cache and prefix-add counters — so perf regressions
// between PRs show up as a diff between two BENCH_<date>.json files.
//
// Usage:
//
//	go run ./cmd/benchsnap            # writes BENCH_YYYY-MM-DD.json
//	go run ./cmd/benchsnap -o out.json
//
// The benchmark output is also streamed to stdout as it arrives, so the
// command doubles as a plain `make bench` run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// entry is one benchmark result: the iteration count and every reported
// metric keyed by its unit (ns/op, B/op, allocs/op, plus custom units
// such as cellups/s from ReportMetric).
type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// snapshot is the file layout of BENCH_<date>.json.
type snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	BenchTime  string  `json:"benchtime"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<date>.json)")
	benchtime := flag.String("benchtime", "1x", "value passed to -benchtime")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	cmd := exec.Command("go", "test", "-run=^$", "-bench=.", "-benchmem",
		"-benchtime="+*benchtime, "./...")
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	snap := snapshot{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
	}
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if e, ok := parseBenchLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("benchmark run failed: %w", err))
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}

	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(snap.Benchmarks), path)
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   3   123456 ns/op   789 B/op   2 allocs/op   1.5e+07 cellups/s
//
// i.e. the name, the iteration count, then (value, unit) pairs — which is
// exactly how custom testing.B.ReportMetric units are printed too.
func parseBenchLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{
		// Strip the -GOMAXPROCS suffix so names are stable across machines.
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return entry{}, false
	}
	return e, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
