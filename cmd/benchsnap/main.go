// Command benchsnap runs the full benchmark suite once and records a
// dated JSON snapshot of every metric — ns/op, allocations, the engine's
// fill throughput, cache and prefix-add counters — so perf regressions
// between PRs show up as a diff between two BENCH_<date>.json files.
//
// Usage:
//
//	go run ./cmd/benchsnap            # writes BENCH_YYYY-MM-DD.json
//	go run ./cmd/benchsnap -o out.json
//	go run ./cmd/benchsnap diff old.json new.json
//
// The suite runs with a fixed iteration count (-benchtime 3x by default)
// rather than a wall-clock budget, so two runs of the same binary execute
// the identical work and the snapshot is reproducible; more than one
// iteration keeps a single cold-cache pass from defining the number. On
// multi-core machines every benchmark also runs under -cpu=1,<max>: the
// single-proc rows keep the bare benchmark name (so they diff against
// historical snapshots), the max-proc rows are recorded as name@p<max>.
// Benchmarks that vary the number of semivalue heads a pass maintains use
// an h<N> sub-benchmark, canonicalised as name@h<N> — the head count
// changes the work per walk, so h1 and h4 rows must never diff against
// each other.
//
// The benchmark output is also streamed to stdout as it arrives, so the
// command doubles as a plain `make bench` run. The diff subcommand
// compares two snapshots per benchmark and exits non-zero when any shared
// benchmark got WORSE by more than 10% in its unit's own direction:
// ns/op and the load harness's latency percentiles (units ending "-ns")
// regress by rising, rate metrics (units ending "/s" — cellups/s,
// loadgen's add-ops/s and read-ops/s) regress by DROPPING. A throughput
// improvement is never flagged. Memory metrics — B/op, the derived
// total-alloc-bytes, the deletion-store store-bytes/heap-bytes gauges,
// and the suite's recorded peak RSS — are compared at the same threshold
// but only warn; they do not fail the diff. Snapshots written by
// cmd/loadgen use the same schema (internal/benchfmt), so server load
// results gate through the identical diff.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dynshap/internal/benchfmt"
)

// Local names for the shared schema (internal/benchfmt); the parsing and
// diff logic lives there so cmd/loadgen writes byte-compatible snapshots.
type (
	entry     = benchfmt.Entry
	snapshot  = benchfmt.Snapshot
	diffEntry = benchfmt.DiffEntry
)

func parseBenchLine(line string) (entry, bool) { return benchfmt.ParseBenchLine(line) }
func canonicalName(name string) string         { return benchfmt.CanonicalName(name) }

func diffSnapshots(oldS, newS snapshot, unit string) (shared []diffEntry, onlyOld, onlyNew []string) {
	return benchfmt.Diff(oldS, newS, unit)
}

// regressed filters the comparisons that worsened past the threshold in
// the unit's direction.
func regressed(shared []diffEntry, threshold float64, unit string) []diffEntry {
	return benchfmt.Regressed(shared, threshold, unit)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}
	out := flag.String("o", "", "output file (default BENCH_<date>.json)")
	benchtime := flag.String("benchtime", "3x",
		"value passed to -benchtime; a fixed iteration count (Nx) keeps snapshots reproducible")
	cpu := flag.String("cpu", "",
		"value passed to -cpu (default \"1,<num CPUs>\", just \"1\" on single-CPU machines)")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	cpuList := *cpu
	if cpuList == "" {
		if n := runtime.NumCPU(); n > 1 {
			cpuList = fmt.Sprintf("1,%d", n)
		} else {
			cpuList = "1"
		}
	}
	var procs []int
	for _, f := range strings.Split(cpuList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			fatal(fmt.Errorf("bad -cpu list %q", cpuList))
		}
		procs = append(procs, p)
	}

	cmd := exec.Command("go", "test", "-run=^$", "-bench=.", "-benchmem",
		"-benchtime="+*benchtime, "-cpu="+cpuList, "./...")
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	snap := snapshot{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
		Procs:      procs,
	}
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if e, ok := parseBenchLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("benchmark run failed: %w", err))
	}
	snap.PeakRSSBytes = peakRSSBytes(cmd.ProcessState)
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}
	if err := snap.Save(path); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(snap.Benchmarks), path)
}

// regressionThreshold is the fractional worsening past which diff flags a
// benchmark and exits non-zero.
const regressionThreshold = 0.10

// memoryUnits are the per-benchmark metrics diff additionally compares for
// >10% growth. Memory regressions are reported as warnings but do not fail
// the diff (yet): footprint numbers wobble with tile rounding and GC
// timing, so they gate manually until the signal proves stable.
var memoryUnits = []string{"B/op", "total-alloc-bytes", "store-bytes", "heap-bytes"}

// gatedUnits returns the units diff fails on, in report order: ns/op
// first, then every latency unit (ending "-ns") and every rate unit
// (ending "/s") present in either snapshot. Memory units warn only;
// allocs/op tracks B/op and stays advisory too.
func gatedUnits(oldS, newS snapshot) []string {
	units := []string{"ns/op"}
	for _, u := range benchfmt.Units(oldS, newS) {
		if u == "ns/op" {
			continue
		}
		if strings.HasSuffix(u, "-ns") || benchfmt.HigherIsBetter(u) {
			units = append(units, u)
		}
	}
	return units
}

func loadSnapshot(path string) (snapshot, error) { return benchfmt.Load(path) }

func runDiff(args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("usage: benchsnap diff <old.json> <new.json>"))
	}
	oldS, err := loadSnapshot(args[0])
	if err != nil {
		fatal(err)
	}
	newS, err := loadSnapshot(args[1])
	if err != nil {
		fatal(err)
	}
	anyShared, totalBad := 0, 0
	for _, unit := range gatedUnits(oldS, newS) {
		shared, onlyOld, onlyNew := diffSnapshots(oldS, newS, unit)
		if len(shared) == 0 && len(onlyOld) == 0 && len(onlyNew) == 0 {
			continue
		}
		anyShared += len(shared)
		direction := "lower is better"
		if benchfmt.HigherIsBetter(unit) {
			direction = "higher is better"
		}
		fmt.Printf("%-50s %14s %14s %8s\n",
			fmt.Sprintf("benchmark [%s, %s]", unit, direction),
			"old "+unit, "new "+unit, "delta")
		bad := regressed(shared, regressionThreshold, unit)
		isBad := make(map[string]bool, len(bad))
		for _, d := range bad {
			isBad[d.Name] = true
		}
		for _, d := range shared {
			marker := ""
			if isBad[d.Name] {
				marker = "  REGRESSION"
			}
			fmt.Printf("%-50s %14.0f %14.0f %+7.1f%%%s\n", d.Name, d.Old, d.New, d.Delta*100, marker)
		}
		for _, name := range onlyOld {
			fmt.Printf("%-50s removed (only in %s)\n", name, args[0])
		}
		for _, name := range onlyNew {
			fmt.Printf("%-50s added (only in %s)\n", name, args[1])
		}
		totalBad += len(bad)
	}
	if anyShared == 0 {
		fatal(fmt.Errorf("no shared benchmarks between %s and %s", args[0], args[1]))
	}
	warnMemoryRegressions(oldS, newS)
	if totalBad > 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: %d benchmark metric(s) worsened more than %.0f%%\n",
			totalBad, regressionThreshold*100)
		os.Exit(1)
	}
	fmt.Printf("%d benchmark comparisons, none worsened more than %.0f%%\n",
		anyShared, regressionThreshold*100)
}

// warnMemoryRegressions prints (without failing) every shared benchmark
// whose memory metrics grew past the threshold, plus suite-wide peak RSS
// growth when both snapshots recorded it.
func warnMemoryRegressions(oldS, newS snapshot) {
	warned := 0
	for _, unit := range memoryUnits {
		shared, _, _ := diffSnapshots(oldS, newS, unit)
		for _, d := range regressed(shared, regressionThreshold, unit) {
			fmt.Printf("MEMORY WARNING: %s %s %+.1f%% (%.0f -> %.0f)\n",
				d.Name, unit, d.Delta*100, d.Old, d.New)
			warned++
		}
	}
	if oldS.PeakRSSBytes > 0 && newS.PeakRSSBytes > 0 {
		delta := float64(newS.PeakRSSBytes-oldS.PeakRSSBytes) / float64(oldS.PeakRSSBytes)
		if delta > regressionThreshold {
			fmt.Printf("MEMORY WARNING: suite peak RSS %+.1f%% (%d -> %d bytes)\n",
				delta*100, oldS.PeakRSSBytes, newS.PeakRSSBytes)
			warned++
		}
	}
	if warned > 0 {
		fmt.Printf("%d memory warning(s) — advisory only, not failing the diff\n", warned)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
