// Command benchsnap runs the full benchmark suite once and records a
// dated JSON snapshot of every metric — ns/op, allocations, the engine's
// fill throughput, cache and prefix-add counters — so perf regressions
// between PRs show up as a diff between two BENCH_<date>.json files.
//
// Usage:
//
//	go run ./cmd/benchsnap            # writes BENCH_YYYY-MM-DD.json
//	go run ./cmd/benchsnap -o out.json
//	go run ./cmd/benchsnap diff old.json new.json
//
// The suite runs with a fixed iteration count (-benchtime 3x by default)
// rather than a wall-clock budget, so two runs of the same binary execute
// the identical work and the snapshot is reproducible; more than one
// iteration keeps a single cold-cache pass from defining the number. On
// multi-core machines every benchmark also runs under -cpu=1,<max>: the
// single-proc rows keep the bare benchmark name (so they diff against
// historical snapshots), the max-proc rows are recorded as name@p<max>.
// Benchmarks that vary the number of semivalue heads a pass maintains use
// an h<N> sub-benchmark, canonicalised as name@h<N> — the head count
// changes the work per walk, so h1 and h4 rows must never diff against
// each other.
//
// The benchmark output is also streamed to stdout as it arrives, so the
// command doubles as a plain `make bench` run. The diff subcommand
// compares two snapshots per benchmark on ns/op and exits non-zero when
// any shared benchmark regressed by more than 10%. Memory metrics — B/op,
// the derived total-alloc-bytes, the deletion-store store-bytes/heap-bytes
// gauges, and the suite's recorded peak RSS — are compared at the same
// threshold but only warn; they do not fail the diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// entry is one benchmark result: the iteration count and every reported
// metric keyed by its unit (ns/op, B/op, allocs/op, plus custom units
// such as cellups/s from ReportMetric).
type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// snapshot is the file layout of BENCH_<date>.json.
type snapshot struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	BenchTime  string `json:"benchtime"`
	Procs      []int  `json:"procs,omitempty"`
	// PeakRSSBytes is the suite run's high-water resident set size (the
	// `go test` process tree), the number the large-n store work budgets
	// against. 0 on platforms without rusage.
	PeakRSSBytes int64   `json:"peak_rss_bytes,omitempty"`
	Benchmarks   []entry `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}
	out := flag.String("o", "", "output file (default BENCH_<date>.json)")
	benchtime := flag.String("benchtime", "3x",
		"value passed to -benchtime; a fixed iteration count (Nx) keeps snapshots reproducible")
	cpu := flag.String("cpu", "",
		"value passed to -cpu (default \"1,<num CPUs>\", just \"1\" on single-CPU machines)")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	cpuList := *cpu
	if cpuList == "" {
		if n := runtime.NumCPU(); n > 1 {
			cpuList = fmt.Sprintf("1,%d", n)
		} else {
			cpuList = "1"
		}
	}
	var procs []int
	for _, f := range strings.Split(cpuList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			fatal(fmt.Errorf("bad -cpu list %q", cpuList))
		}
		procs = append(procs, p)
	}

	cmd := exec.Command("go", "test", "-run=^$", "-bench=.", "-benchmem",
		"-benchtime="+*benchtime, "-cpu="+cpuList, "./...")
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	snap := snapshot{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchtime,
		Procs:      procs,
	}
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if e, ok := parseBenchLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("benchmark run failed: %w", err))
	}
	snap.PeakRSSBytes = peakRSSBytes(cmd.ProcessState)
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}

	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(snap.Benchmarks), path)
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   3   123456 ns/op   789 B/op   2 allocs/op   1.5e+07 cellups/s
//
// i.e. the name, the iteration count, then (value, unit) pairs — which is
// exactly how custom testing.B.ReportMetric units are printed too.
func parseBenchLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{
		Name:       canonicalName(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return entry{}, false
	}
	// Derive the benchmark's total allocation volume: B/op is a rate, but
	// a memory regression hunt wants the absolute bytes the measured loop
	// churned through.
	if bop, ok := e.Metrics["B/op"]; ok {
		e.Metrics["total-alloc-bytes"] = bop * float64(e.Iterations)
	}
	return e, true
}

// canonicalName rewrites go test's -<procs> benchmark-name suffix as
// @p<procs>. Single-proc rows carry no suffix (go test omits it at
// GOMAXPROCS 1) and keep the bare name, so the reproducible -cpu=1 baseline
// diffs cleanly against snapshots taken before multi-proc variants existed
// or on machines with different core counts. An h<N> sub-benchmark (the
// semivalue head count, `Benchmark…/h4`) is folded into the same schema as
// @h<N>, before any @p suffix, so head-count variants pair like with like
// across snapshots.
func canonicalName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p >= 1 {
			name = name[:i] + "@p" + name[i+1:]
		}
	}
	if i := strings.LastIndex(name, "/h"); i > 0 {
		rest := name[i+2:]
		if j := strings.IndexByte(rest, '@'); j >= 0 {
			rest = rest[:j]
		}
		if h, err := strconv.Atoi(rest); err == nil && h >= 1 && !strings.ContainsRune(rest, '/') {
			name = name[:i] + "@h" + name[i+2:]
		}
	}
	return name
}

// regressionThreshold is the fractional ns/op increase past which diff
// flags a benchmark and exits non-zero.
const regressionThreshold = 0.10

// memoryUnits are the per-benchmark metrics diff additionally compares for
// >10% growth. Memory regressions are reported as warnings but do not fail
// the diff (yet): footprint numbers wobble with tile rounding and GC
// timing, so they gate manually until the signal proves stable.
var memoryUnits = []string{"B/op", "total-alloc-bytes", "store-bytes", "heap-bytes"}

// diffEntry is one benchmark's old/new comparison on a single unit.
type diffEntry struct {
	Name     string
	Old, New float64
	// Delta is the fractional change (New−Old)/Old; regressions are
	// positive (the benchmark got slower).
	Delta float64
}

// diffSnapshots pairs the two snapshots' benchmarks by name on the given
// unit and returns the shared comparisons plus the names present on only
// one side. Shared entries keep the new snapshot's order.
func diffSnapshots(oldS, newS snapshot, unit string) (shared []diffEntry, onlyOld, onlyNew []string) {
	oldVals := make(map[string]float64, len(oldS.Benchmarks))
	for _, e := range oldS.Benchmarks {
		if v, ok := e.Metrics[unit]; ok {
			oldVals[e.Name] = v
		}
	}
	seen := make(map[string]bool, len(newS.Benchmarks))
	for _, e := range newS.Benchmarks {
		v, ok := e.Metrics[unit]
		if !ok {
			continue
		}
		seen[e.Name] = true
		old, both := oldVals[e.Name]
		if !both {
			onlyNew = append(onlyNew, e.Name)
			continue
		}
		d := diffEntry{Name: e.Name, Old: old, New: v}
		if old != 0 {
			d.Delta = (v - old) / old
		}
		shared = append(shared, d)
	}
	for _, e := range oldS.Benchmarks {
		if _, ok := e.Metrics[unit]; ok && !seen[e.Name] {
			onlyOld = append(onlyOld, e.Name)
		}
	}
	return shared, onlyOld, onlyNew
}

// regressed filters the comparisons that slowed down past the threshold.
func regressed(shared []diffEntry, threshold float64) []diffEntry {
	var out []diffEntry
	for _, d := range shared {
		if d.Delta > threshold {
			out = append(out, d)
		}
	}
	return out
}

func loadSnapshot(path string) (snapshot, error) {
	var s snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func runDiff(args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("usage: benchsnap diff <old.json> <new.json>"))
	}
	oldS, err := loadSnapshot(args[0])
	if err != nil {
		fatal(err)
	}
	newS, err := loadSnapshot(args[1])
	if err != nil {
		fatal(err)
	}
	shared, onlyOld, onlyNew := diffSnapshots(oldS, newS, "ns/op")
	if len(shared) == 0 {
		fatal(fmt.Errorf("no shared benchmarks between %s and %s", args[0], args[1]))
	}
	fmt.Printf("%-50s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range shared {
		marker := ""
		if d.Delta > regressionThreshold {
			marker = "  REGRESSION"
		}
		fmt.Printf("%-50s %14.0f %14.0f %+7.1f%%%s\n", d.Name, d.Old, d.New, d.Delta*100, marker)
	}
	for _, name := range onlyOld {
		fmt.Printf("%-50s removed (only in %s)\n", name, args[0])
	}
	for _, name := range onlyNew {
		fmt.Printf("%-50s added (only in %s)\n", name, args[1])
	}
	warnMemoryRegressions(oldS, newS)
	if bad := regressed(shared, regressionThreshold); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: %d benchmark(s) regressed more than %.0f%%\n",
			len(bad), regressionThreshold*100)
		os.Exit(1)
	}
	fmt.Printf("%d benchmarks compared, none regressed more than %.0f%%\n",
		len(shared), regressionThreshold*100)
}

// warnMemoryRegressions prints (without failing) every shared benchmark
// whose memory metrics grew past the threshold, plus suite-wide peak RSS
// growth when both snapshots recorded it.
func warnMemoryRegressions(oldS, newS snapshot) {
	warned := 0
	for _, unit := range memoryUnits {
		shared, _, _ := diffSnapshots(oldS, newS, unit)
		for _, d := range regressed(shared, regressionThreshold) {
			fmt.Printf("MEMORY WARNING: %s %s %+.1f%% (%.0f -> %.0f)\n",
				d.Name, unit, d.Delta*100, d.Old, d.New)
			warned++
		}
	}
	if oldS.PeakRSSBytes > 0 && newS.PeakRSSBytes > 0 {
		delta := float64(newS.PeakRSSBytes-oldS.PeakRSSBytes) / float64(oldS.PeakRSSBytes)
		if delta > regressionThreshold {
			fmt.Printf("MEMORY WARNING: suite peak RSS %+.1f%% (%d -> %d bytes)\n",
				delta*100, oldS.PeakRSSBytes, newS.PeakRSSBytes)
			warned++
		}
	}
	if warned > 0 {
		fmt.Printf("%d memory warning(s) — advisory only, not failing the diff\n", warned)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
