package main

import (
	"testing"
)

func bench(name string, ns float64) entry {
	return entry{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestDiffSnapshots(t *testing.T) {
	oldS := snapshot{Benchmarks: []entry{
		bench("BenchmarkA", 100),
		bench("BenchmarkB", 200),
		bench("BenchmarkGone", 50),
	}}
	newS := snapshot{Benchmarks: []entry{
		bench("BenchmarkA", 105), // +5%: fine
		bench("BenchmarkB", 250), // +25%: regression
		bench("BenchmarkNew", 10),
	}}
	shared, onlyOld, onlyNew := diffSnapshots(oldS, newS, "ns/op")
	if len(shared) != 2 {
		t.Fatalf("shared = %v, want 2 entries", shared)
	}
	if shared[0].Name != "BenchmarkA" || shared[0].Delta != 0.05 {
		t.Fatalf("A compared as %+v", shared[0])
	}
	if shared[1].Name != "BenchmarkB" || shared[1].Delta != 0.25 {
		t.Fatalf("B compared as %+v", shared[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}

	bad := regressed(shared, 0.10, "ns/op")
	if len(bad) != 1 || bad[0].Name != "BenchmarkB" {
		t.Fatalf("regressed = %v, want only BenchmarkB", bad)
	}
	// Exactly at the threshold is not a regression; improvements never are.
	atEdge := []diffEntry{{Name: "X", Delta: 0.10}, {Name: "Y", Delta: -0.5}}
	if got := regressed(atEdge, 0.10, "ns/op"); len(got) != 0 {
		t.Fatalf("threshold edge flagged: %v", got)
	}
}

func TestDiffSnapshotsZeroOld(t *testing.T) {
	oldS := snapshot{Benchmarks: []entry{bench("BenchmarkZ", 0)}}
	newS := snapshot{Benchmarks: []entry{bench("BenchmarkZ", 5)}}
	shared, _, _ := diffSnapshots(oldS, newS, "ns/op")
	if len(shared) != 1 || shared[0].Delta != 0 {
		t.Fatalf("zero-baseline compare = %v, want delta 0", shared)
	}
}

func TestParseBenchLine(t *testing.T) {
	// A -cpu=1 row: no -<procs> suffix, name kept bare.
	line := "BenchmarkSessionAddBatch16N200   3   89919461 ns/op   120 B/op   4 allocs/op"
	e, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line not parsed")
	}
	if e.Name != "BenchmarkSessionAddBatch16N200" || e.Iterations != 3 {
		t.Fatalf("parsed %+v", e)
	}
	for unit, want := range map[string]float64{"ns/op": 89919461, "B/op": 120, "allocs/op": 4} {
		if e.Metrics[unit] != want {
			t.Fatalf("%s = %v, want %v", unit, e.Metrics[unit], want)
		}
	}
	// A multi-proc row: the -<procs> suffix becomes @p<procs>.
	e, ok = parseBenchLine("BenchmarkExactKNNAdd-8   3   314273 ns/op")
	if !ok {
		t.Fatal("multi-proc line not parsed")
	}
	if e.Name != "BenchmarkExactKNNAdd@p8" {
		t.Fatalf("multi-proc name = %q, want BenchmarkExactKNNAdd@p8", e.Name)
	}
	for _, junk := range []string{"", "ok  dynshap 1.2s", "Benchmark", "BenchmarkX notanint 5 ns/op"} {
		if _, ok := parseBenchLine(junk); ok {
			t.Fatalf("parsed junk line %q", junk)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo":      "BenchmarkFoo",
		"BenchmarkFoo-8":    "BenchmarkFoo@p8",
		"BenchmarkFoo-128":  "BenchmarkFoo@p128",
		"BenchmarkFoo-bar":  "BenchmarkFoo-bar", // non-numeric suffix untouched
		"BenchmarkN200-8":   "BenchmarkN200@p8",
		"BenchmarkFoo-0":    "BenchmarkFoo-0", // procs start at 1
		"BenchmarkFoo-8-16": "BenchmarkFoo-8@p16",
		"-8":                "-8", // leading dash: not a suffix
		// Semivalue head-count sub-benchmarks fold into the schema as @h<N>.
		"BenchmarkFill/h1":     "BenchmarkFill@h1",
		"BenchmarkFill/h4-8":   "BenchmarkFill@h4@p8",
		"BenchmarkFill/h0":     "BenchmarkFill/h0",      // head counts start at 1
		"BenchmarkFill/hot":    "BenchmarkFill/hot",     // non-numeric: a real sub-benchmark name
		"BenchmarkFill/h2/x-8": "BenchmarkFill/h2/x@p8", // h segment not last: untouched
	}
	for in, want := range cases {
		if got := canonicalName(in); got != want {
			t.Errorf("canonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchLineDerivesTotalAllocBytes(t *testing.T) {
	e, ok := parseBenchLine("BenchmarkFill   50   163210 ns/op   128 B/op   2 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if got := e.Metrics["total-alloc-bytes"]; got != 128*50 {
		t.Fatalf("total-alloc-bytes = %v, want %v", got, 128*50)
	}
	// No B/op reported (benchmark without -benchmem): nothing derived.
	e, ok = parseBenchLine("BenchmarkFill   50   163210 ns/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if _, present := e.Metrics["total-alloc-bytes"]; present {
		t.Fatal("total-alloc-bytes derived without a B/op metric")
	}
}

func TestMemoryDiffIsAdvisory(t *testing.T) {
	mem := func(name string, storeBytes float64) entry {
		return entry{Name: name, Iterations: 1, Metrics: map[string]float64{
			"ns/op": 100, "store-bytes": storeBytes,
		}}
	}
	oldS := snapshot{PeakRSSBytes: 1 << 30, Benchmarks: []entry{mem("BenchmarkStore", 1000)}}
	newS := snapshot{PeakRSSBytes: 2 << 30, Benchmarks: []entry{mem("BenchmarkStore", 1500)}}
	// The memory unit regressed 50%, but the blocking ns/op comparison is
	// flat: regressed() on ns/op — the only exit-code input — stays empty.
	shared, _, _ := diffSnapshots(oldS, newS, "ns/op")
	if bad := regressed(shared, regressionThreshold, "ns/op"); len(bad) != 0 {
		t.Fatalf("ns/op regressions = %v, want none", bad)
	}
	shared, _, _ = diffSnapshots(oldS, newS, "store-bytes")
	if bad := regressed(shared, regressionThreshold, "store-bytes"); len(bad) != 1 {
		t.Fatalf("store-bytes regressions = %v, want 1", bad)
	}
	// warnMemoryRegressions only prints; it must not panic on either shape.
	warnMemoryRegressions(oldS, newS)
	warnMemoryRegressions(snapshot{}, snapshot{})
}

func TestGatedUnitsIncludeRatesAndLatencies(t *testing.T) {
	oldS := snapshot{Benchmarks: []entry{{Name: "L", Iterations: 1, Metrics: map[string]float64{
		"ns/op": 1, "add-ops/s": 100, "p99-ns": 5, "B/op": 64,
	}}}}
	newS := snapshot{Benchmarks: []entry{{Name: "L", Iterations: 1, Metrics: map[string]float64{
		"ns/op": 1, "add-ops/s": 50, "p99-ns": 5, "B/op": 64,
	}}}}
	units := gatedUnits(oldS, newS)
	want := map[string]bool{"ns/op": true, "add-ops/s": true, "p99-ns": true}
	if len(units) != len(want) {
		t.Fatalf("gatedUnits = %v, want exactly %v (memory units advisory)", units, want)
	}
	for _, u := range units {
		if !want[u] {
			t.Fatalf("gatedUnits includes %q unexpectedly (full: %v)", u, units)
		}
	}
	// The halved throughput must count as a regression under the rate unit.
	shared, _, _ := diffSnapshots(oldS, newS, "add-ops/s")
	if bad := regressed(shared, regressionThreshold, "add-ops/s"); len(bad) != 1 {
		t.Fatalf("throughput drop not flagged: %v", bad)
	}
}
