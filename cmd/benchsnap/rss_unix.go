//go:build unix

package main

import (
	"os"
	"runtime"
	"syscall"
)

// peakRSSBytes extracts the peak resident set size of a finished child
// process (and its waited descendants — `go test` waits each test binary,
// so their high-water marks fold in). Returns 0 when the platform offers
// no rusage.
func peakRSSBytes(ps *os.ProcessState) int64 {
	if ps == nil {
		return 0
	}
	ru, ok := ps.SysUsage().(*syscall.Rusage)
	if !ok || ru == nil {
		return 0
	}
	rss := int64(ru.Maxrss)
	if runtime.GOOS != "darwin" {
		rss *= 1024 // Linux and the BSDs report KiB; Darwin reports bytes
	}
	return rss
}
