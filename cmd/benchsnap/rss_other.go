//go:build !unix

package main

import "os"

// peakRSSBytes is unavailable without unix rusage; the snapshot records 0.
func peakRSSBytes(*os.ProcessState) int64 { return 0 }
