package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dynshap"
)

func TestTrainerFor(t *testing.T) {
	for _, m := range []string{"svm", "knn", "logreg", "nb"} {
		if _, err := trainerFor(m); err != nil {
			t.Errorf("trainerFor(%q): %v", m, err)
		}
	}
	if _, err := trainerFor("resnet"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestAlgoFor(t *testing.T) {
	cases := map[string]dynshap.Algorithm{
		"mc":            dynshap.AlgoMonteCarlo,
		"TMC":           dynshap.AlgoTruncatedMC,
		"base":          dynshap.AlgoBase,
		"pivot-s":       dynshap.AlgoPivotSame,
		"pivot-d":       dynshap.AlgoPivotDifferent,
		"pivot":         dynshap.AlgoPivotDifferent,
		"delta":         dynshap.AlgoDelta,
		"delta-batch":   dynshap.AlgoDeltaBatch,
		"pivot-s-batch": dynshap.AlgoPivotSameBatch,
		"ynnn":          dynshap.AlgoYNNN,
		"YN-NN":         dynshap.AlgoYNNN,
		"knn":           dynshap.AlgoKNN,
		"knn+":          dynshap.AlgoKNNPlus,
		"exact":         dynshap.AlgoExactKNN,
		"auto":          dynshap.AlgoAuto,
	}
	for name, want := range cases {
		got, err := algoFor(name)
		if err != nil || got != want {
			t.Errorf("algoFor(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := algoFor("magic"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

// TestUsageGolden pins the help text to testdata/usage.golden and then
// cross-checks every -algo name the text advertises — the batch families
// delta-batch and pivot-s-batch included — against algoFor, so the help
// and the parser cannot drift apart silently.
func TestUsageGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "usage.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if usageText != string(want) {
		t.Fatalf("usage text diverged from testdata/usage.golden:\n got:\n%s\nwant:\n%s",
			usageText, want)
	}
	// Pull the advertised algorithm lists out of the "(-algo …)"
	// parentheticals; the char class crosses the wrapped line.
	matches := regexp.MustCompile(`\(-algo ([^)]*)\)`).FindAllStringSubmatch(usageText, -1)
	if len(matches) != 2 {
		t.Fatalf("found %d advertised -algo lists in usage text, want 2 (add, delete)", len(matches))
	}
	advertised := map[string]bool{}
	for _, m := range matches {
		for _, name := range strings.Split(m[1], ",") {
			if name = strings.TrimSpace(name); name != "" {
				advertised[name] = true
			}
		}
	}
	for _, must := range []string{"delta-batch", "pivot-s-batch"} {
		if !advertised[must] {
			t.Errorf("batch algorithm %q missing from the usage text", must)
		}
	}
	for name := range advertised {
		if _, err := algoFor(name); err != nil {
			t.Errorf("usage advertises -algo %s but algoFor rejects it: %v", name, err)
		}
	}
}

// The serve subcommand is a signpost to dynshapd, never an error.
func TestServeSignpost(t *testing.T) {
	if err := cmdServe(); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndWorkflow drives the full CLI pipeline: generate data, compute
// a valuation, add points, delete points, show — all through the same
// functions main dispatches to.
func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()
	trainCSV := filepath.Join(dir, "train.csv")
	testCSV := filepath.Join(dir, "test.csv")
	addCSV := filepath.Join(dir, "new.csv")
	snap := filepath.Join(dir, "ledger.json")

	if err := cmdGen([]string{"-dataset", "iris", "-n", "20", "-seed", "1", "-o", trainCSV}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-dataset", "iris", "-n", "15", "-seed", "2", "-o", testCSV}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-dataset", "iris", "-n", "2", "-seed", "3", "-o", addCSV}); err != nil {
		t.Fatal(err)
	}

	if err := cmdCompute([]string{"-train", trainCSV, "-test", testCSV, "-model", "knn", "-tau", "200", "-o", snap}); err != nil {
		t.Fatal(err)
	}
	sn, err := dynshap.LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Train) != 20 || len(sn.Values) != 20 {
		t.Fatalf("snapshot has %d points / %d values", len(sn.Train), len(sn.Values))
	}

	if err := cmdAdd([]string{"-snapshot", snap, "-points", addCSV, "-model", "knn", "-algo", "delta", "-tau", "100"}); err != nil {
		t.Fatal(err)
	}
	sn, err = dynshap.LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Train) != 22 {
		t.Fatalf("after add: %d points", len(sn.Train))
	}

	if err := cmdDelete([]string{"-snapshot", snap, "-indices", "0, 3", "-model", "knn", "-algo", "knn"}); err != nil {
		t.Fatal(err)
	}
	sn, err = dynshap.LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Train) != 20 {
		t.Fatalf("after delete: %d points", len(sn.Train))
	}

	if err := cmdShow([]string{"-snapshot", snap, "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSampleSize([]string{"-n", "50", "-eps", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryAndUndoViaCLI drives compute → add → history → undo and checks
// the journal is printed and the rollback restores the pre-add point count.
func TestHistoryAndUndoViaCLI(t *testing.T) {
	dir := t.TempDir()
	trainCSV := filepath.Join(dir, "train.csv")
	testCSV := filepath.Join(dir, "test.csv")
	addCSV := filepath.Join(dir, "new.csv")
	snap := filepath.Join(dir, "ledger.json")
	for _, args := range [][]string{
		{"-dataset", "iris", "-n", "12", "-seed", "1", "-o", trainCSV},
		{"-dataset", "iris", "-n", "10", "-seed", "2", "-o", testCSV},
		{"-dataset", "iris", "-n", "1", "-seed", "3", "-o", addCSV},
	} {
		if err := cmdGen(args); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmdCompute([]string{"-train", trainCSV, "-test", testCSV, "-model", "knn", "-tau", "100", "-o", snap}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdd([]string{"-snapshot", snap, "-points", addCSV, "-model", "knn", "-algo", "auto", "-tau", "100"}); err != nil {
		t.Fatal(err)
	}
	sn, err := dynshap.LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Version != 2 || sn.Journal == nil || len(sn.Journal.Entries) != 2 {
		t.Fatalf("after add: version %d, journal %+v", sn.Version, sn.Journal)
	}
	last := sn.Journal.Entries[1]
	if last.Requested != "Auto" || len(last.Decision) == 0 {
		t.Fatalf("auto add journaled as %+v", last)
	}

	if err := cmdHistory([]string{"-snapshot", snap, "-v"}); err != nil {
		t.Fatal(err)
	}

	if err := cmdUndo([]string{"-snapshot", snap, "-model", "knn"}); err != nil {
		t.Fatal(err)
	}
	sn, err = dynshap.LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Train) != 12 || sn.Version != 1 {
		t.Fatalf("after undo: %d points at version %d, want 12 at 1", len(sn.Train), sn.Version)
	}
	if len(sn.Journal.Entries) != 1 {
		t.Fatalf("after undo: %d journal entries, want 1", len(sn.Journal.Entries))
	}

	// Undoing the init itself leaves nothing to undo afterwards.
	if err := cmdUndo([]string{"-snapshot", snap, "-model", "knn"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdUndo([]string{"-snapshot", snap, "-model", "knn"}); err == nil {
		t.Fatal("undo at version 0 should fail")
	}
	if err := cmdHistory([]string{"-snapshot", snap}); err != nil {
		t.Fatal(err)
	}
}

func TestGenAdult(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "adult.csv")
	if err := cmdGen([]string{"-dataset", "adult", "-n", "30", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	d, err := dynshap.LoadCSV(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 30 || d.Dim() != 3 {
		t.Fatalf("adult CSV shape %d×%d", d.Len(), d.Dim())
	}
}

func TestGenValidation(t *testing.T) {
	if err := cmdGen([]string{"-dataset", "iris"}); err == nil {
		t.Error("missing -o should fail")
	}
	if err := cmdGen([]string{"-dataset", "mnist", "-o", filepath.Join(t.TempDir(), "x.csv")}); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestComputeValidation(t *testing.T) {
	if err := cmdCompute([]string{}); err == nil {
		t.Error("missing flags should fail")
	}
	if err := cmdCompute([]string{"-train", "/nope.csv", "-test", "/nope.csv", "-o", "/tmp/x.json"}); err == nil {
		t.Error("missing files should fail")
	}
}

func TestDeleteValidation(t *testing.T) {
	if err := cmdDelete([]string{}); err == nil {
		t.Error("missing flags should fail")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "s.json")
	trainCSV := filepath.Join(dir, "train.csv")
	testCSV := filepath.Join(dir, "test.csv")
	if err := cmdGen([]string{"-dataset", "iris", "-n", "10", "-o", trainCSV}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-dataset", "iris", "-n", "10", "-seed", "2", "-o", testCSV}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompute([]string{"-train", trainCSV, "-test", testCSV, "-model", "knn", "-tau", "50", "-o", snap}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDelete([]string{"-snapshot", snap, "-indices", "zero", "-model", "knn"}); err == nil {
		t.Error("bad index should fail")
	}
}

func TestAddPivotSameViaCLI(t *testing.T) {
	dir := t.TempDir()
	trainCSV := filepath.Join(dir, "train.csv")
	testCSV := filepath.Join(dir, "test.csv")
	addCSV := filepath.Join(dir, "new.csv")
	snap := filepath.Join(dir, "ledger.json")
	for _, args := range [][]string{
		{"-dataset", "iris", "-n", "15", "-seed", "1", "-o", trainCSV},
		{"-dataset", "iris", "-n", "12", "-seed", "2", "-o", testCSV},
		{"-dataset", "iris", "-n", "1", "-seed", "3", "-o", addCSV},
	} {
		if err := cmdGen(args); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmdCompute([]string{"-train", trainCSV, "-test", testCSV, "-model", "knn", "-tau", "100", "-o", snap}); err != nil {
		t.Fatal(err)
	}
	// Pivot-s needs stored permutations: the add path must request them
	// before the Refresh that rebuilds the pivot state.
	if err := cmdAdd([]string{"-snapshot", snap, "-points", addCSV, "-model", "knn", "-algo", "pivot-s", "-tau", "100"}); err != nil {
		t.Fatal(err)
	}
	sn, err := dynshap.LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Train) != 16 {
		t.Fatalf("after pivot-s add: %d points", len(sn.Train))
	}
}
