// Command dynshap values datasets with Shapley values and updates the
// valuation as points are added or deleted, persisting state in a JSON
// snapshot.
//
// Subcommands:
//
//	gen        generate a synthetic Iris-like or Adult-like CSV dataset
//	compute    value a training CSV against a test CSV, write a snapshot
//	add        append points from a CSV to a snapshot's valuation
//	delete     remove points (by index) from a snapshot's valuation
//	show       print a snapshot's values
//	history    print the snapshot's update journal (algorithms, costs, planner traces)
//	undo       roll the snapshot back one version by deterministic replay
//	samplesize print the (ϵ, δ) sample-size bounds of Theorems 1, 2 and 4
//	serve      print where the HTTP serving layer lives (the dynshapd binary)
//
// With -model softknn (the soft k-NN utility) the session maintains the
// exact closed-form k-NN Shapley estimator: compute, add and delete are
// all EXACT with zero model trainings, and -algo auto routes every update
// onto it (the planner's reasoning shows up under `history`).
//
// Run `dynshap <subcommand> -h` for flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dynshap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "compute":
		err = cmdCompute(os.Args[2:])
	case "add":
		err = cmdAdd(os.Args[2:])
	case "delete":
		err = cmdDelete(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "history":
		err = cmdHistory(os.Args[2:])
	case "undo":
		err = cmdUndo(os.Args[2:])
	case "samplesize":
		err = cmdSampleSize(os.Args[2:])
	case "serve":
		err = cmdServe()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dynshap: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynshap: %v\n", err)
		os.Exit(1)
	}
}

// usageText is what `dynshap help` prints. It is covered by a golden test
// (testdata/usage.golden) so the subcommand list and the advertised -algo
// names — the batch families in particular — cannot drift from what
// algoFor actually accepts.
const usageText = `usage: dynshap <subcommand> [flags]

Subcommands:
  gen         generate a synthetic Iris-like or Adult-like CSV dataset
  compute     value a training CSV against a test CSV, write a snapshot
  add         append points from a CSV to a snapshot's valuation
              (-algo auto, delta, delta-batch, pivot-d, pivot-s,
               pivot-s-batch, knn, knn+, exact, mc, tmc, base)
  delete      remove points (by index) from a snapshot's valuation
              (-algo auto, delta, ynnn, knn, knn+, exact, mc, tmc)
  show        print a snapshot's values
  history     print the snapshot's update journal (algorithms, costs, traces)
  undo        roll the snapshot back one version by deterministic replay
  samplesize  print the (ϵ, δ) sample-size bounds of Theorems 1, 2 and 4
  serve       print where the HTTP serving layer lives (dynshapd)

This CLI operates on one snapshot file at a time. Long-running serving —
many named sessions, write-coalesced updates, non-blocking reads — is the
separate dynshapd binary:

  go run ./cmd/dynshapd -addr :8089 -data ./sessions

and cmd/loadgen drives it with closed-loop traffic, reporting p50/p99
update latency; see the README's "Serving valuations" section.

Run 'dynshap <subcommand> -h' for flags.
`

func usage() {
	fmt.Fprint(os.Stderr, usageText)
}

// cmdServe is a signpost, not a server: the serving layer has its own
// binary (session registry, coalescers, graceful drain), and folding it in
// here would drag an HTTP dependency into every snapshot-file invocation.
func cmdServe() error {
	fmt.Print(`dynshap does not serve HTTP itself; the serving layer is the dynshapd binary:

  go run ./cmd/dynshapd -addr :8089 -data ./sessions

It manages many named sessions over REST (create/add/remove/values/topk/
history/snapshot), coalesces concurrent adds into batched permutation
walks, and restarts from snapshot + journal tail. Benchmark it with
cmd/loadgen. See the README's "Serving valuations" section.
`)
	return nil
}

func trainerFor(model string) (dynshap.Trainer, error) {
	switch model {
	case "svm":
		return dynshap.SVM{}, nil
	case "knn":
		return dynshap.KNNClassifier{K: 5}, nil
	case "softknn":
		return dynshap.SoftKNNClassifier{K: 5}, nil
	case "logreg":
		return dynshap.LogReg{}, nil
	case "nb":
		return dynshap.NaiveBayes{}, nil
	default:
		return nil, fmt.Errorf("unknown model %q (svm, knn, softknn, logreg, nb)", model)
	}
}

func algoFor(name string) (dynshap.Algorithm, error) {
	switch strings.ToLower(name) {
	case "mc", "montecarlo":
		return dynshap.AlgoMonteCarlo, nil
	case "tmc":
		return dynshap.AlgoTruncatedMC, nil
	case "base":
		return dynshap.AlgoBase, nil
	case "pivot-s":
		return dynshap.AlgoPivotSame, nil
	case "pivot-d", "pivot":
		return dynshap.AlgoPivotDifferent, nil
	case "delta":
		return dynshap.AlgoDelta, nil
	case "delta-batch":
		return dynshap.AlgoDeltaBatch, nil
	case "pivot-s-batch":
		return dynshap.AlgoPivotSameBatch, nil
	case "ynnn", "yn-nn":
		return dynshap.AlgoYNNN, nil
	case "knn":
		return dynshap.AlgoKNN, nil
	case "knn+", "knnplus":
		return dynshap.AlgoKNNPlus, nil
	case "exact", "exact-knn", "exactknn":
		return dynshap.AlgoExactKNN, nil
	case "auto":
		return dynshap.AlgoAuto, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("dataset", "iris", "iris or adult")
	n := fs.Int("n", 150, "number of points")
	seed := fs.Uint64("seed", 1, "RNG seed")
	out := fs.String("o", "", "output CSV path (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	var d *dynshap.Dataset
	switch *kind {
	case "iris":
		d = dynshap.IrisLike(*n, *seed)
	case "adult":
		d = dynshap.AdultLike(*n, *seed)
	default:
		return fmt.Errorf("gen: unknown dataset %q", *kind)
	}
	if err := d.SaveCSV(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d points (%d features, %d classes) to %s\n", d.Len(), d.Dim(), d.Classes, *out)
	return nil
}

// parseSemivalueList splits a -semivalue argument into weightings. Commas
// separate entries except inside parentheses, so "banzhaf,beta(4,1)" is
// two heads, not three.
func parseSemivalueList(arg string) ([]dynshap.Semivalue, error) {
	var out []dynshap.Semivalue
	depth, start := 0, 0
	flush := func(end int) error {
		name := strings.TrimSpace(arg[start:end])
		if name == "" {
			return nil
		}
		sv, err := dynshap.ParseSemivalue(name)
		if err != nil {
			return err
		}
		out = append(out, sv)
		return nil
	}
	for i, c := range arg {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(len(arg)); err != nil {
		return nil, err
	}
	return out, nil
}

func cmdCompute(args []string) error {
	fs := flag.NewFlagSet("compute", flag.ExitOnError)
	trainPath := fs.String("train", "", "training CSV (points to value; required)")
	testPath := fs.String("test", "", "test CSV (defines the utility; required)")
	model := fs.String("model", "svm", "utility model: svm, knn, softknn, logreg")
	tau := fs.Int("tau", 0, "permutation samples (default 20·n)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	semis := fs.String("semivalue", "", "extra semivalue heads to price from the same pass, comma-separated (banzhaf, beta(α,β), abs-shapley)")
	out := fs.String("o", "", "snapshot output path (required)")
	fs.Parse(args)
	if *trainPath == "" || *testPath == "" || *out == "" {
		return fmt.Errorf("compute: -train, -test and -o are required")
	}
	train, err := dynshap.LoadCSV(*trainPath)
	if err != nil {
		return err
	}
	test, err := dynshap.LoadCSV(*testPath)
	if err != nil {
		return err
	}
	trainer, err := trainerFor(*model)
	if err != nil {
		return err
	}
	opts := []dynshap.Option{dynshap.WithSeed(*seed)}
	if *tau > 0 {
		opts = append(opts, dynshap.WithSamples(*tau))
	}
	heads, err := parseSemivalueList(*semis)
	if err != nil {
		return fmt.Errorf("compute: %w", err)
	}
	if len(heads) > 0 {
		opts = append(opts, dynshap.WithSemivalues(heads...))
	}
	s := dynshap.NewSession(train, test, trainer, opts...)
	if err := s.Init(); err != nil {
		return err
	}
	if err := s.Snapshot().Save(*out); err != nil {
		return err
	}
	printValues(s.Values())
	for _, w := range s.Semivalues() {
		if vals, err := s.ValuesFor(w); err == nil {
			fmt.Printf("  [%s head priced from the same pass: Σ=%+.6f]\n", w, sumValues(vals))
		}
	}
	fmt.Printf("snapshot written to %s (%d model trainings)\n", *out, s.ModelTrainings())
	return nil
}

func sumValues(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// resumeSession loads a snapshot and resumes a session around it.
func resumeSession(path, model string, seed uint64) (*dynshap.Session, error) {
	sn, err := dynshap.LoadSnapshot(path)
	if err != nil {
		return nil, err
	}
	trainer, err := trainerFor(model)
	if err != nil {
		return nil, err
	}
	return sn.Resume(trainer, dynshap.WithSeed(seed))
}

func cmdAdd(args []string) error {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "snapshot path (updated in place; required)")
	pointsPath := fs.String("points", "", "CSV of points to add (required)")
	model := fs.String("model", "svm", "utility model: svm, knn, softknn, logreg")
	algoName := fs.String("algo", "delta", "update algorithm (auto, delta, delta-batch, pivot-d, pivot-s-batch, knn, knn+, exact, mc, tmc, base)")
	tau := fs.Int("tau", 0, "update permutation samples (default: snapshot's τ)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	fs.Parse(args)
	if *snapPath == "" || *pointsPath == "" {
		return fmt.Errorf("add: -snapshot and -points are required")
	}
	algo, err := algoFor(*algoName)
	if err != nil {
		return err
	}
	sn, err := dynshap.LoadSnapshot(*snapPath)
	if err != nil {
		return err
	}
	trainer, err := trainerFor(*model)
	if err != nil {
		return err
	}
	opts := []dynshap.Option{dynshap.WithSeed(*seed)}
	if *tau > 0 {
		opts = append(opts, dynshap.WithUpdateSamples(*tau))
	}
	if algo == dynshap.AlgoPivotSame || algo == dynshap.AlgoPivotSameBatch {
		// Pivot-s replays the initialisation permutations; keep them.
		opts = append(opts, dynshap.WithKeepPermutations())
	}
	s, err := sn.Resume(trainer, opts...)
	if err != nil {
		return err
	}
	pts, err := dynshap.LoadCSV(*pointsPath)
	if err != nil {
		return err
	}
	if algo == dynshap.AlgoPivotSame || algo == dynshap.AlgoPivotDifferent || algo == dynshap.AlgoPivotSameBatch {
		// Pivot algorithms need LSV state, absent from snapshots.
		if err := s.Refresh(); err != nil {
			return err
		}
	}
	values, err := s.Add(pts.Points, algo)
	if err != nil {
		return err
	}
	if err := s.Snapshot().Save(*snapPath); err != nil {
		return err
	}
	printValues(values)
	fmt.Printf("added %d point(s) via %v; snapshot updated\n", pts.Len(), algo)
	return nil
}

func cmdDelete(args []string) error {
	fs := flag.NewFlagSet("delete", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "snapshot path (updated in place; required)")
	indicesArg := fs.String("indices", "", "comma-separated point indices to delete (required)")
	model := fs.String("model", "svm", "utility model: svm, knn, softknn, logreg")
	algoName := fs.String("algo", "delta", "update algorithm (auto, delta, ynnn, knn, knn+, exact, mc, tmc)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	fs.Parse(args)
	if *snapPath == "" || *indicesArg == "" {
		return fmt.Errorf("delete: -snapshot and -indices are required")
	}
	algo, err := algoFor(*algoName)
	if err != nil {
		return err
	}
	var indices []int
	for _, part := range strings.Split(*indicesArg, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("delete: bad index %q", part)
		}
		indices = append(indices, i)
	}
	sort.Ints(indices)
	s, err := resumeSession(*snapPath, *model, *seed)
	if err != nil {
		return err
	}
	if algo == dynshap.AlgoYNNN {
		// YN-NN needs the utility arrays, absent from snapshots; rebuild
		// them (one preprocessing pass) before merging.
		sn, _ := dynshap.LoadSnapshot(*snapPath)
		trainer, _ := trainerFor(*model)
		opts := []dynshap.Option{dynshap.WithSeed(*seed), dynshap.WithTrackDeletions()}
		if len(indices) > 1 {
			opts = append(opts, dynshap.WithMultiDelete(len(indices), indices))
		}
		s, err = sn.Resume(trainer, opts...)
		if err != nil {
			return err
		}
		if err := s.Refresh(); err != nil {
			return err
		}
	}
	values, err := s.Delete(indices, algo)
	if err != nil {
		return err
	}
	if err := s.Snapshot().Save(*snapPath); err != nil {
		return err
	}
	printValues(values)
	fmt.Printf("deleted %d point(s) via %v; snapshot updated\n", len(indices), algo)
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "snapshot path (required)")
	top := fs.Int("top", 0, "show only the k most valuable points")
	fs.Parse(args)
	if *snapPath == "" {
		return fmt.Errorf("show: -snapshot is required")
	}
	sn, err := dynshap.LoadSnapshot(*snapPath)
	if err != nil {
		return err
	}
	fmt.Printf("%d points, %d test points, τ=%d\n", len(sn.Train), len(sn.Test), sn.Samples)
	if len(sn.Values) == 0 {
		fmt.Println("(no values computed)")
		return nil
	}
	type entry struct {
		idx int
		sv  float64
	}
	entries := make([]entry, len(sn.Values))
	for i, v := range sn.Values {
		entries[i] = entry{i, v}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].sv > entries[b].sv })
	if *top > 0 && *top < len(entries) {
		entries = entries[:*top]
	}
	// Stable head order for the extra semivalue columns, if any.
	headNames := make([]string, 0, len(sn.Heads))
	for name := range sn.Heads {
		headNames = append(headNames, name)
	}
	sort.Strings(headNames)
	for _, e := range entries {
		fmt.Printf("  point %4d  label %d  SV %+.6f", e.idx, sn.Train[e.idx].Y, e.sv)
		for _, name := range headNames {
			if vals := sn.Heads[name]; e.idx < len(vals) {
				fmt.Printf("  %s %+.6f", name, vals[e.idx])
			}
		}
		fmt.Println()
	}
	return nil
}

func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "snapshot path (required)")
	verbose := fs.Bool("v", false, "print the planner's decision trace for each update")
	fs.Parse(args)
	if *snapPath == "" {
		return fmt.Errorf("history: -snapshot is required")
	}
	sn, err := dynshap.LoadSnapshot(*snapPath)
	if err != nil {
		return err
	}
	if sn.Journal == nil || len(sn.Journal.Entries) == 0 {
		fmt.Println("(no recorded history — snapshot predates format 2 or has no updates)")
		return nil
	}
	fmt.Printf("version %d, %d recorded update(s)\n", sn.Version, len(sn.Journal.Entries))
	for _, u := range sn.Journal.Entries {
		algo := u.Algo
		if u.Requested != "" {
			algo = fmt.Sprintf("%s→%s", u.Requested, u.Algo)
		}
		detail := ""
		switch u.Op {
		case "add":
			detail = fmt.Sprintf(", %d point(s)", len(u.Points))
		case "delete":
			detail = fmt.Sprintf(", indices %v", u.Indices)
		}
		// Wall time is stripped from persisted snapshots (determinism), so
		// only show it when a journal actually carries one.
		secs := ""
		if u.Seconds > 0 {
			secs = fmt.Sprintf(", %.3fs", u.Seconds)
		}
		fmt.Printf("  v%-3d %-8s %-14s%s  (%d trainings, %d prefix adds, %d perms%s)\n",
			u.Version, u.Op, algo, detail, u.Trainings, u.PrefixAdds, u.Permutations, secs)
		// Multi-head adds journal each appended point's worth under every
		// extra semivalue head; show the per-head attribution.
		if len(u.HeadValues) > 0 {
			names := make([]string, 0, len(u.HeadValues))
			for name := range u.HeadValues {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("        · %s attribution: %s\n", name, formatVals(u.HeadValues[name]))
			}
		}
		if *verbose {
			for _, line := range u.Decision {
				fmt.Printf("        · %s\n", line)
			}
		} else if len(u.Decision) > 0 {
			// The trace's last line is the planner's verdict ("chose X
			// because …" — e.g. exact closed form vs a sampled pass); show
			// it even without -v so the exact-vs-sampled decision is
			// visible at a glance. -v prints the full trace.
			fmt.Printf("        · %s\n", u.Decision[len(u.Decision)-1])
		}
	}
	return nil
}

func cmdUndo(args []string) error {
	fs := flag.NewFlagSet("undo", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "snapshot path (rolled back in place; required)")
	model := fs.String("model", "svm", "utility model: svm, knn, softknn, logreg, nb")
	fs.Parse(args)
	if *snapPath == "" {
		return fmt.Errorf("undo: -snapshot is required")
	}
	sn, err := dynshap.LoadSnapshot(*snapPath)
	if err != nil {
		return err
	}
	trainer, err := trainerFor(*model)
	if err != nil {
		return err
	}
	// Resume with the snapshot's own persisted configuration (seed
	// included) — replay is only bit-faithful under the original config.
	s, err := sn.Resume(trainer)
	if err != nil {
		return err
	}
	if s.Version() == 0 || len(s.History()) == 0 {
		return fmt.Errorf("undo: no recorded update to undo (version %d)", s.Version())
	}
	undone, err := s.ReplayTo(s.Version() - 1)
	if err != nil {
		return err
	}
	if err := undone.Snapshot().Save(*snapPath); err != nil {
		return err
	}
	printValues(undone.Values())
	fmt.Printf("rolled back to version %d (%d point(s)); snapshot updated\n", undone.Version(), undone.N())
	return nil
}

func cmdSampleSize(args []string) error {
	fs := flag.NewFlagSet("samplesize", flag.ExitOnError)
	eps := fs.Float64("eps", 0.01, "error bound ϵ")
	delta := fs.Float64("delta", 0.05, "failure probability δ")
	rRange := fs.Float64("r", 1, "marginal-contribution range bound r (Theorem 1)")
	dRange := fs.Float64("d", 0.1, "differential marginal-contribution bound d (Theorems 2, 4)")
	n := fs.Int("n", 100, "original dataset size")
	fs.Parse(args)
	fmt.Printf("(ϵ=%g, δ=%g, n=%d, r=%g, d=%g)\n", *eps, *delta, *n, *rRange, *dRange)
	fmt.Printf("Theorem 1 (pivot RSV):        τ ≥ %d\n", dynshap.PivotSampleSize(*rRange, *eps, *delta))
	fmt.Printf("Theorem 2 (delta addition):   τ ≥ %d\n", dynshap.DeltaAddSampleSize(*n, *dRange, *eps, *delta))
	fmt.Printf("Theorem 4 (delta deletion):   τ ≥ %d\n", dynshap.DeltaDeleteSampleSize(*n, *dRange, *eps, *delta))
	return nil
}

func formatVals(vals []float64) string {
	var b strings.Builder
	b.WriteString("[")
	for i, v := range vals {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%+.6f", v)
		if i >= 7 && len(vals) > 9 {
			fmt.Fprintf(&b, " …(%d more)", len(vals)-i-1)
			break
		}
	}
	b.WriteString("]")
	return b.String()
}

func printValues(values []float64) {
	for i, v := range values {
		fmt.Printf("  SV[%d] = %+.6f\n", i, v)
		if i >= 19 && len(values) > 22 {
			fmt.Printf("  … (%d more)\n", len(values)-i-1)
			break
		}
	}
}
