package dynshap

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakConcurrentPipeline is the pipeline's race/soak gate: N writers
// hammer SubmitAdd while M readers spin on the versioned store and a
// replayer periodically reconstructs the session from its own journal
// mid-traffic. It asserts the two invariants the async API promises:
//
//  1. Reads are always coherent — a reader never observes a value vector
//     whose length falls outside what any published version could hold.
//  2. The final store is bit-identical to a fresh session replaying the
//     journal: whatever window boundaries timing produced, the executed
//     (operation, inputs) sequence fully determines the state.
//
// Run under -race this also proves the coalescer/store handoff is
// data-race free.
func TestSoakConcurrentPipeline(t *testing.T) {
	const (
		n          = 24
		numWriters = 6
		addsPer    = 6
		numReaders = 3
	)
	s := newTestSession(t, n, WithUpdateSamples(40), WithKeepPermutations(),
		WithCoalescing(4, time.Millisecond))
	if err := s.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	baseN := s.N()

	var wg sync.WaitGroup
	var done atomic.Bool
	errs := make(chan error, numWriters+numReaders+1)

	pts := batchTestPoints(numWriters*addsPer, 4)
	for w := 0; w < numWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < addsPer; i++ {
				h := s.SubmitAdd(pts[w*addsPer+i])
				if _, err := h.Wait(); err != nil {
					errs <- fmt.Errorf("writer %d add %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	for r := 0; r < numReaders; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for !done.Load() {
				vals := s.Values()
				if len(vals) < baseN || len(vals) > baseN+numWriters*addsPer {
					errs <- fmt.Errorf("reader observed %d values outside [%d, %d]",
						len(vals), baseN, baseN+numWriters*addsPer)
					return
				}
				_ = s.Rank()
				_ = s.TopK(3)
			}
		}()
	}

	// Replayer: periodically reconstruct the session's current version
	// from the journal while updates are still landing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			time.Sleep(2 * time.Millisecond)
			v := s.Version()
			rs, err := s.ReplayTo(v)
			if err != nil {
				errs <- fmt.Errorf("mid-traffic ReplayTo(%d): %w", v, err)
				return
			}
			if got := rs.Version(); got != v {
				errs <- fmt.Errorf("mid-traffic replay version %d, want %d", got, v)
				return
			}
		}
	}()

	wg.Wait()
	// One delete barrier through the same pipeline for coverage.
	if _, err := s.SubmitDelete([]int{0}).Wait(); err != nil {
		t.Fatalf("SubmitDelete: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	done.Store(true)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.N(); got != baseN+numWriters*addsPer-1 {
		t.Fatalf("final N = %d, want %d", got, baseN+numWriters*addsPer-1)
	}

	// The bit-identity gate: a fresh session replaying the journal must
	// land on exactly the published state.
	replayed, err := s.ReplayTo(s.Version())
	if err != nil {
		t.Fatalf("final ReplayTo: %v", err)
	}
	if !reflect.DeepEqual(replayed.Values(), s.Values()) {
		t.Fatal("replayed values diverge from the live store")
	}
	if replayed.N() != s.N() || replayed.Version() != s.Version() {
		t.Fatalf("replayed shape (n=%d v=%d) != live (n=%d v=%d)",
			replayed.N(), replayed.Version(), s.N(), s.Version())
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestSoakChurnPipeline is the delete-window soak: writers mix SubmitAdd
// and SubmitDelete (so the coalescer alternates add windows, delete
// windows, and the barriers between them), readers spin on the versioned
// store, and a replayer reconstructs the session from its own journal
// mid-traffic. The final state must be bit-identical to a fresh replay of
// the journal — whatever window shapes and add↔delete transitions timing
// produced, the executed (operation, inputs) sequence fully determines
// the state. Run under -race this also proves the delete-window merge and
// remap are data-race free.
func TestSoakChurnPipeline(t *testing.T) {
	const (
		n          = 24
		numWriters = 6
		addsPer    = 6
		delsPer    = 2
		numReaders = 2
	)
	s := newTestSession(t, n, WithUpdateSamples(40),
		WithCoalescing(4, time.Millisecond))
	if err := s.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	baseN := s.N()

	var wg sync.WaitGroup
	var done atomic.Bool
	errs := make(chan error, numWriters+numReaders+1)

	pts := batchTestPoints(numWriters*addsPer, 4)
	for w := 0; w < numWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dels := 0
			for i := 0; i < addsPer; i++ {
				h := s.SubmitAdd(pts[w*addsPer+i])
				if _, err := h.Wait(); err != nil {
					errs <- fmt.Errorf("writer %d add %d: %w", w, i, err)
					return
				}
				// Every third add, a delete: indices name submission-time
				// state, and index 0 is valid against any non-empty state
				// whatever the open window holds.
				if i%3 == 2 && dels < delsPer {
					dels++
					if _, err := s.SubmitDelete([]int{0}).Wait(); err != nil {
						errs <- fmt.Errorf("writer %d delete: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	lo := baseN - numWriters*delsPer
	hi := baseN + numWriters*addsPer
	var readerWG sync.WaitGroup
	for r := 0; r < numReaders; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for !done.Load() {
				vals := s.Values()
				if len(vals) < lo || len(vals) > hi {
					errs <- fmt.Errorf("reader observed %d values outside [%d, %d]",
						len(vals), lo, hi)
					return
				}
				_ = s.Rank()
				_ = s.TopK(3)
			}
		}()
	}

	// Replayer: periodically reconstruct the session's current version
	// from the journal while adds AND deletes are still landing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			time.Sleep(2 * time.Millisecond)
			v := s.Version()
			rs, err := s.ReplayTo(v)
			if err != nil {
				errs <- fmt.Errorf("mid-traffic ReplayTo(%d): %w", v, err)
				return
			}
			if got := rs.Version(); got != v {
				errs <- fmt.Errorf("mid-traffic replay version %d, want %d", got, v)
				return
			}
		}
	}()

	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	done.Store(true)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.N(); got != baseN+numWriters*(addsPer-delsPer) {
		t.Fatalf("final N = %d, want %d", got, baseN+numWriters*(addsPer-delsPer))
	}

	// The bit-identity gate: a fresh session replaying the journal must
	// land on exactly the published state, coalesced delete windows and
	// their remapped indices included.
	replayed, err := s.ReplayTo(s.Version())
	if err != nil {
		t.Fatalf("final ReplayTo: %v", err)
	}
	if !reflect.DeepEqual(replayed.Values(), s.Values()) {
		t.Fatal("replayed values diverge from the live store")
	}
	if replayed.N() != s.N() || replayed.Version() != s.Version() {
		t.Fatalf("replayed shape (n=%d v=%d) != live (n=%d v=%d)",
			replayed.N(), replayed.Version(), s.N(), s.Version())
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
