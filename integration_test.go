package dynshap_test

// Integration tests: the full ML pipeline (dataset → model → utility →
// session) checked against exact enumeration, which is feasible for small
// training sets. These are the tests that would catch a mis-wired layer
// even when every unit test passes.

import (
	"math"
	"testing"

	"dynshap"
)

// smallMLGame builds a 10-point training set with a k-NN utility — small
// enough that ExactShapley enumerates all 2¹⁰ coalitions.
func smallMLGame(t *testing.T) (dynshap.Game, *dynshap.Dataset, *dynshap.Dataset) {
	t.Helper()
	data := dynshap.IrisLike(40, 31)
	data.Standardize()
	train := data.Subset(rangeInts(0, 10))
	test := data.Subset(rangeInts(10, 40))
	return dynshap.ModelGame(train, test, dynshap.KNNClassifier{K: 3}), train, test
}

func TestSessionInitMatchesExactEnumeration(t *testing.T) {
	g, train, test := smallMLGame(t)
	exact := dynshap.ExactShapley(g)

	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
		dynshap.WithSamples(8000), dynshap.WithSeed(3))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if m := dynshap.MSE(s.Values(), exact); m > 5e-5 {
		t.Fatalf("session vs exact MSE = %v\n got %v\nwant %v", m, s.Values(), exact)
	}
}

func TestSessionAddMatchesExactEnumeration(t *testing.T) {
	_, train, test := smallMLGame(t)
	extra := dynshap.IrisLike(50, 32)
	extra.Standardize()
	p := extra.Points[0]

	// Exact values of the 11-point extended game.
	trainPlus := train.Append(p)
	exactPlus := dynshap.ExactShapley(dynshap.ModelGame(trainPlus, test, dynshap.KNNClassifier{K: 3}))

	for _, algo := range []dynshap.Algorithm{dynshap.AlgoPivotSame, dynshap.AlgoPivotDifferent, dynshap.AlgoDelta} {
		s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
			dynshap.WithSamples(8000), dynshap.WithSeed(5), dynshap.WithKeepPermutations())
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		got, err := s.Add([]dynshap.Point{p}, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if m := dynshap.MSE(got, exactPlus); m > 1e-4 {
			t.Errorf("%v vs exact MSE = %v", algo, m)
		}
	}
}

func TestSessionDeleteMatchesExactEnumeration(t *testing.T) {
	_, train, test := smallMLGame(t)
	const victim = 4
	trainMinus := train.Remove(victim)
	exactMinus := dynshap.ExactShapley(dynshap.ModelGame(trainMinus, test, dynshap.KNNClassifier{K: 3}))

	for _, algo := range []dynshap.Algorithm{dynshap.AlgoYNNN, dynshap.AlgoDelta} {
		s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
			dynshap.WithSamples(8000), dynshap.WithSeed(7), dynshap.WithTrackDeletions())
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		got, err := s.Delete([]int{victim}, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if m := dynshap.MSE(got, exactMinus); m > 1e-4 {
			t.Errorf("%v vs exact MSE = %v\n got %v\nwant %v", algo, m, got, exactMinus)
		}
	}
}

func TestBalanceAxiomThroughFullStack(t *testing.T) {
	g, train, test := smallMLGame(t)
	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
		dynshap.WithSamples(2000), dynshap.WithSeed(9))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range s.Values() {
		sum += v
	}
	full := g.Value(dynshap.FullCoalition(10))
	empty := g.Value(dynshap.NewCoalition(10))
	if math.Abs(sum-(full-empty)) > 1e-9 {
		t.Fatalf("balance violated through the stack: ΣSV = %v, U(N)−U(∅) = %v", sum, full-empty)
	}
}

func TestHeuristicsProduceFiniteOrderedValues(t *testing.T) {
	_, train, test := smallMLGame(t)
	extra := dynshap.IrisLike(50, 33)
	extra.Standardize()
	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
		dynshap.WithSamples(1000), dynshap.WithSeed(11),
		dynshap.WithKNNPlusConfig(dynshap.KNNPlusConfig{CurveSamples: 4, CurveTau: 100, Degree: 2}))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []dynshap.Algorithm{dynshap.AlgoKNN, dynshap.AlgoKNNPlus} {
		got, err := s.Add([]dynshap.Point{extra.Points[0]}, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for i, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v produced non-finite value at %d", algo, i)
			}
		}
	}
}

func TestSequentialMixedWorkload(t *testing.T) {
	// A realistic broker day: init, two adds (different algorithms), one
	// delete, snapshot, resume, one more add — values stay finite, sizes
	// stay consistent, every index stays addressable.
	_, train, test := smallMLGame(t)
	extra := dynshap.IrisLike(50, 34)
	extra.Standardize()

	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
		dynshap.WithSamples(1500), dynshap.WithSeed(13))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add([]dynshap.Point{extra.Points[0]}, dynshap.AlgoDelta); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add([]dynshap.Point{extra.Points[1]}, dynshap.AlgoKNN); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{0}, dynshap.AlgoDelta); err != nil {
		t.Fatal(err)
	}
	if s.N() != 11 {
		t.Fatalf("N = %d, want 11", s.N())
	}

	sn := s.Snapshot()
	resumed, err := sn.Resume(dynshap.KNNClassifier{K: 3}, dynshap.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Add([]dynshap.Point{extra.Points[2]}, dynshap.AlgoDelta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("after resume+add: %d values", len(got))
	}
	pay := dynshap.Allocate(got, 1000)
	var total float64
	for _, p := range pay {
		total += p
	}
	if total <= 0 || total > 1000+1e-9 {
		t.Fatalf("allocation total = %v", total)
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
